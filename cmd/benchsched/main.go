// Command benchsched measures the work-stealing scheduler itself and
// persists the result as machine-readable BENCH_sched.json — the
// scheduler's entry in the repo's perf trajectory, next to
// BENCH_interp.json (engine) and BENCH_proxy.json (service).
//
// Two kernels ride the worker ladder through the real share-nothing
// parallel.Kernel path: "balanced" (uniform per-element cost — the
// scheduler's best case, chunk plan alone suffices) and "skewed"
// (cost concentrated in the low-index quarter, the imbalanced-raytracer
// shape — the case stealing exists for). Each (kernel, workers) cell
// reports median/min/max wall clock plus the scheduler's chunk and
// steal counters, so the artifact shows not just *that* the skewed
// kernel scales but *how*: rebalanced through steals, not luck.
//
// Each kernel's ladder is then fitted to the Universal Scalability Law
//
//	S(N) = N / (1 + sigma*(N-1) + kappa*N*(N-1))
//
// by grid search over the contention (sigma) and coherency (kappa)
// coefficients; the fit's predicted saturation point (peak workers and
// speedup there) is the capacity model: what the ladder says about
// worker counts the ladder never ran.
//
// Usage:
//
//	benchsched [-out=BENCH_sched.json] [-reps=5] [-scale=1] [-check]
//
// -reps is the number of timed repetitions per cell after one warmup;
// medians come with min/max so noise is visible.
// -scale divides element counts (CI uses a large divisor; the committed
// artifact is generated at -scale=1).
// -check validates the -out file against the bench-sched/v1 schema and
// exits non-zero on violations (the CI smoke for the committed file).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/parallel"
)

// Schema is the persisted format identifier; bump on breaking change.
const Schema = "bench-sched/v1"

// balancedKernel: uniform per-element cost. The chunk plan spreads it
// evenly, so steals should stay near zero — stealing is pull-based and
// only fires when a worker runs dry early.
const balancedKernel = `
function kernel(i) {
  var acc = 0;
  for (var j = 0; j < 120; j++) {
    acc += (i * 31 + j * j) % 97;
  }
  return acc;
}
`

// skewedKernel: indices below a quarter of the range spin ~100x longer,
// pinning whichever worker owns the head chunks. The other workers must
// steal the tail to keep the pool busy.
const skewedKernel = `
function kernel(i) {
  var spin = i < 256 ? 300 : 3;
  var acc = 0;
  for (var j = 0; j < spin; j++) {
    acc += (i * 31 + j * j) % 97;
  }
  return acc;
}
`

// Stat is one timing cell: median over reps with the noise bounds.
type Stat struct {
	MedianMS float64 `json:"median_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// Rung is one (kernel, workers) measurement.
type Rung struct {
	Workers int  `json:"workers"`
	Wall    Stat `json:"wall"`
	// Speedup is the 1-worker median over this rung's median.
	Speedup float64 `json:"speedup"`
	// Chunks and Steals are the scheduler's telemetry for the run the
	// median came from: chunk-plan length (a pure function of n, fixed
	// across counts) and successful steals (the rebalancing the rung
	// actually needed; zero for the sequential rung).
	Chunks int `json:"chunks"`
	Steals int `json:"steals"`
}

// USL is the fitted Universal Scalability Law for one kernel's ladder.
type USL struct {
	// Sigma is the contention coefficient (serialized fraction),
	// Kappa the coherency coefficient (pairwise coordination cost).
	Sigma float64 `json:"sigma"`
	Kappa float64 `json:"kappa"`
	// RMSE is the fit's root-mean-square error over the measured rungs.
	RMSE float64 `json:"rmse"`
	// PeakWorkers is the model's predicted saturation point
	// sqrt((1-sigma)/kappa) — beyond it, adding workers *slows* the
	// kernel. 0 means the fit found no coherency term (kappa = 0): no
	// saturation inside the model's horizon.
	PeakWorkers float64 `json:"peak_workers"`
	// PeakSpeedup is S(PeakWorkers) under the fitted model (0 when
	// PeakWorkers is 0).
	PeakSpeedup float64 `json:"peak_speedup"`
}

// KernelResult is one kernel's ladder plus its capacity fit.
type KernelResult struct {
	Name  string `json:"name"`
	N     int    `json:"n"`
	Rungs []Rung `json:"rungs"`
	USL   USL    `json:"usl"`
}

// Summary condenses the file for trajectory plots and CI assertions.
type Summary struct {
	// BestSpeedup is the highest measured speedup across all cells.
	BestSpeedup float64 `json:"best_speedup"`
	// SkewedSteals is the steal count at the top rung of the skewed
	// kernel — the headline "the scheduler actually rebalances" number.
	SkewedSteals int `json:"skewed_steals"`
}

// File is the full bench-sched/v1 document.
type File struct {
	Schema string `json:"schema"`
	Scale  int    `json:"scale"`
	Reps   int    `json:"reps"`
	// MaxProcs is the generating machine's GOMAXPROCS. Wall-clock
	// speedup assertions only make sense when it exceeds 1 — on a
	// single-CPU box the ladder measures scheduling overhead and steal
	// behavior, not parallel wins, and the checker holds it to only
	// what it can show.
	MaxProcs int            `json:"maxprocs"`
	Workers  []int          `json:"workers"`
	Kernels  []KernelResult `json:"kernels"`
	Summary  Summary        `json:"summary"`
}

var workerLadder = []int{1, 2, 4, 8}

func main() {
	out := flag.String("out", "BENCH_sched.json", "output path for the bench document")
	reps := flag.Int("reps", 5, "timed repetitions per cell (after one warmup)")
	scale := flag.Int("scale", 1, "divide kernel element counts by N")
	check := flag.Bool("check", false, "validate the -out file against the schema and exit non-zero on violations (the CI smoke)")
	flag.Parse()

	if *check {
		warn, err := checkFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsched: check %s: %v\n", *out, err)
			os.Exit(1)
		}
		if warn != "" {
			fmt.Fprintf(os.Stderr, "benchsched: check %s: warning: %s\n", *out, warn)
		}
		fmt.Printf("benchsched: %s conforms to %s\n", *out, Schema)
		return
	}

	doc, err := run(*reps, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsched: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsched: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsched: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchsched: wrote %s (best speedup %.2fx, skewed steals at top rung: %d)\n",
		*out, doc.Summary.BestSpeedup, doc.Summary.SkewedSteals)
}

func run(reps, scale int) (*File, error) {
	if scale < 1 {
		scale = 1
	}
	doc := &File{Schema: Schema, Scale: scale, Reps: reps, Workers: workerLadder, MaxProcs: runtime.GOMAXPROCS(0)}
	kernels := []struct {
		name string
		src  string
		n    int
	}{
		{"balanced", balancedKernel, 4096 / scale},
		{"skewed", skewedKernel, 1024}, // the spin threshold is index 256; keep n above it
	}
	for _, kd := range kernels {
		kr := KernelResult{Name: kd.name, N: kd.n}
		var base float64
		for _, w := range workerLadder {
			r, err := timeCell(kd.src, kd.n, w, reps)
			if err != nil {
				return nil, fmt.Errorf("%s w=%d: %w", kd.name, w, err)
			}
			if w == 1 {
				base = r.Wall.MedianMS
			}
			if r.Wall.MedianMS > 0 {
				r.Speedup = base / r.Wall.MedianMS
			}
			kr.Rungs = append(kr.Rungs, r)
		}
		kr.USL = fitUSL(kr.Rungs)
		doc.Kernels = append(doc.Kernels, kr)
		for _, r := range kr.Rungs {
			if r.Speedup > doc.Summary.BestSpeedup {
				doc.Summary.BestSpeedup = r.Speedup
			}
		}
		if kd.name == "skewed" {
			doc.Summary.SkewedSteals = kr.Rungs[len(kr.Rungs)-1].Steals
		}
	}
	return doc, nil
}

// timeCell measures one (kernel, workers) cell: reps timed MapParallel
// runs after one warmup (which also populates the parse/compile caches).
// Telemetry is taken from the median run.
func timeCell(src string, n, workers, reps int) (Rung, error) {
	k := &parallel.Kernel{Source: src, Seed: 7}
	type sample struct {
		ms     float64
		chunks int
		steals int
	}
	var samples []sample
	for rep := 0; rep <= reps; rep++ {
		t0 := time.Now()
		res, err := k.MapParallel(n, workers)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return Rung{}, err
		}
		if len(res.Values) != n {
			return Rung{}, fmt.Errorf("short result: %d of %d", len(res.Values), n)
		}
		if rep == 0 {
			continue
		}
		samples = append(samples, sample{ms: ms, chunks: res.Sched.Chunks, steals: res.Sched.Steals})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].ms < samples[j].ms })
	med := samples[len(samples)/2]
	return Rung{
		Workers: workers,
		Wall:    Stat{MedianMS: med.ms, MinMS: samples[0].ms, MaxMS: samples[len(samples)-1].ms},
		Chunks:  med.chunks,
		Steals:  med.steals,
	}, nil
}

// fitUSL grid-searches the USL coefficients against the measured
// (workers, speedup) points: sigma over the full [0, 1] (a flat ladder
// on a single-CPU machine legitimately fits as fully serialized),
// kappa over [0, 0.02].
func fitUSL(rungs []Rung) USL {
	best := USL{Sigma: 0, Kappa: 0, RMSE: math.Inf(1)}
	for sigma := 0.0; sigma <= 1.0; sigma += 0.001 {
		for kappa := 0.0; kappa <= 0.02; kappa += 0.0001 {
			var se float64
			for _, r := range rungs {
				n := float64(r.Workers)
				model := n / (1 + sigma*(n-1) + kappa*n*(n-1))
				d := model - r.Speedup
				se += d * d
			}
			rmse := math.Sqrt(se / float64(len(rungs)))
			if rmse < best.RMSE {
				best = USL{Sigma: sigma, Kappa: kappa, RMSE: rmse}
			}
		}
	}
	if best.Kappa > 0 {
		best.PeakWorkers = math.Sqrt((1 - best.Sigma) / best.Kappa)
		n := best.PeakWorkers
		best.PeakSpeedup = n / (1 + best.Sigma*(n-1) + best.Kappa*n*(n-1))
	}
	return best
}

// checkFile validates a bench document against the v1 schema. The
// returned warning is non-empty when the document is schema-valid but
// its measurements are vacuous (a single-proc machine cannot show a
// parallel win, so every rung passing is not evidence of anything).
func checkFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.Schema != Schema {
		return "", fmt.Errorf("schema = %q, want %q", doc.Schema, Schema)
	}
	if doc.Reps < 1 {
		return "", fmt.Errorf("reps = %d, want >= 1", doc.Reps)
	}
	if len(doc.Workers) == 0 {
		return "", fmt.Errorf("empty worker ladder")
	}
	names := map[string]bool{}
	for _, k := range doc.Kernels {
		names[k.Name] = true
		if k.Name == "" || k.N <= 0 {
			return "", fmt.Errorf("kernel %q: incomplete identity", k.Name)
		}
		if len(k.Rungs) != len(doc.Workers) {
			return "", fmt.Errorf("kernel %s: %d rungs for %d worker counts", k.Name, len(k.Rungs), len(doc.Workers))
		}
		for i, r := range k.Rungs {
			if r.Workers != doc.Workers[i] {
				return "", fmt.Errorf("kernel %s rung %d: workers %d, ladder says %d", k.Name, i, r.Workers, doc.Workers[i])
			}
			s := r.Wall
			if s.MedianMS <= 0 || s.MinMS <= 0 || s.MaxMS < s.MinMS || s.MedianMS < s.MinMS || s.MedianMS > s.MaxMS {
				return "", fmt.Errorf("kernel %s w=%d: inconsistent stat %+v", k.Name, r.Workers, s)
			}
			if r.Speedup <= 0 {
				return "", fmt.Errorf("kernel %s w=%d: speedup %v", k.Name, r.Workers, r.Speedup)
			}
			if r.Steals < 0 || r.Chunks < 0 {
				return "", fmt.Errorf("kernel %s w=%d: negative telemetry %+v", k.Name, r.Workers, r)
			}
			if r.Workers == 1 && r.Steals != 0 {
				return "", fmt.Errorf("kernel %s: steals on the sequential rung", k.Name)
			}
		}
		u := k.USL
		if u.Sigma < 0 || u.Sigma > 1 || u.Kappa < 0 || u.RMSE < 0 {
			return "", fmt.Errorf("kernel %s: implausible USL fit %+v", k.Name, u)
		}
		if u.Kappa > 0 && u.PeakWorkers <= 0 {
			return "", fmt.Errorf("kernel %s: saturation at or below zero workers: %+v", k.Name, u)
		}
	}
	if !names["balanced"] || !names["skewed"] {
		return "", fmt.Errorf("kernels %v: want both balanced and skewed", names)
	}
	if doc.Summary.SkewedSteals == 0 {
		return "", fmt.Errorf("skewed kernel shows zero steals at the top rung; the stealing path went unmeasured")
	}
	if doc.Summary.BestSpeedup <= 0 {
		return "", fmt.Errorf("best speedup %.2f is not a measurement", doc.Summary.BestSpeedup)
	}
	if doc.MaxProcs > 1 && doc.Summary.BestSpeedup <= 1 {
		return "", fmt.Errorf("best speedup %.2f on a %d-proc machine: the ladder shows no parallel win", doc.Summary.BestSpeedup, doc.MaxProcs)
	}
	if doc.MaxProcs <= 1 {
		return fmt.Sprintf("measured with maxprocs=%d: every parallel rung is a tie by construction, so the no-parallel-win check was skipped — re-measure on a multi-core machine before trusting these numbers", doc.MaxProcs), nil
	}
	return "", nil
}
