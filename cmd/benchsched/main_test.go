package main

// -check semantics: a schema-valid document measured with maxprocs=1
// must produce a warning, not a silent pass — every parallel rung is a
// tie by construction on one proc, so "no violations" would read as
// evidence the scheduler scales when nothing was actually tested.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkDoc(t *testing.T, doc *File) (string, error) {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return checkFile(path)
}

func validDoc(maxProcs int) *File {
	rung := func(w int, steals int) Rung {
		return Rung{
			Workers: w,
			Wall:    Stat{MedianMS: 2, MinMS: 1, MaxMS: 3},
			Speedup: 1,
			Chunks:  4,
			Steals:  steals,
		}
	}
	kernel := func(name string) KernelResult {
		return KernelResult{
			Name:  name,
			N:     64,
			Rungs: []Rung{rung(1, 0), rung(2, 1)},
		}
	}
	return &File{
		Schema:   Schema,
		Reps:     3,
		MaxProcs: maxProcs,
		Workers:  []int{1, 2},
		Kernels:  []KernelResult{kernel("balanced"), kernel("skewed")},
		Summary:  Summary{BestSpeedup: 1.0, SkewedSteals: 1},
	}
}

func TestCheckWarnsOnSingleProcTies(t *testing.T) {
	warn, err := checkDoc(t, validDoc(1))
	if err != nil {
		t.Fatalf("single-proc document must stay schema-valid: %v", err)
	}
	if !strings.Contains(warn, "maxprocs=1") || !strings.Contains(warn, "tie") {
		t.Fatalf("warning = %q, want the maxprocs-tie explanation", warn)
	}
}

func TestCheckMultiProcNeedsParallelWin(t *testing.T) {
	// The same tie-everywhere numbers on a multi-proc machine are a hard
	// failure, not a warning: the ladder had cores and showed no win.
	warn, err := checkDoc(t, validDoc(4))
	if err == nil || !strings.Contains(err.Error(), "no parallel win") {
		t.Fatalf("err = %v, want the no-parallel-win violation", err)
	}
	if warn != "" {
		t.Fatalf("unexpected warning alongside hard failure: %q", warn)
	}
}

func TestCheckMultiProcWithWinPassesSilently(t *testing.T) {
	doc := validDoc(4)
	doc.Summary.BestSpeedup = 1.8
	warn, err := checkDoc(t, doc)
	if err != nil {
		t.Fatalf("valid multi-proc document failed: %v", err)
	}
	if warn != "" {
		t.Fatalf("unexpected warning: %q", warn)
	}
}
