// Command ceresproxy runs the JS-CERES instrumentation proxy of Fig. 5:
// point a browser (or this repository's interpreter) at it, and every
// JavaScript response from the origin is rewritten with profiling
// instrumentation on the way through. Pages post results to
// /__ceres/results; the proxy saves human-readable reports. Rewrites
// are served from a content-addressed single-flight cache; live
// counters are at /__ceres/stats.
//
// Usage:
//
//	ceresproxy -origin http://localhost:8000 -listen :8080 -mode loops \
//	    -reports ./ceres-reports -cache-bytes 67108864 -stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/instrument"
	"repro/internal/proxy"
)

func main() {
	origin := flag.String("origin", "http://localhost:8000", "upstream web server")
	listen := flag.String("listen", ":8080", "proxy listen address")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	reports := flag.String("reports", "ceres-reports", "directory for result reports")
	cacheBytes := flag.Int64("cache-bytes", proxy.DefaultCacheBytes, "rewrite cache budget in bytes (0 disables caching)")
	stats := flag.Bool("stats", true, "serve live counters at /__ceres/stats")
	flag.Parse()

	m, err := instrument.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ceresproxy: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	p, err := proxy.New(*origin, m, *reports)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheBytes == 0 {
		p.Cache = nil
	} else {
		p.Cache = proxy.NewRewriteCache(*cacheBytes)
	}
	p.StatsEndpoint = *stats
	fmt.Printf("ceresproxy: %s -> %s (mode=%s, reports=%s, cache=%dB, stats=%v)\n",
		*listen, *origin, m, *reports, *cacheBytes, *stats)
	log.Fatal(http.ListenAndServe(*listen, p))
}
