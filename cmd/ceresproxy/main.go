// Command ceresproxy runs the JS-CERES instrumentation proxy of Fig. 5:
// point a browser (or this repository's interpreter) at it, and every
// JavaScript response from the origin is rewritten with profiling
// instrumentation on the way through. Pages post results to
// /__ceres/results; the proxy saves human-readable reports.
//
// Usage:
//
//	ceresproxy -origin http://localhost:8000 -listen :8080 -mode loops -reports ./ceres-reports
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/instrument"
	"repro/internal/proxy"
)

func main() {
	origin := flag.String("origin", "http://localhost:8000", "upstream web server")
	listen := flag.String("listen", ":8080", "proxy listen address")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	reports := flag.String("reports", "ceres-reports", "directory for result reports")
	flag.Parse()

	m := instrument.ModeLight
	if *mode == "loops" {
		m = instrument.ModeLoops
	}
	p, err := proxy.New(*origin, m, *reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ceresproxy: %s -> %s (mode=%s, reports=%s)\n", *listen, *origin, *mode, *reports)
	log.Fatal(http.ListenAndServe(*listen, p))
}
