// Command ceresproxy runs the JS-CERES instrumentation proxy of Fig. 5
// as a sharded, pipelined rewrite service: point a browser (or this
// repository's interpreter) at it, and every JavaScript response from
// the origin is rewritten with profiling instrumentation on the way
// through. Pages post results to /__ceres/results; the proxy saves
// human-readable reports. Rewrites are served from a content-addressed
// single-flight cache sharded -shards ways; misses run through the
// staged decode→parse→rewrite→encode pipeline on -rewrite-workers
// scheduler workers with a -queue-depth admission bound (saturation is
// shed as 429 + Retry-After). POST a JSON batch to /__ceres/prewarm to
// warm the cache ahead of traffic; live counters are at /__ceres/stats.
//
// Usage:
//
//	ceresproxy -origin http://localhost:8000 -listen :8080 -mode loops \
//	    -reports ./ceres-reports -cache-bytes 67108864 -shards 8 \
//	    -rewrite-workers 4 -queue-depth 64 -refresh-ttl 0 \
//	    -batch-max-wait 500ms -stats
//
// Rewrites are classed: live page loads are interactive, prewarm and
// TTL refreshes are batch. Interactive admissions outrank batch ones,
// batch work is shed first at saturation, and -batch-max-wait drops
// batch jobs still queued past the deadline instead of running them
// stale.
//
// Cluster mode: pass -peers with the full fleet member list (including
// this node's own public URL, identified by -cluster-self) and the
// proxy joins a consistent-hash rewrite fleet. Each script source hashes
// to exactly one owner; non-owners forward rewrites over the peer
// protocol and fall back to a local rewrite if the owner is unreachable.
// Health probes eject dead peers from the ring and readmit them when
// they recover; -cluster-replicate-qps lets hot keys be served by
// non-owners above a per-key request rate. Prewarm batches POSTed to any
// node are routed to each source's owner, so one POST warms the fleet.
//
//	ceresproxy -listen :8080 -cluster-self http://host1:8080 \
//	    -peers http://host1:8080,http://host2:8080,http://host3:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/proxy"
)

func main() {
	origin := flag.String("origin", "http://localhost:8000", "upstream web server")
	listen := flag.String("listen", ":8080", "proxy listen address")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	reports := flag.String("reports", "ceres-reports", "directory for result reports")
	cacheBytes := flag.Int64("cache-bytes", proxy.DefaultCacheBytes, "rewrite cache budget in bytes (0 disables caching)")
	shards := flag.Int("shards", proxy.DefaultShards, "cache shard count (independent lock domains)")
	workers := flag.Int("rewrite-workers", 0, "rewrite pipeline worker count (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max outstanding rewrites before requests are shed with 429 (0 = workers*2)")
	refreshTTL := flag.Duration("refresh-ttl", 0, "background-refresh hot cache entries nearing this age (0 disables)")
	batchMaxWait := flag.Duration("batch-max-wait", 0, "shed batch-class rewrites (prewarm, TTL refresh) still queued past this deadline (0 disables)")
	stats := flag.Bool("stats", true, "serve live counters at /__ceres/stats")
	peers := flag.String("peers", "", "comma-separated fleet member URLs including this node (empty = single-node)")
	clusterSelf := flag.String("cluster-self", "", "this node's own URL as it appears in -peers (required with -peers)")
	replicateQPS := flag.Float64("cluster-replicate-qps", 0, "per-key request rate above which non-owners serve a hot key locally (0 = off)")
	flag.Parse()

	m, err := instrument.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ceresproxy: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	cfg := proxy.ServeConfig{
		CacheBytes:   *cacheBytes,
		DisableCache: *cacheBytes == 0,
		Shards:       *shards,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		RefreshTTL:   *refreshTTL,
		BatchMaxWait: *batchMaxWait,
	}
	p, err := proxy.NewServing(*origin, m, *reports, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p.StatsEndpoint = *stats

	var node *cluster.Node
	if *peers != "" {
		var members []string
		for _, m := range strings.Split(*peers, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if *clusterSelf == "" {
			fmt.Fprintln(os.Stderr, "ceresproxy: -peers requires -cluster-self (this node's URL as listed in -peers)")
			os.Exit(2)
		}
		node, err = cluster.New(cluster.Config{
			Self:         *clusterSelf,
			Peers:        members,
			ReplicateQPS: *replicateQPS,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ceresproxy: %v\n", err)
			os.Exit(2)
		}
		p.Cluster = node
		node.Start()
		fmt.Printf("ceresproxy: cluster of %d members, self=%s, replicate-qps=%g\n",
			len(members), *clusterSelf, *replicateQPS)
	}

	fmt.Printf("ceresproxy: %s -> %s (mode=%s, reports=%s, cache=%dB x%d shards, workers=%d, queue-depth=%d, refresh-ttl=%s, batch-max-wait=%s, stats=%v)\n",
		*listen, *origin, m, *reports, *cacheBytes, *shards,
		p.Pipeline.Queue().Workers(), p.Pipeline.Queue().Depth(), formatTTL(*refreshTTL), formatTTL(*batchMaxWait), *stats)

	// Graceful shutdown: stop accepting, let in-flight requests finish,
	// then drain the pipeline workers (a bare defer would never run —
	// log.Fatal exits without running defers).
	srv := &http.Server{Addr: *listen, Handler: p}
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ceresproxy: shutdown: %v", err)
		}
		if node != nil {
			node.Close()
		}
		p.Close()
		close(idle)
	}()
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-idle
}

func formatTTL(d time.Duration) string {
	if d <= 0 {
		return "off"
	}
	return d.String()
}
