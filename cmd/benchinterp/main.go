// Command benchinterp measures the interpreter engines against each
// other and persists the result as machine-readable BENCH_interp.json —
// the first entry of the repo's perf trajectory. Each ModeExec kernel
// (the ParallelArray-convertible hot loops of the case study) runs
// through internal/parallel at a ladder of worker counts on both the
// tree-walking evaluator and the compiled one (interp.SetCompile);
// per-rung medians, min/max noise bounds and the treewalk/compiled
// speedup land in the JSON.
//
// Usage:
//
//	benchinterp [-out=BENCH_interp.json] [-reps=5] [-scale=1] [-check]
//
// -reps is the number of timed repetitions per (kernel, workers,
// engine) cell after one warmup; medians are reported with min/max so
// noise is visible, and overlapping noise intervals are flagged
// honestly per rung (noise_overlap) rather than hidden.
// -scale divides kernel element counts like casestudy -scale.
// -check validates the -out file against the bench-interp/v1 schema
// and exits non-zero on violations (the CI smoke).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// Schema is the persisted format identifier; bump on breaking change.
const Schema = "bench-interp/v1"

// Stat is one timing cell: median over reps with the noise bounds.
type Stat struct {
	MedianMS float64 `json:"median_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// Rung is one (kernel, workers) measurement on both engines.
type Rung struct {
	Workers  int  `json:"workers"`
	TreeWalk Stat `json:"treewalk"`
	Compiled Stat `json:"compiled"`
	// Speedup is treewalk median / compiled median (> 1 means the
	// compiled engine wins).
	Speedup float64 `json:"speedup"`
	// NoiseOverlap reports whether the two engines' [min, max] intervals
	// overlap — when true, the speedup is within measurement noise.
	NoiseOverlap bool `json:"noise_overlap"`
}

// KernelResult is the ladder for one ModeExec kernel.
type KernelResult struct {
	App   string `json:"app"`
	Loop  string `json:"loop"`
	N     int    `json:"n"`
	Rungs []Rung `json:"rungs"`
}

// Summary condenses the file for trajectory plots and CI assertions.
type Summary struct {
	MinSpeedup    float64 `json:"min_speedup"`
	MedianSpeedup float64 `json:"median_speedup"`
	// AllCompiledFaster is true when every rung's speedup exceeds 1.
	AllCompiledFaster bool `json:"all_compiled_faster"`
}

// File is the full bench-interp/v1 document.
type File struct {
	Schema  string         `json:"schema"`
	Scale   int            `json:"scale"`
	Reps    int            `json:"reps"`
	Workers []int          `json:"workers"`
	Kernels []KernelResult `json:"kernels"`
	Summary Summary        `json:"summary"`
}

var workerLadder = []int{1, 2, 4, 8}

func main() {
	out := flag.String("out", "BENCH_interp.json", "output path for the bench document")
	reps := flag.Int("reps", 5, "timed repetitions per cell (after one warmup)")
	scale := flag.Int("scale", 1, "divide kernel element counts by N")
	check := flag.Bool("check", false, "validate the -out file against the schema and exit non-zero on violations (the CI smoke)")
	flag.Parse()

	if *check {
		if err := checkFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchinterp: check %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("benchinterp: %s conforms to %s\n", *out, Schema)
		return
	}

	workloads.SetScale(workloads.Scale{Div: *scale})
	doc, err := run(*reps, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchinterp: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchinterp: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchinterp: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchinterp: wrote %s (min speedup %.2fx, median %.2fx, all compiled faster: %v)\n",
		*out, doc.Summary.MinSpeedup, doc.Summary.MedianSpeedup, doc.Summary.AllCompiledFaster)
}

// buildKernel adapts one ModeExec kernel to the parallel.Kernel shape:
// the prelude plus the elemental wrapped as kernel(i) over a per-worker
// copy of the input array.
func buildKernel(ek workloads.ExecKernel, n int, treeWalk bool) *parallel.Kernel {
	src := ek.Prelude + "\nvar __elemental = " + ek.Elemental + ";\n" +
		"function kernel(i) { return __elemental(__input[i], i); }\n"
	return &parallel.Kernel{
		Source: src,
		Setup: func(in *interp.Interp) error {
			elems := make([]value.Value, n)
			for i := range elems {
				elems[i] = value.Number(ek.Input(i))
			}
			in.SetGlobal("__input", value.ObjectVal(in.NewArray(elems...)))
			return nil
		},
		Seed:     7,
		TreeWalk: treeWalk,
	}
}

func run(reps, scale int) (*File, error) {
	doc := &File{Schema: Schema, Scale: scale, Reps: reps, Workers: workerLadder}
	var speedups []float64
	all := true
	for _, ek := range workloads.ExecKernels() {
		n := workloads.CurrentScale().N(ek.N)
		kr := KernelResult{App: ek.App, Loop: ek.Loop, N: n}
		for _, w := range workerLadder {
			tw, err := timeEngine(ek, n, w, true, reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s treewalk w=%d: %w", ek.App, ek.Loop, w, err)
			}
			cp, err := timeEngine(ek, n, w, false, reps)
			if err != nil {
				return nil, fmt.Errorf("%s/%s compiled w=%d: %w", ek.App, ek.Loop, w, err)
			}
			r := Rung{Workers: w, TreeWalk: tw, Compiled: cp}
			if cp.MedianMS > 0 {
				r.Speedup = tw.MedianMS / cp.MedianMS
			}
			r.NoiseOverlap = cp.MaxMS >= tw.MinMS
			if r.Speedup <= 1 {
				all = false
			}
			speedups = append(speedups, r.Speedup)
			kr.Rungs = append(kr.Rungs, r)
		}
		doc.Kernels = append(doc.Kernels, kr)
	}
	sort.Float64s(speedups)
	if len(speedups) > 0 {
		doc.Summary.MinSpeedup = speedups[0]
		doc.Summary.MedianSpeedup = speedups[len(speedups)/2]
	}
	doc.Summary.AllCompiledFaster = all
	return doc, nil
}

// timeEngine measures one cell: MapParallel over the kernel at the
// given worker count, reps times after a warmup.
func timeEngine(ek workloads.ExecKernel, n, workers int, treeWalk bool, reps int) (Stat, error) {
	k := buildKernel(ek, n, treeWalk)
	var samples []float64
	for rep := 0; rep <= reps; rep++ {
		t0 := time.Now()
		res, err := k.MapParallel(n, workers)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return Stat{}, err
		}
		if len(res.Values) != n {
			return Stat{}, fmt.Errorf("short result: %d of %d", len(res.Values), n)
		}
		if rep == 0 {
			continue // warmup covers parse+compile cache population
		}
		samples = append(samples, ms)
	}
	sort.Float64s(samples)
	return Stat{
		MedianMS: samples[len(samples)/2],
		MinMS:    samples[0],
		MaxMS:    samples[len(samples)-1],
	}, nil
}

// checkFile validates a bench document against the v1 schema.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.Schema != Schema {
		return fmt.Errorf("schema = %q, want %q", doc.Schema, Schema)
	}
	if doc.Reps < 1 {
		return fmt.Errorf("reps = %d, want >= 1", doc.Reps)
	}
	if len(doc.Workers) == 0 {
		return fmt.Errorf("empty worker ladder")
	}
	if len(doc.Kernels) == 0 {
		return fmt.Errorf("no kernels measured")
	}
	for _, k := range doc.Kernels {
		if k.App == "" || k.Loop == "" || k.N <= 0 {
			return fmt.Errorf("kernel %q/%q: incomplete identity", k.App, k.Loop)
		}
		if len(k.Rungs) != len(doc.Workers) {
			return fmt.Errorf("kernel %s/%s: %d rungs for %d worker counts", k.App, k.Loop, len(k.Rungs), len(doc.Workers))
		}
		for i, r := range k.Rungs {
			if r.Workers != doc.Workers[i] {
				return fmt.Errorf("kernel %s/%s rung %d: workers %d, ladder says %d", k.App, k.Loop, i, r.Workers, doc.Workers[i])
			}
			for _, s := range []Stat{r.TreeWalk, r.Compiled} {
				if s.MedianMS <= 0 || s.MinMS <= 0 || s.MaxMS < s.MinMS || s.MedianMS < s.MinMS || s.MedianMS > s.MaxMS {
					return fmt.Errorf("kernel %s/%s w=%d: inconsistent stat %+v", k.App, k.Loop, r.Workers, s)
				}
			}
			if r.Speedup <= 0 {
				return fmt.Errorf("kernel %s/%s w=%d: speedup %v", k.App, k.Loop, r.Workers, r.Speedup)
			}
		}
	}
	if doc.Summary.MinSpeedup <= 0 || doc.Summary.MedianSpeedup < doc.Summary.MinSpeedup {
		return fmt.Errorf("inconsistent summary %+v", doc.Summary)
	}
	return nil
}
