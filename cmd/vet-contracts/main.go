// Command vet-contracts is a go vet -vettool enforcing this repo's
// cross-package API contracts — the rules that type-check fine but
// break the runtime's invariants:
//
//   - locksubmit: never call sched.Queue.Submit/SubmitWith while a
//     mutex is held. Admission can shed, run OnShed callbacks, and
//     promote inherited classes synchronously; doing that under a
//     caller's lock is a lock-order inversion waiting to happen.
//   - spawninherit: inside a job (any function taking *sched.WorkerCtx),
//     use w.Spawn for continuations, never Queue.Submit/SubmitWith.
//     Spawn joins the running ticket, so the continuation inherits the
//     ticket's latency class and completion tracking; a fresh Submit
//     re-enters admission with a default class and can deadlock the
//     pool when the parent blocks on it.
//   - loadshared: packages that import repro/internal/js/interp must
//     parse program text with interp.Load, not parser.Parse/MustParse.
//     Load returns shared read-only ASTs from the process-wide
//     content-addressed cache; only AST *mutators* (which must not
//     import interp) get private trees from parser.Parse.
//
// Usage:
//
//	go build -o /tmp/vet-contracts ./cmd/vet-contracts
//	go vet -vettool=/tmp/vet-contracts ./...
//
// The command speaks cmd/go's vettool protocol (-V=full, -flags, then
// one run per package with a JSON .cfg file) by hand, because the repo
// is stdlib-only — no golang.org/x/tools, so no unitchecker. Test files
// are exempt from every analyzer: tests deliberately exercise edge
// shapes (and sched's own tests submit from everywhere).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the subset of cmd/go's vet .cfg payload this tool needs.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func main() {
	version := flag.String("V", "", "print version (the go command passes -V=full)")
	printFlags := flag.Bool("flags", false, "print analyzer flags as JSON (vettool protocol)")
	flag.Parse()

	if *version != "" {
		// cmd/go fingerprints the tool from this exact shape:
		// "<name> version <version>".
		fmt.Printf("%s version v1\n", filepath.Base(os.Args[0]))
		return
	}
	if *printFlags {
		// No analyzer flags: the contracts are not configurable.
		fmt.Println("[]")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vet-contracts package.cfg")
		os.Exit(1)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "vet-contracts:", err)
		os.Exit(1)
	}
}

func run(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parse %s: %w", cfgPath, err)
	}

	var findings []finding
	if !cfg.VetxOnly {
		u := &unit{fset: token.NewFileSet(), importPath: cfg.ImportPath}
		for _, name := range cfg.GoFiles {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(u.fset, name, nil, parser.SkipObjectResolution)
			if err != nil {
				// A file that does not parse is the compiler's problem,
				// not the contract checker's.
				continue
			}
			u.files = append(u.files, f)
		}
		findings = analyzeUnit(u)
	}

	// The protocol requires a facts file even when there is nothing to
	// say: this tool exports no facts, so the file is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}

	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.pos, f.msg, f.analyzer)
		}
		os.Exit(2)
	}
	return nil
}
