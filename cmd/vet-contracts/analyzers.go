package main

// The three contract analyzers. All are lexical (pure go/ast, no type
// information — the repo is stdlib-only), so they over-approximate by
// name: any `.Lock()` is a mutex acquire, any `.Submit(`/`.SubmitWith(`
// is queue admission. That trade is deliberate: the contracts are about
// call shapes, a false negative costs a runtime deadlock, and the few
// names involved are not used for anything else in this repo.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strconv"
	"strings"
)

const (
	schedPath  = "repro/internal/sched"
	interpPath = "repro/internal/js/interp"
	parserPath = "repro/internal/js/parser"
)

// finding is one contract violation.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// unit is one package as handed over by the vet protocol.
type unit struct {
	fset       *token.FileSet
	importPath string
	files      []*ast.File
}

func analyzeUnit(u *unit) []finding {
	var out []finding
	out = append(out, lockSubmit(u)...)
	out = append(out, spawnInherit(u)...)
	out = append(out, loadShared(u)...)
	return out
}

// imports reports whether any file in the unit imports path.
func (u *unit) imports(path string) bool {
	for _, f := range u.files {
		if importName(f, path) != "" {
			return true
		}
	}
	return false
}

// importName returns the local name path is imported under in f
// (explicit alias, or the path's base name), or "" when not imported.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// exprString renders a (small) expression for diagnostics and for
// keying lock receivers.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// selCall unpacks a call through a selector: recv.Name(...).
func selCall(n ast.Node) (recv ast.Expr, name string, call *ast.CallExpr) {
	c, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, "", nil
	}
	s, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil
	}
	return s.X, s.Sel.Name, c
}

func isSubmitName(name string) bool { return name == "Submit" || name == "SubmitWith" }

// eachFunc visits every function body in the unit: declarations and,
// via the callback's own recursion decisions, nested literals.
func (u *unit) eachFunc(fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, f := range u.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd.Type, fd.Body)
			}
		}
	}
}

// ---- locksubmit -----------------------------------------------------

// lockSubmit flags Submit/SubmitWith calls made while a mutex is
// lexically held: after x.Lock()/x.RLock() with no x.Unlock()/x.RUnlock()
// yet (a deferred Unlock holds for the rest of the body — that is the
// common shape the contract exists for). The scan is per function body;
// a nested function literal starts with nothing held (its body runs
// later, under whatever locks its caller then holds).
func lockSubmit(u *unit) []finding {
	if strings.HasPrefix(u.importPath, schedPath) {
		// The queue's own internals hold q.mu by design.
		return nil
	}
	var out []finding
	u.eachFunc(func(_ *ast.FuncType, body *ast.BlockStmt) {
		out = append(out, scanLocks(u, body)...)
	})
	return out
}

func scanLocks(u *unit, body *ast.BlockStmt) []finding {
	var out []finding
	held := map[string]token.Position{} // receiver text -> Lock position
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			out = append(out, scanLocks(u, x.Body)...)
			return false
		case *ast.DeferStmt:
			// defer x.Unlock() releases at return, not here: whatever is
			// held stays held for the statements that follow.
			return false
		case *ast.CallExpr:
			recv, name, _ := selCall(x)
			if recv == nil {
				return true
			}
			switch {
			case name == "Lock" || name == "RLock":
				held[exprString(u.fset, recv)] = u.fset.Position(x.Pos())
			case name == "Unlock" || name == "RUnlock":
				delete(held, exprString(u.fset, recv))
			case isSubmitName(name) && len(held) > 0:
				for r, at := range held {
					out = append(out, finding{
						pos:      u.fset.Position(x.Pos()),
						analyzer: "locksubmit",
						msg: fmt.Sprintf("%s called while %s is held (locked at line %d); admission may shed and run callbacks synchronously — release the lock first",
							name, r, at.Line),
					})
				}
			}
		}
		return true
	})
	return out
}

// ---- spawninherit ---------------------------------------------------

// spawnInherit flags Queue.Submit/SubmitWith inside a job — any function
// with a *sched.WorkerCtx parameter, nested literals included (they run
// on the same ticket). Continuations must use w.Spawn: Spawn joins the
// running ticket, inheriting its latency class and completion tracking;
// Submit re-enters admission with a fresh default class and can deadlock
// the pool if the parent waits on it.
func spawnInherit(u *unit) []finding {
	if strings.HasPrefix(u.importPath, schedPath) {
		return nil
	}
	var out []finding
	var scan func(ft *ast.FuncType, body *ast.BlockStmt, inJob bool)
	scan = func(ft *ast.FuncType, body *ast.BlockStmt, inJob bool) {
		file := fileOf(u, body.Pos())
		if file != nil && hasWorkerCtxParam(file, ft) {
			inJob = true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				scan(x.Type, x.Body, inJob)
				return false
			case *ast.CallExpr:
				if !inJob {
					return true
				}
				if recv, name, _ := selCall(x); recv != nil && isSubmitName(name) {
					out = append(out, finding{
						pos:      u.fset.Position(x.Pos()),
						analyzer: "spawninherit",
						msg: fmt.Sprintf("%s inside a job (function takes *sched.WorkerCtx); use w.Spawn so the continuation inherits the ticket's latency class",
							name),
					})
				}
			}
			return true
		})
	}
	u.eachFunc(func(ft *ast.FuncType, body *ast.BlockStmt) { scan(ft, body, false) })
	return out
}

func fileOf(u *unit, pos token.Pos) *ast.File {
	for _, f := range u.files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// hasWorkerCtxParam reports whether ft has a parameter of type
// *sched.WorkerCtx (under whatever name sched is imported as in file).
func hasWorkerCtxParam(file *ast.File, ft *ast.FuncType) bool {
	alias := importName(file, schedPath)
	if alias == "" || ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		star, ok := p.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == alias && sel.Sel.Name == "WorkerCtx" {
			return true
		}
	}
	return false
}

// ---- loadshared -----------------------------------------------------

// loadShared flags parser.Parse/parser.MustParse in packages that import
// the interpreter. Such packages execute what they parse, so they must
// go through interp.Load — the process-wide content-addressed cache of
// shared read-only ASTs — instead of reparsing per call. Packages that
// do NOT import interp are exempt: the AST mutators (instrument,
// refactor) need private trees, and keeping them off interp is exactly
// what lets them mutate.
func loadShared(u *unit) []finding {
	if u.importPath == interpPath || !u.imports(interpPath) {
		return nil
	}
	var out []finding
	for _, f := range u.files {
		alias := importName(f, parserPath)
		if alias == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			recv, name, _ := selCall(n)
			if recv == nil || (name != "Parse" && name != "MustParse") {
				return true
			}
			if id, ok := recv.(*ast.Ident); ok && id.Name == alias {
				out = append(out, finding{
					pos:      u.fset.Position(n.Pos()),
					analyzer: "loadshared",
					msg: fmt.Sprintf("%s.%s in a package that imports the interpreter; use interp.Load for shared read-only ASTs (reparse only to mutate, from a package without interp)",
						alias, name),
				})
			}
			return true
		})
	}
	return out
}
