package main

// Fixture tests: every analyzer gets a deliberately-violating fixture
// (must produce exactly the expected findings) and a clean twin (must
// produce none) — so a contract that silently stops firing fails CI.

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func analyzeFixture(t *testing.T, importPath string, srcs ...string) []finding {
	t.Helper()
	u := &unit{fset: token.NewFileSet(), importPath: importPath}
	for i, src := range srcs {
		f, err := parser.ParseFile(u.fset, "fixture.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("fixture %d does not parse: %v", i, err)
		}
		u.files = append(u.files, f)
	}
	return analyzeUnit(u)
}

func wantFindings(t *testing.T, got []finding, analyzer string, n int, msgFrag string) {
	t.Helper()
	count := 0
	for _, f := range got {
		if f.analyzer != analyzer {
			t.Errorf("unexpected %s finding: %s", f.analyzer, f.msg)
			continue
		}
		count++
		if msgFrag != "" && !strings.Contains(f.msg, msgFrag) {
			t.Errorf("finding %q does not mention %q", f.msg, msgFrag)
		}
	}
	if count != n {
		t.Errorf("got %d %s findings, want %d (all: %v)", count, analyzer, n, got)
	}
}

const lockSubmitBad = `package p

import (
	"sync"

	"repro/internal/sched"
)

type svc struct {
	mu sync.Mutex
	q  *sched.Queue
}

func (s *svc) enqueueHeld(fn sched.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Submit(fn) // BAD: admission under s.mu
}

func (s *svc) enqueueHeldWith(fn sched.Job) {
	s.mu.Lock()
	s.q.SubmitWith(fn, sched.SubmitOptions{}) // BAD: explicit unlock comes after
	s.mu.Unlock()
}
`

const lockSubmitGood = `package p

import (
	"sync"

	"repro/internal/sched"
)

type svc struct {
	mu sync.Mutex
	q  *sched.Queue
}

func (s *svc) enqueue(fn sched.Job) error {
	s.mu.Lock()
	n := s.tally()
	s.mu.Unlock()
	_ = n
	return s.q.Submit(fn) // fine: lock released first
}

func (s *svc) deferredBody(fn sched.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tallyErr() // fine: no admission under the lock
}

func (s *svc) closureLater(fn sched.Job) func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// fine: the literal runs after this function returns and released.
	return func() error { return s.q.Submit(fn) }
}

func (s *svc) tally() int       { return 0 }
func (s *svc) tallyErr() error  { return nil }
`

func TestLockSubmit(t *testing.T) {
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", lockSubmitBad),
		"locksubmit", 2, "is held")
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", lockSubmitGood),
		"locksubmit", 0, "")
}

const spawnInheritBad = `package p

import "repro/internal/sched"

func root(q *sched.Queue) {
	q.Submit(func(w *sched.WorkerCtx) {
		q.Submit(func(w2 *sched.WorkerCtx) {}) // BAD: fresh admission inside a ticket
	})
}

func job(w *sched.WorkerCtx, q *sched.Queue) {
	go func() {
		q.SubmitWith(nil, sched.SubmitOptions{}) // BAD: still lexically inside the job
	}()
}
`

const spawnInheritGood = `package p

import "repro/internal/sched"

func root(q *sched.Queue) error {
	return q.Submit(func(w *sched.WorkerCtx) { // fine: admission from outside any job
		w.Spawn(func(w2 *sched.WorkerCtx) {}) // fine: ticket-inheriting continuation
	})
}
`

func TestSpawnInherit(t *testing.T) {
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", spawnInheritBad),
		"spawninherit", 2, "Spawn")
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", spawnInheritGood),
		"spawninherit", 0, "")
}

const loadSharedBad = `package p

import (
	jsparser "repro/internal/js/parser"
	"repro/internal/js/interp"
)

func load(src string) error {
	prog, err := jsparser.Parse(src) // BAD: executing package must use interp.Load
	if err != nil {
		return err
	}
	return interp.New().Run(prog)
}

func mustLoad(src string) {
	interp.New().Run(jsparser.MustParse(src)) // BAD: same through MustParse
}
`

const loadSharedGoodLoad = `package p

import "repro/internal/js/interp"

func load(src string) error {
	prog, err := interp.Load(src) // fine: the shared-AST cache
	if err != nil {
		return err
	}
	return interp.New().Run(prog)
}
`

const loadSharedGoodMutator = `package p

import (
	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

func rewrite(src string) (*ast.Program, error) {
	return parser.Parse(src) // fine: no interp import, private mutable tree
}
`

func TestLoadShared(t *testing.T) {
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", loadSharedBad),
		"loadshared", 2, "interp.Load")
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", loadSharedGoodLoad),
		"loadshared", 0, "")
	wantFindings(t, analyzeFixture(t, "repro/internal/fixture", loadSharedGoodMutator),
		"loadshared", 0, "")
	// The interpreter itself implements Load: its own parser.Parse call
	// is the one legitimate site.
	wantFindings(t, analyzeFixture(t, "repro/internal/js/interp", loadSharedBad),
		"loadshared", 0, "")
}
