// Command loadgen hammers the JS-CERES instrumentation proxy with a
// configurable mix of repeated ("hot") and unique scripts and reports
// throughput, rewrites/sec, latency and admission queue-wait
// percentiles, and backpressure counts per client count — the
// measurement the ROADMAP's "heavy traffic" north star asks for: does
// the sharded, pipelined proxy actually scale with concurrent clients,
// and does it shed load instead of stretching the tail when it can't?
//
// The harness (internal/loadharness, shared with cmd/benchproxy) is
// self-contained: it starts a synthetic origin that generates
// deterministic JavaScript on demand, puts the real serving proxy in
// front of it, and drives both through the loopback TCP stack.
//
// Four scenarios:
//
//   - mix (default): the hot/unique request blend — the steady-state
//     cache story.
//   - saturation: every request is a distinct script, so every request
//     pays a full rewrite; with a small -queue-depth the pipeline
//     saturates and the rejected column shows backpressure engaging
//     while q-wait p99 stays bounded.
//   - prewarm: POSTs the hot set to /__ceres/prewarm first, then runs
//     the mix — the hot pool is served from cache from request one.
//   - priority: a fixed interactive client count (first -clients entry)
//     against a ladder of -batch-clients background prewarm generators.
//     Each row splits the admission queue per latency class; the claim
//     to check is that interactive q-wait p99 stays flat against the
//     batch-free baseline while batch/s fills residual capacity, and
//     that at saturation batch sheds strictly before any interactive
//     429. -assert-flat N turns that claim into an exit code.
//   - cluster: -nodes in-process fleet members (each a full serving
//     proxy plus consistent-hash routing over the peer protocol),
//     clients spread across all of them; -kill-node abruptly kills one
//     mid-run (and revives it later unless -revive-node=false) while
//     the round measures forwarding, rebalancing, and whether
//     interactive requests survive the disruption. The round fails if
//     any request hangs or errs, or if interactive 429s appear.
//
// Usage:
//
//	loadgen -clients 1,2,4,8 -requests 400 -hot 16 -unique 0.25 \
//	    -script-loops 12 -mode light -cache-bytes 67108864 \
//	    -shards 8 -rewrite-workers 4 -queue-depth 64 -scenario mix
//
//	loadgen -scenario priority -clients 4 -batch-clients 0,2,4,8 \
//	    -requests 300 -rewrite-workers 2 -queue-depth 8 -assert-flat 20
//
//	loadgen -scenario cluster -nodes 3 -clients 4 -requests 300 \
//	    -rewrite-workers 2 -queue-depth 32 -kill-node
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/instrument"
	"repro/internal/loadharness"
	"repro/internal/proxy"
	"repro/internal/report"
)

func main() {
	clientsFlag := flag.String("clients", "1,2,4,8", "comma-separated client goroutine counts (priority: first entry only)")
	requests := flag.Int("requests", 400, "requests per client-count round")
	hot := flag.Int("hot", 16, "distinct scripts in the repeated (hot) pool")
	uniqueFrac := flag.Float64("unique", 0.25, "fraction of requests for a never-seen script")
	scriptLoops := flag.Int("script-loops", 12, "loops per generated script (rewrite cost knob)")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	cacheBytes := flag.Int64("cache-bytes", proxy.DefaultCacheBytes, "rewrite cache budget in bytes (0 disables caching)")
	shards := flag.Int("shards", proxy.DefaultShards, "cache shard count")
	workers := flag.Int("rewrite-workers", 0, "rewrite pipeline workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "admission bound before 429s (0 = workers*2)")
	scenario := flag.String("scenario", "mix", "workload scenario: mix, saturation, prewarm, priority, cluster")
	seed := flag.Int64("seed", 7, "deterministic request-mix seed")
	batchClients := flag.String("batch-clients", "0,2,4,8", "priority scenario: comma-separated batch generator counts, one round each")
	batchSize := flag.Int("batch-size", 8, "priority scenario: sources per background prewarm POST")
	batchMaxWait := flag.Duration("batch-max-wait", 500*time.Millisecond, "queue-wait deadline for batch admissions (0 = none)")
	assertFlat := flag.Float64("assert-flat", 0, "priority scenario: fail unless loaded interactive q-wait p99 <= N x max(baseline, 1ms) and batch sheds before interactive 429s (0 = off)")
	nodes := flag.Int("nodes", 3, "cluster scenario: fleet size (in-process nodes)")
	killNode := flag.Bool("kill-node", false, "cluster scenario: abruptly kill one node mid-run")
	reviveNode := flag.Bool("revive-node", true, "cluster scenario: restart the killed node later in the run")
	replicateQPS := flag.Float64("cluster-replicate-qps", 0, "cluster scenario: per-key request rate above which non-owners serve a hot key locally (0 = off)")
	flag.Parse()

	m, err := instrument.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	counts, err := parseCounts(*clientsFlag, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: bad -clients: %v\n", err)
		os.Exit(2)
	}
	if *hot < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -hot must be >= 1 (use -unique 1 for an all-unique mix)")
		os.Exit(2)
	}
	var batchCounts []int
	switch *scenario {
	case "mix", "prewarm", "cluster":
	case "saturation":
		// Saturation = no cache reuse: every request pays a rewrite, so
		// the admission queue is the contended resource.
		*uniqueFrac = 1.0
	case "priority":
		batchCounts, err = parseCounts(*batchClients, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: bad -batch-clients: %v\n", err)
			os.Exit(2)
		}
		if *assertFlat > 0 && batchCounts[0] != 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -assert-flat needs the first -batch-clients entry to be 0 (the baseline row)")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -scenario %q (want mix, saturation, prewarm, priority or cluster)\n", *scenario)
		os.Exit(2)
	}

	originURL, stopOrigin, err := loadharness.StartOrigin(*scriptLoops)
	if err != nil {
		log.Fatal(err)
	}
	defer stopOrigin()

	fmt.Printf("loadgen: scenario=%s mode=%s hot=%d unique=%.0f%% requests=%d script-loops=%d cache=%dB shards=%d workers=%d queue-depth=%d\n",
		*scenario, m, *hot, *uniqueFrac*100, *requests, *scriptLoops,
		*cacheBytes, *shards, *workers, *queueDepth)

	cfg := loadharness.Config{
		Mode:         m,
		CacheBytes:   *cacheBytes,
		Shards:       *shards,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		Scenario:     *scenario,
		Requests:     *requests,
		Hot:          *hot,
		UniqueFrac:   *uniqueFrac,
		ScriptLoops:  *scriptLoops,
		Seed:         *seed,
		BatchSize:    *batchSize,
		BatchMaxWait: *batchMaxWait,
	}

	if *scenario == "cluster" {
		cfg.Clients = counts[0]
		runCluster(originURL, loadharness.ClusterConfig{
			Config:       cfg,
			Nodes:        *nodes,
			ReplicateQPS: *replicateQPS,
			Kill:         *killNode,
			Revive:       *killNode && *reviveNode,
		})
		return
	}

	var rows []report.ServingRow
	if *scenario == "priority" {
		cfg.Clients = counts[0]
		for _, bc := range batchCounts {
			c := cfg
			c.BatchClients = bc
			row, err := loadharness.RunPriorityRound(originURL, c)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, *row)
		}
	} else {
		for _, n := range counts {
			c := cfg
			c.Clients = n
			row, err := loadharness.RunRound(originURL, c)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, *row)
		}
	}
	fmt.Print(report.Serving(fmt.Sprintf("serving ladder (%s)", *scenario), rows))

	if *scenario == "priority" && *assertFlat > 0 {
		if err := checkFlat(rows, *assertFlat); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("assert-flat: ok (interactive q-wait p99 within %gx of baseline, batch sheds first)\n", *assertFlat)
	}
}

// runCluster drives one cluster round and renders the summary row plus
// the per-node breakdown. The round's invariants are enforced as exit
// codes: every request completed (the harness already fails a round
// with a hung or errored request), and no interactive 429s slipped
// through without batch shed — the cluster round runs no batch load,
// so any interactive rejection is a failure.
func runCluster(originURL string, ccfg loadharness.ClusterConfig) {
	res, err := loadharness.RunClusterRound(originURL, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Serving("cluster round (interactive summary)", []report.ServingRow{res.Row}))
	fmt.Print(report.Cluster(fmt.Sprintf("cluster fleet (%d nodes)", ccfg.Nodes), res.NodeRows))
	if ccfg.Kill {
		fmt.Printf("chaos: killed=%s revived=%v disrupted=%d rebalances=%d\n",
			res.KilledNode, ccfg.Revive, res.Disrupted, res.Rebalances)
	}
	if res.Row.Rejected > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d interactive 429s in a round with no batch load\n", res.Row.Rejected)
		os.Exit(1)
	}
	if ccfg.Kill && res.Rebalances == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: node killed but no ring rebalance observed")
		os.Exit(1)
	}
	fmt.Println("cluster asserts: ok (all requests completed, no interactive 429s)")
}

// checkFlat enforces the two latency-class invariants over a priority
// ladder whose first row is the batch-free baseline:
//
//  1. Flatness — every loaded row's interactive q-wait p99 is within
//     mult x the baseline's (with a 1ms floor so a near-zero baseline
//     on a fast machine doesn't make scheduling jitter a failure).
//  2. Shed order — no row rejects interactive requests unless it also
//     shed or rejected batch work: batch pays first, always.
func checkFlat(rows []report.ServingRow, mult float64) error {
	base := rows[0].QWaitP99
	if floor := time.Millisecond; base < floor {
		base = floor
	}
	bound := time.Duration(float64(base) * mult)
	for _, r := range rows[1:] {
		if r.QWaitP99 > bound {
			return fmt.Errorf("batch-clients=%d: interactive q-wait p99 %v exceeds %v (%gx of baseline %v)",
				r.BatchClients, r.QWaitP99, bound, mult, rows[0].QWaitP99)
		}
	}
	for _, r := range rows {
		if r.Rejected > 0 && r.BatchShed == 0 {
			return fmt.Errorf("batch-clients=%d: %d interactive 429s with zero batch shed — interactive paid before batch",
				r.BatchClients, r.Rejected)
		}
	}
	return nil
}

// parseCounts parses a comma-separated int list with a per-entry floor.
func parseCounts(s string, min int) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad entry %q (min %d)", f, min)
		}
		out = append(out, n)
	}
	return out, nil
}
