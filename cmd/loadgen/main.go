// Command loadgen hammers the JS-CERES instrumentation proxy with a
// configurable mix of repeated ("hot") and unique scripts and reports
// throughput, rewrites/sec, latency and admission queue-wait
// percentiles, and backpressure counts per client count — the
// measurement the ROADMAP's "heavy traffic" north star asks for: does
// the sharded, pipelined proxy actually scale with concurrent clients,
// and does it shed load instead of stretching the tail when it can't?
//
// The harness is self-contained: it starts a synthetic origin that
// generates deterministic JavaScript on demand, puts the real serving
// proxy (internal/proxy over HTTP: sharded cache + staged pipeline with
// bounded admission) in front of it, and drives both through the
// loopback TCP stack, so numbers include real serialization cost.
//
// Three scenarios:
//
//   - mix (default): the hot/unique request blend — the steady-state
//     cache story.
//   - saturation: every request is a distinct script, so every request
//     pays a full rewrite; with a small -queue-depth the pipeline
//     saturates and the rejected column shows backpressure engaging
//     while q-wait p99 stays bounded.
//   - prewarm: POSTs the hot set to /__ceres/prewarm first, then runs
//     the mix — the hot pool is served from cache from request one.
//
// Usage:
//
//	loadgen -clients 1,2,4,8 -requests 400 -hot 16 -unique 0.25 \
//	    -script-loops 12 -mode light -cache-bytes 67108864 \
//	    -shards 8 -rewrite-workers 4 -queue-depth 64 -scenario mix
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/proxy"
	"repro/internal/report"
)

func main() {
	clientsFlag := flag.String("clients", "1,2,4,8", "comma-separated client goroutine counts")
	requests := flag.Int("requests", 400, "requests per client-count round")
	hot := flag.Int("hot", 16, "distinct scripts in the repeated (hot) pool")
	uniqueFrac := flag.Float64("unique", 0.25, "fraction of requests for a never-seen script")
	scriptLoops := flag.Int("script-loops", 12, "loops per generated script (rewrite cost knob)")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	cacheBytes := flag.Int64("cache-bytes", proxy.DefaultCacheBytes, "rewrite cache budget in bytes (0 disables caching)")
	shards := flag.Int("shards", proxy.DefaultShards, "cache shard count")
	workers := flag.Int("rewrite-workers", 0, "rewrite pipeline workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "admission bound before 429s (0 = workers*2)")
	scenario := flag.String("scenario", "mix", "workload scenario: mix, saturation, prewarm")
	seed := flag.Int64("seed", 7, "deterministic request-mix seed")
	flag.Parse()

	m, err := instrument.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	counts, err := parseClients(*clientsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *hot < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -hot must be >= 1 (use -unique 1 for an all-unique mix)")
		os.Exit(2)
	}
	switch *scenario {
	case "mix", "prewarm":
	case "saturation":
		// Saturation = no cache reuse: every request pays a rewrite, so
		// the admission queue is the contended resource.
		*uniqueFrac = 1.0
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -scenario %q (want mix, saturation or prewarm)\n", *scenario)
		os.Exit(2)
	}

	originURL, stopOrigin, err := startOrigin(*scriptLoops)
	if err != nil {
		log.Fatal(err)
	}
	defer stopOrigin()

	fmt.Printf("loadgen: scenario=%s mode=%s hot=%d unique=%.0f%% requests=%d script-loops=%d cache=%dB shards=%d workers=%d queue-depth=%d\n",
		*scenario, m, *hot, *uniqueFrac*100, *requests, *scriptLoops,
		*cacheBytes, *shards, *workers, *queueDepth)

	var rows []report.ServingRow
	for _, c := range counts {
		row, err := runRound(roundConfig{
			origin:     originURL,
			mode:       m,
			cacheBytes: *cacheBytes,
			shards:     *shards,
			workers:    *workers,
			queueDepth: *queueDepth,
			scenario:   *scenario,
			clients:    c,
			requests:   *requests,
			hot:        *hot,
			uniqueFrac: *uniqueFrac,
			seed:       *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, *row)
	}
	fmt.Print(report.Serving(fmt.Sprintf("serving ladder (%s)", *scenario), rows))
}

func parseClients(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// startOrigin serves deterministic generated JavaScript: any /*.js path
// yields a distinct-but-reproducible script whose content is derived
// from the path, so the hot pool repeats byte-identically and unique
// paths never collide.
func startOrigin(loops int) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, generateScript(r.URL.Path, loops))
	})}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// generateScript emits a parseable loop-heavy script seeded by id, so
// rewrite cost is uniform across scripts while content (and therefore
// cache key) differs per id.
func generateScript(id string, loops int) string {
	h := fnv.New64a()
	io.WriteString(h, id)
	seed := h.Sum64() % 1000003
	var sb strings.Builder
	fmt.Fprintf(&sb, "var seed = %d;\nvar acc = 0;\n", seed)
	for i := 0; i < loops; i++ {
		fmt.Fprintf(&sb, "for (var i%d = 0; i%d < %d; i%d++) { acc += (i%d * seed) %% %d; }\n",
			i, i, 40+i, i, i, 7+i)
	}
	return sb.String()
}

type roundConfig struct {
	origin     string
	mode       instrument.Mode
	cacheBytes int64
	shards     int
	workers    int
	queueDepth int
	scenario   string
	clients    int
	requests   int
	hot        int
	uniqueFrac float64
	seed       int64
}

// runRound builds a fresh serving proxy (fresh cache and pipeline, so
// rounds are comparable) and drives cfg.requests through cfg.clients
// goroutines. 429s count as rejected — not errors, and not samples:
// req/s and the latency percentiles describe served (200) responses
// only, so shedding shows up in the rejected column instead of
// flattering the tail.
func runRound(cfg roundConfig) (*report.ServingRow, error) {
	scfg := proxy.ServeConfig{
		CacheBytes:   cfg.cacheBytes,
		DisableCache: cfg.cacheBytes == 0,
		Shards:       cfg.shards,
		Workers:      cfg.workers,
		QueueDepth:   cfg.queueDepth,
	}
	p, err := proxy.NewServing(cfg.origin, cfg.mode, "", scfg)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: p}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	defer client.CloseIdleConnections()

	if cfg.scenario == "prewarm" {
		if err := prewarm(client, base, cfg.hot); err != nil {
			return nil, err
		}
	}

	var next, uniqueID, rejected atomic.Int64
	latencies := make([][]time.Duration, cfg.clients)
	qwaits := make([][]time.Duration, cfg.clients)
	errs := make([]error, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for int(next.Add(1)) <= cfg.requests {
				var path string
				if rng.Float64() < cfg.uniqueFrac {
					path = fmt.Sprintf("/unique/%d.js", uniqueID.Add(1))
				} else {
					path = fmt.Sprintf("/hot/%d.js", rng.Intn(cfg.hot))
				}
				t0 := time.Now()
				res, err := get(client, base+path)
				if err != nil {
					errs[w] = err
					return
				}
				if res.status == http.StatusTooManyRequests {
					// Backpressure: shed fast, retry never (the round
					// measures shedding, not client retry policy). Shed
					// requests are counted, not sampled — mixing their
					// near-instant turnaround into p50/p99 or req/s
					// would understate served latency and overstate
					// throughput exactly when saturation engages.
					rejected.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				if res.status != http.StatusOK {
					errs[w] = fmt.Errorf("GET %s: status %d", path, res.status)
					return
				}
				if !strings.Contains(res.body, "__ceres") {
					errs[w] = fmt.Errorf("response for %s not instrumented", path)
					return
				}
				qwaits[w] = append(qwaits[w], res.queueWait)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all, allQ []time.Duration
	for i := range latencies {
		all = append(all, latencies[i]...)
		allQ = append(allQ, qwaits[i]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(allQ, func(i, j int) bool { return allQ[i] < allQ[j] })
	stats := p.Stats()
	return &report.ServingRow{
		Clients:        cfg.clients,
		ReqPerSec:      float64(len(all)) / wall.Seconds(),
		RewritesPerSec: float64(stats.Rewrites) / wall.Seconds(),
		P50:            percentile(all, 50),
		P99:            percentile(all, 99),
		QWaitP50:       percentile(allQ, 50),
		QWaitP99:       percentile(allQ, 99),
		Rejected:       rejected.Load(),
		Hits:           stats.CacheHits,
		Misses:         stats.CacheMisses,
		Coalesced:      stats.Coalesced,
		Failures:       stats.Failures,
	}, nil
}

// prewarm POSTs the round's hot set to /__ceres/prewarm so the mix
// starts against a warm cache.
func prewarm(client *http.Client, base string, hot int) error {
	req := proxy.PrewarmRequest{}
	for i := 0; i < hot; i++ {
		req.URLs = append(req.URLs, fmt.Sprintf("/hot/%d.js", i))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/__ceres/prewarm", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prewarm: status %d: %s", resp.StatusCode, out)
	}
	var pr proxy.PrewarmResponse
	if err := json.Unmarshal(out, &pr); err != nil {
		return fmt.Errorf("prewarm: %w", err)
	}
	fmt.Printf("prewarm: ok=%d saturated=%d failed=%d\n", pr.OK, pr.Saturated, pr.Failed)
	return nil
}

type getResult struct {
	status    int
	body      string
	queueWait time.Duration
}

func get(client *http.Client, rawURL string) (*getResult, error) {
	resp, err := client.Get(rawURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	res := &getResult{status: resp.StatusCode, body: string(body)}
	if v := resp.Header.Get(proxy.QueueWaitHeader); v != "" {
		if us, err := strconv.ParseInt(v, 10, 64); err == nil {
			res.queueWait = time.Duration(us) * time.Microsecond
		}
	}
	return res, nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
