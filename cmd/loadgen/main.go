// Command loadgen hammers the JS-CERES instrumentation proxy with a
// configurable mix of repeated ("hot") and unique scripts and reports
// throughput, rewrites/sec, and p50/p99 latency per client count — the
// measurement the ROADMAP's "heavy traffic" north star asks for: does
// the cache-backed proxy actually scale with concurrent clients?
//
// The harness is self-contained: it starts a synthetic origin that
// generates deterministic JavaScript on demand, puts the real proxy
// (internal/proxy over HTTP) in front of it, and drives both through
// the loopback TCP stack, so numbers include real serialization cost.
//
// Usage:
//
//	loadgen -clients 1,2,4,8 -requests 400 -hot 16 -unique 0.25 \
//	    -script-loops 12 -mode light -cache-bytes 67108864
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/proxy"
)

func main() {
	clientsFlag := flag.String("clients", "1,2,4,8", "comma-separated client goroutine counts")
	requests := flag.Int("requests", 400, "requests per client-count round")
	hot := flag.Int("hot", 16, "distinct scripts in the repeated (hot) pool")
	uniqueFrac := flag.Float64("unique", 0.25, "fraction of requests for a never-seen script")
	scriptLoops := flag.Int("script-loops", 12, "loops per generated script (rewrite cost knob)")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops")
	cacheBytes := flag.Int64("cache-bytes", proxy.DefaultCacheBytes, "rewrite cache budget in bytes (0 disables caching)")
	seed := flag.Int64("seed", 7, "deterministic request-mix seed")
	flag.Parse()

	m, err := instrument.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	counts, err := parseClients(*clientsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *hot < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -hot must be >= 1 (use -unique 1 for an all-unique mix)")
		os.Exit(2)
	}

	originURL, stopOrigin, err := startOrigin(*scriptLoops)
	if err != nil {
		log.Fatal(err)
	}
	defer stopOrigin()

	fmt.Printf("loadgen: mode=%s hot=%d unique=%.0f%% requests=%d script-loops=%d cache=%dB\n",
		m, *hot, *uniqueFrac*100, *requests, *scriptLoops, *cacheBytes)
	fmt.Printf("%-8s %10s %12s %10s %10s %8s %8s %10s %9s\n",
		"clients", "req/s", "rewrites/s", "p50", "p99", "hits", "misses", "coalesced", "failures")

	for _, c := range counts {
		row, err := runRound(roundConfig{
			origin:     originURL,
			mode:       m,
			cacheBytes: *cacheBytes,
			clients:    c,
			requests:   *requests,
			hot:        *hot,
			uniqueFrac: *uniqueFrac,
			seed:       *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %10.0f %12.1f %10s %10s %8d %8d %10d %9d\n",
			c, row.reqPerSec, row.rewritesPerSec, fmtDur(row.p50), fmtDur(row.p99),
			row.stats.CacheHits, row.stats.CacheMisses, row.stats.Coalesced, row.stats.Failures)
	}
}

func parseClients(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// startOrigin serves deterministic generated JavaScript: any /*.js path
// yields a distinct-but-reproducible script whose content is derived
// from the path, so the hot pool repeats byte-identically and unique
// paths never collide.
func startOrigin(loops int) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, generateScript(r.URL.Path, loops))
	})}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// generateScript emits a parseable loop-heavy script seeded by id, so
// rewrite cost is uniform across scripts while content (and therefore
// cache key) differs per id.
func generateScript(id string, loops int) string {
	h := fnv.New64a()
	io.WriteString(h, id)
	seed := h.Sum64() % 1000003
	var sb strings.Builder
	fmt.Fprintf(&sb, "var seed = %d;\nvar acc = 0;\n", seed)
	for i := 0; i < loops; i++ {
		fmt.Fprintf(&sb, "for (var i%d = 0; i%d < %d; i%d++) { acc += (i%d * seed) %% %d; }\n",
			i, i, 40+i, i, i, 7+i)
	}
	return sb.String()
}

type roundConfig struct {
	origin     string
	mode       instrument.Mode
	cacheBytes int64
	clients    int
	requests   int
	hot        int
	uniqueFrac float64
	seed       int64
}

type roundResult struct {
	reqPerSec      float64
	rewritesPerSec float64
	p50, p99       time.Duration
	stats          proxy.Stats
}

// runRound builds a fresh proxy (fresh cache, so rounds are comparable)
// and drives cfg.requests through cfg.clients goroutines.
func runRound(cfg roundConfig) (*roundResult, error) {
	p, err := proxy.New(cfg.origin, cfg.mode, "")
	if err != nil {
		return nil, err
	}
	if cfg.cacheBytes == 0 {
		p.Cache = nil
	} else {
		p.Cache = proxy.NewRewriteCache(cfg.cacheBytes)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: p}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	defer client.CloseIdleConnections()

	var next, uniqueID atomic.Int64
	latencies := make([][]time.Duration, cfg.clients)
	errs := make([]error, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			for int(next.Add(1)) <= cfg.requests {
				var path string
				if rng.Float64() < cfg.uniqueFrac {
					path = fmt.Sprintf("/unique/%d.js", uniqueID.Add(1))
				} else {
					path = fmt.Sprintf("/hot/%d.js", rng.Intn(cfg.hot))
				}
				t0 := time.Now()
				body, err := get(client, base+path)
				if err != nil {
					errs[w] = err
					return
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				if !strings.Contains(body, "__ceres") {
					errs[w] = fmt.Errorf("response for %s not instrumented", path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := p.Stats()
	return &roundResult{
		reqPerSec:      float64(len(all)) / wall.Seconds(),
		rewritesPerSec: float64(stats.Rewrites) / wall.Seconds(),
		p50:            percentile(all, 50),
		p99:            percentile(all, 99),
		stats:          stats,
	}, nil
}

func get(client *http.Client, rawURL string) (string, error) {
	if _, err := url.Parse(rawURL); err != nil {
		return "", err
	}
	resp, err := client.Get(rawURL)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", rawURL, resp.StatusCode)
	}
	return string(body), nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
