// Command benchproxy measures the serving proxy's latency-class
// isolation and persists the result as machine-readable
// BENCH_proxy.json — the serving-side entry of the repo's perf
// trajectory, alongside BENCH_interp.json for the interpreter. It runs
// the internal/loadharness priority scenario at a fixed configuration
// (2 rewrite workers, admission depth 8, 4 interactive clients) over a
// ladder of background batch generators, and records per-class queue
// waits, throughput, shed counts and promotions per rung.
//
// Usage:
//
//	benchproxy [-out=BENCH_proxy.json] [-requests=300] [-check]
//
// -check validates the -out file against the bench-proxy/v1 schema —
// including the two latency-class invariants (interactive q-wait p99
// within bound of the batch-free baseline; batch sheds strictly before
// interactive 429s) — and exits non-zero on violations (the CI smoke).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/instrument"
	"repro/internal/loadharness"
)

// Schema is the persisted format identifier; bump on breaking change.
const Schema = "bench-proxy/v1"

// MaxP99Ratio is the flatness bound -check enforces: loaded interactive
// q-wait p99 must stay within this multiple of max(baseline, 1ms). It
// matches the CI loadgen -assert-flat multiplier.
const MaxP99Ratio = 20.0

// Rung is one priority round at a fixed batch-generator count.
type Rung struct {
	BatchClients int     `json:"batch_clients"`
	ReqPerSec    float64 `json:"req_per_sec"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	// QWait percentiles are the server's own per-class admission-queue
	// numbers, in microseconds.
	QWaitP50US      float64 `json:"qwait_p50_us"`
	QWaitP99US      float64 `json:"qwait_p99_us"`
	Rejected        int64   `json:"rejected"`
	BatchPerSec     float64 `json:"batch_per_sec"`
	BatchQWaitP99US float64 `json:"batch_qwait_p99_us"`
	BatchShed       int64   `json:"batch_shed"`
	Promoted        int64   `json:"promoted"`
}

// Summary condenses the file for trajectory plots and CI assertions.
type Summary struct {
	// InteractiveP99Ratio is the worst loaded rung's interactive q-wait
	// p99 over max(baseline p99, 1ms) — the flatness number. 1.0 or less
	// means batch load never touched the interactive tail.
	InteractiveP99Ratio float64 `json:"interactive_p99_ratio"`
	// BatchShedFirst is true when no rung rejected interactive work
	// without also shedding batch work — the shed-order invariant.
	BatchShedFirst bool `json:"batch_shed_first"`
	// MaxBatchPerSec is the best background throughput achieved while
	// the flatness bound held.
	MaxBatchPerSec float64 `json:"max_batch_per_sec"`
}

// File is the full bench-proxy/v1 document.
type File struct {
	Schema       string  `json:"schema"`
	Workers      int     `json:"workers"`
	QueueDepth   int     `json:"queue_depth"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	ScriptLoops  int     `json:"script_loops"`
	BatchSize    int     `json:"batch_size"`
	BatchLadder  []int   `json:"batch_ladder"`
	BatchMaxWait string  `json:"batch_max_wait"`
	Rungs        []Rung  `json:"rungs"`
	Summary      Summary `json:"summary"`
}

// batchLadder is the fixed background-load ladder; rung 0 is the
// batch-free baseline the flatness ratio is computed against.
var batchLadder = []int{0, 1, 2, 4}

const (
	workers      = 2
	queueDepth   = 8
	clients      = 4
	scriptLoops  = 12
	batchSize    = 8
	batchMaxWait = 500 * time.Millisecond
)

func main() {
	out := flag.String("out", "BENCH_proxy.json", "output path for the bench document")
	requests := flag.Int("requests", 300, "interactive requests per rung")
	check := flag.Bool("check", false, "validate the -out file against the schema and exit non-zero on violations (the CI smoke)")
	flag.Parse()

	if *check {
		if err := checkFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "benchproxy: check %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("benchproxy: %s conforms to %s\n", *out, Schema)
		return
	}

	doc, err := run(*requests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchproxy: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchproxy: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchproxy: wrote %s (interactive p99 ratio %.2fx, batch sheds first: %v, max batch/s %.0f)\n",
		*out, doc.Summary.InteractiveP99Ratio, doc.Summary.BatchShedFirst, doc.Summary.MaxBatchPerSec)
}

func run(requests int) (*File, error) {
	origin, stopOrigin, err := loadharness.StartOrigin(scriptLoops)
	if err != nil {
		return nil, err
	}
	defer stopOrigin()

	doc := &File{
		Schema:       Schema,
		Workers:      workers,
		QueueDepth:   queueDepth,
		Clients:      clients,
		Requests:     requests,
		ScriptLoops:  scriptLoops,
		BatchSize:    batchSize,
		BatchLadder:  batchLadder,
		BatchMaxWait: batchMaxWait.String(),
	}
	for _, bc := range batchLadder {
		row, err := loadharness.RunPriorityRound(origin, loadharness.Config{
			Mode:         instrument.ModeLight,
			CacheBytes:   64 << 20,
			Shards:       8,
			Workers:      workers,
			QueueDepth:   queueDepth,
			Clients:      clients,
			Requests:     requests,
			ScriptLoops:  scriptLoops,
			Seed:         7,
			BatchClients: bc,
			BatchSize:    batchSize,
			BatchMaxWait: batchMaxWait,
		})
		if err != nil {
			return nil, fmt.Errorf("batch-clients=%d: %w", bc, err)
		}
		doc.Rungs = append(doc.Rungs, Rung{
			BatchClients:    bc,
			ReqPerSec:       row.ReqPerSec,
			P50MS:           float64(row.P50.Microseconds()) / 1000,
			P99MS:           float64(row.P99.Microseconds()) / 1000,
			QWaitP50US:      float64(row.QWaitP50.Nanoseconds()) / 1000,
			QWaitP99US:      float64(row.QWaitP99.Nanoseconds()) / 1000,
			Rejected:        row.Rejected,
			BatchPerSec:     row.BatchPerSec,
			BatchQWaitP99US: float64(row.BatchQWaitP99.Nanoseconds()) / 1000,
			BatchShed:       row.BatchShed,
			Promoted:        row.Promoted,
		})
	}
	doc.Summary = summarize(doc.Rungs)
	return doc, nil
}

// summarize derives the trajectory numbers from the measured rungs.
func summarize(rungs []Rung) Summary {
	s := Summary{BatchShedFirst: true}
	base := rungs[0].QWaitP99US
	if floor := 1000.0; base < floor { // 1ms floor, as in loadgen -assert-flat
		base = floor
	}
	for _, r := range rungs {
		if r.Rejected > 0 && r.BatchShed == 0 {
			s.BatchShedFirst = false
		}
		if ratio := r.QWaitP99US / base; ratio > s.InteractiveP99Ratio {
			s.InteractiveP99Ratio = ratio
		}
		if r.BatchPerSec > s.MaxBatchPerSec {
			s.MaxBatchPerSec = r.BatchPerSec
		}
	}
	return s
}

// checkFile validates a bench document against the v1 schema and the
// latency-class invariants.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.Schema != Schema {
		return fmt.Errorf("schema = %q, want %q", doc.Schema, Schema)
	}
	if doc.Workers < 1 || doc.QueueDepth < 1 || doc.Clients < 1 || doc.Requests < 1 {
		return fmt.Errorf("incomplete config: %+v", doc)
	}
	if len(doc.BatchLadder) < 2 || doc.BatchLadder[0] != 0 {
		return fmt.Errorf("batch ladder %v must start at 0 (the baseline) and hold at least one loaded rung", doc.BatchLadder)
	}
	if len(doc.Rungs) != len(doc.BatchLadder) {
		return fmt.Errorf("%d rungs for %d ladder entries", len(doc.Rungs), len(doc.BatchLadder))
	}
	for i, r := range doc.Rungs {
		if r.BatchClients != doc.BatchLadder[i] {
			return fmt.Errorf("rung %d: batch_clients %d, ladder says %d", i, r.BatchClients, doc.BatchLadder[i])
		}
		if r.ReqPerSec <= 0 || r.P50MS <= 0 || r.P99MS < r.P50MS {
			return fmt.Errorf("rung %d: inconsistent latency %+v", i, r)
		}
		if r.QWaitP50US < 0 || r.QWaitP99US < r.QWaitP50US {
			return fmt.Errorf("rung %d: inconsistent queue waits %+v", i, r)
		}
		if r.BatchClients > 0 && r.BatchPerSec <= 0 {
			return fmt.Errorf("rung %d: batch clients ran but batch_per_sec = %v", i, r.BatchPerSec)
		}
		if r.Rejected > 0 && r.BatchShed == 0 {
			return fmt.Errorf("rung %d: %d interactive 429s with zero batch shed", i, r.Rejected)
		}
	}
	s := doc.Summary
	if s.InteractiveP99Ratio <= 0 || s.InteractiveP99Ratio > MaxP99Ratio {
		return fmt.Errorf("interactive_p99_ratio %.2f outside (0, %.0f] — interactive tail moved under batch load", s.InteractiveP99Ratio, MaxP99Ratio)
	}
	if !s.BatchShedFirst {
		return fmt.Errorf("batch_shed_first = false — an interactive 429 preceded batch shedding")
	}
	if s.MaxBatchPerSec <= 0 {
		return fmt.Errorf("max_batch_per_sec %v, want > 0", s.MaxBatchPerSec)
	}
	return nil
}
