// Command surveyreport regenerates the survey artifacts of §2:
// Figures 1–4, the inter-rater agreement validation, and the §2.3
// operator-preference finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/survey"
)

func main() {
	seed := flag.Uint64("seed", 42, "synthetic corpus seed")
	flag.Parse()

	corpus := survey.Generate(*seed)
	if err := corpus.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "surveyreport:", err)
		os.Exit(1)
	}

	coder := survey.NewCoder()
	rows, valid := survey.Figure1(corpus, coder)
	fmt.Print(report.Figure1(rows, valid))
	fmt.Println()

	fmt.Print(report.Figure2(survey.Figure2(corpus)))
	fmt.Println()

	fmt.Print(report.ScaleFigure(
		"Figure 3. Programming style preference scale from Functional (1) to Imperative (5)",
		"strongly functional", "strongly imperative", survey.Figure3(corpus)))
	fmt.Println()

	fmt.Print(report.ScaleFigure(
		"Figure 4. Preference scale for variables: from Monomorphic (1) to Polymorphic (5)",
		"purely monomorphic", "extensively polymorphic", survey.Figure4(corpus)))
	fmt.Println()

	agreement := survey.InterRaterAgreement(corpus, coder, survey.NewSecondCoder(), 0.20)
	fmt.Printf("inter-rater agreement (Jaccard, 20%% of data): %.0f%% (paper: >80%%)\n", 100*agreement)

	prefer, answered := survey.OperatorPreference(corpus)
	fmt.Printf("prefer high-level array operators over loops: %d/%d = %.0f%% (paper: 74%%)\n",
		prefer, answered, 100*float64(prefer)/float64(answered))

	g := survey.GlobalsBreakdown(corpus)
	fmt.Printf("globals question (§2.4): %d answered; namespace/module %d, page communication %d, singletons %d, debugging %d, never %d\n",
		g.Answered, g.Namespace, g.PageComm, g.Singleton, g.Debugging, g.Never)
}
