// Command casestudy regenerates the paper's case-study artifacts:
// Table 1 (application list), Table 2 (running times), Table 3 (loop-nest
// inspection), the Amdahl bounds of §4.2, and the Fortuna-style
// task-level baseline of §6.
//
// Usage:
//
//	casestudy [-table=all|1|2|3|amdahl|fortuna] [-scale=N] [-seed=N]
//
// -scale divides workload sizes (1 = full Table 2/3 configuration).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/study"
	"repro/internal/workloads"
)

func main() {
	table := flag.String("table", "all", "which artifact to print: all, 1, 2, 3, amdahl, fortuna")
	scaleDiv := flag.Int("scale", 1, "divide workload sizes by N (1 = paper-scale)")
	seed := flag.Uint64("seed", 7, "deterministic seed")
	flag.Parse()

	workloads.SetScale(workloads.Scale{Div: *scaleDiv})

	if *table == "1" {
		fmt.Print(report.Table1(workloads.All()))
		return
	}
	if *table == "fortuna" {
		rows, err := study.RunFortunaAll(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Fortuna(rows))
		return
	}

	results, err := study.RunAll(*seed)
	if err != nil {
		fatal(err)
	}
	switch *table {
	case "2":
		fmt.Print(report.Table2(study.Table2(results)))
	case "3":
		fmt.Print(report.Table3(study.Table3(results)))
	case "amdahl":
		fmt.Print(report.Amdahl(results))
	case "all":
		fmt.Print(report.Table1(workloads.All()))
		fmt.Println()
		fmt.Print(report.Table2(study.Table2(results)))
		fmt.Println()
		fmt.Print(report.Table3(study.Table3(results)))
		fmt.Println()
		fmt.Print(report.Amdahl(results))
		fmt.Println()
		rows, err := study.RunFortunaAll(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Fortuna(rows))
		poly := 0
		for _, r := range results {
			poly += len(r.PolymorphicVars)
		}
		fmt.Printf("\npolymorphic variables in hot loops across all apps: %d (paper: none found)\n", poly)
	default:
		fatal(fmt.Errorf("unknown -table=%s", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casestudy:", err)
	os.Exit(1)
}
