// Command casestudy regenerates the paper's case-study artifacts:
// Table 1 (application list), Table 2 (running times), Table 3 (loop-nest
// inspection), the Amdahl bounds of §4.2, and the Fortuna-style
// task-level baseline of §6.
//
// Usage:
//
//	casestudy [-table=all|1|2|3|amdahl|fortuna|exec] [-exec] [-scale=N] [-seed=N] [-workers=N] [-timing] [-minchunk=N] [-chunkdiv=N] [-engine=compiled|treewalk]
//
// -scale divides workload sizes (1 = full Table 2/3 configuration).
// -workers sizes the work-stealing scheduler's goroutine pool
// (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at every
// worker count.
// -timing appends the per-job wall-clock report plus the scheduler's
// chunk/steal telemetry.
// -exec (or -table=exec) runs ModeExec instead: every ParallelArray-
// convertible hot loop executes through the speculative autopar engine
// at a ladder of worker counts (1/2/4/8 by default; -workers N narrows
// the ladder to {1, N}), reporting measured speedup and chunk/steal
// counters next to the ModeDeep Amdahl bound.
// -minchunk and -chunkdiv tune the scheduler's geometric chunk plan for
// -exec (0 = internal/sched defaults): chunks cover
// max(minchunk, remaining/chunkdiv) elements. At any fixed setting,
// outputs stay byte-identical across worker counts (the ladder's
// contract); the knobs move chunk boundaries, so runs at *different*
// settings are only comparable for map/filter kernels or associative
// reductions.
// -engine selects the interpreter for -exec: "compiled" (default — the
// pre-resolved evaluator) or "treewalk"; outputs are identical either
// way (the differential conformance suite enforces it), only wall-clock
// numbers move. Use it for before/after engine ladders (EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/autopar"
	"repro/internal/report"
	"repro/internal/study"
	"repro/internal/workloads"
)

func main() {
	table := flag.String("table", "all", "which artifact to print: all, 1, 2, 3, amdahl, fortuna, exec")
	execMode := flag.Bool("exec", false, "run ModeExec: speculative ParallelArray execution with measured speedup")
	scaleDiv := flag.Int("scale", 1, "divide workload sizes by N (1 = paper-scale)")
	seed := flag.Uint64("seed", 7, "deterministic seed")
	workers := flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS, 1 = sequential); with -exec, the top of the {1, N} measurement ladder")
	timing := flag.Bool("timing", false, "print per-job and total wall-clock times to stderr")
	minChunk := flag.Int("minchunk", 0, "scheduler knob: smallest chunk of the geometric plan (0 = default)")
	chunkDiv := flag.Int("chunkdiv", 0, "scheduler knob: chunk-size divisor, chunks cover remaining/chunkdiv elements (0 = default)")
	engine := flag.String("engine", "compiled", "interpreter engine for -exec: compiled (pre-resolved evaluator) or treewalk")
	staticFlag := flag.String("static", "off", "static purity prover mode for -exec: off (speculate+guard everything), assist (guard-free dispatch for proven kernels, refuse refuted), strict (dispatch only proven)")
	pipeline := flag.Bool("pipeline", false, "with -exec: run the streaming-pipeline ladder instead — the decode/filter/encode image workload pipelined (pipePar) vs. the chained-mapPar baseline")
	pipeBatch := flag.Int("pipebatch", 0, "pipeline knob: elements per streamed index-range batch (0 = default)")
	pipeDepth := flag.Int("pipedepth", 0, "pipeline knob: bounded-channel depth between stages, in batches (0 = default)")
	flag.Parse()

	switch *table {
	case "all", "1", "2", "3", "amdahl", "fortuna", "exec":
	default:
		fatal(fmt.Errorf("unknown -table=%s", *table))
	}

	workloads.SetScale(workloads.Scale{Div: *scaleDiv})

	if *pipeline && !*execMode && *table != "exec" {
		fatal(fmt.Errorf("-pipeline requires -exec (the pipeline ladder is a ModeExec variant)"))
	}

	if *execMode || *table == "exec" {
		if *execMode && *table != "all" && *table != "exec" {
			fatal(fmt.Errorf("-exec conflicts with -table=%s (exec prints only the ModeExec table)", *table))
		}
		if *timing {
			fmt.Fprintln(os.Stderr, "casestudy: -timing does not apply to -exec (wall clock is in the table itself)")
		}
		counts := study.ExecWorkerCounts
		if *workers > 0 {
			counts = []int{1, *workers}
		}
		study.SetExecTuning(*minChunk, *chunkDiv)
		switch *engine {
		case "compiled":
			study.SetExecEngine(false)
		case "treewalk":
			study.SetExecEngine(true)
		default:
			fatal(fmt.Errorf("unknown -engine=%s (want compiled or treewalk)", *engine))
		}
		mode, err := autopar.ParseStaticMode(*staticFlag)
		if err != nil {
			fatal(err)
		}
		study.SetExecStatic(mode)
		if *pipeline {
			study.SetPipeTuning(*pipeBatch, *pipeDepth)
			rows, measured, err := study.RunPipeAll(*seed, counts)
			if err != nil {
				fatal(err)
			}
			fmt.Print(report.Pipe(rows, measured))
			for _, r := range rows {
				if !r.Identical {
					fatal(fmt.Errorf("pipeline: %s/%s output not byte-identical across strategies and worker counts", r.App, r.Loop))
				}
				if r.PairsFound != r.PairsWant {
					fatal(fmt.Errorf("pipeline: detector found %d produce->consume pairs, want %d", r.PairsFound, r.PairsWant))
				}
			}
			return
		}
		rows, measured, err := study.RunExecAll(*seed, counts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Exec(rows, measured))
		for _, r := range rows {
			if !r.Identical {
				fatal(fmt.Errorf("exec: %s/%s output not byte-identical across worker counts", r.App, r.Loop))
			}
		}
		return
	}

	if *table == "1" {
		fmt.Print(report.Table1(workloads.All()))
		return
	}
	if *table == "fortuna" {
		rows, err := study.RunFortunaAll(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Fortuna(rows))
		return
	}

	rep, err := study.Orchestrate(context.Background(), study.Options{Seed: *seed, Workers: *workers})
	if *timing {
		for _, jt := range rep.Timings {
			fmt.Fprintf(os.Stderr, "job %-20s %-5s %8.2fms\n", jt.App, jt.Mode, float64(jt.Wall.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "orchestrated %d jobs on %d workers in %.2fs (%d chunks, %d steals)\n",
			len(rep.Timings), rep.Workers, rep.Wall.Seconds(), rep.Sched.Chunks, rep.Sched.Steals)
	}
	if err != nil {
		// The orchestrator aggregates failures instead of failing fast:
		// report them, then still print whatever apps survived.
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		if len(rep.Results) == 0 {
			os.Exit(1)
		}
	}
	results := rep.Results
	switch *table {
	case "2":
		fmt.Print(report.Table2(study.Table2(results)))
	case "3":
		fmt.Print(report.Table3(study.Table3(results)))
	case "amdahl":
		fmt.Print(report.Amdahl(results))
	case "all":
		fmt.Print(report.Table1(workloads.All()))
		fmt.Println()
		fmt.Print(report.Table2(study.Table2(results)))
		fmt.Println()
		fmt.Print(report.Table3(study.Table3(results)))
		fmt.Println()
		fmt.Print(report.Amdahl(results))
		fmt.Println()
		rows, err := study.RunFortunaAll(*seed)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Fortuna(rows))
		poly := 0
		for _, r := range results {
			poly += len(r.PolymorphicVars)
		}
		fmt.Printf("\npolymorphic variables in hot loops across all apps: %d (paper: none found)\n", poly)
	}
	if err != nil {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casestudy:", err)
	os.Exit(1)
}
