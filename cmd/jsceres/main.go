// Command jsceres runs JS-CERES on one case-study application (or an
// arbitrary JavaScript file) in one of the three instrumentation modes of
// §3 and prints the analysis report.
//
// Usage:
//
//	jsceres -app "fluidSim" -mode light
//	jsceres -app "Realtime Raytracing" -mode loops
//	jsceres -app "Tear-able Cloth" -mode deps [-focus 3]
//	jsceres -file path/to/app.js -mode deps
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gecko"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/study"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "", "Table 1 application name (see casestudy -table=1)")
	file := flag.String("file", "", "analyze a standalone JavaScript file instead")
	mode := flag.String("mode", "light", "instrumentation mode: light, loops, deps")
	focus := flag.Int("focus", 0, "deps mode: focus on one loop ID (0 = all)")
	scaleDiv := flag.Int("scale", 1, "divide workload sizes by N")
	seed := flag.Uint64("seed", 7, "deterministic seed")
	maxWarn := flag.Int("maxwarnings", 40, "max warnings to print in deps mode")
	flag.Parse()

	workloads.SetScale(workloads.Scale{Div: *scaleDiv})

	if *file != "" {
		if err := runFile(*file, *mode, ast.LoopID(*focus), *maxWarn); err != nil {
			fatal(err)
		}
		return
	}
	if *app == "" {
		fatal(fmt.Errorf("need -app or -file; run `casestudy -table=1` for app names"))
	}
	wl, err := workloads.ByName(*app)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "light":
		row, err := study.RunLight(wl, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s — lightweight profiling (§3.1)\n", wl.Name)
		fmt.Printf("  total:    %8.2f s\n", row.TotalS)
		fmt.Printf("  active:   %8.2f s (Gecko-style sampled)\n", row.ActiveS)
		fmt.Printf("  in loops: %8.2f s\n", row.LoopsS)
		if row.ActiveBelowLoops() {
			fmt.Println("  note: active < in-loops — the sampling artifact of §3.1")
		}
	case "loops", "deps":
		res, err := study.RunDeep(wl, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s — loop nests (§3.2/§3.3)\n", wl.Name)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "nest\t%loop\tinstances\ttrips\tdivergence\tDOM\tdeps\tparallelization")
		for _, n := range res.Nests {
			fmt.Fprintf(tw, "%s\t%.0f\t%d\t%.0f±%.0f\t%s\t%v\t%s\t%s\n",
				n.Label, n.PctLoop, n.Instanc, n.TripMean, n.TripStd,
				n.Divergence, n.DOMAccess, n.DepDiff, n.ParDiff)
		}
		tw.Flush()
		fmt.Printf("Amdahl bound (easy nests): %.2fx; (breakable nests): %.2fx\n",
			res.AmdahlEasy, res.AmdahlBreakable)
		if *mode == "deps" {
			if err := printWarnings(wl, *seed, ast.LoopID(*focus), *maxWarn); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -mode=%s", *mode))
	}
}

// printWarnings re-runs the workload with a focused dependence analyzer
// and prints the paper-style warning report.
func printWarnings(wl *workloads.Workload, seed uint64, focus ast.LoopID, maxWarn int) error {
	in := workloads.NewInterp(seed)
	prog, err := workloads.Parse(wl)
	if err != nil {
		return err
	}
	dep := core.NewDepAnalyzer(focus)
	in.SetHooks(dep)
	if _, err := workloads.Run(wl, in); err != nil {
		return err
	}
	warnings := dep.Warnings()
	fmt.Printf("\ndependence warnings (%d distinct):\n", len(warnings))
	for i, w := range warnings {
		if i >= maxWarn {
			fmt.Printf("  ... %d more\n", len(warnings)-maxWarn)
			break
		}
		fmt.Printf("  [%6dx] %s\n", w.Count, w.Format(prog.Loops))
	}
	if vars := dep.PolymorphicVars(); len(vars) > 0 {
		fmt.Printf("polymorphic variables: %v\n", vars)
	} else {
		fmt.Println("polymorphic variables: none (§4.2)")
	}
	return nil
}

// runFile analyzes a standalone script (no browser substrate).
func runFile(path, mode string, focus ast.LoopID, maxWarn int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := interp.Load(string(src))
	if err != nil {
		return err
	}
	in := interp.New(interp.WithNSPerStep(workloads.NSPerStep))

	switch mode {
	case "light":
		light := core.NewLightProfiler(in)
		sampler := gecko.NewSampler(in)
		in.SetHooks(interp.NewMultiHooks(light, sampler))
		if err := in.Run(prog); err != nil {
			return err
		}
		fmt.Printf("total %.3f s, active %.3f s, in loops %.3f s\n",
			float64(light.TotalTime())/1e9, float64(sampler.ActiveTime())/1e9, float64(light.InLoopTime())/1e9)
	case "loops":
		lp := core.NewLoopProfiler(in)
		in.SetHooks(lp)
		if err := in.Run(prog); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "loop\tinstances\ttotal ms\ttrips")
		for _, s := range lp.AllStats() {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.1f±%.1f\n",
				prog.Loops[s.ID-1].Label(), s.Instances, s.Time.Sum()/1e6, s.Trips.Mean(), s.Trips.StdDev())
		}
		tw.Flush()
	case "deps":
		dep := core.NewDepAnalyzer(focus)
		in.SetHooks(dep)
		if err := in.Run(prog); err != nil {
			return err
		}
		for i, w := range dep.Warnings() {
			if i >= maxWarn {
				break
			}
			fmt.Printf("[%6dx] %s\n", w.Count, w.Format(prog.Loops))
		}
	default:
		return fmt.Errorf("unknown -mode=%s", mode)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsceres:", err)
	os.Exit(1)
}
