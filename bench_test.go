// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Run:  go test -bench=. -benchmem
//
// Naming maps directly to the paper: BenchmarkFigN* regenerates Figure N,
// BenchmarkTableN* regenerates Table N rows. The benchmark *outputs*
// (ReportMetric) carry the reproduced headline numbers so `-bench` output
// doubles as an experiment log.
package repro

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/autopar"
	"repro/internal/core"
	"repro/internal/gecko"
	"repro/internal/instrument"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/lexer"
	"repro/internal/js/parser"
	"repro/internal/js/value"
	"repro/internal/parallel"
	"repro/internal/proxy"
	"repro/internal/rivertrail"
	"repro/internal/study"
	"repro/internal/survey"
	"repro/internal/workloads"
)

// benchScale keeps full-suite benchmark time reasonable; the shapes
// (ratios, classifications) are scale-invariant.
var benchScale = workloads.Scale{Div: 4}

// ---- Figure 1: future web application categories ----

func BenchmarkFig1Categories(b *testing.B) {
	coder := survey.NewCoder()
	var games float64
	for i := 0; i < b.N; i++ {
		c := survey.Generate(42)
		rows, _ := survey.Figure1(c, coder)
		games = rows[0].Percent
	}
	b.ReportMetric(games, "games_pct")
}

// ---- Figure 2: performance bottlenecks ----

func BenchmarkFig2Bottlenecks(b *testing.B) {
	var loading float64
	for i := 0; i < b.N; i++ {
		c := survey.Generate(42)
		rows := survey.Figure2(c)
		loading = rows[0].PctBottleneck()
	}
	b.ReportMetric(loading, "resource_loading_pct")
}

// ---- Figure 3: functional vs imperative ----

func BenchmarkFig3Style(b *testing.B) {
	var functional float64
	for i := 0; i < b.N; i++ {
		h := survey.Figure3(survey.Generate(42))
		functional = h.Percent(1)
	}
	b.ReportMetric(functional, "functional_pct")
}

// ---- Figure 4: monomorphic vs polymorphic ----

func BenchmarkFig4Polymorphism(b *testing.B) {
	var mono float64
	for i := 0; i < b.N; i++ {
		h := survey.Figure4(survey.Generate(42))
		mono = h.Percent(1)
	}
	b.ReportMetric(mono, "monomorphic_pct")
}

// ---- Figure 5: the instrumentation proxy pipeline ----

func BenchmarkFig5ProxyPipeline(b *testing.B) {
	src := `
var sum = 0;
function work() {
  for (var i = 0; i < 500; i++) { sum += i * i; }
}
work();
`
	for i := 0; i < b.N; i++ {
		res, err := instrument.Rewrite(src, instrument.ModeLoops)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := parser.Parse(res.Source)
		if err != nil {
			b.Fatal(err)
		}
		in := interp.New()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
		rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Object().GetNumber("totalMs") <= 0 {
			b.Fatal("no report")
		}
	}
}

// ---- Fig. 5 proxy at scale: the rewrite cache ----

// proxyBenchScript is deliberately loop-heavy so the rewrite (parse +
// transform + print) dominates the loopback fetch — the workload shape
// where the cache matters.
var proxyBenchScript = func() string {
	var sb strings.Builder
	sb.WriteString("var acc = 0;\n")
	for i := 0; i < 160; i++ {
		fmt.Fprintf(&sb, "for (var i%d = 0; i%d < %d; i%d++) { acc += (i%d * 31) %% %d; }\n",
			i, i, 40+i, i, i, 7+i)
	}
	return sb.String()
}()

func newBenchProxy(b *testing.B, cached bool) *proxy.Proxy {
	b.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		_, _ = io.WriteString(w, proxyBenchScript)
	}))
	b.Cleanup(origin.Close)
	p, err := proxy.New(origin.URL, instrument.ModeLoops, "")
	if err != nil {
		b.Fatal(err)
	}
	if !cached {
		p.Cache = nil
	}
	return p
}

// benchProxy drives the handler directly (no client-side TCP) on a
// repeated-script workload; cached vs. uncached isolates the cache win.
// The acceptance gate — cached >= 5x uncached with byte-identical
// bodies — is asserted by TestCachedUncachedByteIdentical plus these
// two throughput numbers.
func benchProxy(b *testing.B, cached bool) {
	p := newBenchProxy(b, cached)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/app.js", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.StopTimer()
	s := p.Stats()
	if s.Instrumented != int64(b.N) {
		b.Fatalf("Instrumented = %d, want %d", s.Instrumented, b.N)
	}
	b.ReportMetric(float64(s.Rewrites), "rewrites")
}

func BenchmarkProxyCached(b *testing.B)   { benchProxy(b, true) }
func BenchmarkProxyUncached(b *testing.B) { benchProxy(b, false) }

// benchHotPool is the hot-script working set of the parallel benches:
// large enough that concurrent clients touch different cache shards,
// small enough that the cache stays warm after one pass.
const benchHotPool = 16

// newBenchPoolProxy serves a distinct generated script per path, so hot
// requests spread across cache shards instead of all serializing on one
// key's shard.
func newBenchPoolProxy(b *testing.B, shards int) *proxy.Proxy {
	b.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "var p = %q;\n%s", r.URL.Path, proxyBenchScript)
	}))
	b.Cleanup(origin.Close)
	p, err := proxy.New(origin.URL, instrument.ModeLoops, "")
	if err != nil {
		b.Fatal(err)
	}
	p.Cache = proxy.NewShardedRewriteCache(proxy.DefaultCacheBytes, shards)
	return p
}

// benchProxyParallel adds client concurrency (the loadgen shape):
// exactly `clients` goroutines sharing the b.N request budget over a
// benchHotPool-script hot set. `shards` sizes the cache; the
// SingleShard variants are the pre-sharding baseline the acceptance
// criterion compares against.
func benchProxyParallel(b *testing.B, clients, shards int) {
	p := newBenchPoolProxy(b, shards)
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				path := fmt.Sprintf("/hot/%d.js", (int(n)+w)%benchHotPool)
				rec := httptest.NewRecorder()
				p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
				if rec.Code != http.StatusOK {
					b.Errorf("status %d", rec.Code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if s := p.Stats(); s.Rewrites > benchHotPool {
		b.Fatalf("Rewrites = %d, want <= %d (single-flight per distinct script)", s.Rewrites, benchHotPool)
	}
}

func BenchmarkProxyCachedParallel1(b *testing.B) { benchProxyParallel(b, 1, proxy.DefaultShards) }
func BenchmarkProxyCachedParallel2(b *testing.B) { benchProxyParallel(b, 2, proxy.DefaultShards) }
func BenchmarkProxyCachedParallel4(b *testing.B) { benchProxyParallel(b, 4, proxy.DefaultShards) }
func BenchmarkProxyCachedParallel8(b *testing.B) { benchProxyParallel(b, 8, proxy.DefaultShards) }

// Single-shard baselines: same workload on one LRU lock domain.
func BenchmarkProxyCachedParallel4SingleShard(b *testing.B) { benchProxyParallel(b, 4, 1) }
func BenchmarkProxyCachedParallel8SingleShard(b *testing.B) { benchProxyParallel(b, 8, 1) }

// benchCacheHitParallel isolates the section sharding exists for: 8
// goroutines hammering warm cache entries with no HTTP around them, so
// the LRU lock is the measured cost. The full-stack Parallel benches
// above bury this in the origin round-trip; this pair is where the
// shard win is visible even when the stack cost dominates end to end.
func benchCacheHitParallel(b *testing.B, shards int) {
	c := proxy.NewShardedRewriteCache(proxy.DefaultCacheBytes, shards)
	srcs := make([][]byte, benchHotPool)
	for i := range srcs {
		srcs[i] = []byte(fmt.Sprintf("var p%d = %d;\n%s", i, i, proxyBenchScript))
		if _, err := c.Rewrite(srcs[i], instrument.ModeLoops); err != nil {
			b.Fatal(err)
		}
	}
	const clients = 8
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				if _, err := c.Rewrite(srcs[(int(n)+w)%benchHotPool], instrument.ModeLoops); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if s := c.Stats(); s.Hits < int64(b.N)-benchHotPool {
		b.Fatalf("hits = %d over %d ops — pool not warm", s.Hits, b.N)
	}
}

func BenchmarkCacheHitParallel8(b *testing.B)            { benchCacheHitParallel(b, proxy.DefaultShards) }
func BenchmarkCacheHitParallel8SingleShard(b *testing.B) { benchCacheHitParallel(b, 1) }

// BenchmarkProxySaturation drives the full serving stack (sharded
// cache + staged pipeline) past its admission bound over real loopback
// TCP — 32 clients, every request a distinct script, queue depth 2 on
// 1 worker, the loadgen saturation shape. The metrics are the
// acceptance story: rejected/op shows backpressure engaging,
// qwait_p99_us stays bounded (the queue never holds more than `depth`
// rewrites) instead of latency growing with offered load.
func BenchmarkProxySaturation(b *testing.B) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "var p = %q;\n%s", r.URL.Path, proxyBenchScript)
	}))
	b.Cleanup(origin.Close)
	p, err := proxy.NewServing(origin.URL, instrument.ModeLoops, "", proxy.ServeConfig{
		Workers: 1, QueueDepth: 2, Shards: proxy.DefaultShards,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	front := httptest.NewServer(p)
	b.Cleanup(front.Close)

	const clients = 32
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	b.Cleanup(client.CloseIdleConnections)

	b.ResetTimer()
	var next, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				resp, err := client.Get(fmt.Sprintf("%s/unique/%d.js", front.URL, n))
				if err != nil {
					b.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	st := p.Stats()
	b.ReportMetric(float64(rejected.Load())/float64(b.N), "rejected/op")
	if st.Pipeline != nil {
		b.ReportMetric(float64(st.Pipeline.Queue.QueueWaitP99.Microseconds()), "qwait_p99_us")
	}
	if got := st.Rejected; got != rejected.Load() {
		b.Fatalf("stats Rejected = %d, clients saw %d", got, rejected.Load())
	}
}

// ---- Figure 6 / §3.3: N-body dependence analysis ----

const nbodyBench = `var bodies = [];
function Particle() { this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; this.m = 1; }
var dT = 0.01;
for (var s = 0; s < 32; s++) { bodies.push(new Particle()); }
function step() {
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += 0.001 / p.m * dT;
    p.x += p.vX * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 8) { var com = step(); steps++; }
`

func BenchmarkFig6NBodyAnalysis(b *testing.B) {
	var warnings int
	for i := 0; i < b.N; i++ {
		prog := parser.MustParse(nbodyBench)
		in := interp.New()
		dep := core.NewDepAnalyzer(ast.NoLoop)
		in.SetHooks(dep)
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
		warnings = len(dep.Warnings())
	}
	b.ReportMetric(float64(warnings), "warnings")
}

// ---- Table 2: per-application running time ----

func benchTable2(b *testing.B, name string) {
	workloads.SetScale(benchScale)
	wl, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var row study.Table2Row
	for i := 0; i < b.N; i++ {
		row, err = study.RunLight(wl, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.TotalS, "total_vs")
	b.ReportMetric(row.ActiveS, "active_vs")
	b.ReportMetric(row.LoopsS, "inloops_vs")
}

func BenchmarkTable2(b *testing.B) {
	for _, wl := range workloads.All() {
		b.Run(sanitize(wl.Name), func(b *testing.B) { benchTable2(b, wl.Name) })
	}
}

// ---- Table 3: loop-nest inspection ----

func benchTable3(b *testing.B, name string) {
	workloads.SetScale(benchScale)
	wl, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var res *study.AppResult
	for i := 0; i < b.N; i++ {
		res, err = study.RunDeep(wl, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Nests) > 0 {
		b.ReportMetric(res.Nests[0].PctLoop, "top_nest_pct")
		b.ReportMetric(float64(res.Nests[0].ParDiff), "par_difficulty_0to4")
	}
	b.ReportMetric(res.AmdahlBreakable, "amdahl_x")
}

func BenchmarkTable3(b *testing.B) {
	for _, wl := range workloads.All() {
		b.Run(sanitize(wl.Name), func(b *testing.B) { benchTable3(b, wl.Name) })
	}
}

// ---- §6 baseline: Fortuna-style task-level limit study ----

func BenchmarkFortunaBaseline(b *testing.B) {
	workloads.SetScale(benchScale)
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := study.RunFortunaAll(7)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Limit
		}
		avg = sum / float64(len(rows))
	}
	b.ReportMetric(avg, "avg_task_speedup_x")
}

// ---- Latent-parallelism validation: real goroutine speedup ----

const benchKernel = `
function kernel(i) {
  var acc = 0;
  for (var j = 0; j < 40; j++) {
    acc += (i * 31 + j * j) % 97;
  }
  return acc;
}
`

func benchParallelLoops(b *testing.B, workers int) {
	k := &parallel.Kernel{Source: benchKernel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.MapParallel(2048, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != 2048 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkParallelLoops1Worker(b *testing.B)  { benchParallelLoops(b, 1) }
func BenchmarkParallelLoops2Workers(b *testing.B) { benchParallelLoops(b, 2) }
func BenchmarkParallelLoops4Workers(b *testing.B) { benchParallelLoops(b, 4) }

// ---- Adaptive work-stealing scheduler ladder (internal/sched) ----

// The ladder runs the raytracer's balanced primary-ray kernel and its
// deliberately imbalanced supersampling variant (per-element cost
// concentrated in the low-index corner) through the work-stealing
// MapParallel at 1/2/4/8 workers, next to a static even-split reference
// rebuilt on the same Worker API — the pre-scheduler dispatch, kept so
// the stealing win on skewed work is *measured*, not asserted. The
// steals/op metric shows how much rebalancing each run needed (≈0 on
// the balanced kernel, substantial on the skewed one).

func schedBenchKernel(b *testing.B, loop string) (*parallel.Kernel, int) {
	b.Helper()
	ek, err := workloads.ExecKernelByLoop(loop)
	if err != nil {
		b.Fatal(err)
	}
	return &parallel.Kernel{Source: ek.KernelSource()}, ek.N / 2
}

func benchSched(b *testing.B, loop string, workers int) {
	k, n := schedBenchKernel(b, loop)
	steals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.MapParallel(n, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != n {
			b.Fatal("bad result")
		}
		steals += res.Sched.Steals
	}
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
}

// benchSchedStatic is the pre-scheduler dispatch — one contiguous even
// chunk per worker, no stealing — as the ladder's reference point.
func benchSchedStatic(b *testing.B, loop string, workers int) {
	k, n := schedBenchKernel(b, loop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]value.Value, n)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w, err := k.NewWorker()
				if err != nil {
					errs[wi] = err
					return
				}
				for j := wi * n / workers; j < (wi+1)*n/workers; j++ {
					v, err := w.CallKernel(j)
					if err != nil {
						errs[wi] = err
						return
					}
					out[j] = v
				}
			}(wi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSchedBalanced1Worker(b *testing.B)  { benchSched(b, "primary-ray", 1) }
func BenchmarkSchedBalanced2Workers(b *testing.B) { benchSched(b, "primary-ray", 2) }
func BenchmarkSchedBalanced4Workers(b *testing.B) { benchSched(b, "primary-ray", 4) }
func BenchmarkSchedBalanced8Workers(b *testing.B) { benchSched(b, "primary-ray", 8) }

func BenchmarkSchedSkewed1Worker(b *testing.B)  { benchSched(b, "skewed", 1) }
func BenchmarkSchedSkewed2Workers(b *testing.B) { benchSched(b, "skewed", 2) }
func BenchmarkSchedSkewed4Workers(b *testing.B) { benchSched(b, "skewed", 4) }
func BenchmarkSchedSkewed8Workers(b *testing.B) { benchSched(b, "skewed", 8) }

func BenchmarkSchedSkewedStatic2Workers(b *testing.B) { benchSchedStatic(b, "skewed", 2) }
func BenchmarkSchedSkewedStatic4Workers(b *testing.B) { benchSchedStatic(b, "skewed", 4) }
func BenchmarkSchedSkewedStatic8Workers(b *testing.B) { benchSchedStatic(b, "skewed", 8) }

// ---- Speculative ParallelArray execution (internal/autopar) ----

// The full §5.1/§5.3 loop: ParallelArray.mapPar profiles under the
// purity guard, then dispatches the remainder across share-nothing
// worker interpreters. Workers >= 2 exercises serialization, dispatch
// and merge; 1 is the guarded sequential baseline.
const autoparBenchSrc = `
var input = [];
for (var i = 0; i < 2048; i++) { input.push(i % 251); }
var out = ParallelArray(input).mapPar(function (x, i) {
  var acc = 0;
  for (var j = 0; j < 24; j++) { acc += (x * 31 + i + j * j) % 97; }
  return acc;
});
var sig = out.get(0) + out.get(2047);
`

func benchAutopar(b *testing.B, workers int) {
	prog := parser.MustParse(autoparBenchSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New()
		st := rivertrail.Install(in)
		st.SetWorkers(workers)
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
		rep := st.Last()
		if workers >= 2 && (!rep.Parallel || rep.Workers < 2) {
			b.Fatalf("speculation did not engage: %+v", rep)
		}
		if workers < 2 && rep.Workers != 1 {
			b.Fatalf("sequential baseline dispatched: %+v", rep)
		}
	}
}

func BenchmarkAutoparSequential(b *testing.B) { benchAutopar(b, 1) }
func BenchmarkAutopar2Workers(b *testing.B)   { benchAutopar(b, 2) }
func BenchmarkAutopar4Workers(b *testing.B)   { benchAutopar(b, 4) }
func BenchmarkAutopar8Workers(b *testing.B)   { benchAutopar(b, 8) }

// ---- Guard elision: static proof vs. speculation ----

// The same kernel, same worker count, with and without a static proof.
// StaticOff pays the full speculation protocol (guarded profile slice
// on the main interpreter, per-worker guards on every dispatch);
// StaticAssist proves the kernel pure once and runs with zero Guard
// hooks anywhere. The delta is pure per-write hook overhead — a
// sequential cost, so it is measurable even on a single-CPU host.
func benchAutoparStatic(b *testing.B, workers int, mode autopar.StaticMode) {
	prog := parser.MustParse(autoparBenchSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New()
		st := rivertrail.Install(in)
		o := st.Options()
		o.Workers = workers
		o.Static = mode
		st.SetOptions(o)
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
		rep := st.Last()
		if mode != autopar.StaticOff && !rep.GuardElided {
			b.Fatalf("static %v did not elide the guard: %+v", mode, rep)
		}
		if mode == autopar.StaticOff && rep.GuardElided {
			b.Fatalf("guard elided without a static mode: %+v", rep)
		}
	}
}

func BenchmarkAutoparStaticOff1Worker(b *testing.B) {
	benchAutoparStatic(b, 1, autopar.StaticOff)
}
func BenchmarkAutoparStaticAssist1Worker(b *testing.B) {
	benchAutoparStatic(b, 1, autopar.StaticAssist)
}
func BenchmarkAutoparStaticOff4Workers(b *testing.B) {
	benchAutoparStatic(b, 4, autopar.StaticOff)
}
func BenchmarkAutoparStaticAssist4Workers(b *testing.B) {
	benchAutoparStatic(b, 4, autopar.StaticAssist)
}

// ---- River Trail primitive speedups (reduce / filter / scan) ----

// The histogram kernel (96×64 procedural image) exercises each primitive
// with the workload shapes of internal/workloads/histogram.go.
const histogramN = 96 * 64

func benchReduce(b *testing.B, workers int) {
	k := &parallel.Kernel{Source: workloads.HistogramKernelSrc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := k.ReduceParallel(histogramN, workers)
		if err != nil {
			b.Fatal(err)
		}
		if v.ToNumber() <= 0 {
			b.Fatal("empty reduction")
		}
	}
}

func BenchmarkParallelReduce1Worker(b *testing.B)  { benchReduce(b, 1) }
func BenchmarkParallelReduce2Workers(b *testing.B) { benchReduce(b, 2) }
func BenchmarkParallelReduce4Workers(b *testing.B) { benchReduce(b, 4) }

func benchFilter(b *testing.B, workers int) {
	k := &parallel.Kernel{Source: workloads.HistogramKernelSrc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.FilterParallel(histogramN, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Indices) == 0 {
			b.Fatal("empty filter")
		}
	}
}

func BenchmarkParallelFilter1Worker(b *testing.B)  { benchFilter(b, 1) }
func BenchmarkParallelFilter2Workers(b *testing.B) { benchFilter(b, 2) }
func BenchmarkParallelFilter4Workers(b *testing.B) { benchFilter(b, 4) }

func benchScan(b *testing.B, workers int) {
	k := &parallel.Kernel{Source: workloads.HistogramKernelSrc}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.ScanParallel(histogramN, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != histogramN {
			b.Fatal("bad scan")
		}
	}
}

func BenchmarkParallelScan1Worker(b *testing.B)  { benchScan(b, 1) }
func BenchmarkParallelScan2Workers(b *testing.B) { benchScan(b, 2) }
func BenchmarkParallelScan4Workers(b *testing.B) { benchScan(b, 4) }

// ---- Concurrent study orchestrator: Table 2/3 regeneration ----

// benchStudyRunAll regenerates the full Table 2 + Table 3 + Amdahl
// pipeline (the -table=all path of cmd/casestudy) on a worker pool; the
// output is byte-identical at every worker count, so the only variable
// is wall clock.
func benchStudyRunAll(b *testing.B, workers int) {
	workloads.SetScale(workloads.Scale{Div: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := study.RunAll(7, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 12 {
			b.Fatal("missing app results")
		}
	}
}

func BenchmarkStudyRunAll1Worker(b *testing.B)  { benchStudyRunAll(b, 1) }
func BenchmarkStudyRunAll2Workers(b *testing.B) { benchStudyRunAll(b, 2) }
func BenchmarkStudyRunAll4Workers(b *testing.B) { benchStudyRunAll(b, 4) }
func BenchmarkStudyRunAll8Workers(b *testing.B) { benchStudyRunAll(b, 8) }

// ---- Ablations ----

// BenchmarkAblationInstrumentationOverhead measures the real (host) cost
// of each instrumentation stage on the same workload — the rationale for
// the paper's *staged* design (§3: "the three modes are separated in
// order to minimize the bias ... due to the instrumentation overhead").
func BenchmarkAblationInstrumentationOverhead(b *testing.B) {
	workloads.SetScale(workloads.Scale{Div: 8})
	modes := []struct {
		name  string
		hooks func(in *interp.Interp) interp.Hooks
	}{
		{"none", func(in *interp.Interp) interp.Hooks { return nil }},
		{"light", func(in *interp.Interp) interp.Hooks { return core.NewLightProfiler(in) }},
		{"loops", func(in *interp.Interp) interp.Hooks { return core.NewLoopProfiler(in) }},
		{"deps", func(in *interp.Interp) interp.Hooks { return core.NewDepAnalyzer(ast.NoLoop) }},
		{"deps-focused", func(in *interp.Interp) interp.Hooks {
			// focusing on a single loop (the paper's §3.3 workflow) skips
			// most warning bookkeeping
			return core.NewDepAnalyzer(ast.LoopID(2))
		}},
	}
	wl, err := workloads.ByName("fluidSim")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := workloads.NewInterp(7)
				if h := m.hooks(in); h != nil {
					in.SetHooks(h)
				}
				if _, err := workloads.Run(wl, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStampCaching isolates the snapshot-cache design in the
// dependence analyzer: stamps are shared until the loop stack changes.
func BenchmarkAblationStampCaching(b *testing.B) {
	src := `
var a = new Array(512);
for (var i = 0; i < 512; i++) {
  a[i] = i;
  a[i] += 1;
  a[i] *= 2;
}
`
	for i := 0; i < b.N; i++ {
		prog := parser.MustParse(src)
		in := interp.New()
		dep := core.NewDepAnalyzer(ast.NoLoop)
		in.SetHooks(dep)
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Engine microbenchmarks (substrate cost transparency) ----

func BenchmarkLexer(b *testing.B) {
	src := nbodyBench
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		toks, errs := lexer.ScanAll(src)
		if len(errs) > 0 || len(toks) == 0 {
			b.Fatal("lex failed")
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := nbodyBench
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterArith(b *testing.B) {
	prog := parser.MustParse(`
var s = 0;
for (var i = 0; i < 10000; i++) { s += i * 3 % 7; }
`)
	for i := 0; i < b.N; i++ {
		in := interp.New()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Compiled vs tree-walk evaluator (interp.SetCompile) ----

// The engine pair runs the same program on both evaluators; the
// conformance suite proves the outputs identical, so the delta here is
// pure dispatch cost (slot reads vs map lookups, folded constants,
// pre-resolved call sites). BENCH_interp.json holds the full
// kernel × worker ladder; these two are the quick in-tree probes.

const engineBenchSrc = `
var acc = 0;
function inner(x, j) { return (x * 31 + j * j) % 97; }
function kernel(i) {
  var s = 0;
  for (var j = 0; j < 25; j++) { s += inner(i, j); }
  return s;
}
for (var i = 0; i < 400; i++) { acc += kernel(i); }
`

func benchInterpEngine(b *testing.B, compiled bool) {
	prog, err := interp.Load(engineBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		in := interp.New()
		in.SetCompile(compiled)
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpTreeWalk(b *testing.B) { benchInterpEngine(b, false) }
func BenchmarkInterpCompiled(b *testing.B) { benchInterpEngine(b, true) }

// The same pair under the parallel worker pool: benchParallelLoops
// above runs compiled (the Kernel default); this is its tree-walk
// baseline at the same worker count.
func BenchmarkParallelLoops4WorkersTreeWalk(b *testing.B) {
	k := &parallel.Kernel{Source: benchKernel, TreeWalk: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.MapParallel(2048, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != 2048 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkGeckoSampler(b *testing.B) {
	prog := parser.MustParse(`
function leaf() { return 1; }
var s = 0;
for (var i = 0; i < 2000; i++) { s += leaf(); }
`)
	for i := 0; i < b.N; i++ {
		in := interp.New()
		in.SetHooks(gecko.NewSampler(in))
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelford(b *testing.B) {
	var w core.Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
	if w.N() == 0 {
		b.Fatal("no samples")
	}
}

func BenchmarkCharacterize(b *testing.B) {
	stamp := core.Stamp{{Loop: 1, Instance: 3, Iteration: 9}}
	cur := core.Stamp{{Loop: 1, Instance: 3, Iteration: 9}, {Loop: 4, Instance: 77, Iteration: 5}}
	var c core.Characterization
	for i := 0; i < b.N; i++ {
		c = core.Characterize(stamp, cur)
	}
	if len(c) != 2 {
		b.Fatal("bad characterization")
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r == ' ' || r == '.' || r == '-':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Silence unused-import lint in case build tags change.
var _ = fmt.Sprintf
