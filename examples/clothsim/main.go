// Command clothsim runs the Tear-able Cloth workload under all three JS-CERES
// modes and prints the full per-application analysis: the Table 2 row,
// the Table 3 nest rows, and the top dependence warnings that explain the
// "medium" difficulty judgment.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/study"
	"repro/internal/workloads"
)

func main() {
	wl, err := workloads.ByName("Tear-able Cloth")
	if err != nil {
		log.Fatal(err)
	}
	workloads.SetScale(workloads.Scale{Div: 2})

	res, err := study.RunDeep(wl, 7)
	if err != nil {
		log.Fatal(err)
	}

	t2 := res.Table2
	fmt.Println("Tear-able Cloth — Verlet cloth simulation (Table 1: Games)")
	fmt.Printf("\nrunning time (Table 2 row):\n")
	fmt.Printf("  total %.2fs, active %.2fs, in loops %.2fs\n", t2.TotalS, t2.ActiveS, t2.LoopsS)
	if t2.ActiveBelowLoops() {
		fmt.Println("  active < in-loops: the relaxation pass runs inline in one function,")
		fmt.Println("  so the function-granularity sampler undercounts it (§3.1's anomaly)")
	}

	fmt.Printf("\nloop nests (Table 3 rows):\n")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  nest\t%loop\tinstances\ttrips\tdivergence\tDOM\tdeps\tparallelization")
	for _, n := range res.Nests {
		fmt.Fprintf(tw, "  %s\t%.0f\t%d\t%.0f±%.0f\t%s\t%v\t%s\t%s\n",
			n.Label, n.PctLoop, n.Instanc, n.TripMean, n.TripStd,
			n.Divergence, n.DOMAccess, n.DepDiff, n.ParDiff)
	}
	tw.Flush()

	// Dependence detail: why "medium"? Re-run focused on the hot nest.
	in := workloads.NewInterp(7)
	prog, err := workloads.Parse(wl)
	if err != nil {
		log.Fatal(err)
	}
	dep := core.NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(dep)
	if _, err := workloads.Run(wl, in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop dependence warnings:\n")
	count := 0
	for _, w := range dep.Warnings() {
		if w.Kind == core.WarnRecursion {
			continue
		}
		fmt.Printf("  [%7dx] %s\n", w.Count, w.Format(prog.Loops))
		count++
		if count >= 12 {
			break
		}
	}
	fmt.Println("\nThe px/py flow dependences are neighbouring cloth points relaxed")
	fmt.Println("in place — breakable with constraint coloring or double buffering,")
	fmt.Println("hence the paper's (and this tool's) 'medium' judgment.")
	fmt.Printf("\nAmdahl bound counting breakable nests: %.2fx\n", res.AmdahlBreakable)
}
