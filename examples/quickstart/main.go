// Command quickstart runs JS-CERES's dependence analysis on the paper's Fig. 6
// N-body step and print the warning report in the paper's own notation
// ("while(line ..) ok ok → for(line ..) ok dependence").
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
)

// The paper's Fig. 6, with a bounded driver loop so the example
// terminates.
const nbody = `var bodies = [];
function Particle() { this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; this.m = 1; }
var dT = 0.01;
for (var s = 0; s < 32; s++) { bodies.push(new Particle()); }
function computeForces() {
  for (var i = 0; i < bodies.length; i++) {
    var b = bodies[i];
    b.fX = 0.001 * (i % 3 - 1);
    b.fY = 0.001 * (i % 5 - 2);
  }
}
function step() {
  computeForces();
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 8) {
  var com = step();
  steps++;
}
`

func main() {
	prog, err := interp.Load(nbody)
	if err != nil {
		log.Fatal(err)
	}

	in := interp.New()
	dep := core.NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(dep)
	if err := in.Run(prog); err != nil {
		log.Fatal(err)
	}

	fmt.Println("JS-CERES dependence analysis of the paper's Fig. 6 N-body step")
	fmt.Println()
	for _, w := range dep.Warnings() {
		fmt.Printf("%-10s %-10s %s\n", w.Kind, w.Name, w.Char.Format(prog.Loops))
	}

	fmt.Println()
	fmt.Println("reading the report (§3.3):")
	fmt.Println(" - 'ok ok'          iteration-private at that loop: safe")
	fmt.Println(" - 'ok dependence'  shared across iterations: must be broken to parallelize")
	fmt.Println(" - the var-write on p and prop-writes on p.* disappear in the forEach")
	fmt.Println("   variant (see examples/nbody); the com.* flow dependences remain —")
	fmt.Println("   the center-of-mass accumulation makes the loop truly sequential.")

	if vars := dep.PolymorphicVars(); len(vars) == 0 {
		fmt.Println("\npolymorphic variables in hot code: none (matches §4.2)")
	} else {
		fmt.Printf("\npolymorphic variables: %v\n", vars)
	}
}
