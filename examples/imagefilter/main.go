// Command imagefilter walks the paper's whole story on one CamanJS-style kernel:
// (1) JS-CERES clears the per-pixel filter loop as data-parallel
// (disjoint writes, read-only input); (2) the kernel then actually runs
// across goroutines — River-Trail-style map — and (3) the parallel result
// is verified bit-identical to sequential, with the wall-clock speedup
// printed.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/parallel"
)

const width, height = 96, 96

// filterLoop is the sequential form JS-CERES analyzes.
const filterLoop = `
var out = new Array(W * H);
function applyFilter() {
  for (var i = 0; i < W * H; i++) {
    var x = i % W, y = (i / W) | 0;
    var v = input[i];
    var vign = 1 - ((x - W / 2) * (x - W / 2) + (y - H / 2) * (y - H / 2)) / (W * H);
    var c = v * 0.7 + 40;
    c = c * vign;
    out[i] = c > 255 ? 255 : (c < 0 ? 0 : c | 0);
  }
}
applyFilter();
`

// kernel is the same body as a River-Trail-style elemental function.
const kernel = `
function kernel(i) {
  var x = i % W, y = (i / W) | 0;
  var v = input[i];
  var vign = 1 - ((x - W / 2) * (x - W / 2) + (y - H / 2) * (y - H / 2)) / (W * H);
  var c = v * 0.7 + 40;
  c = c * vign;
  return c > 255 ? 255 : (c < 0 ? 0 : c | 0);
}
`

func setup(in *interp.Interp) error {
	elems := make([]value.Value, width*height)
	for i := range elems {
		elems[i] = value.Number(float64((i*31 + 7) % 256))
	}
	in.SetGlobal("input", value.ObjectVal(in.NewArray(elems...)))
	in.SetGlobal("W", value.Int(width))
	in.SetGlobal("H", value.Int(height))
	return nil
}

func main() {
	// ---- step 1: analyze the sequential loop ----
	prog, err := interp.Load(filterLoop)
	if err != nil {
		log.Fatal(err)
	}
	in := interp.New()
	if err := setup(in); err != nil {
		log.Fatal(err)
	}
	lp := core.NewLoopProfiler(in)
	dep := core.NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(interp.NewMultiHooks(lp, dep))
	if err := in.Run(prog); err != nil {
		log.Fatal(err)
	}
	nests := core.ClassifyNests(prog, lp, dep, core.DefaultClassifyOptions())
	if len(nests) == 0 {
		log.Fatal("no loop nest found")
	}
	n := nests[0]
	fmt.Printf("analysis: nest %s — %d trips, deps %s, parallelization %s\n",
		n.Label, int(n.TripMean), n.DepDiff, n.ParDiff)
	if !n.Parallelizable() {
		log.Fatal("analysis says this loop is not parallelizable — not proceeding")
	}

	// ---- step 2: execute it in parallel ----
	k := &parallel.Kernel{Source: kernel, Setup: setup}
	nPixels := width * height

	t0 := time.Now()
	seq, err := k.MapSequential(nPixels)
	if err != nil {
		log.Fatal(err)
	}
	seqDur := time.Since(t0)

	workers := runtime.GOMAXPROCS(0)
	t1 := time.Now()
	par, err := k.MapParallel(nPixels, workers)
	if err != nil {
		log.Fatal(err)
	}
	parDur := time.Since(t1)

	// ---- step 3: verify and report ----
	if !parallel.Equal(seq, par) {
		log.Fatal("parallel result differs from sequential!")
	}
	fmt.Printf("sequential: %v\n", seqDur)
	fmt.Printf("parallel:   %v on %d workers\n", parDur, par.Workers)
	fmt.Printf("speedup:    %.2fx (results verified identical)\n",
		float64(seqDur)/float64(parDur))
	sum := parallel.ReduceNumbers(par, 0, func(a, x float64) float64 { return a + x })
	fmt.Printf("checksum:   %.0f\n", sum)
}
