// Command proxyflow runs the entire Fig. 5 pipeline on localhost:
//
//	web server ← proxy (instruments JS) ← interpreter-as-browser
//	                ↑ results posted back              |
//	                └── human-readable report saved ←──┘
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/instrument"
	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/proxy"
)

const appJS = `
// a small compute-heavy page script
var histogram = new Array(16);
for (var i = 0; i < 16; i++) { histogram[i] = 0; }
function hash(x) {
  var h = x | 0;
  h = (h ^ (h >> 4)) * 2654435761;
  return (h >>> 28) & 15;
}
for (var n = 0; n < 5000; n++) {
  histogram[hash(n)]++;
}
`

func main() {
	// 1. the web server
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, appJS)
	}))
	defer origin.Close()

	// 2. the instrumenting proxy, saving reports to ./ceres-reports
	reportDir := filepath.Join(os.TempDir(), "ceres-reports-demo")
	p, err := proxy.New(origin.URL, instrument.ModeLoops, reportDir)
	if err != nil {
		log.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	fmt.Printf("origin: %s\nproxy:  %s\n", origin.URL, front.URL)

	// 3. the "browser" requests the page script through the proxy
	resp, err := http.Get(front.URL + "/app.js")
	if err != nil {
		log.Fatal(err)
	}
	src, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %d bytes of instrumented JavaScript\n", len(src))

	// 4. ... and exercises it
	prog, err := interp.Load(string(src))
	if err != nil {
		log.Fatal(err)
	}
	in := interp.New()
	if err := in.Run(prog); err != nil {
		log.Fatal(err)
	}

	// 5. the page posts its profile back through the proxy
	rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		log.Fatal(err)
	}
	loops, _ := rep.Object().Get("loops")
	payload := map[string]any{
		"totalMs":  rep.Object().GetNumber("totalMs"),
		"numLoops": len(loops.Object().Elems),
	}
	body, _ := json.Marshal(payload)
	post, err := http.Post(front.URL+"/__ceres/results?page=/app.js", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	post.Body.Close()

	// 6-7. the proxy saved the report
	files, _ := filepath.Glob(filepath.Join(reportDir, "report-*.txt"))
	fmt.Printf("reports saved: %v\n", files)
	if len(files) > 0 {
		content, _ := os.ReadFile(files[len(files)-1])
		fmt.Printf("--- latest report ---\n%s", content)
	}
	stats := p.Stats()
	fmt.Printf("\nproxy stats: %d instrumented, %d passthrough, %d failures, %d rewrites (%d cache hits)\n",
		stats.Instrumented, stats.Passthrough, stats.Failures, stats.Rewrites, stats.CacheHits)
}
