// Command nbody contrasts the two variants of the paper's §3.3 example: the plain
// for-loop N-body step and the forEach-style rewrite. Extracting the loop
// body into a function privatizes the function-scoped `p`, so JS-CERES
// drops the p.* warnings; the com.* accumulation warnings survive in both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
)

const common = `var bodies = [];
function Particle() { this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; this.m = 1; }
var dT = 0.01;
for (var s = 0; s < 24; s++) { bodies.push(new Particle()); }
function computeForces() {
  for (var i = 0; i < bodies.length; i++) {
    var b = bodies[i];
    b.fX = 0.001 * (i % 3 - 1);
    b.fY = 0.001 * (i % 5 - 2);
  }
}
`

const plainLoop = common + `
function step() {
  computeForces();
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 6) { var com = step(); steps++; }
`

const forEachStyle = common + `
function step() {
  computeForces();
  var com = new Particle();
  bodies.forEach(function (p) {
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  });
  return com;
}
var steps = 0;
while (steps < 6) { var com = step(); steps++; }
`

func analyze(label, src string) map[string]bool {
	prog, err := interp.Load(src)
	if err != nil {
		log.Fatal(err)
	}
	in := interp.New()
	dep := core.NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(dep)
	if err := in.Run(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", label)
	names := map[string]bool{}
	for _, w := range dep.Warnings() {
		if w.Kind == core.WarnRecursion {
			continue
		}
		names[w.Kind.String()+" "+w.Name] = true
		fmt.Printf("  %-10s %-8s %s\n", w.Kind, w.Name, w.Char.Format(prog.Loops))
	}
	fmt.Println()
	return names
}

func main() {
	plain := analyze("plain for-loop (Fig. 6)", plainLoop)
	foreach := analyze("forEach variant (§3.3)", forEachStyle)

	fmt.Println("=== difference (warnings the rewrite removed) ===")
	removed := 0
	for name := range plain {
		if !foreach[name] {
			fmt.Println("  -", name)
			removed++
		}
	}
	if removed == 0 {
		fmt.Println("  (none)")
	}
	fmt.Println()
	fmt.Println("The paper's point: the p.* warnings were artifacts of JavaScript's")
	fmt.Println("function-scoped var; restructuring in functional style removes them,")
	fmt.Println("leaving only the real sequential dependence (the com accumulator).")
}
