package effects_test

// Corpus cross-check: every micro-kernel gets a static verdict from the
// prover AND a dynamic verdict from the runtime Guard (a full guarded
// sequential run through autopar), and the two must relate soundly:
//
//   - Proven  ⇒ the Guard observes no violation. This is the hard
//     soundness invariant behind guard elision; any counterexample is a
//     prover bug.
//   - Refuted ⇒ the Guard observes a violation, unless the refutation
//     is outside the Guard's vocabulary (guardExempt: nondeterministic
//     natives are reads, console is output, a flow-insensitive
//     refutation of a never-executed write).
//   - Unknown ⇒ no constraint; both dynamically-pure and -impure
//     kernels legitimately land here. Where the dynamic outcome is
//     deterministic the case pins it anyway (dynPure) so a future
//     precision change is a conscious one.
//
// The suite runs under -race in CI.

import (
	"strings"
	"testing"

	"repro/internal/autopar"
	"repro/internal/effects"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

type corpusCase struct {
	name     string
	prelude  string
	elem     string
	want     effects.Verdict
	wantCode string // must appear in the reason-code chain ("" = no check)
	// guardExempt marks Refuted cases the runtime Guard cannot see.
	guardExempt bool
	// dynPure pins the dynamic verdict for Unknown cases ("" = don't
	// check, "pure", "impure").
	dynPure string
}

var corpus = []corpusCase{
	// ---- Proven: pure arithmetic and control flow ----
	{name: "arith", elem: `function (x, i) { return x * 2 + 1; }`, want: effects.Proven},
	{name: "branching", elem: `function (x, i) { if (x > 3) { return x - 1; } return x + 1; }`, want: effects.Proven},
	{name: "local-accum-loop", elem: `function (x, i) { var s = 0; for (var j = 0; j < 8; j++) { s += j * x; } return s; }`, want: effects.Proven},
	{name: "string-concat", elem: `function (x, i) { return "v" + x; }`, want: effects.Proven},
	{name: "ternary", elem: `function (x, i) { return x % 2 ? -x : x; }`, want: effects.Proven},
	{name: "typeof-unary", elem: `function (x, i) { return typeof x === "number" ? -x : 0; }`, want: effects.Proven},
	{name: "do-while", elem: `function (x, i) { var s = x; do { s -= 1; } while (s > 0); return s; }`, want: effects.Proven},
	{name: "switch", elem: `function (x, i) { switch (i % 3) { case 0: return x; case 1: return x * 2; default: return 0; } }`, want: effects.Proven},
	{name: "try-catch-pure", elem: `function (x, i) { try { return x + 1; } catch (e) { return 0; } }`, want: effects.Proven},

	// ---- Proven: fresh allocations ----
	{name: "fresh-array-fill", elem: `function (x, i) { var a = []; for (var j = 0; j < 4; j++) { a[j] = x + j; } return a[0]; }`, want: effects.Proven},
	{name: "fresh-object-build", elem: `function (x, i) { var o = {}; o.v = x; o.w = x * 2; return o.v + o.w; }`, want: effects.Proven},
	{name: "fresh-array-literal-init", elem: `function (x, i) { var a = [x, x + 1]; a[0] = a[1]; return a[0]; }`, want: effects.Proven},

	// ---- Proven: ambient builtins used deterministically ----
	{name: "math-members", elem: `function (x, i) { return Math.floor(Math.sqrt(x)) + Math.PI; }`, want: effects.Proven},
	{name: "math-computed-literal-call", elem: `function (x, i) { return Math["sqrt"](x); }`, want: effects.Proven},
	{name: "ambient-pure-calls", elem: `function (x, i) { return parseInt("4", 10) + Number(x) + (isNaN(x) ? 1 : 0); }`, want: effects.Proven},

	// ---- Proven: captured reads and interpreted callees ----
	{name: "read-captured-primitive", prelude: `var scale = 3;`, elem: `function (x, i) { return x * scale; }`, want: effects.Proven},
	{name: "read-captured-array", prelude: `var lut = [1, 2, 3, 4];`, elem: `function (x, i) { return lut[i % 4] + x; }`, want: effects.Proven},
	{name: "pure-helper", prelude: `function sq(v) { return v * v; }`, elem: `function (x, i) { return sq(x) + sq(i); }`, want: effects.Proven},
	{name: "helper-chain", prelude: `function a1(v) { return b1(v) + 1; } function b1(v) { return v * 2; }`, elem: `function (x, i) { return a1(x); }`, want: effects.Proven},
	{name: "recursive-helper", prelude: `function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }`, elem: `function (x, i) { return fib(x % 8); }`, want: effects.Proven},
	{name: "mutual-recursion", prelude: `function even(n) { if (n <= 0) { return 1; } return odd(n - 1); } function odd(n) { if (n <= 0) { return 0; } return even(n - 1); }`, elem: `function (x, i) { return even(x % 6); }`, want: effects.Proven},
	{name: "helper-with-fresh-state", prelude: `function sum3(v) { var t = [v, v + 1, v + 2]; return t[0] + t[1] + t[2]; }`, elem: `function (x, i) { return sum3(x); }`, want: effects.Proven},

	// ---- Proven: shadowing and closures ----
	{name: "shadow-date-nested-block", elem: `function (x, i) { if (x > 0) { var Date = 10; return x + Date; } return x; }`, want: effects.Proven},
	{name: "shadow-math-local", elem: `function (x, i) { var Math = 3; return x * Math; }`, want: effects.Proven},
	{name: "closure-own-local", elem: `function (x, i) { var s = 0; var add = function (v) { s += v; }; add(x); add(i); return s; }`, want: effects.Proven},
	{name: "iife", elem: `function (x, i) { return (function (y) { return y * y; })(x); }`, want: effects.Proven},
	{name: "local-funclit-recursion", elem: `function (x, i) { var f = function (n) { return n <= 0 ? 0 : n + f(n - 1); }; return f(x % 5); }`, want: effects.Proven},

	// ---- Refuted: provable writes to captured/global state ----
	{name: "global-write", prelude: `var g1 = 0;`, elem: `function (x, i) { g1 = x; return x; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "global-compound", prelude: `var g2 = 0;`, elem: `function (x, i) { g2 += x; return g2; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "global-increment", prelude: `var g3 = 0;`, elem: `function (x, i) { g3++; return g3; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "noop-self-assign", prelude: `var g4 = 7;`, elem: `function (x, i) { g4 = g4; return x; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "captured-array-write", prelude: `var buf = [0, 0, 0, 0];`, elem: `function (x, i) { buf[i % 4] = x; return x; }`, want: effects.Refuted, wantCode: "mutates-free-object"},
	{name: "captured-object-write", prelude: `var st = { hits: 0 };`, elem: `function (x, i) { st.hits = x; return x; }`, want: effects.Refuted, wantCode: "mutates-free-object"},
	{name: "write-in-nested-closure", prelude: `var g5 = 0;`, elem: `function (x, i) { (function () { g5 = x; })(); return x; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "forin-undeclared-write", prelude: `var k = 0; var src = { a: 1, b: 2 };`, elem: `function (x, i) { var s = 0; for (k in src) { s += src[k]; } return s + x; }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "impure-helper", prelude: `var n1 = 0; function bump(v) { n1 += v; return n1; }`, elem: `function (x, i) { return bump(x); }`, want: effects.Refuted, wantCode: "writes-free-var"},
	{name: "impure-recursive-helper", prelude: `var n2 = 0; function rec2(n) { if (n <= 0) { return 0; } n2 += 1; return rec2(n - 1); }`, elem: `function (x, i) { return rec2(x % 4); }`, want: effects.Refuted, wantCode: "writes-free-var"},
	// Flow-insensitive: the write never executes, so the Guard stays
	// clean — the prover refutes anyway (it proves absence, not paths).
	{name: "dead-global-write", prelude: `var g6 = 0;`, elem: `function (x, i) { if (false) { g6 = x; } return x; }`, want: effects.Refuted, wantCode: "writes-free-var", guardExempt: true},
	// delete of a captured property: a mutation the hook vocabulary may
	// not carry; exempt from the dynamic cross-check either way.
	{name: "delete-captured-prop", prelude: `var st2 = { f: 1 };`, elem: `function (x, i) { delete st2.f; return x; }`, want: effects.Refuted, wantCode: "mutates-free-object", guardExempt: true},

	// ---- Refuted: nondeterministic natives (reads, not writes — the
	// Guard never sees them, which is exactly why the static column
	// exists alongside the dynamic one) ----
	{name: "math-random", elem: `function (x, i) { return x + Math.random(); }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},
	{name: "math-random-computed", elem: `function (x, i) { return x + Math["random"](); }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},
	{name: "date-now", elem: `function (x, i) { return x + Date.now() * 0; }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},
	{name: "new-date", elem: `function (x, i) { if (x < 0) { var d = new Date(); } return x; }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},
	{name: "performance-now", elem: `function (x, i) { return x + performance.now() * 0; }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},
	{name: "console-log", elem: `function (x, i) { console.log(x); return x; }`, want: effects.Refuted, wantCode: "nondet-native", guardExempt: true},

	// ---- Unknown: computed and aliased writes. The analyzer is
	// flow-insensitive, so kernels below hide their dubious operation
	// behind a never-true branch where it would throw at runtime (kernel
	// exceptions propagate as panics outside a JS try/catch) — the
	// verdict is identical either way. ----
	{name: "param-member-write", elem: `function (x, i) { if (x < 0) { x.f = 1; } return i; }`, want: effects.Unknown, wantCode: "unproven-member-write", dynPure: "pure"},
	{name: "aliased-capture-write", prelude: `var shared = [9, 9];`, elem: `function (x, i) { var a = shared; a[0] = x; return x; }`, want: effects.Unknown, wantCode: "unproven-member-write", dynPure: "impure"},
	{name: "sometimes-fresh", prelude: `var ext = [1];`, elem: `function (x, i) { var a = []; if (x > 2) { a = ext; } a[0] = x; return x; }`, want: effects.Unknown, wantCode: "unproven-member-write"},
	{name: "deep-chain-write", elem: `function (x, i) { var a = []; a[0] = []; a[0][0] = x; return a[0][0]; }`, want: effects.Unknown, wantCode: "deep-member-write", dynPure: "pure"},

	// ---- Unknown: unresolvable and dynamic callees ----
	{name: "unresolved-callee", elem: `function (x, i) { return x < 0 ? mystery(x) : x; }`, want: effects.Unknown, wantCode: "unresolved-callee", dynPure: "pure"},
	// A named function expression does NOT bind its own name at runtime
	// (FuncLit.Name is display only), so `rec` is a genuinely free name
	// the prover must refuse to resolve.
	{name: "named-funcexpr-self-call", elem: `function (x, i) { var f = function rec(n) { return n <= 0 ? 0 : rec(n - 1); }; return x < 0 ? f(x) : x; }`, want: effects.Unknown, wantCode: "unresolved-callee", dynPure: "pure"},
	{name: "param-callee", elem: `function (x, i) { return x < 0 ? x(i) : i; }`, want: effects.Unknown, wantCode: "unresolved-local-callee", dynPure: "pure"},
	{name: "reassigned-local-fn", prelude: `function p1(v) { return v; } function p2(v) { return -v; }`, elem: `function (x, i) { var h = p1; if (x > 2) { h = p2; } return h(x); }`, want: effects.Unknown, wantCode: "unresolved-local-callee", dynPure: "pure"},
	{name: "callee-is-data", prelude: `var tbl = [1, 2];`, elem: `function (x, i) { return x < 0 ? tbl(x) : x; }`, want: effects.Unknown, wantCode: "calls-non-function", dynPure: "pure"},
	{name: "computed-callee", prelude: `var fns = [0];`, elem: `function (x, i) { return x < 0 ? fns[0](x) : x; }`, want: effects.Unknown, wantCode: "computed-callee", dynPure: "pure"},
	{name: "method-call", prelude: `var obj = { m: 0 };`, elem: `function (x, i) { return x < 0 ? obj.m(x) : x; }`, want: effects.Unknown, wantCode: "method-call", dynPure: "pure"},
	{name: "constructor-call", elem: `function (x, i) { if (x < 0) { var o = new Object(); } return x; }`, want: effects.Unknown, wantCode: "constructor-call", dynPure: "pure"},
	{name: "ambient-call-offlist", elem: `function (x, i) { if (x < 0) { var e = Error("boom"); } return x; }`, want: effects.Unknown, wantCode: "ambient-call", dynPure: "pure"},

	// ---- Unknown: dynamic scope and Math aliasing ----
	{name: "this-escape", elem: `function (x, i) { if (x < 0) { return this.v; } return x; }`, want: effects.Unknown, wantCode: "this-scope", dynPure: "pure"},
	{name: "math-alias", elem: `function (x, i) { var m = Math; return m.floor(x); }`, want: effects.Unknown, wantCode: "aliases-math", dynPure: "pure"},
	{name: "math-computed-key", prelude: `var key = "floor";`, elem: `function (x, i) { return Math[key](x); }`, want: effects.Unknown, wantCode: "computed-math-access", dynPure: "pure"},
}

// runCorpusKernel runs the kernel through a full guarded sequential
// pass (Workers: 1 — everything profiles under the Guard on the main
// interpreter) and returns the dynamic outcome.
func runCorpusKernel(t *testing.T, c corpusCase) autopar.Outcome {
	t.Helper()
	in := interp.New()
	prog, err := parser.Parse(c.prelude + "\nvar __f = (" + c.elem + ");\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run prelude: %v", err)
	}
	fn := in.Global("__f")
	elems := make([]value.Value, 16)
	for i := range elems {
		elems[i] = value.Int(i + 1)
	}
	_, oc := autopar.MapSpec(in, fn, elems, autopar.Options{Workers: 1})
	return oc
}

func TestCorpusStaticVsGuard(t *testing.T) {
	if len(corpus) < 40 {
		t.Fatalf("corpus has %d cases, want >= 40", len(corpus))
	}
	for _, c := range corpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rep, err := effects.AnalyzeKernel(c.prelude, c.elem)
			if err != nil {
				t.Fatalf("AnalyzeKernel: %v", err)
			}
			if rep.Verdict != c.want {
				t.Fatalf("static verdict = %s, want %s (reasons: %v)", rep.Verdict, c.want, rep.Reasons)
			}
			if c.wantCode != "" {
				found := false
				for _, code := range rep.ReasonCodes() {
					if strings.Contains(code, c.wantCode) {
						found = true
					}
				}
				if !found {
					t.Errorf("reason chain %v missing code %q", rep.ReasonCodes(), c.wantCode)
				}
			}
			if c.want == effects.Proven && len(rep.Reasons) != 0 {
				t.Errorf("Proven verdict carries reasons: %v", rep.Reasons)
			}

			oc := runCorpusKernel(t, c)
			dynPure := oc.Pure
			switch {
			case c.want == effects.Proven:
				// Soundness: a Proven kernel must never trip the Guard.
				if !dynPure {
					t.Fatalf("SOUNDNESS: statically Proven but Guard observed: %s", oc.AbortReason)
				}
			case c.want == effects.Refuted && !c.guardExempt:
				// Completeness spot-check: the refuted write really
				// happens and the Guard sees it too.
				if dynPure {
					t.Errorf("statically Refuted (%v) but Guard observed nothing", rep.ReasonCodes())
				}
			}
			switch c.dynPure {
			case "pure":
				if !dynPure {
					t.Errorf("expected dynamically pure, Guard observed: %s", oc.AbortReason)
				}
			case "impure":
				if dynPure {
					t.Errorf("expected dynamically impure, Guard observed nothing")
				}
			}
		})
	}
}

// TestCorpusEnvVsSourceAgreement: the AST-mode resolver (AnalyzeKernel)
// and the closure-environment resolver (autopar.AnalyzeStatic) must
// agree on every corpus kernel — two roads into the same prover.
func TestCorpusEnvVsSourceAgreement(t *testing.T) {
	for _, c := range corpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			srcRep, err := effects.AnalyzeKernel(c.prelude, c.elem)
			if err != nil {
				t.Fatalf("AnalyzeKernel: %v", err)
			}
			in := interp.New()
			prog, err := parser.Parse(c.prelude + "\nvar __f = (" + c.elem + ");\n")
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := in.Run(prog); err != nil {
				t.Fatalf("run: %v", err)
			}
			envRep := autopar.AnalyzeStatic(in, in.Global("__f"))
			if envRep.Verdict != srcRep.Verdict {
				t.Errorf("env verdict %s != source verdict %s (env: %v, src: %v)",
					envRep.Verdict, srcRep.Verdict, envRep.Reasons, srcRep.Reasons)
			}
		})
	}
}
