package effects

// Free-variable analysis over the JS subset, factored out of
// internal/autopar's capture machinery so the runtime capture plan and
// the static purity prover agree on one binding model:
//
//   - a function binds its parameters, every hoisted `var` and inner
//     function declaration (ast.FuncLit.VarNames — the parser hoists
//     nested-block declarations to function scope), and `arguments`.
//     A named function *expression* does NOT bind its own name: the
//     interpreter stores FuncLit.Name for display only, so a self-call
//     through that name resolves through the enclosing scope chain —
//     treating it as bound here would hide a genuinely free variable
//     from both the capture plan and the purity prover. (Function
//     *declarations* are covered by the enclosing VarNames.);
//   - a catch clause binds its exception name for the clause body only;
//   - `for (k in obj)` without `var` references k as a variable even
//     though no Ident node exists for it — the walk reports it as a
//     free *write* when unbound (the pre-factor walk silently missed
//     it);
//   - nested function literals recurse with the extended bound set.
//
// Everything else an Ident can name resolves lexically; an identifier
// not bound by any enclosing function in the walk is free — captured
// from the defining closure environment or global scope.

import (
	"sort"

	"repro/internal/js/ast"
)

// FreeUse is one occurrence of a free variable in a function body. Id
// is the referencing identifier node, or nil for uses with no Ident of
// their own (an undeclared `for (k in ...)` loop variable).
type FreeUse struct {
	Name string
	Id   *ast.Ident
	Line int
}

// FreeNames returns the names fn references but does not bind, sorted
// for deterministic plans.
func FreeNames(fn *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	walkFunc(fn, nil, func(u FreeUse) {
		if !seen[u.Name] {
			seen[u.Name] = true
			out = append(out, u.Name)
		}
	})
	sort.Strings(out)
	return out
}

// FreeUses returns every free-variable occurrence in fn's body in walk
// order. Callers that need per-occurrence decisions (is *this* `Date`
// the global clock, or a kernel-local shadowing it?) use this instead
// of the name set.
func FreeUses(fn *ast.FuncLit) []FreeUse {
	var out []FreeUse
	walkFunc(fn, nil, func(u FreeUse) { out = append(out, u) })
	return out
}

// boundNames builds fn's bound-name set on top of the enclosing one.
func boundNames(fn *ast.FuncLit, outer map[string]bool) map[string]bool {
	bound := make(map[string]bool, len(outer)+len(fn.Params)+len(fn.VarNames)+2)
	for n := range outer {
		bound[n] = true
	}
	for _, n := range fn.Params {
		bound[n] = true
	}
	for _, n := range fn.VarNames {
		bound[n] = true
	}
	bound["arguments"] = true
	return bound
}

// walkFunc walks fn's body with the enclosing bound-name set, calling
// onFree for each free occurrence.
func walkFunc(fn *ast.FuncLit, outer map[string]bool, onFree func(FreeUse)) {
	walkNode(fn.Body, boundNames(fn, outer), onFree)
}

// walkNode scans one statement subtree. Nested function literals
// recurse with an extended bound set; catch clauses bind their
// exception name for the clause body only.
func walkNode(root ast.Node, bound map[string]bool, onFree func(FreeUse)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if !bound[x.Name] {
				onFree(FreeUse{Name: x.Name, Id: x, Line: x.Pos().Line})
			}
		case *ast.ForInStmt:
			// `for (k in obj)` with no var: the loop assigns k as a
			// plain variable reference, but the AST carries only the
			// name. Declared names are hoisted into VarNames already.
			if !x.Declare && !bound[x.Name] {
				onFree(FreeUse{Name: x.Name, Line: x.Pos().Line})
			}
		case *ast.FuncLit:
			walkFunc(x, bound, onFree)
			return false
		case *ast.TryStmt:
			walkNode(x.Body, bound, onFree)
			if x.Catch != nil {
				cb := make(map[string]bool, len(bound)+1)
				for n := range bound {
					cb[n] = true
				}
				cb[x.CatchName] = true
				walkNode(x.Catch, cb, onFree)
			}
			if x.Finally != nil {
				walkNode(x.Finally, bound, onFree)
			}
			return false
		}
		return true
	})
}
