// Package effects is the static purity prover: a flow-insensitive,
// conservative effect analysis over the JS subset AST that classifies a
// kernel function — the elemental of a ParallelArray operation — before
// it ever runs. Where internal/autopar's runtime Guard *observes* writes
// under speculation (paying a hook on every interpreter write, on every
// profiled element and every worker), the prover inspects the function
// body plus its interpreted callees once and returns one of three
// verdicts:
//
//   - Proven: every write lands on a kernel-local variable or a fresh
//     allocation the kernel itself made; every call resolves to an
//     interpreted function that is itself proven (or a whitelisted pure
//     ambient builtin); no nondeterministic native (Math.random, the
//     Date/performance virtual clock, console) is reachable; no dynamic
//     scope escape (`this`, computed callees). A Proven kernel may
//     dispatch with no Guard and no profile slice — the §5.3 abort
//     machinery stays for serialization limits only.
//   - Refuted: the body provably writes captured or global state, or
//     provably calls a nondeterministic native. Dispatch is refused
//     before any speculative work is spent.
//   - Unknown: something the conservative analysis cannot decide —
//     computed member writes on unproven bases, unresolvable callees,
//     aliased captures, `this`. Unknown kernels keep today's
//     speculate-then-verify path: profile under Guard, guarded workers,
//     sequential fallback.
//
// Every non-Proven verdict carries a machine-readable reason chain
// (Reason.Code plus a §5.3-style human detail), mirroring the abort
// reasons the runtime engine reports, so the study can put the static
// column next to the dynamic one and disagreements are inspectable.
package effects

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/token"
)

// Verdict is the three-point lattice of the prover. The zero value is
// Unknown: absent analysis never claims anything.
type Verdict int

const (
	// Unknown means the conservative analysis could not decide; the
	// kernel must stay on the speculative (guarded) path.
	Unknown Verdict = iota
	// Proven means every effect is local: dispatch may elide the Guard
	// and the profile slice entirely.
	Proven
	// Refuted means the kernel provably violates purity: dispatch is
	// refused before any speculative work is spent.
	Refuted
)

func (v Verdict) String() string {
	switch v {
	case Proven:
		return "proven"
	case Refuted:
		return "refuted"
	}
	return "unknown"
}

// Reason is one machine-readable entry of a verdict's reason chain.
type Reason struct {
	// Code is a stable machine-readable identifier (e.g.
	// "writes-free-var", "nondet-native", "unresolved-callee").
	Code string `json:"code"`
	// Detail is the §5.3-style human-readable explanation naming the
	// variable, property or callee.
	Detail string `json:"detail"`
	// Line is the 1-based source line of the offending node (0 when
	// the reason has no single node).
	Line int `json:"line"`
	// Refutes is true when this reason alone forces Refuted (a proven
	// impurity) rather than merely Unknown (an undecidable shape).
	Refutes bool `json:"refutes"`
}

// Report is the prover's result for one kernel.
type Report struct {
	Verdict Verdict  `json:"verdict"`
	Reasons []Reason `json:"reasons,omitempty"`
}

// First returns the first reason's detail ("" for a Proven report) —
// the headline the study tables print.
func (r Report) First() string {
	if len(r.Reasons) == 0 {
		return ""
	}
	return r.Reasons[0].Detail
}

// ReasonCodes returns the distinct codes in chain order.
func (r Report) ReasonCodes() []string {
	var out []string
	seen := map[string]bool{}
	for _, re := range r.Reasons {
		if !seen[re.Code] {
			seen[re.Code] = true
			out = append(out, re.Code)
		}
	}
	return out
}

// CalleeKind classifies what a free name resolves to in the kernel's
// defining environment.
type CalleeKind int

const (
	// CalleeUnknown: the resolver cannot say (unbound, native closure,
	// or no resolver at all). Calling it leaves the verdict Unknown.
	CalleeUnknown CalleeKind = iota
	// CalleeAmbient: the name still means the untouched builtin global
	// (Math, parseInt, ...). The prover's ambient whitelists apply.
	CalleeAmbient
	// CalleeFunc: an interpreted function with an inspectable body.
	CalleeFunc
	// CalleeData: plain data (primitive, array, object) — reading it is
	// pure, calling it is not analyzable.
	CalleeData
)

// Callee is a resolver's answer for one free name.
type Callee struct {
	Kind CalleeKind
	// Fn is the function literal for CalleeFunc.
	Fn *ast.FuncLit
	// Resolve, when non-nil, resolves Fn's own free names (its closure
	// environment differs from the kernel's); nil means "same resolver".
	Resolve Resolver
}

// Resolver maps a free name to what it denotes. A nil Resolver resolves
// ambient builtins and nothing else.
type Resolver func(name string) Callee

// Ambient lists the globals every fresh interpreter installs — shared
// with internal/autopar's capture plan so the static and dynamic
// machinery agree on what "ambient" means.
var Ambient = map[string]bool{
	"Math": true, "console": true, "performance": true, "Date": true,
	"parseInt": true, "parseFloat": true, "isNaN": true, "isFinite": true,
	"NaN": true, "Infinity": true, "undefined": true,
	"Array": true, "Object": true, "String": true, "Number": true,
	"Boolean": true, "Error": true,
}

// ambientPureCall lists the ambient names that are pure when called as
// plain functions (deterministic coercions and fresh allocations).
var ambientPureCall = map[string]bool{
	"parseInt": true, "parseFloat": true, "isNaN": true, "isFinite": true,
	"String": true, "Number": true, "Boolean": true, "Array": true,
}

// maxCalleeDepth bounds the transitive-callee recursion, mirroring the
// capture plan's maxCaptureDepth.
const maxCalleeDepth = 8

// AnalyzeFunc proves, refutes, or gives up on one kernel function.
// resolve supplies the kernel's defining environment (nil = ambient
// builtins only, everything else Unknown).
func AnalyzeFunc(fn *ast.FuncLit, resolve Resolver) Report {
	a := &analysis{visited: map[*ast.FuncLit]bool{}}
	a.analyzeFunc(fn, resolve, 0)
	return a.report()
}

// AnalyzeKernel analyzes an elemental-function source against a prelude
// of top-level declarations (the workloads.ExecKernel shape): helper
// functions and data in the prelude resolve statically, ambient names
// resolve to pristine builtins, anything else is Unknown.
func AnalyzeKernel(prelude, elemental string) (Report, error) {
	prog, err := parser.Parse(prelude + "\nvar __kernel = (" + elemental + ");\n")
	if err != nil {
		return Report{}, fmt.Errorf("effects: parse kernel: %w", err)
	}
	var kernel *ast.FuncLit
	decls := map[string]Callee{}
	for _, s := range prog.Body {
		switch d := s.(type) {
		case *ast.FuncDecl:
			decls[d.Name] = Callee{Kind: CalleeFunc, Fn: d.Fn}
		case *ast.VarDecl:
			for i, name := range d.Names {
				init := d.Inits[i]
				if name == "__kernel" {
					lit, ok := init.(*ast.FuncLit)
					if !ok {
						return Report{}, fmt.Errorf("effects: elemental is not a function literal")
					}
					kernel = lit
					continue
				}
				if lit, ok := init.(*ast.FuncLit); ok {
					decls[name] = Callee{Kind: CalleeFunc, Fn: lit}
				} else {
					decls[name] = Callee{Kind: CalleeData}
				}
			}
		}
	}
	if kernel == nil {
		return Report{}, fmt.Errorf("effects: no kernel function found")
	}
	var res Resolver
	res = func(name string) Callee {
		if c, ok := decls[name]; ok {
			return c
		}
		if Ambient[name] {
			return Callee{Kind: CalleeAmbient}
		}
		return Callee{Kind: CalleeUnknown}
	}
	return AnalyzeFunc(kernel, res), nil
}

// analysis accumulates reasons across the kernel and its transitive
// interpreted callees.
type analysis struct {
	visited map[*ast.FuncLit]bool
	reasons []Reason
	seen    map[string]bool // dedupe key: code@line:detail
}

const maxReasons = 32

func (a *analysis) add(code string, refutes bool, line int, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s@%d:%s", code, line, detail)
	if a.seen == nil {
		a.seen = map[string]bool{}
	}
	if a.seen[key] || len(a.reasons) >= maxReasons {
		return
	}
	a.seen[key] = true
	a.reasons = append(a.reasons, Reason{Code: code, Detail: detail, Line: line, Refutes: refutes})
}

func (a *analysis) report() Report {
	v := Proven
	for _, r := range a.reasons {
		if r.Refutes {
			v = Refuted
			break
		}
		v = Unknown
	}
	return Report{Verdict: v, Reasons: a.reasons}
}

// scope is the per-function analysis context.
type scope struct {
	bound map[string]bool         // lexically bound names (writes allowed)
	fresh map[string]bool         // locals provably holding only fresh allocations
	fns   map[string]*ast.FuncLit // locals provably bound to one kernel-defined function
	res   Resolver
	depth int
}

// analyzeFunc runs both passes over one function: the nondeterminism
// pass (free uses of the clock/RNG/console globals) and the
// write/call/scope pass.
func (a *analysis) analyzeFunc(fn *ast.FuncLit, res Resolver, depth int) {
	if a.visited[fn] {
		return
	}
	a.visited[fn] = true
	a.nondetPass(fn, res)
	sc := scope{
		bound: boundNames(fn, nil),
		fresh: freshLocals(fn),
		fns:   localFuncs(fn),
		res:   res,
		depth: depth,
	}
	// Self-recursion needs no special case: the interpreter does not bind
	// a function's own name inside its body (FuncLit.Name is display
	// only), so a recursive call resolves through the resolver like any
	// other free name and the visited set terminates the walk.
	a.checkNode(fn.Body, sc)
}

// resolveName applies the resolver with the nil-resolver ambient
// fallback.
func resolveName(res Resolver, name string) Callee {
	if res != nil {
		return res(name)
	}
	if Ambient[name] {
		return Callee{Kind: CalleeAmbient}
	}
	return Callee{Kind: CalleeUnknown}
}

// nondetPass refutes free uses of the nondeterministic natives — only
// *free* uses: a kernel-local variable shadowing Date or console (even
// declared in a nested block) is plain data, not the global.
func (a *analysis) nondetPass(fn *ast.FuncLit, res Resolver) {
	parents := baseParents(fn.Body)
	var uses []FreeUse
	walkFunc(fn, nil, func(u FreeUse) { uses = append(uses, u) })
	for _, u := range uses {
		switch u.Name {
		case "Date", "performance":
			a.add("nondet-native", true, u.Line,
				"reads the virtual clock (%s); workers tick independently", u.Name)
		case "console":
			a.add("nondet-native", true, u.Line,
				"writes to the console; output from worker interpreters would be lost")
		case "Math":
			if u.Id == nil {
				continue
			}
			if resolveName(res, "Math").Kind != CalleeAmbient {
				a.add("ambient-rebound", false, u.Line,
					"ambient global Math is shadowed or rebound; its members are not the builtins")
				continue
			}
			switch p := parents[u.Id].(type) {
			case *ast.MemberExpr:
				if p.Name == "random" {
					a.add("nondet-native", true, u.Line,
						"calls Math.random; worker RNG streams diverge from sequential execution")
				}
			case *ast.IndexExpr:
				if lit, ok := p.Index.(*ast.StringLit); ok {
					if lit.Value == "random" {
						a.add("nondet-native", true, u.Line,
							"calls Math.random (computed key); worker RNG streams diverge from sequential execution")
					}
				} else {
					a.add("computed-math-access", false, u.Line,
						"accesses Math by computed key; Math.random cannot be ruled out")
				}
			default:
				a.add("aliases-math", false, u.Line,
					"aliases Math; Math.random cannot be ruled out")
			}
		}
	}
}

// baseParents maps identifier nodes used as a member/index base to the
// member/index expression consuming them.
func baseParents(root ast.Node) map[*ast.Ident]ast.Node {
	m := map[*ast.Ident]ast.Node{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.MemberExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				m[id] = x
			}
		case *ast.IndexExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				m[id] = x
			}
		}
		return true
	})
	return m
}

// checkNode is the write/call/scope pass: every assignment target,
// every call shape, every dynamic-scope escape in the subtree.
func (a *analysis) checkNode(root ast.Node, sc scope) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignExpr:
			a.checkWrite(x.L, sc)
		case *ast.UpdateExpr:
			a.checkWrite(x.X, sc)
		case *ast.UnaryExpr:
			if x.Op == token.DELETE {
				a.checkWrite(x.X, sc)
			}
		case *ast.ForInStmt:
			if !x.Declare && !sc.bound[x.Name] {
				a.add("writes-free-var", true, x.Pos().Line,
					"for-in writes captured or global variable %s", x.Name)
			}
		case *ast.CallExpr:
			a.checkCall(x, sc)
		case *ast.NewExpr:
			a.add("constructor-call", false, x.Pos().Line,
				"calls a constructor with new; its effects are not analyzed")
		case *ast.ThisExpr:
			a.add("this-scope", false, x.Pos().Line,
				"references this; the receiver escapes lexical analysis")
		case *ast.FuncLit:
			a.checkNested(x, sc)
			return false
		case *ast.TryStmt:
			a.checkNode(x.Body, sc)
			if x.Catch != nil {
				cb := sc
				cb.bound = cloneSet(sc.bound)
				cb.bound[x.CatchName] = true
				a.checkNode(x.Catch, cb)
			}
			if x.Finally != nil {
				a.checkNode(x.Finally, sc)
			}
			return false
		}
		return true
	})
}

// checkNested descends into a nested function literal with the extended
// scope: outer locals stay writable (closure semantics), outer fresh
// facts survive unless shadowed.
func (a *analysis) checkNested(fn *ast.FuncLit, sc scope) {
	inner := scope{
		bound: boundNames(fn, sc.bound),
		fresh: cloneSet(sc.fresh),
		fns:   map[string]*ast.FuncLit{},
		res:   sc.res,
		depth: sc.depth,
	}
	shadow := boundNames(fn, nil)
	for n := range shadow {
		delete(inner.fresh, n)
	}
	for n, lit := range sc.fns {
		if !shadow[n] {
			inner.fns[n] = lit
		}
	}
	for n, lit := range localFuncs(fn) {
		inner.fns[n] = lit
	}
	for n := range freshLocals(fn) {
		inner.fresh[n] = true
	}
	a.checkNode(fn.Body, inner)
}

// checkWrite classifies one assignment target.
func (a *analysis) checkWrite(l ast.Expr, sc scope) {
	switch t := l.(type) {
	case *ast.Ident:
		if !sc.bound[t.Name] {
			a.add("writes-free-var", true, t.Pos().Line,
				"writes captured or global variable %s", t.Name)
		}
	case *ast.MemberExpr:
		a.checkMemberWrite(t.X, "."+t.Name, t.Pos().Line, sc)
	case *ast.IndexExpr:
		a.checkMemberWrite(t.X, "[...]", t.Pos().Line, sc)
	default:
		a.add("unsupported-write", false, l.Pos().Line,
			"writes through an unsupported target shape")
	}
}

// checkMemberWrite classifies a property/element write by its base.
func (a *analysis) checkMemberWrite(base ast.Expr, what string, line int, sc scope) {
	id, ok := base.(*ast.Ident)
	if !ok {
		a.add("deep-member-write", false, line,
			"writes%s through a computed or chained base; aliasing cannot be ruled out", what)
		return
	}
	switch {
	case !sc.bound[id.Name]:
		a.add("mutates-free-object", true, line,
			"mutates captured or global object %s%s", id.Name, what)
	case sc.fresh[id.Name]:
		// A direct write into an allocation the kernel provably made.
	default:
		a.add("unproven-member-write", false, line,
			"writes %s%s but %s is not provably a fresh allocation", id.Name, what, id.Name)
	}
}

// checkCall classifies one call shape.
func (a *analysis) checkCall(c *ast.CallExpr, sc scope) {
	switch f := c.Fn.(type) {
	case *ast.Ident:
		name := f.Name
		if sc.bound[name] {
			// A kernel-defined function: its body is walked inline at
			// its definition site. A local name we cannot prove holds
			// exactly one kernel function stays Unknown.
			if sc.fns[name] == nil {
				a.add("unresolved-local-callee", false, f.Pos().Line,
					"calls local %s, which is not provably a single kernel-defined function", name)
			}
			return
		}
		callee := resolveName(sc.res, name)
		switch callee.Kind {
		case CalleeAmbient:
			if !ambientPureCall[name] {
				// Date()/console()/Math() are caught by the nondet
				// pass; the rest are shapes we have no proof for.
				if name != "Date" && name != "performance" && name != "console" {
					a.add("ambient-call", false, f.Pos().Line,
						"calls ambient %s, which is not on the pure-call whitelist", name)
				}
			}
		case CalleeFunc:
			if sc.depth >= maxCalleeDepth {
				a.add("deep-call-chain", false, f.Pos().Line,
					"callee chain deeper than %d functions", maxCalleeDepth)
				return
			}
			res := callee.Resolve
			if res == nil {
				res = sc.res
			}
			a.analyzeFunc(callee.Fn, res, sc.depth+1)
		case CalleeData:
			a.add("calls-non-function", false, f.Pos().Line,
				"calls %s, which resolves to data, not a function", name)
		default:
			a.add("unresolved-callee", false, f.Pos().Line,
				"calls %s, which cannot be resolved to an interpreted function", name)
		}
	case *ast.MemberExpr:
		if id, ok := f.X.(*ast.Ident); ok && id.Name == "Math" && !boundLocally(sc, "Math") {
			// Math.sin(...) and friends: pure when Math is still
			// ambient; Math.random and rebound Math are handled by the
			// nondet pass.
			if resolveName(sc.res, "Math").Kind == CalleeAmbient {
				return
			}
		}
		a.add("method-call", false, f.Pos().Line,
			"calls method .%s on an object; receiver mutation cannot be ruled out", f.Name)
	case *ast.IndexExpr:
		// Math["sqrt"](x): the member call in disguise — pure for a
		// literal, deterministic key on ambient Math. The nondet pass
		// already refutes the "random" key and Unknowns computed ones.
		if id, ok := f.X.(*ast.Ident); ok && id.Name == "Math" && !sc.bound["Math"] {
			if lit, ok := f.Index.(*ast.StringLit); ok && lit.Value != "random" &&
				resolveName(sc.res, "Math").Kind == CalleeAmbient {
				return
			}
		}
		a.add("computed-callee", false, c.Pos().Line,
			"calls a computed expression; the callee cannot be resolved")
	case *ast.FuncLit:
		// An IIFE: the literal's body is walked at its node.
	default:
		a.add("computed-callee", false, c.Pos().Line,
			"calls a computed expression; the callee cannot be resolved")
	}
}

func boundLocally(sc scope, name string) bool { return sc.bound[name] }

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = v
		}
	}
	return out
}

// freshLocals returns fn's own locals that provably hold only fresh
// allocations: non-parameter names whose every assignment anywhere in
// the body (nested closures included, unless the name is shadowed
// there) is an array or object literal. An uninitialized `var a;`
// contributes nothing: a member write before a real assignment throws
// on undefined, which is an effect-free outcome.
func freshLocals(fn *ast.FuncLit) map[string]bool {
	cand := map[string]bool{}
	for _, n := range fn.VarNames {
		cand[n] = true
	}
	for _, p := range fn.Params {
		delete(cand, p)
	}
	kill := func(name string, shadow map[string]bool) {
		if !shadow[name] {
			delete(cand, name)
		}
	}
	var walk func(root ast.Node, shadow map[string]bool)
	walk = func(root ast.Node, shadow map[string]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.VarDecl:
				for i, name := range x.Names {
					if x.Inits[i] != nil && !isFreshExpr(x.Inits[i]) {
						kill(name, shadow)
					}
				}
			case *ast.FuncDecl:
				// The declaration binds the name to a function value.
				kill(x.Name, shadow)
			case *ast.AssignExpr:
				if id, ok := x.L.(*ast.Ident); ok {
					if x.Op != token.ASSIGN || !isFreshExpr(x.R) {
						kill(id.Name, shadow)
					}
				}
			case *ast.UpdateExpr:
				if id, ok := x.X.(*ast.Ident); ok {
					kill(id.Name, shadow)
				}
			case *ast.ForInStmt:
				kill(x.Name, shadow)
			case *ast.FuncLit:
				walk(x.Body, boundNames(x, shadow))
				return false
			}
			return true
		})
	}
	walk(fn.Body, map[string]bool{})
	return cand
}

// isFreshExpr reports whether e provably evaluates to an allocation the
// kernel owns.
func isFreshExpr(e ast.Expr) bool {
	switch e.(type) {
	case *ast.ArrayLit, *ast.ObjectLit:
		return true
	}
	return false
}

// localFuncs maps local names provably bound to exactly one
// kernel-defined function: inner function declarations and
// `var f = function ...` initializers, dropped again if the name is
// ever reassigned.
func localFuncs(fn *ast.FuncLit) map[string]*ast.FuncLit {
	out := map[string]*ast.FuncLit{}
	dead := map[string]bool{}
	note := func(name string, lit *ast.FuncLit) {
		if _, dup := out[name]; dup || dead[name] {
			delete(out, name)
			dead[name] = true
			return
		}
		out[name] = lit
	}
	reassign := func(name string) {
		delete(out, name)
		dead[name] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			note(x.Name, x.Fn)
			return false // the body is walked by the checker, not here
		case *ast.VarDecl:
			for i, name := range x.Names {
				if lit, ok := x.Inits[i].(*ast.FuncLit); ok {
					note(name, lit)
				} else if x.Inits[i] != nil {
					reassign(name)
				}
			}
		case *ast.AssignExpr:
			if id, ok := x.L.(*ast.Ident); ok {
				reassign(id.Name)
			}
		case *ast.UpdateExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				reassign(id.Name)
			}
		case *ast.FuncLit:
			return false // nested scopes keep their own function maps
		}
		return true
	})
	return out
}
