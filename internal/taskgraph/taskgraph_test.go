package taskgraph

import (
	"math"
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// runTasks executes each snippet as one task in a fresh shared program.
func runTasks(t *testing.T, setup string, tasks []string) *Graph {
	t.Helper()
	in := interp.New()
	col := NewCollector(in)
	if setup != "" {
		if err := in.Run(parser.MustParse(setup)); err != nil {
			t.Fatal(err)
		}
	}
	in.SetHooks(col)
	for i, src := range tasks {
		col.BeginTask("task")
		if err := in.Run(parser.MustParse(src)); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		col.EndTask()
	}
	col.EndTask()
	return col.Graph()
}

func TestIndependentTasksFullParallel(t *testing.T) {
	g := runTasks(t, "var a = 0, b = 0, c = 0;", []string{
		"var x1 = 0; for (var i = 0; i < 1000; i++) { x1 += i; } a = x1;",
		"var x2 = 0; for (var i2 = 0; i2 < 1000; i2++) { x2 += i2; } b = x2;",
		"var x3 = 0; for (var i3 = 0; i3 < 1000; i3++) { x3 += i3; } c = x3;",
	})
	if len(g.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(g.Tasks))
	}
	// Each task writes a distinct global... but they share the loop scaffolding
	// only if variables collide; speedup should approach 3.
	limit := g.SpeedupLimit()
	if limit < 2.5 {
		t.Errorf("speedup limit = %.2f, want ~3 for independent tasks", limit)
	}
	if got := g.IndependentPairs(); got != 3 {
		t.Errorf("independent pairs = %d, want 3", got)
	}
}

func TestChainedTasksSequential(t *testing.T) {
	g := runTasks(t, "var acc = 0;", []string{
		"for (var i = 0; i < 500; i++) { acc += i; }",
		"for (var j = 0; j < 500; j++) { acc += j; }",
		"for (var k = 0; k < 500; k++) { acc += k; }",
	})
	limit := g.SpeedupLimit()
	if limit > 1.2 {
		t.Errorf("speedup limit = %.2f, want ~1 for a dependence chain", limit)
	}
	if got := g.IndependentPairs(); got != 0 {
		t.Errorf("independent pairs = %d, want 0", got)
	}
}

func TestReadSharingAllowsParallelism(t *testing.T) {
	// Tasks 2..4 read what task 1 wrote but are mutually independent:
	// limit ≈ work/(t1 + max(t2..t4)).
	g := runTasks(t, "var table = [];", []string{
		"for (var i = 0; i < 300; i++) { table.push(i); }",
		"var s1 = 0; for (var a = 0; a < 300; a++) { s1 += table[a]; }",
		"var s2 = 0; for (var b = 0; b < 300; b++) { s2 += table[b]; }",
		"var s3 = 0; for (var c = 0; c < 300; c++) { s3 += table[c]; }",
	})
	limit := g.SpeedupLimit()
	if limit < 1.5 || limit > 3.0 {
		t.Errorf("speedup limit = %.2f, want ~2 (producer + 3 parallel readers)", limit)
	}
}

func TestWriteAfterReadConflict(t *testing.T) {
	g := runTasks(t, "var shared = {v: 1};", []string{
		"var r = shared.v;",
		"shared.v = 2;", // anti-dependence on task 0
	})
	if len(g.Tasks[1].Deps) == 0 {
		t.Error("write-after-read conflict not detected")
	}
}

func TestObjectGranularity(t *testing.T) {
	// Conservative: element-disjoint writes to one array still conflict.
	g := runTasks(t, "var arr = [0, 0];", []string{
		"arr[0] = 1;",
		"arr[1] = 2;",
	})
	if len(g.Tasks[1].Deps) == 0 {
		t.Error("object-granularity conflict not detected (limit study must be conservative)")
	}
}

func TestCriticalPathComputation(t *testing.T) {
	g := &Graph{Tasks: []*Task{
		{ID: 0, DurNS: 10},
		{ID: 1, DurNS: 20},
		{ID: 2, DurNS: 5, Deps: []int{0, 1}},
	}}
	if cp := g.CriticalPath(); cp != 25 {
		t.Errorf("critical path = %d, want 25", cp)
	}
	if w := g.TotalWork(); w != 35 {
		t.Errorf("total work = %d, want 35", w)
	}
	if l := g.SpeedupLimit(); math.Abs(l-35.0/25.0) > 1e-9 {
		t.Errorf("limit = %v, want 1.4", l)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &Graph{}
	if g.SpeedupLimit() != 1 {
		t.Errorf("empty graph limit = %v, want 1", g.SpeedupLimit())
	}
	if g.IndependentPairs() != 0 {
		t.Errorf("empty graph pairs != 0")
	}
}

func TestCollectorHooksDirect(t *testing.T) {
	in := interp.New()
	col := NewCollector(in)
	col.BeginTask("a")
	b := &interp.Binding{Name: "x"}
	col.VarWrite("x", b)
	col.EndTask()
	col.BeginTask("b")
	col.VarRead("x", b)
	col.EndTask()
	g := col.Graph()
	if len(g.Tasks) != 2 || len(g.Tasks[1].Deps) != 1 {
		t.Fatalf("flow dependence between tasks not recorded: %+v", g.Tasks)
	}
	_ = value.Undefined() // keep import for symmetry with hook signatures
}
