// Streaming pipeline execution: the scheduling half of the produce →
// consume shape Fortuna's limit study (this package's Collector) and
// Brodu et al.'s event-loop-to-pipeline transformation both point at.
// Where the Collector *measures* how much task-level parallelism two
// dependent loops could have, RunPipeline *executes* it: each loop
// becomes a stage, index-range batches stream between stages over
// bounded channels, and the only inter-stage dependence is the batch
// hand-off itself.
//
// Concurrency/determinism contract (DESIGN.md contract #9):
//
//   - Stage isolation: stage s's Body runs only on stage s's worker
//     goroutines; a (stage, worker) slot is touched by exactly one
//     goroutine, so per-slot state (interpreters, guards) needs no
//     locks — the same contract internal/sched gives its worker
//     indices.
//   - Batch ordering: the feeder emits batches in ascending index
//     order and a channel send happens only after Body returned for
//     that batch, so stage s+1 observes a batch strictly after stage
//     s finished it (happens-before via the channel). Arrival *order*
//     at a multi-worker stage is not deterministic; bodies must write
//     only index-addressed state so results never depend on it.
//   - Backpressure: channels hold at most Depth batches. A producer
//     that outruns its consumer blocks on the send (counted in
//     Stalls) instead of buffering unboundedly.
//   - Cancellation: the first Body error closes the done channel;
//     every blocked send/receive selects on it, the feeder stops, and
//     RunPipeline joins all stage goroutines before returning — no
//     goroutine outlives the call, no channel hand-off can deadlock.
package taskgraph

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Stage is one streaming pipeline stage.
type Stage struct {
	// Name labels the stage in faults and telemetry.
	Name string
	// Workers is the stage's goroutine count (< 1 = 1).
	Workers int
	// Body processes elements [lo, hi) of batch b on stage worker w.
	// A non-nil error cancels the whole pipeline.
	Body func(w, b, lo, hi int) error
}

// PipeOptions tunes one RunPipeline call.
type PipeOptions struct {
	// Batch is the number of element indices per streamed batch
	// (0 = DefaultPipeBatch).
	Batch int
	// Depth is each inter-stage channel's capacity in batches
	// (0 = DefaultPipeDepth). Smaller = tighter backpressure.
	Depth int
	// Class declares the latency lane of the work (telemetry; pipeline
	// stages run on their own goroutines, not on a shared Queue — see
	// PipeStats.Class and DESIGN.md contract #9).
	Class sched.Class
}

// DefaultPipeBatch and DefaultPipeDepth are the streaming defaults: 64
// indices per hand-off amortizes channel traffic without starving a
// 2-stage ladder, and 2 in-flight batches per edge keep both stages
// busy while bounding buffering.
const (
	DefaultPipeBatch = 64
	DefaultPipeDepth = 2
)

// PipeStats is the telemetry of one RunPipeline call.
type PipeStats struct {
	// Stages and Workers describe the shape: Workers is the total stage
	// goroutine count (sum of StageWorkers).
	Stages, Workers int
	// Batches is the number of index-range batches streamed; BatchSize
	// and Depth echo the resolved options.
	Batches, BatchSize, Depth int
	// StageWorkers[s] is stage s's goroutine count; StageBatches[s]
	// counts batches whose Body completed on stage s.
	StageWorkers, StageBatches []int
	// Stalls[s] counts sends into stage s's input channel that blocked
	// on backpressure (index 0 = the feeder). Like sched's Steals this
	// is timing-dependent telemetry — it describes how the run flowed,
	// never what it computed.
	Stalls []int
	// Class echoes the declared latency lane.
	Class sched.Class
}

// span is one streamed index-range batch.
type span struct{ lo, hi int }

// RunPipeline streams element indices [0, n) through the stages: every
// batch visits stage 0, then stage 1, ... in order. It returns when all
// batches completed the final stage or the first Body error cancelled
// the run; either way every goroutine it started has exited. The
// returned error is the first Body error in (stage, worker) scan order —
// a deterministic pick when several workers fault concurrently.
func RunPipeline(n int, stages []Stage, opts PipeOptions) (PipeStats, error) {
	nStages := len(stages)
	st := PipeStats{
		Stages:       nStages,
		StageWorkers: make([]int, nStages),
		StageBatches: make([]int, nStages),
		Stalls:       make([]int, nStages),
		Class:        opts.Class,
	}
	if nStages == 0 || n <= 0 {
		return st, nil
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = DefaultPipeBatch
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = DefaultPipeDepth
	}
	nb := (n + batch - 1) / batch
	st.Batches, st.BatchSize, st.Depth = nb, batch, depth

	chans := make([]chan span, nStages)
	for s := range chans {
		chans[s] = make(chan span, depth)
	}
	done := make(chan struct{})
	var cancel sync.Once
	stop := func() { cancel.Do(func() { close(done) }) }

	stalls := make([]atomic.Int64, nStages)
	completed := make([]atomic.Int64, nStages)
	errs := make([][]error, nStages)

	// send hands sp to stage s, counting a stall when the channel is
	// full, and gives up when the pipeline is cancelled.
	send := func(s int, sp span) bool {
		select {
		case chans[s] <- sp:
			return true
		case <-done:
			return false
		default:
		}
		stalls[s].Add(1)
		select {
		case chans[s] <- sp:
			return true
		case <-done:
			return false
		}
	}

	var wg sync.WaitGroup

	// Feeder: batches enter stage 0 in ascending index order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chans[0])
		for b := 0; b < nb; b++ {
			lo := b * batch
			hi := lo + batch
			if hi > n {
				hi = n
			}
			if !send(0, span{lo, hi}) {
				return
			}
		}
	}()

	// Stage workers. stageWG[s] tracks stage s alone so chans[s+1] can
	// close exactly when no sender into it remains.
	stageWG := make([]sync.WaitGroup, nStages)
	for s := range stages {
		workers := stages[s].Workers
		if workers < 1 {
			workers = 1
		}
		st.StageWorkers[s] = workers
		st.Workers += workers
		errs[s] = make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			stageWG[s].Add(1)
			go func(s, w int) {
				defer wg.Done()
				defer stageWG[s].Done()
				for {
					var sp span
					var ok bool
					select {
					case sp, ok = <-chans[s]:
						if !ok {
							return
						}
					case <-done:
						// Cancelled: abandon queued batches. Upstream
						// senders unblock on done too, so nobody needs
						// us to drain further.
						return
					}
					if err := stages[s].Body(w, sp.lo/batch, sp.lo, sp.hi); err != nil {
						errs[s][w] = err
						stop()
						return
					}
					completed[s].Add(1)
					if s+1 < nStages {
						if !send(s+1, sp) {
							return
						}
					}
				}
			}(s, w)
		}
	}
	for s := 0; s < nStages-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			stageWG[s].Wait()
			close(chans[s+1])
		}(s)
	}

	wg.Wait()
	for s := range stalls {
		st.Stalls[s] = int(stalls[s].Load())
		st.StageBatches[s] = int(completed[s].Load())
	}
	for s := range errs {
		for _, err := range errs[s] {
			if err != nil {
				return st, err
			}
		}
	}
	return st, nil
}
