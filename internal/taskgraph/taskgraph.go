// Package taskgraph implements the baseline the paper contrasts itself
// against: Fortuna et al.'s task-level limit study of JavaScript
// parallelism (IISWC'10, [20] in the paper). Each event-loop task
// (dispatched callback) becomes a node; a task depends on an earlier one
// when it reads or writes state the earlier task wrote. The speedup limit
// is total work over the critical path — parallelism from *independent
// tasks*, not loop iterations, which is exactly the distinction the
// paper draws in §1 and §6.
package taskgraph

import (
	"fmt"

	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Task is one dynamic event-loop task.
type Task struct {
	ID    int
	Label string
	// DurNS is the task's virtual running time.
	DurNS int64
	// Deps are IDs of earlier tasks this one must follow.
	Deps []int

	reads  map[any]struct{}
	writes map[any]struct{}
}

// Graph is the task dependence DAG of one application run.
type Graph struct {
	Tasks []*Task
}

// Collector builds a Graph by observing interpreter hooks between task
// boundaries. Access sets are tracked at object/binding granularity —
// conservative (two tasks touching different elements of one array still
// conflict), matching a limit study that must never overestimate safety.
type Collector struct {
	interp.NopHooks
	clock interface{ Now() int64 }

	graph   *Graph
	current *Task
	started int64
	// setCap bounds per-task set sizes.
	setCap int
}

// NewCollector returns a collector reading the interpreter's clock.
func NewCollector(in *interp.Interp) *Collector {
	return &Collector{clock: in, graph: &Graph{}, setCap: 1 << 16}
}

// Graph returns the collected task graph.
func (c *Collector) Graph() *Graph { return c.graph }

// BeginTask opens a new task; it closes any open one first.
func (c *Collector) BeginTask(label string) {
	c.EndTask()
	t := &Task{
		ID:     len(c.graph.Tasks),
		Label:  label,
		reads:  make(map[any]struct{}),
		writes: make(map[any]struct{}),
	}
	c.current = t
	c.started = c.clock.Now()
}

// EndTask closes the open task, computing its dependences on all earlier
// tasks (write→read, write→write, read→write conflicts).
func (c *Collector) EndTask() {
	if c.current == nil {
		return
	}
	t := c.current
	c.current = nil
	t.DurNS = c.clock.Now() - c.started
	for _, prev := range c.graph.Tasks {
		if conflicts(prev, t) {
			t.Deps = append(t.Deps, prev.ID)
		}
	}
	c.graph.Tasks = append(c.graph.Tasks, t)
}

func conflicts(a, b *Task) bool {
	// b reads or writes something a wrote, or b writes something a read.
	for loc := range b.reads {
		if _, ok := a.writes[loc]; ok {
			return true
		}
	}
	for loc := range b.writes {
		if _, ok := a.writes[loc]; ok {
			return true
		}
		if _, ok := a.reads[loc]; ok {
			return true
		}
	}
	return false
}

func (c *Collector) note(m map[any]struct{}, loc any) {
	if c.current == nil || len(m) >= c.setCap {
		return
	}
	m[loc] = struct{}{}
}

// VarRead implements interp.Hooks.
func (c *Collector) VarRead(_ string, b *interp.Binding) {
	if c.current != nil {
		c.note(c.current.reads, b)
	}
}

// VarWrite implements interp.Hooks.
func (c *Collector) VarWrite(_ string, b *interp.Binding) {
	if c.current != nil {
		c.note(c.current.writes, b)
	}
}

// PropRead implements interp.Hooks.
func (c *Collector) PropRead(o *value.Object, _ string, _ *interp.Binding) {
	if c.current != nil {
		c.note(c.current.reads, o)
	}
}

// PropWrite implements interp.Hooks.
func (c *Collector) PropWrite(o *value.Object, _ string, _ *interp.Binding) {
	if c.current != nil {
		c.note(c.current.writes, o)
	}
}

// TotalWork returns the sum of task durations.
func (g *Graph) TotalWork() int64 {
	var sum int64
	for _, t := range g.Tasks {
		sum += t.DurNS
	}
	return sum
}

// CriticalPath returns the longest dependence chain's duration.
func (g *Graph) CriticalPath() int64 {
	finish := make([]int64, len(g.Tasks))
	var longest int64
	for i, t := range g.Tasks { // tasks are already in topological order
		var start int64
		for _, d := range t.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + t.DurNS
		if finish[i] > longest {
			longest = finish[i]
		}
	}
	return longest
}

// SpeedupLimit is the Fortuna-style bound: total work / critical path.
func (g *Graph) SpeedupLimit() float64 {
	cp := g.CriticalPath()
	if cp == 0 {
		return 1
	}
	return float64(g.TotalWork()) / float64(cp)
}

// IndependentPairs counts unordered task pairs with no path between them
// (a coarse parallel-slack metric).
func (g *Graph) IndependentPairs() int {
	n := len(g.Tasks)
	if n == 0 {
		return 0
	}
	// reachability via transitive closure over the (sparse) DAG
	reach := make([]map[int]bool, n)
	for i, t := range g.Tasks {
		r := make(map[int]bool)
		for _, d := range t.Deps {
			r[d] = true
			for k := range reach[d] {
				r[k] = true
			}
		}
		reach[i] = r
	}
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !reach[j][i] {
				count++
			}
		}
	}
	return count
}

// Summary renders headline numbers.
func (g *Graph) Summary() string {
	return fmt.Sprintf("tasks=%d work=%.2fms critical=%.2fms limit=%.2fx",
		len(g.Tasks), float64(g.TotalWork())/1e6, float64(g.CriticalPath())/1e6, g.SpeedupLimit())
}
