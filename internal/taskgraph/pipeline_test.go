package taskgraph

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// waitGoroutines polls until the goroutine count settles back to at
// most want (scheduling of exiting goroutines is asynchronous).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > want {
		t.Fatalf("goroutines leaked: %d running, want <= %d", got, want)
	}
}

func TestRunPipelineStreams(t *testing.T) {
	const n = 1000
	mid := make([]int64, n)
	out := make([]int64, n)
	stages := []Stage{
		{Name: "double", Workers: 2, Body: func(w, b, lo, hi int) error {
			for i := lo; i < hi; i++ {
				mid[i] = int64(i) * 2
			}
			return nil
		}},
		{Name: "inc", Workers: 1, Body: func(w, b, lo, hi int) error {
			for i := lo; i < hi; i++ {
				out[i] = mid[i] + 1
			}
			return nil
		}},
	}
	before := runtime.NumGoroutine()
	st, err := RunPipeline(n, stages, PipeOptions{Batch: 32, Depth: 2, Class: sched.ClassInteractive})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	for i := range out {
		if out[i] != int64(i)*2+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], int64(i)*2+1)
		}
	}
	wantBatches := (n + 31) / 32
	if st.Batches != wantBatches || st.BatchSize != 32 || st.Depth != 2 {
		t.Fatalf("stats = %+v, want batches %d size 32 depth 2", st, wantBatches)
	}
	if st.Stages != 2 || st.Workers != 3 {
		t.Fatalf("stats shape = %+v, want 2 stages / 3 workers", st)
	}
	for s, got := range st.StageBatches {
		if got != wantBatches {
			t.Fatalf("stage %d completed %d batches, want %d", s, got, wantBatches)
		}
	}
	waitGoroutines(t, before)
}

func TestRunPipelineBackpressure(t *testing.T) {
	// A fast producer against a slow consumer with depth 1 must stall
	// rather than buffer unboundedly.
	const n = 256
	var inFlight, maxInFlight atomic.Int64
	stages := []Stage{
		{Name: "produce", Body: func(w, b, lo, hi int) error {
			inFlight.Add(1)
			return nil
		}},
		{Name: "consume", Body: func(w, b, lo, hi int) error {
			time.Sleep(time.Millisecond)
			if v := inFlight.Add(-1) + 1; v > maxInFlight.Load() {
				maxInFlight.Store(v)
			}
			return nil
		}},
	}
	st, err := RunPipeline(n, stages, PipeOptions{Batch: 8, Depth: 1})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	total := 0
	for _, s := range st.Stalls {
		total += s
	}
	if total == 0 {
		t.Fatalf("expected backpressure stalls, got none (stats %+v)", st)
	}
	// depth 1 channel + 1 batch inside each of 2 stages bounds flight.
	if got := maxInFlight.Load(); got > 4 {
		t.Fatalf("in-flight batches reached %d; backpressure is not bounding", got)
	}
}

func TestRunPipelineCancelNoDeadlock(t *testing.T) {
	// A mid-stream stage-1 failure must cancel the feeder and stage 0
	// (possibly blocked on a full channel) and join every goroutine.
	errBoom := errors.New("boom")
	before := runtime.NumGoroutine()
	var fed atomic.Int64
	stages := []Stage{
		{Name: "produce", Workers: 2, Body: func(w, b, lo, hi int) error {
			fed.Add(1)
			return nil
		}},
		{Name: "consume", Body: func(w, b, lo, hi int) error {
			if b >= 3 {
				return fmt.Errorf("batch %d: %w", b, errBoom)
			}
			return nil
		}},
	}
	done := make(chan struct{})
	var st PipeStats
	var err error
	go func() {
		st, err = RunPipeline(100000, stages, PipeOptions{Batch: 4, Depth: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunPipeline deadlocked on cancellation")
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want %v", err, errBoom)
	}
	if fed.Load() >= 25000 {
		t.Fatalf("producer ran %d batches after failure; cancellation did not propagate", fed.Load())
	}
	if st.Stages != 2 {
		t.Fatalf("stats = %+v", st)
	}
	waitGoroutines(t, before)
}

func TestRunPipelineEdgeShapes(t *testing.T) {
	ran := false
	st, err := RunPipeline(0, []Stage{{Body: func(w, b, lo, hi int) error { ran = true; return nil }}}, PipeOptions{})
	if err != nil || ran || st.Batches != 0 {
		t.Fatalf("n=0: err %v ran %v stats %+v", err, ran, st)
	}
	st, err = RunPipeline(10, nil, PipeOptions{})
	if err != nil || st.Stages != 0 {
		t.Fatalf("no stages: err %v stats %+v", err, st)
	}
	// Single stage, defaults: degenerates to a batched fork-join map.
	var sum atomic.Int64
	st, err = RunPipeline(130, []Stage{{Workers: 3, Body: func(w, b, lo, hi int) error {
		sum.Add(int64(hi - lo))
		return nil
	}}}, PipeOptions{})
	if err != nil || sum.Load() != 130 {
		t.Fatalf("single stage: err %v sum %d stats %+v", err, sum.Load(), st)
	}
	if st.BatchSize != DefaultPipeBatch || st.Depth != DefaultPipeDepth {
		t.Fatalf("defaults not applied: %+v", st)
	}
}
