// Latency classes. Every Queue admission (and, declaratively, every
// fixed-plan Run) carries a Class: the scheduling layers between
// admission and completion — lane ordering, continuation inheritance,
// shedding order, queue-wait telemetry — all key on it, so a batch
// prewarm can never sit ahead of an interactive page load anywhere in
// the stack.
package sched

import (
	"fmt"
	"time"
)

// Class is the latency class a unit of work runs under. The zero value
// is ClassInteractive so pre-class call sites (plain Submit, zero
// Options) keep request-path semantics.
type Class int

const (
	// ClassInteractive is the latency-sensitive lane: a client is
	// blocked on the result right now (a page load waiting on a
	// rewrite). Interactive work drains ahead of batch work and is the
	// last to be shed at saturation.
	ClassInteractive Class = iota
	// ClassBatch is the throughput lane: nobody is waiting on any
	// single completion (prewarm batches, background refreshes, study
	// grids). Batch work fills capacity interactive work leaves free
	// and is shed first at saturation.
	ClassBatch

	// numClasses sizes per-class state; new classes slot in above.
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// SubmitOptions classifies one Queue admission.
type SubmitOptions struct {
	// Class selects the lane. The zero value is ClassInteractive.
	Class Class
	// MaxWait, when > 0 on a batch admission, is the queue-wait
	// deadline: a root job still queued when a worker reaches it after
	// MaxWait is shed (OnShed fires) instead of run — stale batch work
	// is dropped rather than executed late. Ignored for interactive
	// admissions, which never deadline-shed.
	MaxWait time.Duration
	// OnShed is invoked exactly once, from whichever goroutine sheds
	// the admission, if the root job is dropped before it runs: either
	// evicted to free the slot for an interactive admission at
	// saturation, or past its MaxWait deadline. It must not block.
	// A nil OnShed drops the job silently. Jobs that have started are
	// never shed.
	OnShed func()
}

// Handle names one admission for the priority-inheritance path. It is
// safe to call Promote at any time, including concurrently with (or
// after) the admission completing or being shed — late promotions
// no-op.
type Handle struct {
	q *Queue
	t *ticket
}

// Promote raises the admission — its queued root or continuations and
// every continuation spawned later — to the interactive lane. Used for
// priority inheritance: when an interactive caller coalesces onto work
// already in flight at batch priority, promoting the in-flight job
// keeps the interactive caller from waiting behind batch ordering.
func (h *Handle) Promote() {
	if h == nil {
		return
	}
	q, t := h.q, h.t
	q.mu.Lock()
	if t.done || t.class != ClassBatch {
		q.mu.Unlock()
		return
	}
	q.classTickets[ClassBatch]--
	q.classTickets[ClassInteractive]++
	t.class = ClassInteractive
	q.promoted++
	q.high[ClassInteractive] = append(q.high[ClassInteractive], takeTicketTasks(&q.high[ClassBatch], t)...)
	q.low[ClassInteractive] = append(q.low[ClassInteractive], takeTicketTasks(&q.low[ClassBatch], t)...)
	q.mu.Unlock()
}

// Class reports the admission's current class (it can change once,
// batch → interactive, via Promote).
func (h *Handle) Class() Class {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	return h.t.class
}

// takeTicketTasks removes the tasks belonging to ticket t from the
// lane, preserving relative order of both the taken and the kept.
func takeTicketTasks(lane *[]*task, t *ticket) []*task {
	var taken []*task
	kept := (*lane)[:0]
	for _, tk := range *lane {
		if tk.t == t {
			taken = append(taken, tk)
		} else {
			kept = append(kept, tk)
		}
	}
	*lane = kept
	return taken
}
