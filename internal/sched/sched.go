// Package sched is the shared adaptive scheduler under every parallel
// path in this repository: the River Trail primitives
// (internal/parallel), the speculative ParallelArray engine
// (internal/autopar) and the study orchestrator (internal/study) all
// dispatch their index ranges through it instead of carrying private
// static `len/workers` splits.
//
// The scheduler is a classic work-stealing design specialized for
// deterministic output:
//
//   - Plan first. A run is decomposed into a *chunk plan* — contiguous
//     [Lo, Hi) spans of the index space whose sizes start at n/Divisor
//     and shrink geometrically toward MinChunk. The plan is a pure
//     function of (n, MinChunk, Divisor): it never depends on the worker
//     count, on timing, or on which worker ran what. Large chunks while
//     lots of work remains keep per-chunk overhead negligible; small
//     chunks toward the tail keep the finish line balanced even when
//     per-element cost is wildly skewed.
//   - Per-worker deques. Chunks are dealt to the workers as contiguous
//     blocks balanced by element count, preserving index locality. Each
//     worker pops chunks from the front of its own deque.
//   - Randomized stealing. A worker whose deque drains picks victims in
//     a seeded pseudo-random order and steals the *back half* of the
//     first non-empty deque it finds, so a skewed chunk pins only its
//     owner while everyone else drains the rest of the plan.
//
// # Determinism contract
//
// Scheduling is nondeterministic — which worker executes which chunk,
// and in what order, depends on timing. Output must not be. The contract
// with callers is:
//
//  1. body(worker, chunk, lo, hi) may write only into slots addressed by
//     the element index i ∈ [lo, hi) or by the chunk index — never into
//     anything keyed by `worker` that the caller later reads
//     order-sensitively.
//  2. Per-chunk results (reduction partials, filter keeps) are merged by
//     the caller in chunk-index order. Because the chunk plan is a pure
//     function of (n, tuning), that merge applies the *same* bracketing
//     at every worker count and on every run — so even a non-associative
//     merge is byte-identical across worker counts (it may still differ
//     from a single sequential left fold; associativity closes that last
//     gap, exactly as in the pre-scheduler static-chunk code).
//
// Under that contract, output is byte-identical at 1, 2, 4 and 8 workers
// no matter how stealing interleaves — the property
// internal/sched/sched_test.go and every caller's cross-check assert
// under -race.
//
// Errors cancel: the first body error stops chunk hand-out, remaining
// workers exit at their next chunk boundary, and Run returns the fault
// of the lowest-numbered faulting worker (callers that need richer fault
// semantics, like autopar's guard aborts, record per-worker fault detail
// themselves and treat the returned error as a cancellation signal).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Span is one contiguous chunk [Lo, Hi) of the scheduled index space.
type Span struct {
	Lo, Hi int
}

// Default tuning. Divisor 16 makes the leading chunk n/16 — big enough
// to amortize dispatch, small enough that no single worker can be pinned
// by more than ~1/16 of a uniformly-costed run; MinChunk 8 stops the
// geometric shrink before per-chunk bookkeeping would rival the
// per-element interpreter cost this repository schedules.
const (
	DefaultMinChunk = 8
	DefaultDivisor  = 16
)

// Options tunes one scheduled run.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. The effective
	// pool is additionally clamped to the number of chunks in the plan.
	Workers int
	// MinChunk is the floor of the geometric chunk shrink
	// (0 = DefaultMinChunk). Chunk boundaries — and therefore the
	// caller's merge bracketing — depend on it, so it must be held
	// fixed when comparing runs for byte identity.
	MinChunk int
	// Divisor controls chunk sizing: each chunk covers
	// max(MinChunk, remaining/Divisor) elements (0 = DefaultDivisor).
	// Like MinChunk it shapes the plan, never the output values.
	Divisor int
	// Seed feeds the per-worker steal-victim RNG. It affects which
	// victim a thief probes first — scheduling only, never output.
	Seed uint64
	// Class declares the latency class of the whole run. Fixed-plan
	// runs own their pool for the duration, so the class does not gate
	// scheduling here the way it does in Queue — it is carried into
	// Stats so reports and future cross-pool arbitration can tell an
	// interactive autopar kernel from a batch study grid.
	Class Class
}

func (o Options) minChunk() int {
	if o.MinChunk > 0 {
		return o.MinChunk
	}
	return DefaultMinChunk
}

func (o Options) divisor() int {
	if o.Divisor >= 1 {
		return o.Divisor
	}
	return DefaultDivisor
}

// MaxWorkers resolves the requested pool size (<= 0 → GOMAXPROCS)
// before the plan-length clamp. Callers size per-worker state with it.
func (o Options) MaxWorkers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Plan decomposes [0, n) into the deterministic chunk plan: span k
// covers max(MinChunk, remaining/Divisor) elements, so sizes shrink
// geometrically from n/Divisor toward MinChunk. The result is a pure
// function of (n, MinChunk, Divisor) — worker count and runtime timing
// never move a chunk boundary, which is what makes chunk-order merges
// byte-identical at every worker count.
func Plan(n int, opts Options) []Span {
	if n <= 0 {
		return nil
	}
	minChunk, div := opts.minChunk(), opts.divisor()
	spans := make([]Span, 0, div)
	for lo := 0; lo < n; {
		size := (n - lo) / div
		if size < minChunk {
			size = minChunk
		}
		if size > n-lo {
			size = n - lo
		}
		spans = append(spans, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return spans
}

// UnitPlan returns the finest plan — one chunk per index. Callers with
// naturally coarse work items (the study orchestrator's jobs) use it so
// stealing rebalances at item granularity.
func UnitPlan(n int) []Span {
	spans := make([]Span, n)
	for i := range spans {
		spans[i] = Span{Lo: i, Hi: i + 1}
	}
	return spans
}

// Stats is the run's scheduling telemetry. Everything here describes
// *how* the work was executed, never *what* it computed: steal counts
// and per-worker chunk tallies are timing-dependent and must not feed
// deterministic output.
type Stats struct {
	// Class echoes Options.Class — the latency class the run was
	// declared under.
	Class Class
	// Workers is the resolved pool size (after the GOMAXPROCS default
	// and the plan-length clamp).
	Workers int
	// Chunks is the plan length.
	Chunks int
	// Steals counts successful steal operations (batches moved between
	// deques); StolenChunks counts the chunks those batches carried.
	Steals, StolenChunks int
	// PerWorker is the number of chunks each worker executed.
	PerWorker []int
}

// BodyFunc processes one chunk: element indices [lo, hi) of plan entry
// `chunk`, on pool worker `worker`. Each worker index runs on a single
// goroutine for the whole run, so per-worker state (interpreters,
// guards) needs no locking; a non-nil error cancels the run.
type BodyFunc func(worker, chunk, lo, hi int) error

// Run schedules [0, n) under the default geometric plan.
func Run(n int, opts Options, body BodyFunc) (Stats, error) {
	return RunPlan(Plan(n, opts), opts, body)
}

// RunPlan schedules an explicit chunk plan across the worker pool with
// randomized work stealing. See the package comment for the determinism
// contract; the plan must consist of disjoint spans.
func RunPlan(plan []Span, opts Options, body BodyFunc) (Stats, error) {
	nchunks := len(plan)
	workers := opts.MaxWorkers()
	if workers > nchunks {
		workers = nchunks
	}
	if workers < 1 {
		workers = 1
	}
	st := Stats{Class: opts.Class, Workers: workers, Chunks: nchunks}
	if nchunks == 0 {
		st.PerWorker = []int{0}
		return st, nil
	}
	if workers == 1 {
		st.PerWorker = []int{0}
		for ci, sp := range plan {
			if err := body(0, ci, sp.Lo, sp.Hi); err != nil {
				return st, err
			}
			st.PerWorker[0]++
		}
		return st, nil
	}

	deques := deal(plan, workers)
	var remaining atomic.Int64
	remaining.Store(int64(nchunks))
	// transit counts steal operations between stealBackHalf and the
	// thief's push, and epoch counts completed steals — together the
	// only mechanism that can ever refill a deque. When every deque is
	// empty, nothing is in transit, and no steal completed across the
	// probe, each busy worker holds exactly its current chunk, so no
	// stealable work can materialize again and idle workers exit instead
	// of spinning against the measurement (a chunk, once popped, never
	// returns to a deque).
	var transit, epoch atomic.Int64
	var cancelled atomic.Bool
	errs := make([]error, workers)
	perWorker := make([]int, workers)
	steals := make([]int, workers)
	stolen := make([]int, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := deques[w]
			rng := opts.Seed ^ (uint64(w+1) * 0x9E3779B97F4A7C15)
			if rng == 0 {
				rng = uint64(w) + 1
			}
			for !cancelled.Load() {
				ci, ok := self.popFront()
				if !ok {
					// Own deque drained: probe victims in seeded
					// pseudo-random order and steal the back half of the
					// first non-empty one.
					beforeTransit, beforeEpoch := transit.Load(), epoch.Load()
					start := int(nextRand(&rng) % uint64(workers))
					for k := 0; k < workers && !ok; k++ {
						v := (start + k) % workers
						if v == w {
							continue
						}
						transit.Add(1)
						if batch := deques[v].stealBackHalf(); len(batch) > 0 {
							steals[w]++
							stolen[w] += len(batch)
							ci, ok = batch[0], true
							self.push(batch[1:])
							epoch.Add(1)
						}
						transit.Add(-1)
					}
					if !ok {
						if remaining.Load() == 0 {
							return
						}
						if beforeTransit == 0 && transit.Load() == 0 && epoch.Load() == beforeEpoch {
							// Every deque was empty, no steal was in
							// flight around the probe, and none completed
							// during it (a completed steal could have
							// refilled a deque already scanned): the
							// unfinished chunks are all claimed by
							// running workers and nothing can refill a
							// deque — done.
							return
						}
						// A steal was mid-flight or just landed; its
						// chunks sit on the thief's deque momentarily.
						runtime.Gosched()
						continue
					}
				}
				sp := plan[ci]
				if err := body(w, ci, sp.Lo, sp.Hi); err != nil {
					errs[w] = err
					cancelled.Store(true)
					return
				}
				perWorker[w]++
				remaining.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	st.PerWorker = perWorker
	for w := 0; w < workers; w++ {
		st.Steals += steals[w]
		st.StolenChunks += stolen[w]
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// deal partitions the plan into one deque per worker: contiguous chunk
// blocks balanced by element count (not chunk count — leading chunks are
// geometrically larger), preserving index locality for the owner.
func deal(plan []Span, workers int) []*deque {
	deques := make([]*deque, workers)
	ci := 0
	for w := 0; w < workers; w++ {
		after := workers - w - 1 // workers still to be dealt a block
		remElems := 0
		for _, sp := range plan[ci:] {
			remElems += sp.Hi - sp.Lo
		}
		target := remElems / (after + 1)
		var block []int
		got := 0
		// Take chunks until the element target is met, always leaving at
		// least one chunk for every worker after this one.
		for ci < len(plan)-after && (len(block) == 0 || got < target) {
			block = append(block, ci)
			got += plan[ci].Hi - plan[ci].Lo
			ci++
		}
		deques[w] = &deque{idx: block}
	}
	// Rounding leftovers land on the last worker.
	for ; ci < len(plan); ci++ {
		deques[workers-1].idx = append(deques[workers-1].idx, ci)
	}
	return deques
}

// deque is one worker's chunk queue. The owner pops from the front
// (ascending chunk index — locality); thieves take the back half. A
// plain mutex is deliberate: chunks bound whole interpreter runs, so
// queue operations are nowhere near the hot path.
type deque struct {
	mu  sync.Mutex
	idx []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.idx) == 0 {
		return 0, false
	}
	ci := d.idx[0]
	d.idx = d.idx[1:]
	return ci, true
}

// stealBackHalf removes and returns the back half (at least one chunk)
// of the deque, nil when empty.
func (d *deque) stealBackHalf() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.idx)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	batch := append([]int(nil), d.idx[n-take:]...)
	d.idx = d.idx[:n-take]
	return batch
}

func (d *deque) push(batch []int) {
	if len(batch) == 0 {
		return
	}
	d.mu.Lock()
	d.idx = append(d.idx, batch...)
	d.mu.Unlock()
}

// nextRand is a xorshift64 step — deterministic per (seed, worker),
// used only for victim selection.
func nextRand(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}
