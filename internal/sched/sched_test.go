package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestPlanCoversAndShrinks: the plan tiles [0, n) exactly, sizes shrink
// geometrically toward MinChunk, and boundaries are a pure function of
// (n, tuning) — the determinism contract's foundation.
func TestPlanCoversAndShrinks(t *testing.T) {
	for _, n := range []int{1, 7, 8, 100, 2048, 4097} {
		plan := Plan(n, Options{})
		lo := 0
		prev := n + 1
		for ci, sp := range plan {
			if sp.Lo != lo {
				t.Fatalf("n=%d chunk %d: gap, Lo=%d want %d", n, ci, sp.Lo, lo)
			}
			size := sp.Hi - sp.Lo
			if size <= 0 {
				t.Fatalf("n=%d chunk %d: empty span", n, ci)
			}
			if size > prev {
				t.Fatalf("n=%d chunk %d: size %d grew past %d", n, ci, size, prev)
			}
			prev = size
			lo = sp.Hi
		}
		if lo != n {
			t.Fatalf("n=%d: plan ends at %d", n, lo)
		}
	}
	// Worker count never moves a boundary.
	a := Plan(2048, Options{Workers: 2})
	b := Plan(2048, Options{Workers: 8})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("plan depends on worker count")
	}
}

// TestRunExecutesEveryIndexOnce at several worker counts, with each
// element index claimed exactly once no matter how stealing interleaves.
func TestRunExecutesEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 4, 8} {
		hits := make([]int32, n)
		stats, err := Run(n, Options{Workers: workers}, func(w, ci, lo, hi int) error {
			if w < 0 || w >= workers {
				return fmt.Errorf("worker index %d out of pool [0,%d)", w, workers)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
		if stats.Workers > workers || stats.Workers < 1 {
			t.Fatalf("workers=%d: resolved %d", workers, stats.Workers)
		}
		done := 0
		for _, c := range stats.PerWorker {
			done += c
		}
		if done != stats.Chunks {
			t.Fatalf("workers=%d: PerWorker sums to %d, Chunks=%d", workers, done, stats.Chunks)
		}
	}
}

// TestDeterministicMergeAcrossWorkerCounts: per-chunk partials merged in
// chunk order give byte-identical results at every worker count even for
// a deliberately non-associative merge, because the chunk plan is fixed.
func TestDeterministicMergeAcrossWorkerCounts(t *testing.T) {
	const n = 3000
	opts := Options{}
	merge := func(workers int) float64 {
		o := opts
		o.Workers = workers
		plan := Plan(n, o)
		partials := make([]float64, len(plan))
		if _, err := RunPlan(plan, o, func(w, ci, lo, hi int) error {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i) * 1.000001
			}
			partials[ci] = s
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		acc := 0.0
		for _, p := range partials {
			acc = acc*0.999 + p // non-associative on purpose
		}
		return acc
	}
	want := merge(1)
	for _, workers := range []int{2, 4, 8} {
		if got := merge(workers); got != want {
			t.Errorf("workers=%d: merge %v != sequential %v", workers, got, want)
		}
	}
}

// TestStealingUnderSkew pins the first block on its owner with a heavy
// leading region; drained workers must steal the rest of the plan.
func TestStealingUnderSkew(t *testing.T) {
	const n = 512
	stats, err := Run(n, Options{Workers: 4, MinChunk: 8, Divisor: 16}, func(w, ci, lo, hi int) error {
		if lo < n/4 {
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers < 2 {
		t.Skipf("pool resolved to %d workers; stealing needs >= 2", stats.Workers)
	}
	if stats.Steals == 0 {
		t.Errorf("no steals under a skewed load: %+v", stats)
	}
	if stats.StolenChunks < stats.Steals {
		t.Errorf("stolen chunks %d < steals %d", stats.StolenChunks, stats.Steals)
	}
}

// TestRunErrorCancels: a body error stops the run promptly and is
// returned; the scheduler must not hang or execute the whole plan.
func TestRunErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int32
	_, err := Run(10000, Options{Workers: 4, MinChunk: 1, Divisor: 1000}, func(w, ci, lo, hi int) error {
		if executed.Add(1) == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestEmptyAndUnitPlans: degenerate inputs stay well-formed.
func TestEmptyAndUnitPlans(t *testing.T) {
	stats, err := Run(0, Options{Workers: 4}, func(w, ci, lo, hi int) error {
		t.Fatal("body called for n=0")
		return nil
	})
	if err != nil || stats.Chunks != 0 {
		t.Fatalf("n=0: stats=%+v err=%v", stats, err)
	}
	plan := UnitPlan(5)
	if len(plan) != 5 || plan[4].Lo != 4 || plan[4].Hi != 5 {
		t.Fatalf("unit plan malformed: %v", plan)
	}
	var count atomic.Int32
	stats, err = RunPlan(plan, Options{Workers: 8}, func(w, ci, lo, hi int) error {
		count.Add(1)
		return nil
	})
	if err != nil || count.Load() != 5 || stats.Workers != 5 {
		t.Fatalf("unit run: count=%d stats=%+v err=%v", count.Load(), stats, err)
	}
}

// TestPerWorkerStateSafety: each worker index is live on one goroutine
// at a time, so callers may keep unlocked per-worker state.
func TestPerWorkerStateSafety(t *testing.T) {
	const n = 2000
	inUse := make([]atomic.Bool, 16)
	state := make([]int, 16) // written without locks, per contract
	_, err := Run(n, Options{Workers: 8, MinChunk: 4, Divisor: 32}, func(w, ci, lo, hi int) error {
		if !inUse[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d re-entered concurrently", w)
		}
		state[w] += hi - lo
		inUse[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range state {
		total += s
	}
	if total != n {
		t.Fatalf("per-worker state sums to %d, want %d", total, n)
	}
}
