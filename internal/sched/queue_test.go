package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(4, 16)
	defer q.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		if err := q.Submit(func(w *WorkerCtx) {
			n.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := n.Load(); got != 16 {
		t.Fatalf("ran %d jobs, want 16", got)
	}
	st := q.Stats()
	if st.Submitted != 16 || st.Completed != 16 || st.Rejected != 0 {
		t.Errorf("stats = %+v, want 16 submitted/completed, 0 rejected", st)
	}
}

// TestQueueSaturation: with every worker blocked and the admission
// queue full, Submit reports ErrSaturated instead of queueing without
// bound — and admissions free again once jobs finish.
func TestQueueSaturation(t *testing.T) {
	const workers, depth = 2, 4
	q := NewQueue(workers, depth)
	defer q.Close()
	release := make(chan struct{})
	var admitted atomic.Int64
	var wg sync.WaitGroup
	accepted := 0
	for i := 0; i < depth*3; i++ {
		err := q.Submit(func(w *WorkerCtx) {
			admitted.Add(1)
			<-release
			wg.Done()
		})
		if err == nil {
			accepted++
			wg.Add(1)
		} else if !errors.Is(err, ErrSaturated) {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if accepted != depth {
		t.Errorf("accepted %d admissions, want exactly depth=%d", accepted, depth)
	}
	if st := q.Stats(); st.Rejected != int64(depth*3-depth) || st.InFlight != depth {
		t.Errorf("stats = %+v, want %d rejected, %d in flight", st, depth*2, depth)
	}
	close(release)
	wg.Wait()
	// Admissions freed: a new job is accepted again.
	done := make(chan struct{})
	if err := q.Submit(func(w *WorkerCtx) { close(done) }); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	<-done
}

// TestQueueSpawnHoldsTicket: a continuation tree occupies exactly one
// admission until its last job finishes, and Spawn is never rejected.
func TestQueueSpawnHoldsTicket(t *testing.T) {
	q := NewQueue(1, 1)
	defer q.Close()
	var order []string
	var mu sync.Mutex
	step := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	done := make(chan struct{})
	err := q.Submit(func(w *WorkerCtx) {
		step("a")
		w.Spawn(func(w *WorkerCtx) {
			step("b")
			w.Spawn(func(w *WorkerCtx) {
				step("c")
				close(done)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("stage order = %v, want [a b c]", order)
	}
	st := q.Stats()
	if st.Spawned != 2 || st.Submitted != 1 {
		t.Errorf("stats = %+v, want 1 submitted, 2 spawned", st)
	}
}

// TestQueueContinuationsDrainFirst: with one worker, a continuation
// spawned by a running job runs before a root that was admitted
// earlier — pipelines drain from the back instead of starving behind
// fresh admissions.
func TestQueueContinuationsDrainFirst(t *testing.T) {
	q := NewQueue(1, 8)
	defer q.Close()
	var order []string
	var mu sync.Mutex
	step := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	started := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan struct{})
	if err := q.Submit(func(w *WorkerCtx) {
		close(started)
		<-unblock
		step("first")
		w.Spawn(func(w *WorkerCtx) { step("first-cont"); close(done) })
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	rootDone := make(chan struct{})
	if err := q.Submit(func(w *WorkerCtx) { step("second"); close(rootDone) }); err != nil {
		t.Fatal(err)
	}
	close(unblock)
	<-done
	<-rootDone
	mu.Lock()
	defer mu.Unlock()
	if order[1] != "first-cont" {
		t.Fatalf("order = %v, want the continuation before the second root", order)
	}
}

// TestQueueWorkerIdentity: each worker index is one goroutine — two
// jobs pinned to the same index never run concurrently.
func TestQueueWorkerIdentity(t *testing.T) {
	const workers = 4
	q := NewQueue(workers, 256)
	defer q.Close()
	var active [workers]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		err := q.Submit(func(w *WorkerCtx) {
			defer wg.Done()
			if active[w.Worker].Add(1) != 1 {
				t.Errorf("worker %d ran two jobs concurrently", w.Worker)
			}
			time.Sleep(time.Microsecond)
			active[w.Worker].Add(-1)
		})
		if errors.Is(err, ErrSaturated) {
			wg.Done()
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestQueueCloseRejectsAndDrains(t *testing.T) {
	q := NewQueue(2, 8)
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		_ = q.Submit(func(w *WorkerCtx) {
			w.Spawn(func(w *WorkerCtx) { n.Add(1) })
		})
	}
	q.Close() // must wait for roots AND their continuations
	if got := n.Load(); got != 8 {
		t.Fatalf("continuations after Close: %d ran, want 8", got)
	}
	if err := q.Submit(func(w *WorkerCtx) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestQueueWaitStats(t *testing.T) {
	q := NewQueue(1, 4)
	defer q.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	_ = q.Submit(func(w *WorkerCtx) { <-block; wg.Done() })
	// These three queue behind the blocker and accrue real wait.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := q.Submit(func(w *WorkerCtx) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	close(block)
	wg.Wait()
	st := q.Stats()
	if st.QueueWaitMax < 4*time.Millisecond {
		t.Errorf("QueueWaitMax = %v, want >= ~5ms (jobs queued behind the blocker)", st.QueueWaitMax)
	}
	if st.QueueWaitP99 < st.QueueWaitP50 {
		t.Errorf("p99 %v < p50 %v", st.QueueWaitP99, st.QueueWaitP50)
	}
	if st.MaxQueued < 3 {
		t.Errorf("MaxQueued = %d, want >= 3", st.MaxQueued)
	}
}

// TestQueuePanicContainment: a panicking job must not kill its worker
// or corrupt ticket accounting — later jobs run and Close drains.
func TestQueuePanicContainment(t *testing.T) {
	q := NewQueue(1, 4)
	if err := q.Submit(func(w *WorkerCtx) { panic("bad job") }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	if err := q.Submit(func(w *WorkerCtx) { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker dead after panicking job")
	}
	if st := q.Stats(); st.InFlight != 0 {
		t.Errorf("InFlight = %d after panic, want 0", st.InFlight)
	}
	q.Close()
}
