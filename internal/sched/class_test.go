package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderLog collects execution order under a lock.
type orderLog struct {
	mu    sync.Mutex
	order []string
}

func (l *orderLog) step(name string) {
	l.mu.Lock()
	l.order = append(l.order, name)
	l.mu.Unlock()
}

func (l *orderLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// blockWorker occupies the single worker of q with an interactive job
// until the returned release func is called.
func blockWorker(t *testing.T, q *Queue) (release func(), done *sync.WaitGroup) {
	t.Helper()
	started := make(chan struct{})
	unblock := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := q.Submit(func(w *WorkerCtx) {
		close(started)
		<-unblock
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	return func() { close(unblock) }, &wg
}

// TestQueueInteractivePreemptsBatchOrdering: an interactive root
// admitted *after* a batch root still runs first — the lanes, not
// arrival order, decide.
func TestQueueInteractivePreemptsBatchOrdering(t *testing.T) {
	q := NewQueue(1, 8)
	defer q.Close()
	var log orderLog
	release, blocker := blockWorker(t, q)
	var wg sync.WaitGroup
	wg.Add(2)
	if _, err := q.SubmitWith(func(w *WorkerCtx) {
		log.step("batch")
		wg.Done()
	}, SubmitOptions{Class: ClassBatch}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(func(w *WorkerCtx) {
		log.step("interactive")
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	release()
	blocker.Wait()
	wg.Wait()
	if got := log.snapshot(); got[0] != "interactive" || got[1] != "batch" {
		t.Fatalf("order = %v, want interactive before batch", got)
	}
}

// TestQueueSpawnInheritsClass: a batch continuation stays in the batch
// lanes — an interactive root admitted while the batch root runs beats
// the batch root's own continuation to the worker.
func TestQueueSpawnInheritsClass(t *testing.T) {
	q := NewQueue(1, 8)
	defer q.Close()
	var log orderLog
	batchRunning := make(chan struct{})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	if _, err := q.SubmitWith(func(w *WorkerCtx) {
		close(batchRunning)
		<-gate
		w.Spawn(func(w *WorkerCtx) {
			log.step("batch-cont")
			wg.Done()
		})
	}, SubmitOptions{Class: ClassBatch}); err != nil {
		t.Fatal(err)
	}
	<-batchRunning
	if err := q.Submit(func(w *WorkerCtx) {
		log.step("interactive")
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	wg.Wait()
	if got := log.snapshot(); got[0] != "interactive" {
		t.Fatalf("order = %v, want the interactive root before the batch continuation", got)
	}
	if st := q.Stats(); st.Spawned != 1 {
		t.Errorf("Spawned = %d, want 1", st.Spawned)
	}
}

// TestQueueBatchShedsBeforeInteractiveRejected: at the admission bound
// an interactive Submit evicts the oldest queued batch root (OnShed
// fires, the batch job never runs) and is admitted; interactive is
// rejected only once no queued batch work remains.
func TestQueueBatchShedsBeforeInteractiveRejected(t *testing.T) {
	q := NewQueue(1, 2)
	defer q.Close()
	release, blocker := blockWorker(t, q) // ticket 1 of 2
	shedCh := make(chan struct{})
	batchRan := make(chan struct{}, 1)
	if _, err := q.SubmitWith(func(w *WorkerCtx) {
		batchRan <- struct{}{}
	}, SubmitOptions{Class: ClassBatch, OnShed: func() { close(shedCh) }}); err != nil {
		t.Fatal(err) // ticket 2 of 2 — queue is now at depth
	}
	var wg sync.WaitGroup
	wg.Add(1)
	if err := q.Submit(func(w *WorkerCtx) { wg.Done() }); err != nil {
		t.Fatalf("interactive submit at depth with a queued batch root: %v, want admitted", err)
	}
	select {
	case <-shedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("OnShed never fired for the evicted batch root")
	}
	// Still at depth, and no batch left to evict: now interactive sheds.
	if err := q.Submit(func(w *WorkerCtx) {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("interactive submit with no evictable batch: %v, want ErrSaturated", err)
	}
	release()
	blocker.Wait()
	wg.Wait()
	select {
	case <-batchRan:
		t.Fatal("evicted batch root ran anyway")
	default:
	}
	st := q.Stats()
	if st.Batch.Shed != 1 || st.Batch.Rejected != 0 {
		t.Errorf("batch stats = %+v, want 1 shed, 0 rejected", st.Batch)
	}
	if st.Interactive.Rejected != 1 || st.Interactive.Shed != 0 {
		t.Errorf("interactive stats = %+v, want 1 rejected, 0 shed", st.Interactive)
	}
	if st.Shed != 1 || st.Rejected != 1 {
		t.Errorf("combined stats = %+v, want shed=1 rejected=1", st)
	}
}

// TestQueueBatchDeadlineShed: a batch root a worker reaches past its
// MaxWait is dropped (OnShed fires) instead of run late.
func TestQueueBatchDeadlineShed(t *testing.T) {
	q := NewQueue(1, 4)
	defer q.Close()
	release, blocker := blockWorker(t, q)
	shedCh := make(chan struct{})
	ran := make(chan struct{}, 1)
	if _, err := q.SubmitWith(func(w *WorkerCtx) {
		ran <- struct{}{}
	}, SubmitOptions{Class: ClassBatch, MaxWait: time.Millisecond, OnShed: func() { close(shedCh) }}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the deadline lapse while queued
	release()
	blocker.Wait()
	select {
	case <-shedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("deadline shed never fired")
	}
	select {
	case <-ran:
		t.Fatal("expired batch root ran anyway")
	default:
	}
	st := q.Stats()
	if st.Batch.Shed != 1 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want Batch.Shed=1 InFlight=0", st)
	}
}

// TestQueuePromoteReordersQueuedRoot: promoting a queued batch
// admission moves it into the interactive lane ahead of later
// interactive arrivals, clears its deadline check, and shows up in
// Promoted.
func TestQueuePromoteReordersQueuedRoot(t *testing.T) {
	q := NewQueue(1, 8)
	defer q.Close()
	var log orderLog
	release, blocker := blockWorker(t, q)
	var wg sync.WaitGroup
	wg.Add(2)
	h, err := q.SubmitWith(func(w *WorkerCtx) {
		log.step("promoted-batch")
		wg.Done()
	}, SubmitOptions{Class: ClassBatch, MaxWait: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Class(); got != ClassBatch {
		t.Fatalf("Class() before promote = %v, want batch", got)
	}
	h.Promote()
	h.Promote() // idempotent
	if got := h.Class(); got != ClassInteractive {
		t.Fatalf("Class() after promote = %v, want interactive", got)
	}
	if err := q.Submit(func(w *WorkerCtx) {
		log.step("interactive")
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // would trip MaxWait were it still batch
	release()
	blocker.Wait()
	wg.Wait()
	if got := log.snapshot(); got[0] != "promoted-batch" {
		t.Fatalf("order = %v, want the promoted root to run first", got)
	}
	st := q.Stats()
	if st.Promoted != 1 {
		t.Errorf("Promoted = %d, want 1 (second Promote must no-op)", st.Promoted)
	}
	if st.Batch.Shed != 0 {
		t.Errorf("Batch.Shed = %d, want 0 (promotion must clear the deadline)", st.Batch.Shed)
	}
}

// TestQueueCloseWhileInflightSpawns: Close called while roots are
// mid-flight must wait for every pending Spawn continuation — across
// both classes — before the workers exit.
func TestQueueCloseWhileInflightSpawns(t *testing.T) {
	q := NewQueue(2, 16)
	var leaves atomic.Int64
	const roots = 8
	started := make(chan struct{}, roots)
	for i := 0; i < roots; i++ {
		class := ClassInteractive
		if i%2 == 1 {
			class = ClassBatch
		}
		if _, err := q.SubmitWith(func(w *WorkerCtx) {
			started <- struct{}{}
			time.Sleep(time.Millisecond)
			w.Spawn(func(w *WorkerCtx) {
				w.Spawn(func(w *WorkerCtx) { leaves.Add(1) })
			})
		}, SubmitOptions{Class: class}); err != nil {
			t.Fatal(err)
		}
	}
	<-started // at least one root is mid-flight when Close lands
	q.Close()
	if got := leaves.Load(); got != roots {
		t.Fatalf("leaf continuations after Close: %d ran, want %d", got, roots)
	}
	st := q.Stats()
	if st.InFlight != 0 || st.Interactive.InFlight != 0 || st.Batch.InFlight != 0 {
		t.Errorf("in-flight after Close = %+v, want all zero", st)
	}
}

// TestQueuePromoteRacesCompletion: Promote racing the admission's
// completion (and landing after it) must never corrupt per-class
// ticket accounting. Run under -race.
func TestQueuePromoteRacesCompletion(t *testing.T) {
	q := NewQueue(2, 8)
	defer q.Close()
	for i := 0; i < 500; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		h, err := q.SubmitWith(func(w *WorkerCtx) {
			w.Spawn(func(w *WorkerCtx) { wg.Done() })
		}, SubmitOptions{Class: ClassBatch})
		if err != nil {
			wg.Done()
			continue
		}
		raced := make(chan struct{})
		go func() {
			h.Promote()
			close(raced)
		}()
		wg.Wait()
		<-raced
		h.Promote() // after completion: must be a no-op
	}
	// Let the last ticket frees land before snapshotting.
	time.Sleep(10 * time.Millisecond)
	st := q.Stats()
	if st.InFlight != 0 || st.Interactive.InFlight != 0 || st.Batch.InFlight != 0 {
		t.Fatalf("in-flight after drain = inflight=%d interactive=%d batch=%d, want all zero",
			st.InFlight, st.Interactive.InFlight, st.Batch.InFlight)
	}
	if st.Promoted > 500 {
		t.Fatalf("Promoted = %d, impossible for 500 admissions", st.Promoted)
	}
}

// TestQueueStatsSplitPerClass: wait percentiles are recorded in the
// admission's class ring, and the combined top-level numbers merge
// both.
func TestQueueStatsSplitPerClass(t *testing.T) {
	q := NewQueue(1, 8)
	defer q.Close()
	release, blocker := blockWorker(t, q)
	var wg sync.WaitGroup
	wg.Add(2)
	if _, err := q.SubmitWith(func(w *WorkerCtx) { wg.Done() }, SubmitOptions{Class: ClassBatch}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(func(w *WorkerCtx) { wg.Done() }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	release()
	blocker.Wait()
	wg.Wait()
	st := q.Stats()
	if st.Interactive.Submitted != 2 || st.Batch.Submitted != 1 {
		t.Fatalf("submitted split = %+v, want 2 interactive (incl. blocker) / 1 batch", st)
	}
	if st.Batch.QueueWaitMax < 4*time.Millisecond {
		t.Errorf("Batch.QueueWaitMax = %v, want >= ~5ms", st.Batch.QueueWaitMax)
	}
	if st.QueueWaitMax < st.Batch.QueueWaitMax {
		t.Errorf("combined max %v < batch max %v", st.QueueWaitMax, st.Batch.QueueWaitMax)
	}
}
