// The open-ended half of the scheduler. RunPlan (sched.go) schedules a
// *fixed* index space — the shape of a ParallelArray operation or a
// study grid, where the whole plan is known up front. A serving system
// has the opposite shape: an unbounded stream of requests arriving at
// unknown times, where the thing that must be bounded is not the plan
// but the *admission* — how much work is allowed to be outstanding at
// once. Queue is that entry point: a long-lived worker pool with a
// bounded admission queue, explicit saturation (ErrSaturated, never an
// unbounded goroutine-per-request), and continuation jobs so a single
// admission can flow through multiple pipeline stages without holding a
// worker hostage between them.
package sched

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by Queue.Submit when the admission bound is
// reached: the caller must shed load (HTTP 429, retry later) instead of
// queueing without limit. It is a sentinel — match with errors.Is.
var ErrSaturated = errors.New("sched: queue saturated")

// ErrClosed is returned by Queue.Submit after Close.
var ErrClosed = errors.New("sched: queue closed")

// Job is one unit of queued work. The worker index has the same
// contract as BodyFunc's: each index is serviced by a single goroutine
// for the queue's lifetime, so per-worker state needs no locking.
type Job func(w *WorkerCtx)

// WorkerCtx is passed to every job: the worker index it runs on, plus
// Spawn for continuations.
type WorkerCtx struct {
	// Worker is the pool worker index in [0, Workers).
	Worker int
	q      *Queue
	t      *ticket
}

// Spawn enqueues a continuation of the current job under the *same*
// admission ticket: it can never be rejected (the admission decision
// was made at Submit) and it runs before newly-admitted jobs, so
// pipelines drain from the back. Jobs must use Spawn — never a blocking
// wait on another queue job — to hand work forward; a job that blocks
// on queue-scheduled work can deadlock the pool.
func (w *WorkerCtx) Spawn(fn Job) {
	w.t.refs.Add(1)
	w.q.enqueue(&task{fn: fn, t: w.t}, true)
}

// ticket is one admission: refs counts the not-yet-finished jobs in its
// continuation tree; the admission slot frees when it hits zero.
type ticket struct {
	refs atomic.Int64
}

type task struct {
	fn  Job
	t   *ticket
	enq time.Time // set for admitted roots; zero for continuations
}

// waitRingSize bounds the queue-wait sample ring (recent admissions
// only — percentiles describe current behaviour, not all history).
const waitRingSize = 1024

// Queue is a long-lived worker pool with bounded admission. Safe for
// concurrent use.
type Queue struct {
	workers int
	depth   int

	mu      sync.Mutex
	cond    *sync.Cond
	high    []*task // continuations: drain first
	low     []*task // admitted roots
	closed  bool
	running int // jobs currently executing
	tickets int // admissions whose continuation tree has not finished

	submitted int64
	rejected  int64
	spawned   int64
	completed int64
	maxQueued int

	waits  [waitRingSize]time.Duration
	waitN  int64 // total waits recorded (ring index = waitN % size)
	waitNs int64 // sum of all waits, for the mean
	wg     sync.WaitGroup
}

// QueueStats is a point-in-time snapshot of the queue counters.
type QueueStats struct {
	// Workers and Depth echo the construction parameters.
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
	// Submitted/Rejected count Submit calls (admitted vs ErrSaturated);
	// Spawned counts continuations; Completed counts jobs executed.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Spawned   int64 `json:"spawned"`
	Completed int64 `json:"completed"`
	// InFlight is the number of admission tickets currently held.
	InFlight int `json:"in_flight"`
	// MaxQueued is the high-water mark of queued (not yet running) jobs.
	MaxQueued int `json:"max_queued"`
	// QueueWait* describe the time admitted roots spent queued before
	// their first stage started: the mean is over the queue's whole
	// history, the percentiles and max over the last waitRingSize
	// admissions (recent behaviour, which is what an operator tunes on).
	QueueWaitMean time.Duration `json:"queue_wait_mean_ns"`
	QueueWaitP50  time.Duration `json:"queue_wait_p50_ns"`
	QueueWaitP99  time.Duration `json:"queue_wait_p99_ns"`
	QueueWaitMax  time.Duration `json:"queue_wait_max_ns"`
}

// NewQueue starts a pool of `workers` goroutines (<= 0 → 1) accepting
// at most `depth` outstanding admissions (<= 0 → workers*2). Callers
// must Close it when done.
func NewQueue(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = workers * 2
	}
	q := &Queue{workers: workers, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.work(w)
	}
	return q
}

// Workers returns the pool size.
func (q *Queue) Workers() int { return q.workers }

// Depth returns the admission bound.
func (q *Queue) Depth() int { return q.depth }

// Submit admits fn, or reports ErrSaturated when `depth` admissions are
// already outstanding (an admission stays outstanding until its whole
// continuation tree finishes). Submit never blocks: backpressure is the
// caller's to surface, immediately.
func (q *Queue) Submit(fn Job) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	if q.tickets >= q.depth {
		q.rejected++
		q.mu.Unlock()
		return ErrSaturated
	}
	q.tickets++
	q.submitted++
	t := &ticket{}
	t.refs.Store(1)
	q.enqueueLocked(&task{fn: fn, t: t, enq: time.Now()}, false)
	q.mu.Unlock()
	return nil
}

func (q *Queue) enqueue(tk *task, cont bool) {
	q.mu.Lock()
	q.enqueueLocked(tk, cont)
	q.mu.Unlock()
}

func (q *Queue) enqueueLocked(tk *task, cont bool) {
	if cont {
		q.spawned++
		q.high = append(q.high, tk)
	} else {
		q.low = append(q.low, tk)
	}
	if n := len(q.high) + len(q.low); n > q.maxQueued {
		q.maxQueued = n
	}
	q.cond.Signal()
}

func (q *Queue) work(w int) {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.high) == 0 && len(q.low) == 0 && !(q.closed && q.running == 0) {
			q.cond.Wait()
		}
		var tk *task
		switch {
		case len(q.high) > 0:
			tk = q.high[0]
			q.high = q.high[1:]
		case len(q.low) > 0:
			tk = q.low[0]
			q.low = q.low[1:]
			q.recordWaitLocked(time.Since(tk.enq))
		default:
			// closed, queues empty, nothing running that could spawn.
			q.mu.Unlock()
			return
		}
		q.running++
		q.mu.Unlock()

		runJob(tk.fn, &WorkerCtx{Worker: w, q: q, t: tk.t})

		q.mu.Lock()
		q.running--
		q.completed++
		if tk.t.refs.Add(-1) == 0 {
			q.tickets--
		}
		if q.closed && q.running == 0 && len(q.high) == 0 && len(q.low) == 0 {
			// Wake parked siblings so they can observe the exit condition.
			q.cond.Broadcast()
		}
		q.mu.Unlock()
	}
}

// runJob contains a panicking job so one bad input cannot kill a
// shared worker or corrupt the queue's ticket accounting. Containment
// is all the queue can do — it cannot deliver a result on the job's
// behalf, so jobs that report through channels or callbacks must
// install their own recover (as the proxy pipeline's stages do) or
// their waiters hang.
func runJob(fn Job, w *WorkerCtx) {
	defer func() { _ = recover() }()
	fn(w)
}

func (q *Queue) recordWaitLocked(d time.Duration) {
	q.waits[q.waitN%waitRingSize] = d
	q.waitN++
	q.waitNs += int64(d)
}

// Close stops admission immediately (Submit returns ErrClosed), lets
// queued jobs and their continuations finish, and waits for the workers
// to exit.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
}

// Stats snapshots the counters under one lock.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Workers:   q.workers,
		Depth:     q.depth,
		Submitted: q.submitted,
		Rejected:  q.rejected,
		Spawned:   q.spawned,
		Completed: q.completed,
		InFlight:  q.tickets,
		MaxQueued: q.maxQueued,
	}
	n := q.waitN
	if n > waitRingSize {
		n = waitRingSize
	}
	if n > 0 {
		sample := make([]time.Duration, n)
		copy(sample, q.waits[:n])
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		st.QueueWaitP50 = sample[len(sample)*50/100]
		p99 := len(sample) * 99 / 100
		if p99 >= len(sample) {
			p99 = len(sample) - 1
		}
		st.QueueWaitP99 = sample[p99]
		st.QueueWaitMax = sample[len(sample)-1]
		st.QueueWaitMean = time.Duration(q.waitNs / q.waitN)
	}
	return st
}
