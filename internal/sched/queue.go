// The open-ended half of the scheduler. RunPlan (sched.go) schedules a
// *fixed* index space — the shape of a ParallelArray operation or a
// study grid, where the whole plan is known up front. A serving system
// has the opposite shape: an unbounded stream of requests arriving at
// unknown times, where the thing that must be bounded is not the plan
// but the *admission* — how much work is allowed to be outstanding at
// once. Queue is that entry point: a long-lived worker pool with a
// bounded admission queue, explicit saturation (ErrSaturated, never an
// unbounded goroutine-per-request), and continuation jobs so a single
// admission can flow through multiple pipeline stages without holding a
// worker hostage between them.
//
// Admissions carry a latency Class (class.go). The queue is two-lane:
// every interactive task — root or continuation — drains before any
// batch task, continuations inherit their parent ticket's class, and at
// saturation batch is shed before interactive is ever rejected (an
// interactive Submit evicts the oldest still-queued batch root rather
// than return ErrSaturated while one exists). Batch admissions may also
// carry a queue-wait deadline: a batch root a worker reaches past its
// MaxWait is shed instead of run late.
package sched

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by Queue.Submit when the admission bound is
// reached: the caller must shed load (HTTP 429, retry later) instead of
// queueing without limit. It is a sentinel — match with errors.Is.
// Batch admissions shed before they run (eviction or deadline) report
// it through OnShed.
var ErrSaturated = errors.New("sched: queue saturated")

// ErrClosed is returned by Queue.Submit after Close.
var ErrClosed = errors.New("sched: queue closed")

// Job is one unit of queued work. The worker index has the same
// contract as BodyFunc's: each index is serviced by a single goroutine
// for the queue's lifetime, so per-worker state needs no locking.
type Job func(w *WorkerCtx)

// WorkerCtx is passed to every job: the worker index it runs on, plus
// Spawn for continuations.
type WorkerCtx struct {
	// Worker is the pool worker index in [0, Workers).
	Worker int
	q      *Queue
	t      *ticket
}

// Spawn enqueues a continuation of the current job under the *same*
// admission ticket: it can never be rejected (the admission decision
// was made at Submit), it inherits the ticket's class — including a
// promotion that happens after the spawn — and it runs before
// newly-admitted roots of its class, so pipelines drain from the back.
// Jobs must use Spawn — never a blocking wait on another queue job — to
// hand work forward; a job that blocks on queue-scheduled work can
// deadlock the pool.
func (w *WorkerCtx) Spawn(fn Job) {
	w.t.refs.Add(1)
	w.q.enqueue(&task{fn: fn, t: w.t}, true)
}

// ticket is one admission: refs counts the not-yet-finished jobs in its
// continuation tree; the admission slot frees when it hits zero.
// class and done are guarded by Queue.mu — done marks the slot freed
// (tree finished, or root shed before running) and makes any later
// Promote a no-op.
type ticket struct {
	refs   atomic.Int64
	class  Class
	done   bool
	onShed func()
}

type task struct {
	fn       Job
	t        *ticket
	enq      time.Time // set for admitted roots; zero for continuations
	deadline time.Time // batch roots with MaxWait; zero otherwise
}

// waitRingSize bounds each class's queue-wait sample ring (recent
// admissions only — percentiles describe current behaviour, not all
// history).
const waitRingSize = 1024

// Queue is a long-lived worker pool with bounded admission. Safe for
// concurrent use.
type Queue struct {
	workers int
	depth   int

	mu   sync.Mutex
	cond *sync.Cond
	// Lane order is the whole scheduling policy: workers scan
	// high[Interactive], low[Interactive], high[Batch], low[Batch] —
	// continuations before roots within a class, interactive entirely
	// before batch.
	high    [numClasses][]*task // continuations
	low     [numClasses][]*task // admitted roots
	closed  bool
	running int // jobs currently executing
	tickets int // admissions whose continuation tree has not finished

	classTickets [numClasses]int
	submitted    [numClasses]int64
	rejected     [numClasses]int64
	shed         [numClasses]int64
	promoted     int64
	spawned      int64
	completed    int64
	maxQueued    int

	waits  [numClasses][waitRingSize]time.Duration
	waitN  [numClasses]int64 // waits recorded (ring index = waitN % size)
	waitNs [numClasses]int64 // sum of all waits, for the mean
	wg     sync.WaitGroup
}

// ClassQueueStats is the per-class slice of QueueStats.
type ClassQueueStats struct {
	// Submitted counts admitted Submit calls; Rejected counts Submits
	// that returned ErrSaturated; Shed counts admissions dropped after
	// admission but before their root ran (batch eviction at
	// saturation, or MaxWait deadline).
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed"`
	// InFlight is the number of admission tickets currently held at
	// this class (a promoted ticket counts as interactive).
	InFlight int `json:"in_flight"`
	// QueueWait* describe time admitted roots of this class spent
	// queued before their first stage started: mean over whole history,
	// percentiles and max over the last waitRingSize admissions.
	QueueWaitMean time.Duration `json:"queue_wait_mean_ns"`
	QueueWaitP50  time.Duration `json:"queue_wait_p50_ns"`
	QueueWaitP99  time.Duration `json:"queue_wait_p99_ns"`
	QueueWaitMax  time.Duration `json:"queue_wait_max_ns"`
}

// QueueStats is a point-in-time snapshot of the queue counters. The
// top-level fields aggregate both classes (pre-class dashboards keep
// working); Interactive and Batch carry the per-class split.
type QueueStats struct {
	// Workers and Depth echo the construction parameters.
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
	// Submitted/Rejected count Submit calls (admitted vs ErrSaturated);
	// Shed counts admitted-then-dropped roots; Spawned counts
	// continuations; Completed counts jobs executed; Promoted counts
	// batch→interactive promotions.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed"`
	Promoted  int64 `json:"promoted"`
	Spawned   int64 `json:"spawned"`
	Completed int64 `json:"completed"`
	// InFlight is the number of admission tickets currently held.
	InFlight int `json:"in_flight"`
	// MaxQueued is the high-water mark of queued (not yet running) jobs.
	MaxQueued int `json:"max_queued"`
	// QueueWait* merge both classes' samples; the per-class split lives
	// in Interactive/Batch.
	QueueWaitMean time.Duration `json:"queue_wait_mean_ns"`
	QueueWaitP50  time.Duration `json:"queue_wait_p50_ns"`
	QueueWaitP99  time.Duration `json:"queue_wait_p99_ns"`
	QueueWaitMax  time.Duration `json:"queue_wait_max_ns"`

	Interactive ClassQueueStats `json:"interactive"`
	Batch       ClassQueueStats `json:"batch"`
}

// NewQueue starts a pool of `workers` goroutines (<= 0 → 1) accepting
// at most `depth` outstanding admissions (<= 0 → workers*2). Callers
// must Close it when done.
func NewQueue(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = workers * 2
	}
	q := &Queue{workers: workers, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.work(w)
	}
	return q
}

// Workers returns the pool size.
func (q *Queue) Workers() int { return q.workers }

// Depth returns the admission bound.
func (q *Queue) Depth() int { return q.depth }

// Submit admits fn at ClassInteractive, or reports ErrSaturated when
// `depth` admissions are already outstanding and none can be shed (an
// admission stays outstanding until its whole continuation tree
// finishes). Submit never blocks: backpressure is the caller's to
// surface, immediately.
func (q *Queue) Submit(fn Job) error {
	_, err := q.SubmitWith(fn, SubmitOptions{})
	return err
}

// SubmitWith admits fn under opts. At the admission bound the shed
// order is class-asymmetric: a batch Submit is rejected outright, while
// an interactive Submit first evicts the oldest still-queued batch root
// (its OnShed fires) and is only rejected when no queued batch work
// remains — so batch always sheds before any interactive rejection.
// The returned Handle supports priority inheritance via Promote; it is
// nil exactly when err is non-nil.
func (q *Queue) SubmitWith(fn Job, opts SubmitOptions) (*Handle, error) {
	class := opts.Class
	if class < 0 || class >= numClasses {
		class = ClassInteractive
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	var evicted func()
	if q.tickets >= q.depth {
		ok := false
		if class == ClassInteractive {
			if victim := q.evictQueuedBatchLocked(); victim != nil {
				evicted = victim.onShed
				ok = true
			}
		}
		if !ok {
			q.rejected[class]++
			q.mu.Unlock()
			return nil, ErrSaturated
		}
	}
	q.tickets++
	q.classTickets[class]++
	q.submitted[class]++
	t := &ticket{class: class, onShed: opts.OnShed}
	t.refs.Store(1)
	tk := &task{fn: fn, t: t, enq: time.Now()}
	if class == ClassBatch && opts.MaxWait > 0 {
		tk.deadline = tk.enq.Add(opts.MaxWait)
	}
	q.enqueueLocked(tk, false)
	q.mu.Unlock()
	if evicted != nil {
		evicted()
	}
	return &Handle{q: q, t: t}, nil
}

// evictQueuedBatchLocked drops the oldest queued batch root to free its
// admission slot for an arriving interactive request. Returns the shed
// ticket (its OnShed must be called after the lock is released), or nil
// when no batch root is still queued — batch work that already started
// is never preempted.
func (q *Queue) evictQueuedBatchLocked() *ticket {
	lane := q.low[ClassBatch]
	if len(lane) == 0 {
		return nil
	}
	tk := lane[0]
	q.low[ClassBatch] = lane[1:]
	q.freeTicketLocked(tk.t, true)
	return tk.t
}

// freeTicketLocked releases an admission slot — either its continuation
// tree finished (shed=false) or its root was dropped before running
// (shed=true). done makes late Promotes no-ops and guards against any
// double free.
func (q *Queue) freeTicketLocked(t *ticket, shed bool) {
	if t.done {
		return
	}
	t.done = true
	q.tickets--
	q.classTickets[t.class]--
	if shed {
		q.shed[t.class]++
	}
}

func (q *Queue) enqueue(tk *task, cont bool) {
	q.mu.Lock()
	q.enqueueLocked(tk, cont)
	q.mu.Unlock()
}

func (q *Queue) enqueueLocked(tk *task, cont bool) {
	class := tk.t.class
	if cont {
		q.spawned++
		q.high[class] = append(q.high[class], tk)
	} else {
		q.low[class] = append(q.low[class], tk)
	}
	if n := q.queuedLocked(); n > q.maxQueued {
		q.maxQueued = n
	}
	q.cond.Signal()
}

func (q *Queue) queuedLocked() int {
	n := 0
	for c := Class(0); c < numClasses; c++ {
		n += len(q.high[c]) + len(q.low[c])
	}
	return n
}

// dequeueLocked pops the next task in lane-priority order. root reports
// whether the task is an admitted root (wait is recorded, deadline
// checked) rather than a continuation.
func (q *Queue) dequeueLocked() (tk *task, root bool) {
	for c := Class(0); c < numClasses; c++ {
		if len(q.high[c]) > 0 {
			tk = q.high[c][0]
			q.high[c] = q.high[c][1:]
			return tk, false
		}
		if len(q.low[c]) > 0 {
			tk = q.low[c][0]
			q.low[c] = q.low[c][1:]
			return tk, true
		}
	}
	return nil, false
}

func (q *Queue) work(w int) {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for q.queuedLocked() == 0 && !(q.closed && q.running == 0) {
			q.cond.Wait()
		}
		tk, root := q.dequeueLocked()
		if tk == nil {
			// closed, queues empty, nothing running that could spawn.
			q.mu.Unlock()
			return
		}
		if root {
			// Deadline shed: a batch root reached past its MaxWait is
			// dropped instead of run late. Promotion clears the check
			// (tk.t.class is read under the lock), so an inherited-
			// priority job always runs.
			if !tk.deadline.IsZero() && tk.t.class == ClassBatch && time.Now().After(tk.deadline) {
				q.freeTicketLocked(tk.t, true)
				onShed := tk.t.onShed
				q.wakeIfDrainedLocked()
				q.mu.Unlock()
				if onShed != nil {
					onShed()
				}
				continue
			}
			q.recordWaitLocked(tk.t.class, time.Since(tk.enq))
		}
		q.running++
		q.mu.Unlock()

		runJob(tk.fn, &WorkerCtx{Worker: w, q: q, t: tk.t})

		q.mu.Lock()
		q.running--
		q.completed++
		if tk.t.refs.Add(-1) == 0 {
			q.freeTicketLocked(tk.t, false)
		}
		q.wakeIfDrainedLocked()
		q.mu.Unlock()
	}
}

// wakeIfDrainedLocked wakes parked siblings so they can observe the
// worker exit condition once the queue is closed and fully drained.
func (q *Queue) wakeIfDrainedLocked() {
	if q.closed && q.running == 0 && q.queuedLocked() == 0 {
		q.cond.Broadcast()
	}
}

// runJob contains a panicking job so one bad input cannot kill a
// shared worker or corrupt the queue's ticket accounting. Containment
// is all the queue can do — it cannot deliver a result on the job's
// behalf, so jobs that report through channels or callbacks must
// install their own recover (as the proxy pipeline's stages do) or
// their waiters hang.
func runJob(fn Job, w *WorkerCtx) {
	defer func() { _ = recover() }()
	fn(w)
}

func (q *Queue) recordWaitLocked(class Class, d time.Duration) {
	q.waits[class][q.waitN[class]%waitRingSize] = d
	q.waitN[class]++
	q.waitNs[class] += int64(d)
}

// Close stops admission immediately (Submit returns ErrClosed), lets
// queued jobs and their continuations finish, and waits for the workers
// to exit. Queued batch roots still run — Close drains, it does not
// shed.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
}

// Stats snapshots the counters under one lock.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueueStats{
		Workers:   q.workers,
		Depth:     q.depth,
		Promoted:  q.promoted,
		Spawned:   q.spawned,
		Completed: q.completed,
		InFlight:  q.tickets,
		MaxQueued: q.maxQueued,
	}
	var merged []time.Duration
	var sumNs, sumN int64
	for c := Class(0); c < numClasses; c++ {
		cs := ClassQueueStats{
			Submitted: q.submitted[c],
			Rejected:  q.rejected[c],
			Shed:      q.shed[c],
			InFlight:  q.classTickets[c],
		}
		st.Submitted += q.submitted[c]
		st.Rejected += q.rejected[c]
		st.Shed += q.shed[c]
		n := q.waitN[c]
		if n > waitRingSize {
			n = waitRingSize
		}
		if n > 0 {
			sample := make([]time.Duration, n)
			copy(sample, q.waits[c][:n])
			fillWaitPercentiles(sample, &cs.QueueWaitP50, &cs.QueueWaitP99, &cs.QueueWaitMax)
			cs.QueueWaitMean = time.Duration(q.waitNs[c] / q.waitN[c])
			merged = append(merged, sample...)
			sumNs += q.waitNs[c]
			sumN += q.waitN[c]
		}
		switch c {
		case ClassInteractive:
			st.Interactive = cs
		case ClassBatch:
			st.Batch = cs
		}
	}
	if len(merged) > 0 {
		fillWaitPercentiles(merged, &st.QueueWaitP50, &st.QueueWaitP99, &st.QueueWaitMax)
		st.QueueWaitMean = time.Duration(sumNs / sumN)
	}
	return st
}

// fillWaitPercentiles sorts sample in place and writes p50/p99/max.
func fillWaitPercentiles(sample []time.Duration, p50, p99, max *time.Duration) {
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	*p50 = sample[len(sample)*50/100]
	i99 := len(sample) * 99 / 100
	if i99 >= len(sample) {
		i99 = len(sample) - 1
	}
	*p99 = sample[i99]
	*max = sample[len(sample)-1]
}
