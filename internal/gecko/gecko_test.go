package gecko

import (
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

// callDense: many interpreted-function boundaries — the sampler sees
// nearly everything.
const callDense = `
function leaf(x) { return x + 1; }
var s = 0;
for (var i = 0; i < 3000; i++) { s = leaf(s); }
`

// callSparse: one long call-free stretch — the §3.1 failure mode ("a long
// running computation within a single function may be seen as inactive").
const callSparse = `
function monolith() {
  var s = 0;
  for (var i = 0; i < 30000; i++) { s += i % 7; }
  return s;
}
var out = monolith();
`

func runSampled(t *testing.T, src string, windowNS int64) (active, script int64) {
	t.Helper()
	in := interp.New(interp.WithNSPerStep(1000))
	s := NewSampler(in)
	s.Window = windowNS
	in.SetHooks(s)
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	return s.ActiveTime(), in.ScriptTime()
}

func TestCallDenseFullyCredited(t *testing.T) {
	active, script := runSampled(t, callDense, 5_000_000)
	ratio := float64(active) / float64(script)
	if ratio < 0.9 {
		t.Errorf("call-dense credited %.2f of script time, want ~1", ratio)
	}
}

func TestCallSparseUndercounted(t *testing.T) {
	active, script := runSampled(t, callSparse, 5_000_000)
	ratio := float64(active) / float64(script)
	if ratio > 0.5 {
		t.Errorf("call-sparse credited %.2f, want < 0.5 (the §3.1 anomaly)", ratio)
	}
	if active <= 0 {
		t.Error("sampler saw nothing at all")
	}
}

func TestActiveNeverExceedsScript(t *testing.T) {
	for _, src := range []string{callDense, callSparse} {
		active, script := runSampled(t, src, 1_000_000)
		if active > script {
			t.Errorf("active %d > script %d", active, script)
		}
	}
}

func TestWindowMonotonicity(t *testing.T) {
	// A wider sampling window can only credit more time.
	a1, _ := runSampled(t, callSparse, 1_000_000)
	a2, _ := runSampled(t, callSparse, 10_000_000)
	if a2 < a1 {
		t.Errorf("wider window credited less: %d < %d", a2, a1)
	}
}

func TestTopFunctions(t *testing.T) {
	in := interp.New(interp.WithNSPerStep(1000))
	s := NewSampler(in)
	s.Window = 1_000_000
	in.SetHooks(s)
	src := `
function hot() { var x = 0; for (var i = 0; i < 500; i++) { x += i; } return x; }
function cold() { return 1; }
for (var n = 0; n < 20; n++) { hot(); }
cold();
`
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	top := s.TopFunctions(2)
	if len(top) == 0 {
		t.Fatal("no samples")
	}
	if top[0].Name != "hot" {
		t.Errorf("hottest = %q, want hot (profile: %v)", top[0].Name, top)
	}
}

func TestNativeCallsInvisible(t *testing.T) {
	// Math.* are intrinsics: a loop full of native calls is still one
	// opaque stretch to the sampler.
	src := `
function monolithWithMath() {
  var s = 0;
  for (var i = 0; i < 20000; i++) { s += Math.sqrt(i); }
  return s;
}
var out = monolithWithMath();
`
	active, script := runSampled(t, src, 5_000_000)
	if ratio := float64(active) / float64(script); ratio > 0.5 {
		t.Errorf("native-call loop credited %.2f; intrinsics must not create sample boundaries", ratio)
	}
}
