// Package gecko simulates the Mozilla Gecko sampling profiler the paper
// uses for its "Active" column in Table 2 (§3.1).
//
// The real profiler samples the call stack at a fixed rate and at function
// granularity. §3.1 documents a resulting anomaly: "a long running
// computation within a single function may be seen as inactive", so the
// sampled active time can undercount — sometimes ending up *below* the
// loop time measured by JS-CERES's inline instrumentation.
//
// This simulation reproduces that mechanism directly: activity is
// recognized only around function-call boundaries. Between two call events
// separated by Δt of virtual time, at most Window nanoseconds are
// attributed as active — a tight loop that stays inside one function for
// 50ms with no calls contributes a single sampling window, exactly the
// paper's failure mode. Idle gaps (no script running) contribute nothing.
package gecko

import (
	"sort"

	"repro/internal/js/interp"
)

// Sampler estimates active CPU time at function granularity.
type Sampler struct {
	interp.NopHooks
	// clock reads *script* time: a real sampler never attributes samples
	// to an engine that is sitting idle in the event loop.
	clock interface{ ScriptTime() int64 }

	// Window is the sampling interval: the maximum time one call boundary
	// can vouch for (default 1ms of virtual time, the Gecko default).
	Window int64

	lastEvent int64
	activeNS  int64
	started   int64

	// per-function inclusive sample counts (top of stack attribution)
	stack   []string
	samples map[string]int64
}

// NewSampler attaches a sampler to the interpreter clock.
func NewSampler(in *interp.Interp) *Sampler {
	return &Sampler{
		clock:     in,
		Window:    1_000_000, // 1ms virtual
		lastEvent: in.ScriptTime(),
		started:   in.ScriptTime(),
		samples:   make(map[string]int64),
	}
}

// note credits at most Window ns of activity since the previous call
// boundary — the function-granularity sampling model.
func (s *Sampler) note() {
	now := s.clock.ScriptTime()
	dt := now - s.lastEvent
	if dt > s.Window {
		dt = s.Window
	}
	if dt > 0 {
		s.activeNS += dt
		if len(s.stack) > 0 {
			s.samples[s.stack[len(s.stack)-1]]++
		}
	}
	s.lastEvent = now
}

// CallEnter implements interp.Hooks.
func (s *Sampler) CallEnter(name string) {
	s.note()
	s.stack = append(s.stack, name)
}

// CallExit implements interp.Hooks.
func (s *Sampler) CallExit(string) {
	s.note()
	if len(s.stack) > 0 {
		s.stack = s.stack[:len(s.stack)-1]
	}
}

// ActiveTime returns the sampled active time in virtual nanoseconds.
func (s *Sampler) ActiveTime() int64 { return s.activeNS }

// FunctionSample is one row of the per-function profile.
type FunctionSample struct {
	Name    string
	Samples int64
}

// TopFunctions returns the hottest functions by sample count.
func (s *Sampler) TopFunctions(n int) []FunctionSample {
	out := make([]FunctionSample, 0, len(s.samples))
	for name, c := range s.samples {
		out = append(out, FunctionSample{Name: name, Samples: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
