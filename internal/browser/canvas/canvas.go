// Package canvas implements a software 2D canvas: an RGBA pixel buffer
// with the drawing operations the case-study workloads use (fillRect,
// paths, per-pixel image data access).
//
// Like the DOM, the canvas is a non-concurrent browser structure; the
// paper's Table 3 marks loops that read or write it. The wiring layer
// reports every operation as a host op.
package canvas

import (
	"fmt"
	"math"
)

// Canvas is an RGBA8 pixel surface.
type Canvas struct {
	W, H int
	// Pix is RGBA, 4 bytes per pixel, row-major.
	Pix []uint8

	// Ops counts drawing operations by name.
	Ops      map[string]int64
	TotalOps int64

	// path state
	pathX, pathY []float64
	fillR        uint8
	fillG        uint8
	fillB        uint8
	fillA        uint8
	strokeR      uint8
	strokeG      uint8
	strokeB      uint8
}

// New returns a w×h canvas cleared to transparent black.
func New(w, h int) *Canvas {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return &Canvas{
		W:     w,
		H:     h,
		Pix:   make([]uint8, w*h*4),
		Ops:   make(map[string]int64),
		fillA: 255,
	}
}

func (c *Canvas) count(op string) {
	c.Ops[op]++
	c.TotalOps++
}

func clamp8(f float64) uint8 {
	if f <= 0 {
		return 0
	}
	if f >= 255 {
		return 255
	}
	return uint8(f)
}

// SetFillStyle sets the fill color.
func (c *Canvas) SetFillStyle(r, g, b, a uint8) {
	c.count("fillStyle")
	c.fillR, c.fillG, c.fillB, c.fillA = r, g, b, a
}

// SetStrokeStyle sets the stroke color.
func (c *Canvas) SetStrokeStyle(r, g, b uint8) {
	c.count("strokeStyle")
	c.strokeR, c.strokeG, c.strokeB = r, g, b
}

// FillRect fills an axis-aligned rectangle.
func (c *Canvas) FillRect(x, y, w, h float64) {
	c.count("fillRect")
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	x1, y1 := int(math.Ceil(x+w)), int(math.Ceil(y+h))
	for py := max(0, y0); py < min(c.H, y1); py++ {
		for px := max(0, x0); px < min(c.W, x1); px++ {
			i := (py*c.W + px) * 4
			c.Pix[i] = c.fillR
			c.Pix[i+1] = c.fillG
			c.Pix[i+2] = c.fillB
			c.Pix[i+3] = c.fillA
		}
	}
}

// ClearRect zeroes a rectangle.
func (c *Canvas) ClearRect(x, y, w, h float64) {
	c.count("clearRect")
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	x1, y1 := int(math.Ceil(x+w)), int(math.Ceil(y+h))
	for py := max(0, y0); py < min(c.H, y1); py++ {
		for px := max(0, x0); px < min(c.W, x1); px++ {
			i := (py*c.W + px) * 4
			c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3] = 0, 0, 0, 0
		}
	}
}

// BeginPath starts a new path.
func (c *Canvas) BeginPath() {
	c.count("beginPath")
	c.pathX = c.pathX[:0]
	c.pathY = c.pathY[:0]
}

// MoveTo starts a subpath at (x, y).
func (c *Canvas) MoveTo(x, y float64) {
	c.count("moveTo")
	c.pathX = append(c.pathX, x)
	c.pathY = append(c.pathY, y)
}

// LineTo extends the path to (x, y).
func (c *Canvas) LineTo(x, y float64) {
	c.count("lineTo")
	c.pathX = append(c.pathX, x)
	c.pathY = append(c.pathY, y)
}

// Stroke rasterizes the current path with 1px lines (Bresenham).
func (c *Canvas) Stroke() {
	c.count("stroke")
	for i := 1; i < len(c.pathX); i++ {
		c.line(c.pathX[i-1], c.pathY[i-1], c.pathX[i], c.pathY[i])
	}
}

// Arc approximates a circle outline (used by drawing workloads).
func (c *Canvas) Arc(cx, cy, r float64) {
	c.count("arc")
	steps := int(math.Max(8, r))
	for i := 0; i <= steps; i++ {
		a := 2 * math.Pi * float64(i) / float64(steps)
		x, y := cx+r*math.Cos(a), cy+r*math.Sin(a)
		if i == 0 {
			c.MoveTo(x, y)
		} else {
			c.LineTo(x, y)
		}
	}
}

func (c *Canvas) line(x0f, y0f, x1f, y1f float64) {
	x0, y0 := int(x0f), int(y0f)
	x1, y1 := int(x1f), int(y1f)
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := sign(x1-x0), sign(y1-y0)
	err := dx + dy
	for {
		c.setPixel(x0, y0, c.strokeR, c.strokeG, c.strokeB, 255)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func (c *Canvas) setPixel(x, y int, r, g, b, a uint8) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	i := (y*c.W + x) * 4
	c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3] = r, g, b, a
}

// GetImageData copies a rectangle of pixels (RGBA bytes).
func (c *Canvas) GetImageData(x, y, w, h int) []uint8 {
	c.count("getImageData")
	out := make([]uint8, 0, w*h*4)
	for py := y; py < y+h; py++ {
		for px := x; px < x+w; px++ {
			if px < 0 || py < 0 || px >= c.W || py >= c.H {
				out = append(out, 0, 0, 0, 0)
				continue
			}
			i := (py*c.W + px) * 4
			out = append(out, c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3])
		}
	}
	return out
}

// PutImageData writes a rectangle of pixels (RGBA bytes).
func (c *Canvas) PutImageData(data []uint8, x, y, w, h int) error {
	c.count("putImageData")
	if len(data) < w*h*4 {
		return fmt.Errorf("canvas: putImageData with %d bytes, need %d", len(data), w*h*4)
	}
	k := 0
	for py := y; py < y+h; py++ {
		for px := x; px < x+w; px++ {
			if px >= 0 && py >= 0 && px < c.W && py < c.H {
				i := (py*c.W + px) * 4
				c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3] = data[k], data[k+1], data[k+2], data[k+3]
			}
			k += 4
		}
	}
	return nil
}

// PixelAt returns the RGBA at (x, y) for tests.
func (c *Canvas) PixelAt(x, y int) (r, g, b, a uint8) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	i := (y*c.W + x) * 4
	return c.Pix[i], c.Pix[i+1], c.Pix[i+2], c.Pix[i+3]
}

// Checksum returns a cheap content hash for golden tests.
func (c *Canvas) Checksum() uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range c.Pix {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
