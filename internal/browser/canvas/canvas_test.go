package canvas

import (
	"testing"
	"testing/quick"
)

func TestFillRect(t *testing.T) {
	c := New(10, 10)
	c.SetFillStyle(255, 0, 0, 255)
	c.FillRect(2, 3, 4, 2)
	r, g, b, a := c.PixelAt(2, 3)
	if r != 255 || g != 0 || b != 0 || a != 255 {
		t.Errorf("pixel inside = %d,%d,%d,%d", r, g, b, a)
	}
	if r, _, _, _ := c.PixelAt(1, 3); r != 0 {
		t.Error("pixel left of rect painted")
	}
	if r, _, _, _ := c.PixelAt(6, 3); r != 0 {
		t.Error("pixel right of rect painted")
	}
}

func TestFillRectClipping(t *testing.T) {
	c := New(4, 4)
	c.SetFillStyle(9, 9, 9, 255)
	c.FillRect(-5, -5, 100, 100) // whole canvas, no panic
	r, _, _, _ := c.PixelAt(3, 3)
	if r != 9 {
		t.Error("clipped fill missed in-bounds pixels")
	}
}

func TestClearRect(t *testing.T) {
	c := New(4, 4)
	c.SetFillStyle(10, 20, 30, 255)
	c.FillRect(0, 0, 4, 4)
	c.ClearRect(1, 1, 2, 2)
	if r, _, _, a := c.PixelAt(1, 1); r != 0 || a != 0 {
		t.Error("clear failed")
	}
	if r, _, _, _ := c.PixelAt(0, 0); r != 10 {
		t.Error("clear overreached")
	}
}

func TestLineStroke(t *testing.T) {
	c := New(10, 10)
	c.SetStrokeStyle(0, 255, 0)
	c.BeginPath()
	c.MoveTo(0, 0)
	c.LineTo(9, 9)
	c.Stroke()
	for i := 0; i < 10; i++ {
		if _, g, _, _ := c.PixelAt(i, i); g != 255 {
			t.Fatalf("diagonal pixel (%d,%d) not stroked", i, i)
		}
	}
	// horizontal and vertical lines too
	c2 := New(5, 5)
	c2.SetStrokeStyle(1, 2, 3)
	c2.BeginPath()
	c2.MoveTo(0, 2)
	c2.LineTo(4, 2)
	c2.Stroke()
	for x := 0; x < 5; x++ {
		if r, _, _, _ := c2.PixelAt(x, 2); r != 1 {
			t.Fatalf("hline pixel %d missing", x)
		}
	}
}

func TestArcTouchesCircle(t *testing.T) {
	c := New(21, 21)
	c.SetStrokeStyle(7, 7, 7)
	c.BeginPath()
	c.Arc(10, 10, 8)
	c.Stroke()
	// a point on the circle (roughly) is painted; center is not
	if r, _, _, _ := c.PixelAt(18, 10); r != 7 {
		t.Error("circle rim not painted")
	}
	if r, _, _, _ := c.PixelAt(10, 10); r != 0 {
		t.Error("circle center painted")
	}
}

func TestImageDataRoundTrip(t *testing.T) {
	c := New(6, 6)
	c.SetFillStyle(100, 150, 200, 255)
	c.FillRect(1, 1, 3, 3)
	data := c.GetImageData(0, 0, 6, 6)
	if len(data) != 6*6*4 {
		t.Fatalf("data len %d", len(data))
	}
	c2 := New(6, 6)
	if err := c2.PutImageData(data, 0, 0, 6, 6); err != nil {
		t.Fatal(err)
	}
	if c.Checksum() != c2.Checksum() {
		t.Error("round trip changed pixels")
	}
}

func TestImageDataOutOfBounds(t *testing.T) {
	c := New(4, 4)
	data := c.GetImageData(-2, -2, 8, 8)
	if len(data) != 8*8*4 {
		t.Fatalf("padded read %d", len(data))
	}
	if err := c.PutImageData(data[:10], 0, 0, 8, 8); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestOpCounters(t *testing.T) {
	c := New(4, 4)
	c.FillRect(0, 0, 1, 1)
	c.BeginPath()
	c.MoveTo(0, 0)
	c.LineTo(1, 1)
	c.Stroke()
	if c.TotalOps != 5 {
		t.Errorf("ops = %d, want 5", c.TotalOps)
	}
	if c.Ops["fillRect"] != 1 || c.Ops["stroke"] != 1 {
		t.Error("per-op counters")
	}
}

func TestPutGetPropertyRoundTrip(t *testing.T) {
	// property: put(get(x)) is idempotent for in-bounds rectangles
	f := func(seed uint8) bool {
		c := New(8, 8)
		c.SetFillStyle(seed, seed/2, seed/3+1, 255)
		c.FillRect(float64(seed%4), float64(seed%3), 3, 3)
		before := c.Checksum()
		data := c.GetImageData(0, 0, 8, 8)
		if err := c.PutImageData(data, 0, 0, 8, 8); err != nil {
			return false
		}
		return c.Checksum() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinimumSize(t *testing.T) {
	c := New(0, -5)
	if c.W < 1 || c.H < 1 {
		t.Error("degenerate canvas dimensions")
	}
}
