package browser

import (
	"strings"
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

func run(t *testing.T, src string) (*Window, *interp.Interp) {
	t.Helper()
	in := interp.New()
	w := NewWindow(in)
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("run: %v", err)
	}
	return w, in
}

func TestDocumentFromJS(t *testing.T) {
	w, in := run(t, `
var div = document.createElement("div");
div.setAttribute("id", "main");
div.setText("hi");
document.body.appendChild(div);
var found = document.getElementById("main");
var text = found.getText();
var count = document.body.childCount();
`)
	if got := in.Global("text").Str(); got != "hi" {
		t.Errorf("text = %q", got)
	}
	if got := in.Global("count").Num(); got != 1 {
		t.Errorf("childCount = %v", got)
	}
	if w.Doc.GetElementByID("main") == nil {
		t.Error("Go-side DOM not updated")
	}
}

func TestNodeWrapperIdentity(t *testing.T) {
	_, in := run(t, `
var a = document.createElement("div");
a.setAttribute("id", "x");
document.body.appendChild(a);
var same = document.getElementById("x") === a;
`)
	if !in.Global("same").ToBool() {
		t.Error("wrapper identity not preserved across lookups")
	}
}

func TestCanvasFromJS(t *testing.T) {
	w, in := run(t, `
var cv = document.createElement("canvas");
cv.setSize(8, 8);
document.body.appendChild(cv);
var ctx = cv.getContext("2d");
ctx.setFillStyle(200, 100, 50);
ctx.fillRect(0, 0, 8, 8);
var img = ctx.getImageData(0, 0, 2, 2);
var r0 = img.data[0];
ctx.putImageData(img, 4, 4);
`)
	if got := in.Global("r0").Num(); got != 200 {
		t.Errorf("r0 = %v", got)
	}
	if len(w.Canvases) != 1 || w.Canvases[0].W != 8 {
		t.Fatalf("canvas substrate missing")
	}
	if w.Canvases[0].Ops["fillRect"] != 1 {
		t.Error("fillRect not counted")
	}
}

func TestTimersAndPump(t *testing.T) {
	w, in := run(t, `
var fired = [];
setTimeout(function () { fired.push("b"); }, 20);
setTimeout(function () { fired.push("a"); }, 10);
var id = setTimeout(function () { fired.push("never"); }, 30);
clearTimeout(id);
`)
	n, err := w.PumpN(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("pumped %d, want 2", n)
	}
	arr := in.Global("fired").Object()
	if len(arr.Elems) != 2 || arr.Elems[0].Str() != "a" || arr.Elems[1].Str() != "b" {
		t.Errorf("fired = %v", value.ObjectVal(arr).Inspect())
	}
	// virtual clock advanced to the second deadline
	if in.Now() < 20_000_000 {
		t.Errorf("clock = %d, want >= 20ms", in.Now())
	}
}

func TestAnimationFrames(t *testing.T) {
	w, in := run(t, `
var frames = 0;
function tick() {
  frames++;
  if (frames < 5) { requestAnimationFrame(tick); }
}
requestAnimationFrame(tick);
`)
	if _, err := w.PumpN(100); err != nil {
		t.Fatal(err)
	}
	if got := in.Global("frames").Num(); got != 5 {
		t.Errorf("frames = %v, want 5", got)
	}
	// 5 frames at 16ms cadence
	if in.Now() < 5*16_000_000 {
		t.Errorf("clock = %d, want >= 80ms", in.Now())
	}
}

func TestPumpForDeadline(t *testing.T) {
	w, in := run(t, `
var ticks = 0;
setInterval(function () { ticks++; }, 10);
`)
	if _, err := w.PumpFor(55_000_000); err != nil {
		t.Fatal(err)
	}
	got := in.Global("ticks").Num()
	if got < 4 || got > 6 {
		t.Errorf("ticks = %v, want ~5", got)
	}
	if in.Now() < 50_000_000 {
		t.Errorf("clock %d", in.Now())
	}
}

func TestDispatchEvent(t *testing.T) {
	w, in := run(t, `
var seen = [];
addEventListener("click", function (e) { seen.push(e.x); });
addEventListener("click", function (e) { seen.push(e.x * 2); });
`)
	payload := in.NewObject()
	payload.Set("x", value.Int(5))
	if err := w.DispatchEvent("click", value.ObjectVal(payload)); err != nil {
		t.Fatal(err)
	}
	arr := in.Global("seen").Object()
	if len(arr.Elems) != 2 || arr.Elems[0].Num() != 5 || arr.Elems[1].Num() != 10 {
		t.Errorf("seen = %v", value.ObjectVal(arr).Inspect())
	}
	if !w.HasListeners("click") || w.HasListeners("keydown") {
		t.Error("HasListeners")
	}
}

func TestHandlerErrorSurfaces(t *testing.T) {
	w, _ := run(t, `addEventListener("boom", function () { throw "bad"; });`)
	err := w.DispatchEvent("boom", value.Undefined())
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("err = %v", err)
	}
}

func TestHostOpsEmitted(t *testing.T) {
	in := interp.New()
	var ops []string
	in.SetHostOpListener(func(category, op string) { ops = append(ops, category+":"+op) })
	w := NewWindow(in)
	if err := in.Run(parser.MustParse(`
var d = document.createElement("div");
document.body.appendChild(d);
d.setStyle("color", "red");
`)); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ops, ",")
	for _, want := range []string{"dom:createElement", "dom:appendChild", "dom:setStyle"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ops %v missing %s", ops, want)
		}
	}
	_ = w
}

func TestTaskBoundaries(t *testing.T) {
	w, _ := run(t, `
addEventListener("go", function () {});
setTimeout(function () {}, 1);
`)
	var log []string
	w.OnTask = func(label string, begin bool) {
		if begin {
			log = append(log, "+"+label)
		} else {
			log = append(log, "-"+label)
		}
	}
	if err := w.DispatchEvent("go", value.Undefined()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.PumpN(1); err != nil {
		t.Fatal(err)
	}
	want := []string{"+go", "-go", "+timeout", "-timeout"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Errorf("task log = %v, want %v", log, want)
	}
}

func TestIdleForAdvancesTotalNotScript(t *testing.T) {
	_, in := run(t, `var x = 1;`)
	w := NewWindow(in)
	script := in.ScriptTime()
	w.IdleFor(100_000_000)
	if in.ScriptTime() != script {
		t.Error("idle advanced script time")
	}
	if in.Now() < script+100_000_000 {
		t.Error("idle did not advance wall clock")
	}
}
