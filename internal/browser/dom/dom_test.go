package dom

import (
	"strings"
	"testing"
)

func TestDocumentScaffolding(t *testing.T) {
	d := NewDocument()
	if d.Root == nil || d.Root.Tag != "html" {
		t.Fatal("no html root")
	}
	if d.Body() == nil || d.Body().Tag != "body" {
		t.Fatal("no body")
	}
}

func TestCreateAndAppend(t *testing.T) {
	d := NewDocument()
	div := d.CreateElement("DIV")
	if div.Tag != "div" {
		t.Errorf("tag %q not lowercased", div.Tag)
	}
	d.Body().AppendChild(div)
	if div.Parent != d.Body() || d.Body().NumChildren() != 1 {
		t.Error("append failed")
	}
	// re-append to another parent moves the node
	other := d.CreateElement("span")
	d.Body().AppendChild(other)
	other.AppendChild(div)
	if d.Body().NumChildren() != 1 || other.NumChildren() != 1 || div.Parent != other {
		t.Error("reparenting failed")
	}
}

func TestRemoveChild(t *testing.T) {
	d := NewDocument()
	a := d.CreateElement("a")
	b := d.CreateElement("b")
	d.Body().AppendChild(a)
	d.Body().AppendChild(b)
	if !d.Body().RemoveChild(a) {
		t.Error("remove existing")
	}
	if d.Body().RemoveChild(a) {
		t.Error("remove twice")
	}
	if d.Body().NumChildren() != 1 || d.Body().ChildAt(0) != b {
		t.Error("children after removal")
	}
	if d.Body().ChildAt(5) != nil || d.Body().ChildAt(-1) != nil {
		t.Error("out-of-range ChildAt")
	}
}

func TestIDIndex(t *testing.T) {
	d := NewDocument()
	n := d.CreateElement("div")
	n.SetAttribute("id", "x")
	if d.GetElementByID("x") != n {
		t.Error("id lookup")
	}
	n.SetAttribute("id", "y")
	if d.GetElementByID("x") != nil || d.GetElementByID("y") != n {
		t.Error("id re-index")
	}
	if n.GetAttribute("id") != "y" {
		t.Error("get id attr")
	}
}

func TestAttributesAndStyle(t *testing.T) {
	d := NewDocument()
	n := d.CreateElement("div")
	n.SetAttribute("data-k", "v")
	if n.GetAttribute("data-k") != "v" || n.GetAttribute("missing") != "" {
		t.Error("attributes")
	}
	n.SetStyle("left", "10px")
	if n.GetStyle("left") != "10px" || n.GetStyle("top") != "" {
		t.Error("style")
	}
	n.SetText("hello")
	if n.GetText() != "hello" {
		t.Error("text")
	}
}

func TestOpCounting(t *testing.T) {
	d := NewDocument()
	base := d.TotalOps
	n := d.CreateElement("div")
	d.Body().AppendChild(n)
	n.SetAttribute("a", "1")
	n.SetStyle("x", "y")
	_ = n.GetAttribute("a")
	if d.TotalOps-base != 5 {
		t.Errorf("ops delta = %d, want 5", d.TotalOps-base)
	}
	if d.Ops["appendChild"] == 0 || d.Ops["setAttribute"] == 0 {
		t.Error("per-op counters")
	}
}

func TestWalkAndRender(t *testing.T) {
	d := NewDocument()
	ul := d.CreateElement("ul")
	d.Body().AppendChild(ul)
	for i := 0; i < 3; i++ {
		li := d.CreateElement("li")
		li.SetText("item")
		ul.AppendChild(li)
	}
	count := 0
	d.Root.Walk(func(*Node) { count++ })
	if count != 6 { // html, body, ul, 3×li
		t.Errorf("walk visited %d, want 6", count)
	}
	out := d.Root.Render()
	if !strings.Contains(out, "<ul>") || strings.Count(out, "<li>") != 3 {
		t.Errorf("render:\n%s", out)
	}
}

func TestAppendSelfIgnored(t *testing.T) {
	d := NewDocument()
	n := d.CreateElement("div")
	n.AppendChild(n)
	if n.NumChildren() != 0 {
		t.Error("self-append created a cycle")
	}
}
