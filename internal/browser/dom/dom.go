// Package dom implements a minimal in-memory Document Object Model used
// as the substrate for the case-study workloads.
//
// Browsers have no concurrent DOM implementation (§4.1 of the paper calls
// this out as a key limitation), so JS-CERES must detect when hot loops
// touch the DOM. The model counts every operation; the browser wiring
// layer reports them to the interpreter as host ops so the loop profiler
// can attribute them to loop nests.
package dom

import (
	"fmt"
	"strings"
)

// Node is one element in the document tree.
type Node struct {
	Tag      string
	ID       string
	Text     string
	Attrs    map[string]string
	Style    map[string]string
	Children []*Node
	Parent   *Node

	doc *Document
}

// Document is the DOM root plus an id index and operation counters.
type Document struct {
	Root *Node
	byID map[string]*Node

	// Ops counts mutations and queries by operation name.
	Ops map[string]int64
	// TotalOps is the sum of all counters.
	TotalOps int64
	// nodes counts live nodes for invariant checks.
	nodes int
}

// NewDocument returns a document with <html><body> scaffolding.
func NewDocument() *Document {
	d := &Document{
		byID: make(map[string]*Node),
		Ops:  make(map[string]int64),
	}
	d.Root = d.CreateElement("html")
	body := d.CreateElement("body")
	d.Root.AppendChild(body)
	return d
}

func (d *Document) count(op string) {
	d.Ops[op]++
	d.TotalOps++
}

// Body returns the <body> element.
func (d *Document) Body() *Node {
	for _, c := range d.Root.Children {
		if c.Tag == "body" {
			return c
		}
	}
	return d.Root
}

// CreateElement allocates a detached element.
func (d *Document) CreateElement(tag string) *Node {
	d.count("createElement")
	d.nodes++
	return &Node{
		Tag:   strings.ToLower(tag),
		Attrs: make(map[string]string),
		Style: make(map[string]string),
		doc:   d,
	}
}

// GetElementByID looks an element up by id attribute.
func (d *Document) GetElementByID(id string) *Node {
	d.count("getElementById")
	return d.byID[id]
}

// NumNodes returns the number of elements ever created.
func (d *Document) NumNodes() int { return d.nodes }

// AppendChild attaches child to n (detaching it from any previous parent).
func (n *Node) AppendChild(child *Node) {
	if child == nil || child == n {
		return
	}
	n.doc.count("appendChild")
	if child.Parent != nil {
		child.Parent.removeChildNode(child)
	}
	child.Parent = n
	n.Children = append(n.Children, child)
}

// RemoveChild detaches child from n; it reports whether child was found.
func (n *Node) RemoveChild(child *Node) bool {
	n.doc.count("removeChild")
	return n.removeChildNode(child)
}

func (n *Node) removeChildNode(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return true
		}
	}
	return false
}

// SetAttribute sets an attribute (indexing "id").
func (n *Node) SetAttribute(name, val string) {
	n.doc.count("setAttribute")
	if name == "id" {
		if n.ID != "" {
			delete(n.doc.byID, n.ID)
		}
		n.ID = val
		n.doc.byID[val] = n
	}
	n.Attrs[name] = val
}

// GetAttribute reads an attribute ("" when missing).
func (n *Node) GetAttribute(name string) string {
	n.doc.count("getAttribute")
	if name == "id" {
		return n.ID
	}
	return n.Attrs[name]
}

// SetStyle sets one CSS property.
func (n *Node) SetStyle(prop, val string) {
	n.doc.count("setStyle")
	n.Style[prop] = val
}

// GetStyle reads one CSS property.
func (n *Node) GetStyle(prop string) string {
	n.doc.count("getStyle")
	return n.Style[prop]
}

// SetText sets the text content.
func (n *Node) SetText(s string) {
	n.doc.count("setText")
	n.Text = s
}

// GetText reads the text content.
func (n *Node) GetText() string {
	n.doc.count("getText")
	return n.Text
}

// NumChildren returns the child count.
func (n *Node) NumChildren() int { return len(n.Children) }

// ChildAt returns the i-th child or nil.
func (n *Node) ChildAt(i int) *Node {
	if i < 0 || i >= len(n.Children) {
		return nil
	}
	return n.Children[i]
}

// Walk visits n and every descendant in document order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Render serializes the subtree as indented pseudo-HTML (debugging and
// golden tests).
func (n *Node) Render() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

func (n *Node) render(sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	sb.WriteString(indent)
	sb.WriteByte('<')
	sb.WriteString(n.Tag)
	if n.ID != "" {
		fmt.Fprintf(sb, " id=%q", n.ID)
	}
	for k, v := range n.Attrs {
		if k == "id" {
			continue
		}
		fmt.Fprintf(sb, " %s=%q", k, v)
	}
	sb.WriteString(">")
	if n.Text != "" {
		sb.WriteString(n.Text)
	}
	if len(n.Children) > 0 {
		sb.WriteByte('\n')
		for _, c := range n.Children {
			c.render(sb, depth+1)
		}
		sb.WriteString(indent)
	}
	fmt.Fprintf(sb, "</%s>\n", n.Tag)
}
