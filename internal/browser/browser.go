// Package browser wires the DOM, canvas and event-queue substrates into a
// JavaScript interpreter, playing the role of the web browser hosting the
// case-study applications (Fig. 5's "browser" box).
//
// It installs `document`, element objects, 2D canvas contexts, timers and
// requestAnimationFrame, plus an addEventListener/DispatchEvent pair the
// workload drivers use to simulate user interaction. Every DOM/canvas
// operation is reported to the interpreter as a host op so JS-CERES can
// attribute it to loop nests (Table 3's "DOM access" column), and charged
// virtual time so profiles have realistic shapes.
package browser

import (
	"fmt"

	"repro/internal/browser/canvas"
	"repro/internal/browser/dom"
	"repro/internal/browser/event"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Virtual costs of host operations (nanoseconds).
const (
	costDOMOp       = 3_000 // structural DOM mutation / query
	costStyleOp     = 1_500
	costCanvasOp    = 2_000  // path/command-level canvas op
	costPerPixel    = 4      // per-pixel cost of image-data transfers
	costEventLayout = 50_000 // layout charge after a dispatched event batch
)

// Window hosts one page: interpreter + DOM + event queue + canvases.
type Window struct {
	In    *interp.Interp
	Doc   *dom.Document
	Queue *event.Queue

	Canvases []*canvas.Canvas

	nodeWrap map[*dom.Node]*value.Object
	handlers map[string][]value.Value

	// Dispatched counts callbacks run by the pump.
	Dispatched int64

	// OnTask, when set, observes event-loop task boundaries: it is called
	// with begin=true before each dispatched callback and begin=false
	// after (used by the task-graph limit study).
	OnTask func(label string, begin bool)
}

func (w *Window) taskBegin(label string) {
	if w.OnTask != nil {
		w.OnTask(label, true)
	}
}

func (w *Window) taskEnd(label string) {
	if w.OnTask != nil {
		w.OnTask(label, false)
	}
}

// NewWindow creates a window around the interpreter and installs the host
// globals.
func NewWindow(in *interp.Interp) *Window {
	w := &Window{
		In:       in,
		Doc:      dom.NewDocument(),
		Queue:    event.NewQueue(),
		nodeWrap: make(map[*dom.Node]*value.Object),
		handlers: make(map[string][]value.Value),
	}
	w.install()
	return w
}

func (w *Window) native(name string, fn value.NativeFn) value.Value {
	return value.ObjectVal(value.NewNative(name, fn))
}

// wrapNode returns the (cached) JS object for a DOM node.
func (w *Window) wrapNode(n *dom.Node) value.Value {
	if n == nil {
		return value.Null()
	}
	if o, ok := w.nodeWrap[n]; ok {
		return value.ObjectVal(o)
	}
	o := &value.Object{Class: value.ClassHost, Host: n}
	w.nodeWrap[n] = o
	o.Set("tagName", value.String(n.Tag))
	o.Set("appendChild", w.native("appendChild", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		child := w.unwrapNode(argAt(args, 0))
		w.In.EmitHostOp("dom", "appendChild", costDOMOp)
		n.AppendChild(child)
		return argAt(args, 0), nil
	}))
	o.Set("removeChild", w.native("removeChild", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		child := w.unwrapNode(argAt(args, 0))
		w.In.EmitHostOp("dom", "removeChild", costDOMOp)
		n.RemoveChild(child)
		return argAt(args, 0), nil
	}))
	o.Set("setAttribute", w.native("setAttribute", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "setAttribute", costDOMOp)
		n.SetAttribute(argAt(args, 0).ToString(), argAt(args, 1).ToString())
		return value.Undefined(), nil
	}))
	o.Set("getAttribute", w.native("getAttribute", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "getAttribute", costDOMOp)
		return value.String(n.GetAttribute(argAt(args, 0).ToString())), nil
	}))
	o.Set("setStyle", w.native("setStyle", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "setStyle", costStyleOp)
		n.SetStyle(argAt(args, 0).ToString(), argAt(args, 1).ToString())
		return value.Undefined(), nil
	}))
	o.Set("getStyle", w.native("getStyle", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "getStyle", costStyleOp)
		return value.String(n.GetStyle(argAt(args, 0).ToString())), nil
	}))
	o.Set("setText", w.native("setText", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "setText", costDOMOp)
		n.SetText(argAt(args, 0).ToString())
		return value.Undefined(), nil
	}))
	o.Set("getText", w.native("getText", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "getText", costDOMOp)
		return value.String(n.GetText()), nil
	}))
	o.Set("childCount", w.native("childCount", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "childCount", costDOMOp)
		return value.Int(n.NumChildren()), nil
	}))
	o.Set("childAt", w.native("childAt", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.In.EmitHostOp("dom", "childAt", costDOMOp)
		return w.wrapNode(n.ChildAt(int(argAt(args, 0).ToNumber()))), nil
	}))
	if n.Tag == "canvas" {
		o.Set("getContext", w.native("getContext", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			return w.contextFor(n), nil
		}))
		o.Set("setSize", w.native("setSize", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			wd, ht := int(argAt(args, 0).ToNumber()), int(argAt(args, 1).ToNumber())
			n.SetAttribute("width", value.Int(wd).ToString())
			n.SetAttribute("height", value.Int(ht).ToString())
			return value.Undefined(), nil
		}))
	}
	return value.ObjectVal(o)
}

func (w *Window) unwrapNode(v value.Value) *dom.Node {
	if !v.IsObject() {
		return nil
	}
	n, _ := v.Object().Host.(*dom.Node)
	return n
}

// contextFor lazily creates the canvas surface and its JS context object.
func (w *Window) contextFor(n *dom.Node) value.Value {
	type ctxHost struct{ cv *canvas.Canvas }
	wrap := w.nodeWrap[n]
	if ctxV, ok := wrap.GetOwn("_ctx"); ok {
		return ctxV
	}
	cw, ch := 300, 150
	if s := n.GetAttribute("width"); s != "" {
		cw = int(value.String(s).ToNumber())
	}
	if s := n.GetAttribute("height"); s != "" {
		ch = int(value.String(s).ToNumber())
	}
	cv := canvas.New(cw, ch)
	w.Canvases = append(w.Canvases, cv)

	ctx := &value.Object{Class: value.ClassHost, Host: &ctxHost{cv: cv}}
	emit := func(op string, cost int64) { w.In.EmitHostOp("canvas", op, cost) }
	ctx.Set("fillRect", w.native("fillRect", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("fillRect", costCanvasOp)
		cv.FillRect(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber(), argAt(args, 2).ToNumber(), argAt(args, 3).ToNumber())
		return value.Undefined(), nil
	}))
	ctx.Set("clearRect", w.native("clearRect", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("clearRect", costCanvasOp)
		cv.ClearRect(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber(), argAt(args, 2).ToNumber(), argAt(args, 3).ToNumber())
		return value.Undefined(), nil
	}))
	ctx.Set("setFillStyle", w.native("setFillStyle", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("fillStyle", costCanvasOp/4)
		cv.SetFillStyle(
			uint8(argAt(args, 0).ToNumber()), uint8(argAt(args, 1).ToNumber()),
			uint8(argAt(args, 2).ToNumber()), alphaOrOpaque(args))
		return value.Undefined(), nil
	}))
	ctx.Set("setStrokeStyle", w.native("setStrokeStyle", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("strokeStyle", costCanvasOp/4)
		cv.SetStrokeStyle(uint8(argAt(args, 0).ToNumber()), uint8(argAt(args, 1).ToNumber()), uint8(argAt(args, 2).ToNumber()))
		return value.Undefined(), nil
	}))
	ctx.Set("beginPath", w.native("beginPath", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("beginPath", costCanvasOp/4)
		cv.BeginPath()
		return value.Undefined(), nil
	}))
	ctx.Set("moveTo", w.native("moveTo", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("moveTo", costCanvasOp/4)
		cv.MoveTo(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber())
		return value.Undefined(), nil
	}))
	ctx.Set("lineTo", w.native("lineTo", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("lineTo", costCanvasOp/4)
		cv.LineTo(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber())
		return value.Undefined(), nil
	}))
	ctx.Set("stroke", w.native("stroke", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("stroke", costCanvasOp)
		cv.Stroke()
		return value.Undefined(), nil
	}))
	ctx.Set("arc", w.native("arc", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		emit("arc", costCanvasOp)
		cv.Arc(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber(), argAt(args, 2).ToNumber())
		return value.Undefined(), nil
	}))
	ctx.Set("getImageData", w.native("getImageData", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		x, y := int(argAt(args, 0).ToNumber()), int(argAt(args, 1).ToNumber())
		iw, ih := int(argAt(args, 2).ToNumber()), int(argAt(args, 3).ToNumber())
		emit("getImageData", costCanvasOp+int64(iw*ih)*costPerPixel)
		pix := cv.GetImageData(x, y, iw, ih)
		data := make([]value.Value, len(pix))
		for i, b := range pix {
			data[i] = value.Int(int(b))
		}
		img := &value.Object{Class: value.ClassObject}
		img.Set("width", value.Int(iw))
		img.Set("height", value.Int(ih))
		img.Set("data", value.ObjectVal(value.NewArray(data...)))
		return value.ObjectVal(img), nil
	}))
	ctx.Set("putImageData", w.native("putImageData", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		img := argAt(args, 0)
		if !img.IsObject() {
			return value.Undefined(), value.ThrowTypeError("putImageData: not an ImageData")
		}
		wV, _ := img.Object().Get("width")
		hV, _ := img.Object().Get("height")
		dV, _ := img.Object().Get("data")
		iw, ih := int(wV.ToNumber()), int(hV.ToNumber())
		emit("putImageData", costCanvasOp+int64(iw*ih)*costPerPixel)
		if !dV.IsObject() || !dV.Object().IsArray() {
			return value.Undefined(), value.ThrowTypeError("putImageData: data is not an array")
		}
		elems := dV.Object().Elems
		pix := make([]uint8, len(elems))
		for i, e := range elems {
			pix[i] = uint8(int64(e.ToNumber()) & 0xFF)
		}
		x, y := int(argAt(args, 1).ToNumber()), int(argAt(args, 2).ToNumber())
		if err := cv.PutImageData(pix, x, y, iw, ih); err != nil {
			return value.Undefined(), value.ThrowTypeError(err.Error())
		}
		return value.Undefined(), nil
	}))
	wrap.Set("_ctx", value.ObjectVal(ctx))
	return value.ObjectVal(ctx)
}

func alphaOrOpaque(args []value.Value) uint8 {
	if len(args) > 3 && !args[3].IsUndefined() {
		return uint8(args[3].ToNumber())
	}
	return 255
}

func argAt(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Undefined()
}

// install registers document, timers and event listener APIs as globals.
func (w *Window) install() {
	in := w.In

	doc := &value.Object{Class: value.ClassHost, Host: w.Doc}
	doc.Set("createElement", w.native("createElement", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		in.EmitHostOp("dom", "createElement", costDOMOp)
		return w.wrapNode(w.Doc.CreateElement(argAt(args, 0).ToString())), nil
	}))
	doc.Set("getElementById", w.native("getElementById", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		in.EmitHostOp("dom", "getElementById", costDOMOp)
		return w.wrapNode(w.Doc.GetElementByID(argAt(args, 0).ToString())), nil
	}))
	doc.Set("body", w.wrapNode(w.Doc.Body()))
	in.SetGlobal("document", value.ObjectVal(doc))

	in.SetGlobal("setTimeout", w.native("setTimeout", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		fn := argAt(args, 0)
		ms := argAt(args, 1).ToNumber()
		t := w.Queue.ScheduleTimeout(in.Now(), int64(ms*1e6), fn)
		return value.Int(int(t.ID)), nil
	}))
	in.SetGlobal("setInterval", w.native("setInterval", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		fn := argAt(args, 0)
		ms := argAt(args, 1).ToNumber()
		t := w.Queue.ScheduleInterval(in.Now(), int64(ms*1e6), fn)
		return value.Int(int(t.ID)), nil
	}))
	clear := w.native("clearTimeout", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		w.Queue.Cancel(int64(argAt(args, 0).ToNumber()))
		return value.Undefined(), nil
	})
	in.SetGlobal("clearTimeout", clear)
	in.SetGlobal("clearInterval", clear)
	in.SetGlobal("requestAnimationFrame", w.native("requestAnimationFrame", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		fn := argAt(args, 0)
		t := w.Queue.ScheduleFrame(in.Now(), fn)
		return value.Int(int(t.ID)), nil
	}))
	in.SetGlobal("addEventListener", w.native("addEventListener", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		name := argAt(args, 0).ToString()
		w.handlers[name] = append(w.handlers[name], argAt(args, 1))
		return value.Undefined(), nil
	}))
}

// DispatchEvent invokes every listener registered for name with the given
// payload (used by workload drivers to simulate user input).
func (w *Window) DispatchEvent(name string, payload value.Value) error {
	w.In.EmitHostOp("event", name, costEventLayout)
	for _, fn := range w.handlers[name] {
		w.Dispatched++
		w.taskBegin(name)
		_, err := w.In.SafeCall(fn, value.Undefined(), []value.Value{payload})
		w.taskEnd(name)
		if err != nil {
			return fmt.Errorf("browser: %s handler: %w", name, err)
		}
	}
	return nil
}

// HasListeners reports whether any handler is registered for name.
func (w *Window) HasListeners(name string) bool { return len(w.handlers[name]) > 0 }

// IdleFor advances the virtual clock without running script — user
// think-time between interactions.
func (w *Window) IdleFor(ns int64) { w.In.AdvanceTime(ns) }

// PumpFor dispatches queued tasks until the virtual clock passes deadline
// or the queue drains. It returns the number of callbacks run.
func (w *Window) PumpFor(deadlineNS int64) (int, error) {
	n := 0
	for {
		now := w.In.Now()
		if now >= deadlineNS || w.Queue.Len() == 0 {
			return n, nil
		}
		task, fire, err := w.Queue.Next(now)
		if err != nil {
			return n, nil
		}
		if fire > deadlineNS {
			// put the wait back as idle time and stop at the deadline
			w.In.AdvanceTime(deadlineNS - now)
			return n, nil
		}
		if fire > now {
			w.In.AdvanceTime(fire - now)
		}
		fn, _ := task.Data.(value.Value)
		if fn.IsCallable() {
			w.Dispatched++
			n++
			w.taskBegin(taskLabel(task))
			_, err := w.In.SafeCall(fn, value.Undefined(), nil)
			w.taskEnd(taskLabel(task))
			if err != nil {
				return n, err
			}
		}
	}
}

func taskLabel(t *event.Task) string {
	if t.Frame {
		return "frame"
	}
	if t.Interval > 0 {
		return "interval"
	}
	return "timeout"
}

// PumpN dispatches up to n queued tasks (regardless of virtual deadline).
func (w *Window) PumpN(n int) (int, error) {
	done := 0
	for done < n && w.Queue.Len() > 0 {
		now := w.In.Now()
		task, fire, err := w.Queue.Next(now)
		if err != nil {
			break
		}
		if fire > now {
			w.In.AdvanceTime(fire - now)
		}
		fn, _ := task.Data.(value.Value)
		if fn.IsCallable() {
			w.Dispatched++
			done++
			w.taskBegin(taskLabel(task))
			_, err := w.In.SafeCall(fn, value.Undefined(), nil)
			w.taskEnd(taskLabel(task))
			if err != nil {
				return done, err
			}
		}
	}
	return done, nil
}
