// Package event implements the browser's timer/animation-frame queue over
// virtual time. It is a pure scheduling model; the browser wiring layer
// connects it to JavaScript callbacks.
//
// JavaScript's execution model is event-driven (§1.1): applications like
// the paper's Harmony or Ace spend most wall-clock time idle between
// events, which is why their Table 2 "Active" time is a tiny fraction of
// "Total". Advancing the virtual clock to each deadline reproduces that
// shape deterministically.
package event

import (
	"container/heap"
	"errors"
)

// Task is a scheduled callback reference (opaque to this package).
type Task struct {
	ID       int64
	Deadline int64 // virtual ns
	Interval int64 // >0 for repeating timers
	Frame    bool  // animation-frame task (scheduled on the frame cadence)
	Data     any   // callback payload for the wiring layer
	seq      int64
	canceled bool
}

// Queue is a virtual-time task queue.
type Queue struct {
	h      taskHeap
	nextID int64
	seq    int64
	byID   map[int64]*Task

	// FrameInterval is the animation-frame cadence (default 16ms).
	FrameInterval int64
	// lastFrame is the virtual time of the last dispatched frame boundary.
	lastFrame int64
}

// NewQueue returns an empty queue with a 16ms frame cadence.
func NewQueue() *Queue {
	return &Queue{
		FrameInterval: 16_000_000,
		byID:          make(map[int64]*Task),
	}
}

// ErrEmpty is returned by Next on an empty queue.
var ErrEmpty = errors.New("event: queue empty")

// ScheduleTimeout enqueues a one-shot timer.
func (q *Queue) ScheduleTimeout(now, delayNS int64, data any) *Task {
	return q.schedule(now+maxI64(0, delayNS), 0, false, data)
}

// ScheduleInterval enqueues a repeating timer.
func (q *Queue) ScheduleInterval(now, intervalNS int64, data any) *Task {
	if intervalNS < 1_000_000 {
		intervalNS = 1_000_000 // browsers clamp tiny intervals
	}
	return q.schedule(now+intervalNS, intervalNS, false, data)
}

// ScheduleFrame enqueues an animation-frame callback at the next frame
// boundary after now.
func (q *Queue) ScheduleFrame(now int64, data any) *Task {
	next := q.lastFrame + q.FrameInterval
	if next <= now {
		next = now + q.FrameInterval - (now-q.lastFrame)%q.FrameInterval
	}
	return q.schedule(next, 0, true, data)
}

func (q *Queue) schedule(deadline, interval int64, frame bool, data any) *Task {
	q.nextID++
	q.seq++
	t := &Task{
		ID:       q.nextID,
		Deadline: deadline,
		Interval: interval,
		Frame:    frame,
		Data:     data,
		seq:      q.seq,
	}
	heap.Push(&q.h, t)
	q.byID[t.ID] = t
	return t
}

// Cancel marks a task canceled; it reports whether the id was live.
func (q *Queue) Cancel(id int64) bool {
	t, ok := q.byID[id]
	if !ok || t.canceled {
		return false
	}
	t.canceled = true
	delete(q.byID, id)
	return true
}

// Len returns the number of live tasks.
func (q *Queue) Len() int { return len(q.byID) }

// Next pops the earliest task at or after `now`, returning the task and
// the virtual time at which it fires (>= now; the caller advances its
// clock to that time). Repeating timers are re-armed automatically.
func (q *Queue) Next(now int64) (*Task, int64, error) {
	for q.h.Len() > 0 {
		t := heap.Pop(&q.h).(*Task)
		if t.canceled {
			continue
		}
		fire := t.Deadline
		if fire < now {
			fire = now
		}
		if t.Interval > 0 {
			// re-arm
			q.seq++
			clone := *t
			clone.Deadline = fire + t.Interval
			clone.seq = q.seq
			heap.Push(&q.h, &clone)
			q.byID[t.ID] = &clone
		} else {
			delete(q.byID, t.ID)
		}
		if t.Frame && fire > q.lastFrame {
			q.lastFrame = fire
		}
		return t, fire, nil
	}
	return nil, now, ErrEmpty
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// taskHeap orders by (deadline, seq).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return out
}
