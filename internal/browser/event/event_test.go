package event

import "testing"

func TestTimeoutOrdering(t *testing.T) {
	q := NewQueue()
	a := q.ScheduleTimeout(0, 5_000_000, "a")
	b := q.ScheduleTimeout(0, 2_000_000, "b")
	c := q.ScheduleTimeout(0, 2_000_000, "c") // same deadline: FIFO by seq
	_ = a
	_ = b
	_ = c
	t1, fire1, err := q.Next(0)
	if err != nil || t1.Data != "b" || fire1 != 2_000_000 {
		t.Fatalf("first = %v at %d (%v)", t1.Data, fire1, err)
	}
	t2, _, _ := q.Next(fire1)
	if t2.Data != "c" {
		t.Fatalf("second = %v, want c (FIFO tie-break)", t2.Data)
	}
	t3, fire3, _ := q.Next(fire1)
	if t3.Data != "a" || fire3 != 5_000_000 {
		t.Fatalf("third = %v at %d", t3.Data, fire3)
	}
	if _, _, err := q.Next(fire3); err != ErrEmpty {
		t.Fatalf("empty queue err = %v", err)
	}
}

func TestIntervalRearms(t *testing.T) {
	q := NewQueue()
	iv := q.ScheduleInterval(0, 10_000_000, "tick")
	now := int64(0)
	for i := 0; i < 3; i++ {
		task, fire, err := q.Next(now)
		if err != nil || task.Data != "tick" {
			t.Fatalf("tick %d: %v %v", i, task, err)
		}
		wantFire := int64(10_000_000 * (i + 1))
		if fire != wantFire {
			t.Fatalf("tick %d at %d, want %d", i, fire, wantFire)
		}
		now = fire
	}
	if !q.Cancel(iv.ID) {
		t.Fatal("cancel failed")
	}
	if _, _, err := q.Next(now); err != ErrEmpty {
		t.Fatal("interval still firing after cancel")
	}
}

func TestIntervalClamping(t *testing.T) {
	q := NewQueue()
	q.ScheduleInterval(0, 1, "fast") // clamps to 1ms like browsers
	_, fire, _ := q.Next(0)
	if fire < 1_000_000 {
		t.Errorf("interval fired at %d, want >= 1ms", fire)
	}
}

func TestCancelSemantics(t *testing.T) {
	q := NewQueue()
	a := q.ScheduleTimeout(0, 1000, "a")
	if !q.Cancel(a.ID) {
		t.Error("first cancel")
	}
	if q.Cancel(a.ID) {
		t.Error("double cancel reported true")
	}
	if q.Cancel(999) {
		t.Error("unknown id canceled")
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
	if _, _, err := q.Next(0); err != ErrEmpty {
		t.Error("canceled task fired")
	}
}

func TestFrameCadence(t *testing.T) {
	q := NewQueue()
	q.ScheduleFrame(0, "f1")
	task, fire, err := q.Next(0)
	if err != nil || task.Data != "f1" {
		t.Fatal(err)
	}
	if fire != q.FrameInterval {
		t.Fatalf("first frame at %d, want %d", fire, q.FrameInterval)
	}
	// scheduling from within a frame targets the NEXT boundary
	q.ScheduleFrame(fire, "f2")
	_, fire2, _ := q.Next(fire)
	if fire2 != 2*q.FrameInterval {
		t.Fatalf("second frame at %d, want %d", fire2, 2*q.FrameInterval)
	}
}

func TestLateTimerFiresAtNow(t *testing.T) {
	q := NewQueue()
	q.ScheduleTimeout(0, 1_000_000, "late")
	_, fire, _ := q.Next(50_000_000) // far past the deadline
	if fire != 50_000_000 {
		t.Errorf("fired at %d, want now", fire)
	}
}

func TestZeroDelay(t *testing.T) {
	q := NewQueue()
	q.ScheduleTimeout(100, -50, "neg") // negative delay clamps to 0
	_, fire, _ := q.Next(100)
	if fire != 100 {
		t.Errorf("fired at %d, want 100", fire)
	}
}
