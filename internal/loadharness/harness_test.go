package loadharness

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/instrument"
)

// checkGoroutineLeak fails the test if it ends with more goroutines
// than it started with (after a settle window for conn teardown). The
// harness starts real HTTP servers and client pools per round; a
// forgotten listener or unjoined Serve goroutine shows up here — this
// is the regression net for the origin-listener leak, where an early
// round error left the origin's Serve goroutine running for the life
// of the process.
func checkGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // the real failure is more interesting than fallout
		}
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		// A small slack absorbs runtime helpers (GC workers, netpoll)
		// that come and go; a leaked server is persistent and larger.
		if now > before+3 {
			t.Errorf("goroutine leak: %d before round, %d after settle", before, now)
		}
	})
}

func baseConfig() Config {
	return Config{
		Mode:        instrument.ModeLight,
		CacheBytes:  1 << 24,
		Shards:      4,
		Workers:     2,
		QueueDepth:  8,
		Clients:     2,
		Requests:    30,
		Hot:         4,
		UniqueFrac:  0.25,
		ScriptLoops: 4,
		Seed:        7,
	}
}

// TestRunRoundMix: the extracted harness still drives a full round end
// to end — served responses, sane percentiles, no failures.
func TestRunRoundMix(t *testing.T) {
	checkGoroutineLeak(t)
	origin, stop, err := StartOrigin(4)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cfg := baseConfig()
	cfg.Scenario = "mix"
	row, err := RunRound(origin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.ReqPerSec <= 0 || row.P50 <= 0 || row.P99 < row.P50 {
		t.Errorf("implausible round: %+v", *row)
	}
	if row.Failures != 0 {
		t.Errorf("round reported %d rewrite failures", row.Failures)
	}
	if row.Hits+row.Misses == 0 {
		t.Error("round saw no cache traffic at all")
	}
}

// TestRunPriorityRound: the mixed-class round produces a per-class row
// with background throughput, and batch pressure never surfaces as
// interactive 429s without batch shedding first.
func TestRunPriorityRound(t *testing.T) {
	checkGoroutineLeak(t)
	origin, stop, err := StartOrigin(4)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cfg := baseConfig()
	cfg.BatchClients = 1
	cfg.BatchSize = 4
	cfg.BatchMaxWait = 500 * time.Millisecond
	row, err := RunPriorityRound(origin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !row.PerClass || row.BatchClients != 1 {
		t.Fatalf("row not per-class: %+v", *row)
	}
	if row.ReqPerSec <= 0 {
		t.Errorf("no interactive throughput: %+v", *row)
	}
	if row.BatchPerSec <= 0 {
		t.Errorf("batch generators produced nothing: %+v", *row)
	}
	if row.Rejected > 0 && row.BatchShed == 0 {
		t.Errorf("interactive 429s with zero batch shed: %+v", *row)
	}
	if row.Failures != 0 {
		t.Errorf("round reported %d rewrite failures", row.Failures)
	}
}

// TestGenerateScriptDeterministic: same id, same bytes — the origin
// and the spammers' inline lookahead sources must agree exactly, or
// the priority scenario's coalescing overlap silently disappears.
func TestGenerateScriptDeterministic(t *testing.T) {
	a := GenerateScript("/shared/42.js", 12)
	b := GenerateScript("/shared/42.js", 12)
	if a != b {
		t.Fatal("GenerateScript is not deterministic")
	}
	if c := GenerateScript("/shared/43.js", 12); c == a {
		t.Fatal("distinct ids produced identical scripts")
	}
}
