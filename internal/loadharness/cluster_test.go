package loadharness

import (
	"testing"
)

func baseClusterConfig() ClusterConfig {
	cfg := baseConfig()
	cfg.Scenario = "cluster"
	cfg.Clients = 4
	cfg.Requests = 200
	return ClusterConfig{Config: cfg, Nodes: 3}
}

// TestRunClusterRoundSteady: a 3-node fleet with no chaos serves the
// whole round — no failures, no interactive 429s (there is no batch
// load to shed, so any rejection is a routing bug), and the per-node
// rows account for both local ownership and forwarding.
func TestRunClusterRoundSteady(t *testing.T) {
	checkGoroutineLeak(t)
	origin, stop, err := StartOrigin(4)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	res, err := RunClusterRound(origin, baseClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.Failures != 0 || res.Row.Rejected != 0 {
		t.Errorf("steady round: failures=%d rejected=%d, want 0/0", res.Row.Failures, res.Row.Rejected)
	}
	if len(res.NodeRows) != 3 {
		t.Fatalf("%d node rows, want 3", len(res.NodeRows))
	}
	var owned, forwarded, received int64
	for _, r := range res.NodeRows {
		if !r.Live || r.Killed {
			t.Errorf("node %s reported dead in a chaos-free round: %+v", r.Node, r)
		}
		owned += r.OwnedServed
		forwarded += r.ForwardedOut
		received += r.PeerReceived
	}
	if owned == 0 || forwarded == 0 || received == 0 {
		t.Errorf("fleet counters owned=%d forwarded=%d received=%d — routing never exercised", owned, forwarded, received)
	}
	if res.Disrupted != 0 {
		t.Errorf("disrupted=%d in a round with no kill", res.Disrupted)
	}
}

// TestRunClusterRoundKillRevive is the full-stack chaos acceptance:
// one node dies abruptly mid-round and comes back, and the round still
// completes every request (the drive loop fails the round on any hung
// or errored request; the watchdog bounds the whole thing) with zero
// interactive 429s and an observed ring rebalance.
func TestRunClusterRoundKillRevive(t *testing.T) {
	checkGoroutineLeak(t)
	origin, stop, err := StartOrigin(4)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	ccfg := baseClusterConfig()
	ccfg.Requests = 400
	ccfg.Kill = true
	ccfg.Revive = true
	res, err := RunClusterRound(origin, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.Failures != 0 || res.Row.Rejected != 0 {
		t.Errorf("chaos round: failures=%d rejected=%d, want 0/0", res.Row.Failures, res.Row.Rejected)
	}
	if res.KilledNode == "" {
		t.Fatal("kill requested but no node reported killed")
	}
	if res.Rebalances == 0 {
		t.Error("node killed mid-round but no survivor rebalanced its ring")
	}
	killedSeen := false
	for _, r := range res.NodeRows {
		if r.Node == res.KilledNode || r.Killed {
			killedSeen = true
		}
	}
	if !killedSeen {
		t.Errorf("killed node %s missing from node rows %+v", res.KilledNode, res.NodeRows)
	}
}
