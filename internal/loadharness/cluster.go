// The cluster scenario: N in-process fleet nodes — each a full serving
// proxy (sharded cache, staged pipeline) plus a cluster.Node routing
// layer — over loopback TCP, driven by interactive clients that spread
// requests across every live node, with one node killed abruptly
// mid-run (and optionally revived) to measure the disruption: forwards
// to the dead owner fail over to local rewrites, the survivors eject
// it and rebalance the ring, and the row reports whether interactive
// latency stayed flat and nothing hung through it all.
package loadharness

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/proxy"
	"repro/internal/report"
)

// ClusterConfig sizes one cluster round.
type ClusterConfig struct {
	Config
	// Nodes is the fleet size (<= 0 → 3).
	Nodes int
	// ReplicateQPS is the hot-key replication threshold handed to every
	// node (0 disables replication).
	ReplicateQPS float64
	// Kill abruptly closes one node (the last) partway through the
	// round; Revive restarts it on the same address later in the round
	// (the "add a node mid-run" half of the chaos story).
	Kill   bool
	Revive bool
	// Watchdog bounds the whole round; a round that exceeds it returns
	// an error instead of hanging (0 → 120s).
	Watchdog time.Duration
}

// ClusterResult is one cluster round's outcome.
type ClusterResult struct {
	// Row is the interactive summary (client-side latencies, queue
	// waits from response headers — forwarded requests report the
	// owner's wait).
	Row report.ServingRow
	// NodeRows is the per-node ownership/forwarding breakdown; the
	// killed node's row merges its pre-kill and post-revive counters.
	NodeRows []report.ClusterNodeRow
	// KilledNode names the killed member ("" when Kill is off).
	KilledNode string
	// Disrupted counts requests that hit a dying connection and were
	// retried on another node — each one a request the chaos touched
	// but did not lose.
	Disrupted int64
	// Rebalances sums ring rebuilds observed across the fleet.
	Rebalances int64
}

// fleetNode is one member's server-side state.
type fleetNode struct {
	addr string // fixed host:port, reused on revive
	url  string

	mu      sync.Mutex
	p       *proxy.Proxy
	cn      *cluster.Node
	stopSrv func()
	srv     *http.Server
	// killedStats snapshots the proxy and cluster counters at kill
	// time, so the round's report keeps the pre-kill history.
	killedStats *proxy.Stats
}

// start builds and serves a fresh proxy+cluster pair on n.addr.
func (n *fleetNode) start(origin string, urls []string, self string, cfg ClusterConfig, ln net.Listener) error {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", n.addr)
		if err != nil {
			return err
		}
	}
	p, err := proxy.NewServing(origin, cfg.Mode, "", proxy.ServeConfig{
		CacheBytes:   cfg.CacheBytes,
		DisableCache: cfg.CacheBytes == 0,
		Shards:       cfg.Shards,
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		BatchMaxWait: cfg.BatchMaxWait,
	})
	if err != nil {
		ln.Close()
		return err
	}
	cn, err := cluster.New(cluster.Config{
		Self:         self,
		Peers:        urls,
		ReplicateQPS: cfg.ReplicateQPS,
		// Fast membership for a short round: a dead peer is ejected
		// after ~2 probe ticks, so rebalancing lands inside the run.
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		FailThreshold:  2,
		ForwardTimeout: 2 * time.Second,
		ForwardRetries: 2,
	})
	if err != nil {
		p.Close()
		ln.Close()
		return err
	}
	p.Cluster = cn
	cn.Start()
	srv := &http.Server{Handler: p}
	stopSrv := serveAndTrack(srv, ln)
	n.mu.Lock()
	n.p, n.cn, n.srv, n.stopSrv = p, cn, srv, stopSrv
	n.mu.Unlock()
	return nil
}

// kill snapshots the node's counters, then tears it down abruptly:
// listener and live connections closed (in-flight requests see a
// reset, exactly like a crashed process), prober stopped, pipeline
// drained.
func (n *fleetNode) kill() {
	n.mu.Lock()
	p, cn, srv := n.p, n.cn, n.srv
	stopSrv := n.stopSrv
	n.p, n.cn, n.srv, n.stopSrv = nil, nil, nil, nil
	n.mu.Unlock()
	if p == nil {
		return
	}
	st := p.Stats()
	n.mu.Lock()
	n.killedStats = &st
	n.mu.Unlock()
	srv.Close() // abrupt: closes listener and every live connection
	stopSrv()   // joins the accept goroutine (Serve already returned)
	cn.Close()
	p.Close()
}

// stop is the graceful end-of-round teardown.
func (n *fleetNode) stop() {
	n.mu.Lock()
	p, cn, stopSrv := n.p, n.cn, n.stopSrv
	n.p, n.cn, n.srv, n.stopSrv = nil, nil, nil, nil
	n.mu.Unlock()
	if p == nil {
		return
	}
	stopSrv()
	cn.Close()
	p.Close()
}

// statsRow folds the node's counters (merging a killed node's pre-kill
// snapshot with its revived successor's) into a report row.
func (n *fleetNode) statsRow(name string, killed bool) report.ClusterNodeRow {
	row := report.ClusterNodeRow{Node: name, Killed: killed}
	n.mu.Lock()
	defer n.mu.Unlock()
	add := func(st proxy.Stats) {
		row.Hits += st.CacheHits
		row.Misses += st.CacheMisses
		row.Rejected += st.Rejected
		if st.Cluster == nil {
			return
		}
		row.OwnedServed += st.Cluster.OwnedServed
		row.ForwardedOut += st.Cluster.ForwardedOut
		row.PeerReceived += st.Cluster.PeerReceived
		row.ReplicaServed += st.Cluster.ReplicaServed
		row.ForwardFallbacks += st.Cluster.ForwardFallbacks
		row.Rebalances += st.Cluster.Rebalances
	}
	if n.killedStats != nil {
		add(*n.killedStats)
	}
	if n.p != nil {
		row.Live = true
		add(n.p.Stats())
	}
	return row
}

// RunClusterRound drives one cluster scenario round.
func RunClusterRound(origin string, cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = 120 * time.Second
	}

	// Listeners first: every node needs the full URL list at build
	// time (the ring is a pure function of it).
	lns := make([]net.Listener, cfg.Nodes)
	nodes := make([]*fleetNode, cfg.Nodes)
	urls := make([]string, cfg.Nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
		addr := ln.Addr().String()
		nodes[i] = &fleetNode{addr: addr, url: "http://" + addr}
		urls[i] = nodes[i].url
	}
	for i, n := range nodes {
		if err := n.start(origin, urls, urls[i], cfg, lns[i]); err != nil {
			for _, m := range nodes {
				m.stop()
			}
			return nil, err
		}
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()

	client := newClient(cfg.Clients * 2)
	defer client.CloseIdleConnections()

	killIdx := cfg.Nodes - 1
	var killedFlag atomic.Bool
	var progress atomic.Int64

	// The chaos controller: kill at ~40% of the request budget,
	// revive at ~75% — both well inside the run so the disruption and
	// the recovery are measured, not straddled.
	ctrlDone := make(chan error, 1)
	ctrlStop := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		if !cfg.Kill {
			return
		}
		waitFor := func(frac float64) bool {
			target := int64(float64(cfg.Requests) * frac)
			for progress.Load() < target {
				select {
				case <-ctrlStop:
					return false
				case <-time.After(2 * time.Millisecond):
				}
			}
			return true
		}
		if !waitFor(0.4) {
			return
		}
		killedFlag.Store(true)
		nodes[killIdx].kill()
		if !cfg.Revive || !waitFor(0.75) {
			return
		}
		if err := nodes[killIdx].start(origin, urls, urls[killIdx], cfg, nil); err != nil {
			ctrlDone <- fmt.Errorf("revive %s: %w", urls[killIdx], err)
			return
		}
		killedFlag.Store(false)
	}()

	res, err := driveClusterClients(client, cfg, urls, killIdx, &killedFlag, &progress)
	close(ctrlStop)
	if cerr := <-ctrlDone; cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}

	out := &ClusterResult{Disrupted: res.disrupted}
	if cfg.Kill {
		out.KilledNode = urls[killIdx]
	}
	out.Row = report.ServingRow{
		Clients:   cfg.Clients,
		ReqPerSec: float64(len(res.latencies)) / res.wall.Seconds(),
		P50:       percentile(res.latencies, 50),
		P99:       percentile(res.latencies, 99),
		QWaitP50:  percentile(res.qwaits, 50),
		QWaitP99:  percentile(res.qwaits, 99),
		Rejected:  res.rejected,
	}
	for i, n := range nodes {
		row := n.statsRow(fmt.Sprintf("n%d", i), cfg.Kill && i == killIdx)
		out.NodeRows = append(out.NodeRows, row)
		out.Rebalances += row.Rebalances
		out.Row.Hits += row.Hits
		out.Row.Misses += row.Misses
	}
	return out, nil
}

// driveClusterClients spreads cfg.Requests interactive requests over
// cfg.Clients goroutines, each request aimed at a random live node.
// Connection errors are tolerated only while the round has a kill in
// play: the request is retried on another node and counted as
// disrupted — a request the chaos touched but did not lose. Everything
// else (non-200, uninstrumented body) fails the round. The whole drive
// sits under the round watchdog: a hung request fails the round
// instead of hanging the harness.
func driveClusterClients(client *http.Client, cfg ClusterConfig, urls []string, killIdx int, killed *atomic.Bool, progress *atomic.Int64) (*driveResult, error) {
	type outcome struct {
		res *driveResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		var next, rejected, disrupted atomic.Int64
		latencies := make([][]time.Duration, cfg.Clients)
		qwaits := make([][]time.Duration, cfg.Clients)
		errs := make([]error, cfg.Clients)
		var wg sync.WaitGroup
		start := time.Now()
		var uniqueID atomic.Int64
		for w := 0; w < cfg.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
				for int(next.Add(1)) <= cfg.Requests {
					var path string
					if rng.Float64() < cfg.UniqueFrac {
						path = fmt.Sprintf("/unique/%d.js", uniqueID.Add(1))
					} else {
						path = fmt.Sprintf("/hot/%d.js", rng.Intn(cfg.Hot))
					}
					served := false
					var lastErr error
					for try := 0; try < len(urls)+2 && !served; try++ {
						i := rng.Intn(len(urls))
						if killed.Load() && i == killIdx {
							// The harness knows the node is down; a real
							// client would learn it from the error. Step
							// to the next node instead of burning a try.
							i = (i + 1) % len(urls)
						}
						t0 := time.Now()
						res, err := get(client, urls[i]+path)
						if err != nil {
							if !cfg.Kill {
								errs[w] = err
								return
							}
							// A dying connection (the kill, or a request
							// already in flight on the killed node's
							// sockets): retry elsewhere.
							disrupted.Add(1)
							lastErr = err
							continue
						}
						if res.status == http.StatusTooManyRequests {
							rejected.Add(1)
							served = true
							break
						}
						if res.status != http.StatusOK {
							errs[w] = fmt.Errorf("GET %s%s: status %d", urls[i], path, res.status)
							return
						}
						if !strings.Contains(res.body, "__ceres") {
							errs[w] = fmt.Errorf("response for %s not instrumented", path)
							return
						}
						latencies[w] = append(latencies[w], time.Since(t0))
						qwaits[w] = append(qwaits[w], res.queueWait)
						served = true
					}
					if !served {
						errs[w] = fmt.Errorf("request %s exhausted node retries: %v", path, lastErr)
						return
					}
					progress.Add(1)
				}
			}(w)
		}
		wg.Wait()
		out := &driveResult{
			wall:      time.Since(start),
			rejected:  rejected.Load(),
			disrupted: disrupted.Load(),
		}
		for _, err := range errs {
			if err != nil {
				done <- outcome{nil, err}
				return
			}
		}
		for i := range latencies {
			out.latencies = append(out.latencies, latencies[i]...)
			out.qwaits = append(out.qwaits, qwaits[i]...)
		}
		sort.Slice(out.latencies, func(i, j int) bool { return out.latencies[i] < out.latencies[j] })
		sort.Slice(out.qwaits, func(i, j int) bool { return out.qwaits[i] < out.qwaits[j] })
		done <- outcome{out, nil}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(cfg.Watchdog):
		return nil, fmt.Errorf("cluster round exceeded %s watchdog — a request hung", cfg.Watchdog)
	}
}
