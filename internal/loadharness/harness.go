// Package loadharness is the self-contained proxy load harness shared
// by cmd/loadgen (interactive ladder reports) and cmd/benchproxy (the
// persisted BENCH_proxy.json trajectory). It starts a synthetic origin
// that generates deterministic JavaScript on demand, puts the real
// serving proxy (internal/proxy over HTTP: sharded cache + staged
// pipeline with bounded admission) in front of it, and drives both
// through the loopback TCP stack, so numbers include real serialization
// cost.
//
// Scenarios:
//
//   - mix: the hot/unique request blend — the steady-state cache story.
//   - saturation: every request is a distinct script (callers set
//     UniqueFrac = 1), so every request pays a full rewrite; with a
//     small QueueDepth the pipeline saturates and rejected shows
//     backpressure engaging while q-wait p99 stays bounded.
//   - prewarm: POSTs the hot set to /__ceres/prewarm first, then runs
//     the mix — the hot pool is served from cache from request one.
//   - priority (RunPriorityRound): BatchClients background generators
//     spam /__ceres/prewarm with fresh sources — batch-class work —
//     while Clients interactive clients walk a shared script sequence
//     the spammers prewarm slightly ahead of. The row splits queue
//     waits per class: the claim to check is interactive q-wait p99
//     flat against the unloaded baseline while batch/s fills residual
//     capacity and batch, never interactive, sheds at saturation.
package loadharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/proxy"
	"repro/internal/report"
)

// Config sizes one harness round. A fresh proxy (fresh cache and
// pipeline) is built per round so rounds are comparable.
type Config struct {
	// Mode selects the instrumentation stage injected by the proxy.
	Mode instrument.Mode
	// CacheBytes is the rewrite-cache budget (0 disables caching).
	CacheBytes int64
	// Shards, Workers, QueueDepth size the serving layer
	// (proxy.ServeConfig semantics).
	Shards     int
	Workers    int
	QueueDepth int
	// Scenario is mix, saturation or prewarm (RunRound); RunPriorityRound
	// ignores it.
	Scenario string
	// Clients and Requests drive the interactive side: Requests total
	// spread over Clients goroutines.
	Clients  int
	Requests int
	// Hot and UniqueFrac shape the mix: 1-UniqueFrac of requests hit
	// one of Hot repeated scripts.
	Hot        int
	UniqueFrac float64
	// ScriptLoops is the loop count per generated script (rewrite cost
	// knob). Must match the origin the round runs against.
	ScriptLoops int
	// Seed makes the request mix deterministic.
	Seed int64
	// BatchClients/BatchSize drive the priority scenario's background
	// load: BatchClients goroutines each POSTing prewarm batches of
	// BatchSize fresh sources back to back (BatchSize <= 0 → 8).
	BatchClients int
	BatchSize    int
	// BatchMaxWait is the queue-wait deadline for batch admissions
	// (proxy.ServeConfig.BatchMaxWait).
	BatchMaxWait time.Duration
}

// StartOrigin serves deterministic generated JavaScript: any path
// yields a distinct-but-reproducible script whose content is derived
// from the path, so hot pools repeat byte-identically and unique paths
// never collide. The returned stop function shuts the server down and
// waits for its accept goroutine to exit — a round that errors early
// must not leave listener goroutines behind (the leak the round
// smokes' goroutine check guards).
func StartOrigin(loops int) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, GenerateScript(r.URL.Path, loops))
	})}
	return "http://" + ln.Addr().String(), serveAndTrack(srv, ln), nil
}

// serveAndTrack runs srv on ln and returns a stop function that shuts
// the server down gracefully (falling back to a hard close after a
// short grace period) and then joins the accept goroutine, so callers
// hold a real "no goroutines left" guarantee, not just a closed
// listener.
func serveAndTrack(srv *http.Server, ln net.Listener) func() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		<-done
	}
}

// GenerateScript emits a parseable loop-heavy script seeded by id, so
// rewrite cost is uniform across scripts while content (and therefore
// cache key) differs per id.
func GenerateScript(id string, loops int) string {
	h := fnv.New64a()
	io.WriteString(h, id)
	seed := h.Sum64() % 1000003
	var sb strings.Builder
	fmt.Fprintf(&sb, "var seed = %d;\nvar acc = 0;\n", seed)
	for i := 0; i < loops; i++ {
		fmt.Fprintf(&sb, "for (var i%d = 0; i%d < %d; i%d++) { acc += (i%d * seed) %% %d; }\n",
			i, i, 40+i, i, i, 7+i)
	}
	return sb.String()
}

// startProxy builds the round's serving proxy over loopback TCP.
func startProxy(origin string, cfg Config) (*proxy.Proxy, string, func(), error) {
	p, err := proxy.NewServing(origin, cfg.Mode, "", proxy.ServeConfig{
		CacheBytes:   cfg.CacheBytes,
		DisableCache: cfg.CacheBytes == 0,
		Shards:       cfg.Shards,
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		BatchMaxWait: cfg.BatchMaxWait,
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		p.Close()
		return nil, "", nil, err
	}
	srv := &http.Server{Handler: p}
	stopSrv := serveAndTrack(srv, ln)
	stop := func() {
		stopSrv()
		p.Close()
	}
	return p, "http://" + ln.Addr().String(), stop, nil
}

func newClient(clients int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
}

// RunRound drives one mix/saturation/prewarm round and reports it as a
// ServingRow. 429s count as rejected — not errors, and not samples:
// req/s and the latency percentiles describe served (200) responses
// only, so shedding shows up in the rejected column instead of
// flattering the tail.
func RunRound(origin string, cfg Config) (*report.ServingRow, error) {
	p, base, stop, err := startProxy(origin, cfg)
	if err != nil {
		return nil, err
	}
	defer stop()
	client := newClient(cfg.Clients)
	defer client.CloseIdleConnections()

	if cfg.Scenario == "prewarm" {
		if err := PrewarmHotSet(client, base, cfg.Hot); err != nil {
			return nil, err
		}
	}

	var uniqueID atomic.Int64
	res, err := driveClients(client, base, cfg, func(rng *rand.Rand) string {
		if rng.Float64() < cfg.UniqueFrac {
			return fmt.Sprintf("/unique/%d.js", uniqueID.Add(1))
		}
		return fmt.Sprintf("/hot/%d.js", rng.Intn(cfg.Hot))
	})
	if err != nil {
		return nil, err
	}
	stats := p.Stats()
	row := &report.ServingRow{
		Clients:        cfg.Clients,
		ReqPerSec:      float64(len(res.latencies)) / res.wall.Seconds(),
		RewritesPerSec: float64(stats.Rewrites) / res.wall.Seconds(),
		P50:            percentile(res.latencies, 50),
		P99:            percentile(res.latencies, 99),
		QWaitP50:       percentile(res.qwaits, 50),
		QWaitP99:       percentile(res.qwaits, 99),
		Rejected:       res.rejected,
		Hits:           stats.CacheHits,
		Misses:         stats.CacheMisses,
		Coalesced:      stats.Coalesced,
		Failures:       stats.Failures,
	}
	return row, nil
}

// driveResult is the interactive side of one round.
type driveResult struct {
	latencies []time.Duration // sorted, served (200) responses only
	qwaits    []time.Duration // sorted, from the X-Ceres-Queue-Wait header
	rejected  int64
	// disrupted counts requests retried on another node after hitting
	// a dying connection (cluster rounds with a kill in play only).
	disrupted int64
	wall      time.Duration
}

// driveClients runs cfg.Requests requests over cfg.Clients goroutines,
// asking pathFor for each target path.
func driveClients(client *http.Client, base string, cfg Config, pathFor func(rng *rand.Rand) string) (*driveResult, error) {
	var next, rejected atomic.Int64
	latencies := make([][]time.Duration, cfg.Clients)
	qwaits := make([][]time.Duration, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for int(next.Add(1)) <= cfg.Requests {
				path := pathFor(rng)
				t0 := time.Now()
				res, err := get(client, base+path)
				if err != nil {
					errs[w] = err
					return
				}
				if res.status == http.StatusTooManyRequests {
					// Backpressure: shed fast, retry never (the round
					// measures shedding, not client retry policy). Shed
					// requests are counted, not sampled — mixing their
					// near-instant turnaround into p50/p99 or req/s would
					// understate served latency and overstate throughput
					// exactly when saturation engages.
					rejected.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				if res.status != http.StatusOK {
					errs[w] = fmt.Errorf("GET %s: status %d", path, res.status)
					return
				}
				if !strings.Contains(res.body, "__ceres") {
					errs[w] = fmt.Errorf("response for %s not instrumented", path)
					return
				}
				qwaits[w] = append(qwaits[w], res.queueWait)
			}
		}(w)
	}
	wg.Wait()
	out := &driveResult{wall: time.Since(start), rejected: rejected.Load()}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range latencies {
		out.latencies = append(out.latencies, latencies[i]...)
		out.qwaits = append(out.qwaits, qwaits[i]...)
	}
	sort.Slice(out.latencies, func(i, j int) bool { return out.latencies[i] < out.latencies[j] })
	sort.Slice(out.qwaits, func(i, j int) bool { return out.qwaits[i] < out.qwaits[j] })
	return out, nil
}

// PrewarmHotSet POSTs the round's hot set to /__ceres/prewarm so a mix
// starts against a warm cache.
func PrewarmHotSet(client *http.Client, base string, hot int) error {
	req := proxy.PrewarmRequest{}
	for i := 0; i < hot; i++ {
		req.URLs = append(req.URLs, fmt.Sprintf("/hot/%d.js", i))
	}
	pr, err := postPrewarm(client, base, req)
	if err != nil {
		return err
	}
	fmt.Printf("prewarm: ok=%d saturated=%d failed=%d\n", pr.OK, pr.Saturated, pr.Failed)
	return nil
}

func postPrewarm(client *http.Client, base string, req proxy.PrewarmRequest) (*proxy.PrewarmResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/__ceres/prewarm", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("prewarm: status %d: %s", resp.StatusCode, out)
	}
	var pr proxy.PrewarmResponse
	if err := json.Unmarshal(out, &pr); err != nil {
		return nil, fmt.Errorf("prewarm: %w", err)
	}
	return &pr, nil
}

type getResult struct {
	status    int
	body      string
	queueWait time.Duration
}

func get(client *http.Client, rawURL string) (*getResult, error) {
	resp, err := client.Get(rawURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	res := &getResult{status: resp.StatusCode, body: string(body)}
	if v := resp.Header.Get(proxy.QueueWaitHeader); v != "" {
		if us, err := strconv.ParseInt(v, 10, 64); err == nil {
			res.queueWait = time.Duration(us) * time.Microsecond
		}
	}
	return res, nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
