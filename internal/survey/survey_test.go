package survey

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorpusValidates(t *testing.T) {
	c := Generate(42)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Generate(7)
	b := Generate(7)
	for i := range a.Responses {
		if a.Responses[i].TrendAnswer != b.Responses[i].TrendAnswer ||
			a.Responses[i].StyleScale != b.Responses[i].StyleScale {
			t.Fatalf("corpus not deterministic at respondent %d", i)
		}
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	c := Generate(42)
	rows, valid := Figure1(c, NewCoder())
	// 85 single-coded category answers + 5 disagreement answers.
	if valid < 85 || valid > 95 {
		t.Fatalf("%d codable answers, want ~90 (paper codes 85 of 130 answered)", valid)
	}
	got := map[Category]int{}
	for _, r := range rows {
		got[r.Category] = r.Count
	}
	for cat, want := range PaperFig1() {
		// The synthetic corpus plants exactly `want` single-coded answers
		// per category plus a few multi-coded extras for Games and
		// Visualization.
		if got[cat] < want {
			t.Errorf("%s: coded %d, want >= %d", cat, got[cat], want)
		}
		if got[cat] > want+4 {
			t.Errorf("%s: coded %d, way over paper's %d", cat, got[cat], want)
		}
	}
	// Ordering: Games first, like the paper's chart.
	if len(rows) == 0 || rows[0].Category != CatGames {
		t.Errorf("top category = %v, want Games", rows[0].Category)
	}
	// Games ≈ 31% of valid answers (paper; multi-coded extras tolerated).
	gamesPct := rows[0].Percent
	if gamesPct < 25 || gamesPct > 37 {
		t.Errorf("Games = %.0f%%, want around 31%%", gamesPct)
	}
}

func TestFigure2MatchesPaper(t *testing.T) {
	c := Generate(42)
	rows := Figure2(c)
	if len(rows) != 6 {
		t.Fatalf("want 6 components, got %d", len(rows))
	}
	for _, r := range rows {
		want := PaperFig2()[r.Component]
		if r.NotIssue != want[0] || r.SoSo != want[1] || r.Bottleneck != want[2] {
			t.Errorf("%s: (%d,%d,%d), want %v", r.Component, r.NotIssue, r.SoSo, r.Bottleneck, want)
		}
	}
	// Headline numbers: 52% call resource loading a bottleneck, ~49% DOM,
	// 21% number crunching — and crunching is dismissed by only ~39%.
	check := func(comp Component, lo, hi float64) {
		for _, r := range rows {
			if r.Component == comp {
				if p := r.PctBottleneck(); p < lo || p > hi {
					t.Errorf("%s bottleneck%% = %.0f, want in [%v,%v]", comp, p, lo, hi)
				}
			}
		}
	}
	check(CompResourceLoading, 48, 56)
	check(CompDOM, 45, 53)
	check(CompNumberCrunch, 17, 25)
}

func TestFigure3MatchesPaper(t *testing.T) {
	h := Figure3(Generate(42))
	if h.Counts != PaperFig3() {
		t.Fatalf("Figure 3 = %v, want %v", h.Counts, PaperFig3())
	}
	// 31% strongly functional, 5% strongly imperative.
	if p := h.Percent(1); math.Abs(p-31.3) > 1 {
		t.Errorf("functional(1) = %.1f%%, want ~31%%", p)
	}
	if p := h.Percent(5); math.Abs(p-4.8) > 1 {
		t.Errorf("imperative(5) = %.1f%%, want ~5%%", p)
	}
}

func TestFigure4MatchesPaper(t *testing.T) {
	h := Figure4(Generate(42))
	if h.Counts != PaperFig4() {
		t.Fatalf("Figure 4 = %v, want %v", h.Counts, PaperFig4())
	}
	// ~58% purely monomorphic, ~1% heavily polymorphic.
	if p := h.Percent(1); p < 55 || p > 62 {
		t.Errorf("monomorphic(1) = %.1f%%, want ~58%%", p)
	}
	if p := h.Percent(5); p > 2.5 {
		t.Errorf("polymorphic(5) = %.1f%%, want ~1%%", p)
	}
}

func TestOperatorPreference(t *testing.T) {
	prefer, answered := OperatorPreference(Generate(42))
	if answered == 0 {
		t.Fatal("nobody answered")
	}
	pct := 100 * float64(prefer) / float64(answered)
	if pct < 60 || pct > 85 {
		t.Errorf("operator preference = %.0f%%, want ~74%%", pct)
	}
}

func TestCoderMultiCodes(t *testing.T) {
	c := NewCoder()
	codes := c.Code("3D games in the browser and interactive data visualization")
	hasGames, hasVis := false, false
	for _, cat := range codes {
		if cat == CatGames {
			hasGames = true
		}
		if cat == CatVisualization {
			hasVis = true
		}
	}
	if !hasGames || !hasVis {
		t.Errorf("multi-theme answer coded as %v", codes)
	}
	if got := c.Code("n/a"); got != nil {
		t.Errorf("n/a coded as %v", got)
	}
	if got := c.Code(""); got != nil {
		t.Errorf("empty coded as %v", got)
	}
}

func TestInterRaterAgreementAbove80Percent(t *testing.T) {
	// The paper: "an inter-rater agreement of over 80% for 20% of the
	// data", measured with the Jaccard coefficient.
	c := Generate(42)
	agreement := InterRaterAgreement(c, NewCoder(), NewSecondCoder(), 0.20)
	if agreement <= 0.80 {
		t.Errorf("inter-rater agreement = %.2f, want > 0.80", agreement)
	}
	if agreement >= 1.0 {
		t.Errorf("agreement exactly 1.0 — the raters must differ somewhere")
	}
}

func TestJaccardProperties(t *testing.T) {
	cats := Categories()
	toSet := func(mask uint8) []Category {
		var out []Category
		for i := 0; i < 7; i++ {
			if mask&(1<<i) != 0 {
				out = append(out, cats[i])
			}
		}
		return out
	}
	// Symmetry and range.
	f := func(a, b uint8) bool {
		x, y := toSet(a%128), toSet(b%128)
		j1, j2 := Jaccard(x, y), Jaccard(y, x)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Identity: J(a, a) == 1.
	g := func(a uint8) bool {
		x := toSet(a % 128)
		return Jaccard(x, x) == 1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Disjoint non-empty sets score 0.
	if j := Jaccard([]Category{CatGames}, []Category{CatAudioVideo}); j != 0 {
		t.Errorf("disjoint Jaccard = %v, want 0", j)
	}
}

func TestGlobalsBreakdown(t *testing.T) {
	// §2.4: 105 respondents answered the globals question; namespace
	// emulation was the most common theme (33 in the paper).
	g := GlobalsBreakdown(Generate(42))
	if g.Answered != 105 {
		t.Fatalf("answered = %d, want 105", g.Answered)
	}
	coded := g.Namespace + g.PageComm + g.Singleton + g.Debugging + g.Never
	if coded < 90 {
		t.Errorf("only %d of %d answers coded", coded, g.Answered)
	}
	if g.Namespace != 33 {
		t.Errorf("namespace theme = %d, want 33 (the paper's count)", g.Namespace)
	}
	if g.PageComm == 0 || g.Singleton == 0 {
		t.Errorf("missing themes: %+v", g)
	}
}
