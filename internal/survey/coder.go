package survey

import (
	"sort"
	"strings"
)

// Coder is a keyword-based qualitative thematic coder (§2.1: the paper's
// two raters "developed a set of codes ... validated by achieving an
// inter-rater agreement of over 80% for 20% of the data", measured with
// the Jaccard coefficient).
type Coder struct {
	// keywords maps a category to indicator terms; an answer containing
	// any term receives that category code.
	keywords map[Category][]string
}

// NewCoder returns the primary coder's codebook.
func NewCoder() *Coder {
	return &Coder{keywords: map[Category][]string{
		CatGames:         {"game", "gaming", "physics", "console", "multiplayer"},
		CatP2PSocial:     {"peer-to-peer", "peer to peer", "social", "webrtc", "decentralized", "chat"},
		CatDesktopLike:   {"desktop", "office", "ide", "professional tools"},
		CatDataProc:      {"data analysis", "productivity", "spreadsheet", "analytics", "big data", "crunch"},
		CatAudioVideo:    {"audio", "video", "music", "workstation"},
		CatVisualization: {"visualization", "visualisation", "chart", "infographic", "svg"},
		CatAugReality:    {"augmented", "voice", "gesture", "recognition", "camera", "face"},
	}}
}

// NewSecondCoder returns a second rater with a deliberately slightly
// different codebook (fewer synonyms, one extra), used to measure
// inter-rater agreement like the paper's two human coders.
func NewSecondCoder() *Coder {
	return &Coder{keywords: map[Category][]string{
		CatGames:         {"game", "gaming", "physics"},
		CatP2PSocial:     {"peer-to-peer", "peer to peer", "social", "webrtc", "decentralized"},
		CatDesktopLike:   {"desktop", "office", "ide"},
		CatDataProc:      {"data analysis", "productivity", "spreadsheet", "analytics", "dashboards"},
		CatAudioVideo:    {"audio", "video", "music", "effects"},
		CatVisualization: {"visualization", "chart", "scientific"},
		CatAugReality:    {"augmented", "voice", "gesture", "recognition"},
	}}
}

// Code assigns category codes to one free-text answer (possibly several;
// answers mentioning multiple themes are multi-coded, like the paper's).
func (c *Coder) Code(answer string) []Category {
	text := strings.ToLower(strings.TrimSpace(answer))
	if text == "" || text == "n/a" || text == "not sure" {
		return nil
	}
	var out []Category
	for _, cat := range Categories() {
		for _, kw := range c.keywords[cat] {
			if containsTerm(text, kw) {
				out = append(out, cat)
				break
			}
		}
	}
	return out
}

// containsTerm reports whether kw occurs in text starting at a word
// boundary. Prefix-at-word-start matching lets "game" catch "games" and
// "gaming" while keeping "ide" from firing inside "video".
func containsTerm(text, kw string) bool {
	for start := 0; ; {
		i := strings.Index(text[start:], kw)
		if i < 0 {
			return false
		}
		i += start
		if i == 0 || !isLetter(text[i-1]) {
			return true
		}
		start = i + 1
	}
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Jaccard computes the Jaccard coefficient |A∩B| / |A∪B| between two code
// sets; two empty sets agree perfectly (both raters said "no valid data").
func Jaccard(a, b []Category) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[Category]bool, len(a))
	for _, x := range a {
		setA[x] = true
	}
	inter, union := 0, 0
	seen := make(map[Category]bool, len(a)+len(b))
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			union++
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			union++
		}
		if setA[x] {
			inter++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// InterRaterAgreement codes a fraction of the corpus with both raters and
// returns the mean Jaccard coefficient — the paper validated its codebook
// on 20% of the data, requiring agreement over 80%.
func InterRaterAgreement(c *Corpus, a, b *Coder, fraction float64) float64 {
	n := int(float64(len(c.Responses)) * fraction)
	if n <= 0 {
		return 1
	}
	// deterministic subsample: every k-th response
	idxs := make([]int, 0, n)
	step := len(c.Responses) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(c.Responses) && len(idxs) < n; i += step {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var sum float64
	for _, i := range idxs {
		ans := c.Responses[i].TrendAnswer
		sum += Jaccard(a.Code(ans), b.Code(ans))
	}
	return sum / float64(len(idxs))
}
