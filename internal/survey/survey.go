// Package survey reproduces the developer-survey pipeline of §2: the
// 20-question questionnaire, a deterministic synthetic respondent corpus
// calibrated to the paper's published marginals (the raw responses were
// never released — only aggregates at cos.github.io/js-ceres), the
// qualitative thematic coder for open-ended answers, Jaccard inter-rater
// agreement, and the aggregations behind Figures 1–4.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// Category is a Figure 1 application category code.
type Category string

// Figure 1 categories, as hand-coded by the paper's raters.
const (
	CatGames         Category = "Games"
	CatP2PSocial     Category = "Peer-to-Peer and Social"
	CatDesktopLike   Category = "Desktop like"
	CatDataProc      Category = "Data processing, analysis; productivity"
	CatAudioVideo    Category = "Audio and Video"
	CatVisualization Category = "Visualization"
	CatAugReality    Category = "Augmented reality; voice, gesture, user recognition"
	CatNone          Category = "No answer/valid data"
)

// Categories lists the Figure 1 categories in presentation order.
func Categories() []Category {
	return []Category{
		CatGames, CatP2PSocial, CatDesktopLike, CatDataProc,
		CatAudioVideo, CatVisualization, CatAugReality,
	}
}

// Component is a Figure 2 performance-bottleneck component.
type Component string

// Figure 2 components.
const (
	CompResourceLoading Component = "resource loading"
	CompDOM             Component = "DOM manipulation"
	CompCanvas          Component = "Canvas (read/write images)"
	CompWebGL           Component = "WebGL interaction"
	CompNumberCrunch    Component = "number crunching"
	CompCSS             Component = "styling (CSS)"
)

// Components lists Figure 2 components in presentation order.
func Components() []Component {
	return []Component{
		CompResourceLoading, CompDOM, CompCanvas,
		CompWebGL, CompNumberCrunch, CompCSS,
	}
}

// Rating is a Figure 2 three-level bottleneck rating.
type Rating int

// Ratings.
const (
	NotAnIssue Rating = iota
	SoSo
	Bottleneck
)

func (r Rating) String() string {
	switch r {
	case NotAnIssue:
		return "not an issue"
	case SoSo:
		return "so, so..."
	case Bottleneck:
		return "is a bottleneck"
	}
	return "?"
}

// Response is one synthetic respondent's answer sheet.
type Response struct {
	ID int
	// TrendAnswer is the free-text answer to "what new kinds of
	// applications will trend on the web over the next 5 years?".
	TrendAnswer string
	// Bottlenecks maps each component to its rating.
	Bottlenecks map[Component]Rating
	// StyleScale is the functional(1)..imperative(5) preference, 0 = n/a.
	StyleScale int
	// PolymorphismScale is monomorphic(1)..polymorphic(5), 0 = n/a.
	PolymorphismScale int
	// PrefersOperators: high-level array operators over explicit loops.
	PrefersOperators bool
	// GlobalsAnswer is the free-text answer on global-variable usage.
	GlobalsAnswer string
}

// Corpus is the full synthetic respondent set.
type Corpus struct {
	Responses []Response
}

// NumRespondents matches the paper's 174 distinct responses.
const NumRespondents = 174

// Figure 1 counts from the paper (Chart 1): respondents per category of
// 130 valid answers; 45 gave no usable answer (some answers carry
// multiple codes, which is why category counts sum to less than 130+45).
var paperFig1 = map[Category]int{
	CatGames:         26,
	CatP2PSocial:     17,
	CatDesktopLike:   15,
	CatDataProc:      7,
	CatAudioVideo:    8,
	CatVisualization: 7,
	CatAugReality:    5,
}

// paperFig2 holds the paper's Figure 2 counts: participants answering
// (not an issue, so-so, bottleneck) per component.
var paperFig2 = map[Component][3]int{
	CompResourceLoading: {13, 64, 85},
	CompDOM:             {23, 65, 83},
	CompCanvas:          {37, 72, 46},
	CompWebGL:           {37, 72, 41},
	CompNumberCrunch:    {65, 65, 35},
	CompCSS:             {62, 77, 25},
}

// paperFig3 holds Figure 3: functional(1)..imperative(5) counts of 166
// scale answers.
var paperFig3 = [5]int{52, 50, 41, 15, 8}

// paperFig4 holds Figure 4: monomorphic(1)..polymorphic(5) counts. The
// paper's chart table claims 176 answers, which exceeds its 174
// respondents; we follow the body text instead ("98 out of 168 said the
// programs they write are purely monomorphic", 58/29/7/5/1%), which sums
// to 168.
var paperFig4 = [5]int{98, 47, 12, 9, 2}

// trendPhrases provides representative free-text fragments per category;
// the synthetic generator samples them so the thematic coder has real
// text to work on.
var trendPhrases = map[Category][]string{
	CatGames: {
		"3D games in the browser rivaling consoles",
		"webgl games with realistic physics engines",
		"multiplayer gaming without plugins",
	},
	CatP2PSocial: {
		"peer-to-peer collaboration and social apps",
		"webrtc calls and social sharing everywhere",
		"decentralized social networks",
	},
	CatDesktopLike: {
		"everything that is on the desktop today moves to the web",
		"desktop-class applications like office suites in the browser",
		"IDEs and professional tools as web apps",
	},
	CatDataProc: {
		"data analysis dashboards and productivity suites",
		"spreadsheets crunching big data client side",
		"business analytics in the browser",
	},
	CatAudioVideo: {
		"audio workstations and video editing online",
		"real-time video processing and effects",
		"music production apps with low-latency audio",
	},
	CatVisualization: {
		"interactive data visualization of huge datasets",
		"scientific visualization with svg and canvas",
		"live charts and infographics",
	},
	CatAugReality: {
		"augmented reality overlays using the camera",
		"voice and gesture recognition interfaces",
		"face recognition for user identification",
	},
}

var noAnswerPhrases = []string{
	"", "not sure", "whatever is hyped next", "n/a",
}

// otherPhrases are answers no codebook category matches — the paper's 130
// answered respondents include ~45 whose answers fell outside the seven
// categories (the Figure 1 percentages are taken over the 85 coded ones).
var otherPhrases = []string{
	"faster websites overall",
	"more of the same, just quicker",
	"better tooling for developers",
	"hopefully fewer frameworks",
	"mobile first everything",
}

// hardPhrases are category answers only the primary codebook catches;
// they create the inter-rater disagreements the Jaccard validation
// measures (§2.1).
var hardPhrases = []string{
	"console quality titles in the browser",         // Games: only coder 1 knows "console"
	"overlay information using the phone camera",    // AR: only coder 1 knows "camera"
	"live infographics from data feeds",             // Vis: only coder 1 knows "infographic"
	"group chat built into every page",              // P2P: only coder 1 knows "chat"
	"number crunching dashboards for business data", // DataProc: split codebooks
}

var globalsPhrases = []string{
	"emulating a namespace or module system",
	"communicating values between scripts on the same page",
	"passing state between server and client on page load",
	"a global singleton for important data structures",
	"quick debugging from the console",
	"never, globals are evil",
}

// rng is a small deterministic generator for corpus synthesis.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generate builds the deterministic synthetic corpus: the marginal
// distributions of every closed question, and the category mix of the
// open-ended trend question, match the paper's published aggregates
// exactly (the assignment of answers to respondent IDs is the synthetic
// part).
func Generate(seed uint64) *Corpus {
	r := &rng{s: seed ^ 0x9E3779B97F4A7C15}
	if r.s == 0 {
		r.s = 1
	}

	c := &Corpus{Responses: make([]Response, NumRespondents)}
	for i := range c.Responses {
		c.Responses[i].ID = i + 1
		c.Responses[i].Bottlenecks = make(map[Component]Rating)
	}

	// Figure 1: assign category-coded trend answers to the first
	// sum(counts) respondents, no-answer text to 44 more (45 total with
	// the remainder), desktop-like style filler to the rest.
	idx := 0
	for _, cat := range Categories() {
		for k := 0; k < paperFig1[cat]; k++ {
			phr := trendPhrases[cat]
			c.Responses[idx].TrendAnswer = phr[r.intn(len(phr))]
			idx++
		}
	}
	// A handful of coder-disagreement answers (still category-coded by the
	// primary rater) exercise the Jaccard validation.
	for k := 0; k < len(hardPhrases) && idx < NumRespondents; k++ {
		c.Responses[idx].TrendAnswer = hardPhrases[k]
		idx++
	}
	// Remaining respondents: 45 with no usable answer, the rest with
	// answers outside the codebook (the paper's uncategorized tail).
	for k := 0; idx < NumRespondents; idx++ {
		if k < 45 {
			c.Responses[idx].TrendAnswer = noAnswerPhrases[r.intn(len(noAnswerPhrases))]
		} else {
			c.Responses[idx].TrendAnswer = otherPhrases[r.intn(len(otherPhrases))]
		}
		k++
	}

	// Figure 2 marginals per component.
	for comp, counts := range paperFig2 {
		perm := r.permutation(NumRespondents)
		n0, n1, n2 := counts[0], counts[1], counts[2]
		for i, resp := range perm {
			switch {
			case i < n0:
				c.Responses[resp].Bottlenecks[comp] = NotAnIssue
			case i < n0+n1:
				c.Responses[resp].Bottlenecks[comp] = SoSo
			case i < n0+n1+n2:
				c.Responses[resp].Bottlenecks[comp] = Bottleneck
			default:
				delete(c.Responses[resp].Bottlenecks, comp) // skipped question
			}
		}
	}

	// Figure 3 scale.
	assignScale(r, c, paperFig3, func(resp *Response, v int) { resp.StyleScale = v })
	// Figure 4 scale.
	assignScale(r, c, paperFig4, func(resp *Response, v int) { resp.PolymorphismScale = v })

	// Operators vs loops: 74% of answerers preferred operators.
	perm := r.permutation(NumRespondents)
	answered := 160
	prefer := int(0.74*float64(answered) + 0.5)
	for i := 0; i < answered; i++ {
		c.Responses[perm[i]].PrefersOperators = i < prefer
	}

	// Globals question: 105 responses; the paper reports namespace/module
	// emulation as the most common theme (33 of 105).
	perm = r.permutation(NumRespondents)
	for i := 0; i < 105; i++ {
		var phrase string
		if i < 33 {
			phrase = globalsPhrases[0] // namespace/module emulation
		} else {
			phrase = globalsPhrases[1+r.intn(len(globalsPhrases)-1)]
		}
		c.Responses[perm[i]].GlobalsAnswer = phrase
	}
	return c
}

func assignScale(r *rng, c *Corpus, counts [5]int, set func(*Response, int)) {
	perm := r.permutation(NumRespondents)
	i := 0
	for v := 1; v <= 5; v++ {
		for k := 0; k < counts[v-1]; k++ {
			if i >= len(perm) {
				return
			}
			set(&c.Responses[perm[i]], v)
			i++
		}
	}
}

func (r *rng) permutation(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ---- Aggregations (the figures) ----

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	Category Category
	Count    int
	Percent  float64 // of valid answers
}

// Figure1 hand-codes every trend answer with the thematic coder and
// aggregates category percentages over valid answers.
func Figure1(c *Corpus, coder *Coder) ([]Fig1Row, int) {
	counts := make(map[Category]int)
	valid := 0
	for i := range c.Responses {
		codes := coder.Code(c.Responses[i].TrendAnswer)
		if len(codes) == 0 {
			continue
		}
		valid++
		for _, cat := range codes {
			counts[cat]++
		}
	}
	rows := make([]Fig1Row, 0, len(counts))
	for _, cat := range Categories() {
		if counts[cat] == 0 {
			continue
		}
		rows = append(rows, Fig1Row{
			Category: cat,
			Count:    counts[cat],
			Percent:  100 * float64(counts[cat]) / float64(valid),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	return rows, valid
}

// Fig2Row is one component row of Figure 2.
type Fig2Row struct {
	Component  Component
	NotIssue   int
	SoSo       int
	Bottleneck int
}

// Answered returns how many respondents rated this component.
func (r Fig2Row) Answered() int { return r.NotIssue + r.SoSo + r.Bottleneck }

// PctBottleneck returns the percentage rating it a bottleneck.
func (r Fig2Row) PctBottleneck() float64 {
	if r.Answered() == 0 {
		return 0
	}
	return 100 * float64(r.Bottleneck) / float64(r.Answered())
}

// Figure2 aggregates bottleneck ratings.
func Figure2(c *Corpus) []Fig2Row {
	rows := make([]Fig2Row, 0, 6)
	for _, comp := range Components() {
		row := Fig2Row{Component: comp}
		for i := range c.Responses {
			rating, ok := c.Responses[i].Bottlenecks[comp]
			if !ok {
				continue
			}
			switch rating {
			case NotAnIssue:
				row.NotIssue++
			case SoSo:
				row.SoSo++
			case Bottleneck:
				row.Bottleneck++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ScaleHistogram is Figures 3 and 4: counts per 1..5 answer.
type ScaleHistogram struct {
	Counts [5]int
	Total  int
}

// Percent returns the share of answers at scale value v (1-based).
func (h ScaleHistogram) Percent(v int) float64 {
	if h.Total == 0 || v < 1 || v > 5 {
		return 0
	}
	return 100 * float64(h.Counts[v-1]) / float64(h.Total)
}

// Figure3 aggregates the functional↔imperative scale.
func Figure3(c *Corpus) ScaleHistogram {
	var h ScaleHistogram
	for i := range c.Responses {
		if v := c.Responses[i].StyleScale; v >= 1 && v <= 5 {
			h.Counts[v-1]++
			h.Total++
		}
	}
	return h
}

// Figure4 aggregates the monomorphic↔polymorphic scale.
func Figure4(c *Corpus) ScaleHistogram {
	var h ScaleHistogram
	for i := range c.Responses {
		if v := c.Responses[i].PolymorphismScale; v >= 1 && v <= 5 {
			h.Counts[v-1]++
			h.Total++
		}
	}
	return h
}

// GlobalsUsage is the §2.4 breakdown of "What would be a scenario where
// using global variables helps?" answers.
type GlobalsUsage struct {
	Answered  int
	Namespace int // emulating a namespace/module system (paper: 33)
	PageComm  int // communicating between scripts / server and client
	Singleton int // global singletons for important data structures
	Debugging int
	Never     int
}

// GlobalsBreakdown codes the free-text globals answers with keyword
// matching, like the paper's hand analysis of its 105 responses.
func GlobalsBreakdown(c *Corpus) GlobalsUsage {
	var g GlobalsUsage
	for i := range c.Responses {
		ans := strings.ToLower(c.Responses[i].GlobalsAnswer)
		if ans == "" {
			continue
		}
		g.Answered++
		switch {
		case strings.Contains(ans, "namespace") || strings.Contains(ans, "module"):
			g.Namespace++
		case strings.Contains(ans, "between scripts") || strings.Contains(ans, "server and client"):
			g.PageComm++
		case strings.Contains(ans, "singleton"):
			g.Singleton++
		case strings.Contains(ans, "debug"):
			g.Debugging++
		case strings.Contains(ans, "never") || strings.Contains(ans, "evil"):
			g.Never++
		}
	}
	return g
}

// OperatorPreference returns (prefer-operators, answered) for §2.3.
func OperatorPreference(c *Corpus) (int, int) {
	prefer, answered := 0, 0
	for i := range c.Responses {
		// Respondents with any scale answer count as having taken this
		// question block; PrefersOperators false + no scales = skipped.
		if c.Responses[i].StyleScale == 0 && !c.Responses[i].PrefersOperators {
			continue
		}
		answered++
		if c.Responses[i].PrefersOperators {
			prefer++
		}
	}
	return prefer, answered
}

// PaperFig1 exposes the paper's Figure 1 counts for verification.
func PaperFig1() map[Category]int {
	out := make(map[Category]int, len(paperFig1))
	for k, v := range paperFig1 {
		out[k] = v
	}
	return out
}

// PaperFig2 exposes the paper's Figure 2 counts for verification.
func PaperFig2() map[Component][3]int {
	out := make(map[Component][3]int, len(paperFig2))
	for k, v := range paperFig2 {
		out[k] = v
	}
	return out
}

// PaperFig3 exposes the paper's Figure 3 histogram.
func PaperFig3() [5]int { return paperFig3 }

// PaperFig4 exposes the paper's Figure 4 histogram.
func PaperFig4() [5]int { return paperFig4 }

// Validate checks corpus invariants (marginals match the paper).
func (c *Corpus) Validate() error {
	if len(c.Responses) != NumRespondents {
		return fmt.Errorf("survey: %d respondents, want %d", len(c.Responses), NumRespondents)
	}
	h3 := Figure3(c)
	if h3.Counts != paperFig3 {
		return fmt.Errorf("survey: Figure 3 marginals %v, want %v", h3.Counts, paperFig3)
	}
	h4 := Figure4(c)
	if h4.Counts != paperFig4 {
		return fmt.Errorf("survey: Figure 4 marginals %v, want %v", h4.Counts, paperFig4)
	}
	for _, row := range Figure2(c) {
		want := paperFig2[row.Component]
		if row.NotIssue != want[0] || row.SoSo != want[1] || row.Bottleneck != want[2] {
			return fmt.Errorf("survey: Figure 2 %s = (%d,%d,%d), want %v",
				row.Component, row.NotIssue, row.SoSo, row.Bottleneck, want)
		}
	}
	return nil
}
