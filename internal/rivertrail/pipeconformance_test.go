package rivertrail

// Differential pipeline conformance: every produce→consume corpus
// program runs twice — pipelined (streamed stage dispatch) and
// sequential (the fused composition, guarded, on one interpreter) —
// and the two observations must agree byte-for-byte: output signature,
// error string, console stream and the guard's purity verdict. Any
// divergence is a hard failure, mirroring the engine conformance suite
// in internal/js/interp. The corpus doubles as the seed set for
// FuzzPipelineDifferential.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/autopar"
	"repro/internal/js/interp"
)

// pipeProgram is one corpus entry: prelude (captured state, helpers),
// a per-index input expression (qi is the index), and 1–3 stage
// elementals.
type pipeProgram struct {
	name    string
	prelude string
	input   string
	stages  []string
	n       int
}

var pipeCorpus = []pipeProgram{
	// --- pure numeric pipelines (must dispatch and stay identical) ---
	{"affine-chain", "", "qi", []string{
		"function (x, i) { return x * 2 + i; }",
		"function (x, i) { return x - 3; }"}, 160},
	{"three-stages", "", "qi % 23", []string{
		"function (x, i) { return x + 1; }",
		"function (x, i) { return x * x; }",
		"function (x, i) { return x % 97; }"}, 200},
	{"single-stage", "", "qi * 3", []string{
		"function (x, i) { return x / 7; }"}, 120},
	{"math-ambients", "", "qi + 1", []string{
		"function (x, i) { return Math.sqrt(x) + Math.sin(i); }",
		"function (x, i) { return Math.floor(x * 1000); }"}, 150},
	{"float-precision", "", "qi * 0.1", []string{
		"function (x, i) { return x * 1e15 + i; }",
		"function (x, i) { return x / 3; }"}, 130},
	{"nan-propagation", "", "qi - 5", []string{
		"function (x, i) { return x === 3 ? 0 / 0 : x; }",
		"function (x, i) { return x + 1; }"}, 90},
	{"negative-zero", "", "qi - 8", []string{
		"function (x, i) { return x * 0; }",
		"function (x, i) { return 1 / x; }"}, 100},
	{"bitwise-chain", "", "qi * 2654435761 % 4096", []string{
		"function (x, i) { return (x ^ (i * 31)) & 1023; }",
		"function (x, i) { return (x << 2) | (x >> 3); }"}, 170},
	{"mixed-types", "", "qi", []string{
		"function (x, i) { return i < 50 ? x : 's' + x; }",
		"function (x, i) { return typeof x === 'string' ? x.length : x; }"}, 140},
	{"string-build", "", "qi % 9", []string{
		"function (x, i) { return x + '-' + i; }",
		"function (x, i) { return x.length + x.charCodeAt(0); }"}, 110},
	{"undefined-holes", "", "qi", []string{
		"function (x, i) { if (x % 7 === 0) { return undefined; } return x; }",
		"function (x, i) { return x === undefined ? null : x; }"}, 120},
	{"boolean-logic", "", "qi % 2", []string{
		"function (x, i) { return x === 1 || i % 3 === 0; }",
		"function (x, i) { return x ? i : -i; }"}, 130},
	{"captured-scalar", "var scale = 7; var bias = -2;", "qi", []string{
		"function (x, i) { return x * scale; }",
		"function (x, i) { return x + bias; }"}, 150},
	{"captured-flat-array", "var lut = [3, 1, 4, 1, 5, 9, 2, 6];", "qi", []string{
		"function (x, i) { return lut[x % 8] + x; }",
		"function (x, i) { return x * lut[i % 8]; }"}, 160},
	{"captured-helper", "function clampish(v) { return v > 100 ? 100 : v; }", "qi * 3", []string{
		"function (x, i) { return clampish(x); }",
		"function (x, i) { return clampish(x + i); }"}, 140},
	{"recursive-helper", "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); }", "qi % 10", []string{
		"function (x, i) { return fact(x) % 1009; }",
		"function (x, i) { return x + 1; }"}, 120},
	{"shared-readonly-capture", "var k = 13;", "qi", []string{
		"function (x, i) { return x + k; }",
		"function (x, i) { return x - k; }"}, 130},
	{"empty-input", "", "qi", []string{
		"function (x, i) { return x; }",
		"function (x, i) { return x + 1; }"}, 0},
	{"tiny-input", "", "qi", []string{
		"function (x, i) { return x * 2; }",
		"function (x, i) { return x + 1; }"}, 3},

	// --- impurity: the guard must give the same verdict either way ---
	{"impure-a-immediate", "var hits = 0;", "qi", []string{
		"function (x, i) { hits = hits + 1; return x; }",
		"function (x, i) { return x * 2; }"}, 120},
	{"impure-a-midstream", "var late = 0;", "qi", []string{
		"function (x, i) { if (i >= 90) { late = late + x; } return x + 1; }",
		"function (x, i) { return x * 2; }"}, 180},
	{"impure-b-midstream", "var tail = 0;", "qi", []string{
		"function (x, i) { return x + 1; }",
		"function (x, i) { if (i >= 100) { tail = tail + 1; } return x * 3; }"}, 200},
	{"impure-both-stages", "var a = 0; var b = 0;", "qi", []string{
		"function (x, i) { if (i > 60) { a = i; } return x; }",
		"function (x, i) { if (i > 60) { b = i; } return x; }"}, 150},
	{"impure-object-prop", "var cfg = {count: 0};", "qi", []string{
		"function (x, i) { return x * 2; }",
		"function (x, i) { if (i >= 80) { cfg.count = i; } return x; }"}, 160},
	{"implicit-global-write", "", "qi", []string{
		"function (x, i) { if (i >= 70) { stray = x; } return x; }",
		"function (x, i) { return x + 1; }"}, 140},
	{"flow-through-capture", "var carry = 0;", "qi", []string{
		"function (x, i) { if (i >= 96) { carry = x; } return x + carry; }",
		"function (x, i) { return x * 2; }"}, 180},

	// --- throws: identical error strings either way ---
	{"throw-immediately", "", "qi", []string{
		"function (x, i) { if (i === 0) { throw 'first element'; } return x; }",
		"function (x, i) { return x; }"}, 100},
	{"throw-a-midstream", "", "qi", []string{
		"function (x, i) { if (i === 111) { throw 'stage A at ' + i; } return x + 1; }",
		"function (x, i) { return x * 2; }"}, 190},
	{"throw-b-midstream", "", "qi", []string{
		"function (x, i) { return x + 1; }",
		"function (x, i) { if (i === 123) { throw 'stage B at ' + i; } return x; }"}, 200},
	{"throw-type-error", "", "qi", []string{
		"function (x, i) { var o = i > 95 ? null : {v: 1}; return o.v + x; }",
		"function (x, i) { return x; }"}, 160},
	{"non-function-stage", "var notAFunction = 42;", "qi",
		[]string{"function (x, i) { return x; }", "notAFunction"}, 90},

	// --- serialization limits: abort to sequential, still identical ---
	{"object-result-midstream", "", "qi", []string{
		"function (x, i) { if (i >= 90) { return {v: x}; } return x; }",
		"function (x, i) { return typeof x === 'object' ? x.v + 1 : x; }"}, 170},
	{"object-elements", "", "({v: qi})", []string{
		"function (x, i) { return x.v * 2; }",
		"function (x, i) { return x + 1; }"}, 120},
	{"console-in-stage", "", "qi", []string{
		"function (x, i) { if (i % 40 === 0) { console.log('at', i); } return x; }",
		"function (x, i) { return x + 1; }"}, 130},
	{"math-random-in-stage", "", "qi", []string{
		"function (x, i) { return x + Math.random(); }",
		"function (x, i) { return Math.floor(x * 100); }"}, 110},
}

// Step budget for both engines: generous for the corpus, a hang guard
// for fuzzed programs.
const pipeDiffMaxSteps = 4_000_000

// pipeObs is one run's observable outcome.
type pipeObs struct {
	errStr      string
	sig         string
	console     string
	pure        bool
	misspec     bool
	parallel    bool
	abortReason string
	stepLimited bool
}

// pipeSeqOpts is the sequential reference: one interpreter, fused
// composition, fully guarded.
func pipeSeqOpts(static autopar.StaticMode) autopar.Options {
	return autopar.Options{Workers: 1, Static: static, WorkerSteps: pipeDiffMaxSteps}
}

// pipePipeOpts streams with deliberately small batches and tight
// backpressure so even short programs exercise multiple hand-offs,
// plus a Verify shadow (misspeculation must never fire).
func pipePipeOpts(static autopar.StaticMode) autopar.Options {
	return autopar.Options{
		Workers: 4, Pipeline: true, PipeBatch: 5, PipeDepth: 1,
		Verify: true, Static: static, WorkerSteps: pipeDiffMaxSteps,
	}
}

// assemblePipeProgram builds the full JS source for one corpus shape.
func assemblePipeProgram(prelude, input string, stages []string, n int) string {
	var sb strings.Builder
	sb.WriteString(prelude)
	sb.WriteString("\nvar raw = [];\n")
	sb.WriteString("for (var qi = 0; qi < " + strconv.Itoa(n) + "; qi++) { raw.push(" + input + "); }\n")
	sb.WriteString("var pa = ParallelArray(raw);\n")
	sb.WriteString("var res = pa.pipePar(" + strings.Join(stages, ", ") + ");\n")
	sb.WriteString("var sig = res.toArray().join(',');\n")
	return sb.String()
}

// runPipeProgram executes one assembled program under opts and captures
// everything the differential compares.
func runPipeProgram(src string, opts autopar.Options) pipeObs {
	prog, err := interp.Load(src)
	if err != nil {
		return pipeObs{errStr: "parse: " + err.Error()}
	}
	in := interp.New(interp.WithSeed(11), interp.WithMaxSteps(pipeDiffMaxSteps))
	in.SetCompile(true)
	st := Install(in)
	st.SetOptions(opts)
	if err := in.Run(prog); err != nil {
		return pipeObs{
			errStr:      err.Error(),
			console:     strings.Join(in.Console(), "\n"),
			stepLimited: strings.Contains(err.Error(), "step limit exceeded"),
		}
	}
	last := st.Last()
	return pipeObs{
		sig:         in.Global("sig").ToString(),
		console:     strings.Join(in.Console(), "\n"),
		pure:        last.Pure,
		misspec:     last.Misspeculated,
		parallel:    last.Parallel,
		abortReason: last.AbortReason,
	}
}

// diffPipeRun is the shared oracle: run both ways, fail hard on any
// observable divergence. Returns the two observations for extra
// per-case assertions.
func diffPipeRun(t *testing.T, src string, static autopar.StaticMode) (seq, pipe pipeObs) {
	t.Helper()
	seq = runPipeProgram(src, pipeSeqOpts(static))
	pipe = runPipeProgram(src, pipePipeOpts(static))
	if seq.errStr != pipe.errStr {
		t.Fatalf("error divergence:\n  sequential: %q\n  pipelined:  %q", seq.errStr, pipe.errStr)
	}
	if seq.errStr != "" {
		return seq, pipe
	}
	if seq.sig != pipe.sig {
		t.Fatalf("output divergence:\n  sequential: %q\n  pipelined:  %q", seq.sig, pipe.sig)
	}
	if seq.console != pipe.console {
		t.Fatalf("console divergence:\n  sequential: %q\n  pipelined:  %q", seq.console, pipe.console)
	}
	// Guard verdicts must agree, with one documented exception: an
	// implicit global (`leak = i`, no declaration) is an in-epoch side
	// effect on the sequential path (the binding lands, pure) but a
	// deliverability violation on a share-nothing worker (guardparity
	// pins Pure=false there), so the two configurations legitimately
	// disagree — for that shape only, the output/error/console equality
	// above is the whole oracle.
	implicitGlobal := strings.Contains(pipe.abortReason, "implicit global")
	if seq.pure != pipe.pure && !implicitGlobal {
		t.Fatalf("guard verdict divergence: sequential pure=%v, pipelined pure=%v (abort %q)", seq.pure, pipe.pure, pipe.abortReason)
	}
	if pipe.misspec {
		t.Fatal("Verify flagged a misspeculation the conformance fallback should have prevented")
	}
	return seq, pipe
}

func TestPipelineConformance(t *testing.T) {
	for _, pc := range pipeCorpus {
		t.Run(pc.name, func(t *testing.T) {
			src := assemblePipeProgram(pc.prelude, pc.input, pc.stages, pc.n)
			diffPipeRun(t, src, autopar.StaticOff)
		})
	}
}

// The same corpus must also agree when the static prover is assisting
// both sides: a Proven stage elides its guard, which must never change
// a single observable byte.
func TestPipelineConformanceStaticAssist(t *testing.T) {
	for _, pc := range pipeCorpus {
		t.Run(pc.name, func(t *testing.T) {
			src := assemblePipeProgram(pc.prelude, pc.input, pc.stages, pc.n)
			diffPipeRun(t, src, autopar.StaticAssist)
		})
	}
}

// Sanity: the corpus is not vacuous — the pure entries really stream,
// the impure ones really trip the guard.
func TestPipelineCorpusCoverage(t *testing.T) {
	streamed, impure, errored := 0, 0, 0
	for _, pc := range pipeCorpus {
		src := assemblePipeProgram(pc.prelude, pc.input, pc.stages, pc.n)
		pipe := runPipeProgram(src, pipePipeOpts(autopar.StaticOff))
		switch {
		case pipe.errStr != "":
			errored++
		case !pipe.pure:
			impure++
		case pipe.parallel:
			streamed++
		}
	}
	if streamed < 10 {
		t.Errorf("only %d corpus programs actually streamed; the suite is not exercising dispatch", streamed)
	}
	if impure < 5 {
		t.Errorf("only %d corpus programs tripped the guard", impure)
	}
	if errored < 4 {
		t.Errorf("only %d corpus programs errored", errored)
	}
}
