package rivertrail

// FuzzPipelineDifferential mutates the pipeline conformance corpus and
// holds the pipelined execution to the sequential oracle: byte-identical
// signature, identical error string and console stream, and matching
// guard verdicts (modulo the documented implicit-global asymmetry). The
// fuzzer owns the program shape — prelude, per-index input expression
// and up to three stage sources — so it can invent impurity patterns,
// mid-stream throws and serialization limits the corpus never wrote
// down. CI runs a 30 s smoke alongside FuzzInterpDifferential.

import (
	"strings"
	"testing"

	"repro/internal/autopar"
)

// fuzzPipeMaxSrc bounds the assembled source; larger mutants spend the
// budget parsing, not differencing.
const fuzzPipeMaxSrc = 4096

func FuzzPipelineDifferential(f *testing.F) {
	for _, pc := range pipeCorpus {
		s2, s3 := "", ""
		if len(pc.stages) > 1 {
			s2 = pc.stages[1]
		}
		if len(pc.stages) > 2 {
			s3 = pc.stages[2]
		}
		f.Add(pc.prelude, pc.input, pc.stages[0], s2, s3, uint16(pc.n))
	}
	f.Fuzz(func(t *testing.T, prelude, input, s1, s2, s3 string, n uint16) {
		stages := []string{s1}
		if s2 != "" {
			stages = append(stages, s2)
		}
		if s3 != "" {
			stages = append(stages, s3)
		}
		src := assemblePipeProgram(prelude, input, stages, int(n)%256)
		if len(src) > fuzzPipeMaxSrc {
			t.Skip("oversize input")
		}
		seq := runPipeProgram(src, pipeSeqOpts(autopar.StaticOff))
		pipe := runPipeProgram(src, pipePipeOpts(autopar.StaticOff))
		// The two strategies spend main-interpreter steps differently
		// (profile slice + Verify shadow vs. the full guarded run), so a
		// program that exhausts the budget on either side has no
		// comparable oracle — the budget exists to stop hangs, not to be
		// an observable.
		if seq.stepLimited || pipe.stepLimited {
			t.Skip("step budget exhausted")
		}
		if seq.errStr != pipe.errStr {
			t.Fatalf("error divergence:\n  sequential: %q\n  pipelined:  %q\nsource:\n%s", seq.errStr, pipe.errStr, src)
		}
		if seq.errStr != "" {
			return
		}
		if seq.sig != pipe.sig {
			t.Fatalf("output divergence:\n  sequential: %q\n  pipelined:  %q\nsource:\n%s", seq.sig, pipe.sig, src)
		}
		if seq.console != pipe.console {
			t.Fatalf("console divergence:\n  sequential: %q\n  pipelined:  %q\nsource:\n%s", seq.console, pipe.console, src)
		}
		if seq.pure != pipe.pure && !strings.Contains(pipe.abortReason, "implicit global") {
			t.Fatalf("guard verdict divergence: sequential pure=%v, pipelined pure=%v (abort %q)\nsource:\n%s",
				seq.pure, pipe.pure, pipe.abortReason, src)
		}
		if pipe.misspec {
			t.Fatalf("misspeculation surfaced through Verify instead of the guard\nsource:\n%s", src)
		}
	})
}
