// Package rivertrail implements the high-level data-parallel collection
// API the paper recommends (§5.1: "libraries can take a functional
// approach to exposing data parallelism (like RiverTrail did)"), with the
// §5.3 requirement that speculative parallelization "not only ... abort
// when it fails to run a loop in parallel, but also have ways to report to
// the developer the reason for aborting."
//
// Install adds a ParallelArray(arr) constructor to an interpreter. Its
// mapPar/filterPar/reducePar methods run the elemental function under a
// purity guard built on JS-CERES's instrumentation: writes to state that
// predates the call (captured variables, external objects) are detected
// at runtime, the parallel plan is aborted, execution falls back to the
// sequential semantics, and the reason — which variable or property the
// kernel mutated — is reported through RiverTrailReport().
package rivertrail

import (
	"fmt"

	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Report describes the last ParallelArray operation.
type Report struct {
	// Op is "mapPar", "filterPar" or "reducePar".
	Op string
	// Parallel is true when the elemental function proved pure and the
	// operation was eligible for parallel execution.
	Parallel bool
	// AbortReason explains a sequential fallback ("writes captured
	// variable sum", "mutates external object <Object>.x", ...).
	AbortReason string
	// Elements processed.
	Elements int
}

// State carries the API state for one interpreter.
type State struct {
	in   *interp.Interp
	last Report
}

// Last returns the most recent operation report.
func (s *State) Last() Report { return s.last }

// purityGuard watches writes during elemental-function execution. Any
// write to a binding or object that existed before the operation started
// is a purity violation (the result array under construction is exempt).
type purityGuard struct {
	interp.NopHooks
	active   bool
	epoch    map[any]bool // objects/bindings created during the operation
	exempt   map[any]bool
	violated string
}

func (g *purityGuard) VarDeclare(_ string, b *interp.Binding) {
	if g.active {
		g.epoch[b] = true
	}
}

func (g *purityGuard) VarWrite(name string, b *interp.Binding) {
	if !g.active || g.violated != "" {
		return
	}
	if !g.epoch[b] && !g.exempt[b] {
		g.violated = "writes captured variable " + name
	}
}

func (g *purityGuard) ObjectNew(o *value.Object) {
	if g.active {
		g.epoch[o] = true
	}
}

func (g *purityGuard) PropWrite(o *value.Object, key string, _ *interp.Binding) {
	if !g.active || g.violated != "" {
		return
	}
	if !g.epoch[o] && !g.exempt[o] {
		g.violated = "mutates external object <" + o.Class + ">." + key
	}
}

// Install wires ParallelArray and RiverTrailReport into the interpreter
// and returns the state handle.
func Install(in *interp.Interp) *State {
	st := &State{in: in}

	in.SetGlobal("ParallelArray", value.ObjectVal(value.NewNative("ParallelArray",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			src := argAt(args, 0)
			if !src.IsObject() || !src.Object().IsArray() {
				return value.Undefined(), value.ThrowTypeError("ParallelArray requires an array")
			}
			return st.wrap(src.Object()), nil
		})))

	in.SetGlobal("RiverTrailReport", value.ObjectVal(value.NewNative("RiverTrailReport",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			o := in.NewObject()
			o.Set("op", value.String(st.last.Op))
			o.Set("parallel", value.Bool(st.last.Parallel))
			o.Set("abortReason", value.String(st.last.AbortReason))
			o.Set("elements", value.Int(st.last.Elements))
			return value.ObjectVal(o), nil
		})))
	return st
}

// wrap builds the ParallelArray object over backing storage.
func (st *State) wrap(backing *value.Object) value.Value {
	pa := st.in.NewObject()
	pa.Set("length", value.Int(len(backing.Elems)))

	pa.Set("mapPar", value.ObjectVal(value.NewNative("mapPar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			fn := argAt(args, 0)
			out := value.NewArrayN(len(backing.Elems))
			report, err := st.runGuarded("mapPar", backing, out, func(i int, elem value.Value) error {
				r, err := c.CallFunction(fn, value.Undefined(), []value.Value{elem, value.Int(i)})
				if err != nil {
					return err
				}
				out.Elems[i] = r
				return nil
			})
			if err != nil {
				return value.Undefined(), err
			}
			st.last = report
			return st.wrap(out), nil
		})))

	pa.Set("filterPar", value.ObjectVal(value.NewNative("filterPar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			fn := argAt(args, 0)
			keep := make([]bool, len(backing.Elems))
			report, err := st.runGuarded("filterPar", backing, nil, func(i int, elem value.Value) error {
				r, err := c.CallFunction(fn, value.Undefined(), []value.Value{elem, value.Int(i)})
				if err != nil {
					return err
				}
				keep[i] = r.ToBool()
				return nil
			})
			if err != nil {
				return value.Undefined(), err
			}
			var elems []value.Value
			for i, k := range keep {
				if k {
					elems = append(elems, backing.Elems[i])
				}
			}
			out := value.NewArray(elems...)
			st.last = report
			return st.wrap(out), nil
		})))

	pa.Set("reducePar", value.ObjectVal(value.NewNative("reducePar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			fn := argAt(args, 0)
			if len(backing.Elems) == 0 {
				return argAt(args, 1), nil
			}
			acc := backing.Elems[0]
			start := 1
			if len(args) > 1 {
				acc = args[1]
				start = 0
			}
			// Reduction order is implementation-defined in River Trail;
			// the guard still demands elemental purity.
			report, err := st.runGuardedRange("reducePar", backing, start, func(i int, elem value.Value) error {
				r, err := c.CallFunction(fn, value.Undefined(), []value.Value{acc, elem, value.Int(i)})
				if err != nil {
					return err
				}
				acc = r
				return nil
			})
			if err != nil {
				return value.Undefined(), err
			}
			st.last = report
			return acc, nil
		})))

	pa.Set("get", value.ObjectVal(value.NewNative("get",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			i := int(argAt(args, 0).ToNumber())
			if i < 0 || i >= len(backing.Elems) {
				return value.Undefined(), nil
			}
			return backing.Elems[i], nil
		})))

	pa.Set("toArray", value.ObjectVal(value.NewNative("toArray",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			return value.ObjectVal(st.in.NewArray(append([]value.Value{}, backing.Elems...)...)), nil
		})))

	return value.ObjectVal(pa)
}

func (st *State) runGuarded(op string, backing, out *value.Object, body func(int, value.Value) error) (Report, error) {
	return st.runGuardedFrom(op, backing, out, 0, body)
}

func (st *State) runGuardedRange(op string, backing *value.Object, start int, body func(int, value.Value) error) (Report, error) {
	return st.runGuardedFrom(op, backing, nil, start, body)
}

// runGuardedFrom executes the elemental function for every element with
// the purity guard chained onto whatever hooks are already installed. On
// the first violation the guard records the reason; execution continues
// sequentially (the fallback), so results are always produced.
func (st *State) runGuardedFrom(op string, backing, out *value.Object, start int, body func(int, value.Value) error) (Report, error) {
	guard := &purityGuard{
		epoch:  make(map[any]bool),
		exempt: make(map[any]bool),
	}
	if out != nil {
		guard.exempt[out] = true
	}
	prev := st.in.HooksInstalled()
	if prev != nil {
		st.in.SetHooks(interp.NewMultiHooks(prev, guard))
	} else {
		st.in.SetHooks(guard)
	}
	guard.active = true
	defer func() {
		guard.active = false
		st.in.SetHooks(prev)
	}()

	for i := start; i < len(backing.Elems); i++ {
		if err := body(i, backing.Elems[i]); err != nil {
			return Report{}, err
		}
	}
	rep := Report{
		Op:       op,
		Parallel: guard.violated == "",
		Elements: len(backing.Elems) - start,
	}
	if guard.violated != "" {
		rep.AbortReason = fmt.Sprintf("aborted parallel plan: %s", guard.violated)
	}
	return rep, nil
}

func argAt(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Undefined()
}
