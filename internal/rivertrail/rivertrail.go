// Package rivertrail implements the high-level data-parallel collection
// API the paper recommends (§5.1: "libraries can take a functional
// approach to exposing data parallelism (like RiverTrail did)"), with the
// §5.3 requirement that speculative parallelization "not only ... abort
// when it fails to run a loop in parallel, but also have ways to report to
// the developer the reason for aborting."
//
// Install adds a ParallelArray(arr) constructor to an interpreter. A
// ParallelArray copies its backing elements at construction (value
// semantics, matching River Trail); its mapPar/filterPar/reducePar
// methods delegate to internal/autopar's speculate-then-verify engine:
// a leading slice runs under the purity guard on the main interpreter,
// and when the guard clears it the remainder is dispatched across
// share-nothing worker interpreters (SetWorkers enables this; the
// default of 1 keeps every operation sequential-but-guarded). Guard
// violations, serialization limits, worker faults and misspeculations
// all fall back to sequential semantics, and the reason — which variable
// or property the kernel mutated, what could not cross workers — is
// reported through RiverTrailReport().
package rivertrail

import (
	"repro/internal/autopar"
	"repro/internal/effects"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Report describes the last ParallelArray operation.
type Report struct {
	// Op is "mapPar", "filterPar", "reducePar" or "pipePar".
	Op string
	// Pure is true when the purity guard observed no violation (the
	// §5.1 eligibility signal; an operation can be pure yet still run
	// sequentially — workers disabled, remainder too small, or a
	// serialization abort).
	Pure bool
	// Parallel is true when the operation actually executed across
	// >= 2 worker goroutines and the merge survived every check.
	Parallel bool
	// Workers is the number of goroutines that executed the operation
	// (1 = sequential).
	Workers int
	// Profiled counts elements run under the guard on the main
	// interpreter; Dispatched counts elements executed on the worker
	// pool (0 when sequential).
	Profiled, Dispatched int
	// Misspeculated is true when the Verify shadow run found a
	// divergence and the sequential values won.
	Misspeculated bool
	// AbortReason explains a sequential fallback ("writes captured
	// variable sum", "mutates external object <Object>.x", worker-side
	// speculation aborts, misspeculation, ...).
	AbortReason string
	// Elements processed.
	Elements int
	// Chunks is the work-stealing scheduler's chunk-plan length for the
	// dispatched remainder; Steals counts successful steals (both 0 when
	// nothing dispatched). Steals are timing-dependent telemetry only.
	Chunks, Steals int
	// StaticVerdict is the purity prover's verdict ("proven", "refuted",
	// "unknown") when a static mode was active, "" when the prover never
	// ran. StaticReasons is its machine-readable reason chain.
	StaticVerdict string
	StaticReasons []effects.Reason
	// GuardElided is true when the operation ran with zero Guard hooks
	// on the strength of a Proven verdict.
	GuardElided bool
	// Stages, Batches, BatchSize and Stalls are the streaming telemetry
	// of a pipePar operation that dispatched: stage count, index-range
	// batches streamed, elements per batch, and backpressure stalls
	// summed over every inter-stage edge (all 0 for flat operations and
	// sequential pipelines). StageWorkers[s] is stage s's goroutine
	// count.
	Stages, Batches, BatchSize, Stalls int
	StageWorkers                       []int
	// StageVerdicts[s] is the prover's verdict for stage s of a pipePar
	// operation when a static mode was active (nil otherwise).
	StageVerdicts []string
}

// State carries the API state for one interpreter.
type State struct {
	in   *interp.Interp
	opts autopar.Options
	last Report
}

// Last returns the most recent operation report.
func (s *State) Last() Report { return s.last }

// SetWorkers sets the speculation pool size; < 2 keeps every operation
// sequential (still guarded and reported).
func (s *State) SetWorkers(n int) { s.opts.Workers = n }

// SetOptions replaces the full speculation options (tests and ModeExec
// use this for Verify runs and profile-slice tuning).
func (s *State) SetOptions(o autopar.Options) { s.opts = o }

// Options returns the current speculation options.
func (s *State) Options() autopar.Options { return s.opts }

// Install wires ParallelArray and RiverTrailReport into the interpreter
// and returns the state handle.
func Install(in *interp.Interp) *State {
	st := &State{in: in, opts: autopar.Options{Workers: 1}}

	in.SetGlobal("ParallelArray", value.ObjectVal(value.NewNative("ParallelArray",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			src := argAt(args, 0)
			if !src.IsObject() || !src.Object().IsArray() {
				return value.Undefined(), value.ThrowTypeError("ParallelArray requires an array")
			}
			return st.wrap(src.Object().Elems), nil
		})))

	in.SetGlobal("RiverTrailReport", value.ObjectVal(value.NewNative("RiverTrailReport",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			o := in.NewObject()
			o.Set("op", value.String(st.last.Op))
			o.Set("pure", value.Bool(st.last.Pure))
			o.Set("parallel", value.Bool(st.last.Parallel))
			o.Set("workers", value.Int(st.last.Workers))
			o.Set("profiled", value.Int(st.last.Profiled))
			o.Set("dispatched", value.Int(st.last.Dispatched))
			o.Set("misspeculated", value.Bool(st.last.Misspeculated))
			o.Set("abortReason", value.String(st.last.AbortReason))
			o.Set("elements", value.Int(st.last.Elements))
			o.Set("chunks", value.Int(st.last.Chunks))
			o.Set("steals", value.Int(st.last.Steals))
			o.Set("staticVerdict", value.String(st.last.StaticVerdict))
			o.Set("guardElided", value.Bool(st.last.GuardElided))
			o.Set("stages", value.Int(st.last.Stages))
			o.Set("batches", value.Int(st.last.Batches))
			o.Set("batchSize", value.Int(st.last.BatchSize))
			o.Set("stalls", value.Int(st.last.Stalls))
			verdicts := make([]value.Value, 0, len(st.last.StageVerdicts))
			for _, v := range st.last.StageVerdicts {
				verdicts = append(verdicts, value.String(v))
			}
			o.Set("stageVerdicts", value.ObjectVal(in.NewArray(verdicts...)))
			reasons := make([]value.Value, 0, len(st.last.StaticReasons))
			for _, re := range st.last.StaticReasons {
				ro := in.NewObject()
				ro.Set("code", value.String(re.Code))
				ro.Set("detail", value.String(re.Detail))
				ro.Set("line", value.Int(re.Line))
				reasons = append(reasons, value.ObjectVal(ro))
			}
			o.Set("staticReasons", value.ObjectVal(in.NewArray(reasons...)))
			return value.ObjectVal(o), nil
		})))
	return st
}

// report converts an engine outcome into the JS-visible report.
func report(opts autopar.Options, oc autopar.Outcome) Report {
	r := Report{
		Op:            oc.Op,
		Pure:          oc.Pure,
		Parallel:      oc.Parallel,
		Workers:       oc.Workers,
		Profiled:      oc.Profiled,
		Dispatched:    oc.Dispatched,
		Misspeculated: oc.Misspeculated,
		AbortReason:   oc.AbortReason,
		Elements:      oc.Elements,
		Chunks:        oc.Chunks,
		Steals:        oc.Steals,
		GuardElided:   oc.GuardElided,
	}
	if opts.Static != autopar.StaticOff {
		r.StaticVerdict = oc.Static.Verdict.String()
		r.StaticReasons = oc.Static.Reasons
		for _, rep := range oc.StageStatic {
			r.StageVerdicts = append(r.StageVerdicts, rep.Verdict.String())
		}
	}
	r.Stages = oc.Pipe.Stages
	r.Batches = oc.Pipe.Batches
	r.BatchSize = oc.Pipe.BatchSize
	r.StageWorkers = oc.Pipe.StageWorkers
	for _, s := range oc.Pipe.Stalls {
		r.Stalls += s
	}
	return r
}

// wrap builds a ParallelArray object. The elements are copied at the
// boundary: mutating the source array after construction cannot desync
// length from get/mapPar (the PR-3 value-semantics fix).
func (st *State) wrap(src []value.Value) value.Value {
	return st.wrapOwned(append([]value.Value(nil), src...))
}

// wrapOwned wraps a slice the caller exclusively owns (operation
// results), skipping the defensive copy.
func (st *State) wrapOwned(elems []value.Value) value.Value {
	pa := st.in.NewObject()
	pa.Set("length", value.Int(len(elems)))

	pa.Set("mapPar", value.ObjectVal(value.NewNative("mapPar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			out, oc := autopar.MapSpec(st.in, argAt(args, 0), elems, st.opts)
			st.last = report(st.opts, oc)
			return st.wrapOwned(out), nil
		})))

	pa.Set("filterPar", value.ObjectVal(value.NewNative("filterPar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			keep, oc := autopar.FilterSpec(st.in, argAt(args, 0), elems, st.opts)
			var kept []value.Value
			for i, k := range keep {
				if k {
					kept = append(kept, elems[i])
				}
			}
			st.last = report(st.opts, oc)
			return st.wrapOwned(kept), nil
		})))

	pa.Set("reducePar", value.ObjectVal(value.NewNative("reducePar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			hasInit := len(args) > 1
			if len(elems) == 0 && !hasInit {
				// Match Array.prototype.reduce: an empty reduction with no
				// seed has no answer (the PR-3 empty-reduce fix).
				return value.Undefined(), value.ThrowTypeError("Reduce of empty ParallelArray with no initial value")
			}
			acc, oc := autopar.ReduceSpec(st.in, argAt(args, 0), elems, argAt(args, 1), hasInit, st.opts)
			st.last = report(st.opts, oc)
			return acc, nil
		})))

	pa.Set("pipePar", value.ObjectVal(value.NewNative("pipePar",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			// pipePar(f1, f2, ...) composes the stages element-wise —
			// out[i] = fK(...f1(x, i)..., i), fused element-major order —
			// and streams them as pipeline stages when Options.Pipeline
			// is on. Zero stages would be the identity; require one so a
			// forgotten argument fails loudly like mapPar(undefined).
			if len(args) == 0 {
				return value.Undefined(), value.ThrowTypeError("pipePar requires at least one stage function")
			}
			out, oc := autopar.PipelineSpec(st.in, args, elems, st.opts)
			st.last = report(st.opts, oc)
			return st.wrapOwned(out), nil
		})))

	pa.Set("get", value.ObjectVal(value.NewNative("get",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			f := argAt(args, 0).ToNumber()
			// int(NaN) is platform-dependent in Go; reject before converting.
			if f != f || f < 0 || f >= float64(len(elems)) {
				return value.Undefined(), nil
			}
			return elems[int(f)], nil
		})))

	pa.Set("toArray", value.ObjectVal(value.NewNative("toArray",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			return value.ObjectVal(st.in.NewArray(append([]value.Value{}, elems...)...)), nil
		})))

	return value.ObjectVal(pa)
}

func argAt(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Undefined()
}
