package rivertrail

import (
	"strings"
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

func run(t *testing.T, src string) (*State, *interp.Interp) {
	t.Helper()
	in := interp.New()
	st := Install(in)
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, in
}

func TestMapParPureKernel(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4]);
var out = pa.mapPar(function (x) { return x * x; });
var r = out.toArray().join(",");
var rep = RiverTrailReport();
`)
	if got := in.Global("r").Str(); got != "1,4,9,16" {
		t.Errorf("result = %q", got)
	}
	if !st.Last().Pure {
		t.Errorf("pure kernel not parallel-eligible: %+v", st.Last())
	}
	rep := in.Global("rep").Object()
	if v, _ := rep.Get("pure"); !v.ToBool() {
		t.Errorf("JS-visible report not pure: %v", rep.SortedKeys())
	}
}

func TestMapParImpureKernelAborts(t *testing.T) {
	st, in := run(t, `
var sum = 0;
var pa = ParallelArray([1, 2, 3]);
var out = pa.mapPar(function (x) { sum += x; return x; });
var rep = RiverTrailReport();
`)
	last := st.Last()
	if last.Pure || last.Parallel {
		t.Fatal("impure kernel marked pure/parallel")
	}
	if !strings.Contains(last.AbortReason, "sum") {
		t.Errorf("abort reason %q does not name the variable (§5.3 requires actionable reports)", last.AbortReason)
	}
	// fallback still computes the sequential semantics
	if got := in.Global("sum").Num(); got != 6 {
		t.Errorf("fallback sum = %v, want 6", got)
	}
}

func TestMapParExternalObjectMutationAborts(t *testing.T) {
	st, _ := run(t, `
var stats = {count: 0};
var pa = ParallelArray([1, 2]);
pa.mapPar(function (x) { stats.count++; return x; });
`)
	last := st.Last()
	if last.Pure || last.Parallel {
		t.Fatal("object-mutating kernel marked pure/parallel")
	}
	if !strings.Contains(last.AbortReason, "count") {
		t.Errorf("abort reason %q does not name the property", last.AbortReason)
	}
}

func TestMapParLocalStateAllowed(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3]);
var out = pa.mapPar(function (x) {
  var acc = 0;             // local: fine
  var tmp = {v: x * 2};    // created inside the kernel: fine
  acc = tmp.v + 1;
  return acc;
});
var r = out.toArray().join(",");
`)
	if !st.Last().Pure {
		t.Errorf("kernel with local state aborted: %+v", st.Last())
	}
	if got := in.Global("r").Str(); got != "3,5,7" {
		t.Errorf("r = %q", got)
	}
}

func TestFilterPar(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4, 5, 6]);
var even = pa.filterPar(function (x) { return x % 2 === 0; });
var r = even.toArray().join(",");
`)
	if got := in.Global("r").Str(); got != "2,4,6" {
		t.Errorf("r = %q", got)
	}
	if !st.Last().Pure {
		t.Errorf("pure filter aborted: %+v", st.Last())
	}
}

func TestReducePar(t *testing.T) {
	_, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4]);
var total = pa.reducePar(function (a, b) { return a + b; });
var withInit = pa.reducePar(function (a, b) { return a + b; }, 100);
`)
	if got := in.Global("total").Num(); got != 10 {
		t.Errorf("total = %v", got)
	}
	if got := in.Global("withInit").Num(); got != 110 {
		t.Errorf("withInit = %v", got)
	}
}

func TestChainedOperations(t *testing.T) {
	st, in := run(t, `
var r = ParallelArray([1, 2, 3, 4, 5])
  .mapPar(function (x) { return x * 3; })
  .filterPar(function (x) { return x > 5; })
  .reducePar(function (a, b) { return a + b; }, 0);
`)
	if got := in.Global("r").Num(); got != 6+9+12+15 {
		t.Errorf("r = %v", got)
	}
	if !st.Last().Pure {
		t.Errorf("chain aborted: %+v", st.Last())
	}
}

func TestTypeError(t *testing.T) {
	in := interp.New()
	Install(in)
	err := in.Run(parser.MustParse(`ParallelArray(42);`))
	if err == nil || !strings.Contains(err.Error(), "array") {
		t.Errorf("err = %v", err)
	}
}

func TestKernelExceptionPropagates(t *testing.T) {
	in := interp.New()
	Install(in)
	err := in.Run(parser.MustParse(`
var caught = "";
try {
  ParallelArray([1]).mapPar(function (x) { throw "boom"; });
} catch (e) { caught = e; }
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Global("caught").Str(); got != "boom" {
		t.Errorf("caught = %q", got)
	}
}

func TestGuardRestoresPreviousHooks(t *testing.T) {
	in := interp.New()
	st := Install(in)
	marker := &countingHooks{}
	in.SetHooks(marker)
	if err := in.Run(parser.MustParse(`
var out = ParallelArray([1, 2]).mapPar(function (x) { return x + 1; });
`)); err != nil {
		t.Fatal(err)
	}
	if in.HooksInstalled() != interp.Hooks(marker) {
		t.Error("previous hooks not restored after guarded run")
	}
	if !st.Last().Pure {
		t.Errorf("unexpected abort: %+v", st.Last())
	}
	if marker.calls == 0 {
		t.Error("previous hooks were not chained during the guarded run")
	}
}

type countingHooks struct {
	interp.NopHooks
	calls int
}

func (c *countingHooks) CallEnter(string) { c.calls++ }

// ---- PR-3 regressions: value semantics, empty reduce, speculation ----

// Wrapping must copy the backing elements: mutating the source array
// afterwards used to desync length from get/mapPar.
func TestWrapCopiesBackingArray(t *testing.T) {
	_, in := run(t, `
var arr = [1, 2, 3];
var pa = ParallelArray(arr);
arr.push(99);
arr[0] = -1;
var len = pa.length;
var first = pa.get(0);
var r = pa.mapPar(function (x) { return x * 10; }).toArray().join(",");
var tail = pa.get(3);
`)
	if got := in.Global("len").Num(); got != 3 {
		t.Errorf("length = %v, want 3 (snapshot at wrap)", got)
	}
	if got := in.Global("first").Num(); got != 1 {
		t.Errorf("get(0) = %v, want 1 (value semantics)", got)
	}
	if got := in.Global("r").Str(); got != "10,20,30" {
		t.Errorf("mapPar over snapshot = %q", got)
	}
	if !in.Global("tail").IsUndefined() {
		t.Errorf("get(3) = %v, want undefined", in.Global("tail").Inspect())
	}
}

// reducePar on an empty ParallelArray must throw a TypeError without an
// initial value (like Array.prototype.reduce) and return the seed with
// one.
func TestReduceParEmpty(t *testing.T) {
	_, in := run(t, `
var pa = ParallelArray([]);
var seeded = pa.reducePar(function (a, b) { return a + b; }, 42);
var caught = "";
try {
  pa.reducePar(function (a, b) { return a + b; });
} catch (e) { caught = e.name; }
`)
	if got := in.Global("seeded").Num(); got != 42 {
		t.Errorf("seeded empty reduce = %v, want 42", got)
	}
	if got := in.Global("caught").Str(); got != "TypeError" {
		t.Errorf("empty reduce with no init threw %q, want TypeError", got)
	}
}

// With SetWorkers the speculative engine must actually dispatch a pure
// kernel across >= 2 workers, byte-identical to the sequential run.
func TestMapParSpeculatesAcrossWorkers(t *testing.T) {
	src := `
var out = ParallelArray(input).mapPar(function (x, i) { return x * x + i; });
var r = out.toArray().join(",");
`
	results := map[int]string{}
	var reports = map[int]Report{}
	for _, workers := range []int{1, 2, 4} {
		in := interp.New()
		st := Install(in)
		st.SetWorkers(workers)
		elems := `var input = [`
		for i := 0; i < 64; i++ {
			if i > 0 {
				elems += ","
			}
			elems += "0"
		}
		elems += `];for (var i = 0; i < 64; i++) { input[i] = i + 1; }`
		if err := in.Run(parser.MustParse(elems + src)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results[workers] = in.Global("r").Str()
		reports[workers] = st.Last()
	}
	for _, workers := range []int{2, 4} {
		if results[workers] != results[1] {
			t.Errorf("workers=%d output %q diverges from sequential %q", workers, results[workers], results[1])
		}
		rep := reports[workers]
		if !rep.Parallel || rep.Workers < 2 {
			t.Errorf("workers=%d: report %+v did not execute in parallel", workers, rep)
		}
		if rep.Dispatched == 0 || rep.Profiled == 0 {
			t.Errorf("workers=%d: report %+v missing profile/dispatch split", workers, rep)
		}
	}
	if rep := reports[1]; rep.Workers != 1 || rep.Dispatched != 0 || rep.Parallel {
		t.Errorf("sequential report %+v", rep)
	}
}

// An impure kernel under SetWorkers must fall back sequentially with a
// populated abort reason and exact sequential side effects.
func TestMapParImpureFallsBackWithWorkers(t *testing.T) {
	in := interp.New()
	st := Install(in)
	st.SetWorkers(4)
	if err := in.Run(parser.MustParse(`
var sum = 0;
var input = [];
for (var i = 0; i < 64; i++) { input.push(i + 1); }
var out = ParallelArray(input).mapPar(function (x) { sum += x; return x; });
`)); err != nil {
		t.Fatal(err)
	}
	rep := st.Last()
	if rep.Parallel {
		t.Fatalf("impure kernel reported parallel: %+v", rep)
	}
	if rep.AbortReason == "" || !strings.Contains(rep.AbortReason, "sum") {
		t.Errorf("abort reason %q must name the violation", rep.AbortReason)
	}
	if got := in.Global("sum").Num(); got != 64*65/2 {
		t.Errorf("fallback sum = %v, want %v", got, 64*65/2)
	}
}

// A kernel that throws mid-operation must not leak an active guard, even
// with speculation enabled; later operations still work and report.
func TestGuardUnwindsOnThrowThenNextOpWorks(t *testing.T) {
	in := interp.New()
	st := Install(in)
	st.SetWorkers(4)
	if err := in.Run(parser.MustParse(`
var input = [];
for (var i = 0; i < 64; i++) { input.push(i); }
var caught = "";
try {
  ParallelArray(input).mapPar(function (x, i) { if (i === 50) { throw "late"; } return x; });
} catch (e) { caught = e; }
var unrelated = 0;
unrelated = unrelated + 1;
var r = ParallelArray([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
  .reducePar(function (a, b) { return a + b; }, 0);
`)); err != nil {
		t.Fatal(err)
	}
	if got := in.Global("caught").Str(); got != "late" {
		t.Errorf("caught = %q", got)
	}
	if got := in.Global("r").Num(); got != 78 {
		t.Errorf("post-throw reduce = %v, want 78", got)
	}
	if in.HooksInstalled() != nil {
		t.Error("guard leaked into interpreter hooks")
	}
	if rep := st.Last(); rep.Op != "reducePar" {
		t.Errorf("report not updated after recovery: %+v", rep)
	}
}
