package rivertrail

import (
	"strings"
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

func run(t *testing.T, src string) (*State, *interp.Interp) {
	t.Helper()
	in := interp.New()
	st := Install(in)
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, in
}

func TestMapParPureKernel(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4]);
var out = pa.mapPar(function (x) { return x * x; });
var r = out.toArray().join(",");
var rep = RiverTrailReport();
`)
	if got := in.Global("r").Str(); got != "1,4,9,16" {
		t.Errorf("result = %q", got)
	}
	if !st.Last().Parallel {
		t.Errorf("pure kernel not parallel-eligible: %+v", st.Last())
	}
	rep := in.Global("rep").Object()
	if v, _ := rep.Get("parallel"); !v.ToBool() {
		t.Errorf("JS-visible report not parallel: %v", rep.SortedKeys())
	}
}

func TestMapParImpureKernelAborts(t *testing.T) {
	st, in := run(t, `
var sum = 0;
var pa = ParallelArray([1, 2, 3]);
var out = pa.mapPar(function (x) { sum += x; return x; });
var rep = RiverTrailReport();
`)
	last := st.Last()
	if last.Parallel {
		t.Fatal("impure kernel marked parallel")
	}
	if !strings.Contains(last.AbortReason, "sum") {
		t.Errorf("abort reason %q does not name the variable (§5.3 requires actionable reports)", last.AbortReason)
	}
	// fallback still computes the sequential semantics
	if got := in.Global("sum").Num(); got != 6 {
		t.Errorf("fallback sum = %v, want 6", got)
	}
}

func TestMapParExternalObjectMutationAborts(t *testing.T) {
	st, _ := run(t, `
var stats = {count: 0};
var pa = ParallelArray([1, 2]);
pa.mapPar(function (x) { stats.count++; return x; });
`)
	last := st.Last()
	if last.Parallel {
		t.Fatal("object-mutating kernel marked parallel")
	}
	if !strings.Contains(last.AbortReason, "count") {
		t.Errorf("abort reason %q does not name the property", last.AbortReason)
	}
}

func TestMapParLocalStateAllowed(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3]);
var out = pa.mapPar(function (x) {
  var acc = 0;             // local: fine
  var tmp = {v: x * 2};    // created inside the kernel: fine
  acc = tmp.v + 1;
  return acc;
});
var r = out.toArray().join(",");
`)
	if !st.Last().Parallel {
		t.Errorf("kernel with local state aborted: %+v", st.Last())
	}
	if got := in.Global("r").Str(); got != "3,5,7" {
		t.Errorf("r = %q", got)
	}
}

func TestFilterPar(t *testing.T) {
	st, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4, 5, 6]);
var even = pa.filterPar(function (x) { return x % 2 === 0; });
var r = even.toArray().join(",");
`)
	if got := in.Global("r").Str(); got != "2,4,6" {
		t.Errorf("r = %q", got)
	}
	if !st.Last().Parallel {
		t.Errorf("pure filter aborted: %+v", st.Last())
	}
}

func TestReducePar(t *testing.T) {
	_, in := run(t, `
var pa = ParallelArray([1, 2, 3, 4]);
var total = pa.reducePar(function (a, b) { return a + b; });
var withInit = pa.reducePar(function (a, b) { return a + b; }, 100);
`)
	if got := in.Global("total").Num(); got != 10 {
		t.Errorf("total = %v", got)
	}
	if got := in.Global("withInit").Num(); got != 110 {
		t.Errorf("withInit = %v", got)
	}
}

func TestChainedOperations(t *testing.T) {
	st, in := run(t, `
var r = ParallelArray([1, 2, 3, 4, 5])
  .mapPar(function (x) { return x * 3; })
  .filterPar(function (x) { return x > 5; })
  .reducePar(function (a, b) { return a + b; }, 0);
`)
	if got := in.Global("r").Num(); got != 6+9+12+15 {
		t.Errorf("r = %v", got)
	}
	if !st.Last().Parallel {
		t.Errorf("chain aborted: %+v", st.Last())
	}
}

func TestTypeError(t *testing.T) {
	in := interp.New()
	Install(in)
	err := in.Run(parser.MustParse(`ParallelArray(42);`))
	if err == nil || !strings.Contains(err.Error(), "array") {
		t.Errorf("err = %v", err)
	}
}

func TestKernelExceptionPropagates(t *testing.T) {
	in := interp.New()
	Install(in)
	err := in.Run(parser.MustParse(`
var caught = "";
try {
  ParallelArray([1]).mapPar(function (x) { throw "boom"; });
} catch (e) { caught = e; }
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Global("caught").Str(); got != "boom" {
		t.Errorf("caught = %q", got)
	}
}

func TestGuardRestoresPreviousHooks(t *testing.T) {
	in := interp.New()
	st := Install(in)
	marker := &countingHooks{}
	in.SetHooks(marker)
	if err := in.Run(parser.MustParse(`
var out = ParallelArray([1, 2]).mapPar(function (x) { return x + 1; });
`)); err != nil {
		t.Fatal(err)
	}
	if in.HooksInstalled() != interp.Hooks(marker) {
		t.Error("previous hooks not restored after guarded run")
	}
	if !st.Last().Parallel {
		t.Errorf("unexpected abort: %+v", st.Last())
	}
	if marker.calls == 0 {
		t.Error("previous hooks were not chained during the guarded run")
	}
}

type countingHooks struct {
	interp.NopHooks
	calls int
}

func (c *countingHooks) CallEnter(string) { c.calls++ }
