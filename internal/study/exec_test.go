package study

// ModeExec validation: every convertible workload kernel must execute
// byte-identically at every worker count, with the autopar Verify shadow
// cross-check armed — the misspeculation-fallback safety contract, under
// -race in CI.

import (
	"testing"

	"repro/internal/autopar"
	"repro/internal/workloads"
)

func TestExecKernelsByteIdenticalAcrossWorkers(t *testing.T) {
	workloads.SetScale(workloads.QuickScale)
	defer workloads.SetScale(workloads.FullScale)

	for _, ek := range workloads.ExecKernels() {
		ek := ek
		t.Run(ek.App, func(t *testing.T) {
			n := workloads.CurrentScale().N(ek.N)
			baseSig, baseRep, _, err := execOnce(ek, n, 7, autopar.Options{Workers: 1})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			if !baseRep.Pure {
				t.Fatalf("convertible kernel not pure sequentially: %+v", baseRep)
			}
			for _, w := range []int{2, 4} {
				sig, rep, _, err := execOnce(ek, n, 7, autopar.Options{Workers: w, Verify: true})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if sig != baseSig {
					t.Errorf("workers=%d output diverged from sequential", w)
				}
				if !rep.Parallel || rep.Workers < 2 {
					t.Errorf("workers=%d did not speculate: %+v", w, rep)
				}
				if rep.AbortReason != "" {
					t.Errorf("workers=%d aborted: %s", w, rep.AbortReason)
				}
			}
		})
	}
}

func TestRunExecAllReportsSpeedupAndBounds(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	defer workloads.SetScale(workloads.FullScale)

	rows, counts, err := RunExecAll(7, []int{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("normalized counts = %v, want [1 2]", counts)
	}
	if len(rows) != len(workloads.ExecKernels()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(workloads.ExecKernels()))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: outputs not byte-identical", r.App)
		}
		if !r.Parallel {
			t.Errorf("%s: speculation did not engage: %s", r.App, r.AbortReason)
		}
		if r.WallMS[1] <= 0 || r.WallMS[2] <= 0 {
			t.Errorf("%s: missing wall-clock measurements: %+v", r.App, r.WallMS)
		}
		if _, ok := r.Speedup[2]; !ok {
			t.Errorf("%s: missing speedup at 2 workers", r.App)
		}
		if r.Amdahl16 <= 0 {
			t.Errorf("%s: missing ModeDeep Amdahl bound", r.App)
		}
	}
}

func TestModeExecString(t *testing.T) {
	if ModeExec.String() != "exec" {
		t.Errorf("ModeExec.String() = %q", ModeExec.String())
	}
}
