package study

import (
	"testing"

	"repro/internal/workloads"
)

// TestFortunaBaselineShape asserts the §6 contrast: the task-level limit
// study finds parallel slack in event-driven apps with independent events
// while frame-chained simulations stay near-sequential — speedup from
// tasks, not loops, which is exactly why the paper argues the earlier
// study underestimates data-parallel opportunity.
func TestFortunaBaselineShape(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 4})
	rows, err := RunFortunaAll(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 12 Table 1 apps + the LegacyPage control
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]FortunaRow{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Tasks == 0 {
			t.Errorf("%s: no tasks collected", r.App)
		}
		if r.Limit < 0.99 {
			t.Errorf("%s: limit %.2f < 1", r.App, r.Limit)
		}
	}
	// Frame-chained simulations: every frame reads state the previous
	// frame wrote → near-sequential task graphs.
	for _, app := range []string{"fluidSim", "Tear-able Cloth", "Realtime Raytracing"} {
		if l := byApp[app].Limit; l > 1.6 {
			t.Errorf("%s: task-level limit %.2f, expected near-sequential (frames chain)", app, l)
		}
	}
	// The §6 contrast: the page-centric control (independent widgets) has
	// real task-level slack, like the sites Fortuna et al. measured.
	if l := byApp["LegacyPage"].Limit; l < 2.0 {
		t.Errorf("LegacyPage: task-level limit %.2f, want >= 2 (independent widget tasks)", l)
	}
}

// TestFortunaGraphTasksMatchDispatches sanity-checks the collector wiring.
func TestFortunaGraphTasksMatchDispatches(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 4})
	wl, err := workloads.ByName("Harmony")
	if err != nil {
		t.Fatal(err)
	}
	g, err := RunFortuna(wl, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Harmony dispatches one task per stroke.
	if len(g.Tasks) < 5 {
		t.Errorf("tasks = %d, want one per stroke", len(g.Tasks))
	}
	if g.TotalWork() <= 0 || g.CriticalPath() <= 0 {
		t.Error("degenerate graph timing")
	}
}
