// External test package so the byte-identity assertion can render
// through internal/report (which imports study).
package study_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/study"
	"repro/internal/workloads"
)

// render serializes results exactly as cmd/casestudy prints them, so
// "byte-identical output" means the user-visible artifact, not just the
// in-memory structs.
func render(results []*study.AppResult) string {
	var sb strings.Builder
	sb.WriteString(report.Table2(study.Table2(results)))
	sb.WriteString(report.Table3(study.Table3(results)))
	sb.WriteString(report.Amdahl(results))
	return sb.String()
}

// TestRunAllDeterministicAcrossWorkers is the orchestrator's core
// contract: the concurrent study renders byte-identical to the
// sequential baseline at every worker count.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	seq, err := study.RunAll(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no results")
	}
	want := render(seq)
	for _, workers := range []int{2, 4, 8} {
		par, err := study.RunAll(7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := render(par); got != want {
			t.Errorf("workers=%d: rendered output differs from sequential baseline", workers)
		}
		if !reflect.DeepEqual(summarize(seq), summarize(par)) {
			t.Errorf("workers=%d: merged results differ structurally", workers)
		}
	}
}

// summarize projects AppResults to comparable scalars (Workload holds a
// Drive closure, which reflect.DeepEqual cannot compare).
func summarize(results []*study.AppResult) []map[string]any {
	out := make([]map[string]any, len(results))
	for i, r := range results {
		out[i] = map[string]any{
			"name":      r.Workload.Name,
			"table2":    r.Table2,
			"nests":     r.Nests,
			"poly":      r.PolymorphicVars,
			"amdahl":    r.AmdahlEasy,
			"amdahl16":  r.Amdahl16,
			"breakable": r.AmdahlBreakable,
		}
	}
	return out
}

// TestOrchestrateTelemetry checks worker resolution, per-job timing and
// wall-clock reporting over a small custom workload set.
func TestOrchestrateTelemetry(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	wls := []*workloads.Workload{workloads.Histogram(), workloads.LegacyPage()}
	rep, err := study.Orchestrate(context.Background(), study.Options{
		Seed: 7, Workers: 999, Workloads: wls,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2*len(wls) {
		t.Errorf("workers = %d, want clamped to %d jobs", rep.Workers, 2*len(wls))
	}
	if len(rep.Timings) != 2*len(wls) {
		t.Fatalf("timings = %d, want %d", len(rep.Timings), 2*len(wls))
	}
	for i, jt := range rep.Timings {
		wantApp := wls[i/2].Name
		wantMode := study.Mode(i % 2)
		if jt.App != wantApp || jt.Mode != wantMode {
			t.Errorf("timing[%d] = %s/%s, want %s/%s", i, jt.App, jt.Mode, wantApp, wantMode)
		}
		if jt.Err != nil {
			t.Errorf("timing[%d]: unexpected error %v", i, jt.Err)
		}
		if jt.Wall <= 0 {
			t.Errorf("timing[%d]: no wall-clock recorded", i)
		}
	}
	if rep.Wall <= 0 {
		t.Error("no total wall-clock recorded")
	}
	if len(rep.Results) != len(wls) {
		t.Fatalf("results = %d, want %d", len(rep.Results), len(wls))
	}
	for i, r := range rep.Results {
		if r.Workload.Name != wls[i].Name {
			t.Errorf("results[%d] = %s, want input order %s", i, r.Workload.Name, wls[i].Name)
		}
		if r.Table2.TotalS <= 0 {
			t.Errorf("%s: light-mode Table 2 not merged in", r.Workload.Name)
		}
	}
}

// TestOrchestrateCancellation: a cancelled context stops the run and the
// error path reports it; the orchestrator must not hang.
func TestOrchestrateCancellation(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})

	// Pre-cancelled: every job is skipped.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := study.Orchestrate(ctx, study.Options{Seed: 7, Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("pre-cancelled: %d results, want 0", len(rep.Results))
	}
	for _, jt := range rep.Timings {
		if !errors.Is(jt.Err, context.Canceled) {
			t.Errorf("job %s/%s: err = %v, want context.Canceled", jt.App, jt.Mode, jt.Err)
		}
	}

	// Cancelled mid-run: the run ends early with the cancellation joined
	// into the aggregate error.
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := study.Orchestrate(ctx, study.Options{Seed: 7, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}

// TestOrchestrateErrorAggregation: failures do not abort the run — every
// job executes, all errors surface, healthy apps still produce results.
func TestOrchestrateErrorAggregation(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	broken1 := &workloads.Workload{Name: "broken-parse", Source: "syntax error ("}
	broken2 := &workloads.Workload{Name: "broken-throw", Source: "nope();"}
	rep, err := study.Orchestrate(context.Background(), study.Options{
		Seed: 7, Workers: 3,
		Workloads: []*workloads.Workload{broken1, workloads.Histogram(), broken2},
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	for _, name := range []string{"broken-parse", "broken-throw"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("aggregated error does not mention %s: %v", name, err)
		}
	}
	if len(rep.Results) != 1 || rep.Results[0].Workload.Name != "Histogram" {
		t.Fatalf("want the healthy app's result to survive, got %d results", len(rep.Results))
	}
	failed := 0
	for _, jt := range rep.Timings {
		if jt.Err != nil {
			failed++
		}
	}
	if failed != 4 {
		t.Errorf("failed jobs = %d, want 4 (two modes × two broken apps)", failed)
	}
}
