package study

import "repro/internal/js/interp"

// interpMux combines analyzers into one hook set.
func interpMux(hooks ...interp.Hooks) interp.Hooks {
	return interp.NewMultiHooks(hooks...)
}
