package study

// ModeExec closes the paper's analyze → execute loop: where ModeDeep
// *predicts* speedup (Amdahl bounds over nests the dependence analysis
// clears), ModeExec *measures* it. Each ParallelArray-convertible hot
// loop (workloads.ExecKernels) runs through the real rivertrail/autopar
// speculative engine at a ladder of worker counts, the outputs are
// checked byte-identical across counts, and the measured speedup is
// reported next to the app's ModeDeep 16-core bound.
//
// Exec jobs deliberately run one at a time (unlike the light/deep jobs
// the orchestrator interleaves): they measure wall clock, and sharing
// the machine with sibling jobs would corrupt the numbers.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/autopar"
	"repro/internal/effects"
	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/rivertrail"
	"repro/internal/workloads"
)

// ExecWorkerCounts is the default measurement ladder.
var ExecWorkerCounts = []int{1, 2, 4, 8}

// ExecRow is one convertible hot loop measured both ways.
type ExecRow struct {
	App  string
	Loop string
	// N is the scaled element count executed.
	N int
	// WallMS maps worker count to wall-clock milliseconds.
	WallMS map[int]float64
	// Speedup maps worker count to sequential-time / parallel-time.
	Speedup map[int]float64
	// Parallel is true when the speculative engine actually dispatched
	// at every count >= 2.
	Parallel bool
	// AbortReason is the first §5.3 reason observed when it did not.
	AbortReason string
	// Identical is true when outputs were byte-identical across all
	// counts (the speculation safety contract).
	Identical bool
	// Amdahl16 is the app's ModeDeep 16-core bound, for side-by-side
	// comparison with the measured numbers.
	Amdahl16 float64
	// Chunks and Steals map worker count to the work-stealing
	// scheduler's telemetry for the dispatched remainder: the chunk-plan
	// length (identical at every count — the determinism contract) and
	// the number of successful steals (timing-dependent; how much
	// rebalancing the run needed).
	Chunks, Steals map[int]int
	// StaticVerdict is the purity prover's verdict for the kernel
	// ("proven", "refuted", "unknown") — computed for every row, even
	// when the engine runs with -static=off, so the static column can
	// sit next to the dynamic one. StaticReason is the first reason of
	// a non-proven chain.
	StaticVerdict string
	StaticReason  string
	// GuardElided is true when every multi-worker run dispatched with
	// zero Guard hooks (requires an engine static mode).
	GuardElided bool
}

// BestSpeedup returns the highest measured speedup and its worker count.
func (r ExecRow) BestSpeedup() (float64, int) {
	best, at := 0.0, 1
	for w, s := range r.Speedup {
		if s > best || (s == best && w < at) {
			best, at = s, w
		}
	}
	return best, at
}

// RunExecAll measures every convertible kernel at each worker count
// (nil = ExecWorkerCounts; a leading 1 is forced so speedups have a
// sequential baseline) and attaches the ModeDeep Amdahl bounds. The
// returned counts are the normalized ladder actually measured — report
// renderers must use it rather than re-deriving the columns.
func RunExecAll(seed uint64, counts []int) ([]ExecRow, []int, error) {
	counts = normalizeCounts(counts)
	amdahl := make(map[string]float64)
	var rows []ExecRow
	for _, ek := range workloads.ExecKernels() {
		row, err := runExecKernel(ek, seed, counts)
		if err != nil {
			return rows, counts, fmt.Errorf("study: exec %s/%s: %w", ek.App, ek.Loop, err)
		}
		bound, err := amdahlForApp(ek.App, seed, amdahl)
		if err != nil {
			return rows, counts, fmt.Errorf("study: exec %s amdahl: %w", ek.App, err)
		}
		row.Amdahl16 = bound
		rows = append(rows, row)
	}
	return rows, counts, nil
}

func normalizeCounts(counts []int) []int {
	if len(counts) == 0 {
		counts = ExecWorkerCounts
	}
	seen := map[int]bool{}
	out := []int{1}
	seen[1] = true
	for _, c := range counts {
		if c > 1 && !seen[c] {
			out = append(out, c)
			seen[c] = true
		}
	}
	sort.Ints(out)
	return out
}

// execTuning holds the scheduler knobs (cmd/casestudy -minchunk and
// -chunkdiv) ModeExec threads into every speculative operation. Knobs
// shape scheduling granularity only, never output values — but MinChunk
// and ChunkDivisor move chunk boundaries, so a byte-identity comparison
// must hold them fixed (RunExecAll does: one setting per run).
var execTuning = struct {
	minChunk, chunkDivisor int
	treeWalk               bool
	static                 autopar.StaticMode
}{}

// SetExecTuning configures the ModeExec scheduler knobs (0 = sched
// defaults). Call before RunExecAll, like workloads.SetScale.
func SetExecTuning(minChunk, chunkDivisor int) {
	execTuning.minChunk, execTuning.chunkDivisor = minChunk, chunkDivisor
}

// SetExecEngine selects the evaluator for ModeExec runs: compiled
// (default) or the tree walk (treeWalk = true). Outputs are identical
// either way — the differential conformance suite holds the engines to
// byte-identical behavior — so this only moves wall-clock numbers; it
// exists for the before/after ladder (EXPERIMENTS.md) and bisection.
func SetExecEngine(treeWalk bool) { execTuning.treeWalk = treeWalk }

// SetExecStatic selects the engine's static mode for ModeExec runs
// (cmd/casestudy -static). Off still *reports* the prover's verdict per
// row — the column is analysis output, independent of whether the
// engine acts on it.
func SetExecStatic(m autopar.StaticMode) { execTuning.static = m }

// execOptions builds the speculation options for one measured count.
func execOptions(workers int) autopar.Options {
	return autopar.Options{
		Workers:      workers,
		MinChunk:     execTuning.minChunk,
		ChunkDivisor: execTuning.chunkDivisor,
		TreeWalk:     execTuning.treeWalk,
		Static:       execTuning.static,
	}
}

// runExecKernel measures one kernel across the count ladder.
func runExecKernel(ek workloads.ExecKernel, seed uint64, counts []int) (ExecRow, error) {
	n := workloads.CurrentScale().N(ek.N)
	row := ExecRow{
		App: ek.App, Loop: ek.Loop, N: n,
		WallMS:  make(map[int]float64, len(counts)),
		Speedup: make(map[int]float64, len(counts)),
		Chunks:  make(map[int]int, len(counts)),
		Steals:  make(map[int]int, len(counts)),
	}
	// The static column is analysis output: computed for every row from
	// the kernel's own source, whatever the engine's -static mode.
	if rep, err := effects.AnalyzeKernel(ek.Prelude, ek.Elemental); err == nil {
		row.StaticVerdict = rep.Verdict.String()
		row.StaticReason = rep.First()
	} else {
		row.StaticVerdict = effects.Unknown.String()
		row.StaticReason = err.Error()
	}
	sigs := make(map[int]string, len(counts))
	hasMulti, allParallel, allElided := false, true, true
	for _, w := range counts {
		sig, rep, ms, err := execOnce(ek, n, seed, execOptions(w))
		if err != nil {
			return row, err
		}
		row.WallMS[w] = ms
		row.Chunks[w] = rep.Chunks
		row.Steals[w] = rep.Steals
		sigs[w] = sig
		if w < 2 {
			continue
		}
		hasMulti = true
		if !rep.GuardElided {
			allElided = false
		}
		// Report.Parallel means "actually dispatched across >= 2
		// workers"; a pure kernel whose remainder fell below the
		// dispatch threshold reports false here too.
		if !rep.Parallel {
			allParallel = false
			if row.AbortReason == "" {
				row.AbortReason = rep.AbortReason
			}
			if row.AbortReason == "" {
				row.AbortReason = fmt.Sprintf("speculation did not engage at %d workers (n=%d below dispatch threshold)", w, n)
			}
		}
	}
	row.Parallel = hasMulti && allParallel
	row.GuardElided = hasMulti && allElided
	if !hasMulti && row.AbortReason == "" {
		row.AbortReason = "only sequential counts measured"
	}
	row.Identical = true
	for _, w := range counts {
		if sigs[w] != sigs[1] {
			row.Identical = false
			row.Parallel = false
			if row.AbortReason == "" {
				row.AbortReason = fmt.Sprintf("output at %d workers diverged from sequential", w)
			}
		}
	}
	base := row.WallMS[1]
	for _, w := range counts {
		if row.WallMS[w] > 0 {
			row.Speedup[w] = base / row.WallMS[w]
		}
	}
	return row, nil
}

// execOnce runs one kernel once through the real ParallelArray API and
// returns the output signature, the engine report, and wall-clock ms.
// Only the mapPar itself is timed: prelude execution, ParallelArray
// construction and the O(n) signature join are identical sequential
// work at every worker count and would otherwise drag every speedup
// toward 1.0.
func execOnce(ek workloads.ExecKernel, n int, seed uint64, opts autopar.Options) (string, rivertrail.Report, float64, error) {
	// interp.Load: the ladder re-parses the same three programs once per
	// worker count; the process-wide cache hands back shared read-only
	// ASTs instead (the interpreter never mutates what it executes).
	setupProg, err := interp.Load(ek.Prelude + "\nvar __pa = ParallelArray(__rawInput);\n")
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	opProg, err := interp.Load("var __out = __pa.mapPar(" + ek.Elemental + ");\n")
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	sigProg, err := interp.Load(`var __sig = __out.toArray().join(",");` + "\n")
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	in := interp.New(interp.WithSeed(seed))
	if !opts.TreeWalk {
		// The main interpreter runs the profile slice and any sequential
		// fallback; measuring it on a different engine than the workers
		// would skew the ladder.
		in.SetCompile(true)
	}
	st := rivertrail.Install(in)
	st.SetOptions(opts)
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = value.Number(ek.Input(i))
	}
	in.SetGlobal("__rawInput", value.ObjectVal(in.NewArray(elems...)))
	if err := in.Run(setupProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}

	t0 := time.Now()
	if err := in.Run(opProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000

	if err := in.Run(sigProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	sig := in.Global("__sig").Str()
	if sig == "" {
		return "", rivertrail.Report{}, 0, fmt.Errorf("kernel produced no output")
	}
	return sig, st.Last(), ms, nil
}

// amdahlForApp resolves the ModeDeep 16-core bound for an app, caching
// the (expensive) deep run per app.
func amdahlForApp(app string, seed uint64, cache map[string]float64) (float64, error) {
	if v, ok := cache[app]; ok {
		return v, nil
	}
	var wl *workloads.Workload
	if app == "Histogram" {
		wl = workloads.Histogram()
	} else {
		var err error
		wl, err = workloads.ByName(app)
		if err != nil {
			return 0, err
		}
	}
	res, err := runDeepOnly(wl, seed)
	if err != nil {
		return 0, err
	}
	cache[app] = res.Amdahl16
	return res.Amdahl16, nil
}

// ExecSummary condenses rows for logs: "5/7 loops parallel, best 3.1x".
func ExecSummary(rows []ExecRow) string {
	par := 0
	best := 0.0
	for _, r := range rows {
		if r.Parallel {
			par++
		}
		if s, _ := r.BestSpeedup(); s > best {
			best = s
		}
	}
	return fmt.Sprintf("%d/%d convertible loops executed in parallel, best measured speedup %.2fx",
		par, len(rows), best)
}
