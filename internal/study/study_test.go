package study

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// The study is expensive; run it once per test binary and share.
var (
	studyOnce    sync.Once
	studyResults []*AppResult
	studyErr     error
)

func runStudy(t *testing.T) []*AppResult {
	t.Helper()
	studyOnce.Do(func() {
		workloads.SetScale(workloads.Scale{Div: 2})
		studyResults, studyErr = RunAll(7, 0)
	})
	if studyErr != nil {
		t.Fatalf("study: %v", studyErr)
	}
	return studyResults
}

func byApp(t *testing.T, results []*AppResult, name string) *AppResult {
	t.Helper()
	for _, r := range results {
		if r.Workload.Name == name {
			return r
		}
	}
	t.Fatalf("no result for %q", name)
	return nil
}

// TestTable2Shape asserts the load-bearing findings of Table 2: which apps
// are compute-intensive, which are idle-dominated, and where the Gecko
// sampling anomaly (Active < In Loops) appears.
func TestTable2Shape(t *testing.T) {
	results := runStudy(t)
	if len(results) != 12 {
		t.Fatalf("want 12 apps, got %d", len(results))
	}

	intensive := 0
	for _, r := range results {
		t2 := r.Table2
		if t2.TotalS <= 0 {
			t.Errorf("%s: no total time", t2.Name)
		}
		if t2.ComputeIntensive() {
			intensive++
		}
		if r.Workload.ExpectComputeIntensive && !t2.ComputeIntensive() {
			t.Errorf("%s: expected compute-intensive (script %.2fs of %.2fs)", t2.Name, t2.ScriptS, t2.TotalS)
		}
		if r.Workload.ExpectActiveBelowLoops && !t2.StrongAnomaly() {
			t.Errorf("%s: expected Active (%.2f) well below In-Loops (%.2f)", t2.Name, t2.ActiveS, t2.LoopsS)
		}
		// The sampler can never report more than real script time.
		if t2.ActiveS > t2.ScriptS*1.001 {
			t.Errorf("%s: sampled active %.2f exceeds script %.2f", t2.Name, t2.ActiveS, t2.ScriptS)
		}
	}
	// Paper: "at least half of the applications can be considered
	// computationally intensive".
	if intensive < 6 {
		t.Errorf("only %d of 12 apps compute-intensive, want >= 6", intensive)
	}

	// Interactive apps are idle-dominated.
	for _, name := range []string{"Harmony", "Ace", "MyScript"} {
		t2 := byApp(t, results, name).Table2
		if t2.ScriptS/t2.TotalS > 0.10 {
			t.Errorf("%s: script %.2fs of %.2fs — should be idle-dominated", name, t2.ScriptS, t2.TotalS)
		}
	}
}

// TestTable3Shape asserts the per-app Table 3 judgments the paper reports.
func TestTable3Shape(t *testing.T) {
	results := runStudy(t)

	type expect struct {
		app        string
		domAccess  bool            // any nest touches DOM/canvas
		parAtMost  core.Difficulty // easiest nest's parallelization difficulty
		depAtMost  core.Difficulty // easiest nest's dependence difficulty
		allParHard bool            // every nest ≥ hard to parallelize
	}
	cases := []expect{
		{app: "HAAR.js", domAccess: false, parAtMost: core.Easy, depAtMost: core.VeryEasy},
		{app: "Tear-able Cloth", domAccess: false, parAtMost: core.Medium, depAtMost: core.Medium},
		{app: "CamanJS", domAccess: false, parAtMost: core.Easy, depAtMost: core.Easy},
		{app: "fluidSim", domAccess: false, parAtMost: core.Easy, depAtMost: core.Easy},
		{app: "Harmony", domAccess: true, parAtMost: core.VeryHard, depAtMost: core.Easy, allParHard: true},
		{app: "Ace", domAccess: true, parAtMost: core.VeryHard, depAtMost: core.VeryHard, allParHard: true},
		{app: "MyScript", domAccess: true, parAtMost: core.VeryHard, depAtMost: core.Hard, allParHard: true},
		{app: "Realtime Raytracing", domAccess: false, parAtMost: core.Easy, depAtMost: core.VeryEasy},
		{app: "Normal Mapping", domAccess: false, parAtMost: core.Easy, depAtMost: core.VeryEasy},
		{app: "sigma.js", domAccess: true, parAtMost: core.Hard, depAtMost: core.Hard, allParHard: true},
		{app: "processing.js", domAccess: true, parAtMost: core.Medium, depAtMost: core.VeryEasy},
		{app: "D3.js", domAccess: true, parAtMost: core.Hard, depAtMost: core.Hard, allParHard: true},
	}
	for _, c := range cases {
		r := byApp(t, results, c.app)
		if len(r.Nests) == 0 {
			t.Errorf("%s: no nests reported", c.app)
			continue
		}
		anyDOM := false
		easiestPar := core.VeryHard
		easiestDep := core.VeryHard
		allHard := true
		for _, n := range r.Nests {
			if n.DOMAccess {
				anyDOM = true
			}
			if n.ParDiff < easiestPar {
				easiestPar = n.ParDiff
			}
			if n.DepDiff < easiestDep {
				easiestDep = n.DepDiff
			}
			if n.ParDiff < core.Hard {
				allHard = false
			}
		}
		if anyDOM != c.domAccess {
			t.Errorf("%s: DOM access = %v, want %v", c.app, anyDOM, c.domAccess)
		}
		if easiestPar > c.parAtMost {
			t.Errorf("%s: easiest nest par difficulty %s, want <= %s", c.app, easiestPar, c.parAtMost)
		}
		if easiestDep > c.depAtMost {
			t.Errorf("%s: easiest nest dep difficulty %s, want <= %s", c.app, easiestDep, c.depAtMost)
		}
		if c.allParHard && !allHard {
			t.Errorf("%s: expected every nest >= hard to parallelize", c.app)
		}
	}
}

// TestThreeQuartersParallelizable asserts the paper's headline: "About
// three fourths of the inspected loop nests have some intrinsic
// parallelism".
func TestThreeQuartersParallelizable(t *testing.T) {
	results := runStudy(t)
	total, parallel := 0, 0
	for _, r := range results {
		for i := range r.Nests {
			total++
			if r.Nests[i].Parallelizable() {
				parallel++
			}
		}
	}
	if total < 12 {
		t.Fatalf("only %d nests inspected", total)
	}
	frac := float64(parallel) / float64(total)
	if frac < 0.60 {
		t.Errorf("parallelizable nests: %d/%d = %.0f%%, paper reports ~75%%", parallel, total, 100*frac)
	}
}

// TestAmdahlFiveApps asserts the paper's Amdahl claim: speedup bound > 3×
// for 5 of the 12 applications counting easy-to-parallelize loops.
func TestAmdahlFiveApps(t *testing.T) {
	results := runStudy(t)
	over3 := 0
	for _, r := range results {
		if r.AmdahlBreakable > 3 {
			over3++
		}
	}
	if over3 < 5 {
		t.Errorf("Amdahl bound >3x for %d apps, paper reports 5", over3)
	}
	// And the other side: several apps offer essentially nothing.
	none := 0
	for _, r := range results {
		if r.AmdahlBreakable < 1.2 {
			none++
		}
	}
	if none < 3 {
		t.Errorf("only %d apps with no exploitable bound; paper reports ~5 hard/very hard", none)
	}
}

// TestNoPolymorphicVariablesInHotLoops asserts §4.2: "Our manual
// inspection did not reveal any polymorphic variables within the
// computationally-intensive loops."
func TestNoPolymorphicVariablesInHotLoops(t *testing.T) {
	results := runStudy(t)
	for _, r := range results {
		if len(r.PolymorphicVars) != 0 {
			t.Errorf("%s: polymorphic variables found: %v", r.Workload.Name, r.PolymorphicVars)
		}
	}
}

// TestDivergenceJudgments asserts the qualitative divergence column for
// the clearest paper rows.
func TestDivergenceJudgments(t *testing.T) {
	results := runStudy(t)

	// Raytracing: "variable depth recursion" → yes.
	rt := byApp(t, results, "Realtime Raytracing")
	if rt.Nests[0].Divergence != core.DivYes {
		t.Errorf("raytracing divergence = %s, want yes", rt.Nests[0].Divergence)
	}
	// Ace: loops execute roughly one iteration → yes.
	ace := byApp(t, results, "Ace")
	for _, n := range ace.Nests {
		if n.Divergence != core.DivYes {
			t.Errorf("Ace nest %s divergence = %s, want yes", n.Label, n.Divergence)
		}
		if n.TripMean > 2.5 {
			t.Errorf("Ace nest %s trips %.1f, want ~1", n.Label, n.TripMean)
		}
	}
	// Harmony: straight-line brush loops → none.
	h := byApp(t, results, "Harmony")
	for _, n := range h.Nests {
		if n.Divergence != core.DivNone {
			t.Errorf("Harmony nest %s divergence = %s, want none", n.Label, n.Divergence)
		}
	}
	// fluidSim: no divergence in the solver sweep.
	fl := byApp(t, results, "fluidSim")
	if fl.Nests[0].Divergence != core.DivNone {
		t.Errorf("fluidSim divergence = %s, want none", fl.Nests[0].Divergence)
	}
	// fluidSim's row must be the promoted inner nest.
	if fl.Nests[0].PromotedFrom == 0 {
		t.Errorf("fluidSim row should be a promoted inner nest")
	}
	// Normal mapping: little.
	nm := byApp(t, results, "Normal Mapping")
	if nm.Nests[0].Divergence == core.DivYes {
		t.Errorf("normal mapping divergence = yes, want little/none")
	}
}

// TestMyScriptTripShape asserts the distinctive 4±2 trip count.
func TestMyScriptTripShape(t *testing.T) {
	results := runStudy(t)
	ms := byApp(t, results, "MyScript")
	n := ms.Nests[0]
	if n.TripMean < 2 || n.TripMean > 8 {
		t.Errorf("MyScript trips %.1f, want ~4", n.TripMean)
	}
	if n.TripStd <= 0 {
		t.Errorf("MyScript trip stddev = 0, want variance (paper: 4±2)")
	}
}
