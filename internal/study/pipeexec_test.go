package study

// Pipeline-ladder validation: the image workload must stream
// byte-identically at every worker count and against the chained-mapPar
// baseline, the detector must find the produce → consume pairs in the
// raw-loop form, and the stage verdicts must all be proven (the
// workload is written inside the speculation contract on purpose).

import (
	"testing"

	"repro/internal/autopar"
	"repro/internal/workloads"
)

func TestRunPipeAllByteIdenticalAndDetected(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	defer workloads.SetScale(workloads.FullScale)

	rows, counts, err := RunPipeAll(7, []int{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("normalized counts = %v, want [1 2]", counts)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if !r.Identical {
		t.Errorf("outputs not byte-identical: %s", r.AbortReason)
	}
	if !r.Parallel {
		t.Errorf("pipeline did not stream: %s", r.AbortReason)
	}
	if r.Stages != 3 || r.Batches == 0 || r.BatchSize == 0 {
		t.Errorf("missing streaming telemetry: %+v", r)
	}
	if len(r.StageWorkers) != 3 {
		t.Errorf("stage worker split = %v, want 3 stages", r.StageWorkers)
	}
	if r.PairsFound != r.PairsWant {
		t.Errorf("detector found %d pairs, want %d", r.PairsFound, r.PairsWant)
	}
	if len(r.StageVerdicts) != 3 {
		t.Fatalf("stage verdicts = %v, want 3", r.StageVerdicts)
	}
	for s, v := range r.StageVerdicts {
		if v != "proven" {
			t.Errorf("stage %d verdict = %q, want proven", s, v)
		}
	}
	if r.PipeMS[1] <= 0 || r.PipeMS[2] <= 0 || r.ChainMS[1] <= 0 || r.ChainMS[2] <= 0 {
		t.Errorf("missing wall-clock measurements: pipe %v chain %v", r.PipeMS, r.ChainMS)
	}
}

func TestPipeOnceStaticAssistElidesGuards(t *testing.T) {
	workloads.SetScale(workloads.Scale{Div: 8})
	defer workloads.SetScale(workloads.FullScale)

	pk := workloads.ImagePipe()
	n := workloads.CurrentScale().N(pk.N)
	opts := autopar.Options{Workers: 2, Pipeline: true, Static: autopar.StaticAssist}
	sig, rep, _, err := pipeOnce(pk, n, 7, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GuardElided || !rep.Parallel {
		t.Fatalf("proven stages did not stream guard-free: %+v", rep)
	}
	seqSig, _, _, err := pipeOnce(pk, n, 7, autopar.Options{Workers: 1, Pipeline: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	if sig != seqSig {
		t.Fatal("guard-elided pipeline diverged from sequential")
	}
}
