package study

// The pipeline ladder: ModeExec's streaming counterpart. The image
// workload (workloads.ImagePipe) is a decode → filter → encode chain
// whose stage loops are sequentially dependent — the shape flat mapPar
// cannot merge — so each worker count is measured two ways: pipePar
// (stages streamed over taskgraph.RunPipeline) and the chained-mapPar
// baseline (each stage a full parallel pass with a barrier between
// passes). Outputs must be byte-identical across both strategies and
// every count; the core.PipePairDetector is run over the raw loop-pair
// form of the same program to confirm the chain is detectable, closing
// the detect → schedule → verify loop.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/autopar"
	"repro/internal/core"
	"repro/internal/effects"
	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/rivertrail"
	"repro/internal/workloads"
)

// PipeRow is the pipeline workload measured across the worker ladder.
type PipeRow struct {
	App, Loop string
	// N is the scaled element count; Stages the pipeline depth.
	N, Stages int
	// PipeMS and ChainMS map worker count to wall-clock milliseconds for
	// the pipelined run and the chained-mapPar baseline.
	PipeMS, ChainMS map[int]float64
	// Speedup maps worker count to sequential-pipePar-time / pipePar-time.
	Speedup map[int]float64
	// Parallel is true when the pipeline actually streamed (>= 2
	// goroutines) at every count >= 2; AbortReason is the first §5.3
	// reason observed when it did not.
	Parallel    bool
	AbortReason string
	// Identical is true when outputs were byte-identical across every
	// count and both strategies.
	Identical bool
	// Batches, BatchSize and Stalls are the streaming telemetry at the
	// ladder's top count: index-range batches streamed, elements per
	// batch, and backpressure stalls summed over the inter-stage edges.
	// StageWorkers is the top count's goroutine split across stages.
	Batches, BatchSize, Stalls int
	StageWorkers               []int
	// StageVerdicts[s] is the purity prover's verdict for stage s —
	// computed for every row from the stage's own source, whatever the
	// engine's -static mode (the ModeExec static-column convention).
	StageVerdicts []string
	// PairsFound is the number of produce → consume pairs the
	// core.PipePairDetector reported on the raw loop-pair form;
	// PairsWant is the workload's expected count.
	PairsFound, PairsWant int
}

// RunPipeAll measures the pipeline workload at each worker count
// (nil = ExecWorkerCounts; a leading 1 is forced). The returned counts
// are the normalized ladder actually measured.
func RunPipeAll(seed uint64, counts []int) ([]PipeRow, []int, error) {
	counts = normalizeCounts(counts)
	row, err := runPipeKernel(workloads.ImagePipe(), seed, counts)
	if err != nil {
		return nil, counts, fmt.Errorf("study: pipeline %s/%s: %w", row.App, row.Loop, err)
	}
	return []PipeRow{row}, counts, nil
}

// pipeTuning holds the streaming knobs (cmd/casestudy -pipebatch and
// -pipedepth). Like the scheduler knobs they shape granularity only,
// never output values, but a byte-identity comparison holds them fixed.
var pipeTuning struct {
	batch, depth int
}

// SetPipeTuning configures the pipeline batch size and channel depth
// (0 = taskgraph defaults). Call before RunPipeAll.
func SetPipeTuning(batch, depth int) {
	pipeTuning.batch, pipeTuning.depth = batch, depth
}

// pipeOptions builds the speculation options for one measured count:
// the ModeExec tuning knobs plus the pipeline toggle.
func pipeOptions(workers int) autopar.Options {
	o := execOptions(workers)
	o.Pipeline = true
	o.PipeBatch = pipeTuning.batch
	o.PipeDepth = pipeTuning.depth
	return o
}

func runPipeKernel(pk workloads.PipeKernel, seed uint64, counts []int) (PipeRow, error) {
	n := workloads.CurrentScale().N(pk.N)
	row := PipeRow{
		App: pk.App, Loop: pk.Loop, N: n, Stages: len(pk.Stages),
		PipeMS:  make(map[int]float64, len(counts)),
		ChainMS: make(map[int]float64, len(counts)),
		Speedup: make(map[int]float64, len(counts)),
	}

	// Detector verification on the raw loop-pair form. A small n keeps
	// the interpreted run cheap; the access-set answer is size-blind.
	found, err := detectPipePairs(pk, 48)
	if err != nil {
		return row, fmt.Errorf("pair detection: %w", err)
	}
	row.PairsFound, row.PairsWant = found, pk.WantPairs

	pipeSigs := make(map[int]string, len(counts))
	chainSigs := make(map[int]string, len(counts))
	top := counts[len(counts)-1]
	hasMulti, allParallel := false, true
	for _, w := range counts {
		sig, rep, ms, err := pipeOnce(pk, n, seed, pipeOptions(w), true)
		if err != nil {
			return row, fmt.Errorf("pipePar workers=%d: %w", w, err)
		}
		row.PipeMS[w] = ms
		pipeSigs[w] = sig
		if w == top {
			row.Batches = rep.Batches
			row.BatchSize = rep.BatchSize
			row.Stalls = rep.Stalls
			row.StageWorkers = rep.StageWorkers
		}
		if len(row.StageVerdicts) == 0 && len(rep.StageVerdicts) > 0 {
			row.StageVerdicts = rep.StageVerdicts
		}
		if w >= 2 {
			hasMulti = true
			if !rep.Parallel {
				allParallel = false
				if row.AbortReason == "" {
					row.AbortReason = rep.AbortReason
				}
				if row.AbortReason == "" {
					row.AbortReason = fmt.Sprintf("pipeline did not stream at %d workers (n=%d below dispatch threshold)", w, n)
				}
			}
		}

		csig, _, cms, err := pipeOnce(pk, n, seed, execOptions(w), false)
		if err != nil {
			return row, fmt.Errorf("mapPar chain workers=%d: %w", w, err)
		}
		row.ChainMS[w] = cms
		chainSigs[w] = csig
	}
	// The static column is analysis output, computed per stage even when
	// the engine ran with -static=off and reported no verdicts.
	if len(row.StageVerdicts) == 0 {
		row.StageVerdicts = staticStageVerdicts(pk)
	}
	row.Parallel = hasMulti && allParallel
	if !hasMulti && row.AbortReason == "" {
		row.AbortReason = "only sequential counts measured"
	}
	row.Identical = true
	for _, w := range counts {
		if pipeSigs[w] != pipeSigs[1] || chainSigs[w] != pipeSigs[1] {
			row.Identical = false
			row.Parallel = false
			if row.AbortReason == "" {
				row.AbortReason = fmt.Sprintf("output at %d workers diverged", w)
			}
		}
	}
	base := row.PipeMS[1]
	for _, w := range counts {
		if row.PipeMS[w] > 0 {
			row.Speedup[w] = base / row.PipeMS[w]
		}
	}
	return row, nil
}

// pipeOnce runs the workload once through the real ParallelArray API —
// pipelined (pipePar) or as the chained-mapPar baseline — and returns
// the output signature, the engine report, and wall-clock ms. Only the
// operation itself is timed (the execOnce convention).
func pipeOnce(pk workloads.PipeKernel, n int, seed uint64, opts autopar.Options, pipelined bool) (string, rivertrail.Report, float64, error) {
	var setup strings.Builder
	setup.WriteString(pk.Prelude)
	setup.WriteString("\n")
	for s, st := range pk.Stages {
		fmt.Fprintf(&setup, "var __f%d = %s;\n", s+1, st.Elemental)
	}
	setup.WriteString("var __pa = ParallelArray(__rawInput);\n")
	var op string
	if pipelined {
		args := make([]string, len(pk.Stages))
		for s := range pk.Stages {
			args[s] = fmt.Sprintf("__f%d", s+1)
		}
		op = "var __out = __pa.pipePar(" + strings.Join(args, ", ") + ");\n"
	} else {
		op = "var __out = __pa"
		for s := range pk.Stages {
			op += fmt.Sprintf(".mapPar(__f%d)", s+1)
		}
		op += ";\n"
	}
	setupProg, err := interp.Load(setup.String())
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	opProg, err := interp.Load(op)
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	sigProg, err := interp.Load(`var __sig = __out.toArray().join(",");` + "\n")
	if err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	in := interp.New(interp.WithSeed(seed))
	if !opts.TreeWalk {
		in.SetCompile(true)
	}
	st := rivertrail.Install(in)
	st.SetOptions(opts)
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = value.Number(pk.Input(i))
	}
	in.SetGlobal("__rawInput", value.ObjectVal(in.NewArray(elems...)))
	if err := in.Run(setupProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}

	t0 := time.Now()
	if err := in.Run(opProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000

	if err := in.Run(sigProg); err != nil {
		return "", rivertrail.Report{}, 0, err
	}
	sig := in.Global("__sig").Str()
	if sig == "" {
		return "", rivertrail.Report{}, 0, fmt.Errorf("pipeline produced no output")
	}
	return sig, st.Last(), ms, nil
}

// detectPipePairs runs the workload's raw loop-pair form under the
// PipePairDetector and returns how many produce → consume pairs it saw.
func detectPipePairs(pk workloads.PipeKernel, n int) (int, error) {
	prog, err := interp.Load(pk.PairProgram(n))
	if err != nil {
		return 0, err
	}
	in := interp.New()
	d := core.NewPipePairDetector()
	in.SetHooks(d)
	if err := in.Run(prog); err != nil {
		return 0, err
	}
	return len(d.Pairs()), nil
}

// staticStageVerdicts runs the prover over each stage source (the
// -static=off path, where the engine reports no verdicts itself).
func staticStageVerdicts(pk workloads.PipeKernel) []string {
	out := make([]string, len(pk.Stages))
	for s, st := range pk.Stages {
		if rep, err := effects.AnalyzeKernel(pk.Prelude, st.Elemental); err == nil {
			out[s] = rep.Verdict.String()
		} else {
			out[s] = effects.Unknown.String()
		}
	}
	return out
}

// PipeSummary condenses the pipeline ladder for logs.
func PipeSummary(rows []PipeRow) string {
	if len(rows) == 0 {
		return "no pipeline rows"
	}
	r := rows[0]
	best, at := 0.0, 1
	for w, s := range r.Speedup {
		if s > best || (s == best && w < at) {
			best, at = s, w
		}
	}
	return fmt.Sprintf("%d-stage pipeline streamed %d batches, best measured speedup %.2fx@%d",
		r.Stages, r.Batches, best, at)
}
