package study

// This file is the concurrent case-study scheduler. The paper runs each
// Table 1 workload through the staged JS-CERES modes one after another;
// here the (workload × analysis-mode) grid becomes a pool of independent
// jobs — share-nothing interpreter instances per job, exactly the model
// internal/parallel uses for loop iterations — so the whole study scales
// with cores while producing output byte-identical to the sequential run.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/workloads"
)

// Mode selects which instrumentation stage a job runs.
type Mode int

const (
	// ModeLight is the §3.1 lightweight profile that fills Table 2.
	ModeLight Mode = iota
	// ModeDeep is the §3.2 loop profile + §3.3 dependence analysis that
	// fills Table 3 and the Amdahl bounds.
	ModeDeep
	// ModeExec is the §5.1/§5.3 speculative-execution stage: the
	// ParallelArray-convertible hot loops run through internal/autopar
	// both ways and measured speedup is reported next to the ModeDeep
	// Amdahl bound. Exec jobs are wall-clock measurements, so RunExecAll
	// runs them one at a time instead of on the orchestrator pool.
	ModeExec
)

func (m Mode) String() string {
	switch m {
	case ModeLight:
		return "light"
	case ModeDeep:
		return "deep"
	case ModeExec:
		return "exec"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Job is one unit of orchestrator work: one workload under one mode.
type Job struct {
	Workload *workloads.Workload
	Mode     Mode
}

// JobTiming records the wall-clock cost and outcome of one job.
type JobTiming struct {
	App  string
	Mode Mode
	Wall time.Duration
	Err  error
}

// Options configures Orchestrate.
type Options struct {
	// Seed feeds every job's deterministic interpreter.
	Seed uint64
	// Workers is the pool size; <= 0 means GOMAXPROCS, 1 is sequential.
	Workers int
	// Workloads defaults to workloads.All() (Table 1 order).
	Workloads []*workloads.Workload
}

// RunReport is the orchestrator outcome: merged per-app results plus the
// scheduling telemetry the -workers wall-clock report prints.
type RunReport struct {
	// Results holds one AppResult per workload whose jobs all succeeded,
	// in input (Table 1) order — independent of scheduling.
	Results []*AppResult
	// Timings has one entry per job in submission order (light before
	// deep for each app).
	Timings []JobTiming
	// Workers is the resolved pool size.
	Workers int
	// Wall is the end-to-end orchestration time.
	Wall time.Duration
}

// Orchestrate runs every (workload × mode) job on a worker pool and
// merges the results deterministically. Jobs are independent: each gets
// fresh interpreter, parser and analyzer instances, so the merge in input
// order makes concurrent output identical to the sequential baseline.
//
// Job failures do not abort the run: every job still executes (unless ctx
// is cancelled), failures are recorded per job, and the joined error
// lists all of them while Results keeps the apps that succeeded.
func Orchestrate(ctx context.Context, opts Options) (*RunReport, error) {
	wls := opts.Workloads
	if wls == nil {
		wls = workloads.All()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make([]Job, 0, 2*len(wls))
	for _, wl := range wls {
		jobs = append(jobs, Job{wl, ModeLight}, Job{wl, ModeDeep})
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Per-job output slots: jobs[2*wi] is wls[wi] light, jobs[2*wi+1] deep.
	t2s := make([]Table2Row, len(wls))
	deeps := make([]*AppResult, len(wls))
	timings := make([]JobTiming, len(jobs))

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range idx {
				job := jobs[ji]
				t0 := time.Now()
				err := ctx.Err()
				if err == nil {
					switch job.Mode {
					case ModeLight:
						t2s[ji/2], err = RunLight(job.Workload, opts.Seed)
					case ModeDeep:
						deeps[ji/2], err = runDeepOnly(job.Workload, opts.Seed)
					}
				}
				if err != nil {
					err = fmt.Errorf("study: %s/%s: %w", job.Workload.Name, job.Mode, err)
				}
				timings[ji] = JobTiming{App: job.Workload.Name, Mode: job.Mode, Wall: time.Since(t0), Err: err}
			}
		}()
	}
	for ji := range jobs {
		idx <- ji
	}
	close(idx)
	wg.Wait()

	rep := &RunReport{Timings: timings, Workers: workers, Wall: time.Since(start)}
	var errs []error
	for wi := range wls {
		lightErr := timings[2*wi].Err
		deepErr := timings[2*wi+1].Err
		if lightErr != nil {
			errs = append(errs, lightErr)
		}
		if deepErr != nil {
			errs = append(errs, deepErr)
		}
		if lightErr != nil || deepErr != nil {
			continue
		}
		res := deeps[wi]
		res.Table2 = t2s[wi]
		rep.Results = append(rep.Results, res)
	}
	if len(errs) > 0 {
		return rep, errors.Join(errs...)
	}
	return rep, nil
}

// RunAll runs the full case study over every Table 1 workload on a pool
// of `workers` goroutines (<= 0 = GOMAXPROCS, 1 = sequential). The merged
// results are identical for every worker count.
func RunAll(seed uint64, workers int) ([]*AppResult, error) {
	rep, err := Orchestrate(context.Background(), Options{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}
