package study

// This file is the concurrent case-study scheduler. The paper runs each
// Table 1 workload through the staged JS-CERES modes one after another;
// here the (workload × analysis-mode) grid becomes a pool of independent
// jobs — share-nothing interpreter instances per job, exactly the model
// internal/parallel uses for loop iterations — so the whole study scales
// with cores while producing output byte-identical to the sequential run.
//
// Scheduling goes through internal/sched at job granularity (a unit
// chunk plan): deep jobs cost an order of magnitude more than light
// ones and the spread across apps is wide, so work stealing — not a
// static job split — is what keeps the pool busy to the last job. Job
// results land in index-addressed slots and merge in input order, which
// is why the schedule never shows in the output.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/workloads"
)

// Mode selects which instrumentation stage a job runs.
type Mode int

const (
	// ModeLight is the §3.1 lightweight profile that fills Table 2.
	ModeLight Mode = iota
	// ModeDeep is the §3.2 loop profile + §3.3 dependence analysis that
	// fills Table 3 and the Amdahl bounds.
	ModeDeep
	// ModeExec is the §5.1/§5.3 speculative-execution stage: the
	// ParallelArray-convertible hot loops run through internal/autopar
	// both ways and measured speedup is reported next to the ModeDeep
	// Amdahl bound. Exec jobs are wall-clock measurements, so RunExecAll
	// runs them one at a time instead of on the orchestrator pool.
	ModeExec
)

func (m Mode) String() string {
	switch m {
	case ModeLight:
		return "light"
	case ModeDeep:
		return "deep"
	case ModeExec:
		return "exec"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Job is one unit of orchestrator work: one workload under one mode.
type Job struct {
	Workload *workloads.Workload
	Mode     Mode
}

// JobTiming records the wall-clock cost and outcome of one job.
type JobTiming struct {
	App  string
	Mode Mode
	Wall time.Duration
	Err  error
}

// Options configures Orchestrate.
type Options struct {
	// Seed feeds every job's deterministic interpreter.
	Seed uint64
	// Workers is the pool size; <= 0 means GOMAXPROCS, 1 is sequential.
	Workers int
	// Workloads defaults to workloads.All() (Table 1 order).
	Workloads []*workloads.Workload
}

// RunReport is the orchestrator outcome: merged per-app results plus the
// scheduling telemetry the -workers wall-clock report prints.
type RunReport struct {
	// Results holds one AppResult per workload whose jobs all succeeded,
	// in input (Table 1) order — independent of scheduling.
	Results []*AppResult
	// Timings has one entry per job in submission order (light before
	// deep for each app).
	Timings []JobTiming
	// Workers is the resolved pool size.
	Workers int
	// Wall is the end-to-end orchestration time.
	Wall time.Duration
	// Sched is the job scheduler's telemetry (chunk and steal counters).
	// Steals are timing-dependent; they feed the -timing report, never
	// the deterministic tables.
	Sched sched.Stats
}

// Orchestrate runs every (workload × mode) job on a worker pool and
// merges the results deterministically. Jobs are independent: each gets
// fresh interpreter, parser and analyzer instances, so the merge in input
// order makes concurrent output identical to the sequential baseline.
//
// Job failures do not abort the run: every job still executes (unless ctx
// is cancelled), failures are recorded per job, and the joined error
// lists all of them while Results keeps the apps that succeeded.
func Orchestrate(ctx context.Context, opts Options) (*RunReport, error) {
	wls := opts.Workloads
	if wls == nil {
		wls = workloads.All()
	}
	jobs := make([]Job, 0, 2*len(wls))
	for _, wl := range wls {
		jobs = append(jobs, Job{wl, ModeLight}, Job{wl, ModeDeep})
	}

	// Per-job output slots: jobs[2*wi] is wls[wi] light, jobs[2*wi+1] deep.
	// Index-addressed writes + input-order merge = the schedule never
	// shows in the output.
	t2s := make([]Table2Row, len(wls))
	deeps := make([]*AppResult, len(wls))
	timings := make([]JobTiming, len(jobs))

	start := time.Now()
	// One chunk per job: jobs are coarse (whole instrumented app runs),
	// so stealing rebalances at job granularity. Job errors are recorded
	// per slot, never returned to the scheduler — a broken app must not
	// cancel its siblings (error aggregation, contract 3 in DESIGN.md).
	// The study grid is batch work: nobody's page load waits on it.
	stats, _ := sched.RunPlan(sched.UnitPlan(len(jobs)), sched.Options{
		Workers: opts.Workers,
		Seed:    opts.Seed,
		Class:   sched.ClassBatch,
	}, func(w, ci, lo, hi int) error {
		for ji := lo; ji < hi; ji++ {
			job := jobs[ji]
			t0 := time.Now()
			err := ctx.Err()
			if err == nil {
				switch job.Mode {
				case ModeLight:
					t2s[ji/2], err = RunLight(job.Workload, opts.Seed)
				case ModeDeep:
					deeps[ji/2], err = runDeepOnly(job.Workload, opts.Seed)
				}
			}
			if err != nil {
				err = fmt.Errorf("study: %s/%s: %w", job.Workload.Name, job.Mode, err)
			}
			timings[ji] = JobTiming{App: job.Workload.Name, Mode: job.Mode, Wall: time.Since(t0), Err: err}
		}
		return nil
	})

	rep := &RunReport{Timings: timings, Workers: stats.Workers, Wall: time.Since(start), Sched: stats}
	var errs []error
	for wi := range wls {
		lightErr := timings[2*wi].Err
		deepErr := timings[2*wi+1].Err
		if lightErr != nil {
			errs = append(errs, lightErr)
		}
		if deepErr != nil {
			errs = append(errs, deepErr)
		}
		if lightErr != nil || deepErr != nil {
			continue
		}
		res := deeps[wi]
		res.Table2 = t2s[wi]
		rep.Results = append(rep.Results, res)
	}
	if len(errs) > 0 {
		return rep, errors.Join(errs...)
	}
	return rep, nil
}

// RunAll runs the full case study over every Table 1 workload on a pool
// of `workers` goroutines (<= 0 = GOMAXPROCS, 1 = sequential). The merged
// results are identical for every worker count.
func RunAll(seed uint64, workers int) ([]*AppResult, error) {
	rep, err := Orchestrate(context.Background(), Options{Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}
