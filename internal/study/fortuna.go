package study

import (
	"repro/internal/browser"
	"repro/internal/taskgraph"
	"repro/internal/workloads"
)

// RunFortuna runs a workload under the task-graph collector, reproducing
// the Fortuna et al. limit-study baseline the paper positions itself
// against (§6): how much speedup is available from independent event-loop
// tasks, as opposed to loop iterations.
func RunFortuna(wl *workloads.Workload, seed uint64) (*taskgraph.Graph, error) {
	in := workloads.NewInterp(seed)
	col := taskgraph.NewCollector(in)
	in.SetHooks(col)
	_, err := workloads.RunWith(wl, in, func(w *browser.Window) {
		w.OnTask = func(label string, begin bool) {
			if begin {
				col.BeginTask(label)
			} else {
				col.EndTask()
			}
		}
	})
	if err != nil {
		return nil, err
	}
	col.EndTask()
	return col.Graph(), nil
}

// FortunaRow is one application's task-level limit result.
type FortunaRow struct {
	App    string
	Tasks  int
	Limit  float64
	WorkMS float64
	CritMS float64
}

// RunFortunaAll computes the baseline for every Table 1 workload plus the
// LegacyPage control: a page-centric site with independent widgets, the
// kind of workload where Fortuna et al. found their task-level speedups.
func RunFortunaAll(seed uint64) ([]FortunaRow, error) {
	apps := append(workloads.All(), workloads.LegacyPage())
	var out []FortunaRow
	for _, wl := range apps {
		g, err := RunFortuna(wl, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, FortunaRow{
			App:    wl.Name,
			Tasks:  len(g.Tasks),
			Limit:  g.SpeedupLimit(),
			WorkMS: float64(g.TotalWork()) / 1e6,
			CritMS: float64(g.CriticalPath()) / 1e6,
		})
	}
	return out, nil
}
