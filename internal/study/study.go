// Package study orchestrates the full case-study pipeline of §3–§4: it
// runs each Table 1 workload under the staged JS-CERES instrumentation
// modes and regenerates Table 2 (running time), Table 3 (loop-nest
// inspection) and the §4.2 findings (polymorphism, Amdahl bounds), plus
// the §5 ModeExec stage that measures speculative execution.
//
// Concurrency/determinism contract: Orchestrate schedules the
// (workload × analysis-mode) grid through internal/sched's work-stealing
// pool at job granularity. Jobs share no mutable state — each builds its
// own interpreter, parser and analyzers from (workload, seed) — their
// results land in index-addressed slots, and the merge happens in input
// (Table 1) order, so rendered output is byte-identical at every worker
// count; steal/chunk telemetry is reported separately (RunReport.Sched)
// and never feeds the tables. Job failures aggregate instead of
// cancelling siblings. ModeExec runs are wall-clock measurements and
// therefore execute one at a time, never on the shared pool.
package study

import (
	"repro/internal/core"
	"repro/internal/gecko"
	"repro/internal/js/ast"
	"repro/internal/workloads"
)

// Table2Row is one row of Table 2: total, active (Gecko-sampled) and
// in-loop virtual seconds for one application.
type Table2Row struct {
	Name    string
	TotalS  float64
	ActiveS float64
	LoopsS  float64

	// ScriptS is ground truth script time (not in the paper's table; the
	// sampler is compared against it in tests).
	ScriptS float64

	// Paper values for side-by-side reporting.
	PaperTotalS, PaperActiveS, PaperLoopsS float64
}

// ComputeIntensive applies the paper's criterion: the CPU is active for a
// large portion of the running time.
func (r Table2Row) ComputeIntensive() bool {
	return r.TotalS > 0 && r.ScriptS/r.TotalS >= 0.25
}

// ActiveBelowLoops reports the §3.1 sampling anomaly for this app.
func (r Table2Row) ActiveBelowLoops() bool { return r.ActiveS < r.LoopsS }

// StrongAnomaly reports a clear instance of the anomaly (sampled active
// time under ¾ of loop time), the condition the Table 2 tests assert.
func (r Table2Row) StrongAnomaly() bool { return r.ActiveS < 0.75*r.LoopsS }

// Table3Row is one row of Table 3 plus its owning application.
type Table3Row struct {
	App string
	core.NestReport
}

// AppResult bundles everything measured for one workload.
type AppResult struct {
	Workload *workloads.Workload
	Table2   Table2Row
	Nests    []core.NestReport
	// PolymorphicVars from the dependence run (§4.2: expected empty in
	// hot code).
	PolymorphicVars []string
	// AmdahlEasy is the infinite-core speedup bound counting only nests
	// with parallelization difficulty ≤ easy (the paper's ">3× for 5 of
	// 12" claim).
	AmdahlEasy float64
	// Amdahl16 is the 16-core bound over the same nests.
	Amdahl16 float64
	// AmdahlBreakable widens the bound to nests with parallelization
	// difficulty ≤ medium (dependences breakable with modest effort).
	AmdahlBreakable float64
}

// RunLight executes the workload in lightweight-profiling mode (§3.1)
// with the Gecko-style sampler attached, filling a Table2Row.
func RunLight(wl *workloads.Workload, seed uint64) (Table2Row, error) {
	in := workloads.NewInterp(seed)
	light := core.NewLightProfiler(in)
	sampler := gecko.NewSampler(in)
	// The virtual step cost (1µs) runs ~5× slower than a JIT-ed engine, so
	// the 1ms Gecko sampling window scales to 5ms of virtual time.
	sampler.Window = 5 * 1_000_000
	in.SetHooks(interpMux(light, sampler))
	if _, err := workloads.Run(wl, in); err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Name:         wl.Name,
		TotalS:       seconds(light.TotalTime()),
		ActiveS:      seconds(sampler.ActiveTime()),
		LoopsS:       seconds(light.InLoopTime()),
		ScriptS:      seconds(in.ScriptTime()),
		PaperTotalS:  wl.PaperTotalS,
		PaperActiveS: wl.PaperActiveS,
		PaperLoopsS:  wl.PaperLoopsS,
	}, nil
}

// RunDeep executes the workload with loop profiling (§3.2) and dependence
// analysis (§3.3) enabled and classifies its loop nests (Table 3).
func RunDeep(wl *workloads.Workload, seed uint64) (*AppResult, error) {
	// Stage 1: light profile for Table 2.
	t2, err := RunLight(wl, seed)
	if err != nil {
		return nil, err
	}
	res, err := runDeepOnly(wl, seed)
	if err != nil {
		return nil, err
	}
	res.Table2 = t2
	return res, nil
}

// runDeepOnly is the deep half of RunDeep — stages 2+3 without the light
// profile, so the orchestrator can schedule the two as independent jobs.
// The returned AppResult has a zero Table2; the caller merges it in.
func runDeepOnly(wl *workloads.Workload, seed uint64) (*AppResult, error) {
	// Stage 2+3: loop profile + dependence analysis in one run (the modes
	// are separate in the paper to control overhead; virtual time makes
	// them composable here because instrumentation cost is invisible to
	// the virtual clock).
	in := workloads.NewInterp(seed)
	prog, err := workloads.Parse(wl)
	if err != nil {
		return nil, err
	}
	lp := core.NewLoopProfiler(in)
	dep := core.NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(interpMux(lp, dep))
	if _, err := workloads.Run(wl, in); err != nil {
		return nil, err
	}

	nests := core.ClassifyNests(prog, lp, dep, core.DefaultClassifyOptions())
	// Keep the nests covering the top two-thirds of loop time (≥4 rows
	// like the paper's per-app selections).
	nests = TopNests(nests, 0.80, 4)

	res := &AppResult{
		Workload:        wl,
		Nests:           nests,
		PolymorphicVars: dep.PolymorphicVars(),
	}
	scriptNS := in.ScriptTime()
	easy := func(n *core.NestReport) bool { return n.ParDiff <= core.Easy }
	breakable := func(n *core.NestReport) bool { return n.ParDiff <= core.Medium }
	res.AmdahlEasy = core.AmdahlBound(nests, scriptNS, easy)
	res.Amdahl16 = core.AmdahlBoundCores(nests, scriptNS, 16, easy)
	res.AmdahlBreakable = core.AmdahlBound(nests, scriptNS, breakable)
	return res, nil
}

// TopNests keeps rows (already time-sorted) until cumulative loop-time
// coverage reaches frac, with at most maxRows.
func TopNests(nests []core.NestReport, frac float64, maxRows int) []core.NestReport {
	var cum float64
	out := make([]core.NestReport, 0, maxRows)
	for _, n := range nests {
		if len(out) >= maxRows {
			break
		}
		out = append(out, n)
		cum += n.PctLoop
		if cum >= 100*frac {
			break
		}
	}
	return out
}

// Table2 extracts Table 2 rows from results.
func Table2(results []*AppResult) []Table2Row {
	out := make([]Table2Row, len(results))
	for i, r := range results {
		out[i] = r.Table2
	}
	return out
}

// Table3 flattens per-app nest rows in Table 1 order.
func Table3(results []*AppResult) []Table3Row {
	var out []Table3Row
	for _, r := range results {
		for _, n := range r.Nests {
			out = append(out, Table3Row{App: r.Workload.Name, NestReport: n})
		}
	}
	return out
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }
