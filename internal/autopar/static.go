package autopar

// Static-assisted speculation: the internal/effects purity prover runs
// over the elemental function and its interpreted callees *before* any
// speculative work is spent, against the function's real closure
// environment (so a helper resolves through the scope chain it will
// actually use, and an ambient name counts as the builtin only while
// the main interpreter's binding is pristine).
//
//   - Proven: the engine elides the runtime Guard and the profile slice
//     entirely — workers are still share-nothing interpreters, but no
//     hook fires on any write. Soundness backstop: buildPlan's
//     serialization checks (ambient-pristine, crossability, reserved
//     names) still run, and any worker fault falls back to sequential
//     re-execution, which is semantically exact with or without a
//     guard.
//   - Refuted: dispatch is refused before profiling; the whole
//     operation runs sequentially (still guarded, so the *dynamic*
//     purity column keeps its own verdict — console output, for one,
//     refutes statically but never trips the write guard).
//   - Unknown: the speculate-then-verify path is unchanged; under
//     StaticStrict the engine refuses to dispatch instead.

import (
	"fmt"

	"repro/internal/effects"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// StaticMode selects how much the engine trusts the static prover.
type StaticMode int

const (
	// StaticOff (the default) never runs the prover: every dispatch is
	// speculative and guarded, exactly the pre-prover behavior.
	StaticOff StaticMode = iota
	// StaticAssist proves first: Proven kernels dispatch guard-free
	// with no profile slice, Refuted kernels refuse dispatch early,
	// Unknown kernels keep the speculative path.
	StaticAssist
	// StaticStrict dispatches only Proven kernels; Unknown is treated
	// like Refuted (sequential, with the reason chain in the outcome).
	StaticStrict
)

func (m StaticMode) String() string {
	switch m {
	case StaticAssist:
		return "assist"
	case StaticStrict:
		return "strict"
	}
	return "off"
}

// ParseStaticMode parses the -static flag spelling.
func ParseStaticMode(s string) (StaticMode, error) {
	switch s {
	case "", "off":
		return StaticOff, nil
	case "assist":
		return StaticAssist, nil
	case "strict":
		return StaticStrict, nil
	}
	return StaticOff, fmt.Errorf("unknown static mode %q (want off, assist or strict)", s)
}

// AnalyzeStatic runs the purity prover on an interpreted function value,
// resolving its free names against the closure environment the function
// will actually execute in.
func AnalyzeStatic(in *interp.Interp, fn value.Value) effects.Report {
	if !fn.IsCallable() || fn.Object().Fn == nil {
		return effects.Report{Reasons: []effects.Reason{{
			Code: "not-a-function", Detail: "elemental is not a function",
		}}}
	}
	o := fn.Object()
	if o.Fn.Native != nil || o.Fn.Decl == nil {
		return effects.Report{Reasons: []effects.Reason{{
			Code: "native-elemental", Detail: "elemental " + displayName(o) + " is native; its effects are opaque",
		}}}
	}
	lit := o.Fn.Decl.(*ast.FuncLit)
	return effects.AnalyzeFunc(lit, envResolver(in, o))
}

// envResolver builds the prover's name resolver for one interpreted
// function: ambient builtins stay ambient only while pristine, captured
// interpreted functions resolve recursively with *their own* closure
// environment, everything else degrades to data or unknown.
func envResolver(in *interp.Interp, fn *value.Object) effects.Resolver {
	env, _ := fn.Fn.Env.(*interp.Scope)
	return func(name string) effects.Callee {
		var b *interp.Binding
		if env != nil {
			b = env.Lookup(name)
		} else {
			b = in.Globals.Lookup(name)
		}
		if ambient[name] && b == in.Globals.Lookup(name) && in.GlobalIsPristine(name) {
			return effects.Callee{Kind: effects.CalleeAmbient}
		}
		if b == nil {
			return effects.Callee{Kind: effects.CalleeUnknown}
		}
		v := b.V
		if !v.IsObject() {
			return effects.Callee{Kind: effects.CalleeData}
		}
		o := v.Object()
		if o.Fn == nil {
			return effects.Callee{Kind: effects.CalleeData}
		}
		if o.Fn.Native != nil || o.Fn.Decl == nil {
			return effects.Callee{Kind: effects.CalleeUnknown}
		}
		lit, ok := o.Fn.Decl.(*ast.FuncLit)
		if !ok {
			return effects.Callee{Kind: effects.CalleeUnknown}
		}
		return effects.Callee{Kind: effects.CalleeFunc, Fn: lit, Resolve: envResolver(in, o)}
	}
}
