package autopar

// guardparity_test.go pins the compiled evaluator (interp.SetCompile)
// to the tree walk where it matters most for this package: the purity
// guards and hook mux that speculation outcomes ride on. If compiled
// execution fired hooks in a different order, attributed a write to a
// different binding, or leaked a guard across a throw, speculation
// could silently diverge between engines — these tests fail first.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// loadEngine is load() with an engine toggle for the main interpreter.
func loadEngine(t *testing.T, src string, compiled bool) (*interp.Interp, value.Value) {
	t.Helper()
	in := interp.New()
	in.SetCompile(compiled)
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	fn := in.Global("f")
	if !fn.IsCallable() {
		t.Fatal("source does not define f")
	}
	return in, fn
}

// workerIndexRE strips the timing-dependent part of a worker-side
// abort reason: *which* worker's chunk reached the violating element
// first is a scheduler race, not an engine property.
var workerIndexRE = regexp.MustCompile(`worker \d+`)

// outcomesEqual compares the engine-independent Outcome fields (Chunks
// and Steals are scheduler telemetry and may differ run to run, and
// abort reasons are compared with worker indices normalized).
func outcomesEqual(a, b Outcome) string {
	aReason := workerIndexRE.ReplaceAllString(a.AbortReason, "worker N")
	bReason := workerIndexRE.ReplaceAllString(b.AbortReason, "worker N")
	if a.Op != b.Op || a.Pure != b.Pure || a.Parallel != b.Parallel ||
		a.Profiled != b.Profiled || a.Dispatched != b.Dispatched ||
		a.Elements != b.Elements || a.Misspeculated != b.Misspeculated ||
		aReason != bReason {
		return fmt.Sprintf("outcome mismatch:\n  compiled:  %+v\n  tree-walk: %+v", a, b)
	}
	return ""
}

// runSpecEngine drives MapSpec with both the main interpreter and the
// workers on one engine.
func runSpecEngine(t *testing.T, src string, elems []value.Value, compiled bool) ([]value.Value, Outcome) {
	t.Helper()
	in, fn := loadEngine(t, src, compiled)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4, Verify: true, TreeWalk: !compiled})
	return out, oc
}

// TestGuardParityPureKernel: a clean kernel speculates identically.
func TestGuardParityPureKernel(t *testing.T) {
	const src = `function f(x, i) { return x * x + i; }`
	elems := ints(64)
	cOut, cOC := runSpecEngine(t, src, elems, true)
	tOut, tOC := runSpecEngine(t, src, elems, false)
	if d := outcomesEqual(cOC, tOC); d != "" {
		t.Fatal(d)
	}
	if !cOC.Pure || !cOC.Parallel {
		t.Fatalf("pure kernel did not speculate: %+v", cOC)
	}
	for i := range tOut {
		if !value.StrictEquals(cOut[i], tOut[i]) {
			t.Fatalf("values diverge at %d: %v vs %v", i, cOut[i].Inspect(), tOut[i].Inspect())
		}
	}
}

// TestGuardParityImpureKernel: the guard flags the same write with the
// same §5.3-style reason on both engines.
func TestGuardParityImpureKernel(t *testing.T) {
	const src = `var sum = 0; function f(x, i) { sum = sum + x; return x; }`
	elems := ints(32)
	_, cOC := runSpecEngine(t, src, elems, true)
	_, tOC := runSpecEngine(t, src, elems, false)
	if d := outcomesEqual(cOC, tOC); d != "" {
		t.Fatal(d)
	}
	if cOC.Pure || !strings.Contains(cOC.AbortReason, "sum") {
		t.Fatalf("impure kernel not flagged on compiled engine: %+v", cOC)
	}
}

// TestGuardParityLateImpurity: impurity that only manifests past the
// profile slice is caught by the worker-side guard identically.
func TestGuardParityLateImpurity(t *testing.T) {
	const src = `
var sum = 0;
function f(x, i) {
  if (i >= 20) { sum = sum + x; }
  return x * 2;
}`
	elems := ints(64)
	cOut, cOC := runSpecEngine(t, src, elems, true)
	tOut, tOC := runSpecEngine(t, src, elems, false)
	if d := outcomesEqual(cOC, tOC); d != "" {
		t.Fatal(d)
	}
	if cOC.Pure || cOC.Parallel {
		t.Fatalf("late-impure kernel speculated: %+v", cOC)
	}
	for i := range tOut {
		if !value.StrictEquals(cOut[i], tOut[i]) {
			t.Fatalf("fallback values diverge at %d", i)
		}
	}
}

// TestGuardParityImplicitGlobal: a worker-side implicit global is a
// violation with the same reason on both engines.
func TestGuardParityImplicitGlobal(t *testing.T) {
	const src = `function f(x, i) { if (i >= 30) { leak = x; } return x; }`
	elems := ints(64)
	_, cOC := runSpecEngine(t, src, elems, true)
	_, tOC := runSpecEngine(t, src, elems, false)
	if d := outcomesEqual(cOC, tOC); d != "" {
		t.Fatal(d)
	}
	if cOC.Pure || !strings.Contains(cOC.AbortReason, "leak") {
		t.Fatalf("implicit global not flagged: %+v", cOC)
	}
}

// TestGuardParityLeakOnThrow is the PR 3 guard-leak shape on the
// compiled engine: an elemental that throws mid-operation must not
// leave an active guard behind (hooks restored, later writes unflagged).
func TestGuardParityLeakOnThrow(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		t.Run(fmt.Sprintf("compiled=%v", compiled), func(t *testing.T) {
			in, fn := loadEngine(t, `function f(x, i) { if (i === 3) { throw "boom"; } return x; }`, compiled)
			g := NewGuard()
			err := g.With(in, func() error {
				for i := 0; i < 8; i++ {
					if _, err := in.SafeCall(fn, value.Undefined(), []value.Value{value.Int(i), value.Int(i)}); err != nil {
						return err
					}
				}
				return nil
			})
			if err == nil {
				t.Fatal("elemental throw did not propagate")
			}
			if in.HooksInstalled() != nil {
				t.Fatal("guard leaked: hooks not restored after mid-operation throw")
			}
			// Post-throw writes must not be flagged by the dead guard.
			if err := in.Run(parser.MustParse(`var post = 1; post = post + 1;`)); err != nil {
				t.Fatalf("post-throw execution failed: %v", err)
			}
			if v := g.Violation(); v != "" {
				t.Fatalf("deactivated guard recorded violation %q", v)
			}
		})
	}
}

// hookTrace records the full hook stream with engine-independent
// identities (names and classes, not pointers).
type hookTrace struct {
	interp.NopHooks
	ev []string
}

func (h *hookTrace) add(format string, args ...any) {
	h.ev = append(h.ev, fmt.Sprintf(format, args...))
}
func (h *hookTrace) LoopEnter(id ast.LoopID)                { h.add("LE%d", id) }
func (h *hookTrace) LoopIter(id ast.LoopID)                 { h.add("LI%d", id) }
func (h *hookTrace) LoopExit(id ast.LoopID)                 { h.add("LX%d", id) }
func (h *hookTrace) LoopHeader(id ast.LoopID, active bool)  { h.add("LH%d:%v", id, active) }
func (h *hookTrace) BranchTaken(branchID int, taken bool)   { h.add("BR%d:%v", branchID, taken) }
func (h *hookTrace) CallEnter(name string)                  { h.add("CE:%s", name) }
func (h *hookTrace) CallExit(name string)                   { h.add("CX:%s", name) }
func (h *hookTrace) VarDeclare(name string, b *interp.Binding) { h.add("VD:%s", name) }
func (h *hookTrace) VarRead(name string, b *interp.Binding)    { h.add("VR:%s", name) }
func (h *hookTrace) VarWrite(name string, b *interp.Binding)   { h.add("VW:%s", name) }
func (h *hookTrace) ObjectNew(o *value.Object)                 { h.add("ON:%s", o.Class) }
func (h *hookTrace) PropRead(o *value.Object, key string, via *interp.Binding) {
	h.add("PR:%s.%s", o.Class, key)
}
func (h *hookTrace) PropWrite(o *value.Object, key string, via *interp.Binding) {
	h.add("PW:%s.%s", o.Class, key)
}

// TestGuardParityHookMuxSequence runs a guarded, muxed (trace + guard
// through NewMultiHooks) elemental on both engines and requires the
// identical event stream and the identical violation.
func TestGuardParityHookMuxSequence(t *testing.T) {
	const src = `
var ext = { hits: 0 };
function f(x, i) {
  var acc = 0;
  for (var j = 0; j < 3; j = j + 1) { acc = acc + j * x; }
  if (i === 2) { ext.hits = ext.hits + 1; }
  return acc;
}`
	run := func(compiled bool) ([]string, string) {
		in, fn := loadEngine(t, src, compiled)
		tr := &hookTrace{}
		g := NewGuard()
		in.SetHooks(tr)
		err := g.With(in, func() error {
			for i := 0; i < 4; i++ {
				if _, err := in.SafeCall(fn, value.Undefined(), []value.Value{value.Int(i), value.Int(i)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		return tr.ev, g.Violation()
	}
	cEv, cViol := run(true)
	tEv, tViol := run(false)
	if cViol != tViol {
		t.Fatalf("violation mismatch: compiled %q vs tree-walk %q", cViol, tViol)
	}
	if cViol == "" || !strings.Contains(cViol, "ext") {
		t.Fatalf("guard missed the external mutation: %q", cViol)
	}
	if len(cEv) != len(tEv) {
		t.Fatalf("trace length mismatch: compiled %d vs tree-walk %d", len(cEv), len(tEv))
	}
	for i := range cEv {
		if cEv[i] != tEv[i] {
			t.Fatalf("trace mismatch at %d: compiled %q vs tree-walk %q", i, cEv[i], tEv[i])
		}
	}
	if len(cEv) == 0 {
		t.Fatal("empty hook trace; mux not firing")
	}
}
