package autopar

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// load runs src and returns the interpreter plus the global function f.
func load(t *testing.T, src string) (*interp.Interp, value.Value) {
	t.Helper()
	in := interp.New()
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	fn := in.Global("f")
	if !fn.IsCallable() {
		t.Fatal("source does not define f")
	}
	return in, fn
}

func ints(n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.Int(i + 1)
	}
	return out
}

func nums(vs []value.Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.ToNumber()
	}
	return out
}

func TestMapSpecPureKernelRunsParallel(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x * x + i; }`)
	elems := ints(64)

	seq, seqOC := MapSpec(in, fn, elems, Options{Workers: 1})
	if seqOC.Workers != 1 || seqOC.Parallel {
		t.Fatalf("sequential run reported %+v", seqOC)
	}

	par, oc := MapSpec(in, fn, elems, Options{Workers: 4, Verify: true})
	if !oc.Pure || !oc.Parallel || oc.AbortReason != "" {
		t.Fatalf("pure kernel did not speculate: %+v", oc)
	}
	if oc.Workers < 2 {
		t.Fatalf("expected >= 2 workers, got %d", oc.Workers)
	}
	if oc.Profiled == 0 || oc.Dispatched == 0 || oc.Profiled+oc.Dispatched != len(elems) {
		t.Fatalf("profile/dispatch split wrong: %+v", oc)
	}
	if oc.Misspeculated {
		t.Fatalf("pure kernel misspeculated: %+v", oc)
	}
	for i := range seq {
		if !value.StrictEquals(seq[i], par[i]) {
			t.Fatalf("parallel result diverged at %d: %v vs %v", i, par[i].Inspect(), seq[i].Inspect())
		}
	}
}

func TestMapSpecImpureKernelAbortsInProfile(t *testing.T) {
	in, fn := load(t, `var sum = 0; function f(x, i) { sum = sum + x; return x; }`)
	elems := ints(32)
	_, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Pure || oc.Parallel {
		t.Fatalf("impure kernel speculated: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "sum") {
		t.Errorf("abort reason %q does not name the variable", oc.AbortReason)
	}
	// The fallback still runs the full sequential semantics.
	if got := in.Global("sum").Num(); got != 32*33/2 {
		t.Errorf("fallback sum = %v, want %v", got, 32*33/2)
	}
}

// The profile slice can miss impurity that only manifests on later
// elements; the worker-side guard must catch it and the fallback must
// re-establish exact sequential semantics.
func TestMapSpecLateImpurityCaughtOnWorker(t *testing.T) {
	const src = `
var sum = 0;
function f(x, i) {
  if (i >= 20) { sum = sum + x; }
  return x * 2;
}`
	in, fn := load(t, src)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Pure {
		t.Fatalf("late impurity not detected: %+v", oc)
	}
	if oc.Parallel {
		t.Fatalf("plan not aborted: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "speculation aborted on worker") || !strings.Contains(oc.AbortReason, "sum") {
		t.Errorf("abort reason %q should name the worker-side violation", oc.AbortReason)
	}
	// Results match the sequential semantics...
	for i, v := range out {
		if v.ToNumber() != float64((i+1)*2) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
	// ... and the side effect applied exactly once per element >= 20.
	want := 0.0
	for i := 20; i < 64; i++ {
		want += float64(i + 1)
	}
	if got := in.Global("sum").Num(); got != want {
		t.Errorf("sum = %v, want %v (side effects must apply once each)", got, want)
	}
}

func TestMapSpecCapturedHelpersAndConstants(t *testing.T) {
	const src = `
var BIAS = 7;
var table = [3, 1, 4, 1, 5];
function helper(v) { return v * BIAS + table[v % 5]; }
function f(x, i) { return helper(x) + i; }`
	in, fn := load(t, src)
	elems := ints(48)
	seq, _ := MapSpec(in, fn, elems, Options{Workers: 1})
	par, oc := MapSpec(in, fn, elems, Options{Workers: 3, Verify: true})
	if !oc.Parallel || oc.Misspeculated {
		t.Fatalf("captured-helper kernel did not speculate cleanly: %+v", oc)
	}
	for i := range seq {
		if !value.StrictEquals(seq[i], par[i]) {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestMapSpecObjectCaptureAborts(t *testing.T) {
	in, fn := load(t, `var cfg = {k: 2}; function f(x, i) { return x * cfg.k; }`)
	elems := ints(32)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatal("object capture must not cross workers")
	}
	if !strings.Contains(oc.AbortReason, "cfg") {
		t.Errorf("abort reason %q should name the capture", oc.AbortReason)
	}
	// Reads of external objects are pure; sequential fallback computes.
	if !oc.Pure {
		t.Errorf("read-only object capture misreported as impure: %+v", oc)
	}
	for i, v := range out {
		if v.ToNumber() != float64((i+1)*2) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
}

func TestMapSpecObjectElementsAbort(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x.v; }`)
	elems := make([]value.Value, 16)
	for i := range elems {
		o := in.NewObject()
		o.Set("v", value.Int(i))
		elems[i] = value.ObjectVal(o)
	}
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatal("object elements must not cross workers")
	}
	if !strings.Contains(oc.AbortReason, "cannot cross share-nothing workers") {
		t.Errorf("abort reason %q", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64(i) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
}

func TestMapSpecObjectResultAborts(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return {v: x}; }`)
	elems := ints(32)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatal("object results must not cross workers")
	}
	if !strings.Contains(oc.AbortReason, "cannot cross share-nothing workers") {
		t.Errorf("abort reason %q", oc.AbortReason)
	}
	for i, v := range out {
		if !v.IsObject() || v.Object().GetNumber("v") != float64(i+1) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
}

// A kernel calling Math.random would silently diverge across worker
// RNG streams; the plan must refuse to dispatch it.
func TestMapSpecNondeterministicKernelAborts(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x + Math.floor(Math.random() * 1000); }`)
	elems := ints(64)
	_, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("nondeterministic kernel dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "Math.random") {
		t.Errorf("abort reason %q should name Math.random", oc.AbortReason)
	}

	in2, fn2 := load(t, `function f(x, i) { return x + performance.now() * 0; }`)
	_, oc2 := MapSpec(in2, fn2, ints(64), Options{Workers: 4})
	if oc2.Parallel {
		t.Fatalf("clock-reading kernel dispatched: %+v", oc2)
	}
	if !strings.Contains(oc2.AbortReason, "virtual clock") {
		t.Errorf("abort reason %q should name the clock", oc2.AbortReason)
	}

	// The computed-access spelling must not slip through.
	in3, fn3 := load(t, `function f(x, i) { return x + Math["random"]() * 0; }`)
	_, oc3 := MapSpec(in3, fn3, ints(64), Options{Workers: 4})
	if oc3.Parallel {
		t.Fatalf("computed Math[\"random\"] kernel dispatched: %+v", oc3)
	}

	// Neither must the alias spelling.
	in4, fn4 := load(t, `function f(x, i) { var m = Math; return x + m.random() * 0; }`)
	_, oc4 := MapSpec(in4, fn4, ints(64), Options{Workers: 4})
	if oc4.Parallel {
		t.Fatalf("Math-aliasing kernel dispatched: %+v", oc4)
	}
	if !strings.Contains(oc4.AbortReason, "aliases Math") {
		t.Errorf("abort reason %q should name the alias", oc4.AbortReason)
	}

	// Math used only through deterministic members stays eligible.
	in5, fn5 := load(t, `function f(x, i) { return Math.floor(Math.sqrt(x)); }`)
	_, oc5 := MapSpec(in5, fn5, ints(64), Options{Workers: 4, Verify: true})
	if !oc5.Parallel || oc5.Misspeculated {
		t.Fatalf("deterministic Math kernel did not dispatch: %+v", oc5)
	}
}

// An implicit global (`leak = i`) first created beyond the profile
// slice would materialize only in a discarded worker interpreter; the
// worker guard must abort so the side effect lands on the main
// interpreter via the sequential fallback.
func TestMapSpecLateImplicitGlobalCaughtOnWorker(t *testing.T) {
	in, fn := load(t, `function f(x, i) { if (i > 50) { leak = i; } return x; }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("implicit-global kernel dispatched cleanly: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "implicit global leak") {
		t.Errorf("abort reason %q should name the implicit global", oc.AbortReason)
	}
	if got := in.Global("leak").Num(); got != 63 {
		t.Fatalf("leak = %v on main interpreter, want 63 (sequential side effect)", got)
	}
	for i, v := range out {
		if v.ToNumber() != float64(i+1) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
}

// Expando properties on functions are dropped by AST re-printing, so a
// kernel (or helper) carrying them must not be serialized.
func TestMapSpecFunctionPropertiesAbort(t *testing.T) {
	in, fn := load(t, `
function helper(v) { return v + (helper.bias ? helper.bias : 0); }
helper.bias = 10;
function f(x, i) { return helper(x); }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("expando-carrying helper dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "properties") {
		t.Errorf("abort reason %q should name the properties", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64(i+1+10) {
			t.Fatalf("out[%d] = %v; sequential semantics must see helper.bias", i, v.Inspect())
		}
	}

	// Same shallowness on builtin members: Math.floor.k mutates shared
	// state a worker's fresh Math would not have.
	in2, fn2 := load(t, `
Math.floor.k = 1;
function f(x, i) { return Math.floor(x) + (Math.floor.k ? Math.floor.k : 0); }`)
	_, oc2 := MapSpec(in2, fn2, ints(64), Options{Workers: 4})
	if oc2.Parallel {
		t.Fatalf("mutated builtin member dispatched: %+v", oc2)
	}
}

// A dispatch clamped to one worker is not parallel execution, whatever
// the options asked for.
func TestMapSpecSingleElementDispatchNotParallel(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x + 1; }`)
	elems := ints(2)
	_, oc := MapSpec(in, fn, elems, Options{Workers: 4, Profile: 1, MinDispatch: 1})
	if oc.Parallel {
		t.Fatalf("1-element dispatch reported parallel: %+v", oc)
	}
	if oc.Workers >= 2 {
		t.Fatalf("workers = %d for a 1-element remainder", oc.Workers)
	}
}

// Worker interpreters have private console buffers that are discarded;
// a logging kernel must run sequentially so no output is lost.
func TestMapSpecConsoleKernelAborts(t *testing.T) {
	in, fn := load(t, `function f(x, i) { console.log(i); return x + 1; }`)
	elems := ints(64)
	_, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("console-logging kernel dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "console") {
		t.Errorf("abort reason %q should name the console", oc.AbortReason)
	}
	if got := len(in.Console()); got != 64 {
		t.Fatalf("console lines = %d, want 64 (sequential fallback must log every element)", got)
	}
}

// A property write on a builtin (Math.K = 3) leaves the binding intact
// but desyncs it from every worker's fresh copy; the pristine check
// must catch the mutation, not just rebinding.
func TestMapSpecMutatedBuiltinAborts(t *testing.T) {
	in, fn := load(t, `
Math.K = 3;
function f(x, i) { return x * Math.K; }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("mutated-Math kernel dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "Math") {
		t.Errorf("abort reason %q should name the mutated global", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64((i+1)*3) {
			t.Fatalf("out[%d] = %v; sequential semantics must see Math.K", i, v.Inspect())
		}
	}
}

// A rebound ambient global (user-defined Math) must abort the plan:
// workers would resolve the builtin while the sequential path resolves
// the user's value.
func TestMapSpecShadowedAmbientAborts(t *testing.T) {
	in, fn := load(t, `
var Math = {half: true};
function f(x, i) { return Math.half ? x / 2 : x * 1000; }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("shadowed-Math kernel dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "Math") {
		t.Errorf("abort reason %q should name the rebound global", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64(i+1)/2 {
			t.Fatalf("out[%d] = %v; sequential semantics must use the user's Math", i, v.Inspect())
		}
	}
}

// Captures colliding with the worker program's own globals (__input,
// kernel, ...) must abort instead of silently reading engine state.
func TestMapSpecReservedNameCaptureAborts(t *testing.T) {
	in, fn := load(t, `
var __input = [100, 200, 300];
function f(x, i) { return x + __input[i % 3]; }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("reserved-name capture dispatched: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "__input") {
		t.Errorf("abort reason %q should name the reserved capture", oc.AbortReason)
	}
	for i, v := range out {
		want := float64(i+1) + []float64{100, 200, 300}[i%3]
		if v.ToNumber() != want {
			t.Fatalf("out[%d] = %v, want %v", i, v.Inspect(), want)
		}
	}
}

// NaN results are bit-identical across interpreters; Verify must not
// flag them as misspeculation (SameValue semantics, not ===).
func TestMapSpecVerifyNaNResultsNotMisspeculation(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return i === 10 ? 0 / 0 : x; }`)
	elems := ints(64)
	_, oc := MapSpec(in, fn, elems, Options{Workers: 4, Verify: true})
	if oc.Misspeculated {
		t.Fatalf("NaN result flagged as misspeculation: %+v", oc)
	}
	if !oc.Parallel {
		t.Fatalf("NaN-producing pure kernel did not stay parallel: %+v", oc)
	}
}

// A truthy non-boolean predicate result is canonicalized, not a
// misspeculation: workers cross booleans, and the Verify shadow must
// compare in the same domain.
func TestFilterSpecVerifyTruthyNonBooleanPredicate(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x % 2; }`)
	elems := ints(60)
	seq, _ := FilterSpec(in, fn, elems, Options{Workers: 1})
	par, oc := FilterSpec(in, fn, elems, Options{Workers: 4, Verify: true})
	if oc.Misspeculated {
		t.Fatalf("numeric predicate flagged as misspeculation: %+v", oc)
	}
	if !oc.Parallel {
		t.Fatalf("numeric predicate did not speculate: %+v", oc)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("keep[%d] diverged", i)
		}
	}
}

// A plan abort must not blind the purity signal: the guarded fallback
// still detects writes that first manifest beyond the profile slice.
func TestMapSpecFallbackStillReportsImpurity(t *testing.T) {
	in, fn := load(t, `
var sum = 0;
var cfg = {k: 2};
function f(x, i) {
  if (i >= 20) { sum += x; }
  return x * cfg.k;
}`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Parallel {
		t.Fatalf("capture-aborted kernel dispatched: %+v", oc)
	}
	if oc.Pure {
		t.Fatalf("late impurity missed on guarded fallback: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "cfg") || !strings.Contains(oc.AbortReason, "sum") {
		t.Errorf("abort reason %q should name both the capture and the late write", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64((i+1)*2) {
			t.Fatalf("out[%d] = %v", i, v.Inspect())
		}
	}
	want := 0.0
	for i := 20; i < 64; i++ {
		want += float64(i + 1)
	}
	if got := in.Global("sum").Num(); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestFilterSpecParallelMatchesSequential(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x % 3 === 0; }`)
	elems := ints(60)
	seq, _ := FilterSpec(in, fn, elems, Options{Workers: 1})
	par, oc := FilterSpec(in, fn, elems, Options{Workers: 4, Verify: true})
	if !oc.Parallel || oc.Misspeculated {
		t.Fatalf("pure predicate did not speculate: %+v", oc)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("keep[%d] diverged", i)
		}
	}
}

func TestReduceSpecParallelSum(t *testing.T) {
	in, fn := load(t, `function f(a, b, i) { return a + b; }`)
	elems := ints(100)
	seq, _ := ReduceSpec(in, fn, elems, value.Undefined(), false, Options{Workers: 1})
	par, oc := ReduceSpec(in, fn, elems, value.Undefined(), false, Options{Workers: 4, Verify: true})
	if !oc.Parallel || oc.Misspeculated {
		t.Fatalf("associative reduce did not speculate: %+v", oc)
	}
	if !value.StrictEquals(seq, par) {
		t.Fatalf("reduce diverged: %v vs %v", par.Inspect(), seq.Inspect())
	}
	if seq.ToNumber() != 100*101/2 {
		t.Fatalf("sum = %v", seq.Inspect())
	}

	withInit, oc2 := ReduceSpec(in, fn, elems, value.Int(1000), true, Options{Workers: 4, Verify: true})
	if !oc2.Parallel {
		t.Fatalf("seeded reduce did not speculate: %+v", oc2)
	}
	if withInit.ToNumber() != 1000+100*101/2 {
		t.Fatalf("seeded sum = %v", withInit.Inspect())
	}
}

// A non-associative combiner makes the chunked fold diverge; Verify must
// catch the misspeculation and return the sequential fold.
func TestReduceSpecNonAssociativeMisspeculates(t *testing.T) {
	in, fn := load(t, `function f(a, b, i) { return a - b; }`)
	elems := ints(64)
	got, oc := ReduceSpec(in, fn, elems, value.Undefined(), false, Options{Workers: 4, Verify: true})
	if !oc.Misspeculated {
		t.Fatalf("non-associative reduce not flagged: %+v", oc)
	}
	if oc.Parallel {
		t.Fatal("misspeculated run must not report parallel")
	}
	if !strings.Contains(oc.AbortReason, "misspeculation") {
		t.Errorf("abort reason %q", oc.AbortReason)
	}
	want := 1.0
	for i := 2; i <= 64; i++ {
		want -= float64(i)
	}
	if got.ToNumber() != want {
		t.Fatalf("misspeculation fallback = %v, want %v", got.ToNumber(), want)
	}
}

// An elemental that throws mid-operation must not leak an active guard:
// hooks are restored and later external writes are not flagged.
func TestGuardDeactivatesWhenElementalThrows(t *testing.T) {
	in, fn := load(t, `function f(x, i) { if (i === 3) { throw "boom"; } return x; }`)
	elems := ints(16)
	prev := in.HooksInstalled()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("elemental throw did not propagate")
			}
		}()
		MapSpec(in, fn, elems, Options{Workers: 1})
	}()

	if in.HooksInstalled() != prev {
		t.Fatal("guard leaked: hooks not restored after mid-operation throw")
	}
	// Unrelated later writes run outside any guard.
	if err := in.Run(parser.MustParse(`var later = 1; later = later + 1;`)); err != nil {
		t.Fatalf("post-throw execution failed: %v", err)
	}
	if got := in.Global("later").Num(); got != 2 {
		t.Fatalf("later = %v", got)
	}
}

// Same leak check on the speculative path: a worker-side throw falls
// back to the sequential remainder, which re-raises at the right index.
func TestWorkerThrowFallsBackAndRethrowsSequentially(t *testing.T) {
	in, fn := load(t, `function f(x, i) { if (i === 40) { throw "late"; } return x; }`)
	elems := ints(64)
	prev := in.HooksInstalled()

	threw := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				threw = true
			}
		}()
		MapSpec(in, fn, elems, Options{Workers: 4})
	}()
	if !threw {
		t.Fatal("late throw did not propagate through the fallback")
	}
	if in.HooksInstalled() != prev {
		t.Fatal("guard leaked after speculative fallback throw")
	}
}

func TestFreeNames(t *testing.T) {
	prog := parser.MustParse(`
function f(a, b) {
  var local = a + glob1;
  function inner(c) { return c + local + glob2; }
  try { inner(b); } catch (e) { return e + glob3; }
  for (var k in lookup) { local += k; }
  return local;
}`)
	in := interp.New()
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	fnObj := in.Global("f").Object()
	names := freeNames(fnObj.Fn.Decl.(*ast.FuncLit))
	got := strings.Join(names, ",")
	for _, want := range []string{"glob1", "glob2", "glob3", "lookup"} {
		if !strings.Contains(got, want) {
			t.Errorf("free names %q missing %q", got, want)
		}
	}
	for _, bound := range []string{"a", "b", "c", "e", "local", "inner", "k"} {
		for _, n := range names {
			if n == bound {
				t.Errorf("bound name %q reported free", bound)
			}
		}
	}
}

// TestGuardAbortMidSteal is the work-stealing regression: per-element
// cost is concentrated in the head (so idle workers steal tail chunks)
// while an impurity manifests only deep in that stolen tail. The stolen
// chunk's guard must trip, cancellation must win over further stealing,
// and the fallback must deliver exact sequential semantics — values and
// the side effect landing on the main interpreter.
func TestGuardAbortMidSteal(t *testing.T) {
	const src = `
var poison = 0;
function f(x, i) {
  var spin = i < 64 ? 300 : 3;
  var acc = 0;
  for (var j = 0; j < spin; j++) { acc += (x * 31 + j) % 7; }
  if (i > 200) { poison = poison + 1; }
  return x * 2 + (acc - acc);
}`
	in, fn := load(t, src)
	elems := ints(256)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4})
	if oc.Pure {
		t.Errorf("late impurity not observed: %+v", oc)
	}
	if oc.Parallel || oc.Workers != 1 {
		t.Errorf("aborted plan still reports parallel execution: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "poison") {
		t.Errorf("abort reason %q does not name the poisoned variable", oc.AbortReason)
	}
	if oc.Chunks < 2 {
		t.Errorf("skewed dispatch produced no plan to steal from: %+v", oc)
	}
	// Exact sequential semantics after the abort: every value, and the
	// write count of the impure tail, land as a sequential run would.
	for i, v := range out {
		if want := float64(2 * (i + 1)); v.ToNumber() != want {
			t.Fatalf("out[%d] = %v, want %v", i, v.ToNumber(), want)
		}
	}
	if got := in.Global("poison").Num(); got != 55 {
		t.Errorf("poison = %v, want 55 (one write per i in (200, 256))", got)
	}
}

// Regression: a kernel-local variable shadowing a nondeterministic
// global — even when declared inside a nested block, where the parser
// hoists it to function scope — is plain data, not the global. The old
// walk flagged any identifier named Date/console/Math and forced a
// needless sequential fallback; the free-use-aware walk must dispatch.
func TestMapSpecShadowedNondetNamesDispatch(t *testing.T) {
	cases := []struct{ name, src string }{
		{"nested-block var Date", `function f(x, i) {
			if (x > 0) { var Date = 10; return x + Date; }
			return x;
		}`},
		{"nested-block var console", `function f(x, i) {
			for (var j = 0; j < 1; j++) { var console = x * 2; x = console; }
			return x;
		}`},
		{"local Math shadow", `function f(x, i) {
			var Math = 3;
			return x * Math;
		}`},
		{"catch name performance", `function f(x, i) {
			try { return x + 1; } catch (performance) { return 0; }
		}`},
	}
	for _, c := range cases {
		in, fn := load(t, c.src)
		elems := ints(64)
		out, oc := MapSpec(in, fn, elems, Options{Workers: 4, Verify: true})
		if !oc.Parallel || oc.Misspeculated {
			t.Errorf("%s: did not dispatch cleanly: %+v", c.name, oc)
			continue
		}
		if len(out) != len(elems) {
			t.Errorf("%s: out len = %d, want %d", c.name, len(out), len(elems))
		}
	}
}
