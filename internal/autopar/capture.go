package autopar

// Closure-capture serialization: a speculative plan ships the elemental
// function to share-nothing worker interpreters as *source* (re-printed
// from its AST), so everything the function closes over must either be
// re-materialized in the worker or the plan must abort. The rules mirror
// River Trail's kernel restrictions:
//
//   - ambient globals (Math, parseInt, ...) exist in every interpreter
//     and are not captured;
//   - captured primitives are installed per worker by value;
//   - captured flat arrays of primitives are installed per worker as
//     copies (read-only inputs; a kernel write to one is caught by the
//     worker-side guard);
//   - captured interpreted helper functions are re-printed recursively,
//     with their own captures resolved the same way;
//   - anything else (external objects, native closures, nested arrays)
//     aborts the plan with a §5.3-style reason.
//
// The free-name analysis over-approximates binding in one place: a
// `catch (e)` name is scoped to its catch block, and a use of the same
// name elsewhere in the function would be missed as a capture. The
// failure mode is safe — the worker throws ReferenceError, the plan
// aborts, and execution falls back to the sequential path.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/printer"
	"repro/internal/js/value"
)

// ambient lists the globals every fresh interpreter installs; workers
// have their own, so the plan never captures them — provided the main
// interpreter's binding is still pristine. A rebound or shadowed
// ambient (a user-defined Math, a closure-local Date) would make
// workers resolve the builtin while the sequential path resolves the
// user's value, so resolve() aborts the plan in that case instead.
var ambient = map[string]bool{
	"Math": true, "console": true, "performance": true, "Date": true,
	"parseInt": true, "parseFloat": true, "isNaN": true, "isFinite": true,
	"NaN": true, "Infinity": true, "undefined": true,
	"Array": true, "Object": true, "String": true, "Number": true,
	"Boolean": true, "Error": true,
}

// capturedVal is one primitive (or flat primitive array) binding to
// install per worker.
type capturedVal struct {
	name  string
	v     value.Value
	arr   []value.Value
	isArr bool
}

// capturePlan is the serialized closure environment of an elemental
// function.
type capturePlan struct {
	in       *interp.Interp
	funcSrcs []string      // `var f = function (...) {...};` definitions
	vals     []capturedVal // primitives and flat arrays, per-worker copies
	seen     map[string]*interp.Binding
}

const maxCaptureDepth = 8

// reserved names the generated worker program defines for itself; a
// kernel capturing one would be overwritten by (or overwrite) the
// engine's own globals inside the worker.
var reserved = map[string]bool{
	"kernel": true, "__elemental": true, "__input": true,
	"__base": true, "__chunkReduce": true,
}

// newCapturePlan resolves fn's transitive captures against the main
// interpreter in. A non-empty abort string means the function cannot be
// serialized and the plan must fall back to sequential execution.
func newCapturePlan(in *interp.Interp, fn *value.Object) (*capturePlan, string) {
	p := &capturePlan{in: in, seen: make(map[string]*interp.Binding)}
	if abort := p.resolve(fn, 0); abort != "" {
		return nil, abort
	}
	return p, ""
}

func (p *capturePlan) resolve(fn *value.Object, depth int) string {
	if depth > maxCaptureDepth {
		return "capture chain deeper than " + fmt.Sprint(maxCaptureDepth) + " functions"
	}
	if fn.Fn == nil {
		return "elemental is not a function"
	}
	if fn.Fn.Native != nil || fn.Fn.Decl == nil {
		return "elemental function " + displayName(fn) + " is native; cannot serialize for workers"
	}
	if fn.NumProps() > 0 {
		// Re-printing the source drops expando properties (f.cache = ...),
		// which the function body may read.
		return "function " + displayName(fn) + " carries properties; cannot serialize for workers"
	}
	lit := fn.Fn.Decl.(*ast.FuncLit)
	if reason := usesNondeterminism(lit); reason != "" {
		return displayName(fn) + " " + reason
	}
	env, _ := fn.Fn.Env.(*interp.Scope)
	for _, name := range freeNames(lit) {
		if reserved[name] || strings.HasPrefix(name, "__") {
			return "captures reserved name " + name + "; it collides with the worker program's own globals"
		}
		if env == nil {
			continue
		}
		b := env.Lookup(name)
		if ambient[name] {
			// Safe to skip only while the name still means the builtin:
			// the binding the kernel sees must be the untouched global.
			if b == p.in.Globals.Lookup(name) && p.in.GlobalIsPristine(name) {
				continue
			}
			return "ambient global " + name + " is shadowed or rebound; workers would resolve the builtin"
		}
		if b == nil {
			// Unbound here means unbound in the worker too: the same
			// ReferenceError surfaces either way.
			continue
		}
		if prev, ok := p.seen[name]; ok {
			if prev != b {
				return "capture name " + name + " is ambiguous across closure scopes"
			}
			continue
		}
		p.seen[name] = b
		if abort := p.captureBinding(name, b.V, depth); abort != "" {
			return abort
		}
	}
	return ""
}

// captureBinding classifies one captured value.
func (p *capturePlan) captureBinding(name string, v value.Value, depth int) string {
	if !v.IsObject() {
		p.vals = append(p.vals, capturedVal{name: name, v: v})
		return ""
	}
	o := v.Object()
	if o.Fn != nil {
		if o.Fn.Native != nil || o.Fn.Decl == nil {
			return "captures native function " + name
		}
		lit := o.Fn.Decl.(*ast.FuncLit)
		p.funcSrcs = append(p.funcSrcs,
			"var "+name+" = "+printer.PrintExpr(lit)+";")
		return p.resolve(o, depth+1)
	}
	if o.IsArray() && o.NumProps() == 0 {
		arr := make([]value.Value, len(o.Elems))
		for i, e := range o.Elems {
			if e.IsObject() {
				return fmt.Sprintf("captures array %s with non-primitive element %d", name, i)
			}
			arr[i] = e
		}
		p.vals = append(p.vals, capturedVal{name: name, arr: arr, isArr: true})
		return ""
	}
	return "captures external object " + name + " <" + o.Class + ">"
}

// prelude returns the helper-function definitions to prepend to the
// worker kernel source.
func (p *capturePlan) prelude() string {
	return strings.Join(p.funcSrcs, "\n")
}

// install writes the captured primitive bindings into a worker
// interpreter. Primitives are immutable values; arrays are per-worker
// copies, so no state is shared between interpreters.
func (p *capturePlan) install(in *interp.Interp) {
	for _, cv := range p.vals {
		if cv.isArr {
			elems := append([]value.Value(nil), cv.arr...)
			in.SetGlobal(cv.name, value.ObjectVal(in.NewArray(elems...)))
			continue
		}
		in.SetGlobal(cv.name, cv.v)
	}
}

// usesNondeterminism scans a function body for calls whose result
// depends on *which interpreter* runs them — Math.random (per-worker
// RNG streams diverge from the main interpreter's) and the virtual
// clock (Date / performance.now advance independently per worker). A
// kernel using any of them would silently return different values in
// parallel, so the plan aborts instead. The check is conservative: a
// locally shadowed `Math` still trips it, which only costs the safe
// sequential fallback.
func usesNondeterminism(fn *ast.FuncLit) string {
	reason := ""
	// mathBase collects `Math` identifiers consumed directly as a
	// member/index base with a proven-deterministic member; a Math
	// identifier in any other position (var m = Math, Math passed as an
	// argument, ...) aliases the object and could reach .random later.
	mathBase := map[*ast.Ident]bool{}
	flag := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.MemberExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == "Math" {
				mathBase[id] = true
				if x.Name == "random" {
					flag("calls Math.random; worker RNG streams diverge from sequential execution")
				}
			}
		case *ast.IndexExpr:
			// Computed access on Math: Math["random"] is the member in
			// disguise; any non-literal index cannot be proven
			// deterministic, so abort conservatively.
			if id, ok := x.X.(*ast.Ident); ok && id.Name == "Math" {
				mathBase[id] = true
				if lit, ok := x.Index.(*ast.StringLit); !ok || lit.Value == "random" {
					flag("accesses Math by computed key; Math.random cannot be ruled out")
				}
			}
		case *ast.Ident:
			if x.Name == "Date" || x.Name == "performance" {
				flag("reads the virtual clock (" + x.Name + "); workers tick independently")
			}
			if x.Name == "console" {
				flag("writes to the console; output from worker interpreters would be lost")
			}
		}
		return true
	})
	if reason != "" {
		return reason
	}
	// Second pass: a bare Math reference that was not a safe member base.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "Math" && !mathBase[id] {
			flag("aliases Math; Math.random cannot be ruled out")
			return false
		}
		return true
	})
	return reason
}

func displayName(fn *value.Object) string {
	if fn.Fn != nil && fn.Fn.Name != "" {
		return fn.Fn.Name
	}
	return "<anonymous>"
}

// freeNames returns the identifiers fn references but does not bind,
// sorted for deterministic plans.
func freeNames(fn *ast.FuncLit) []string {
	free := make(map[string]bool)
	collectFree(fn, nil, free)
	out := make([]string, 0, len(free))
	for n := range free {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// collectFree walks fn's body with the enclosing bound-name set, adding
// unbound identifier references to free.
func collectFree(fn *ast.FuncLit, outer map[string]bool, free map[string]bool) {
	bound := make(map[string]bool, len(outer)+len(fn.Params)+len(fn.VarNames)+2)
	for n := range outer {
		bound[n] = true
	}
	for _, n := range fn.Params {
		bound[n] = true
	}
	for _, n := range fn.VarNames {
		bound[n] = true
	}
	if fn.Name != "" {
		bound[fn.Name] = true
	}
	bound["arguments"] = true
	walkFree(fn.Body, bound, free)
}

// walkFree scans one statement subtree. Nested function literals recurse
// with an extended bound set; catch clauses bind their exception name
// for the clause body only.
func walkFree(root ast.Node, bound map[string]bool, free map[string]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if !bound[x.Name] {
				free[x.Name] = true
			}
		case *ast.FuncLit:
			collectFree(x, bound, free)
			return false
		case *ast.TryStmt:
			walkFree(x.Body, bound, free)
			if x.Catch != nil {
				cb := make(map[string]bool, len(bound)+1)
				for n := range bound {
					cb[n] = true
				}
				cb[x.CatchName] = true
				walkFree(x.Catch, cb, free)
			}
			if x.Finally != nil {
				walkFree(x.Finally, bound, free)
			}
			return false
		}
		return true
	})
}
