package autopar

// Closure-capture serialization: a speculative plan ships the elemental
// function to share-nothing worker interpreters as *source* (re-printed
// from its AST), so everything the function closes over must either be
// re-materialized in the worker or the plan must abort. The rules mirror
// River Trail's kernel restrictions:
//
//   - ambient globals (Math, parseInt, ...) exist in every interpreter
//     and are not captured;
//   - captured primitives are installed per worker by value;
//   - captured flat arrays of primitives are installed per worker as
//     copies (read-only inputs; a kernel write to one is caught by the
//     worker-side guard);
//   - captured interpreted helper functions are re-printed recursively,
//     with their own captures resolved the same way;
//   - anything else (external objects, native closures, nested arrays)
//     aborts the plan with a §5.3-style reason.
//
// The free-name analysis lives in internal/effects (FreeNames /
// FreeUses), shared with the static purity prover so the runtime
// capture plan and the compile-time verdict agree on one binding
// model. Historical note: the plan used to flag *any* identifier named
// Date/console/Math as nondeterministic, which misclassified a
// kernel-local `var Date` declared in a nested block (hoisted to
// function scope by the parser) as the global clock and forced a
// needless sequential fallback; the walk now consults per-occurrence
// free uses, so only genuinely free references count.

import (
	"fmt"
	"strings"

	"repro/internal/effects"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/printer"
	"repro/internal/js/value"
)

// ambient lists the globals every fresh interpreter installs; workers
// have their own, so the plan never captures them — provided the main
// interpreter's binding is still pristine. A rebound or shadowed
// ambient (a user-defined Math, a closure-local Date) would make
// workers resolve the builtin while the sequential path resolves the
// user's value, so resolve() aborts the plan in that case instead.
// The set is shared with the static prover.
var ambient = effects.Ambient

// capturedVal is one primitive (or flat primitive array) binding to
// install per worker.
type capturedVal struct {
	name  string
	v     value.Value
	arr   []value.Value
	isArr bool
}

// capturePlan is the serialized closure environment of an elemental
// function.
type capturePlan struct {
	in       *interp.Interp
	funcSrcs []string      // `var f = function (...) {...};` definitions
	vals     []capturedVal // primitives and flat arrays, per-worker copies
	seen     map[string]*interp.Binding
}

const maxCaptureDepth = 8

// reserved names the generated worker program defines for itself; a
// kernel capturing one would be overwritten by (or overwrite) the
// engine's own globals inside the worker.
var reserved = map[string]bool{
	"kernel": true, "__elemental": true, "__input": true,
	"__base": true, "__chunkReduce": true,
}

// newCapturePlan resolves fn's transitive captures against the main
// interpreter in. A non-empty abort string means the function cannot be
// serialized and the plan must fall back to sequential execution.
func newCapturePlan(in *interp.Interp, fn *value.Object) (*capturePlan, string) {
	p := &capturePlan{in: in, seen: make(map[string]*interp.Binding)}
	if abort := p.resolve(fn, 0); abort != "" {
		return nil, abort
	}
	return p, ""
}

func (p *capturePlan) resolve(fn *value.Object, depth int) string {
	if depth > maxCaptureDepth {
		return "capture chain deeper than " + fmt.Sprint(maxCaptureDepth) + " functions"
	}
	if fn.Fn == nil {
		return "elemental is not a function"
	}
	if fn.Fn.Native != nil || fn.Fn.Decl == nil {
		return "elemental function " + displayName(fn) + " is native; cannot serialize for workers"
	}
	if fn.NumProps() > 0 {
		// Re-printing the source drops expando properties (f.cache = ...),
		// which the function body may read.
		return "function " + displayName(fn) + " carries properties; cannot serialize for workers"
	}
	lit := fn.Fn.Decl.(*ast.FuncLit)
	if reason := usesNondeterminism(lit); reason != "" {
		return displayName(fn) + " " + reason
	}
	env, _ := fn.Fn.Env.(*interp.Scope)
	for _, name := range freeNames(lit) {
		if reserved[name] || strings.HasPrefix(name, "__") {
			return "captures reserved name " + name + "; it collides with the worker program's own globals"
		}
		if env == nil {
			continue
		}
		b := env.Lookup(name)
		if ambient[name] {
			// Safe to skip only while the name still means the builtin:
			// the binding the kernel sees must be the untouched global.
			if b == p.in.Globals.Lookup(name) && p.in.GlobalIsPristine(name) {
				continue
			}
			return "ambient global " + name + " is shadowed or rebound; workers would resolve the builtin"
		}
		if b == nil {
			// Unbound here means unbound in the worker too: the same
			// ReferenceError surfaces either way.
			continue
		}
		if prev, ok := p.seen[name]; ok {
			if prev != b {
				return "capture name " + name + " is ambiguous across closure scopes"
			}
			continue
		}
		p.seen[name] = b
		if abort := p.captureBinding(name, b.V, depth); abort != "" {
			return abort
		}
	}
	return ""
}

// captureBinding classifies one captured value.
func (p *capturePlan) captureBinding(name string, v value.Value, depth int) string {
	if !v.IsObject() {
		p.vals = append(p.vals, capturedVal{name: name, v: v})
		return ""
	}
	o := v.Object()
	if o.Fn != nil {
		if o.Fn.Native != nil || o.Fn.Decl == nil {
			return "captures native function " + name
		}
		lit := o.Fn.Decl.(*ast.FuncLit)
		p.funcSrcs = append(p.funcSrcs,
			"var "+name+" = "+printer.PrintExpr(lit)+";")
		return p.resolve(o, depth+1)
	}
	if o.IsArray() && o.NumProps() == 0 {
		arr := make([]value.Value, len(o.Elems))
		for i, e := range o.Elems {
			if e.IsObject() {
				return fmt.Sprintf("captures array %s with non-primitive element %d", name, i)
			}
			arr[i] = e
		}
		p.vals = append(p.vals, capturedVal{name: name, arr: arr, isArr: true})
		return ""
	}
	return "captures external object " + name + " <" + o.Class + ">"
}

// prelude returns the helper-function definitions to prepend to the
// worker kernel source.
func (p *capturePlan) prelude() string {
	return strings.Join(p.funcSrcs, "\n")
}

// install writes the captured primitive bindings into a worker
// interpreter. Primitives are immutable values; arrays are per-worker
// copies, so no state is shared between interpreters.
func (p *capturePlan) install(in *interp.Interp) {
	for _, cv := range p.vals {
		if cv.isArr {
			elems := append([]value.Value(nil), cv.arr...)
			in.SetGlobal(cv.name, value.ObjectVal(in.NewArray(elems...)))
			continue
		}
		in.SetGlobal(cv.name, cv.v)
	}
}

// usesNondeterminism scans a function body for calls whose result
// depends on *which interpreter* runs them — Math.random (per-worker
// RNG streams diverge from the main interpreter's) and the virtual
// clock (Date / performance.now advance independently per worker). A
// kernel using any of them would silently return different values in
// parallel, so the plan aborts instead. Only *free* occurrences count:
// a kernel-local variable shadowing Date or Math — even one declared in
// a nested block and hoisted to function scope — is plain data, not the
// global.
func usesNondeterminism(fn *ast.FuncLit) string {
	reason := ""
	flag := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	// parents maps Math identifiers consumed directly as a member/index
	// base; a free Math in any other position (var m = Math, Math passed
	// as an argument, ...) aliases the object and could reach .random
	// later.
	parents := map[*ast.Ident]ast.Node{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.MemberExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				parents[id] = x
			}
		case *ast.IndexExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				parents[id] = x
			}
		}
		return true
	})
	for _, u := range effects.FreeUses(fn) {
		switch u.Name {
		case "Date", "performance":
			flag("reads the virtual clock (" + u.Name + "); workers tick independently")
		case "console":
			flag("writes to the console; output from worker interpreters would be lost")
		case "Math":
			if u.Id == nil {
				break
			}
			switch p := parents[u.Id].(type) {
			case *ast.MemberExpr:
				if p.Name == "random" {
					flag("calls Math.random; worker RNG streams diverge from sequential execution")
				}
			case *ast.IndexExpr:
				// Computed access on Math: Math["random"] is the member
				// in disguise; any non-literal index cannot be proven
				// deterministic, so abort conservatively.
				if lit, ok := p.Index.(*ast.StringLit); !ok || lit.Value == "random" {
					flag("accesses Math by computed key; Math.random cannot be ruled out")
				}
			default:
				flag("aliases Math; Math.random cannot be ruled out")
			}
		}
	}
	return reason
}

func displayName(fn *value.Object) string {
	if fn.Fn != nil && fn.Fn.Name != "" {
		return fn.Fn.Name
	}
	return "<anonymous>"
}

// freeNames returns the identifiers fn references but does not bind,
// sorted for deterministic plans. The walk itself lives in
// internal/effects, shared with the static purity prover.
func freeNames(fn *ast.FuncLit) []string {
	return effects.FreeNames(fn)
}
