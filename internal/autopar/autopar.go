// Package autopar closes the paper's analyze → execute loop (§5.1/§5.3):
// it is a speculate-then-verify execution engine that makes ParallelArray
// operations genuinely parallel instead of merely classifying them.
//
// A speculative run has four phases:
//
//  1. Profile: a leading slice of the elements runs the elemental
//     function sequentially on the main interpreter under the purity
//     Guard. Any write to pre-existing state aborts the plan here, with
//     the §5.3 reason naming the variable or property.
//  2. Plan: the elemental function's source is re-printed from its AST
//     and its closure captures are serialized (capture.go); the input
//     slice is checked element-by-element for crossability. Anything
//     that cannot move between share-nothing interpreters aborts.
//  3. Dispatch: the remaining elements execute on a pool of worker
//     goroutines, one private interpreter per worker (built on
//     internal/parallel's Kernel/Worker machinery), each armed with its
//     own Guard: an impurity that only manifests beyond the profiled
//     slice is detected on the worker, not silently raced. Scheduling
//     goes through internal/sched (adaptive chunks, randomized work
//     stealing); results are index-addressed and reduce partials merge
//     in fixed chunk-plan order, so outputs stay byte-identical at
//     every worker count. A guard that trips mid-dispatch — including
//     on a stolen chunk — cancels the whole pool. Results cross back
//     only if primitive.
//  4. Verify/fallback: any worker-side violation, error, or non-crossable
//     result abandons the speculation and re-executes the remainder
//     sequentially on the main interpreter, preserving exact sequential
//     semantics (side effects, exception order). With Options.Verify the
//     merged parallel result is additionally cross-checked bit-identical
//     against a sequential shadow run; a divergence (misspeculation) is
//     reported and the sequential values win.
//
// The Outcome of every operation reports what happened and why, feeding
// RiverTrailReport() — the paper's requirement that speculation "not
// only ... abort when it fails to run a loop in parallel, but also have
// ways to report to the developer the reason for aborting."
package autopar

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/effects"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/printer"
	"repro/internal/js/value"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Options configures one speculative operation.
type Options struct {
	// Workers is the pool size for the dispatched remainder; < 2 disables
	// speculation (everything runs sequentially under the guard).
	Workers int
	// Profile is the number of leading elements run under the guard
	// before dispatch (0 = n/8 clamped to [1, 64]).
	Profile int
	// MinDispatch is the smallest remainder worth dispatching (0 = 4).
	MinDispatch int
	// Verify cross-checks the parallel result bit-identical against a
	// sequential shadow run (used by tests and ModeExec validation).
	Verify bool
	// MinChunk and ChunkDivisor tune the work-stealing scheduler's chunk
	// plan for the dispatched remainder (0 = sched defaults). At any
	// fixed setting, outputs are byte-identical across worker counts.
	// Map/filter outputs are identical at any setting; a reduce's merge
	// bracketing follows the chunk boundaries, so comparing reduce
	// output across *different* knob settings requires an associative
	// combiner (Verify catches the rest).
	MinChunk     int
	ChunkDivisor int
	// TreeWalk runs dispatched workers on the tree-walking evaluator
	// instead of the compiled one (parallel.Kernel.TreeWalk). Speculation
	// outcomes are identical either way — the guard-parity tests hold the
	// two engines to the same hook stream — so this is a bench/bisect
	// toggle, not a semantics knob.
	TreeWalk bool
	// Static selects how much the engine trusts the internal/effects
	// purity prover (static.go): StaticOff never consults it,
	// StaticAssist elides the Guard and profile slice for Proven
	// kernels and refuses Refuted ones, StaticStrict additionally
	// refuses Unknown ones.
	Static StaticMode
	// Pipeline enables streaming stage dispatch for PipelineSpec /
	// pipePar (pipeline.go). Off, pipePar still computes the same
	// composition — sequentially, guarded — so the flag is a pure
	// execution-strategy toggle, never a semantics knob.
	Pipeline bool
	// PipeBatch is the index-range batch size streamed between stages
	// and PipeDepth the bounded channel capacity between stages in
	// batches (0 = taskgraph defaults). Outputs are byte-identical at
	// any setting; the knobs trade hand-off overhead against
	// backpressure tightness.
	PipeBatch, PipeDepth int
	// WorkerSteps bounds each share-nothing worker interpreter's step
	// budget (0 = interpreter default). The pipeline fuzz sets it so a
	// fuzzed kernel that terminates on the profiled slice but diverges
	// beyond it faults the worker — and falls back to the (equally
	// step-bounded) main interpreter — instead of hanging the pool.
	WorkerSteps int64
}

// schedOptions maps the speculation options onto the scheduler's.
// Autopar kernels run inside a page the user is looking at, so the
// dispatch is declared interactive.
func (o Options) schedOptions() sched.Options {
	return sched.Options{
		Workers:  o.Workers,
		MinChunk: o.MinChunk,
		Divisor:  o.ChunkDivisor,
		Class:    sched.ClassInteractive,
	}
}

// Outcome reports one speculative operation.
type Outcome struct {
	// Op is "mapPar", "filterPar", "reducePar" or "pipePar".
	Op string
	// Pure is true when no purity violation was observed (profile slice
	// and worker guards all clean).
	Pure bool
	// Parallel is true when the remainder actually executed on >= 2
	// workers and the merge survived all checks.
	Parallel bool
	// Workers is the number of goroutines that executed the plan
	// (1 = sequential).
	Workers int
	// Profiled counts elements run under the guard on the main
	// interpreter; Dispatched counts elements executed on the pool.
	Profiled, Dispatched int
	// Elements is the total processed.
	Elements int
	// Misspeculated is true when Verify found a divergence.
	Misspeculated bool
	// AbortReason is the §5.3-style reason the plan fell back ("" when
	// the speculation succeeded or never started).
	AbortReason string
	// Chunks is the scheduler's chunk-plan length for the dispatched
	// remainder; Steals counts successful steal operations. Steals are
	// timing-dependent telemetry — they describe how the run balanced,
	// never what it computed (0 when nothing dispatched).
	Chunks, Steals int
	// Static is the purity prover's verdict and reason chain (the zero
	// report, Verdict Unknown with no reasons, when Options.Static was
	// off and the prover never ran).
	Static effects.Report
	// GuardElided is true when the operation ran with zero Guard hooks
	// installed anywhere — no profile slice, unguarded workers — on the
	// strength of a Proven verdict.
	GuardElided bool
	// Pipe is the streaming-stage telemetry of a pipePar operation
	// (zero-valued for flat operations and for pipelines that never
	// dispatched).
	Pipe taskgraph.PipeStats
	// StageStatic is the per-stage prover report of a pipePar operation
	// when a static mode was active (index = stage position); nil
	// otherwise. StageElided[s] is true when stage s dispatched with
	// zero Guard hooks on the strength of its Proven verdict.
	StageStatic []effects.Report
	StageElided []bool
}

const (
	defaultMinDispatch = 4
	maxProfile         = 64
)

func (o Options) profileCount(n int) int {
	p := o.Profile
	if p <= 0 {
		p = n / 8
		if p < 1 {
			p = 1
		}
		if p > maxProfile {
			p = maxProfile
		}
	}
	if p > n {
		p = n
	}
	return p
}

func (o Options) minDispatch() int {
	if o.MinDispatch > 0 {
		return o.MinDispatch
	}
	return defaultMinDispatch
}

// call invokes fn on the main interpreter; JS throws propagate as panics
// exactly like the sequential path (enclosing try/catch or SafeCall
// boundaries handle them; Guard.With restores hooks on unwind).
func call(in *interp.Interp, fn value.Value, args ...value.Value) value.Value {
	v, _ := in.CallFunction(fn, value.Undefined(), args)
	return v
}

// plan is one prepared speculative dispatch.
type plan struct {
	kernel *parallel.Kernel
	base   int // first dispatched element index
	n      int // total elements
	// unguarded elides the per-worker Guard entirely: set only when the
	// static prover returned Proven for the elemental and its callees.
	// Workers stay share-nothing; only the write hooks disappear.
	unguarded bool
}

// buildPlan serializes fn and the remainder elems[base:] into a
// share-nothing kernel. A non-empty abort string means the operation must
// stay sequential.
func buildPlan(op string, in *interp.Interp, fn value.Value, elems []value.Value, base int) (*plan, string) {
	if !fn.IsCallable() {
		return nil, "elemental is not a function"
	}
	caps, abort := newCapturePlan(in, fn.Object())
	if abort != "" {
		return nil, abort
	}
	for i := base; i < len(elems); i++ {
		if elems[i].IsObject() {
			return nil, fmt.Sprintf("element %d is an object; cannot cross share-nothing workers", i)
		}
	}
	lit := fn.Object().Fn.Decl.(*ast.FuncLit)
	elemental := printer.PrintExpr(lit)

	var body string
	switch op {
	case "filterPar":
		// Coerce on the worker so only booleans cross interpreters.
		body = "return __elemental(__input[i - __base], i) ? true : false;"
	default:
		body = "return __elemental(__input[i - __base], i);"
	}
	src := caps.prelude() + "\nvar __elemental = " + elemental + ";\n" +
		"function kernel(i) {\n  " + body + "\n}\n" +
		// Chunked fold for reducePar: acc seeds from the chunk's first
		// element, then folds left with the elemental as combiner.
		"function __chunkReduce(lo, hi) {\n" +
		"  var acc = __input[lo - __base];\n" +
		"  for (var i = lo + 1; i < hi; i++) {\n" +
		"    acc = __elemental(acc, __input[i - __base], i);\n" +
		"  }\n  return acc;\n}\n"

	remainder := elems[base:]
	setup := func(win *interp.Interp) error {
		// Per-worker copies: primitives are immutable, the array object is
		// private to the worker.
		copyElems := append([]value.Value(nil), remainder...)
		win.SetGlobal("__input", value.ObjectVal(win.NewArray(copyElems...)))
		win.SetGlobal("__base", value.Int(base))
		caps.install(win)
		return nil
	}
	return &plan{
		kernel: &parallel.Kernel{Source: src, Setup: setup},
		base:   base,
		n:      len(elems),
	}, ""
}

// workerFault is the first failure observed on the pool.
type workerFault struct {
	reason string // §5.3-style abort reason
	impure bool   // true when a worker guard flagged a write
}

// startWorker builds one share-nothing worker for the plan — guarded,
// unless a Proven verdict elided the hooks (the returned *Guard is nil
// then; Violation() on a nil guard reports clean).
func (p *plan) startWorker(wi int) (*parallel.Worker, *Guard, *workerFault) {
	w, err := p.kernel.NewWorker()
	if err != nil {
		return nil, nil, &workerFault{reason: fmt.Sprintf("worker %d failed to start: %v", wi, err)}
	}
	if p.unguarded {
		return w, nil, nil
	}
	guard := NewGuard()
	guard.Activate(w.Interp())
	return w, guard, nil
}

// triage converts one worker-call outcome into a fault (nil = ok): call
// error first, then guard violation (impure), then a result that cannot
// cross share-nothing interpreters.
func triage(wi int, what string, v value.Value, err error, guard *Guard) *workerFault {
	if err != nil {
		return &workerFault{reason: fmt.Sprintf("worker %d: %s: %v", wi, what, err)}
	}
	if vi := guard.Violation(); vi != "" {
		return &workerFault{reason: fmt.Sprintf("speculation aborted on worker %d: %s", wi, vi), impure: true}
	}
	if v.IsObject() {
		return &workerFault{reason: fmt.Sprintf("%s is an object; cannot cross share-nothing workers", what)}
	}
	return nil
}

// errSpecAborted is the cancellation signal handed to the scheduler when
// a worker faults; the fault detail travels in the per-worker slot.
var errSpecAborted = errors.New("autopar: speculation aborted")

// guardedPool is the lazily-built per-worker state of a dispatch: one
// share-nothing interpreter plus an armed Guard per pool slot. Slots are
// touched by a single goroutine each (the sched contract), so no locks.
type guardedPool struct {
	p       *plan
	workers []*parallel.Worker
	guards  []*Guard
	faults  []*workerFault
	folds   []value.Value
	foldSet []bool
}

func newGuardedPool(p *plan, size int) *guardedPool {
	return &guardedPool{
		p:       p,
		workers: make([]*parallel.Worker, size),
		guards:  make([]*Guard, size),
		faults:  make([]*workerFault, size),
		folds:   make([]value.Value, size),
		foldSet: make([]bool, size),
	}
}

// at returns slot w's guarded worker, building it on first use. A nil
// worker means startup faulted (recorded in faults[w]).
func (gp *guardedPool) at(w int) (*parallel.Worker, *Guard) {
	if gp.workers[w] == nil {
		ww, guard, fault := gp.p.startWorker(w)
		if fault != nil {
			gp.faults[w] = fault
			return nil, nil
		}
		gp.workers[w], gp.guards[w] = ww, guard
	}
	return gp.workers[w], gp.guards[w]
}

// foldAt resolves slot w's __chunkReduce callable once per worker, not
// per chunk (w's worker must already be built via at).
func (gp *guardedPool) foldAt(w int) (value.Value, error) {
	if !gp.foldSet[w] {
		fold, err := gp.workers[w].Callable("__chunkReduce")
		if err != nil {
			return value.Undefined(), err
		}
		gp.folds[w], gp.foldSet[w] = fold, true
	}
	return gp.folds[w], nil
}

// firstFault returns the lowest-slot fault (nil when clean) — a
// deterministic pick when several workers fault concurrently.
func (gp *guardedPool) firstFault() *workerFault {
	for _, f := range gp.faults {
		if f != nil {
			return f
		}
	}
	return nil
}

// dispatch runs plan element indices [base, n) across the work-stealing
// pool, writing kernel results into index-addressed out[i] slots (so
// output is byte-identical at every worker count). Any fault — error,
// non-crossable result, or a guard tripping mid-chunk, stolen or not —
// cancels the remaining chunks. It returns the scheduling stats and the
// first fault (nil on success).
func (p *plan) dispatch(opts sched.Options, out []value.Value) (sched.Stats, *workerFault) {
	rem := p.n - p.base
	gp := newGuardedPool(p, opts.MaxWorkers())
	stats, _ := sched.Run(rem, opts, func(w, ci, lo, hi int) error {
		ww, guard := gp.at(w)
		if ww == nil {
			return errSpecAborted
		}
		for i := p.base + lo; i < p.base+hi; i++ {
			v, err := ww.CallKernel(i)
			// Fast path first: the fault label is formatted only when
			// a fault actually occurred (this loop is the measured
			// parallel hot path).
			if err != nil || v.IsObject() || guard.Violation() != "" {
				gp.faults[w] = triage(w, fmt.Sprintf("kernel(%d) result", i), v, err, guard)
				return errSpecAborted
			}
			out[i] = v
		}
		return nil
	})
	return stats, gp.firstFault()
}

// reduceDispatch folds [base, n) chunk by chunk under the work-stealing
// pool, returning the partials in chunk-plan order (all crossable) plus
// each chunk's start index. The plan is a pure function of the remainder
// size, so the partial ordering — and the caller's merge bracketing —
// is identical at every worker count.
func (p *plan) reduceDispatch(opts sched.Options) ([]value.Value, []int, sched.Stats, *workerFault) {
	rem := p.n - p.base
	chunkPlan := sched.Plan(rem, opts)
	partials := make([]value.Value, len(chunkPlan))
	starts := make([]int, len(chunkPlan))
	gp := newGuardedPool(p, opts.MaxWorkers())
	stats, _ := sched.RunPlan(chunkPlan, opts, func(w, ci, lo, hi int) error {
		ww, guard := gp.at(w)
		if ww == nil {
			return errSpecAborted
		}
		fold, err := gp.foldAt(w)
		if err != nil {
			gp.faults[w] = &workerFault{reason: err.Error()}
			return errSpecAborted
		}
		starts[ci] = p.base + lo
		v, err := ww.Call(fold, value.Int(p.base+lo), value.Int(p.base+hi))
		what := fmt.Sprintf("chunk partial [%d,%d)", p.base+lo, p.base+hi)
		if f := triage(w, what, v, err, guard); f != nil {
			gp.faults[w] = f
			return errSpecAborted
		}
		partials[ci] = v
		return nil
	})
	if f := gp.firstFault(); f != nil {
		return nil, nil, stats, f
	}
	return partials, starts, stats, nil
}

// MapSpec executes out[i] = fn(elems[i], i) speculatively.
func MapSpec(in *interp.Interp, fn value.Value, elems []value.Value, opts Options) ([]value.Value, Outcome) {
	out := make([]value.Value, len(elems))
	oc := speculate(in, "mapPar", fn, elems, opts, out, identity)
	return out, oc
}

// FilterSpec evaluates keep[i] = ToBoolean(fn(elems[i], i)) speculatively.
func FilterSpec(in *interp.Interp, fn value.Value, elems []value.Value, opts Options) ([]bool, Outcome) {
	vals := make([]value.Value, len(elems))
	// Canonicalize to booleans on both sides: workers coerce on the
	// kernel (only booleans cross interpreters), so the main-side
	// profile, fallback and Verify shadow must compare in the same
	// domain — a truthy non-boolean predicate result is not a
	// misspeculation.
	oc := speculate(in, "filterPar", fn, elems, opts, vals, toBoolean)
	keep := make([]bool, len(vals))
	for i, v := range vals {
		keep[i] = v.ToBool()
	}
	return keep, oc
}

func identity(v value.Value) value.Value  { return v }
func toBoolean(v value.Value) value.Value { return value.Bool(v.ToBool()) }

// speculate is the shared map/filter engine: profile under guard, plan,
// dispatch, verify or fall back. coerce canonicalizes main-side results
// into the same domain worker results arrive in (identity for map,
// ToBoolean for filter).
func speculate(in *interp.Interp, op string, fn value.Value, elems []value.Value, opts Options, out []value.Value, coerce func(value.Value) value.Value) Outcome {
	n := len(elems)
	oc := Outcome{Op: op, Elements: n, Workers: 1, Pure: true}
	if n == 0 {
		return oc
	}

	proven := false
	if opts.Static != StaticOff {
		oc.Static = AnalyzeStatic(in, fn)
		switch {
		case oc.Static.Verdict == effects.Refuted:
			// Refused before any speculative work: the whole operation
			// runs sequentially — still guarded, so the dynamic purity
			// column keeps its own independent verdict.
			oc.AbortReason = "refused parallel plan: static analysis refuted purity: " + oc.Static.First()
			sequentialRemainder(in, fn, elems, 0, out, coerce, &oc)
			oc.Profiled = n
			return oc
		case oc.Static.Verdict == effects.Proven:
			proven = true
		case opts.Static == StaticStrict:
			oc.AbortReason = "refused parallel plan: static=strict and verdict unknown: " + oc.Static.First()
			sequentialRemainder(in, fn, elems, 0, out, coerce, &oc)
			oc.Profiled = n
			return oc
		}
	}

	base := opts.profileCount(n)
	if proven {
		// A Proven kernel needs no profile slice: the prover already
		// did what profiling exists to discover.
		base = 0
	}
	wantSpec := opts.Workers >= 2 && n-base >= opts.minDispatch()

	if proven {
		if !wantSpec {
			// Sequential, but with zero guard hooks: sequential
			// execution is semantically exact with or without them.
			for i := 0; i < n; i++ {
				out[i] = coerce(call(in, fn, elems[i], value.Int(i)))
			}
			oc.GuardElided = true
			return oc
		}
	} else {
		limit := n
		if wantSpec {
			limit = base
		}
		executed, violation := profileUnderGuard(in, 0, limit, n, func(i int) {
			out[i] = coerce(call(in, fn, elems[i], value.Int(i)))
		})
		oc.Profiled = executed
		if violation != "" {
			oc.Pure = false
			oc.AbortReason = "aborted parallel plan: " + violation
			return oc
		}
		if !wantSpec {
			return oc
		}
	}

	// Plan only after a clean profile: serialization (capture analysis,
	// AST re-print, crossability scan) is wasted work for a kernel the
	// guard already rejected. On the Proven path these checks are the
	// soundness backstop — a rebound ambient or non-crossable capture
	// still aborts to the (exact) sequential fallback.
	pl, abort := buildPlan(op, in, fn, elems, base)
	if abort != "" {
		oc.AbortReason = "aborted parallel plan: " + abort
		sequentialRemainder(in, fn, elems, base, out, coerce, &oc)
		return oc
	}
	pl.kernel.TreeWalk = opts.TreeWalk
	pl.kernel.MaxSteps = opts.WorkerSteps
	pl.unguarded = proven

	stats, fault := pl.dispatch(opts.schedOptions(), out)
	oc.Chunks, oc.Steals = stats.Chunks, stats.Steals
	if fault != nil {
		oc.Pure = !fault.impure && oc.Pure
		oc.AbortReason = "aborted parallel plan: " + fault.reason
		sequentialRemainder(in, fn, elems, base, out, coerce, &oc)
		return oc
	}
	// The scheduler clamps the pool to the chunk plan; a 1-worker
	// dispatch is not parallel execution, whatever the options asked for.
	oc.Parallel = stats.Workers >= 2
	oc.Workers = stats.Workers
	oc.Dispatched = n - base
	oc.GuardElided = proven

	if opts.Verify {
		if at := verifyRemainder(in, fn, elems, base, out, coerce); at >= 0 {
			oc.Misspeculated = true
			oc.Parallel = false
			oc.Workers = 1
			oc.Dispatched = 0
			oc.AbortReason = fmt.Sprintf("misspeculation: parallel result diverged from sequential shadow at element %d", at)
		}
	}
	return oc
}

// profileUnderGuard runs body(i) for i in [start, n) under a fresh
// purity guard chained onto the interpreter's installed hooks. While
// the guard is clean it stops at limit — the speculation handoff
// point; once the guard trips, it runs to completion instead (the
// classic guarded sequential fallback). Returns the elements executed
// and the guard violation ("" when clean).
func profileUnderGuard(in *interp.Interp, start, limit, n int, body func(i int)) (int, string) {
	guard := NewGuard()
	executed := 0
	_ = guard.With(in, func() error {
		for i := start; i < n; i++ {
			if i >= limit && guard.Violation() == "" {
				break
			}
			body(i)
			executed++
		}
		return nil
	})
	return executed, guard.Violation()
}

// foldRemainder left-folds elems[base:] into acc on the main
// interpreter — the reduce fallback (oc non-nil: guarded, merging any
// late violation into the outcome) and the Verify shadow (oc nil:
// plain, the kernel is already proven clean).
func foldRemainder(in *interp.Interp, fn value.Value, acc value.Value, elems []value.Value, base int, oc *Outcome) value.Value {
	if oc == nil {
		for i := base; i < len(elems); i++ {
			acc = call(in, fn, acc, elems[i], value.Int(i))
		}
		return acc
	}
	_, violation := profileUnderGuard(in, base, len(elems), len(elems), func(i int) {
		acc = call(in, fn, acc, elems[i], value.Int(i))
	})
	noteFallbackViolation(oc, violation)
	return acc
}

// sequentialRemainder re-executes [base, n) on the main interpreter —
// the abort path, preserving exact sequential semantics (side effects
// and exception order included). It runs under a fresh guard so the
// §5.1 purity signal does not regress just because the plan already
// aborted for another reason: a write first manifesting beyond the
// profile slice still flips Pure and is named in the report, exactly
// as the pre-autopar whole-operation guard did.
func sequentialRemainder(in *interp.Interp, fn value.Value, elems []value.Value, base int, out []value.Value, coerce func(value.Value) value.Value, oc *Outcome) {
	_, violation := profileUnderGuard(in, base, len(elems), len(elems), func(i int) {
		out[i] = coerce(call(in, fn, elems[i], value.Int(i)))
	})
	noteFallbackViolation(oc, violation)
}

// noteFallbackViolation merges a violation observed during a guarded
// fallback into the outcome (deduplicated: an impure worker fault has
// already named the same write).
func noteFallbackViolation(oc *Outcome, violation string) {
	if violation == "" {
		return
	}
	oc.Pure = false
	if !strings.Contains(oc.AbortReason, violation) {
		oc.AbortReason += "; also: " + violation
	}
}

// verifyRemainder shadow-runs [base, n) sequentially and compares. It
// returns the first divergent index (-1 when bit-identical), overwriting
// out with the sequential values on divergence so the caller always
// returns sequential semantics.
func verifyRemainder(in *interp.Interp, fn value.Value, elems []value.Value, base int, out []value.Value, coerce func(value.Value) value.Value) int {
	diverged := -1
	for i := base; i < len(elems); i++ {
		shadow := coerce(call(in, fn, elems[i], value.Int(i)))
		if diverged < 0 && !value.SameValue(shadow, out[i]) {
			diverged = i
		}
		if diverged >= 0 {
			out[i] = shadow
		}
	}
	return diverged
}

// ReduceSpec folds elems with fn(acc, elem, i) speculatively. The
// sequential semantics seed acc with init (when hasInit) or elems[0];
// the parallel plan folds per-worker chunks with the elemental as the
// combiner and merges partials in chunk order, which equals the
// sequential fold exactly when the elemental is associative — Verify
// catches the rest (the reduction-order caveat of §4.1).
func ReduceSpec(in *interp.Interp, fn value.Value, elems []value.Value, init value.Value, hasInit bool, opts Options) (value.Value, Outcome) {
	n := len(elems)
	oc := Outcome{Op: "reducePar", Elements: n, Workers: 1, Pure: true}

	acc := init
	start := 0
	if !hasInit {
		if n == 0 {
			return value.Undefined(), oc
		}
		acc = elems[0]
		start = 1
	}
	if n == start {
		return acc, oc
	}

	proven := false
	if opts.Static != StaticOff {
		oc.Static = AnalyzeStatic(in, fn)
		switch {
		case oc.Static.Verdict == effects.Refuted:
			oc.AbortReason = "refused parallel plan: static analysis refuted purity: " + oc.Static.First()
			acc = foldRemainder(in, fn, acc, elems, start, &oc)
			oc.Profiled = n - start
			return acc, oc
		case oc.Static.Verdict == effects.Proven:
			proven = true
		case opts.Static == StaticStrict:
			oc.AbortReason = "refused parallel plan: static=strict and verdict unknown: " + oc.Static.First()
			acc = foldRemainder(in, fn, acc, elems, start, &oc)
			oc.Profiled = n - start
			return acc, oc
		}
	}

	base := start + opts.profileCount(n-start)
	if proven {
		base = start // no profile slice on the Proven path
	}
	wantSpec := opts.Workers >= 2 && n-base >= opts.minDispatch()

	if proven {
		if !wantSpec {
			// Sequential fold with zero guard hooks.
			acc = foldRemainder(in, fn, acc, elems, start, nil)
			oc.GuardElided = true
			return acc, oc
		}
	} else {
		limit := n
		if wantSpec {
			limit = base
		}
		executed, violation := profileUnderGuard(in, start, limit, n, func(i int) {
			acc = call(in, fn, acc, elems[i], value.Int(i))
		})
		oc.Profiled = executed
		if violation != "" {
			oc.Pure = false
			oc.AbortReason = "aborted parallel plan: " + violation
			return acc, oc
		}
		if !wantSpec {
			return acc, oc
		}
	}

	pl, abort := buildPlan("reducePar", in, fn, elems, base)
	if abort != "" {
		oc.AbortReason = "aborted parallel plan: " + abort
		return foldRemainder(in, fn, acc, elems, base, &oc), oc
	}
	pl.kernel.TreeWalk = opts.TreeWalk
	pl.kernel.MaxSteps = opts.WorkerSteps
	pl.unguarded = proven

	partials, starts, stats, fault := pl.reduceDispatch(opts.schedOptions())
	oc.Chunks, oc.Steals = stats.Chunks, stats.Steals
	if fault != nil {
		oc.Pure = !fault.impure && oc.Pure
		oc.AbortReason = "aborted parallel plan: " + fault.reason
		return foldRemainder(in, fn, acc, elems, base, &oc), oc
	}
	merged := acc
	for ci, part := range partials {
		merged = call(in, fn, merged, part, value.Int(starts[ci]))
	}
	oc.Parallel = stats.Workers >= 2
	oc.Workers = stats.Workers
	oc.Dispatched = n - base
	oc.GuardElided = proven

	if opts.Verify {
		shadow := foldRemainder(in, fn, acc, elems, base, nil)
		if !value.SameValue(shadow, merged) {
			oc.Misspeculated = true
			oc.Parallel = false
			oc.Workers = 1
			oc.Dispatched = 0
			oc.AbortReason = "misspeculation: chunked reduction diverged from sequential fold (non-associative combiner)"
			return shadow, oc
		}
	}
	return merged, oc
}
