package autopar

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// loadStages runs src and returns the interpreter plus the named global
// functions.
func loadStages(t *testing.T, src string, names ...string) (*interp.Interp, []value.Value) {
	t.Helper()
	in := interp.New()
	if err := in.Run(parser.MustParse(src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	fns := make([]value.Value, len(names))
	for i, name := range names {
		fns[i] = in.Global(name)
		if !fns[i].IsCallable() {
			t.Fatalf("source does not define %s", name)
		}
	}
	return in, fns
}

// pipeSequential is the reference semantics: the fused composition on a
// fresh interpreter loaded from the same source.
func pipeSequential(t *testing.T, src string, elems []value.Value, names ...string) []value.Value {
	t.Helper()
	in, fns := loadStages(t, src, names...)
	out := make([]value.Value, len(elems))
	for i := range elems {
		v := elems[i]
		for _, fn := range fns {
			v = call(in, fn, v, value.Int(i))
		}
		out[i] = v
	}
	return out
}

func sameValues(a, b []value.Value) int {
	for i := range a {
		if !value.SameValue(a[i], b[i]) {
			return i
		}
	}
	return -1
}

// settleGoroutines waits for worker goroutines to exit; the pipeline
// joins them before returning, so the count must come back to baseline.
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > want {
		t.Fatalf("goroutines leaked: %d running, want <= %d", got, want)
	}
}

const pureStages = `
function fa(x, i) { return x * 2 + i; }
function fb(x, i) { return x * x - 1; }
function fc(x, i) { return x % 97; }
`

func TestPipelineSpecPureStagesStream(t *testing.T) {
	elems := ints(512)
	want := pipeSequential(t, pureStages, elems, "fa", "fb", "fc")

	in, fns := loadStages(t, pureStages, "fa", "fb", "fc")
	out, oc := PipelineSpec(in, fns, elems, Options{
		Workers: 4, Pipeline: true, PipeBatch: 32, Verify: true,
	})
	if !oc.Pure || !oc.Parallel || oc.AbortReason != "" || oc.Misspeculated {
		t.Fatalf("pure pipeline did not stream: %+v", oc)
	}
	if at := sameValues(want, out); at >= 0 {
		t.Fatalf("out[%d] = %v, want %v", at, out[at], want[at])
	}
	if oc.Pipe.Stages != 3 || oc.Pipe.Batches == 0 || oc.Workers < 3 {
		t.Fatalf("pipe telemetry wrong: %+v", oc.Pipe)
	}
	if oc.Profiled+oc.Dispatched != len(elems) {
		t.Fatalf("profile/dispatch split wrong: %+v", oc)
	}
}

func TestPipelineSpecByteIdenticalAcrossWorkerLadder(t *testing.T) {
	elems := ints(300)
	want := pipeSequential(t, pureStages, elems, "fa", "fb")
	for _, workers := range []int{1, 2, 4, 8} {
		in, fns := loadStages(t, pureStages, "fa", "fb")
		out, oc := PipelineSpec(in, fns, elems, Options{
			Workers: workers, Pipeline: true, PipeBatch: 16, PipeDepth: 1,
		})
		if at := sameValues(want, out); at >= 0 {
			t.Fatalf("workers=%d: out[%d] = %v, want %v (oc %+v)", workers, at, out[at], want[at], oc)
		}
		if workers == 1 && (oc.Parallel || oc.Dispatched != 0) {
			t.Fatalf("workers=1 must stay sequential: %+v", oc)
		}
		if workers >= 2 && !oc.Parallel {
			t.Fatalf("workers=%d did not stream: %+v", workers, oc)
		}
	}
}

func TestPipelineSpecOffTogglesSequential(t *testing.T) {
	elems := ints(256)
	in, fns := loadStages(t, pureStages, "fa", "fb")
	_, oc := PipelineSpec(in, fns, elems, Options{Workers: 4, Pipeline: false})
	if oc.Parallel || oc.Dispatched != 0 || oc.Pipe.Stages != 0 {
		t.Fatalf("Pipeline=false must not dispatch: %+v", oc)
	}
	if !oc.Pure || oc.Profiled != len(elems) {
		t.Fatalf("sequential pipeline not fully guarded: %+v", oc)
	}
}

// Stage-B impurity that only manifests mid-stream (beyond the profile
// slice) must cancel both stages, drain the channels without deadlock,
// fall back to exact sequential semantics, and leak no goroutines.
func TestPipelineMisspeculationMidStreamFallsBack(t *testing.T) {
	src := `
var leak = 0;
function fa(x, i) { return x + 1; }
function fb(x, i) { if (i >= 200) { leak = leak + 1; } return x * 3; }
`
	elems := ints(600)
	want := pipeSequential(t, src, elems, "fa", "fb")

	before := runtime.NumGoroutine()
	in, fns := loadStages(t, src, "fa", "fb")
	done := make(chan struct{})
	var out []value.Value
	var oc Outcome
	go func() {
		defer close(done)
		out, oc = PipelineSpec(in, fns, elems, Options{
			Workers: 4, Pipeline: true, PipeBatch: 8, PipeDepth: 1,
		})
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("pipeline deadlocked on mid-stream misspeculation")
	}
	if oc.Pure || oc.Parallel {
		t.Fatalf("impure pipeline reported %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "stage 1") || !strings.Contains(oc.AbortReason, "leak") {
		t.Fatalf("abort reason does not name the stage-1 write: %q", oc.AbortReason)
	}
	if at := sameValues(want, out); at >= 0 {
		t.Fatalf("fallback diverged from sequential at %d: %v != %v", at, out[at], want[at])
	}
	// Exact sequential side effects: profile wrote nothing (< 200), the
	// fallback re-ran [base, n) once on the main interpreter.
	if got := in.Global("leak").ToNumber(); got != 400 {
		t.Fatalf("leak = %v after fallback, want 400 (one write per element >= 200)", got)
	}
	settleGoroutines(t, before)
}

// A stage-A JS throw beyond the profile slice must cancel the stream
// and re-raise on the main interpreter in exact element order.
func TestPipelineWorkerThrowFallsBackToSequentialThrow(t *testing.T) {
	src := `
var seen = 0;
function fa(x, i) { if (i >= 100) { throw "boom at " + i; } seen = seen + 0; return x; }
function fb(x, i) { return x + 1; }
`
	before := runtime.NumGoroutine()
	in, fns := loadStages(t, src, "fa", "fb")
	elems := ints(400)
	// Route the call through SafeCall so the re-raised JS throw converts
	// to an error the same way any host boundary sees it.
	run := value.ObjectVal(value.NewNative("run",
		func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			PipelineSpec(in, fns, elems, Options{Workers: 4, Pipeline: true, PipeBatch: 8})
			return value.Undefined(), nil
		}))
	_, err := in.SafeCall(run, value.Undefined(), nil)
	if err == nil {
		t.Fatal("expected the stage-A throw to propagate from the sequential fallback")
	}
	if !strings.Contains(err.Error(), "boom at 100") {
		t.Fatalf("throw = %q, want the first sequential element (boom at 100)", err)
	}
	settleGoroutines(t, before)
}

func TestPipelineSpecStaticElidesStageGuards(t *testing.T) {
	elems := ints(256)
	in, fns := loadStages(t, pureStages, "fa", "fb")
	out, oc := PipelineSpec(in, fns, elems, Options{
		Workers: 4, Pipeline: true, Static: StaticStrict, Verify: true,
	})
	if !oc.GuardElided || oc.Profiled != 0 || !oc.Parallel {
		t.Fatalf("proven stages did not elide guards: %+v", oc)
	}
	if len(oc.StageStatic) != 2 || len(oc.StageElided) != 2 || !oc.StageElided[0] || !oc.StageElided[1] {
		t.Fatalf("per-stage verdicts missing: %+v %+v", oc.StageStatic, oc.StageElided)
	}
	want := pipeSequential(t, pureStages, elems, "fa", "fb")
	if at := sameValues(want, out); at >= 0 {
		t.Fatalf("elided run diverged at %d", at)
	}
}

func TestPipelineSpecStaticRefutedRefuses(t *testing.T) {
	src := `
var acc = 0;
function fa(x, i) { return x + 1; }
function fb(x, i) { acc = acc + x; return x; }
`
	elems := ints(64)
	in, fns := loadStages(t, src, "fa", "fb")
	out, oc := PipelineSpec(in, fns, elems, Options{
		Workers: 4, Pipeline: true, Static: StaticAssist,
	})
	if oc.Parallel || !strings.Contains(oc.AbortReason, "refused pipeline plan: stage 1") {
		t.Fatalf("refuted stage did not refuse: %+v", oc)
	}
	if oc.Pure {
		t.Fatal("guarded sequential run must still flag the dynamic write")
	}
	want := pipeSequential(t, src, elems, "fa", "fb")
	if at := sameValues(want, out); at >= 0 {
		t.Fatalf("refused run diverged at %d", at)
	}
}

func TestPipelineSpecNonCrossableResultFallsBack(t *testing.T) {
	// Stage A returns an object mid-stream: it cannot cross the channel
	// to stage B's interpreter, so the plan must fall back — and the
	// fallback composes the stages on one interpreter where the object
	// flows fine.
	src := `
function fa(x, i) { if (i >= 100) { return {v: x}; } return x; }
function fb(x, i) { return (typeof x === "object") ? x.v : x; }
`
	elems := ints(300)
	want := pipeSequential(t, src, elems, "fa", "fb")
	in, fns := loadStages(t, src, "fa", "fb")
	out, oc := PipelineSpec(in, fns, elems, Options{Workers: 4, Pipeline: true, PipeBatch: 8})
	if oc.Parallel {
		t.Fatalf("non-crossable stream reported parallel: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "cannot cross share-nothing workers") {
		t.Fatalf("abort reason = %q", oc.AbortReason)
	}
	if at := sameValues(want, out); at >= 0 {
		t.Fatalf("fallback diverged at %d", at)
	}
	if !oc.Pure {
		t.Fatalf("crossability is not impurity: %+v", oc)
	}
}

func TestSplitPipeWorkers(t *testing.T) {
	cases := []struct {
		total, stages int
		want          []int
	}{
		{2, 3, []int{1, 1, 1}},
		{4, 3, []int{2, 1, 1}},
		{8, 3, []int{3, 3, 2}},
		{4, 2, []int{2, 2}},
		{1, 2, []int{1, 1}},
	}
	for _, c := range cases {
		got := splitPipeWorkers(c.total, c.stages)
		if len(got) != len(c.want) {
			t.Fatalf("split(%d,%d) = %v", c.total, c.stages, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("split(%d,%d) = %v, want %v", c.total, c.stages, got, c.want)
			}
		}
	}
}
