// Streaming pipeline speculation (pipePar): the produce → consume shape
// the paper's taxonomy leaves on the table. Where mapPar parallelizes
// *within* one loop, PipelineSpec runs a chain of dependent elemental
// stages — out[i] = fK(...f1(elems[i], i)..., i) — as streaming stages
// over internal/taskgraph: bounded channels of index-range batches
// between stages, each stage on its own share-nothing worker pool with
// its own purity Guard (or guard-elided when the static prover proves
// that stage's kernel pure), exact sequential fallback on any violation
// in any stage.
//
// The sequential semantics of pipePar are the *fused* composition —
// element-major, all stages for element i before element i+1 — which is
// what the profile slice, the fallback and the Verify shadow all
// execute. A chain of mapPar calls is stage-major instead; the two
// orders are indistinguishable exactly when the stages are pure, which
// is the only case that dispatches.
package autopar

import (
	"fmt"

	"repro/internal/effects"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/printer"
	"repro/internal/js/value"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// buildStagePlan serializes one stage's elemental into a share-nothing
// kernel taking (x, i) — the element value crosses as a call argument,
// so no per-stage input array is installed (stage inputs materialize
// only as they stream in).
func buildStagePlan(in *interp.Interp, s int, fn value.Value, opts Options) (*plan, string) {
	if !fn.IsCallable() {
		return nil, fmt.Sprintf("stage %d is not a function", s)
	}
	caps, abort := newCapturePlan(in, fn.Object())
	if abort != "" {
		return nil, fmt.Sprintf("stage %d: %s", s, abort)
	}
	lit := fn.Object().Fn.Decl.(*ast.FuncLit)
	src := caps.prelude() + "\nvar __elemental = " + printer.PrintExpr(lit) + ";\n" +
		"function kernel(x, i) {\n  return __elemental(x, i);\n}\n"
	setup := func(win *interp.Interp) error {
		caps.install(win)
		return nil
	}
	return &plan{
		kernel: &parallel.Kernel{
			Source:   src,
			Setup:    setup,
			TreeWalk: opts.TreeWalk,
			MaxSteps: opts.WorkerSteps,
		},
	}, ""
}

// pipePool is one stage's lazily-built worker state: a share-nothing
// interpreter, an armed Guard (nil when the stage's verdict elided it)
// and the resolved kernel(x, i) callable per slot. Each (stage, worker)
// slot is touched by a single goroutine — the taskgraph stage-isolation
// contract — so no locks.
type pipePool struct {
	p       *plan
	workers []*parallel.Worker
	guards  []*Guard
	kfns    []value.Value
	faults  []*workerFault
}

func newPipePool(p *plan, size int) *pipePool {
	return &pipePool{
		p:       p,
		workers: make([]*parallel.Worker, size),
		guards:  make([]*Guard, size),
		kfns:    make([]value.Value, size),
		faults:  make([]*workerFault, size),
	}
}

// at returns slot w's worker, guard and kernel callable, building them
// on first use. A nil worker means startup faulted (recorded).
func (pp *pipePool) at(w int) (*parallel.Worker, *Guard, value.Value) {
	if pp.workers[w] == nil {
		ww, guard, fault := pp.p.startWorker(w)
		if fault != nil {
			pp.faults[w] = fault
			return nil, nil, value.Undefined()
		}
		kfn, err := ww.Callable("kernel")
		if err != nil {
			pp.faults[w] = &workerFault{reason: err.Error()}
			return nil, nil, value.Undefined()
		}
		pp.workers[w], pp.guards[w], pp.kfns[w] = ww, guard, kfn
	}
	return pp.workers[w], pp.guards[w], pp.kfns[w]
}

// splitPipeWorkers divides the requested pool across stages: every
// stage needs at least one goroutine to stream, extras deal round-robin
// from stage 0. A pipeline dispatch therefore runs up to
// max(stages, workers) goroutines.
func splitPipeWorkers(total, stages int) []int {
	ws := make([]int, stages)
	for s := range ws {
		ws[s] = 1
	}
	for extra, s := total-stages, 0; extra > 0; extra-- {
		ws[s]++
		s = (s + 1) % stages
	}
	return ws
}

// PipelineSpec executes the stage composition
// out[i] = fns[K-1](... fns[0](elems[i], i) ..., i) speculatively as a
// streaming pipeline. The phases mirror speculate(): per-stage static
// verdicts, a fused profile slice under the Guard on the main
// interpreter, per-stage capture serialization, streaming dispatch over
// taskgraph.RunPipeline, and an exact sequential fallback — the fused
// composition re-run guarded on the main interpreter — when any stage
// faults. opts.Pipeline off (or Workers < 2, or a too-small remainder)
// keeps the whole operation sequential-but-guarded.
func PipelineSpec(in *interp.Interp, fns []value.Value, elems []value.Value, opts Options) ([]value.Value, Outcome) {
	n := len(elems)
	nStages := len(fns)
	oc := Outcome{Op: "pipePar", Elements: n, Workers: 1, Pure: true}
	out := make([]value.Value, n)
	if nStages == 0 {
		// Composing zero stages is the identity.
		copy(out, elems)
		return out, oc
	}
	composed := func(i int) {
		v := elems[i]
		for _, fn := range fns {
			v = call(in, fn, v, value.Int(i))
		}
		out[i] = v
	}
	if n == 0 {
		return out, oc
	}

	proven := make([]bool, nStages)
	allProven := false
	if opts.Static != StaticOff {
		oc.StageStatic = make([]effects.Report, nStages)
		allProven = true
		refuse := ""
		for s, fn := range fns {
			rep := AnalyzeStatic(in, fn)
			oc.StageStatic[s] = rep
			switch {
			case rep.Verdict == effects.Proven:
				proven[s] = true
				continue
			case rep.Verdict == effects.Refuted:
				if refuse == "" {
					refuse = fmt.Sprintf("refused pipeline plan: stage %d: static analysis refuted purity: %s", s, rep.First())
				}
			case opts.Static == StaticStrict:
				if refuse == "" {
					refuse = fmt.Sprintf("refused pipeline plan: stage %d: static=strict and verdict unknown: %s", s, rep.First())
				}
			}
			allProven = false
		}
		if refuse != "" {
			// Refused before any speculative work: the whole composition
			// runs sequentially — still guarded, so the dynamic purity
			// column keeps its own verdict (same contract as speculate).
			oc.AbortReason = refuse
			_, violation := profileUnderGuard(in, 0, n, n, composed)
			noteFallbackViolation(&oc, violation)
			oc.Profiled = n
			return out, oc
		}
	}

	base := opts.profileCount(n)
	if allProven {
		base = 0
	}
	wantSpec := opts.Pipeline && opts.Workers >= 2 && n-base >= opts.minDispatch()

	if allProven {
		if !wantSpec {
			for i := 0; i < n; i++ {
				composed(i)
			}
			oc.GuardElided = true
			return out, oc
		}
	} else {
		limit := n
		if wantSpec {
			limit = base
		}
		executed, violation := profileUnderGuard(in, 0, limit, n, composed)
		oc.Profiled = executed
		if violation != "" {
			oc.Pure = false
			oc.AbortReason = "aborted pipeline plan: " + violation
			return out, oc
		}
		if !wantSpec {
			return out, oc
		}
	}

	// Plan: the stage-0 input slice must cross share-nothing workers;
	// inter-stage values are checked as they are produced (triage).
	for i := base; i < n; i++ {
		if elems[i].IsObject() {
			oc.AbortReason = fmt.Sprintf("aborted pipeline plan: element %d is an object; cannot cross share-nothing workers", i)
			sequentialPipeRemainder(in, composed, base, n, &oc)
			return out, oc
		}
	}
	plans := make([]*plan, nStages)
	for s, fn := range fns {
		pl, abort := buildStagePlan(in, s, fn, opts)
		if abort != "" {
			oc.AbortReason = "aborted pipeline plan: " + abort
			sequentialPipeRemainder(in, composed, base, n, &oc)
			return out, oc
		}
		pl.unguarded = proven[s]
		plans[s] = pl
	}

	// Dispatch: [base, n) streams through the stages in index-range
	// batches. out doubles as the inter-stage buffer — stage s reads
	// out[i] (stage 0: elems[i]) and overwrites out[i]; batches are
	// disjoint and the channel hand-off orders stage s's write before
	// stage s+1's read, so the slice is race-free by construction.
	stageWorkers := splitPipeWorkers(opts.Workers, nStages)
	pools := make([]*pipePool, nStages)
	stages := make([]taskgraph.Stage, nStages)
	for s := range fns {
		s := s
		pools[s] = newPipePool(plans[s], stageWorkers[s])
		stages[s] = taskgraph.Stage{
			Name:    fmt.Sprintf("stage%d", s),
			Workers: stageWorkers[s],
			Body: func(w, b, lo, hi int) error {
				ww, guard, kfn := pools[s].at(w)
				if ww == nil {
					return errSpecAborted
				}
				for i := base + lo; i < base+hi; i++ {
					x := out[i]
					if s == 0 {
						x = elems[i]
					}
					v, err := ww.Call(kfn, x, value.Int(i))
					// Fast path first: fault labels are formatted only on
					// an actual fault (this is the measured hot path).
					if err != nil || v.IsObject() || guard.Violation() != "" {
						f := triage(w, fmt.Sprintf("kernel(%d) result", i), v, err, guard)
						f.reason = fmt.Sprintf("stage %d: %s", s, f.reason)
						pools[s].faults[w] = f
						return errSpecAborted
					}
					out[i] = v
				}
				return nil
			},
		}
	}
	stats, runErr := taskgraph.RunPipeline(n-base, stages, taskgraph.PipeOptions{
		Batch: opts.PipeBatch,
		Depth: opts.PipeDepth,
		Class: sched.ClassInteractive,
	})
	oc.Pipe = stats

	fault := firstPipeFault(pools)
	if fault == nil && runErr != nil {
		fault = &workerFault{reason: runErr.Error()}
	}
	if fault != nil {
		oc.Pure = !fault.impure && oc.Pure
		oc.AbortReason = "aborted pipeline plan: " + fault.reason
		// Exact sequential fallback: every remainder element recomputes
		// on the main interpreter in fused element order — partial
		// worker results (possibly stale snapshots) are all overwritten.
		sequentialPipeRemainder(in, composed, base, n, &oc)
		return out, oc
	}
	oc.Parallel = stats.Workers >= 2
	oc.Workers = stats.Workers
	oc.Dispatched = n - base
	oc.GuardElided = allProven
	if opts.Static != StaticOff {
		oc.StageElided = append([]bool(nil), proven...)
	}

	if opts.Verify {
		if at := verifyPipeRemainder(in, fns, elems, base, out); at >= 0 {
			oc.Misspeculated = true
			oc.Parallel = false
			oc.Workers = 1
			oc.Dispatched = 0
			oc.AbortReason = fmt.Sprintf("misspeculation: pipelined result diverged from sequential shadow at element %d", at)
		}
	}
	return out, oc
}

// sequentialPipeRemainder re-executes the fused composition for
// [base, n) on the main interpreter under a fresh guard — the abort
// path, preserving exact sequential semantics (side effects, exception
// order), with any late violation merged into the outcome.
func sequentialPipeRemainder(in *interp.Interp, composed func(i int), base, n int, oc *Outcome) {
	_, violation := profileUnderGuard(in, base, n, n, composed)
	noteFallbackViolation(oc, violation)
}

// verifyPipeRemainder shadow-runs the fused composition for [base, n)
// and compares bit-identical; it returns the first divergent index
// (-1 when identical), overwriting out with the sequential values from
// the divergence on so the caller always returns sequential semantics.
func verifyPipeRemainder(in *interp.Interp, fns []value.Value, elems []value.Value, base int, out []value.Value) int {
	diverged := -1
	for i := base; i < len(elems); i++ {
		shadow := elems[i]
		for _, fn := range fns {
			shadow = call(in, fn, shadow, value.Int(i))
		}
		if diverged < 0 && !value.SameValue(shadow, out[i]) {
			diverged = i
		}
		if diverged >= 0 {
			out[i] = shadow
		}
	}
	return diverged
}

// firstPipeFault returns the first fault in (stage, worker) scan order —
// a deterministic pick when several stages fault concurrently.
func firstPipeFault(pools []*pipePool) *workerFault {
	for _, pp := range pools {
		for _, f := range pp.faults {
			if f != nil {
				return f
			}
		}
	}
	return nil
}
