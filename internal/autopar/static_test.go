package autopar

// Differential suite for the static purity prover's guard-free path:
// a Proven kernel dispatched with zero Guard hooks must produce output
// byte-identical to the same kernel run with guards forcibly enabled
// (StaticOff — the speculative path profiles under guard and arms one
// Guard per worker). Run under -race, the suite also proves the
// unguarded workers share nothing.

import (
	"strings"
	"testing"

	"repro/internal/effects"
	"repro/internal/js/value"
	"repro/internal/workloads"
)

// TestStaticProvenExecKernelsDifferential: every shipped exec kernel
// must be Proven, dispatch guard-free with no profile slice, and match
// the guarded speculative run bit for bit.
func TestStaticProvenExecKernelsDifferential(t *testing.T) {
	for _, ek := range workloads.ExecKernels() {
		ek := ek
		t.Run(ek.Loop, func(t *testing.T) {
			const n = 192
			elems := make([]value.Value, n)
			for i := range elems {
				elems[i] = value.Number(ek.Input(i))
			}

			inA, fnA := load(t, ek.Prelude+"\nvar f = "+ek.Elemental+";\n")
			outStatic, ocStatic := MapSpec(inA, fnA, elems, Options{Workers: 4, Static: StaticAssist})
			if ocStatic.Static.Verdict != effects.Proven {
				t.Fatalf("verdict = %s (%v), want proven", ocStatic.Static.Verdict, ocStatic.Static.Reasons)
			}
			if !ocStatic.GuardElided {
				t.Fatalf("GuardElided = false: %+v", ocStatic)
			}
			if ocStatic.Profiled != 0 {
				t.Errorf("Profiled = %d, want 0 (no profile slice on the Proven path)", ocStatic.Profiled)
			}
			if !ocStatic.Parallel || ocStatic.AbortReason != "" {
				t.Fatalf("Proven kernel did not dispatch cleanly: %+v", ocStatic)
			}

			// Guards forcibly re-enabled: the StaticOff path.
			inB, fnB := load(t, ek.Prelude+"\nvar f = "+ek.Elemental+";\n")
			outGuarded, ocGuarded := MapSpec(inB, fnB, elems, Options{Workers: 4})
			if ocGuarded.GuardElided {
				t.Fatalf("StaticOff run elided the guard: %+v", ocGuarded)
			}
			if !ocGuarded.Parallel {
				t.Fatalf("guarded run did not dispatch: %+v", ocGuarded)
			}

			if len(outStatic) != len(outGuarded) {
				t.Fatalf("output lengths differ: %d vs %d", len(outStatic), len(outGuarded))
			}
			for i := range outStatic {
				if !value.SameValue(outStatic[i], outGuarded[i]) {
					t.Fatalf("element %d diverged: unguarded %s vs guarded %s",
						i, outStatic[i].Inspect(), outGuarded[i].Inspect())
				}
			}
		})
	}
}

// TestStaticProvenZeroHooks: white-box — workers of an unguarded plan
// carry no interpreter hooks at all.
func TestStaticProvenZeroHooks(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x * 2 + 1; }`)
	if rep := AnalyzeStatic(in, fn); rep.Verdict != effects.Proven {
		t.Fatalf("verdict = %s (%v), want proven", rep.Verdict, rep.Reasons)
	}
	elems := ints(64)
	pl, abort := buildPlan("mapPar", in, fn, elems, 0)
	if abort != "" {
		t.Fatalf("buildPlan aborted: %s", abort)
	}
	pl.unguarded = true
	w, guard, fault := pl.startWorker(0)
	if fault != nil {
		t.Fatalf("startWorker fault: %+v", fault)
	}
	if guard != nil {
		t.Fatal("unguarded plan armed a Guard")
	}
	if hooks := w.Interp().HooksInstalled(); hooks != nil {
		t.Fatalf("unguarded worker has hooks installed: %T", hooks)
	}
	// The guarded baseline, for contrast.
	pl2, _ := buildPlan("mapPar", in, fn, elems, 0)
	w2, guard2, _ := pl2.startWorker(0)
	if guard2 == nil || w2.Interp().HooksInstalled() == nil {
		t.Fatal("guarded plan must arm a Guard with hooks")
	}
}

// TestStaticRefutedRefusesDispatch: a statically refuted kernel must
// never reach the pool, and the sequential fallback must still produce
// exact sequential semantics (every element's side effects included).
func TestStaticRefutedRefusesDispatch(t *testing.T) {
	in, fn := load(t, `var g = 0; function f(x, i) { g = g + x; return g; }`)
	elems := ints(64)
	out, oc := MapSpec(in, fn, elems, Options{Workers: 4, Static: StaticAssist})
	if oc.Parallel || oc.Dispatched != 0 {
		t.Fatalf("refuted kernel dispatched: %+v", oc)
	}
	if oc.Static.Verdict != effects.Refuted {
		t.Fatalf("verdict = %s, want refuted", oc.Static.Verdict)
	}
	if !strings.Contains(oc.AbortReason, "static analysis refuted purity") {
		t.Errorf("abort reason %q should name the static refusal", oc.AbortReason)
	}
	// Sequential semantics: out[i] is the running prefix sum.
	sum := 0.0
	for i, v := range out {
		sum += float64(i + 1)
		if v.ToNumber() != sum {
			t.Fatalf("out[%d] = %v, want %v", i, v.ToNumber(), sum)
		}
	}
	// The dynamic column keeps its own verdict: the guard saw the write.
	if oc.Pure {
		t.Error("dynamic Pure = true for a kernel the guard watched write a global")
	}
}

// TestStaticStrictRefusesUnknown: under strict mode an Unknown kernel
// (here: unresolvable callee via a mutable function-valued binding) is
// refused; under assist it still speculates and may dispatch.
func TestStaticStrictRefusesUnknown(t *testing.T) {
	// A cleanly Unknown kernel: `this` escapes lexical analysis.
	in2, fn2 := load(t, `function f(x, i) { if (false) { return this.x; } return x + 1; }`)
	elems := ints(64)
	out, oc := MapSpec(in2, fn2, elems, Options{Workers: 4, Static: StaticStrict})
	if oc.Parallel || oc.Dispatched != 0 {
		t.Fatalf("strict mode dispatched an Unknown kernel: %+v", oc)
	}
	if !strings.Contains(oc.AbortReason, "static=strict") {
		t.Errorf("abort reason %q should name strict mode", oc.AbortReason)
	}
	for i, v := range out {
		if v.ToNumber() != float64(i+2) {
			t.Fatalf("out[%d] = %v, want %d", i, v.ToNumber(), i+2)
		}
	}

	// Assist mode: the same kernel speculates and dispatches (the
	// dynamic guard proves at runtime what the prover could not).
	in3, fn3 := load(t, `function f(x, i) { if (false) { return this.x; } return x + 1; }`)
	out3, oc3 := MapSpec(in3, fn3, elems, Options{Workers: 4, Static: StaticAssist, Verify: true})
	if !oc3.Parallel || oc3.Misspeculated {
		t.Fatalf("assist mode did not dispatch the Unknown kernel: %+v", oc3)
	}
	if oc3.GuardElided {
		t.Fatal("assist mode elided the guard for an Unknown kernel")
	}
	for i, v := range out3 {
		if v.ToNumber() != float64(i+2) {
			t.Fatalf("out3[%d] = %v, want %d", i, v.ToNumber(), i+2)
		}
	}
}

// TestStaticProvenReduce: the reduce path also elides the guard for a
// Proven associative combiner and stays byte-identical to the guarded
// chunked fold.
func TestStaticProvenReduce(t *testing.T) {
	in, fn := load(t, `function f(a, b) { return a + b; }`)
	elems := ints(256)
	v, oc := ReduceSpec(in, fn, elems, value.Undefined(), false, Options{Workers: 4, Static: StaticAssist, Verify: true})
	if oc.Static.Verdict != effects.Proven {
		t.Fatalf("verdict = %s (%v), want proven", oc.Static.Verdict, oc.Static.Reasons)
	}
	if !oc.GuardElided || !oc.Parallel || oc.Misspeculated {
		t.Fatalf("Proven reduce did not dispatch guard-free: %+v", oc)
	}
	in2, fn2 := load(t, `function f(a, b) { return a + b; }`)
	v2, oc2 := ReduceSpec(in2, fn2, elems, value.Undefined(), false, Options{Workers: 4})
	if !oc2.Parallel {
		t.Fatalf("guarded reduce did not dispatch: %+v", oc2)
	}
	if !value.SameValue(v, v2) {
		t.Fatalf("reduce diverged: unguarded %s vs guarded %s", v.Inspect(), v2.Inspect())
	}
}

// TestStaticOffNeverAnalyzes: the default mode must not consult the
// prover at all — the Outcome's static report stays the zero value.
func TestStaticOffNeverAnalyzes(t *testing.T) {
	in, fn := load(t, `function f(x, i) { return x + 1; }`)
	_, oc := MapSpec(in, fn, ints(64), Options{Workers: 4})
	if oc.Static.Verdict != effects.Unknown || oc.Static.Reasons != nil {
		t.Fatalf("StaticOff populated the static report: %+v", oc.Static)
	}
	if oc.GuardElided {
		t.Fatal("StaticOff elided the guard")
	}
}
