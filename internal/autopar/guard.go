package autopar

import (
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Guard is the runtime purity monitor speculation rests on. While active
// it watches every write the interpreter performs: a write to a binding
// or object that existed before the guarded operation started is a purity
// violation — the elemental function touched state it does not own, so a
// parallel plan over it would race. Bindings and objects created during
// the operation (locals, fresh temporaries) are in the epoch and freely
// writable; callers may exempt additional objects (e.g. a result array
// under construction).
//
// The guard records the *first* violation with a §5.3-style reason naming
// the variable or property, which is what RiverTrailReport() surfaces to
// the developer.
type Guard struct {
	interp.NopHooks
	active   bool
	epoch    map[any]bool
	violated string
	// globalScope, when set (worker configuration), makes the creation
	// of a NEW binding in that scope a violation: an implicit global
	// (`leak = i` with no declaration) materializing on a share-nothing
	// worker would be silently discarded instead of landing on the main
	// interpreter as sequential semantics require.
	globalScope *interp.Scope
}

// NewGuard returns an inactive guard.
func NewGuard() *Guard {
	return &Guard{epoch: make(map[any]bool)}
}

// Violation returns the first recorded purity violation ("" when clean).
func (g *Guard) Violation() string {
	if g == nil {
		// A statically-proven dispatch runs with no guard at all; the
		// nil guard never has a violation to report.
		return ""
	}
	return g.violated
}

// VarDeclare implements interp.Hooks: new bindings join the epoch —
// except implicit globals on a worker (see globalScope), which violate.
func (g *Guard) VarDeclare(name string, b *interp.Binding) {
	if !g.active {
		return
	}
	if g.globalScope != nil && g.violated == "" && g.globalScope.Lookup(name) == b {
		g.violated = "creates implicit global " + name
	}
	g.epoch[b] = true
}

// VarWrite implements interp.Hooks: writes outside the epoch violate.
func (g *Guard) VarWrite(name string, b *interp.Binding) {
	if !g.active || g.violated != "" {
		return
	}
	if !g.epoch[b] {
		g.violated = "writes captured variable " + name
	}
}

// ObjectNew implements interp.Hooks: new objects join the epoch.
func (g *Guard) ObjectNew(o *value.Object) {
	if g.active {
		g.epoch[o] = true
	}
}

// PropWrite implements interp.Hooks: property writes on pre-existing
// objects violate.
func (g *Guard) PropWrite(o *value.Object, key string, _ *interp.Binding) {
	if !g.active || g.violated != "" {
		return
	}
	if !g.epoch[o] {
		g.violated = "mutates external object <" + o.Class + ">." + key
	}
}

// With runs body with the guard chained onto whatever hooks the
// interpreter already has installed, and restores them afterwards. The
// restore runs even when body panics (the interpreter signals JS throws
// by panicking), so an elemental function that throws mid-operation can
// never leak an active guard that would flag unrelated later writes.
func (g *Guard) With(in *interp.Interp, body func() error) error {
	prev := in.HooksInstalled()
	if prev != nil {
		in.SetHooks(interp.NewMultiHooks(prev, g))
	} else {
		in.SetHooks(g)
	}
	g.active = true
	defer func() {
		g.active = false
		in.SetHooks(prev)
	}()
	return body()
}

// Activate arms the guard on a fresh interpreter with no hook chaining —
// the per-worker configuration, where everything loaded before the first
// kernel call (inputs, captured globals, helper functions) is external
// state the kernel must not write, and a brand-new implicit global is a
// side effect the share-nothing worker could never deliver back.
func (g *Guard) Activate(in *interp.Interp) {
	g.globalScope = in.Globals
	in.SetHooks(g)
	g.active = true
}
