// Package proxy implements the JS-CERES instrumentation proxy of Fig. 5:
// an HTTP server that sits between the browser and the web server,
// rewrites JavaScript responses on the way through (step 2), accepts the
// analysis results the instrumented page posts back (step 5), and saves
// human-readable reports paired with the original sources (step 6; the
// paper pushes them to github.com — here they go to a local report
// directory, which is the substitution DESIGN.md documents).
package proxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/instrument"
)

// Proxy is the instrumenting reverse proxy.
type Proxy struct {
	// Origin is the upstream web server base URL.
	Origin *url.URL
	// Mode selects the injected instrumentation stage.
	Mode instrument.Mode
	// ReportDir receives result reports ("github" substitute).
	ReportDir string
	// Client performs upstream requests (http.DefaultClient by default).
	Client *http.Client

	mu      sync.Mutex
	results []Report
	// Instrumented counts rewritten responses.
	Instrumented int
	// Passthrough counts untouched responses.
	Passthrough int
	// Failures counts unparsable scripts passed through unmodified.
	Failures int
}

// Report is one result upload from the exercised page.
type Report struct {
	Path     string          `json:"path"`
	Received time.Time       `json:"received"`
	Body     json.RawMessage `json:"body"`
}

// New returns a proxy for the given origin.
func New(origin string, mode instrument.Mode, reportDir string) (*Proxy, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return nil, fmt.Errorf("proxy: origin: %w", err)
	}
	return &Proxy{Origin: u, Mode: mode, ReportDir: reportDir, Client: http.DefaultClient}, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/__ceres/results" && r.Method == http.MethodPost {
		p.handleResults(w, r)
		return
	}
	p.forward(w, r)
}

func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	up := *p.Origin
	up.Path = r.URL.Path
	up.RawQuery = r.URL.RawQuery
	req, err := http.NewRequest(r.Method, up.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.Client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	ct := resp.Header.Get("Content-Type")
	if resp.StatusCode == http.StatusOK && isJavaScript(ct, r.URL.Path) {
		if rewritten, err := instrument.Rewrite(string(body), p.Mode); err == nil {
			body = []byte(rewritten.Source)
			p.mu.Lock()
			p.Instrumented++
			p.mu.Unlock()
		} else {
			// Step 2 must never break the page: unparsable scripts pass
			// through untouched.
			p.mu.Lock()
			p.Failures++
			p.mu.Unlock()
		}
	} else {
		p.mu.Lock()
		p.Passthrough++
		p.mu.Unlock()
	}

	for k, vs := range resp.Header {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func isJavaScript(contentType, path string) bool {
	if strings.Contains(contentType, "javascript") {
		return true
	}
	return strings.HasSuffix(path, ".js")
}

func (p *Proxy) handleResults(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !json.Valid(body) {
		http.Error(w, "proxy: results must be JSON", http.StatusBadRequest)
		return
	}
	rep := Report{
		Path:     r.URL.Query().Get("page"),
		Received: time.Now(),
		Body:     json.RawMessage(body),
	}
	p.mu.Lock()
	p.results = append(p.results, rep)
	n := len(p.results)
	p.mu.Unlock()

	if p.ReportDir != "" {
		if err := p.saveReport(n, rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// saveReport writes the human-readable report file (Fig. 5 step 6).
func (p *Proxy) saveReport(seq int, rep Report) error {
	if err := os.MkdirAll(p.ReportDir, 0o755); err != nil {
		return err
	}
	var pretty map[string]any
	if err := json.Unmarshal(rep.Body, &pretty); err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "JS-CERES report #%d\npage: %s\nreceived: %s\n\n",
		seq, rep.Path, rep.Received.Format(time.RFC3339))
	enc, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return err
	}
	sb.Write(enc)
	sb.WriteByte('\n')
	name := filepath.Join(p.ReportDir, fmt.Sprintf("report-%03d.txt", seq))
	return os.WriteFile(name, []byte(sb.String()), 0o644)
}

// Results returns the received reports.
func (p *Proxy) Results() []Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Report, len(p.results))
	copy(out, p.results)
	return out
}
