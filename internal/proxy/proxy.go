// Package proxy implements the JS-CERES instrumentation proxy of Fig. 5:
// an HTTP server that sits between the browser and the web server,
// rewrites JavaScript responses on the way through (step 2), accepts the
// analysis results the instrumented page posts back (step 5), and saves
// human-readable reports paired with the original sources (step 6; the
// paper pushes them to github.com — here they go to a local report
// directory, which is the substitution DESIGN.md documents).
//
// The proxy is built to sit on the hot path of every page load: rewrites
// go through a content-addressed single-flight cache (cache.go),
// forwarding follows reverse-proxy rules (hop-by-hop headers stripped in
// both directions per RFC 9110 §7.6.1, escaped paths preserved, non-JS
// bodies streamed), and all counters are exposed through the race-free
// Stats accessor and the /__ceres/stats endpoint.
package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/textproto"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
)

// Proxy is the instrumenting reverse proxy.
type Proxy struct {
	// Origin is the upstream web server base URL.
	Origin *url.URL
	// Mode selects the injected instrumentation stage.
	Mode instrument.Mode
	// ReportDir receives result reports ("github" substitute).
	ReportDir string
	// Client performs upstream requests (http.DefaultClient by default).
	Client *http.Client
	// Cache dedupes rewrites across requests. nil disables caching:
	// every JavaScript response is rewritten from scratch.
	Cache *RewriteCache
	// StatsEndpoint serves GET /__ceres/stats as JSON when true.
	StatsEndpoint bool

	instrumented atomic.Int64
	passthrough  atomic.Int64
	failures     atomic.Int64
	// uncachedRewrites counts direct instrument.Rewrite calls made when
	// Cache is nil (the cache tracks its own).
	uncachedRewrites atomic.Int64
	seq              atomic.Int64

	mu      sync.Mutex
	results []Report
}

// Stats is a consistent-enough snapshot of the proxy's counters: each
// field is individually exact; the set is assembled without a global
// pause, so fields racing with live traffic may be offset by in-flight
// requests.
type Stats struct {
	// Instrumented counts responses served with a rewritten body.
	Instrumented int64 `json:"instrumented"`
	// Passthrough counts responses forwarded untouched (non-JS or
	// non-200).
	Passthrough int64 `json:"passthrough"`
	// Failures counts JS responses passed through unmodified because
	// the rewrite failed (step 2 must never break the page).
	Failures int64 `json:"failures"`
	// Rewrites counts actual instrument.Rewrite invocations, cached and
	// uncached paths combined.
	Rewrites int64 `json:"rewrites"`
	// CacheHits/CacheMisses/Coalesced/CacheEvictions/CacheBytes/
	// CacheEntries mirror RewriteCache.Stats (zero when Cache is nil).
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Coalesced      int64 `json:"coalesced"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheEntries   int64 `json:"cache_entries"`
	// Reports counts result uploads accepted on /__ceres/results.
	Reports int64 `json:"reports"`
}

// Report is one result upload from the exercised page.
type Report struct {
	Path     string          `json:"path"`
	Received time.Time       `json:"received"`
	Body     json.RawMessage `json:"body"`
}

// New returns a proxy for the given origin with a DefaultCacheBytes
// rewrite cache and the stats endpoint enabled.
func New(origin string, mode instrument.Mode, reportDir string) (*Proxy, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return nil, fmt.Errorf("proxy: origin: %w", err)
	}
	return &Proxy{
		Origin:        u,
		Mode:          mode,
		ReportDir:     reportDir,
		Client:        http.DefaultClient,
		Cache:         NewRewriteCache(DefaultCacheBytes),
		StatsEndpoint: true,
	}, nil
}

// Stats snapshots the proxy and cache counters.
func (p *Proxy) Stats() Stats {
	s := Stats{
		Instrumented: p.instrumented.Load(),
		Passthrough:  p.passthrough.Load(),
		Failures:     p.failures.Load(),
		Rewrites:     p.uncachedRewrites.Load(),
	}
	p.mu.Lock()
	s.Reports = int64(len(p.results))
	p.mu.Unlock()
	if p.Cache != nil {
		cs := p.Cache.Stats()
		s.Rewrites += cs.Rewrites
		s.CacheHits = cs.Hits
		s.CacheMisses = cs.Misses
		s.Coalesced = cs.Coalesced
		s.CacheEvictions = cs.Evictions
		s.CacheBytes = cs.Bytes
		s.CacheEntries = cs.Entries
	}
	return s
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/__ceres/results" && r.Method == http.MethodPost {
		p.handleResults(w, r)
		return
	}
	if r.URL.Path == "/__ceres/stats" && p.StatsEndpoint && r.Method == http.MethodGet {
		p.handleStats(w)
		return
	}
	p.forward(w, r)
}

// hopByHopHeaders are the connection-scoped fields of RFC 9110 §7.6.1
// (plus the de-facto Proxy-Connection); a proxy must not forward them in
// either direction, in addition to any field named by Connection.
var hopByHopHeaders = []string{
	"Connection",
	"Proxy-Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"TE",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// stripHopByHop removes the headers named in Connection, then the
// well-known hop-by-hop set.
func stripHopByHop(h http.Header) {
	for _, field := range h.Values("Connection") {
		for _, name := range strings.Split(field, ",") {
			if name = textproto.TrimString(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// copyEndToEndHeaders copies src into dst minus hop-by-hop fields.
func copyEndToEndHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	stripHopByHop(dst)
}

func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	up := *p.Origin
	// Preserve the escaped form: a path like /a%2Fb must reach the
	// origin as sent, not decoded-and-re-encoded into /a/b.
	up.Path = r.URL.Path
	up.RawPath = r.URL.RawPath
	up.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, up.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	stripHopByHop(req.Header)
	// Let the transport negotiate encoding: forwarding the browser's
	// Accept-Encoding verbatim could yield a compressed body the
	// rewriter cannot parse; the transport's implicit gzip is
	// decompressed transparently before we see it.
	req.Header.Del("Accept-Encoding")

	resp, err := p.Client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK || !isJavaScript(resp.Header.Get("Content-Type"), r.URL.Path) {
		// Non-JS (and non-200) responses stream through without
		// buffering — images and videos never sit in proxy memory.
		p.passthrough.Add(1)
		copyEndToEndHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out, rerr := p.rewrite(body)
	if rerr != nil {
		// Step 2 must never break the page: unparsable scripts pass
		// through untouched.
		p.failures.Add(1)
		out = body
	} else {
		p.instrumented.Add(1)
	}
	copyEndToEndHeaders(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(out)
}

// rewrite instruments src through the cache when one is configured.
func (p *Proxy) rewrite(src []byte) ([]byte, error) {
	if p.Cache != nil {
		return p.Cache.Rewrite(src, p.Mode)
	}
	p.uncachedRewrites.Add(1)
	res, err := instrument.Rewrite(string(src), p.Mode)
	if err != nil {
		return nil, err
	}
	return []byte(res.Source), nil
}

func isJavaScript(contentType, path string) bool {
	ct := strings.ToLower(contentType)
	if strings.Contains(ct, "javascript") || strings.Contains(ct, "ecmascript") {
		return true
	}
	return strings.HasSuffix(path, ".js") || strings.HasSuffix(path, ".mjs")
}

func (p *Proxy) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p.Stats())
}

func (p *Proxy) handleResults(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !json.Valid(body) {
		http.Error(w, "proxy: results must be JSON", http.StatusBadRequest)
		return
	}
	rep := Report{
		Path:     r.URL.Query().Get("page"),
		Received: time.Now(),
		Body:     json.RawMessage(body),
	}
	// Save before appending so memory and disk cannot diverge: a failed
	// write 500s without leaving a phantom in-memory report.
	seq := p.seq.Add(1)
	if p.ReportDir != "" {
		if err := p.saveReport(int(seq), rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	p.mu.Lock()
	p.results = append(p.results, rep)
	p.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// saveReport writes the human-readable report file (Fig. 5 step 6).
func (p *Proxy) saveReport(seq int, rep Report) error {
	if err := os.MkdirAll(p.ReportDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "JS-CERES report #%d\npage: %s\nreceived: %s\n\n",
		seq, rep.Path, rep.Received.Format(time.RFC3339))
	// json.Indent pretty-prints any valid JSON value — objects, arrays,
	// bare numbers — where unmarshalling into map[string]any rejected
	// everything but objects.
	if err := json.Indent(&buf, rep.Body, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	name := filepath.Join(p.ReportDir, fmt.Sprintf("report-%03d.txt", seq))
	return os.WriteFile(name, buf.Bytes(), 0o644)
}

// Results returns the received reports.
func (p *Proxy) Results() []Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Report, len(p.results))
	copy(out, p.results)
	return out
}
