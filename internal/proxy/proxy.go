// Package proxy implements the JS-CERES instrumentation proxy of Fig. 5:
// an HTTP server that sits between the browser and the web server,
// rewrites JavaScript responses on the way through (step 2), accepts the
// analysis results the instrumented page posts back (step 5), and saves
// human-readable reports paired with the original sources (step 6; the
// paper pushes them to github.com — here they go to a local report
// directory, which is the substitution DESIGN.md documents).
//
// The proxy is built to sit on the hot path of every page load: rewrites
// go through a content-addressed single-flight cache (cache.go) sharded
// N ways by content hash, cache misses flow through the staged serving
// pipeline (pipeline.go) with bounded admission — saturation is shed as
// HTTP 429 + Retry-After instead of queueing without limit — forwarding
// follows reverse-proxy rules (hop-by-hop headers stripped in both
// directions per RFC 9110 §7.6.1, escaped paths preserved, non-JS
// bodies streamed), and all counters are exposed through the race-free
// Stats accessor and the /__ceres/stats endpoint. /__ceres/prewarm
// accepts a batch of script URLs or inline sources and fans them
// through the same pipeline to warm the cache ahead of traffic.
package proxy

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/textproto"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/sched"
)

// QueueWaitHeader is set on rewritten JavaScript responses: the
// admission queue wait the rewrite paid, in microseconds (0 for cache
// hits and inline rewrites). Load generators read it to report
// queue-wait percentiles per client count.
const QueueWaitHeader = "X-Ceres-Queue-Wait"

// Proxy is the instrumenting reverse proxy.
type Proxy struct {
	// Origin is the upstream web server base URL.
	Origin *url.URL
	// Mode selects the injected instrumentation stage.
	Mode instrument.Mode
	// ReportDir receives result reports ("github" substitute).
	ReportDir string
	// Client performs upstream requests (http.DefaultClient by default).
	Client *http.Client
	// Cache dedupes rewrites across requests. nil disables caching:
	// every JavaScript response is rewritten from scratch.
	Cache *RewriteCache
	// Pipeline, when non-nil, runs rewrites as staged scheduler jobs
	// with bounded admission; saturation is shed as 429. NewServing
	// wires it under the cache (misses pay admission, hits do not).
	Pipeline *Pipeline
	// StatsEndpoint serves GET /__ceres/stats as JSON when true.
	StatsEndpoint bool
	// Cluster, when non-nil, routes each script key to its owning peer
	// before the local cache: keys this node owns (or has replicated
	// hot) are served locally, everything else is forwarded to its
	// owner over the peer protocol, so the per-key single-flight and
	// LRU contracts hold fleet-wide. nil = single-node mode.
	Cluster *cluster.Node

	instrumented atomic.Int64
	passthrough  atomic.Int64
	failures     atomic.Int64
	rejected     atomic.Int64
	// uncachedRewrites counts direct rewrite calls made when Cache is
	// nil (the cache tracks its own).
	uncachedRewrites atomic.Int64
	seq              atomic.Int64

	mu      sync.Mutex
	results []Report
}

// ServeConfig sizes the serving layer built by NewServing.
type ServeConfig struct {
	// CacheBytes is the rewrite-cache byte budget
	// (<= 0 → DefaultCacheBytes).
	CacheBytes int64
	// DisableCache runs every rewrite through the pipeline with no
	// cache in front (the `-cache-bytes 0` flag semantics).
	DisableCache bool
	// Shards splits the cache into independent lock domains
	// (0 → DefaultShards).
	Shards int
	// Workers sizes the pipeline's scheduler pool (0 → GOMAXPROCS).
	Workers int
	// QueueDepth bounds outstanding admitted rewrites; beyond it,
	// requests are shed with 429 (0 → Workers*2).
	QueueDepth int
	// RefreshTTL > 0 enables near-expiry background refresh of hot
	// cache entries through the same pipeline.
	RefreshTTL time.Duration
	// BatchMaxWait > 0 puts a queue-wait deadline on batch admissions
	// (prewarm, background refresh): work still queued past it is shed
	// instead of run stale. 0 = no deadline.
	BatchMaxWait time.Duration
}

// Stats is a snapshot of the proxy's counters. Each cache shard is
// snapshotted under its own lock — a shard's entries, bytes and
// in-flight rewrites are mutually consistent — and the proxy-level
// atomics are read once each; fields racing with live traffic may be
// offset by requests still in flight.
type Stats struct {
	// Instrumented counts responses served with a rewritten body.
	Instrumented int64 `json:"instrumented"`
	// Passthrough counts responses forwarded untouched (non-JS or
	// non-200).
	Passthrough int64 `json:"passthrough"`
	// Failures counts JS responses passed through unmodified because
	// the rewrite failed (step 2 must never break the page).
	Failures int64 `json:"failures"`
	// Rejected counts requests shed with 429 because the pipeline's
	// admission queue was saturated.
	Rejected int64 `json:"rejected"`
	// Rewrites counts rewrite invocations, cached and uncached paths
	// combined (background refreshes count separately).
	Rewrites int64 `json:"rewrites"`
	// CacheHits/CacheMisses/Coalesced/CacheEvictions/CacheBytes/
	// CacheEntries/CacheInflight/CacheRefreshes/CacheShards mirror
	// RewriteCache.Stats (zero when Cache is nil). CacheInflight is the
	// number of single-flight rewrites in progress — entries the cache
	// is committed to that are not yet resident, included so the
	// snapshot cannot under-report entries against bytes.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	Coalesced      int64 `json:"coalesced"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheEntries   int64 `json:"cache_entries"`
	CacheInflight  int64 `json:"cache_inflight"`
	CacheRefreshes int64 `json:"cache_refreshes"`
	CacheShards    int   `json:"cache_shards"`
	// Reports counts result uploads accepted on /__ceres/results.
	Reports int64 `json:"reports"`
	// Pipeline is the staged serving pipeline's snapshot (nil when the
	// proxy rewrites inline).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
	// Cluster is the fleet view: membership, ring rebalances, and the
	// owned/forwarded/replica/fallback counters (nil in single-node
	// mode).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// Report is one result upload from the exercised page.
type Report struct {
	Path     string          `json:"path"`
	Received time.Time       `json:"received"`
	Body     json.RawMessage `json:"body"`
}

// New returns a proxy for the given origin with a DefaultCacheBytes,
// DefaultShards rewrite cache, inline rewrites (no pipeline), and the
// stats endpoint enabled.
func New(origin string, mode instrument.Mode, reportDir string) (*Proxy, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return nil, fmt.Errorf("proxy: origin: %w", err)
	}
	return &Proxy{
		Origin:        u,
		Mode:          mode,
		ReportDir:     reportDir,
		Client:        http.DefaultClient,
		Cache:         NewShardedRewriteCache(DefaultCacheBytes, DefaultShards),
		StatsEndpoint: true,
	}, nil
}

// NewServing returns the production-shaped proxy: sharded cache,
// staged pipeline with bounded admission under every cache miss, and
// (when cfg.RefreshTTL > 0) near-expiry background refresh through the
// same pipeline. Callers must Close it to stop the pipeline workers.
func NewServing(origin string, mode instrument.Mode, reportDir string, cfg ServeConfig) (*Proxy, error) {
	p, err := New(origin, mode, reportDir)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.Pipeline = NewPipeline(workers, cfg.QueueDepth)
	p.Pipeline.SetBatchMaxWait(cfg.BatchMaxWait)
	if cfg.DisableCache {
		p.Cache = nil
		return p, nil
	}
	p.Cache = NewShardedRewriteCache(cfg.CacheBytes, cfg.Shards)
	p.Cache.SetRewriteFunc(p.Pipeline.RewriteFor)
	if cfg.RefreshTTL > 0 {
		p.Cache.SetRefresh(cfg.RefreshTTL, p.Pipeline.AsyncRewrite)
	}
	return p, nil
}

// Close stops the pipeline workers, draining in-flight rewrites. Safe
// to call on pipeline-less proxies.
func (p *Proxy) Close() {
	if p.Pipeline != nil {
		p.Pipeline.Close()
	}
}

// Stats snapshots the proxy, cache and pipeline counters.
func (p *Proxy) Stats() Stats {
	s := Stats{
		Instrumented: p.instrumented.Load(),
		Passthrough:  p.passthrough.Load(),
		Failures:     p.failures.Load(),
		Rejected:     p.rejected.Load(),
		Rewrites:     p.uncachedRewrites.Load(),
	}
	p.mu.Lock()
	s.Reports = int64(len(p.results))
	p.mu.Unlock()
	if p.Cache != nil {
		cs := p.Cache.Stats()
		s.Rewrites += cs.Rewrites
		s.CacheHits = cs.Hits
		s.CacheMisses = cs.Misses
		s.Coalesced = cs.Coalesced
		s.CacheEvictions = cs.Evictions
		s.CacheBytes = cs.Bytes
		s.CacheEntries = cs.Entries
		s.CacheInflight = cs.Inflight
		s.CacheRefreshes = cs.Refreshes
		s.CacheShards = cs.Shards
	}
	if p.Pipeline != nil {
		ps := p.Pipeline.Stats()
		s.Pipeline = &ps
	}
	if p.Cluster != nil {
		cs := p.Cluster.Stats()
		s.Cluster = &cs
	}
	return s
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/__ceres/results" && r.Method == http.MethodPost {
		p.handleResults(w, r)
		return
	}
	if r.URL.Path == "/__ceres/prewarm" && r.Method == http.MethodPost {
		p.handlePrewarm(w, r)
		return
	}
	if r.URL.Path == "/__ceres/stats" && p.StatsEndpoint && r.Method == http.MethodGet {
		p.handleStats(w)
		return
	}
	if r.URL.Path == cluster.PeerRewritePath && r.Method == http.MethodPost {
		p.handlePeerRewrite(w, r)
		return
	}
	if r.URL.Path == cluster.PeerPingPath {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	p.forward(w, r)
}

// hopByHopHeaders are the connection-scoped fields of RFC 9110 §7.6.1
// (plus the de-facto Proxy-Connection); a proxy must not forward them in
// either direction, in addition to any field named by Connection.
var hopByHopHeaders = []string{
	"Connection",
	"Proxy-Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"TE",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// stripHopByHop removes the headers named in Connection, then the
// well-known hop-by-hop set.
func stripHopByHop(h http.Header) {
	for _, field := range h.Values("Connection") {
		for _, name := range strings.Split(field, ",") {
			if name = textproto.TrimString(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// copyEndToEndHeaders copies src into dst minus hop-by-hop fields.
func copyEndToEndHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	stripHopByHop(dst)
}

func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	up := *p.Origin
	// Preserve the escaped form: a path like /a%2Fb must reach the
	// origin as sent, not decoded-and-re-encoded into /a/b.
	up.Path = r.URL.Path
	up.RawPath = r.URL.RawPath
	up.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, up.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	stripHopByHop(req.Header)
	// Let the transport negotiate encoding: forwarding the browser's
	// Accept-Encoding verbatim could yield a compressed body the
	// rewriter cannot parse; the transport's implicit gzip is
	// decompressed transparently before we see it.
	req.Header.Del("Accept-Encoding")

	resp, err := p.Client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK || !isJavaScript(resp.Header.Get("Content-Type"), r.URL.Path) {
		// Non-JS (and non-200) responses stream through without
		// buffering — images and videos never sit in proxy memory.
		p.passthrough.Add(1)
		copyEndToEndHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out, wait, rerr := p.routeRewrite(r, body, sched.ClassInteractive)
	if errors.Is(rerr, sched.ErrSaturated) {
		// Backpressure, not failure: the admission queue is full even
		// after batch shedding, so shed the request instead of queueing
		// without bound. The Retry-After hint tracks the observed
		// interactive queue-wait tail — clients back off in proportion
		// to actual saturation, not a hardcoded beat.
		p.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(p.retryAfterSeconds(sched.ClassInteractive)))
		http.Error(w, "rewrite queue saturated", http.StatusTooManyRequests)
		return
	}
	if rerr != nil {
		// Step 2 must never break the page: unparsable scripts pass
		// through untouched.
		p.failures.Add(1)
		out = body
	} else {
		p.instrumented.Add(1)
	}
	copyEndToEndHeaders(w.Header(), resp.Header)
	w.Header().Set(QueueWaitHeader, strconv.FormatInt(wait.Microseconds(), 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(out)
}

// rewrite instruments src at the given latency class through the cache
// when one is configured, through the pipeline when only that is, and
// inline otherwise. The returned wait is the pipeline admission queue
// wait (0 on cache hits and inline rewrites).
func (p *Proxy) rewrite(src []byte, class sched.Class) ([]byte, time.Duration, error) {
	if p.Cache != nil {
		return p.Cache.RewriteTimed(src, p.Mode, class)
	}
	if p.Pipeline != nil {
		body, wait, err := p.Pipeline.RewriteFor(src, p.Mode, class, nil)
		if !errors.Is(err, sched.ErrSaturated) {
			// A shed request ran no rewrite; counting it would inflate
			// Rewrites by exactly the Rejected count.
			p.uncachedRewrites.Add(1)
		}
		return body, wait, err
	}
	p.uncachedRewrites.Add(1)
	body, wait, err := inlineRewrite(src, p.Mode, class, nil)
	return body, wait, err
}

// routeRewrite is the cluster route-or-serve decision, taken before
// the local cache: in single-node mode (or for a request that already
// hopped once — single-hop loop prevention) it is the local rewrite;
// in cluster mode the script key either belongs here (owner, hot
// replica, or sole survivor) and is served locally, or is forwarded to
// its owning peer at the caller's latency class. A forward that
// exhausts its retries falls back to a local rewrite — availability
// beats strict ownership, and the rewrite is deterministic so the
// bytes are identical — while a terminal peer answer (the script does
// not rewrite) surfaces as the same failure a local parse would.
func (p *Proxy) routeRewrite(r *http.Request, body []byte, class sched.Class) ([]byte, time.Duration, error) {
	if p.Cluster == nil || r.Header.Get(cluster.HopHeader) != "" {
		return p.rewrite(body, class)
	}
	point := cluster.KeyPoint(sha256.Sum256(body), int(p.Mode))
	d := p.Cluster.Route(point)
	if d.Local {
		out, wait, err := p.rewrite(body, class)
		if !errors.Is(err, sched.ErrSaturated) {
			p.Cluster.CountLocal(d)
		}
		return out, wait, err
	}
	out, wait, err := p.Cluster.Forward(r.Context(), d.Owner, body, p.Mode, class)
	if err == nil {
		return out, wait, nil
	}
	if !cluster.Retryable(err) {
		// The owner answered: this script does not rewrite (or the
		// fleet is misconfigured). Re-running the same deterministic
		// transform locally cannot change the verdict.
		return nil, 0, err
	}
	p.Cluster.CountFallback()
	return p.rewrite(body, class)
}

// handlePeerRewrite serves POST /__ceres/peer/rewrite: a rewrite
// forwarded by a peer that routed the key here. The body is raw
// source; the class header keeps forwarded interactive work
// interactive. Hopped requests are always served locally — never
// re-forwarded — so divergent membership views cost one extra local
// rewrite instead of a loop. 200 carries the rewritten bytes and the
// queue wait, 429 + Retry-After reports saturation (retryable at the
// caller), 422 reports a script that does not rewrite (terminal).
func (p *Proxy) handlePeerRewrite(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(io.LimitReader(r.Body, prewarmMaxScriptBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(src) > prewarmMaxScriptBytes {
		http.Error(w, fmt.Sprintf("proxy: peer rewrite body over %d bytes", prewarmMaxScriptBytes), http.StatusBadRequest)
		return
	}
	if m := r.Header.Get(cluster.ModeHeader); m != "" && m != p.Mode.String() {
		// A mixed-mode fleet would cache differently-instrumented
		// bytes under the same stats umbrella; refuse loudly.
		http.Error(w, fmt.Sprintf("proxy: peer mode %q != local mode %q", m, p.Mode), http.StatusConflict)
		return
	}
	class := cluster.ParseClass(r.Header.Get(cluster.ClassHeader))
	if p.Cluster != nil {
		p.Cluster.CountReceived()
	}
	out, wait, rerr := p.rewrite(src, class)
	if errors.Is(rerr, sched.ErrSaturated) {
		w.Header().Set("Retry-After", strconv.Itoa(p.retryAfterSeconds(class)))
		http.Error(w, "rewrite queue saturated", http.StatusTooManyRequests)
		return
	}
	if rerr != nil {
		p.failures.Add(1)
		http.Error(w, rerr.Error(), http.StatusUnprocessableEntity)
		return
	}
	p.instrumented.Add(1)
	w.Header().Set("Content-Type", "application/javascript")
	w.Header().Set(QueueWaitHeader, strconv.FormatInt(wait.Microseconds(), 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	_, _ = w.Write(out)
}

// retryAfterSeconds derives the Retry-After hint for a shed request
// from the observed queue-wait p99 of its class, rounded up to whole
// seconds — minimum 1 (the header is integer seconds and zero would
// invite an immediate stampede), capped at 30 (beyond that the hint is
// noise, not guidance).
func (p *Proxy) retryAfterSeconds(class sched.Class) int {
	if p.Pipeline == nil {
		return 1
	}
	st := p.Pipeline.Queue().Stats()
	p99 := st.Interactive.QueueWaitP99
	if class == sched.ClassBatch {
		p99 = st.Batch.QueueWaitP99
	}
	return retryAfterFromP99(p99)
}

// retryAfterFromP99 rounds a queue-wait p99 up to whole seconds,
// clamped to [1, 30].
func retryAfterFromP99(p99 time.Duration) int {
	secs := int((p99 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func isJavaScript(contentType, path string) bool {
	ct := strings.ToLower(contentType)
	if strings.Contains(ct, "javascript") || strings.Contains(ct, "ecmascript") {
		return true
	}
	return strings.HasSuffix(path, ".js") || strings.HasSuffix(path, ".mjs")
}

func (p *Proxy) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p.Stats())
}

// PrewarmRequest is the /__ceres/prewarm body: script URLs (paths
// resolved against the origin; absolute URLs must be on the origin)
// and/or inline sources to rewrite into the cache ahead of traffic.
type PrewarmRequest struct {
	URLs    []string `json:"urls"`
	Sources []string `json:"sources"`
}

// PrewarmItem is one entry's outcome in the prewarm response.
type PrewarmItem struct {
	// Target is the URL, or "source[i]" for inline sources.
	Target string `json:"target"`
	// Status is "ok" (rewritten or already cached), "saturated" (the
	// pipeline shed it — re-POST later), or "failed".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// PrewarmResponse summarizes a prewarm batch.
type PrewarmResponse struct {
	OK        int           `json:"ok"`
	Saturated int           `json:"saturated"`
	Failed    int           `json:"failed"`
	Items     []PrewarmItem `json:"items"`
}

// prewarmMaxItems bounds one batch; operators split larger sets.
const prewarmMaxItems = 1024

// prewarmFetchers bounds concurrent origin fetches. The rewrite side
// needs no extra bound — pipeline admission is the backpressure.
const prewarmFetchers = 8

// handlePrewarm fans a batch of scripts through the rewrite path so the
// cache is hot before real traffic arrives. Rewrites ride the same
// scheduler pipeline as live requests, so a prewarm competes under the
// same admission bound and reports per-item saturation instead of
// stampeding the pool.
func (p *Proxy) handlePrewarm(w http.ResponseWriter, r *http.Request) {
	if p.Cache == nil {
		http.Error(w, "proxy: prewarm requires a cache", http.StatusConflict)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req PrewarmRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "proxy: prewarm body must be JSON {urls, sources}", http.StatusBadRequest)
		return
	}
	n := len(req.URLs) + len(req.Sources)
	if n == 0 {
		http.Error(w, "proxy: prewarm body names no scripts", http.StatusBadRequest)
		return
	}
	if n > prewarmMaxItems {
		http.Error(w, fmt.Sprintf("proxy: prewarm batch over %d items", prewarmMaxItems), http.StatusBadRequest)
		return
	}

	items := make([]PrewarmItem, n)
	sem := make(chan struct{}, prewarmFetchers)
	var wg sync.WaitGroup
	hopped := r.Header.Get(cluster.HopHeader) != ""
	warm := func(i int, target string, src []byte, fetchErr error) {
		defer wg.Done()
		items[i].Target = target
		if fetchErr != nil {
			items[i].Status = "failed"
			items[i].Error = fetchErr.Error()
			return
		}
		// Cluster cache fill: a prewarm source belongs in its *owner's*
		// cache — warming it here would populate a cache that never
		// serves the key. Transfer remote-owned sources to their owner
		// over the same /__ceres/prewarm endpoint (hop-marked, so the
		// owner fills locally without re-routing); one POST to any
		// node warms the whole fleet correctly.
		if p.Cluster != nil && !hopped {
			if owner, local := p.Cluster.OwnerFor(cluster.PointForSource(src, int(p.Mode))); !local {
				items[i].Status, items[i].Error = p.transferPrewarm(r.Context(), owner, src)
				return
			}
		}
		// Prewarm is batch work: it fills residual capacity, sheds
		// first at saturation, and never delays a live page load.
		_, _, err := p.Cache.RewriteTimed(src, p.Mode, sched.ClassBatch)
		switch {
		case errors.Is(err, sched.ErrSaturated):
			items[i].Status = "saturated"
		case err != nil:
			items[i].Status = "failed"
			items[i].Error = err.Error()
		default:
			items[i].Status = "ok"
		}
	}
	for i, raw := range req.URLs {
		wg.Add(1)
		go func(i int, raw string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			src, err := p.fetchScript(r, raw)
			warm(i, raw, src, err)
		}(i, raw)
	}
	for i, src := range req.Sources {
		wg.Add(1)
		go func(i int, src string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			warm(len(req.URLs)+i, fmt.Sprintf("source[%d]", i), []byte(src), nil)
		}(i, src)
	}
	wg.Wait()

	var resp PrewarmResponse
	resp.Items = items
	for _, it := range items {
		switch it.Status {
		case "ok":
			resp.OK++
		case "saturated":
			resp.Saturated++
		default:
			resp.Failed++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// transferPrewarm ships one prewarm source to its owning peer and
// maps the peer's per-item verdict back onto this batch's item. A
// transport failure reports "saturated" — the transfer is worth
// re-POSTing, unlike a script that genuinely failed to rewrite.
func (p *Proxy) transferPrewarm(ctx context.Context, owner string, src []byte) (status, errText string) {
	payload, err := json.Marshal(PrewarmRequest{Sources: []string{string(src)}})
	if err != nil {
		return "failed", err.Error()
	}
	p.Cluster.CountPrewarmTransfer()
	body, err := p.Cluster.TransferPrewarm(ctx, owner, payload)
	if err != nil {
		if cluster.Retryable(err) {
			return "saturated", err.Error()
		}
		return "failed", err.Error()
	}
	var resp PrewarmResponse
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Items) != 1 {
		return "failed", fmt.Sprintf("proxy: prewarm transfer to %s: bad response", owner)
	}
	return resp.Items[0].Status, resp.Items[0].Error
}

// prewarmMaxScriptBytes caps one fetched script — the same order as
// the whole-batch body limit, so a hostile or misconfigured target
// cannot balloon proxy memory through 8 concurrent fetchers.
const prewarmMaxScriptBytes = 8 << 20

// fetchScript retrieves one prewarm target. Targets are confined to
// the configured origin: a path is resolved against it, and an
// absolute URL must match the origin's scheme and host — prewarm is a
// cache-warming endpoint, not a generic fetcher, and must not let an
// unauthenticated client aim the proxy's network position at internal
// addresses.
func (p *Proxy) fetchScript(r *http.Request, raw string) ([]byte, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("proxy: prewarm url: %w", err)
	}
	if u.IsAbs() && (u.Scheme != p.Origin.Scheme || u.Host != p.Origin.Host) {
		return nil, fmt.Errorf("proxy: prewarm url %q is not on the origin %s", raw, p.Origin.Host)
	}
	up := *p.Origin
	up.Path = u.Path
	up.RawPath = u.RawPath
	up.RawQuery = u.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, up.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: prewarm fetch %s: status %d", up.String(), resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, prewarmMaxScriptBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > prewarmMaxScriptBytes {
		return nil, fmt.Errorf("proxy: prewarm fetch %s: script over %d bytes", up.String(), prewarmMaxScriptBytes)
	}
	return body, nil
}

func (p *Proxy) handleResults(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !json.Valid(body) {
		http.Error(w, "proxy: results must be JSON", http.StatusBadRequest)
		return
	}
	rep := Report{
		Path:     r.URL.Query().Get("page"),
		Received: time.Now(),
		Body:     json.RawMessage(body),
	}
	// Save before appending so memory and disk cannot diverge: a failed
	// write 500s without leaving a phantom in-memory report.
	seq := p.seq.Add(1)
	if p.ReportDir != "" {
		if err := p.saveReport(int(seq), rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	p.mu.Lock()
	p.results = append(p.results, rep)
	p.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// saveReport writes the human-readable report file (Fig. 5 step 6).
func (p *Proxy) saveReport(seq int, rep Report) error {
	if err := os.MkdirAll(p.ReportDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "JS-CERES report #%d\npage: %s\nreceived: %s\n\n",
		seq, rep.Path, rep.Received.Format(time.RFC3339))
	// json.Indent pretty-prints any valid JSON value — objects, arrays,
	// bare numbers — where unmarshalling into map[string]any rejected
	// everything but objects.
	if err := json.Indent(&buf, rep.Body, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	name := filepath.Join(p.ReportDir, fmt.Sprintf("report-%03d.txt", seq))
	return os.WriteFile(name, buf.Bytes(), 0o644)
}

// Results returns the received reports.
func (p *Proxy) Results() []Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Report, len(p.results))
	copy(out, p.results)
	return out
}
