// The rewrite cache: instrumentation (Fig. 5 step 2) is pure — the
// output depends only on (source bytes, mode) — so the proxy can be
// scaled from "re-parse every script on every request" to "one rewrite
// per distinct script" with a content-addressed cache. Two properties
// make it production-shaped rather than a map with a mutex:
//
//   - single-flight: N simultaneous requests for the same uncached
//     script cost one instrument.Rewrite; the N-1 latecomers block on
//     the first caller's result instead of duplicating the parse.
//   - bounded memory: entries are charged their rewritten size against
//     a byte budget and evicted least-recently-used, so a proxy facing
//     an unbounded universe of scripts cannot grow without limit.
package proxy

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/instrument"
)

// DefaultCacheBytes is the rewrite-cache budget used by New.
const DefaultCacheBytes = 64 << 20

// negativeEntryCost is the charged size of a cached rewrite *failure*.
// Broken scripts produce no rewritten bytes but remembering that they
// are broken is what stops a hot unparsable script from forcing a full
// parse attempt on every request.
const negativeEntryCost = 128

// cacheKey content-addresses a rewrite: same bytes + same mode = same
// output, regardless of URL, so renamed or re-served copies of one
// script share an entry.
type cacheKey struct {
	sum  [sha256.Size]byte
	mode instrument.Mode
}

type cacheEntry struct {
	key  cacheKey
	body []byte // rewritten source; nil for a negative entry
	err  error  // non-nil for a negative entry
	cost int64
}

// flight is one in-progress rewrite that concurrent callers wait on.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// RewriteCache is a content-addressed, single-flight, LRU-bounded cache
// around instrument.Rewrite. It is safe for concurrent use.
type RewriteCache struct {
	mu       sync.Mutex
	max      int64
	cur      int64
	lru      *list.List // of *cacheEntry; front = most recently used
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flight

	hits      int64
	misses    int64
	coalesced int64
	rewrites  int64
	evictions int64
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits served a completed entry.
	Hits int64
	// Misses paid a full instrument.Rewrite.
	Misses int64
	// Coalesced joined another caller's in-flight rewrite.
	Coalesced int64
	// Rewrites counts actual instrument.Rewrite invocations
	// (== Misses; kept separate so the invariant is checkable).
	Rewrites int64
	// Evictions counts entries dropped to stay under the byte budget.
	Evictions int64
	// Bytes and Entries describe current residency.
	Bytes   int64
	Entries int64
}

// NewRewriteCache returns a cache bounded to maxBytes of rewritten
// source (DefaultCacheBytes if maxBytes <= 0).
func NewRewriteCache(maxBytes int64) *RewriteCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &RewriteCache{
		max:      maxBytes,
		lru:      list.New(),
		entries:  make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
	}
}

// Rewrite returns the instrumented form of src under mode, computing it
// at most once per distinct (content, mode) while the entry stays
// resident. The returned slice is shared across callers and must not be
// modified. A rewrite error is cached too (cheaply), so hot broken
// scripts do not re-parse per request.
func (c *RewriteCache) Rewrite(src []byte, mode instrument.Mode) ([]byte, error) {
	key := cacheKey{sum: sha256.Sum256(src), mode: mode}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits++
		body, err := e.body, e.err
		c.mu.Unlock()
		return body, err
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.body, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.rewrites++
	c.mu.Unlock()

	res, err := instrument.Rewrite(string(src), mode)
	if err == nil {
		f.body = []byte(res.Source)
	}
	f.err = err
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	c.insertLocked(key, f.body, err)
	c.mu.Unlock()
	return f.body, err
}

func (c *RewriteCache) insertLocked(key cacheKey, body []byte, err error) {
	cost := int64(len(body))
	if err != nil {
		cost = negativeEntryCost
	}
	if cost > c.max {
		// An entry larger than the whole budget would evict everything
		// and still not fit; serve it uncached.
		return
	}
	for c.cur+cost > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.cur -= e.cost
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body, err: err, cost: cost})
	c.cur += cost
}

// Stats snapshots the counters.
func (c *RewriteCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Rewrites:  c.rewrites,
		Evictions: c.evictions,
		Bytes:     c.cur,
		Entries:   int64(len(c.entries)),
	}
}
