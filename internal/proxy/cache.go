// The rewrite cache: instrumentation (Fig. 5 step 2) is pure — the
// output depends only on (source bytes, mode) — so the proxy can be
// scaled from "re-parse every script on every request" to "one rewrite
// per distinct script" with a content-addressed cache. Three properties
// make it production-shaped rather than a map with a mutex:
//
//   - single-flight: N simultaneous requests for the same uncached
//     script cost one rewrite; the N-1 latecomers block on the first
//     caller's result instead of duplicating the parse.
//   - bounded memory: entries are charged their rewritten size against
//     a byte budget and evicted least-recently-used, so a proxy facing
//     an unbounded universe of scripts cannot grow without limit.
//   - sharding: the key space is split N ways by content hash, each
//     shard with its own lock, LRU list and byte budget, so concurrent
//     clients hitting *different* scripts stop serializing on one
//     mutex. A given key always lands on one shard, so the
//     single-flight and LRU contracts are per-key unchanged.
package proxy

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// DefaultCacheBytes is the rewrite-cache budget used by New.
const DefaultCacheBytes = 64 << 20

// DefaultShards is the shard count used by New. Sharding divides lock
// contention, not semantics: 8 shards keep 8 concurrent clients on
// distinct hot scripts from serializing on one LRU mutex.
const DefaultShards = 8

// negativeEntryCost is the charged size of a cached rewrite *failure*.
// Broken scripts produce no rewritten bytes but remembering that they
// are broken is what stops a hot unparsable script from forcing a full
// parse attempt on every request.
const negativeEntryCost = 128

// RewriteFunc computes the instrumented form of src at the given
// latency class. It reports the admission queue wait when the rewrite
// ran through a scheduler pipeline (zero on the inline path), so
// callers can surface backpressure per request. started, when non-nil,
// must be invoked exactly once after admission (before the rewrite
// blocks) with a hook that promotes the in-flight job to interactive —
// the cache's single-flight layer uses it for priority inheritance.
// Implementations without a scheduler (the inline default) ignore both.
type RewriteFunc func(src []byte, mode instrument.Mode, class sched.Class, started func(promote func())) (body []byte, queueWait time.Duration, err error)

// inlineRewrite is the default RewriteFunc: the staged transform run
// inline on the calling goroutine (no queue, no wait, classes moot).
func inlineRewrite(src []byte, mode instrument.Mode, _ sched.Class, _ func(promote func())) ([]byte, time.Duration, error) {
	res, err := instrument.Rewrite(instrument.Decode(src), mode)
	if err != nil {
		return nil, 0, err
	}
	return []byte(res.Source), 0, nil
}

// cacheKey content-addresses a rewrite: same bytes + same mode = same
// output, regardless of URL, so renamed or re-served copies of one
// script share an entry.
type cacheKey struct {
	sum  [sha256.Size]byte
	mode instrument.Mode
}

type cacheEntry struct {
	key  cacheKey
	body []byte // rewritten source; nil for a negative entry
	src  []byte // original source, kept only when refresh is enabled
	err  error  // non-nil for a negative entry
	cost int64
	// added and refreshing drive the near-expiry background refresh:
	// added is the insert (or last refresh) time; refreshing guards
	// against piling multiple refresh jobs onto one entry.
	added      time.Time
	refreshing bool
}

// flight is one in-progress rewrite that concurrent callers wait on.
// class, promote and promoteWanted implement priority inheritance and
// are guarded by the shard mutex: promote is the scheduler hook
// (installed once the rewrite is admitted), promoteWanted records an
// interactive latecomer that arrived before the hook existed.
type flight struct {
	done chan struct{}
	body []byte
	wait time.Duration
	err  error

	class         sched.Class
	promote       func()
	promoteWanted bool
}

// cacheShard is one lock domain: a full LRU cache over its slice of the
// key space.
type cacheShard struct {
	mu       sync.Mutex
	max      int64
	cur      int64
	lru      *list.List // of *cacheEntry; front = most recently used
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flight

	hits      int64
	misses    int64
	coalesced int64
	rewrites  int64
	evictions int64
	refreshes int64
}

// RewriteCache is a content-addressed, single-flight, LRU-bounded,
// sharded cache around the rewrite pipeline. It is safe for concurrent
// use.
type RewriteCache struct {
	shards []*cacheShard

	// rewrite computes a missing entry (inlineRewrite by default; the
	// serving pipeline installs its admission-controlled path).
	rewrite RewriteFunc

	// ttl > 0 enables background refresh: a hit on an entry older than
	// 80% of ttl re-runs the rewrite asynchronously (through refreshRun)
	// and re-stamps the entry, so hot entries never go stale past ttl
	// while cold ones simply age out of the LRU. Entries then also
	// retain their original source (charged to the budget) to
	// re-rewrite from.
	ttl        time.Duration
	refreshRun AsyncRewriteFunc
}

// AsyncRewriteFunc starts a rewrite without blocking the caller and
// delivers the result to cb (exactly once, from any goroutine). The
// serving pipeline's implementation fans these through the scheduler
// queue; a failed admission is delivered as an error.
type AsyncRewriteFunc func(src []byte, mode instrument.Mode, cb func(body []byte, err error))

// CacheStats is a point-in-time snapshot of the cache counters. Each
// shard is snapshotted under its own lock (entries, bytes and in-flight
// rewrites from one shard are mutually consistent); the totals compose
// the per-shard snapshots.
type CacheStats struct {
	// Hits served a completed entry.
	Hits int64
	// Misses paid a full rewrite.
	Misses int64
	// Coalesced joined another caller's in-flight rewrite.
	Coalesced int64
	// Rewrites counts rewrite-function invocations for misses
	// (== Misses; kept separate so the invariant is checkable).
	// Background refreshes are counted in Refreshes, not here.
	Rewrites int64
	// Evictions counts entries dropped to stay under the byte budget.
	Evictions int64
	// Refreshes counts background near-expiry re-rewrites.
	Refreshes int64
	// Bytes and Entries describe current residency; Inflight is the
	// number of single-flight rewrites in progress (keys that are
	// neither resident nor absent — without it, Entries briefly
	// under-reports the keys the cache is committed to).
	Bytes    int64
	Entries  int64
	Inflight int64
	// Shards echoes the shard count.
	Shards int
}

// NewRewriteCache returns a single-shard cache bounded to maxBytes of
// rewritten source (DefaultCacheBytes if maxBytes <= 0). It is the
// baseline the sharded cache is benchmarked against; servers should use
// NewShardedRewriteCache.
func NewRewriteCache(maxBytes int64) *RewriteCache {
	return NewShardedRewriteCache(maxBytes, 1)
}

// NewShardedRewriteCache returns a cache with the byte budget split
// evenly across `shards` lock domains (shards <= 0 → DefaultShards).
func NewShardedRewriteCache(maxBytes int64, shards int) *RewriteCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	perShard := (maxBytes + int64(shards) - 1) / int64(shards)
	c := &RewriteCache{
		shards:  make([]*cacheShard, shards),
		rewrite: inlineRewrite,
		refreshRun: func(src []byte, mode instrument.Mode, cb func([]byte, error)) {
			go func() {
				defer func() {
					if r := recover(); r != nil {
						cb(nil, fmt.Errorf("proxy: refresh panic: %v", r))
					}
				}()
				body, _, err := inlineRewrite(src, mode, sched.ClassBatch, nil)
				cb(body, err)
			}()
		},
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			max:      perShard,
			lru:      list.New(),
			entries:  make(map[cacheKey]*list.Element),
			inflight: make(map[cacheKey]*flight),
		}
	}
	return c
}

// SetRewriteFunc replaces the rewrite computation (the serving pipeline
// installs its admission-controlled staged path here). Must be called
// before the cache serves traffic.
func (c *RewriteCache) SetRewriteFunc(fn RewriteFunc) { c.rewrite = fn }

// SetRefresh enables near-expiry background refresh: hits on entries
// older than 80% of ttl re-rewrite asynchronously via run (which must
// not block the caller; nil keeps the default plain-goroutine inline
// rewrite). Must be called before the cache serves traffic.
func (c *RewriteCache) SetRefresh(ttl time.Duration, run AsyncRewriteFunc) {
	c.ttl = ttl
	if run != nil {
		c.refreshRun = run
	}
}

// Shards returns the shard count.
func (c *RewriteCache) Shards() int { return len(c.shards) }

// shardFor maps a key to its shard: the content hash is already
// uniform, so the first eight bytes (mixed with the mode) index evenly.
func (c *RewriteCache) shardFor(key cacheKey) *cacheShard {
	h := binary.BigEndian.Uint64(key.sum[:8]) ^ (uint64(key.mode) * 0x9E3779B97F4A7C15)
	return c.shards[h%uint64(len(c.shards))]
}

// Rewrite returns the instrumented form of src under mode at
// interactive priority, computing it at most once per distinct
// (content, mode) while the entry stays resident. The returned slice is
// shared across callers and must not be modified. A rewrite error is
// cached too (cheaply), so hot broken scripts do not re-parse per
// request — except saturation (sched.ErrSaturated), which is the
// queue's state, not the script's, and is never cached.
func (c *RewriteCache) Rewrite(src []byte, mode instrument.Mode) ([]byte, error) {
	body, _, err := c.RewriteTimed(src, mode, sched.ClassInteractive)
	return body, err
}

// RewriteTimed is Rewrite at an explicit latency class, plus the
// admission queue wait this call (or the in-flight rewrite it joined)
// paid; hits report zero. Priority inheritance happens here: an
// interactive caller that coalesces onto a flight started at batch
// priority promotes the in-flight job, so the interactive caller never
// waits behind batch lane ordering for work it is blocked on.
func (c *RewriteCache) RewriteTimed(src []byte, mode instrument.Mode, class sched.Class) ([]byte, time.Duration, error) {
	key := cacheKey{sum: sha256.Sum256(src), mode: mode}
	s := c.shardFor(key)

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		s.hits++
		body, err := e.body, e.err
		needsRefresh := c.ttl > 0 && !e.refreshing && e.err == nil &&
			e.src != nil && time.Since(e.added) >= c.ttl-c.ttl/5
		if needsRefresh {
			e.refreshing = true
		}
		refreshSrc := e.src // immutable once stored
		s.mu.Unlock()
		if needsRefresh {
			c.refreshRun(refreshSrc, mode, func(body []byte, err error) {
				c.finishRefresh(key, body, err)
			})
		}
		return body, 0, err
	}
	if f, ok := s.inflight[key]; ok {
		s.coalesced++
		var promote func()
		if class == sched.ClassInteractive && f.class == sched.ClassBatch {
			// Priority inheritance: this interactive caller is about to
			// block on a batch-priority flight. Promote the in-flight
			// job; if its scheduler hook has not been installed yet
			// (the admitting goroutine is between Submit and started),
			// promoteWanted makes the hook fire on installation.
			f.class = sched.ClassInteractive
			f.promoteWanted = true
			promote = f.promote
		}
		s.mu.Unlock()
		if promote != nil {
			promote()
		}
		<-f.done
		return f.body, f.wait, f.err
	}
	f := &flight{done: make(chan struct{}), class: class}
	s.inflight[key] = f
	s.misses++
	s.rewrites++
	s.mu.Unlock()

	f.body, f.wait, f.err = c.callRewrite(src, mode, class, func(promote func()) {
		s.mu.Lock()
		f.promote = promote
		want := f.promoteWanted
		s.mu.Unlock()
		if want {
			promote()
		}
	})
	close(f.done)

	s.mu.Lock()
	delete(s.inflight, key)
	if !errors.Is(f.err, sched.ErrSaturated) {
		s.insertLocked(key, f.body, c.keepSrc(src), f.err)
	}
	s.mu.Unlock()
	return f.body, f.wait, f.err
}

// callRewrite invokes the rewrite function with panic containment: a
// panicking rewriter resolves the single-flight entry with an error
// instead of leaving its key permanently in-flight (which would hang
// every future request for that script) while the panic unwinds the
// request goroutine.
func (c *RewriteCache) callRewrite(src []byte, mode instrument.Mode, class sched.Class, started func(promote func())) (body []byte, wait time.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("proxy: rewrite panic: %v", r)
		}
	}()
	return c.rewrite(src, mode, class, started)
}

// keepSrc returns the source to retain for refresh, nil when refresh is
// off (no reason to double the per-entry footprint).
func (c *RewriteCache) keepSrc(src []byte) []byte {
	if c.ttl <= 0 {
		return nil
	}
	return append([]byte(nil), src...)
}

// finishRefresh lands a background refresh result: re-stamp the entry
// on success; on failure (including a saturated queue) leave the
// resident entry serving — stale beats broken — and reset the
// refreshing flag so a later hit can retry.
func (c *RewriteCache) finishRefresh(key cacheKey, body []byte, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		// Evicted while refreshing: nothing to stamp; the next miss
		// recomputes and re-inserts on its own.
		return
	}
	e := el.Value.(*cacheEntry)
	e.refreshing = false
	if err != nil {
		return
	}
	s.refreshes++
	s.cur -= e.cost
	e.body = body
	e.cost = int64(len(body) + len(e.src))
	e.added = time.Now()
	s.cur += e.cost
	s.evictOverLocked(el)
}

func (s *cacheShard) insertLocked(key cacheKey, body, src []byte, err error) {
	cost := int64(len(body) + len(src))
	if err != nil {
		cost = negativeEntryCost
		src = nil
	}
	if cost > s.max {
		// An entry larger than the whole shard budget would evict
		// everything and still not fit; serve it uncached.
		return
	}
	el := s.lru.PushFront(&cacheEntry{
		key: key, body: body, src: src, err: err, cost: cost, added: time.Now(),
	})
	s.entries[key] = el
	s.cur += cost
	s.evictOverLocked(el)
}

// evictOverLocked drops LRU entries until the shard is back under
// budget, never evicting keep (the entry just inserted or refreshed).
func (s *cacheShard) evictOverLocked(keep *list.Element) {
	for s.cur > s.max {
		back := s.lru.Back()
		if back == nil || back == keep {
			break
		}
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.cur -= e.cost
		s.evictions++
	}
}

// Stats snapshots the counters, shard by shard (each shard under its
// own lock, so every shard's entries/bytes/inflight triple is
// internally consistent).
func (c *RewriteCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards)}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Coalesced += s.coalesced
		st.Rewrites += s.rewrites
		st.Evictions += s.evictions
		st.Refreshes += s.refreshes
		st.Bytes += s.cur
		st.Entries += int64(len(s.entries))
		st.Inflight += int64(len(s.inflight))
		s.mu.Unlock()
	}
	return st
}
