package proxy

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/instrument"
)

func srcN(n int) []byte {
	return []byte(fmt.Sprintf("var x%d = 0;\nfor (var i = 0; i < 10; i++) { x%d += i; }\n", n, n))
}

func TestCacheHitReturnsSameBytes(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	a, err := c.Rewrite(srcN(1), instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Rewrite(srcN(1), instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cache hit returned different bytes")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Rewrites != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 rewrite", s)
	}
}

func TestCacheKeyIncludesMode(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	light, _ := c.Rewrite(srcN(1), instrument.ModeLight)
	loops, _ := c.Rewrite(srcN(1), instrument.ModeLoops)
	if bytes.Equal(light, loops) {
		t.Fatal("different modes share a cache entry")
	}
	if s := c.Stats(); s.Rewrites != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 rewrites / 2 entries", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	a, _ := c.Rewrite(srcN(1), instrument.ModeLight)
	// Budget fits two rewritten entries of this size, not three.
	c = NewRewriteCache(int64(len(a))*2 + 64)
	c.Rewrite(srcN(1), instrument.ModeLight)
	c.Rewrite(srcN(2), instrument.ModeLight)
	c.Rewrite(srcN(1), instrument.ModeLight) // touch 1: now 2 is LRU
	c.Rewrite(srcN(3), instrument.ModeLight) // evicts 2
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", s)
	}
	c.Rewrite(srcN(1), instrument.ModeLight) // still resident
	c.Rewrite(srcN(2), instrument.ModeLight) // evicted: re-rewrites
	s2 := c.Stats()
	if got := s2.Hits - s.Hits; got != 1 {
		t.Errorf("recently-used entry evicted: hit delta %d, want 1", got)
	}
	if got := s2.Rewrites - s.Rewrites; got != 1 {
		t.Errorf("evicted entry not recomputed: rewrite delta %d, want 1", got)
	}
	if s2.Bytes > int64(len(a))*2+64 {
		t.Errorf("cache over budget: %d bytes", s2.Bytes)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := NewRewriteCache(8) // smaller than any rewritten script
	c.Rewrite(srcN(1), instrument.ModeLight)
	c.Rewrite(srcN(1), instrument.ModeLight)
	s := c.Stats()
	if s.Rewrites != 2 || s.Entries != 0 {
		t.Errorf("stats = %+v, want 2 rewrites / 0 entries (serve uncached)", s)
	}
}

func TestCacheNegativeEntry(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	broken := []byte("function ( { this is not js")
	if _, err := c.Rewrite(broken, instrument.ModeLight); err == nil {
		t.Fatal("broken script rewrote without error")
	}
	if _, err := c.Rewrite(broken, instrument.ModeLight); err == nil {
		t.Fatal("cached failure lost its error")
	}
	if s := c.Stats(); s.Rewrites != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want failure parsed once then served from cache", s)
	}
}

// TestCacheSingleFlight: concurrent misses for one key coalesce into a
// single rewrite (run with -race).
func TestCacheSingleFlight(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	const n = 64
	src := srcN(9)
	out := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			b, err := c.Rewrite(src, instrument.ModeLoops)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = b
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(out[i], out[0]) {
			t.Fatalf("goroutine %d got different bytes", i)
		}
	}
	s := c.Stats()
	if s.Rewrites != 1 {
		t.Errorf("Rewrites = %d, want exactly 1", s.Rewrites)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Errorf("hits+coalesced = %d+%d, want %d", s.Hits, s.Coalesced, n-1)
	}
}
