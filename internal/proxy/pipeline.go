// The serving pipeline: the rewrite path split into explicit stages —
// decode → parse/analyze → rewrite → encode — each running as its own
// job on a bounded internal/sched.Queue instead of inline on the
// request goroutine. Two properties follow:
//
//   - Admission control. A request enters the pipeline only if fewer
//     than `depth` rewrites are outstanding; otherwise Submit reports
//     sched.ErrSaturated immediately and the proxy sheds the load as
//     HTTP 429 + Retry-After. Saturation is a bounded queue-wait tail,
//     never unbounded goroutine pileup and latency growth.
//   - Pipelining. Stages are separate scheduler jobs chained with
//     Spawn, so while request A is encoding, request B can be parsing
//     on another worker — and continuations drain before fresh
//     admissions, so accepted work finishes first.
//
// Workers never block on other queue jobs (the deadlock rule from
// sched.Queue): request goroutines wait on a completion channel,
// background refreshes deliver through a callback.
package proxy

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/instrument"
	"repro/internal/js/ast"
	"repro/internal/sched"
)

// StageNames lists the pipeline stages in execution order.
var StageNames = [4]string{"decode", "parse", "rewrite", "encode"}

const (
	stageDecode = iota
	stageParse
	stageRewrite
	stageEncode
)

// Pipeline is the staged rewrite service. Create with NewPipeline,
// install into a cache with SetRewriteFunc(pl.RewriteFor) and
// SetRefresh(ttl, pl.AsyncRewrite), close with Close.
//
// Every admission carries a sched.Class: request-path rewrites enter
// interactive, prewarm and background refresh enter batch, and the
// queue's lane policy (interactive first, batch shed first, priority
// inheritance via RewriteFor's started hook) applies end to end.
type Pipeline struct {
	queue *sched.Queue

	// batchMaxWait, when set, is the queue-wait deadline handed to every
	// batch admission: stale prewarm/refresh work still queued past it
	// is shed instead of run. Set before serving traffic.
	batchMaxWait time.Duration

	mu       sync.Mutex
	stages   [4]stageStat
	complete int64
	failures int64
	shed     int64
}

type stageStat struct {
	jobs    int64
	totalNs int64
	maxNs   int64
}

// StageStats describes one pipeline stage's execution history.
type StageStats struct {
	Name string `json:"name"`
	// Jobs counts stage executions (== admitted requests for decode;
	// later stages run fewer when an earlier stage failed).
	Jobs int64 `json:"jobs"`
	// TotalUs/MeanUs/MaxUs are stage execution time in microseconds.
	TotalUs int64 `json:"total_us"`
	MeanUs  int64 `json:"mean_us"`
	MaxUs   int64 `json:"max_us"`
}

// PipelineStats is a point-in-time snapshot of the pipeline.
type PipelineStats struct {
	// Queue is the scheduler-level view: admissions, rejections,
	// in-flight tickets, and queue-wait mean/p50/p99/max.
	Queue sched.QueueStats `json:"queue"`
	// Stages reports per-stage job counts and timing, in order.
	Stages []StageStats `json:"stages"`
	// Completed counts rewrites that produced output; Failures counts
	// rewrites that ended in an error (parse failures, not rejections —
	// rejected requests never enter the pipeline); Shed counts admitted
	// batch rewrites dropped before running (evicted for interactive
	// work, or past the batch queue-wait deadline) — shed is a load
	// decision, not a failure.
	Completed int64 `json:"completed"`
	Failures  int64 `json:"failures"`
	Shed      int64 `json:"shed"`
}

// NewPipeline starts a staged rewrite service on `workers` scheduler
// workers (<= 0 → 1) with an admission bound of `depth` outstanding
// rewrites (<= 0 → workers*2).
func NewPipeline(workers, depth int) *Pipeline {
	return &Pipeline{queue: sched.NewQueue(workers, depth)}
}

// Close drains in-flight work and stops the workers.
func (pl *Pipeline) Close() { pl.queue.Close() }

// SetBatchMaxWait sets the queue-wait deadline applied to batch
// admissions (0 = no deadline). Must be called before the pipeline
// serves traffic.
func (pl *Pipeline) SetBatchMaxWait(d time.Duration) { pl.batchMaxWait = d }

// Queue exposes the underlying scheduler queue (stats, capacity).
func (pl *Pipeline) Queue() *sched.Queue { return pl.queue }

// pipeJob carries one rewrite through the four stages.
type pipeJob struct {
	pl   *Pipeline
	src  []byte
	mode instrument.Mode
	t0   time.Time // submit time; stage 1 computes the queue wait

	text string
	prog *ast.Program
	body []byte
	wait time.Duration
	err  error
	cb   func(body []byte, wait time.Duration, err error)
}

// Rewrite runs a staged rewrite at interactive priority, blocking until
// it completes. A saturated queue returns sched.ErrSaturated without
// queueing.
func (pl *Pipeline) Rewrite(src []byte, mode instrument.Mode) ([]byte, time.Duration, error) {
	return pl.RewriteFor(src, mode, sched.ClassInteractive, nil)
}

// RewriteFor is the cache's RewriteFunc: admission-checked at the given
// class, blocking until the staged rewrite completes (or, for a batch
// admission, until it is shed — delivered as sched.ErrSaturated). When
// started is non-nil it is invoked exactly once after admission with
// the job's Promote hook, before this call blocks; the cache's
// single-flight layer uses it for priority inheritance — an interactive
// caller coalescing onto a batch-priority flight promotes the job it is
// now waiting on.
func (pl *Pipeline) RewriteFor(src []byte, mode instrument.Mode, class sched.Class, started func(promote func())) ([]byte, time.Duration, error) {
	type result struct {
		body []byte
		wait time.Duration
		err  error
	}
	ch := make(chan result, 1)
	h, err := pl.submit(src, mode, class, func(body []byte, wait time.Duration, err error) {
		ch <- result{body, wait, err}
	})
	if err != nil {
		return nil, 0, err
	}
	if started != nil {
		started(h.Promote)
	}
	r := <-ch
	return r.body, r.wait, r.err
}

// AsyncRewrite is the cache's refresh entry point: same staged path,
// same admission bound, but non-blocking — the result (or the admission
// error) is delivered to cb. Refreshes are batch work: they yield to
// interactive traffic in the queue's lane order, are evicted first at
// saturation, and obey the batch queue-wait deadline; a shed refresh is
// delivered to cb as sched.ErrSaturated.
func (pl *Pipeline) AsyncRewrite(src []byte, mode instrument.Mode, cb func(body []byte, err error)) {
	if _, err := pl.submit(src, mode, sched.ClassBatch, func(body []byte, _ time.Duration, err error) {
		cb(body, err)
	}); err != nil {
		cb(nil, err)
	}
}

func (pl *Pipeline) submit(src []byte, mode instrument.Mode, class sched.Class, cb func([]byte, time.Duration, error)) (*sched.Handle, error) {
	j := &pipeJob{pl: pl, src: src, mode: mode, t0: time.Now(), cb: cb}
	opts := sched.SubmitOptions{Class: class, OnShed: j.shed}
	if class == sched.ClassBatch {
		opts.MaxWait = pl.batchMaxWait
	}
	return pl.queue.SubmitWith(j.decode, opts)
}

// shed delivers a dropped admission to its waiter: the queue freed the
// slot for interactive work, or the batch deadline passed. The waiter
// sees sched.ErrSaturated — indistinguishable from rejection at Submit,
// which is the correct reading: the system chose not to spend capacity
// on this job.
func (j *pipeJob) shed() {
	pl := j.pl
	pl.mu.Lock()
	pl.shed++
	pl.mu.Unlock()
	j.cb(nil, time.Since(j.t0), sched.ErrSaturated)
}

// recoverStage contains a panicking stage: the job completes with an
// error (delivered to the waiting caller — nobody hangs on the
// completion channel, and the cache's single-flight entry resolves)
// instead of the panic killing a shared pipeline worker. A
// panic-inducing script is handled like a parse failure: the proxy
// serves it un-instrumented.
func (j *pipeJob) recoverStage() {
	if r := recover(); r != nil {
		j.err = fmt.Errorf("proxy: rewrite stage panic: %v", r)
		j.finish()
	}
}

// timed runs fn as stage `stage`, recording its duration.
func (j *pipeJob) timed(stage int, fn func()) {
	start := time.Now()
	fn()
	ns := time.Since(start).Nanoseconds()
	pl := j.pl
	pl.mu.Lock()
	s := &pl.stages[stage]
	s.jobs++
	s.totalNs += ns
	if ns > s.maxNs {
		s.maxNs = ns
	}
	pl.mu.Unlock()
}

// decode is stage 1: bytes → source text. It also stamps the queue
// wait — the time between admission and first execution.
func (j *pipeJob) decode(w *sched.WorkerCtx) {
	defer j.recoverStage()
	j.wait = time.Since(j.t0)
	j.timed(stageDecode, func() { j.text = instrument.Decode(j.src) })
	w.Spawn(j.parse)
}

// parse is stage 2: source text → AST (the analyze half: the parse
// also inventories every syntactic loop the transform will wrap).
func (j *pipeJob) parse(w *sched.WorkerCtx) {
	defer j.recoverStage()
	j.timed(stageParse, func() { j.prog, j.err = instrument.Parse(j.text) })
	if j.err != nil {
		j.finish()
		return
	}
	w.Spawn(j.rewrite)
}

// rewrite is stage 3: wrap every loop with runtime callbacks, in place.
func (j *pipeJob) rewrite(w *sched.WorkerCtx) {
	defer j.recoverStage()
	j.timed(stageRewrite, func() { instrument.Transform(j.prog) })
	w.Spawn(j.encode)
}

// encode is stage 4: runtime + printed program → response bytes.
func (j *pipeJob) encode(w *sched.WorkerCtx) {
	defer j.recoverStage()
	j.timed(stageEncode, func() { j.body = []byte(instrument.Encode(j.prog, j.mode)) })
	j.finish()
}

func (j *pipeJob) finish() {
	pl := j.pl
	pl.mu.Lock()
	if j.err != nil {
		pl.failures++
	} else {
		pl.complete++
	}
	pl.mu.Unlock()
	j.cb(j.body, j.wait, j.err)
}

// Stats snapshots the pipeline and its queue.
func (pl *Pipeline) Stats() PipelineStats {
	st := PipelineStats{Queue: pl.queue.Stats()}
	pl.mu.Lock()
	st.Completed = pl.complete
	st.Failures = pl.failures
	st.Shed = pl.shed
	for i, s := range pl.stages {
		ss := StageStats{
			Name:    StageNames[i],
			Jobs:    s.jobs,
			TotalUs: s.totalNs / 1e3,
			MaxUs:   s.maxNs / 1e3,
		}
		if s.jobs > 0 {
			ss.MeanUs = s.totalNs / s.jobs / 1e3
		}
		st.Stages = append(st.Stages, ss)
	}
	pl.mu.Unlock()
	return st
}
