package proxy

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// blockPipelineWorker parks the single worker of pl on a raw
// interactive admission until release is called.
func blockPipelineWorker(t *testing.T, pl *Pipeline) (release func()) {
	t.Helper()
	rel := make(chan struct{})
	blocked := make(chan struct{})
	if err := pl.Queue().Submit(func(w *sched.WorkerCtx) {
		close(blocked)
		<-rel
	}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	return func() { close(rel) }
}

// TestSingleFlightPriorityInheritance: an interactive request that
// coalesces onto a rewrite already in flight at batch priority promotes
// the in-flight job — the interactive caller inherits its wait, not
// batch lane ordering.
func TestSingleFlightPriorityInheritance(t *testing.T) {
	pl := NewPipeline(1, 8)
	defer pl.Close()
	c := NewRewriteCache(1 << 20)
	c.SetRewriteFunc(pl.RewriteFor)
	release := blockPipelineWorker(t, pl)

	type res struct {
		body []byte
		err  error
	}
	batchCh := make(chan res, 1)
	go func() {
		body, _, err := c.RewriteTimed(srcN(1), instrument.ModeLight, sched.ClassBatch)
		batchCh <- res{body, err}
	}()
	waitFor(t, "batch flight admitted", func() bool {
		return c.Stats().Inflight == 1 && pl.Queue().Stats().Batch.Submitted == 1
	})

	intCh := make(chan res, 1)
	go func() {
		body, _, err := c.RewriteTimed(srcN(1), instrument.ModeLight, sched.ClassInteractive)
		intCh <- res{body, err}
	}()
	// Promotion must land while the job is still queued behind the
	// blocked worker — before any rewrite work happens.
	waitFor(t, "promotion", func() bool { return pl.Queue().Stats().Promoted == 1 })

	release()
	b, i := <-batchCh, <-intCh
	if b.err != nil || i.err != nil {
		t.Fatalf("errs = %v / %v, want nil", b.err, i.err)
	}
	if !bytes.Equal(b.body, i.body) {
		t.Fatal("coalesced callers saw different bodies")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != 1 || st.Rewrites != 1 {
		t.Errorf("cache stats = %+v, want 1 miss / 1 coalesced / 1 rewrite", st)
	}
	qs := pl.Queue().Stats()
	if qs.Promoted != 1 || qs.Batch.Shed != 0 {
		t.Errorf("queue stats = %+v, want 1 promoted, 0 batch shed", qs)
	}
}

// TestSingleFlightPromotionRacesCompletion: promotion racing the
// flight's completion — in either coalesce order — must never corrupt
// results or ticket accounting. Run under -race.
func TestSingleFlightPromotionRacesCompletion(t *testing.T) {
	pl := NewPipeline(2, 16)
	defer pl.Close()
	c := NewRewriteCache(8 << 20)
	c.SetRewriteFunc(pl.RewriteFor)
	for i := 0; i < 200; i++ {
		src := srcN(1000 + i)
		var wg sync.WaitGroup
		var bodies [2][]byte
		var errs [2]error
		wg.Add(2)
		go func() {
			defer wg.Done()
			bodies[0], _, errs[0] = c.RewriteTimed(src, instrument.ModeLight, sched.ClassBatch)
		}()
		go func() {
			defer wg.Done()
			bodies[1], _, errs[1] = c.RewriteTimed(src, instrument.ModeLight, sched.ClassInteractive)
		}()
		wg.Wait()
		if errs[0] != nil || errs[1] != nil {
			t.Fatalf("iteration %d: errs = %v / %v", i, errs[0], errs[1])
		}
		if !bytes.Equal(bodies[0], bodies[1]) {
			t.Fatalf("iteration %d: coalesced callers saw different bodies", i)
		}
	}
	waitFor(t, "tickets to drain", func() bool {
		st := pl.Queue().Stats()
		return st.InFlight == 0 && st.Interactive.InFlight == 0 && st.Batch.InFlight == 0
	})
}

// TestPipelineBatchShedForInteractive: at the admission bound an
// interactive rewrite evicts a queued batch refresh — the refresh's
// callback gets sched.ErrSaturated, the interactive request is served,
// and the drop is accounted as shed, not failure.
func TestPipelineBatchShedForInteractive(t *testing.T) {
	pl := NewPipeline(1, 2)
	defer pl.Close()
	release := blockPipelineWorker(t, pl) // ticket 1 of 2

	shedCh := make(chan error, 1)
	pl.AsyncRewrite(srcN(2), instrument.ModeLight, func(body []byte, err error) {
		shedCh <- err
	}) // batch, ticket 2 of 2 — queue now at depth

	done := make(chan error, 1)
	go func() {
		_, _, err := pl.Rewrite(srcN(3), instrument.ModeLight)
		done <- err
	}()
	if err := <-shedCh; !errors.Is(err, sched.ErrSaturated) {
		t.Fatalf("shed refresh delivered %v, want ErrSaturated", err)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("interactive rewrite after batch shed: %v", err)
	}
	st := pl.Stats()
	if st.Shed != 1 || st.Failures != 0 {
		t.Errorf("pipeline stats shed/failures = %d/%d, want 1/0", st.Shed, st.Failures)
	}
	if st.Queue.Batch.Shed != 1 || st.Queue.Interactive.Rejected != 0 {
		t.Errorf("queue stats = %+v, want batch shed 1, interactive rejected 0", st.Queue)
	}
}

// TestPipelineBatchMaxWaitSheds: a batch admission still queued past
// the configured deadline is shed instead of run stale.
func TestPipelineBatchMaxWaitSheds(t *testing.T) {
	pl := NewPipeline(1, 4)
	pl.SetBatchMaxWait(time.Millisecond)
	defer pl.Close()
	release := blockPipelineWorker(t, pl)

	shedCh := make(chan error, 1)
	pl.AsyncRewrite(srcN(4), instrument.ModeLight, func(body []byte, err error) {
		shedCh <- err
	})
	time.Sleep(10 * time.Millisecond) // let the deadline lapse while queued
	release()
	if err := <-shedCh; !errors.Is(err, sched.ErrSaturated) {
		t.Fatalf("expired refresh delivered %v, want ErrSaturated", err)
	}
	if st := pl.Stats(); st.Shed != 1 || st.Queue.Batch.Shed != 1 {
		t.Errorf("stats = shed %d / queue batch shed %d, want 1/1", st.Shed, st.Queue.Batch.Shed)
	}
}

// TestRetryAfterFromP99: the Retry-After hint is the class's queue-wait
// p99 rounded up to whole seconds, clamped to [1, 30].
func TestRetryAfterFromP99(t *testing.T) {
	cases := []struct {
		p99  time.Duration
		want int
	}{
		{0, 1},
		{30 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
		{2 * time.Minute, 30},
	}
	for _, c := range cases {
		if got := retryAfterFromP99(c.p99); got != c.want {
			t.Errorf("retryAfterFromP99(%v) = %d, want %d", c.p99, got, c.want)
		}
	}
}
