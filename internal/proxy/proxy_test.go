package proxy

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/instrument"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

const pageJS = `
var sum = 0;
for (var i = 0; i < 200; i++) {
  sum += i;
}
`

// newOrigin serves a tiny "web server" (Fig. 5 left box).
func newOrigin() *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/app.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, pageJS)
	})
	mux.HandleFunc("/broken.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, "function ( { this is not js")
	})
	mux.HandleFunc("/index.html", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><script src=app.js></script></html>")
	})
	return httptest.NewServer(mux)
}

func newProxy(t *testing.T, origin string, dir string) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(origin, instrument.ModeLight, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestFig5EndToEnd walks the whole Fig. 5 pipeline: request through the
// proxy (1), instrumentation (2-3), exercising the app in the
// interpreter-as-browser (4), posting results (5), and the saved
// human-readable report (6-7).
func TestFig5EndToEnd(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	dir := t.TempDir()
	p, srv := newProxy(t, origin.URL, dir)

	// 1-3: the browser requests the script; the proxy instruments it.
	src, resp := get(t, srv.URL+"/app.js")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(src, "__ceresEnter") {
		t.Fatalf("response not instrumented:\n%s", src)
	}

	// 4: the browser runs the instrumented page.
	in := interp.New()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("instrumented script does not parse: %v", err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := in.Global("sum").Num(); got != 19900 {
		t.Fatalf("sum = %v, want 19900 (behaviour preserved)", got)
	}

	// 5: the page sends its report back through the proxy.
	rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]any{
		"totalMs":   rep.Object().GetNumber("totalMs"),
		"inLoopsMs": rep.Object().GetNumber("inLoopsMs"),
	}
	body, _ := json.Marshal(payload)
	post, err := http.Post(srv.URL+"/__ceres/results?page=/app.js", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusNoContent {
		t.Fatalf("results status %d", post.StatusCode)
	}

	// 6-7: the proxy saved a readable report.
	if got := len(p.Results()); got != 1 {
		t.Fatalf("%d reports, want 1", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "report-*.txt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("report files: %v, %v", files, err)
	}
	content, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "inLoopsMs") || !strings.Contains(string(content), "/app.js") {
		t.Errorf("report content unexpected:\n%s", content)
	}
	if got := p.Stats().Instrumented; got != 1 {
		t.Errorf("Instrumented = %d, want 1", got)
	}
}

func TestProxyPassesThroughHTML(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")
	body, _ := get(t, srv.URL+"/index.html")
	if strings.Contains(body, "__ceres") {
		t.Errorf("HTML was instrumented: %s", body)
	}
	if got := p.Stats().Passthrough; got != 1 {
		t.Errorf("Passthrough = %d, want 1", got)
	}
}

func TestProxyFailsafeOnBrokenJS(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")
	body, resp := get(t, srv.URL+"/broken.js")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body != "function ( { this is not js" {
		t.Errorf("broken script modified: %q", body)
	}
	if got := p.Stats().Failures; got != 1 {
		t.Errorf("Failures = %d, want 1", got)
	}
}

// TestHopByHopHeadersStripped is the RFC 9110 §7.6.1 regression test:
// hop-by-hop fields — the well-known set plus anything named in
// Connection — must not be forwarded upstream, and must not come back
// downstream.
func TestHopByHopHeadersStripped(t *testing.T) {
	var upstreamSaw http.Header
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		upstreamSaw = r.Header.Clone()
		w.Header().Set("X-Origin", "yes")
		w.Header().Set("Keep-Alive", "timeout=5")
		w.Header().Set("Upgrade", "websocket")
		w.Header().Set("X-Hop", "secret")
		w.Header().Set("Connection", "x-hop")
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok")
	}))
	defer origin.Close()
	p, _ := newProxy(t, origin.URL, "")

	req := httptest.NewRequest(http.MethodGet, "/page", nil)
	req.Header.Set("Connection", "keep-alive, x-private")
	req.Header.Set("X-Private", "do-not-forward")
	req.Header.Set("Keep-Alive", "timeout=5")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("X-Public", "forward-me")
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	for _, h := range []string{"X-Private", "Keep-Alive", "Upgrade", "Connection"} {
		if got := upstreamSaw.Get(h); got != "" {
			t.Errorf("hop-by-hop request header %s forwarded upstream: %q", h, got)
		}
	}
	if got := upstreamSaw.Get("X-Public"); got != "forward-me" {
		t.Errorf("end-to-end request header lost: X-Public = %q", got)
	}
	for _, h := range []string{"Keep-Alive", "Upgrade", "X-Hop", "Connection"} {
		if got := rec.Header().Get(h); got != "" {
			t.Errorf("hop-by-hop response header %s forwarded downstream: %q", h, got)
		}
	}
	if got := rec.Header().Get("X-Origin"); got != "yes" {
		t.Errorf("end-to-end response header lost: X-Origin = %q", got)
	}
}

// TestStripHopByHop covers the header scrubber directly, including the
// Connection-named extension token.
func TestStripHopByHop(t *testing.T) {
	h := http.Header{}
	h.Set("Connection", "close, x-custom")
	h.Set("X-Custom", "1")
	h.Set("Proxy-Connection", "keep-alive")
	h.Set("TE", "trailers")
	h.Set("Trailer", "Expires")
	h.Set("Transfer-Encoding", "chunked")
	h.Set("Proxy-Authorization", "Basic abc")
	h.Set("Content-Type", "text/plain")
	stripHopByHop(h)
	if len(h) != 1 || h.Get("Content-Type") != "text/plain" {
		t.Errorf("after strip: %v, want only Content-Type", h)
	}
}

// TestProxyPreservesEscapedPath: /files/a%2Fb must reach the origin in
// its escaped form, not re-encoded as /files/a/b.
func TestProxyPreservesEscapedPath(t *testing.T) {
	var sawEscaped string
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawEscaped = r.URL.EscapedPath()
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok")
	}))
	defer origin.Close()
	_, srv := newProxy(t, origin.URL, "")
	body, resp := get(t, srv.URL+"/files/a%2Fb")
	if resp.StatusCode != http.StatusOK || body != "ok" {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
	if sawEscaped != "/files/a%2Fb" {
		t.Errorf("origin saw escaped path %q, want /files/a%%2Fb", sawEscaped)
	}
}

// TestProxyConcurrentSingleRewrite is the single-flight contract under
// -race: N simultaneous requests for one uncached script cost exactly
// one instrument.Rewrite and every client gets byte-identical output.
func TestProxyConcurrentSingleRewrite(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")

	const n = 32
	bodies := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Get(srv.URL + "/app.js")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = string(b)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d got a different body than client 0", i)
		}
	}
	if !strings.Contains(bodies[0], "__ceresEnter") {
		t.Fatalf("responses not instrumented:\n%s", bodies[0])
	}
	s := p.Stats()
	if s.Rewrites != 1 {
		t.Errorf("Rewrites = %d, want exactly 1 (single-flight)", s.Rewrites)
	}
	if s.Instrumented != n {
		t.Errorf("Instrumented = %d, want %d", s.Instrumented, n)
	}
	if s.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1", s.CacheMisses)
	}
	if s.CacheHits+s.Coalesced != n-1 {
		t.Errorf("hits+coalesced = %d+%d, want %d", s.CacheHits, s.Coalesced, n-1)
	}
}

// TestCachedUncachedByteIdentical: the cache is an optimization, never a
// semantic change — responses with and without it match byte for byte,
// on cold and warm paths alike.
func TestCachedUncachedByteIdentical(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	cached, cachedSrv := newProxy(t, origin.URL, "")
	uncached, uncachedSrv := newProxy(t, origin.URL, "")
	uncached.Cache = nil

	cold, _ := get(t, cachedSrv.URL+"/app.js")
	warm, _ := get(t, cachedSrv.URL+"/app.js")
	plain, _ := get(t, uncachedSrv.URL+"/app.js")
	plain2, _ := get(t, uncachedSrv.URL+"/app.js")
	if cold != plain || warm != plain || plain != plain2 {
		t.Fatal("cached and uncached responses differ")
	}
	if got := cached.Stats().Rewrites; got != 1 {
		t.Errorf("cached proxy Rewrites = %d, want 1", got)
	}
	if got := uncached.Stats().Rewrites; got != 2 {
		t.Errorf("uncached proxy Rewrites = %d, want 2", got)
	}
}

func TestIsJavaScript(t *testing.T) {
	cases := []struct {
		ct, path string
		want     bool
	}{
		{"application/javascript", "/x", true},
		{"text/javascript;charset=utf-8", "/x", true},
		{"TEXT/JavaScript; Charset=UTF-8", "/x", true},
		{"application/ecmascript", "/x", true},
		{"", "/app.js", true},
		{"text/plain", "/mod.mjs", true},
		{"application/json", "/data.json", false},
		{"text/html", "/index.html", false},
	}
	for _, c := range cases {
		if got := isJavaScript(c.ct, c.path); got != c.want {
			t.Errorf("isJavaScript(%q, %q) = %v, want %v", c.ct, c.path, got, c.want)
		}
	}
}

// TestProxyInstrumentsMJS checks module-script detection end to end.
func TestProxyInstrumentsMJS(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/javascript;charset=utf-8")
		io.WriteString(w, pageJS)
	}))
	defer origin.Close()
	_, srv := newProxy(t, origin.URL, "")
	body, _ := get(t, srv.URL+"/mod.mjs")
	if !strings.Contains(body, "__ceresEnter") {
		t.Errorf("module script not instrumented:\n%s", body)
	}
}

// TestSaveReportNonObjectJSON: any valid JSON value — arrays, bare
// numbers — is a valid report; memory and disk must agree.
func TestSaveReportNonObjectJSON(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	dir := t.TempDir()
	p, srv := newProxy(t, origin.URL, dir)

	for _, payload := range []string{`[1, 2, 3]`, `42`} {
		resp, err := http.Post(srv.URL+"/__ceres/results?page=/app.js", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("payload %q: status %d, want 204", payload, resp.StatusCode)
		}
	}
	if got := len(p.Results()); got != 2 {
		t.Fatalf("%d reports in memory, want 2", got)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "report-*.txt"))
	if len(files) != 2 {
		t.Fatalf("%d report files, want 2 (memory and disk diverged)", len(files))
	}
	content, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "1,") {
		t.Errorf("array report not pretty-printed:\n%s", content)
	}
}

func TestStatsEndpoint(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	_, srv := newProxy(t, origin.URL, "")
	get(t, srv.URL+"/app.js")

	body, resp := get(t, srv.URL+"/__ceres/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s Stats
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if s.Instrumented != 1 || s.Rewrites != 1 {
		t.Errorf("stats = %+v, want Instrumented=1 Rewrites=1", s)
	}
}

func TestStatsEndpointDisabled(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")
	p.StatsEndpoint = false
	_, resp := get(t, srv.URL+"/__ceres/stats")
	if resp.StatusCode == http.StatusOK && resp.Header.Get("Content-Type") == "application/json" {
		t.Error("stats endpoint served despite StatsEndpoint=false")
	}
}

func TestProxyRejectsBadResults(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	_, srv := newProxy(t, origin.URL, "")
	resp, err := http.Post(srv.URL+"/__ceres/results", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}
