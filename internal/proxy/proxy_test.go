package proxy

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/instrument"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

const pageJS = `
var sum = 0;
for (var i = 0; i < 200; i++) {
  sum += i;
}
`

// newOrigin serves a tiny "web server" (Fig. 5 left box).
func newOrigin() *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/app.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, pageJS)
	})
	mux.HandleFunc("/broken.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, "function ( { this is not js")
	})
	mux.HandleFunc("/index.html", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><script src=app.js></script></html>")
	})
	return httptest.NewServer(mux)
}

func newProxy(t *testing.T, origin string, dir string) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(origin, instrument.ModeLight, dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestFig5EndToEnd walks the whole Fig. 5 pipeline: request through the
// proxy (1), instrumentation (2-3), exercising the app in the
// interpreter-as-browser (4), posting results (5), and the saved
// human-readable report (6-7).
func TestFig5EndToEnd(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	dir := t.TempDir()
	p, srv := newProxy(t, origin.URL, dir)

	// 1-3: the browser requests the script; the proxy instruments it.
	src, resp := get(t, srv.URL+"/app.js")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(src, "__ceresEnter") {
		t.Fatalf("response not instrumented:\n%s", src)
	}

	// 4: the browser runs the instrumented page.
	in := interp.New()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("instrumented script does not parse: %v", err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := in.Global("sum").Num(); got != 19900 {
		t.Fatalf("sum = %v, want 19900 (behaviour preserved)", got)
	}

	// 5: the page sends its report back through the proxy.
	rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := map[string]any{
		"totalMs":   rep.Object().GetNumber("totalMs"),
		"inLoopsMs": rep.Object().GetNumber("inLoopsMs"),
	}
	body, _ := json.Marshal(payload)
	post, err := http.Post(srv.URL+"/__ceres/results?page=/app.js", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusNoContent {
		t.Fatalf("results status %d", post.StatusCode)
	}

	// 6-7: the proxy saved a readable report.
	if got := len(p.Results()); got != 1 {
		t.Fatalf("%d reports, want 1", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "report-*.txt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("report files: %v, %v", files, err)
	}
	content, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "inLoopsMs") || !strings.Contains(string(content), "/app.js") {
		t.Errorf("report content unexpected:\n%s", content)
	}
	if p.Instrumented != 1 {
		t.Errorf("Instrumented = %d, want 1", p.Instrumented)
	}
}

func TestProxyPassesThroughHTML(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")
	body, _ := get(t, srv.URL+"/index.html")
	if strings.Contains(body, "__ceres") {
		t.Errorf("HTML was instrumented: %s", body)
	}
	if p.Passthrough != 1 {
		t.Errorf("Passthrough = %d, want 1", p.Passthrough)
	}
}

func TestProxyFailsafeOnBrokenJS(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	p, srv := newProxy(t, origin.URL, "")
	body, resp := get(t, srv.URL+"/broken.js")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body != "function ( { this is not js" {
		t.Errorf("broken script modified: %q", body)
	}
	if p.Failures != 1 {
		t.Errorf("Failures = %d, want 1", p.Failures)
	}
}

func TestProxyRejectsBadResults(t *testing.T) {
	origin := newOrigin()
	defer origin.Close()
	_, srv := newProxy(t, origin.URL, "")
	resp, err := http.Post(srv.URL+"/__ceres/results", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}
