package proxy

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// TestShardKeyDistribution: SHA-256 content addressing spreads distinct
// scripts evenly across shards — no shard is empty or pathologically
// loaded, so per-shard locks actually divide contention.
func TestShardKeyDistribution(t *testing.T) {
	c := NewShardedRewriteCache(64<<20, 8)
	const scripts = 256
	for i := 0; i < scripts; i++ {
		if _, err := c.Rewrite(srcN(i), instrument.ModeLight); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Entries; got != scripts {
		t.Fatalf("Entries = %d, want %d", got, scripts)
	}
	mean := scripts / len(c.shards)
	for i, s := range c.shards {
		n := len(s.entries)
		if n == 0 {
			t.Errorf("shard %d is empty — keys are not spreading", i)
		}
		if n > mean*2 {
			t.Errorf("shard %d holds %d entries (mean %d) — distribution skewed", i, n, mean)
		}
	}
}

// TestShardLRUEvictionIndependence: filling one shard past its budget
// evicts only within that shard; residents of other shards survive.
func TestShardLRUEvictionIndependence(t *testing.T) {
	// Budget small enough that ~4 rewritten entries overflow one shard.
	one, err := NewRewriteCache(1<<20).Rewrite(srcN(0), instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(len(one))
	c := NewShardedRewriteCache(entrySize*3*2, 2) // per-shard budget: 3 entries

	// Sort candidate scripts by target shard.
	byShard := map[*cacheShard][]int{}
	for i := 0; i < 64 && (len(byShard[c.shards[0]]) < 8 || len(byShard[c.shards[1]]) < 8); i++ {
		key := cacheKey{sum: sha256.Sum256(srcN(i)), mode: instrument.ModeLight}
		s := c.shardFor(key)
		byShard[s] = append(byShard[s], i)
	}
	a, b := byShard[c.shards[0]], byShard[c.shards[1]]
	if len(a) < 5 || len(b) < 1 {
		t.Fatalf("unlucky shard split: %d/%d", len(a), len(b))
	}

	// One resident in shard 1, then overflow shard 0.
	if _, err := c.Rewrite(srcN(b[0]), instrument.ModeLight); err != nil {
		t.Fatal(err)
	}
	for _, i := range a[:5] {
		if _, err := c.Rewrite(srcN(i), instrument.ModeLight); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions in the overflowed shard", st)
	}
	before := st.Hits
	if _, err := c.Rewrite(srcN(b[0]), instrument.ModeLight); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits - before; got != 1 {
		t.Errorf("shard-1 resident evicted by shard-0 pressure: hit delta %d, want 1", got)
	}
	if len(c.shards[1].entries) == 0 {
		t.Error("shard 1 drained while only shard 0 was over budget")
	}
}

// TestShardedByteIdenticalToSingleShard: sharding is an optimization,
// never a semantic change — 8 concurrent clients over a mixed script
// set get byte-identical bodies from a 1-shard and an 8-shard proxy.
// Run under -race.
func TestShardedByteIdenticalToSingleShard(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "var p = %q;\nvar s = 0;\nfor (var i = 0; i < 50; i++) { s += i; }\n", r.URL.Path)
	}))
	defer origin.Close()

	single, err := New(origin.URL, instrument.ModeLoops, "")
	if err != nil {
		t.Fatal(err)
	}
	single.Cache = NewShardedRewriteCache(DefaultCacheBytes, 1)
	sharded, err := New(origin.URL, instrument.ModeLoops, "")
	if err != nil {
		t.Fatal(err)
	}
	sharded.Cache = NewShardedRewriteCache(DefaultCacheBytes, 8)

	const clients, perClient, hot = 8, 40, 12
	type resp struct{ single, sharded string }
	got := make([][]resp, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := fmt.Sprintf("/hot/%d.js", (cl+i)%hot)
				var r resp
				for name, p := range map[string]*Proxy{"single": single, "sharded": sharded} {
					rec := httptest.NewRecorder()
					p.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
					if rec.Code != http.StatusOK {
						t.Errorf("client %d %s: status %d", cl, name, rec.Code)
						return
					}
					if name == "single" {
						r.single = rec.Body.String()
					} else {
						r.sharded = rec.Body.String()
					}
				}
				got[cl] = append(got[cl], r)
			}
		}(cl)
	}
	wg.Wait()
	for cl := range got {
		for i, r := range got[cl] {
			if r.single != r.sharded {
				t.Fatalf("client %d request %d: sharded body differs from single-shard", cl, i)
			}
		}
	}
	ss, sh := single.Stats(), sharded.Stats()
	if ss.CacheShards != 1 || sh.CacheShards != 8 {
		t.Errorf("shard counts = %d/%d, want 1/8", ss.CacheShards, sh.CacheShards)
	}
	// Same workload, same content addressing: both rewrote each distinct
	// script exactly once.
	if ss.Rewrites != hot || sh.Rewrites != hot {
		t.Errorf("rewrites = %d/%d, want %d each (one per distinct script)", ss.Rewrites, sh.Rewrites, hot)
	}
}

// TestStatsInflightSnapshot is the regression test for the stats
// consistency fix: a single-flight rewrite in progress is visible as
// CacheInflight in the same snapshot as entries and bytes, so
// /__ceres/stats can no longer under-report the keys the cache is
// committed to.
func TestStatsInflightSnapshot(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	c.SetRewriteFunc(func(src []byte, mode instrument.Mode, class sched.Class, started func(func())) ([]byte, time.Duration, error) {
		close(entered)
		<-release
		return inlineRewrite(src, mode, class, started)
	})
	done := make(chan []byte, 1)
	go func() {
		body, err := c.Rewrite(srcN(1), instrument.ModeLight)
		if err != nil {
			t.Error(err)
		}
		done <- body
	}()
	<-entered
	st := c.Stats()
	if st.Inflight != 1 {
		t.Errorf("Inflight = %d during single-flight rewrite, want 1", st.Inflight)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("entries/bytes = %d/%d before completion, want 0/0", st.Entries, st.Bytes)
	}
	if st.Entries+st.Inflight != 1 {
		t.Errorf("entries+inflight = %d, want 1 (the key the cache is committed to)", st.Entries+st.Inflight)
	}
	close(release)
	body := <-done
	st = c.Stats()
	if st.Inflight != 0 || st.Entries != 1 || st.Bytes != int64(len(body)) {
		t.Errorf("after completion: %+v, want inflight 0, 1 entry of %d bytes", st, len(body))
	}
}

// TestStatsNeverUnderReportsUnderLoad drives concurrent rewrites while
// polling Stats and asserts the committed-key invariant continuously:
// bytes are never resident without an entry accounting for them.
func TestStatsNeverUnderReportsUnderLoad(t *testing.T) {
	c := NewShardedRewriteCache(1<<20, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Rewrite(srcN(w*1000+i%50), instrument.ModeLight); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := c.Stats()
		if st.Bytes > 0 && st.Entries == 0 {
			t.Fatalf("snapshot reports %d bytes with 0 entries", st.Bytes)
		}
		if st.Inflight < 0 || st.Entries < 0 {
			t.Fatalf("negative residency: %+v", st)
		}
	}
	close(stop)
	wg.Wait()
}
