// Differential tests for cluster routing: however a rewrite is served
// — locally by its owner, forwarded to the owner, filled via a peer
// prewarm transfer, or fallen back after the owner died — the bytes
// must equal what a single-node proxy produces for the same source.
// The rewrite is deterministic; the cluster is pure routing and must
// never become a semantic layer.
package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/sched"
)

// genScript is a deterministic per-id script, distinct ids giving
// distinct sources (and so distinct ring points).
func genScript(i int) string {
	return fmt.Sprintf("var v%d = 0;\nfor (var i = 0; i < %d; i++) { v%d += i; }\n", i, 10+i, i)
}

// newGenOrigin serves /s/<i>.js with genScript(i) content.
func newGenOrigin(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var i int
		if _, err := fmt.Sscanf(r.URL.Path, "/s/%d.js", &i); err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, genScript(i))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// newFleet builds n serving proxies joined into one cluster over
// loopback HTTP. The listeners come up first (the ring needs every
// URL), then each proxy binds behind its own server via indirection.
func newFleet(t *testing.T, origin string, n int, replicateQPS float64) ([]*Proxy, []string) {
	t.Helper()
	proxies := make([]*Proxy, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			proxies[i].ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	for i := 0; i < n; i++ {
		p, err := NewServing(origin, instrument.ModeLight, "", ServeConfig{
			CacheBytes: 1 << 24,
			Shards:     4,
			Workers:    2,
			QueueDepth: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := cluster.New(cluster.Config{
			Self:           urls[i],
			Peers:          urls,
			ForwardTimeout: 2 * time.Second,
			ReplicateQPS:   replicateQPS,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Cluster = node
		t.Cleanup(func() { node.Close(); p.Close() })
		proxies[i] = p
	}
	return proxies, urls
}

// ownerIndex resolves which fleet member owns src.
func ownerIndex(t *testing.T, urls []string, src string) int {
	t.Helper()
	owner := cluster.NewRing(urls, 0).OwnerForSource([]byte(src), int(instrument.ModeLight))
	for i, u := range urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in fleet %v", owner, urls)
	return -1
}

// TestClusterDifferentialByteIdentity serves the same script through
// every fleet member — the owner locally, the others by forwarding —
// and requires byte-identity with the single-node oracle.
func TestClusterDifferentialByteIdentity(t *testing.T) {
	origin := newGenOrigin(t)
	oracle, oracleSrv := newProxy(t, origin.URL, "")
	want, resp := get(t, oracleSrv.URL+"/s/1.js")
	if resp.StatusCode != http.StatusOK || !strings.Contains(want, "__ceresEnter") {
		t.Fatalf("oracle not instrumented: status %d", resp.StatusCode)
	}
	_ = oracle

	proxies, urls := newFleet(t, origin.URL, 3, 0)
	ownerIdx := ownerIndex(t, urls, genScript(1))
	for i := range proxies {
		got, resp := get(t, urls[i]+"/s/1.js")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d", i, resp.StatusCode)
		}
		if got != want {
			t.Fatalf("node %d served different bytes than the single-node oracle (owner is node %d)", i, ownerIdx)
		}
	}

	ownerStats := proxies[ownerIdx].Cluster.Stats()
	if ownerStats.PeerReceived != 2 {
		t.Errorf("owner PeerReceived = %d, want 2 (one per non-owner)", ownerStats.PeerReceived)
	}
	if ownerStats.OwnedServed != 1 {
		t.Errorf("owner OwnedServed = %d, want 1", ownerStats.OwnedServed)
	}
	for i := range proxies {
		if i == ownerIdx {
			continue
		}
		st := proxies[i].Cluster.Stats()
		if st.ForwardedOut != 1 || st.ForwardFallbacks != 0 {
			t.Errorf("non-owner %d: ForwardedOut=%d ForwardFallbacks=%d, want 1/0", i, st.ForwardedOut, st.ForwardFallbacks)
		}
		// The non-owner streamed the owner's bytes; its own cache and
		// pipeline never saw the script.
		if s := proxies[i].Stats(); s.Rewrites != 0 {
			t.Errorf("non-owner %d ran %d local rewrites for a forwarded key", i, s.Rewrites)
		}
	}
	// Exactly one rewrite fleet-wide: the owner's, coalesced for all
	// three requests by its cache.
	if s := proxies[ownerIdx].Stats(); s.Rewrites != 1 {
		t.Errorf("owner Rewrites = %d, want 1 (cache absorbs the forwarded repeats)", s.Rewrites)
	}
}

// TestClusterPrewarmTransferFillsOwnerCache: POSTing a prewarm batch
// to a non-owner routes each source to its owner's cache — the
// prewarm endpoint is the fleet's cache-fill transfer path — and the
// owner's cached bytes match the oracle.
func TestClusterPrewarmTransferFillsOwnerCache(t *testing.T) {
	origin := newGenOrigin(t)
	proxies, urls := newFleet(t, origin.URL, 2, 0)

	// A source owned by node 1, POSTed to node 0.
	var src string
	for i := 0; ; i++ {
		if src = genScript(i); ownerIndex(t, urls, src) == 1 {
			break
		}
	}
	body, _ := json.Marshal(PrewarmRequest{Sources: []string{src}})
	resp, err := http.Post(urls[0]+"/__ceres/prewarm", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pres PrewarmResponse
	if err := json.NewDecoder(resp.Body).Decode(&pres); err != nil {
		t.Fatal(err)
	}
	if pres.OK != 1 {
		t.Fatalf("prewarm response %+v, want OK=1", pres)
	}
	if st := proxies[0].Cluster.Stats(); st.PrewarmTransfers != 1 {
		t.Errorf("node 0 PrewarmTransfers = %d, want 1", st.PrewarmTransfers)
	}
	if s := proxies[0].Stats(); s.Rewrites != 0 {
		t.Errorf("node 0 ran %d rewrites for a remote-owned prewarm source", s.Rewrites)
	}
	ownerBefore := proxies[1].Stats()
	if ownerBefore.Rewrites != 1 || ownerBefore.CacheMisses != 1 {
		t.Fatalf("owner after transfer: Rewrites=%d CacheMisses=%d, want 1/1", ownerBefore.Rewrites, ownerBefore.CacheMisses)
	}

	// The transferred fill is a hit now, and byte-identical to a fresh
	// single-node rewrite of the same source.
	out, _, err := proxies[1].rewrite([]byte(src), sched.ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if s := proxies[1].Stats(); s.CacheHits != ownerBefore.CacheHits+1 {
		t.Errorf("owner cache hits %d -> %d: prewarm transfer did not fill the cache", ownerBefore.CacheHits, s.CacheHits)
	}
	oracle, _ := newProxy(t, origin.URL, "")
	want, _, err := oracle.rewrite([]byte(src), sched.ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Error("prewarm-transferred bytes differ from the single-node oracle")
	}
}

// TestClusterFallbackWhenOwnerDown: the owner is unreachable, so the
// non-owner retries, gives up, serves locally (identical bytes — the
// rewrite is deterministic), and the failed forwards eject the dead
// peer so the next request doesn't pay the retry tax.
func TestClusterFallbackWhenOwnerDown(t *testing.T) {
	origin := newGenOrigin(t)
	oracle, oracleSrv := newProxy(t, origin.URL, "")
	_ = oracle

	// One live proxy, one dead peer URL (port claimed then released).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	p, err := NewServing(origin.URL, instrument.ModeLight, "", ServeConfig{
		CacheBytes: 1 << 24, Shards: 4, Workers: 2, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	liveSrv := httptest.NewServer(p)
	t.Cleanup(func() { liveSrv.Close(); p.Close() })
	urls := []string{liveSrv.URL, deadURL}
	node, err := cluster.New(cluster.Config{
		Self:           liveSrv.URL,
		Peers:          urls,
		ForwardTimeout: time.Second,
		FailThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Cluster = node
	t.Cleanup(node.Close)

	// Two distinct scripts owned by the dead node: the first two
	// requests exhaust retries and fall back; their failures eject the
	// peer, so a third dead-owned script routes local directly.
	var deadOwned []int
	for i := 0; len(deadOwned) < 3; i++ {
		if owner := cluster.NewRing(urls, 0).OwnerForSource([]byte(genScript(i)), int(instrument.ModeLight)); owner == deadURL {
			deadOwned = append(deadOwned, i)
		}
	}
	for k := 0; k < 2; k++ {
		id := deadOwned[k]
		got, resp := get(t, liveSrv.URL+fmt.Sprintf("/s/%d.js", id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d — owner death broke serving", k, resp.StatusCode)
		}
		want, _ := get(t, oracleSrv.URL+fmt.Sprintf("/s/%d.js", id))
		if got != want {
			t.Fatalf("fallback bytes for script %d differ from the oracle", id)
		}
	}
	st := node.Stats()
	if st.ForwardFallbacks != 2 || st.ForwardErrors != 2 {
		t.Errorf("ForwardFallbacks=%d ForwardErrors=%d, want 2/2", st.ForwardFallbacks, st.ForwardErrors)
	}
	if got := len(node.Members()); got != 1 {
		t.Fatalf("members = %d after 2 forward failures, want 1 (traffic-driven ejection)", got)
	}
	// Ejected: the third dead-owned script is served as sole survivor,
	// no forward attempted.
	before := node.Stats().ForwardedOut
	_, resp := get(t, liveSrv.URL+fmt.Sprintf("/s/%d.js", deadOwned[2]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ejection status %d", resp.StatusCode)
	}
	if after := node.Stats().ForwardedOut; after != before {
		t.Errorf("forwarded to an ejected peer (%d -> %d)", before, after)
	}
}

// TestClusterHoppedRequestServedLocally is the single-hop rule at the
// proxy layer: a request carrying the hop header is served locally
// even when the routing table says a peer owns it.
func TestClusterHoppedRequestServedLocally(t *testing.T) {
	origin := newGenOrigin(t)
	proxies, urls := newFleet(t, origin.URL, 2, 0)

	var src string
	var id int
	for i := 0; ; i++ {
		if src = genScript(i); ownerIndex(t, urls, src) == 1 {
			id = i
			break
		}
	}
	req, err := http.NewRequest(http.MethodGet, urls[0]+fmt.Sprintf("/s/%d.js", id), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HopHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "__ceresEnter") {
		t.Fatalf("hopped request: status %d", resp.StatusCode)
	}
	if st := proxies[0].Cluster.Stats(); st.ForwardedOut != 0 {
		t.Errorf("hopped request was re-forwarded (ForwardedOut=%d) — loop prevention broken", st.ForwardedOut)
	}
	if s := proxies[0].Stats(); s.Rewrites != 1 {
		t.Errorf("hopped request not rewritten locally (Rewrites=%d)", s.Rewrites)
	}
}

// TestPeerRewriteEndpoint pins the wire contract of
// /__ceres/peer/rewrite: 200 with instrumented bytes, 409 on a mode
// mismatch, 422 for a script that does not rewrite.
func TestPeerRewriteEndpoint(t *testing.T) {
	origin := newGenOrigin(t)
	p, srv := newProxy(t, origin.URL, "")
	_ = p

	post := func(src string, hdr map[string]string) (*http.Response, string) {
		req, err := http.NewRequest(http.MethodPost, srv.URL+cluster.PeerRewritePath, strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	resp, body := post(genScript(7), map[string]string{
		cluster.HopHeader:  "1",
		cluster.ModeHeader: instrument.ModeLight.String(),
	})
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "__ceresEnter") {
		t.Fatalf("peer rewrite: status %d body %q", resp.StatusCode, body)
	}
	want, _, err := p.rewrite([]byte(genScript(7)), sched.ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if body != string(want) {
		t.Error("peer rewrite bytes differ from local rewrite of the same source")
	}

	if resp, _ := post(genScript(7), map[string]string{cluster.ModeHeader: "loops"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("mode mismatch: status %d, want 409", resp.StatusCode)
	}
	if resp, _ := post("function ( { broken", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken script: status %d, want 422", resp.StatusCode)
	}
}

// TestClusterHotKeyReplicaByteIdentity: once a key crosses the
// replication threshold a non-owner serves it locally, and those
// replica bytes still match the forwarded (owner) bytes.
func TestClusterHotKeyReplicaByteIdentity(t *testing.T) {
	origin := newGenOrigin(t)
	proxies, urls := newFleet(t, origin.URL, 2, 3) // hot above 3 req/s

	var id int
	for i := 0; ; i++ {
		if ownerIndex(t, urls, genScript(i)) == 1 {
			id = i
			break
		}
	}
	path := fmt.Sprintf("/s/%d.js", id)
	var first, last string
	for k := 0; k < 6; k++ {
		body, resp := get(t, urls[0]+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", k, resp.StatusCode)
		}
		if k == 0 {
			first = body
		}
		last = body
	}
	if first != last {
		t.Error("replica-served bytes differ from forwarded bytes")
	}
	st := proxies[0].Cluster.Stats()
	if st.ReplicaServed == 0 {
		t.Errorf("ReplicaServed = 0 after 6 rapid requests with threshold 3 — replication never engaged")
	}
	if st.ForwardedOut == 0 {
		t.Errorf("ForwardedOut = 0 — key never forwarded before going hot")
	}
}
