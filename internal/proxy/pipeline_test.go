package proxy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// TestPipelineMatchesInlineRewrite: the staged pipeline is an execution
// strategy, never a semantic change — its output is byte-identical to
// the one-shot instrument.Rewrite for every mode.
func TestPipelineMatchesInlineRewrite(t *testing.T) {
	pl := NewPipeline(2, 8)
	defer pl.Close()
	src := srcN(3)
	for _, mode := range []instrument.Mode{instrument.ModeLight, instrument.ModeLoops} {
		want, err := instrument.Rewrite(string(src), mode)
		if err != nil {
			t.Fatal(err)
		}
		got, wait, err := pl.Rewrite(src, mode)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte(want.Source)) {
			t.Errorf("mode %v: pipeline output differs from inline rewrite", mode)
		}
		if wait < 0 {
			t.Errorf("negative queue wait %v", wait)
		}
	}
	st := pl.Stats()
	if st.Completed != 2 {
		t.Errorf("Completed = %d, want 2", st.Completed)
	}
	for _, ss := range st.Stages {
		if ss.Jobs != 2 {
			t.Errorf("stage %s ran %d jobs, want 2", ss.Name, ss.Jobs)
		}
	}
}

// TestPipelineParseFailureSkipsLaterStages: a parse error finishes the
// job (counted as a failure) without running rewrite/encode.
func TestPipelineParseFailureSkipsLaterStages(t *testing.T) {
	pl := NewPipeline(1, 4)
	defer pl.Close()
	_, _, err := pl.Rewrite([]byte("function ( { nope"), instrument.ModeLight)
	if err == nil {
		t.Fatal("broken script rewrote without error")
	}
	st := pl.Stats()
	if st.Failures != 1 || st.Completed != 0 {
		t.Errorf("failures/completed = %d/%d, want 1/0", st.Failures, st.Completed)
	}
	for _, ss := range st.Stages {
		want := int64(1)
		if ss.Name == "rewrite" || ss.Name == "encode" {
			want = 0
		}
		if ss.Jobs != want {
			t.Errorf("stage %s ran %d jobs, want %d", ss.Name, ss.Jobs, want)
		}
	}
}

// TestPipelineSaturation: with the admission queue full, Rewrite
// reports sched.ErrSaturated immediately instead of queueing.
func TestPipelineSaturation(t *testing.T) {
	pl := NewPipeline(1, 1)
	defer pl.Close()
	release := make(chan struct{})
	blocked := make(chan struct{})
	if err := pl.Queue().Submit(func(w *sched.WorkerCtx) {
		close(blocked)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	_, _, err := pl.Rewrite(srcN(1), instrument.ModeLight)
	if !errors.Is(err, sched.ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	close(release)
}

// newServingProxy builds a NewServing proxy over a generated-script
// origin for the serving-path tests.
func newServingProxy(t *testing.T, cfg ServeConfig) (*Proxy, *httptest.Server) {
	t.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "var p = %q;\nvar s = 0;\nfor (var i = 0; i < 40; i++) { s += i; }\n", r.URL.Path)
	}))
	t.Cleanup(origin.Close)
	p, err := NewServing(origin.URL, instrument.ModeLight, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

// TestServingBackpressure429: a saturated pipeline sheds JS requests
// with 429 + Retry-After, never caches the saturation, and recovers —
// the same script rewrites fine once the queue drains.
func TestServingBackpressure429(t *testing.T) {
	p, srv := newServingProxy(t, ServeConfig{Workers: 1, QueueDepth: 1})

	release := make(chan struct{})
	blocked := make(chan struct{})
	if err := p.Pipeline.Queue().Submit(func(w *sched.WorkerCtx) {
		close(blocked)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-blocked

	resp, err := http.Get(srv.URL + "/shed.js")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After")
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	close(release)
	body, resp2 := get(t, srv.URL+"/shed.js")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d", resp2.StatusCode)
	}
	if !strings.Contains(body, "__ceresEnter") {
		t.Fatal("post-drain response not instrumented — saturation was negative-cached")
	}
	if st := p.Stats(); st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1 (the recovered script)", st.CacheEntries)
	}
}

// TestQueueWaitHeader: rewritten responses carry the admission wait in
// microseconds; cache hits report 0.
func TestQueueWaitHeader(t *testing.T) {
	_, srv := newServingProxy(t, ServeConfig{Workers: 2, QueueDepth: 8})
	_, resp := get(t, srv.URL+"/a.js")
	v := resp.Header.Get(QueueWaitHeader)
	if v == "" {
		t.Fatalf("missing %s header", QueueWaitHeader)
	}
	if us, err := strconv.ParseInt(v, 10, 64); err != nil || us < 0 {
		t.Fatalf("%s = %q, want a non-negative integer", QueueWaitHeader, v)
	}
	_, resp = get(t, srv.URL+"/a.js")
	if got := resp.Header.Get(QueueWaitHeader); got != "0" {
		t.Errorf("cache hit %s = %q, want 0", QueueWaitHeader, got)
	}
}

// TestPrewarmEndpoint: a batch of URLs and inline sources warms the
// cache through the pipeline; the next live request is a pure hit.
func TestPrewarmEndpoint(t *testing.T) {
	p, srv := newServingProxy(t, ServeConfig{Workers: 2, QueueDepth: 16})
	req := PrewarmRequest{
		URLs:    []string{"/hot/0.js", "/hot/1.js", "/hot/2.js"},
		Sources: []string{"var ok = 1;\nfor (var i = 0; i < 3; i++) { ok += i; }", "function ( { broken"},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/__ceres/prewarm", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PrewarmResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.OK != 4 || pr.Failed != 1 || pr.Saturated != 0 {
		t.Fatalf("prewarm = %+v, want 4 ok / 1 failed", pr)
	}
	if len(pr.Items) != 5 || pr.Items[4].Status != "failed" {
		t.Fatalf("items = %+v, want the broken source failed", pr.Items)
	}

	before := p.Stats()
	b, r := get(t, srv.URL+"/hot/1.js")
	if r.StatusCode != http.StatusOK || !strings.Contains(b, "__ceresEnter") {
		t.Fatal("prewarmed script not served instrumented")
	}
	after := p.Stats()
	if after.Rewrites != before.Rewrites {
		t.Errorf("live request re-rewrote a prewarmed script (%d -> %d)", before.Rewrites, after.Rewrites)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", before.CacheHits, after.CacheHits)
	}
}

// TestPrewarmConfinedToOrigin: prewarm is a cache warmer, not a
// server-side fetcher — absolute URLs off the configured origin are
// rejected per item, never fetched.
func TestPrewarmConfinedToOrigin(t *testing.T) {
	var elsewhereHit atomic.Bool
	elsewhere := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		elsewhereHit.Store(true)
	}))
	defer elsewhere.Close()
	_, srv := newServingProxy(t, ServeConfig{Workers: 1, QueueDepth: 8})

	body, _ := json.Marshal(PrewarmRequest{URLs: []string{
		elsewhere.URL + "/metadata",
		"/ok.js",
	}})
	resp, err := http.Post(srv.URL+"/__ceres/prewarm", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PrewarmResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.OK != 1 || pr.Failed != 1 {
		t.Fatalf("prewarm = %+v, want the off-origin URL failed and the path ok", pr)
	}
	if !strings.Contains(pr.Items[0].Error, "not on the origin") {
		t.Errorf("off-origin error = %q", pr.Items[0].Error)
	}
	if elsewhereHit.Load() {
		t.Fatal("proxy fetched an off-origin URL on a client's behalf")
	}
}

func TestPrewarmValidation(t *testing.T) {
	p, srv := newServingProxy(t, ServeConfig{Workers: 1, QueueDepth: 4})
	for body, want := range map[string]int{
		"not json":  http.StatusBadRequest,
		"{}":        http.StatusBadRequest,
		`{"urls":[`: http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/__ceres/prewarm", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("body %q: status %d, want %d", body, resp.StatusCode, want)
		}
	}
	// No cache → prewarm has nowhere to land.
	p.Cache = nil
	resp, err := http.Post(srv.URL+"/__ceres/prewarm", "application/json",
		strings.NewReader(`{"sources":["var x = 1;"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cacheless prewarm: status %d, want 409", resp.StatusCode)
	}
}

// TestBackgroundRefresh: with RefreshTTL set, a hit on a near-expiry
// entry re-rewrites it asynchronously — the entry re-stamps (Refreshes
// counter) and keeps serving byte-identical content throughout.
func TestBackgroundRefresh(t *testing.T) {
	c := NewShardedRewriteCache(1<<20, 2)
	c.SetRefresh(40*time.Millisecond, nil)
	src := srcN(7)
	first, err := c.Rewrite(src, instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	// Age past the 80% refresh threshold, then hit.
	time.Sleep(35 * time.Millisecond)
	during, err := c.Rewrite(src, instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, during) {
		t.Fatal("refresh-triggering hit changed bytes")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background refresh never landed")
		}
		time.Sleep(time.Millisecond)
	}
	after, err := c.Rewrite(src, instrument.ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, after) {
		t.Fatal("refreshed entry serves different bytes")
	}
	st := c.Stats()
	if st.Rewrites != 1 {
		t.Errorf("Rewrites = %d, want 1 (refresh counts separately)", st.Rewrites)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (refresh re-stamps, never duplicates)", st.Entries)
	}
}

// TestBackgroundRefreshThroughPipeline: the serving proxy's refresh
// path rides the scheduler queue end to end.
func TestBackgroundRefreshThroughPipeline(t *testing.T) {
	p, srv := newServingProxy(t, ServeConfig{Workers: 2, QueueDepth: 8, RefreshTTL: 40 * time.Millisecond})
	first, _ := get(t, srv.URL+"/app.js")
	time.Sleep(35 * time.Millisecond)
	during, _ := get(t, srv.URL+"/app.js")
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().CacheRefreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pipeline refresh never landed")
		}
		time.Sleep(time.Millisecond)
	}
	after, _ := get(t, srv.URL+"/app.js")
	if first != during || first != after {
		t.Fatal("refresh changed served bytes")
	}
}

// TestServingConcurrentMixedLoad drives the full serving stack — shards,
// pipeline, admission — with 8 concurrent clients under -race and
// checks accounting adds up.
func TestServingConcurrentMixedLoad(t *testing.T) {
	p, srv := newServingProxy(t, ServeConfig{Workers: 4, QueueDepth: 64, Shards: 8})
	const clients, perClient, hot = 8, 30, 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := fmt.Sprintf("/hot/%d.js", i%hot)
				if i%5 == 0 {
					path = fmt.Sprintf("/unique/%d-%d.js", cl, i)
				}
				body, resp := getErr(srv.URL + path)
				if resp == nil || resp.StatusCode != http.StatusOK {
					errs[cl] = fmt.Errorf("request %s failed: %v", path, resp)
					return
				}
				if !strings.Contains(body, "__ceres") {
					errs[cl] = fmt.Errorf("%s not instrumented", path)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	total := int64(clients * perClient)
	if st.Instrumented != total {
		t.Errorf("Instrumented = %d, want %d", st.Instrumented, total)
	}
	if st.CacheHits+st.CacheMisses+st.Coalesced != total {
		t.Errorf("hits+misses+coalesced = %d, want %d", st.CacheHits+st.CacheMisses+st.Coalesced, total)
	}
	if st.Pipeline == nil || st.Pipeline.Completed != st.CacheMisses {
		t.Errorf("pipeline completions %v vs misses %d diverge", st.Pipeline, st.CacheMisses)
	}
}

func getErr(url string) (string, *http.Response) {
	resp, err := http.Get(url)
	if err != nil {
		return "", nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", nil
	}
	return string(b), resp
}

// TestCachePanicContainment: a panicking rewrite function resolves the
// single-flight entry with an error instead of wedging the key forever,
// and the cache keeps serving afterwards.
func TestCachePanicContainment(t *testing.T) {
	c := NewRewriteCache(1 << 20)
	calls := 0
	c.SetRewriteFunc(func(src []byte, mode instrument.Mode, class sched.Class, started func(func())) ([]byte, time.Duration, error) {
		calls++
		if calls == 1 {
			panic("injected rewriter bug")
		}
		return inlineRewrite(src, mode, class, started)
	})
	if _, err := c.Rewrite(srcN(1), instrument.ModeLight); err == nil ||
		!strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want contained panic error", err)
	}
	// The panic was negative-cached like any rewrite failure; a
	// different script must still rewrite fine (no wedged in-flight key,
	// no dead worker).
	if _, err := c.Rewrite(srcN(2), instrument.ModeLight); err != nil {
		t.Fatalf("cache dead after contained panic: %v", err)
	}
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("Inflight = %d after panic, want 0", st.Inflight)
	}
}

// TestCachelessRejectionNotCountedAsRewrite: with the cache disabled, a
// request shed by admission must not inflate Stats.Rewrites.
func TestCachelessRejectionNotCountedAsRewrite(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, "var x = 1;")
	}))
	defer origin.Close()
	p, err := NewServing(origin.URL, instrument.ModeLight, "", ServeConfig{
		DisableCache: true, Workers: 1, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Cache != nil {
		t.Fatal("DisableCache did not disable the cache")
	}
	srv := httptest.NewServer(p)
	defer srv.Close()

	release := make(chan struct{})
	blocked := make(chan struct{})
	if err := p.Pipeline.Queue().Submit(func(w *sched.WorkerCtx) {
		close(blocked)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-blocked
	resp, err := http.Get(srv.URL + "/x.js")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	close(release)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	st := p.Stats()
	if st.Rewrites != 0 {
		t.Errorf("Rewrites = %d after a shed cacheless request, want 0", st.Rewrites)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}
