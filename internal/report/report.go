// Package report renders the paper's tables and figures as text, in the
// same row/series structure the paper prints, so a side-by-side check
// against the original is mechanical.
package report

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/study"
	"repro/internal/survey"
	"repro/internal/workloads"
)

// Table1 renders the case-study application list.
func Table1(wls []*workloads.Workload) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Case study - web applications\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Name\tCategory\tDescription")
	for _, wl := range wls {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", wl.Name, wl.Category, wl.Description)
	}
	tw.Flush()
	return sb.String()
}

// Table2 renders running times with the paper's values alongside.
func Table2(rows []study.Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Case study - running time (virtual seconds; paper values in parentheses)\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Name\tTotal\tActive\tIn Loops\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f (%.0f)\t%.2f (%.2f)\t%.2f (%.2f)\t\n",
			r.Name, r.TotalS, r.PaperTotalS, r.ActiveS, r.PaperActiveS, r.LoopsS, r.PaperLoopsS)
	}
	tw.Flush()
	intensive := 0
	anomalies := 0
	for _, r := range rows {
		if r.ComputeIntensive() {
			intensive++
		}
		if r.ActiveBelowLoops() {
			anomalies++
		}
	}
	fmt.Fprintf(&sb, "\ncompute-intensive: %d/%d; apps with Active < In-Loops (the Gecko sampling artifact, §3.1): %d\n",
		intensive, len(rows), anomalies)
	return sb.String()
}

// Table3 renders the loop-nest inspection.
func Table3(rows []study.Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3. Case study - detailed inspection of loop nests\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\t%\tinstances\ttrips\tdivergence\tDOM\tbreaking deps\tpar. difficulty")
	prev := ""
	for _, r := range rows {
		name := r.App
		if name == prev {
			name = ""
		} else {
			prev = r.App
		}
		label := ""
		if r.PromotedFrom != 0 {
			label = " (inner)"
		}
		fmt.Fprintf(tw, "%s%s\t%.0f\t%d\t%.0f±%.0f\t%s\t%s\t%s\t%s\n",
			name, label, r.PctLoop, r.Instanc, r.TripMean, r.TripStd,
			r.Divergence, yesNo(r.DOMAccess), r.DepDiff, r.ParDiff)
	}
	tw.Flush()
	total, parallel := 0, 0
	for i := range rows {
		total++
		if rows[i].Parallelizable() {
			parallel++
		}
	}
	fmt.Fprintf(&sb, "\nnests with intrinsic parallelism: %d/%d (paper: ~3/4)\n", parallel, total)
	return sb.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Amdahl renders the per-app speedup bounds (§4.2's Amdahl discussion).
func Amdahl(results []*study.AppResult) string {
	var sb strings.Builder
	sb.WriteString("Amdahl speedup upper bounds (infinite cores)\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Name\teasy loops\tbreakable loops\t16 cores\t")
	over3 := 0
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\t\n",
			r.Workload.Name, r.AmdahlEasy, r.AmdahlBreakable, r.Amdahl16)
		if r.AmdahlBreakable > 3 {
			over3++
		}
	}
	tw.Flush()
	fmt.Fprintf(&sb, "\napps with bound > 3x: %d (paper: 5 of 12)\n", over3)
	return sb.String()
}

// Exec renders the ModeExec table: measured speculative-execution
// speedup per convertible hot loop, next to the ModeDeep Amdahl bound
// (§5.1/§5.3 — the analyze → execute loop, closed). The static column
// is the purity prover's verdict for the kernel ("proven+" marks a
// guard-elided run). The chunks/steals columns are the work-stealing
// scheduler's telemetry at the ladder's top worker count: chunk-plan
// length (a pure function of n — identical at every count) and
// successful steals (timing-dependent, like the wall-clock columns;
// high steal counts on a skewed kernel are the scheduler doing its
// job). A kernel that never dispatched has no scheduling telemetry, so
// those cells render as dashes instead of misleading zeros.
func Exec(rows []study.ExecRow, counts []int) string {
	var sb strings.Builder
	sb.WriteString("ModeExec. Speculative ParallelArray execution - measured vs. predicted\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "App\tHot loop\tn\t")
	for _, w := range counts {
		fmt.Fprintf(tw, "%dw ms\t", w)
	}
	top := 1
	if len(counts) > 0 {
		top = counts[len(counts)-1]
	}
	fmt.Fprintf(tw, "best\tAmdahl16\tstatic\tchunks\tsteals@%dw\tparallel\tidentical\tabort\t\n", top)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t", r.App, r.Loop, r.N)
		for _, w := range counts {
			if ms, ok := r.WallMS[w]; ok {
				fmt.Fprintf(tw, "%.1f\t", ms)
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		best, at := r.BestSpeedup()
		chunks, steals := "-", "-"
		if r.Chunks[top] > 0 {
			chunks = fmt.Sprint(r.Chunks[top])
			steals = fmt.Sprint(r.Steals[top])
		}
		static := dash(r.StaticVerdict)
		if r.GuardElided {
			static += "+"
		}
		fmt.Fprintf(tw, "%.2fx@%d\t%.2fx\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			best, at, r.Amdahl16, static, chunks, steals,
			yesNo(r.Parallel), yesNo(r.Identical), dash(r.AbortReason))
	}
	tw.Flush()
	fmt.Fprintf(&sb, "\n%s\n", study.ExecSummary(rows))
	return sb.String()
}

// Pipe renders the pipeline ladder: the streaming decode→filter→encode
// workload measured pipelined (pipePar) and as the chained-mapPar
// baseline at each worker count, with the streaming telemetry — batches,
// batch size, backpressure stalls and the goroutine split across stages
// — taken at the ladder's top count. The pairs column is the
// core.PipePairDetector's found/expected count on the raw loop-pair
// form of the same program: the detect → schedule → verify loop in one
// row. Stage verdicts are the purity prover's per-stage answers.
func Pipe(rows []study.PipeRow, counts []int) string {
	var sb strings.Builder
	sb.WriteString("ModeExec pipeline ladder. Streaming produce->consume stages vs. chained mapPar\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "App\tHot loop\tn\tstages\t")
	for _, w := range counts {
		fmt.Fprintf(tw, "pipe %dw ms\tchain %dw ms\t", w, w)
	}
	top := 1
	if len(counts) > 0 {
		top = counts[len(counts)-1]
	}
	fmt.Fprintf(tw, "batches@%dw\tbatch\tstalls\tsplit\tpairs\tverdicts\tparallel\tidentical\tabort\t\n", top)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t", r.App, r.Loop, r.N, r.Stages)
		for _, w := range counts {
			pipe, chain := "-", "-"
			if ms, ok := r.PipeMS[w]; ok {
				pipe = fmt.Sprintf("%.1f", ms)
			}
			if ms, ok := r.ChainMS[w]; ok {
				chain = fmt.Sprintf("%.1f", ms)
			}
			fmt.Fprintf(tw, "%s\t%s\t", pipe, chain)
		}
		batches, batch, stalls, split := "-", "-", "-", "-"
		if r.Batches > 0 {
			batches = fmt.Sprint(r.Batches)
			batch = fmt.Sprint(r.BatchSize)
			stalls = fmt.Sprint(r.Stalls)
			split = intsDash(r.StageWorkers)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d/%d\t%s\t%s\t%s\t%s\t\n",
			batches, batch, stalls, split,
			r.PairsFound, r.PairsWant, dash(strings.Join(r.StageVerdicts, ",")),
			yesNo(r.Parallel), yesNo(r.Identical), dash(r.AbortReason))
	}
	tw.Flush()
	fmt.Fprintf(&sb, "\n%s\n", study.PipeSummary(rows))
	return sb.String()
}

// intsDash joins a worker split as "2-1-1".
func intsDash(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "-")
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// bar renders a proportional ASCII bar.
func bar(pct float64, width int) string {
	n := int(pct / 100 * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Figure1 renders future web application categories.
func Figure1(rows []survey.Fig1Row, valid int) string {
	var sb strings.Builder
	sb.WriteString("Figure 1. Future web application categories, as identified by respondents\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-52s %3d (%4.1f%%) %s\n", r.Category, r.Count, r.Percent, bar(r.Percent, 30))
	}
	fmt.Fprintf(&sb, "coded answers: %d of %d respondents\n", valid, survey.NumRespondents)
	return sb.String()
}

// Figure2 renders performance bottleneck ratings.
func Figure2(rows []survey.Fig2Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 2. Performance bottlenecks importance as scaled by respondents\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "component\tnot an issue\tso, so...\tis a bottleneck\tbottleneck share")
	for _, r := range rows {
		n := r.Answered()
		fmt.Fprintf(tw, "%s\t%d (%d%%)\t%d (%d%%)\t%d (%d%%)\t%.0f%%\n",
			r.Component,
			r.NotIssue, pct(r.NotIssue, n),
			r.SoSo, pct(r.SoSo, n),
			r.Bottleneck, pct(r.Bottleneck, n),
			r.PctBottleneck())
	}
	tw.Flush()
	return sb.String()
}

func pct(x, n int) int {
	if n == 0 {
		return 0
	}
	return int(100*float64(x)/float64(n) + 0.5)
}

// ScaleFigure renders Figures 3 and 4 (1..5 preference histograms).
func ScaleFigure(title, leftLabel, rightLabel string, h survey.ScaleHistogram) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for v := 1; v <= 5; v++ {
		p := h.Percent(v)
		fmt.Fprintf(&sb, "%d  %3d (%4.1f%%) %s\n", v, h.Counts[v-1], p, bar(p, 30))
	}
	fmt.Fprintf(&sb, "1 = %s ... 5 = %s; %d answers\n", leftLabel, rightLabel, h.Total)
	return sb.String()
}

// ServingRow is one client-count round of the proxy load harness
// (cmd/loadgen): throughput, latency and queue-wait percentiles, and
// the cache/backpressure counters for that round.
type ServingRow struct {
	Clients        int
	ReqPerSec      float64
	RewritesPerSec float64
	P50, P99       time.Duration
	// QWaitP50/QWaitP99 are admission queue waits (the proxy's
	// X-Ceres-Queue-Wait header) across the round's 200 responses. In a
	// per-class row they are the *interactive* class's waits.
	QWaitP50, QWaitP99 time.Duration
	// Rejected counts 429 responses — requests shed by backpressure.
	// In a per-class row these are interactive rejections specifically.
	Rejected                          int64
	Hits, Misses, Coalesced, Failures int64

	// PerClass marks a mixed-priority round (loadgen -scenario
	// priority): the fields below are populated and Serving renders the
	// batch/promotion columns.
	PerClass bool
	// BatchClients is the number of background batch load generators.
	BatchClients int
	// BatchPerSec is batch rewrites completed per second; BatchShed
	// counts batch admissions rejected or dropped (shed before running).
	BatchPerSec float64
	BatchShed   int64
	// BatchQWaitP99 is the batch class's server-side queue-wait p99.
	BatchQWaitP99 time.Duration
	// Promoted counts batch flights promoted to interactive by
	// single-flight priority inheritance during the round.
	Promoted int64
}

// Serving renders the serving-ladder table: one row per client count.
// The shape to read for: req/s scaling with clients while q-wait p99
// stays bounded; when the pipeline saturates, rejected grows instead of
// p99 (backpressure sheds load rather than stretching the tail). Rows
// marked PerClass (the mixed-priority ladder) add the batch columns:
// interactive q-wait p99 should stay flat down the ladder while batch/s
// fills residual capacity and batch shed — never interactive rejected —
// absorbs saturation.
func Serving(title string, rows []ServingRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	perClass := false
	for _, r := range rows {
		perClass = perClass || r.PerClass
	}
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	if perClass {
		fmt.Fprintln(tw, "clients\tbatch-cl\treq/s\tp50\tp99\tq-wait p50\tq-wait p99\trejected\tbatch/s\tb q-wait p99\tb shed\tpromoted\t")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%.0f\t%s\t%s\t%s\t%s\t%d\t%.1f\t%s\t%d\t%d\t\n",
				r.Clients, r.BatchClients, r.ReqPerSec,
				fmtShortDur(r.P50), fmtShortDur(r.P99),
				fmtShortDur(r.QWaitP50), fmtShortDur(r.QWaitP99),
				r.Rejected, r.BatchPerSec, fmtShortDur(r.BatchQWaitP99),
				r.BatchShed, r.Promoted)
		}
		tw.Flush()
		return sb.String()
	}
	fmt.Fprintln(tw, "clients\treq/s\trewrites/s\tp50\tp99\tq-wait p50\tq-wait p99\trejected\thits\tmisses\tcoalesced\tfailures\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t\n",
			r.Clients, r.ReqPerSec, r.RewritesPerSec,
			fmtShortDur(r.P50), fmtShortDur(r.P99),
			fmtShortDur(r.QWaitP50), fmtShortDur(r.QWaitP99),
			r.Rejected, r.Hits, r.Misses, r.Coalesced, r.Failures)
	}
	tw.Flush()
	return sb.String()
}

func fmtShortDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// ClusterNodeRow is one fleet member's share of a cluster round
// (loadgen -scenario cluster): how much it served as owner, forwarded
// out, served for peers, replicated hot, or absorbed as fallback when
// an owner died, plus the membership churn it observed.
type ClusterNodeRow struct {
	// Node is the member's display name; Killed marks the node the
	// round killed mid-run (its row merges pre-kill and post-revive
	// counters); Live is its state at round end.
	Node   string
	Killed bool
	Live   bool
	// OwnedServed/ForwardedOut/PeerReceived/ReplicaServed/
	// ForwardFallbacks/Rebalances mirror cluster.Stats.
	OwnedServed      int64
	ForwardedOut     int64
	PeerReceived     int64
	ReplicaServed    int64
	ForwardFallbacks int64
	Rebalances       int64
	// Hits/Misses/Rejected are the node's cache and shed counters.
	Hits, Misses, Rejected int64
}

// Cluster renders the per-node fleet table. The shape to read for:
// owned dominating every node (partitioning working), fwd-out ≈ the
// sum of the other nodes' recv (the peer protocol balancing), replica
// absorbing hot keys away from their owner, and — through a kill —
// fallback and rebal absorbing the disruption while every request
// still completes.
func Cluster(title string, rows []ClusterNodeRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "node\tstate\towned\tfwd-out\trecv\treplica\tfallbk\trebal\thits\tmisses\trejected\t")
	for _, r := range rows {
		state := "live"
		if r.Killed {
			state = "killed"
			if r.Live {
				state = "revived"
			}
		} else if !r.Live {
			state = "down"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.Node, state, r.OwnedServed, r.ForwardedOut, r.PeerReceived,
			r.ReplicaServed, r.ForwardFallbacks, r.Rebalances,
			r.Hits, r.Misses, r.Rejected)
	}
	tw.Flush()
	return sb.String()
}

// Fortuna renders the task-level limit-study baseline.
func Fortuna(rows []study.FortunaRow) string {
	var sb strings.Builder
	sb.WriteString("Baseline: Fortuna-style task-level speedup limits (§6 / [20])\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Name\ttasks\twork(ms)\tcritical(ms)\tlimit\t")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2fx\t\n", r.App, r.Tasks, r.WorkMS, r.CritMS, r.Limit)
		sum += r.Limit
	}
	tw.Flush()
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "\naverage limit: %.2fx (task-, not loop-level parallelism)\n", sum/float64(len(rows)))
	}
	return sb.String()
}
