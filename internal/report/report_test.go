package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/study"
	"repro/internal/survey"
	"repro/internal/workloads"
)

func TestTable1Rendering(t *testing.T) {
	out := Table1(workloads.All())
	for _, want := range []string{"HAAR.js", "Tear-able Cloth", "D3.js", "Games", "Visualization"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Errorf("Table 1 has %d lines, want 12 apps + header", lines)
	}
}

func TestTable2Rendering(t *testing.T) {
	rows := []study.Table2Row{
		{Name: "app-a", TotalS: 10, ActiveS: 5, LoopsS: 7, ScriptS: 8, PaperTotalS: 12, PaperActiveS: 6, PaperLoopsS: 8},
		{Name: "app-b", TotalS: 20, ActiveS: 1, LoopsS: 0.5, ScriptS: 1},
	}
	out := Table2(rows)
	if !strings.Contains(out, "app-a") || !strings.Contains(out, "(12)") {
		t.Errorf("paper values missing:\n%s", out)
	}
	if !strings.Contains(out, "compute-intensive: 1/2") {
		t.Errorf("summary line wrong:\n%s", out)
	}
	if !strings.Contains(out, "Active < In-Loops") {
		t.Errorf("anomaly note missing:\n%s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	rows := []study.Table3Row{
		{App: "x", NestReport: core.NestReport{Label: "for(line 3)", PctLoop: 80, Instanc: 10,
			TripMean: 100, TripStd: 5, Divergence: core.DivLittle, DOMAccess: false,
			DepDiff: core.Easy, ParDiff: core.Easy}},
		{App: "x", NestReport: core.NestReport{Label: "for(line 9)", PctLoop: 15, Instanc: 2,
			TripMean: 4, Divergence: core.DivYes, DOMAccess: true,
			DepDiff: core.VeryHard, ParDiff: core.VeryHard, PromotedFrom: 1}},
	}
	out := Table3(rows)
	if !strings.Contains(out, "100±5") {
		t.Errorf("trips column:\n%s", out)
	}
	if !strings.Contains(out, "very hard") || !strings.Contains(out, "little") {
		t.Errorf("judgment columns:\n%s", out)
	}
	if !strings.Contains(out, "(inner)") {
		t.Errorf("promoted marker missing:\n%s", out)
	}
	if !strings.Contains(out, "intrinsic parallelism: 1/2") {
		t.Errorf("parallelizable summary:\n%s", out)
	}
}

func TestFigureRenderers(t *testing.T) {
	c := survey.Generate(42)
	rows, valid := survey.Figure1(c, survey.NewCoder())
	f1 := Figure1(rows, valid)
	if !strings.Contains(f1, "Games") || !strings.Contains(f1, "#") {
		t.Errorf("Figure 1:\n%s", f1)
	}
	f2 := Figure2(survey.Figure2(c))
	if !strings.Contains(f2, "resource loading") || !strings.Contains(f2, "52%") {
		t.Errorf("Figure 2:\n%s", f2)
	}
	f3 := ScaleFigure("Figure 3.", "functional", "imperative", survey.Figure3(c))
	if !strings.Contains(f3, "166 answers") {
		t.Errorf("Figure 3:\n%s", f3)
	}
}

func TestFortunaRendering(t *testing.T) {
	rows := []study.FortunaRow{
		{App: "a", Tasks: 10, Limit: 2.5, WorkMS: 100, CritMS: 40},
		{App: "b", Tasks: 5, Limit: 1.0, WorkMS: 50, CritMS: 50},
	}
	out := Fortuna(rows)
	if !strings.Contains(out, "average limit: 1.75x") {
		t.Errorf("average:\n%s", out)
	}
}

func TestAmdahlRendering(t *testing.T) {
	results := []*study.AppResult{
		{Workload: &workloads.Workload{Name: "fast"}, AmdahlEasy: 5, AmdahlBreakable: 6, Amdahl16: 4},
		{Workload: &workloads.Workload{Name: "slow"}, AmdahlEasy: 1, AmdahlBreakable: 1, Amdahl16: 1},
	}
	out := Amdahl(results)
	if !strings.Contains(out, "bound > 3x: 1") {
		t.Errorf("Amdahl:\n%s", out)
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(150, 10); got != "##########" {
		t.Errorf("over-100%% bar = %q", got)
	}
	if got := bar(-5, 10); got != ".........." {
		t.Errorf("negative bar = %q", got)
	}
}

func TestServingRendering(t *testing.T) {
	rows := []ServingRow{
		{Clients: 1, ReqPerSec: 8300, RewritesPerSec: 2400, P50: 80 * time.Microsecond,
			P99: 820 * time.Microsecond, QWaitP50: 10 * time.Microsecond,
			QWaitP99: 120 * time.Microsecond, Hits: 100, Misses: 40},
		{Clients: 8, ReqPerSec: 7300, RewritesPerSec: 2600, P50: 990 * time.Microsecond,
			P99: 2500 * time.Microsecond, QWaitP99: time.Millisecond, Rejected: 37},
	}
	out := Serving("loadgen: saturation ladder", rows)
	for _, want := range []string{"clients", "q-wait p99", "rejected", "8300", "37", "1ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Serving output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("Serving rendered %d lines, want 4 (title + header + 2 rows)", lines)
	}
}

func TestServingPerClassRendering(t *testing.T) {
	rows := []ServingRow{
		{PerClass: true, Clients: 4, BatchClients: 0, ReqPerSec: 5100,
			P50: 300 * time.Microsecond, P99: 900 * time.Microsecond,
			QWaitP50: 20 * time.Microsecond, QWaitP99: 150 * time.Microsecond},
		{PerClass: true, Clients: 4, BatchClients: 8, ReqPerSec: 4900,
			P50: 320 * time.Microsecond, P99: 950 * time.Microsecond,
			QWaitP50: 25 * time.Microsecond, QWaitP99: 160 * time.Microsecond,
			BatchPerSec: 310.5, BatchShed: 12, BatchQWaitP99: 3 * time.Millisecond,
			Promoted: 2},
	}
	out := Serving("loadgen: priority ladder", rows)
	for _, want := range []string{"batch-cl", "batch/s", "b shed", "promoted", "310.5", "12", "3ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("per-class Serving output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("per-class Serving rendered %d lines, want 4", lines)
	}
}

// A kernel that never dispatched has no scheduling telemetry: its
// chunk/steal cells must render as dashes, and the static column must
// show the prover's verdict (with "+" marking guard-elided runs).
func TestExecSuppressesTelemetryForNeverDispatched(t *testing.T) {
	counts := []int{1, 2}
	rows := []study.ExecRow{
		{
			App: "A", Loop: "dispatched loop", N: 64,
			WallMS:  map[int]float64{1: 2.0, 2: 1.0},
			Speedup: map[int]float64{1: 1, 2: 2},
			Chunks:  map[int]int{2: 8}, Steals: map[int]int{2: 3},
			Parallel: true, Identical: true,
			StaticVerdict: "proven", GuardElided: true,
		},
		{
			App: "B", Loop: "refused loop", N: 64,
			WallMS:  map[int]float64{1: 2.0, 2: 2.0},
			Speedup: map[int]float64{1: 1, 2: 1},
			Chunks:  map[int]int{}, Steals: map[int]int{},
			Identical:     true,
			StaticVerdict: "refuted",
			AbortReason:   "static analysis refuted purity: writes captured or global variable g",
		},
	}
	out := Exec(rows, counts)
	for _, want := range []string{"static", "proven+", "refuted"} {
		if !strings.Contains(out, want) {
			t.Errorf("Exec output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	var refusedLine string
	for _, l := range lines {
		if strings.Contains(l, "refused loop") {
			refusedLine = l
		}
	}
	if refusedLine == "" {
		t.Fatalf("no row for refused loop:\n%s", out)
	}
	// The never-dispatched row must not print zero chunk/steal counts.
	if !strings.Contains(refusedLine, "-") || strings.Contains(refusedLine, "\t0\t0\t") {
		t.Errorf("refused row should dash its telemetry: %q", refusedLine)
	}
}

func TestPipeRendering(t *testing.T) {
	counts := []int{1, 2}
	rows := []study.PipeRow{
		{
			App: "CamanJS", Loop: "decode/filter/encode pixel pipeline", N: 512, Stages: 3,
			PipeMS:   map[int]float64{1: 4.0, 2: 2.5},
			ChainMS:  map[int]float64{1: 4.2, 2: 3.0},
			Speedup:  map[int]float64{1: 1, 2: 1.6},
			Parallel: true, Identical: true,
			Batches: 8, BatchSize: 64, Stalls: 3,
			StageWorkers:  []int{2, 1, 1},
			StageVerdicts: []string{"proven", "proven", "proven"},
			PairsFound:    3, PairsWant: 3,
		},
	}
	out := Pipe(rows, counts)
	for _, want := range []string{
		"pipe 2w ms", "chain 2w ms", "batches@2w", "2-1-1", "3/3",
		"proven,proven,proven", "stalls", "3-stage pipeline streamed 8 batches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Pipe output missing %q:\n%s", want, out)
		}
	}
}

func TestPipeRenderingDashesWhenNeverStreamed(t *testing.T) {
	rows := []study.PipeRow{
		{
			App: "CamanJS", Loop: "pipeline", N: 512, Stages: 3,
			PipeMS:        map[int]float64{1: 4.0},
			ChainMS:       map[int]float64{1: 4.2},
			Identical:     true,
			StageVerdicts: []string{"proven", "proven", "proven"},
			PairsFound:    3, PairsWant: 3,
			AbortReason: "only sequential counts measured",
		},
	}
	out := Pipe(rows, []int{1})
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "CamanJS") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no data row:\n%s", out)
	}
	// A never-streamed row must dash its streaming telemetry, not print zeros.
	if strings.Contains(line, "\t0\t0\t0\t") {
		t.Errorf("never-streamed row printed zero telemetry: %q", line)
	}
	if !strings.Contains(out, "only sequential counts measured") {
		t.Errorf("abort reason missing:\n%s", out)
	}
}
