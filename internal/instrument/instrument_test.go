package instrument

import (
	"strings"
	"testing"

	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

const appSrc = `
var total = 0;
function work() {
  for (var i = 0; i < 50; i++) {
    var inner = 0;
    for (var j = 0; j < 20; j++) {
      inner += i * j;
    }
    total += inner;
  }
}
work();
work();
var k = 0;
while (k < 30) { k++; }
`

// runReport runs instrumented source and fetches __ceresReport().
func runReport(t *testing.T, src string, mode Mode) (value.Value, *interp.Interp) {
	t.Helper()
	res, err := Rewrite(src, mode)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	prog, err := parser.Parse(res.Source)
	if err != nil {
		t.Fatalf("instrumented source does not parse: %v\n%s", err, res.Source)
	}
	in := interp.New()
	if err := in.Run(prog); err != nil {
		t.Fatalf("instrumented source failed: %v", err)
	}
	rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	return rep, in
}

func TestLightModePreservesBehaviour(t *testing.T) {
	// Run the original and the instrumented version; `total` must agree.
	orig := interp.New()
	if err := orig.Run(parser.MustParse(appSrc)); err != nil {
		t.Fatal(err)
	}
	_, instr := runReport(t, appSrc, ModeLight)
	if a, b := orig.Global("total").Num(), instr.Global("total").Num(); a != b {
		t.Errorf("instrumentation changed behaviour: total %v vs %v", a, b)
	}
}

func TestLightModeMeasuresLoopTime(t *testing.T) {
	rep, _ := runReport(t, appSrc, ModeLight)
	if !rep.IsObject() {
		t.Fatalf("report = %s", rep.Inspect())
	}
	totalMs, _ := rep.Object().Get("totalMs")
	inLoopsMs, _ := rep.Object().Get("inLoopsMs")
	if totalMs.ToNumber() <= 0 {
		t.Errorf("totalMs = %v, want > 0", totalMs.ToNumber())
	}
	if inLoopsMs.ToNumber() <= 0 || inLoopsMs.ToNumber() > totalMs.ToNumber() {
		t.Errorf("inLoopsMs = %v of %v: must be in (0, total]", inLoopsMs.ToNumber(), totalMs.ToNumber())
	}
	// This app is loop-dominated: expect the majority of time in loops.
	if inLoopsMs.ToNumber() < 0.5*totalMs.ToNumber() {
		t.Errorf("loop share %v/%v below 50%% for a loop-dominated app", inLoopsMs.ToNumber(), totalMs.ToNumber())
	}
}

func TestLoopsModeStatistics(t *testing.T) {
	rep, _ := runReport(t, appSrc, ModeLoops)
	loopsV, _ := rep.Object().Get("loops")
	if !loopsV.IsObject() || !loopsV.Object().IsArray() {
		t.Fatalf("loops = %s", loopsV.Inspect())
	}
	loops := loopsV.Object().Elems
	if len(loops) != 3 {
		t.Fatalf("profiled %d loops, want 3", len(loops))
	}
	// Find the inner loop: 100 instances (50 per work() call × 2 calls),
	// 20 trips each, no variance.
	foundInner, foundOuter, foundWhile := false, false, false
	for _, lv := range loops {
		o := lv.Object()
		inst, _ := o.Get("instances")
		trips, _ := o.Get("meanTrips")
		std, _ := o.Get("tripStd")
		switch {
		case inst.ToNumber() == 100 && trips.ToNumber() == 20:
			foundInner = true
			if std.ToNumber() != 0 {
				t.Errorf("inner loop tripStd = %v, want 0", std.ToNumber())
			}
		case inst.ToNumber() == 2 && trips.ToNumber() == 50:
			foundOuter = true
		case inst.ToNumber() == 1 && trips.ToNumber() == 30:
			foundWhile = true
		}
	}
	if !foundInner || !foundOuter || !foundWhile {
		t.Errorf("loop stats missing: inner=%v outer=%v while=%v", foundInner, foundOuter, foundWhile)
	}
}

func TestRewriteHandlesBreakAndThrow(t *testing.T) {
	src := `
var mode = "";
function f() {
  for (var i = 0; i < 10; i++) {
    if (i === 3) { break; }
  }
  for (var j = 0; j < 10; j++) {
    if (j === 2) { return "early"; }
  }
  return "late";
}
mode = f();
var caught = "";
try {
  for (var k = 0; k < 5; k++) {
    if (k === 1) { throw "bang"; }
  }
} catch (e) { caught = e; }
`
	rep, in := runReport(t, src, ModeLight)
	if got := in.Global("mode").Str(); got != "early" {
		t.Errorf("mode = %q, want early", got)
	}
	if got := in.Global("caught").Str(); got != "bang" {
		t.Errorf("caught = %q, want bang", got)
	}
	// The open-loop counter must balance even with abrupt exits: the light
	// runtime's counter is only observable through a consistent report.
	inLoops, _ := rep.Object().Get("inLoopsMs")
	total, _ := rep.Object().Get("totalMs")
	if inLoops.ToNumber() > total.ToNumber() {
		t.Errorf("unbalanced loop counter: inLoops %v > total %v", inLoops.ToNumber(), total.ToNumber())
	}
}

func TestRewriteCountsLoops(t *testing.T) {
	res, err := Rewrite(appSrc, ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLoops != 3 {
		t.Errorf("NumLoops = %d, want 3", res.NumLoops)
	}
	for _, fn := range []string{"__ceresEnter", "__ceresIter", "__ceresExit", "__ceresReport"} {
		if !strings.Contains(res.Source, fn) {
			t.Errorf("instrumented source lacks %s", fn)
		}
	}
}

func TestRewriteBadSource(t *testing.T) {
	if _, err := Rewrite("function ( {", ModeLight); err == nil {
		t.Error("want error for unparsable source")
	}
}

func TestRewriteFunctionExpressions(t *testing.T) {
	src := `
var f = function () {
  var n = 0;
  for (var i = 0; i < 4; i++) { n++; }
  return n;
};
var out = f();
`
	_, in := runReport(t, src, ModeLoops)
	if got := in.Global("out").Num(); got != 4 {
		t.Errorf("out = %v, want 4", got)
	}
}

func TestParseMode(t *testing.T) {
	for name, want := range map[string]Mode{"light": ModeLight, "loops": ModeLoops} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	// Unknown names (e.g. the "loop" typo) must error, never silently
	// default to ModeLight.
	for _, bad := range []string{"loop", "deep", ""} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) succeeded, want error", bad)
		}
	}
}

// TestStagedPipelineMatchesRewrite: the four exported stages composed
// by hand produce byte-identical output to the one-shot Rewrite — the
// contract that lets the proxy run them as separate scheduler jobs.
func TestStagedPipelineMatchesRewrite(t *testing.T) {
	src := "var s = 0;\nfor (var i = 0; i < 9; i++) { s += i; }\n"
	for _, mode := range []Mode{ModeLight, ModeLoops} {
		want, err := Rewrite(src, mode)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(Decode([]byte(src)))
		if err != nil {
			t.Fatal(err)
		}
		Transform(prog)
		if got := Encode(prog, mode); got != want.Source {
			t.Errorf("mode %v: staged output differs from Rewrite", mode)
		}
		if len(prog.Loops) != want.NumLoops {
			t.Errorf("mode %v: staged loops %d, Rewrite %d", mode, len(prog.Loops), want.NumLoops)
		}
	}
}

// TestDecodeStripsBOM: a UTF-8 BOM would otherwise reach the lexer as
// three illegal characters and force the script into passthrough.
func TestDecodeStripsBOM(t *testing.T) {
	src := Decode([]byte("\xef\xbb\xbfvar x = 1;"))
	if src != "var x = 1;" {
		t.Fatalf("Decode = %q, want BOM stripped", src)
	}
	if _, err := Rewrite(src, ModeLight); err != nil {
		t.Fatalf("decoded source fails to rewrite: %v", err)
	}
	// Without Decode, the BOM is a parse error — the behaviour Decode exists to fix.
	if _, err := Rewrite("\xef\xbb\xbfvar x = 1;", ModeLight); err == nil {
		t.Fatal("BOM-prefixed source parsed; Decode no longer needed?")
	}
}
