// Package instrument implements the proxy-side source-to-source transform
// of Fig. 5: JavaScript arriving from the web server is rewritten so that
// every syntactic loop reports entry, iteration, and exit to a small
// injected runtime, exactly the lightweight/loop-profiling instrumentation
// strategy of §3.1–§3.2 (open-loop counter, per-loop trip statistics with
// Welford's update, timestamps from the high-resolution timer).
//
// The transform is engine-agnostic: output is plain JavaScript that runs
// on any engine providing performance.now — including this repository's
// interpreter, which is how the proxy pipeline is tested end to end.
package instrument

import (
	"fmt"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// Mode selects how much instrumentation the rewriter injects.
type Mode int

// Modes, in increasing overhead order (§3's three stages; the dependence
// mode is interpreter-assisted and not expressible as pure source rewrite
// without shadowing every property access, so the proxy offers the two
// profiling stages).
const (
	// ModeLight counts only total-vs-in-loop time (open-loop counter).
	ModeLight Mode = iota
	// ModeLoops additionally tracks per-loop instances/trips/time with
	// Welford statistics.
	ModeLoops
)

// String returns the command-line name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeLight:
		return "light"
	case ModeLoops:
		return "loops"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps a command-line mode name to a Mode; unknown names are
// an error, never silently defaulted.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "light":
		return ModeLight, nil
	case "loops":
		return ModeLoops, nil
	}
	return 0, fmt.Errorf("instrument: unknown mode %q (want light or loops)", name)
}

// Result is the rewriter's output.
type Result struct {
	Source   string
	NumLoops int
}

// Rewrite parses src, wraps every loop with runtime callbacks, and
// prepends the runtime. The original program's behaviour is preserved
// (loop exit fires through try/finally even on break/return/throw).
//
// Rewrite is the one-shot composition of the four pipeline stages the
// proxy's serving path runs as separate scheduler jobs:
// Decode → Parse → Transform → Encode.
func Rewrite(src string, mode Mode) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	Transform(prog)
	return &Result{Source: Encode(prog, mode), NumLoops: len(prog.Loops)}, nil
}

// Decode is pipeline stage 1: raw response bytes → source text. It
// strips a UTF-8 byte-order mark (the lexer treats U+FEFF as a stray
// token, so a BOM-prefixed script would otherwise fail to parse and
// fall back to passthrough).
func Decode(body []byte) string {
	const bom = "\xef\xbb\xbf"
	s := string(body)
	return strings.TrimPrefix(s, bom)
}

// Parse is pipeline stage 2: source text → AST, with the package's
// error prefix. The returned program carries the loop inventory the
// transform keys on.
func Parse(src string) (*ast.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	return prog, nil
}

// Transform is pipeline stage 3: wrap every syntactic loop with
// enter/iter/exit callbacks, in place. It is mode-independent — the
// mode only selects which runtime Encode prepends.
func Transform(prog *ast.Program) {
	tr := &transformer{}
	for i := range prog.Body {
		prog.Body[i] = tr.stmt(prog.Body[i])
	}
}

// Encode is pipeline stage 4: prepend the runtime for mode and print
// the transformed program back to source.
func Encode(prog *ast.Program, mode Mode) string {
	var sb strings.Builder
	sb.WriteString(Runtime(mode))
	sb.WriteString(printer.Print(prog))
	return sb.String()
}

type transformer struct{}

// stmt rewrites a statement tree, wrapping loops.
func (t *transformer) stmt(s ast.Stmt) ast.Stmt {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for i := range x.Body {
			x.Body[i] = t.stmt(x.Body[i])
		}
		return x
	case *ast.IfStmt:
		x.Cons = t.stmt(x.Cons)
		if x.Alt != nil {
			x.Alt = t.stmt(x.Alt)
		}
		return x
	case *ast.FuncDecl:
		t.funcLit(x.Fn)
		return x
	case *ast.ExprStmt:
		t.expr(x.X)
		return x
	case *ast.VarDecl:
		for _, init := range x.Inits {
			if init != nil {
				t.expr(init)
			}
		}
		return x
	case *ast.ReturnStmt:
		if x.X != nil {
			t.expr(x.X)
		}
		return x
	case *ast.ThrowStmt:
		t.expr(x.X)
		return x
	case *ast.TryStmt:
		t.stmt(x.Body)
		if x.Catch != nil {
			t.stmt(x.Catch)
		}
		if x.Finally != nil {
			t.stmt(x.Finally)
		}
		return x
	case *ast.SwitchStmt:
		for i := range x.Cases {
			for j := range x.Cases[i].Body {
				x.Cases[i].Body[j] = t.stmt(x.Cases[i].Body[j])
			}
		}
		return x
	case *ast.ForStmt:
		x.Body = t.prependIter(t.stmt(x.Body), x.Loop)
		return t.wrapLoop(x, x.Loop)
	case *ast.WhileStmt:
		x.Body = t.prependIter(t.stmt(x.Body), x.Loop)
		return t.wrapLoop(x, x.Loop)
	case *ast.DoWhileStmt:
		x.Body = t.prependIter(t.stmt(x.Body), x.Loop)
		return t.wrapLoop(x, x.Loop)
	case *ast.ForInStmt:
		x.Body = t.prependIter(t.stmt(x.Body), x.Loop)
		return t.wrapLoop(x, x.Loop)
	default:
		return s
	}
}

// expr descends into expressions to reach function literals.
func (t *transformer) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			t.funcLit(fl)
			return false
		}
		return true
	})
}

func (t *transformer) funcLit(fn *ast.FuncLit) {
	for i := range fn.Body.Body {
		fn.Body.Body[i] = t.stmt(fn.Body.Body[i])
	}
}

func call(name string, id ast.LoopID) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fn:   &ast.Ident{Name: name},
		Args: []ast.Expr{&ast.NumberLit{Value: float64(id)}},
	}}
}

// prependIter inserts the per-iteration callback at the top of the body.
func (t *transformer) prependIter(body ast.Stmt, id ast.LoopID) ast.Stmt {
	blk, ok := body.(*ast.BlockStmt)
	if !ok {
		blk = &ast.BlockStmt{Body: []ast.Stmt{body}}
	}
	blk.Body = append([]ast.Stmt{call("__ceresIter", id)}, blk.Body...)
	return blk
}

// wrapLoop brackets the loop with enter/exit callbacks; exit is in a
// finally so break/return/throw cannot unbalance the open-loop counter.
func (t *transformer) wrapLoop(loop ast.Stmt, id ast.LoopID) ast.Stmt {
	return &ast.BlockStmt{Body: []ast.Stmt{
		call("__ceresEnter", id),
		&ast.TryStmt{
			Body:    &ast.BlockStmt{Body: []ast.Stmt{loop}},
			Finally: &ast.BlockStmt{Body: []ast.Stmt{call("__ceresExit", id)}},
		},
	}}
}

// Runtime returns the injected JavaScript runtime for the given mode.
func Runtime(mode Mode) string {
	if mode == ModeLight {
		return lightRuntime
	}
	return loopsRuntime
}

// lightRuntime implements §3.1 verbatim: an open-loop counter, a
// timestamp when 0→1, accumulation when 1→0.
const lightRuntime = `// JS-CERES lightweight profiling runtime (injected by the proxy)
var __ceresOpen = 0;
var __ceresLoopStart = 0;
var __ceresLoopTotal = 0;
var __ceresStart = performance.now();
function __ceresEnter(id) {
  if (__ceresOpen === 0) {
    __ceresLoopStart = performance.now();
  }
  __ceresOpen++;
}
function __ceresIter(id) {}
function __ceresExit(id) {
  __ceresOpen--;
  if (__ceresOpen === 0) {
    __ceresLoopTotal += performance.now() - __ceresLoopStart;
  }
}
function __ceresReport() {
  return {
    mode: "light",
    totalMs: performance.now() - __ceresStart,
    inLoopsMs: __ceresLoopTotal
  };
}
`

// loopsRuntime implements §3.2: per-loop instances and running totals,
// with mean/variance of time and trip count via Welford's online update.
const loopsRuntime = `// JS-CERES loop profiling runtime (injected by the proxy)
var __ceresLoops = {};
var __ceresStack = [];
var __ceresStart = performance.now();
function __ceresLoopRec(id) {
  var rec = __ceresLoops[id];
  if (!rec) {
    rec = {
      id: id, instances: 0,
      timeN: 0, timeMean: 0, timeM2: 0,
      tripN: 0, tripMean: 0, tripM2: 0
    };
    __ceresLoops[id] = rec;
  }
  return rec;
}
function __ceresWelford(rec, pre, x) {
  rec[pre + "N"]++;
  var d = x - rec[pre + "Mean"];
  rec[pre + "Mean"] += d / rec[pre + "N"];
  rec[pre + "M2"] += d * (x - rec[pre + "Mean"]);
}
function __ceresEnter(id) {
  var rec = __ceresLoopRec(id);
  rec.instances++;
  __ceresStack.push({id: id, start: performance.now(), trips: 0});
}
function __ceresIter(id) {
  var i = __ceresStack.length - 1;
  while (i >= 0 && __ceresStack[i].id !== id) { i--; }
  if (i >= 0) { __ceresStack[i].trips++; }
}
function __ceresExit(id) {
  var i = __ceresStack.length - 1;
  while (i >= 0 && __ceresStack[i].id !== id) { i--; }
  if (i < 0) { return; }
  var frame = __ceresStack[i];
  __ceresStack.splice(i, 1);
  var rec = __ceresLoopRec(id);
  __ceresWelford(rec, "time", performance.now() - frame.start);
  __ceresWelford(rec, "trip", frame.trips);
}
function __ceresReport() {
  var loops = [];
  for (var id in __ceresLoops) {
    var r = __ceresLoops[id];
    var tripVar = r.tripN > 0 ? r.tripM2 / r.tripN : 0;
    loops.push({
      id: r.id, instances: r.instances,
      totalMs: r.timeMean * r.timeN,
      meanTrips: r.tripMean, tripStd: Math.sqrt(tripVar)
    });
  }
  return {
    mode: "loops",
    totalMs: performance.now() - __ceresStart,
    loops: loops
  };
}
`
