package instrument

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// Cross-validation: the paper's two measurement paths — source-to-source
// instrumentation injected by the proxy (this package) and the engine-side
// hook profiler (internal/core) — must agree on what they measure. This
// guards both implementations against each other.

const xvalSrc = `
var acc = 0;
function inner(n) {
  var s = 0;
  for (var j = 0; j < n; j++) {
    s += j % 5;
  }
  return s;
}
for (var i = 0; i < 40; i++) {
  acc += inner(10 + (i % 3));
}
var k = 0;
do {
  k++;
} while (k < 25);
`

// hookStats runs the raw source under the hook-based LoopProfiler.
func hookStats(t *testing.T) map[int64][3]float64 {
	t.Helper()
	prog := parser.MustParse(xvalSrc)
	in := interp.New()
	lp := core.NewLoopProfiler(in)
	in.SetHooks(lp)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	out := make(map[int64][3]float64)
	for _, s := range lp.AllStats() {
		out[int64(s.ID)] = [3]float64{float64(s.Instances), s.Trips.Mean(), s.Trips.StdDev()}
	}
	return out
}

// sourceStats runs the rewritten source and reads the injected runtime's
// report.
func sourceStats(t *testing.T) map[int64][3]float64 {
	t.Helper()
	res, err := Rewrite(xvalSrc, ModeLoops)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(res.Source)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New()
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	rep, err := in.SafeCall(in.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		t.Fatal(err)
	}
	loopsV, _ := rep.Object().Get("loops")
	out := make(map[int64][3]float64)
	for _, lv := range loopsV.Object().Elems {
		o := lv.Object()
		id := int64(o.GetNumber("id"))
		out[id] = [3]float64{
			o.GetNumber("instances"),
			o.GetNumber("meanTrips"),
			o.GetNumber("tripStd"),
		}
	}
	return out
}

func TestSourceAndHookProfilersAgree(t *testing.T) {
	hooks := hookStats(t)
	src := sourceStats(t)
	if len(hooks) != 3 || len(src) != 3 {
		t.Fatalf("loop counts: hooks=%d source=%d, want 3", len(hooks), len(src))
	}
	for id, h := range hooks {
		s, ok := src[id]
		if !ok {
			t.Errorf("loop %d missing from source-level profile", id)
			continue
		}
		if h[0] != s[0] {
			t.Errorf("loop %d instances: hooks=%v source=%v", id, h[0], s[0])
		}
		if math.Abs(h[1]-s[1]) > 1e-9 {
			t.Errorf("loop %d mean trips: hooks=%v source=%v", id, h[1], s[1])
		}
		if math.Abs(h[2]-s[2]) > 1e-6 {
			t.Errorf("loop %d trip stddev: hooks=%v source=%v", id, h[2], s[2])
		}
	}
}

// TestLightModeAgreesWithLightProfiler: the injected open-loop counter and
// the hook-based one measure the same quantity. Times differ (the injected
// runtime itself consumes virtual steps), so compare loop-share within
// a tolerance band rather than exact values.
func TestLightModeAgreesWithLightProfiler(t *testing.T) {
	// hook side
	prog := parser.MustParse(xvalSrc)
	in1 := interp.New()
	light := core.NewLightProfiler(in1)
	in1.SetHooks(light)
	if err := in1.Run(prog); err != nil {
		t.Fatal(err)
	}
	hookShare := float64(light.InLoopTime()) / float64(in1.ScriptTime())

	// source side
	res, err := Rewrite(xvalSrc, ModeLight)
	if err != nil {
		t.Fatal(err)
	}
	in2 := interp.New()
	if err := in2.Run(parser.MustParse(res.Source)); err != nil {
		t.Fatal(err)
	}
	rep, err := in2.SafeCall(in2.Global("__ceresReport"), value.Undefined(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srcShare := rep.Object().GetNumber("inLoopsMs") / rep.Object().GetNumber("totalMs")

	if math.Abs(hookShare-srcShare) > 0.15 {
		t.Errorf("loop-time share: hooks=%.3f source=%.3f — should agree within 15%%", hookShare, srcShare)
	}
	if hookShare <= 0.5 {
		t.Errorf("loop-dominated program measured at %.3f in loops", hookShare)
	}
}
