// Node: membership and routing for one fleet member. The member list
// is static (-peers); liveness is not — a health prober ejects peers
// after consecutive probe failures and readmits them on recovery, and
// the ring is rebuilt from the live set on every change, so a dead
// node's keys redistribute to the survivors and come back when it
// does. Forward failures count toward ejection too (a refused
// connection is better evidence than waiting for the next probe
// tick).
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config's zero values.
const (
	DefaultProbeInterval  = 500 * time.Millisecond
	DefaultProbeTimeout   = 250 * time.Millisecond
	DefaultFailThreshold  = 2
	DefaultForwardTimeout = 5 * time.Second
	DefaultForwardRetries = 2
)

// Config describes one node's view of the fleet.
type Config struct {
	// Self is this node's own entry in Peers (its advertised base URL).
	Self string
	// Peers is the full static member list, including Self. Every node
	// must be started with the same list (any order) — the ring is a
	// pure function of it.
	Peers []string
	// VNodes is the virtual-node count per member (0 → DefaultVNodes).
	VNodes int
	// ReplicateQPS is the per-key request-rate threshold above which a
	// non-owner serves the key locally as a replica instead of
	// forwarding — a viral script must not melt its owner. 0 disables
	// replication.
	ReplicateQPS float64
	// ProbeInterval/ProbeTimeout drive the health prober
	// (0 → defaults). FailThreshold consecutive failures eject a peer;
	// one success readmits it.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	// ForwardTimeout bounds one forwarding attempt; ForwardRetries is
	// the number of re-attempts after the first (0 → defaults; use -1
	// for zero retries).
	ForwardTimeout time.Duration
	ForwardRetries int
	// Client performs peer HTTP requests (nil → a dedicated client;
	// per-attempt timeouts come from ForwardTimeout/ProbeTimeout).
	Client *http.Client
}

// MemberStat is one peer's membership state in a Stats snapshot.
type MemberStat struct {
	Peer string `json:"peer"`
	Self bool   `json:"self,omitempty"`
	Live bool   `json:"live"`
	// Fails is the current consecutive-failure count (probe or
	// forward); FailThreshold of them eject the peer.
	Fails int `json:"fails,omitempty"`
}

// Stats is a point-in-time snapshot of the node's cluster counters.
type Stats struct {
	Self    string       `json:"self"`
	Members []MemberStat `json:"members"`
	// Rebalances counts ring rebuilds after the initial one — each is
	// an ejection or readmission redistributing key ownership.
	Rebalances int64 `json:"rebalances"`
	// OwnedServed counts rewrites this node served as the key's owner;
	// ReplicaServed counts rewrites served locally for keys owned
	// elsewhere because hot-key replication engaged; ForwardFallbacks
	// counts rewrites served locally because the owner was unreachable
	// after retries (availability beats strict ownership).
	OwnedServed      int64 `json:"owned_served"`
	ReplicaServed    int64 `json:"replica_served"`
	ForwardFallbacks int64 `json:"forward_fallbacks"`
	// ForwardedOut counts requests sent to their owning peer;
	// ForwardRetries counts extra attempts beyond each first;
	// ForwardErrors counts forwards that exhausted retries.
	ForwardedOut   int64 `json:"forwarded_out"`
	ForwardRetries int64 `json:"forward_retries"`
	ForwardErrors  int64 `json:"forward_errors"`
	// PeerReceived counts rewrites this node served for peers (hopped
	// requests on /__ceres/peer/rewrite); PrewarmTransfers counts
	// prewarm sources this node transferred to their owners.
	PeerReceived     int64 `json:"peer_received"`
	PrewarmTransfers int64 `json:"prewarm_transfers"`
	// Probes/Ejections/Readmissions describe the health prober's
	// history.
	Probes       int64 `json:"probes"`
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
	// HotKeys is the number of keys currently tracked above the
	// replication threshold.
	HotKeys int `json:"hot_keys"`
}

// Node is one fleet member's routing brain. Create with New, start the
// health prober with Start, stop with Close. All methods are safe for
// concurrent use.
type Node struct {
	cfg    Config
	client *http.Client

	mu    sync.Mutex
	live  map[string]bool
	fails map[string]int
	ring  *Ring
	hot   *hotTracker

	rebalances   atomic.Int64
	owned        atomic.Int64
	replica      atomic.Int64
	fallbacks    atomic.Int64
	forwarded    atomic.Int64
	fwdRetries   atomic.Int64
	fwdErrors    atomic.Int64
	received     atomic.Int64
	transfers    atomic.Int64
	probes       atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	probing  sync.WaitGroup
}

// New validates cfg and builds the node with every peer initially
// live. Start launches the health prober; a node that is never
// Started routes on the static member set (tests, single-phase
// tools).
func New(cfg Config) (*Node, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	selfListed := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			selfListed = true
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	switch {
	case cfg.ForwardRetries < 0:
		cfg.ForwardRetries = 0
	case cfg.ForwardRetries == 0:
		cfg.ForwardRetries = DefaultForwardRetries
	}
	n := &Node{
		cfg:    cfg,
		client: cfg.Client,
		live:   make(map[string]bool, len(cfg.Peers)),
		fails:  make(map[string]int, len(cfg.Peers)),
		hot:    newHotTracker(cfg.ReplicateQPS),
		stop:   make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	for _, p := range cfg.Peers {
		n.live[p] = true
	}
	n.ring = NewRing(cfg.Peers, cfg.VNodes)
	return n, nil
}

// Self returns this node's own peer URL.
func (n *Node) Self() string { return n.cfg.Self }

// Start launches the background health prober.
func (n *Node) Start() {
	n.probing.Add(1)
	go func() {
		defer n.probing.Done()
		t := time.NewTicker(n.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.probeAll()
			}
		}
	}()
}

// Close stops the health prober. It does not wait for in-flight
// forwards (their contexts bound them).
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.probing.Wait()
}

// Decision is the routing verdict for one key.
type Decision struct {
	// Owner is the key's owning member under the current live ring.
	Owner string
	// Local reports that this node should serve the key itself:
	// it is the owner, the key is replicated here, or no peer is live.
	Local bool
	// Replica marks a Local decision made by hot-key replication
	// rather than ownership.
	Replica bool
}

// Route decides where the key point is served. Not self and not hot →
// forward to the owner. Rate tracking happens here: every remote-owned
// routing decision feeds the hot tracker, and once a key's observed
// rate crosses ReplicateQPS this node serves it locally (filling its
// own cache — the rewrite is deterministic, so a replica is
// byte-identical to the owner's copy) until the rate decays.
func (n *Node) Route(point uint64) Decision {
	n.mu.Lock()
	owner := n.ring.Owner(point)
	n.mu.Unlock()
	if owner == "" || owner == n.cfg.Self {
		return Decision{Owner: n.cfg.Self, Local: true}
	}
	if n.hot.touch(point) {
		return Decision{Owner: owner, Local: true, Replica: true}
	}
	return Decision{Owner: owner, Local: false}
}

// OwnerFor returns the key's owner without feeding the hot tracker —
// the routing query for non-request traffic (prewarm transfers), which
// must not count toward replication thresholds.
func (n *Node) OwnerFor(point uint64) (owner string, local bool) {
	n.mu.Lock()
	owner = n.ring.Owner(point)
	n.mu.Unlock()
	if owner == "" || owner == n.cfg.Self {
		return n.cfg.Self, true
	}
	return owner, false
}

// CountLocal records a locally served rewrite for a Local decision
// (owned or replica). Call it when the local serve actually happens,
// so stats reflect served work, not routing intents.
func (n *Node) CountLocal(d Decision) {
	if d.Replica {
		n.replica.Add(1)
	} else {
		n.owned.Add(1)
	}
}

// CountFallback records a forward that exhausted retries and was
// served locally instead.
func (n *Node) CountFallback() { n.fallbacks.Add(1) }

// CountReceived records a peer-forwarded rewrite served by this node.
func (n *Node) CountReceived() { n.received.Add(1) }

// CountPrewarmTransfer records one prewarm source transferred to its
// owning peer.
func (n *Node) CountPrewarmTransfer() { n.transfers.Add(1) }

// Members returns the current live member set, sorted.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Members()
}

// probeAll health-checks every peer once.
func (n *Node) probeAll() {
	for _, p := range n.cfg.Peers {
		if p == n.cfg.Self {
			continue
		}
		select {
		case <-n.stop:
			return
		default:
		}
		n.probes.Add(1)
		if err := n.ping(p); err != nil {
			n.reportPeerFailure(p)
		} else {
			n.reportPeerSuccess(p)
		}
	}
}

// reportPeerFailure counts one failed interaction with peer (probe or
// forward) and ejects it at the threshold. Self is never ejected.
func (n *Node) reportPeerFailure(peer string) {
	if peer == n.cfg.Self {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, known := n.live[peer]; !known {
		return
	}
	n.fails[peer]++
	if n.live[peer] && n.fails[peer] >= n.cfg.FailThreshold {
		n.live[peer] = false
		n.ejections.Add(1)
		n.rebuildRingLocked()
	}
}

// reportPeerSuccess resets the failure count and readmits an ejected
// peer.
func (n *Node) reportPeerSuccess(peer string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, known := n.live[peer]; !known {
		return
	}
	n.fails[peer] = 0
	if !n.live[peer] {
		n.live[peer] = true
		n.readmissions.Add(1)
		n.rebuildRingLocked()
	}
}

// rebuildRingLocked recomputes the ring from the live set. Caller
// holds n.mu. The live set always includes self, so the ring is never
// empty and a fully partitioned node degrades to serving everything
// locally.
func (n *Node) rebuildRingLocked() {
	members := make([]string, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		if n.live[p] || p == n.cfg.Self {
			members = append(members, p)
		}
	}
	n.ring = NewRing(members, n.cfg.VNodes)
	n.rebalances.Add(1)
}

// Stats snapshots the node's counters and membership.
func (n *Node) Stats() Stats {
	st := Stats{
		Self:             n.cfg.Self,
		Rebalances:       n.rebalances.Load(),
		OwnedServed:      n.owned.Load(),
		ReplicaServed:    n.replica.Load(),
		ForwardFallbacks: n.fallbacks.Load(),
		ForwardedOut:     n.forwarded.Load(),
		ForwardRetries:   n.fwdRetries.Load(),
		ForwardErrors:    n.fwdErrors.Load(),
		PeerReceived:     n.received.Load(),
		PrewarmTransfers: n.transfers.Load(),
		Probes:           n.probes.Load(),
		Ejections:        n.ejections.Load(),
		Readmissions:     n.readmissions.Load(),
	}
	n.mu.Lock()
	peers := append([]string(nil), n.cfg.Peers...)
	sort.Strings(peers)
	for _, p := range peers {
		st.Members = append(st.Members, MemberStat{
			Peer:  p,
			Self:  p == n.cfg.Self,
			Live:  n.live[p] || p == n.cfg.Self,
			Fails: n.fails[p],
		})
	}
	n.mu.Unlock()
	st.HotKeys = n.hot.hotCount()
	return st
}

// hotTracker estimates per-key request rates with one-second buckets:
// each key keeps a count for the current window and the previous
// window's finished rate. A key is "hot" when either window's rate
// reaches the threshold, so replication both engages mid-window under
// a burst and survives the bucket boundary. Tracking is bounded: at
// most maxTrackedKeys keys are tracked, and stale entries are swept
// when the map is full — an untracked key simply keeps forwarding,
// which is the correct degradation.
type hotTracker struct {
	qps float64

	mu   sync.Mutex
	keys map[uint64]*hotKey
}

type hotKey struct {
	windowStart time.Time
	count       int
	prevRate    float64
}

const maxTrackedKeys = 4096

func newHotTracker(qps float64) *hotTracker {
	return &hotTracker{qps: qps, keys: make(map[uint64]*hotKey)}
}

// touch records one request for the key and reports whether the key is
// currently hot.
func (h *hotTracker) touch(point uint64) bool {
	if h.qps <= 0 {
		return false
	}
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	k := h.keys[point]
	if k == nil {
		if len(h.keys) >= maxTrackedKeys {
			h.sweepLocked(now)
			if len(h.keys) >= maxTrackedKeys {
				return false
			}
		}
		k = &hotKey{windowStart: now}
		h.keys[point] = k
	}
	if el := now.Sub(k.windowStart); el >= time.Second {
		k.prevRate = 0
		if el < 2*time.Second {
			// The finished window is only meaningful if it just ended;
			// after a gap the key plainly went cold.
			k.prevRate = float64(k.count) / el.Seconds()
		}
		k.windowStart = now
		k.count = 0
	}
	k.count++
	if k.prevRate >= h.qps {
		return true
	}
	// Mid-window engagement: enough requests already this window to
	// meet the threshold even if the window ran its full second.
	return float64(k.count) >= h.qps
}

// sweepLocked drops keys idle for two windows.
func (h *hotTracker) sweepLocked(now time.Time) {
	for p, k := range h.keys {
		if now.Sub(k.windowStart) >= 2*time.Second {
			delete(h.keys, p)
		}
	}
}

// hotCount reports how many tracked keys are currently at or above
// the threshold.
func (h *hotTracker) hotCount() int {
	if h.qps <= 0 {
		return 0
	}
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	hot := 0
	for _, k := range h.keys {
		rate := k.prevRate
		if now.Sub(k.windowStart) >= 2*time.Second {
			rate = 0
		}
		if rate >= h.qps || float64(k.count) >= h.qps {
			hot++
		}
	}
	return hot
}
