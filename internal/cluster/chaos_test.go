// Chaos tests for the membership layer: nodes die abruptly with
// requests in flight, probes eject and readmit them, and through all
// of it two invariants must hold — every forwarded request completes
// or returns a retryable error within its timeout (never hangs), and
// every key has exactly one owner under every member set the fleet
// passes through. The peers here are stub HTTP servers, not real
// proxies (the proxy imports this package, so the full-stack chaos
// round lives in internal/loadharness); the stubs let the suite kill
// and revive listeners surgically.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// startStub serves h on a fresh loopback port and returns the base URL
// and a kill func that abruptly closes the listener *and* every
// in-flight connection — the crash, not the graceful shutdown.
func startStub(t *testing.T, h http.Handler) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	var once atomic.Bool
	kill := func() {
		if once.CompareAndSwap(false, true) {
			_ = srv.Close()
			<-done
		}
	}
	t.Cleanup(kill)
	return "http://" + ln.Addr().String(), kill
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const chaosSelf = "http://self.invalid"

func newTestNode(t *testing.T, peers []string, mut func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Self:           chaosSelf,
		Peers:          append([]string{chaosSelf}, peers...),
		ForwardTimeout: 2 * time.Second,
		ForwardRetries: -1,
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestForwardKillMidFlight is the headline chaos invariant: a peer
// dies abruptly with forwards in flight, and every one of them
// completes or returns a retryable error — none hang past the
// watchdog, none surface a terminal error for what is a transient
// fault.
func TestForwardKillMidFlight(t *testing.T) {
	inFlight := make(chan struct{}, 64)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PeerPingPath {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		src, _ := io.ReadAll(r.Body)
		inFlight <- struct{}{}
		time.Sleep(30 * time.Millisecond)
		w.Write(append([]byte("rewritten:"), src...))
	})
	url, kill := startStub(t, slow)
	n := newTestNode(t, []string{url}, nil)

	const flights = 16
	results := make(chan error, flights)
	for i := 0; i < flights; i++ {
		go func(i int) {
			src := []byte(fmt.Sprintf("var f%d = %d;", i, i))
			_, _, err := n.Forward(context.Background(), url, src, instrument.ModeLight, sched.ClassInteractive)
			results <- err
		}(i)
	}
	// Kill only once requests are demonstrably mid-handler, so the
	// crash severs live connections rather than refusing new ones.
	select {
	case <-inFlight:
	case <-time.After(5 * time.Second):
		t.Fatal("no forward reached the peer")
	}
	kill()

	watchdog := time.After(10 * time.Second)
	sawRetryable := false
	for i := 0; i < flights; i++ {
		select {
		case err := <-results:
			if err == nil {
				continue // completed before the crash: fine
			}
			if !Retryable(err) {
				t.Errorf("mid-flight kill surfaced terminal error: %v", err)
			} else {
				sawRetryable = true
			}
		case <-watchdog:
			t.Fatalf("forwarded request hung past watchdog (%d of %d returned)", i, flights)
		}
	}
	if !sawRetryable {
		t.Error("kill severed no request — the chaos did not bite; lower the sleep?")
	}
}

// TestEjectionReadmission drives the full membership cycle with the
// prober: peer healthy → peer failing → ejected after FailThreshold →
// sole-survivor routing → peer recovers → readmitted.
func TestEjectionReadmission(t *testing.T) {
	var down atomic.Bool
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "simulated crash", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	url, _ := startStub(t, flaky)
	n := newTestNode(t, []string{url}, func(c *Config) {
		c.ProbeInterval = 5 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.FailThreshold = 2
	})
	n.Start()

	if got := len(n.Members()); got != 2 {
		t.Fatalf("initial members = %d, want 2", got)
	}
	// Find a point the peer owns so we can watch it re-route.
	var peerPoint uint64
	for i := 0; ; i++ {
		pt := PointForSource([]byte(fmt.Sprintf("probe-%d", i)), 0)
		if owner, local := n.OwnerFor(pt); !local && owner == url {
			peerPoint = pt
			break
		}
	}

	down.Store(true)
	waitFor(t, "ejection", func() bool { return len(n.Members()) == 1 })
	if st := n.Stats(); st.Ejections < 1 {
		t.Errorf("Ejections = %d after ejection, want >= 1", st.Ejections)
	}
	if d := n.Route(peerPoint); !d.Local || d.Owner != chaosSelf {
		t.Errorf("sole survivor routed %#x to %+v, want local self", peerPoint, d)
	}

	down.Store(false)
	waitFor(t, "readmission", func() bool { return len(n.Members()) == 2 })
	st := n.Stats()
	if st.Readmissions < 1 {
		t.Errorf("Readmissions = %d after recovery, want >= 1", st.Readmissions)
	}
	if st.Rebalances < 2 {
		t.Errorf("Rebalances = %d, want >= 2 (one per membership change)", st.Rebalances)
	}
	if owner, local := n.OwnerFor(peerPoint); local || owner != url {
		t.Errorf("after readmission point %#x owned by %q local=%v, want peer", peerPoint, owner, local)
	}
}

// TestForwardErrorClassification pins the retryable/terminal split of
// the peer protocol: 429 and 5xx retry, 422 is ErrRewriteFailed, other
// 4xx are terminal, and a dead port is retryable.
func TestForwardErrorClassification(t *testing.T) {
	var status atomic.Int64
	var calls atomic.Int64
	peer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		s := int(status.Load())
		if s == http.StatusOK {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "peer says no", s)
	})
	url, kill := startStub(t, peer)

	fwd := func(n *Node) error {
		_, _, err := n.Forward(context.Background(), url, []byte("var x=1;"), instrument.ModeLight, sched.ClassInteractive)
		return err
	}

	n := newTestNode(t, []string{url}, nil) // zero retries
	status.Store(http.StatusUnprocessableEntity)
	if err := fwd(n); !errors.Is(err, ErrRewriteFailed) || Retryable(err) {
		t.Errorf("422 → %v, want terminal ErrRewriteFailed", err)
	}
	status.Store(http.StatusNotFound)
	if err := fwd(n); err == nil || Retryable(err) || errors.Is(err, ErrRewriteFailed) {
		t.Errorf("404 → %v, want terminal non-rewrite error", err)
	}
	status.Store(http.StatusTooManyRequests)
	if err := fwd(n); !Retryable(err) {
		t.Errorf("429 → %v, want retryable", err)
	}
	status.Store(http.StatusInternalServerError)
	if err := fwd(n); !Retryable(err) {
		t.Errorf("500 → %v, want retryable", err)
	}

	// Saturation that clears mid-retry: 429, 429, then 200 — the
	// default retry budget absorbs it.
	nr := newTestNode(t, []string{url}, func(c *Config) { c.ForwardRetries = 2 })
	status.Store(http.StatusTooManyRequests)
	calls.Store(0)
	go func() {
		for calls.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		status.Store(http.StatusOK)
	}()
	body, _, err := nr.Forward(context.Background(), url, []byte("var x=1;"), instrument.ModeLight, sched.ClassInteractive)
	if err != nil || string(body) != "ok" {
		t.Errorf("retry after saturation: body=%q err=%v, want ok", body, err)
	}
	if st := nr.Stats(); st.ForwardRetries < 1 {
		t.Errorf("ForwardRetries = %d, want >= 1", st.ForwardRetries)
	}

	// Dead port: connection refused is retryable, and exhausted
	// forwards count toward ejection without any probe running.
	kill()
	nd := newTestNode(t, []string{url}, func(c *Config) { c.FailThreshold = 2 })
	for i := 0; i < 2; i++ {
		if err := fwd(nd); !Retryable(err) {
			t.Errorf("dead peer → %v, want retryable", err)
		}
	}
	if got := len(nd.Members()); got != 1 {
		t.Errorf("members = %d after %d forward failures, want 1 (traffic-driven ejection)", got, 2)
	}
	if st := nd.Stats(); st.ForwardErrors != 2 {
		t.Errorf("ForwardErrors = %d, want 2", st.ForwardErrors)
	}
}

// TestHotKeyReplication: a remote-owned key crossing ReplicateQPS
// flips to replica-local service; cold keys keep forwarding.
func TestHotKeyReplication(t *testing.T) {
	n := newTestNode(t, []string{"http://peer-b.invalid"}, func(c *Config) {
		c.ReplicateQPS = 5
	})
	var hotPt, coldPt uint64
	found := 0
	for i := 0; found < 2; i++ {
		pt := PointForSource([]byte(fmt.Sprintf("hot-%d", i)), 0)
		if _, local := n.OwnerFor(pt); !local {
			if hotPt == 0 {
				hotPt = pt
			} else {
				coldPt = pt
			}
			found++
		}
	}
	for i := 1; i <= 4; i++ {
		if d := n.Route(hotPt); d.Local {
			t.Fatalf("request %d below threshold routed local: %+v", i, d)
		}
	}
	d := n.Route(hotPt)
	if !d.Local || !d.Replica {
		t.Fatalf("request 5 at threshold not replica-local: %+v", d)
	}
	if d := n.Route(coldPt); d.Local {
		t.Errorf("cold key routed local: %+v — replication leaked across keys", d)
	}
	if st := n.Stats(); st.HotKeys != 1 {
		t.Errorf("HotKeys = %d, want 1", st.HotKeys)
	}
}

// TestRingInvariantUnderDeltas is the one-owner-per-key invariant over
// 10k keys across a sequence of membership deltas: after every join or
// leave, each key resolves to exactly one live member, the resolution
// is order-insensitive, and the only keys that changed hands are the
// ones a minimal-movement ring is allowed to move.
func TestRingInvariantUnderDeltas(t *testing.T) {
	points := testPoints(10000)
	members := map[string]bool{}
	for i := 0; i < 5; i++ {
		members[fmt.Sprintf("http://n%d:8080", i)] = true
	}
	setOf := func() []string {
		var s []string
		for m := range members {
			s = append(s, m)
		}
		return s
	}
	ring := NewRing(setOf(), 0)
	owners := make(map[uint64]string, len(points))
	for _, pt := range points {
		owners[pt] = ring.Owner(pt)
	}

	type delta struct {
		member string
		join   bool
	}
	deltas := []delta{
		{"http://n2:8080", false},
		{"http://n0:8080", false},
		{"http://n2:8080", true},
		{"http://n5:8080", true},
		{"http://n4:8080", false},
		{"http://n0:8080", true},
	}
	rng := rand.New(rand.NewSource(99))
	for step, d := range deltas {
		if d.join {
			members[d.member] = true
		} else {
			delete(members, d.member)
		}
		set := setOf()
		ring = NewRing(set, 0)
		// Same set in a shuffled order must be the same ring.
		rng.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
		shuffled := NewRing(set, 0)

		for _, pt := range points {
			owner := ring.Owner(pt)
			if owner == "" || !members[owner] {
				t.Fatalf("step %d: point %#x owned by %q, not a live member", step, pt, owner)
			}
			if so := shuffled.Owner(pt); so != owner {
				t.Fatalf("step %d: point %#x owner differs by member order: %q vs %q", step, pt, owner, so)
			}
			prev := owners[pt]
			if d.join {
				if owner != prev && owner != d.member {
					t.Fatalf("step %d (join %s): point %#x moved %s -> %s, not to the joiner", step, d.member, pt, prev, owner)
				}
			} else {
				if prev != d.member && owner != prev {
					t.Fatalf("step %d (leave %s): point %#x moved %s -> %s though its owner stayed", step, d.member, pt, prev, owner)
				}
			}
			owners[pt] = owner
		}
	}
}
