// The HTTP peer protocol. Two endpoints, both served by the proxy:
//
//   - POST /__ceres/peer/rewrite — the forwarding path. Body is the
//     raw script source; ModeHeader and ClassHeader carry the
//     instrumentation mode and latency class (a forwarded interactive
//     request stays interactive at the owner); HopHeader marks the
//     request as already forwarded, and the receiver always serves a
//     hopped request locally — single-hop loop prevention. 200 returns
//     the rewritten bytes, 429 means the owner's admission queue shed
//     the request (retryable), 422 means the script does not rewrite
//     (terminal: the same parse would fail locally too).
//   - GET /__ceres/peer/ping — the health probe (and the prewarm
//     transfer path reuses POST /__ceres/prewarm, also hop-marked).
//
// Errors are classified for the caller: Retryable errors (network,
// timeout, 429, 5xx — exhausted after ForwardRetries attempts with
// capped exponential backoff) mean the caller may serve the key
// locally instead — availability beats strict ownership — while
// ErrRewriteFailed means the source itself is broken and must be
// served un-instrumented.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/instrument"
	"repro/internal/sched"
)

// Peer-protocol headers and paths.
const (
	// HopHeader marks a request already forwarded once. A node
	// receiving it must serve locally, never re-forward.
	HopHeader = "X-Ceres-Peer-Hop"
	// ModeHeader carries the instrumentation mode of a forwarded
	// rewrite; the owner refuses a mismatch (mixed-mode fleets are a
	// config error, not a runtime choice).
	ModeHeader = "X-Ceres-Mode"
	// ClassHeader carries the sched.Class name of a forwarded rewrite,
	// so interactive work stays interactive at the owner.
	ClassHeader = "X-Ceres-Class"

	// PeerRewritePath and PeerPingPath are the peer-protocol routes.
	PeerRewritePath = "/__ceres/peer/rewrite"
	PeerPingPath    = "/__ceres/peer/ping"
)

// ErrRewriteFailed is wrapped by Forward when the owner reports the
// script itself failed to rewrite (HTTP 422): terminal, not
// retryable — the caller serves the original source un-instrumented,
// exactly as a local rewrite failure.
var ErrRewriteFailed = errors.New("cluster: peer rewrite failed")

// retryableError marks forwarding failures the caller may recover
// from by retrying or serving locally.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable reports whether a Forward error is transient (peer down,
// timeout, saturated): the request was never serviced and the caller
// may serve the key locally. Terminal errors (ErrRewriteFailed,
// protocol mismatches) mean retrying elsewhere cannot help.
func Retryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}

// ParseClass maps a ClassHeader value back to a sched.Class; unknown
// or empty values default to interactive (the conservative read: never
// demote a request you cannot classify).
func ParseClass(name string) sched.Class {
	if name == sched.ClassBatch.String() {
		return sched.ClassBatch
	}
	return sched.ClassInteractive
}

// Forward sends one rewrite to its owning peer and returns the
// rewritten bytes and the queue wait the owner reported. Attempts are
// bounded by ForwardTimeout each and retried ForwardRetries times on
// retryable failure with capped exponential backoff; every exhausted
// failure also counts toward the peer's ejection threshold, so a dead
// owner is ejected by the traffic that discovers it, not just the
// next probe tick.
func (n *Node) Forward(ctx context.Context, peer string, src []byte, mode instrument.Mode, class sched.Class) ([]byte, time.Duration, error) {
	n.forwarded.Add(1)
	var lastErr error
	for attempt := 0; attempt <= n.cfg.ForwardRetries; attempt++ {
		if attempt > 0 {
			n.fwdRetries.Add(1)
			if err := sleepCtx(ctx, backoff(attempt)); err != nil {
				lastErr = &retryableError{err}
				break
			}
		}
		body, wait, err := n.forwardOnce(ctx, peer, src, mode, class)
		if err == nil {
			n.reportPeerSuccess(peer)
			return body, wait, nil
		}
		lastErr = err
		if !Retryable(err) {
			// Terminal protocol answer: the peer is alive and said no.
			n.reportPeerSuccess(peer)
			return nil, 0, err
		}
	}
	n.fwdErrors.Add(1)
	n.reportPeerFailure(peer)
	return nil, 0, lastErr
}

// backoff is the delay before retry `attempt` (1-based): 5ms, 10ms,
// 20ms, ... capped at 100ms — long enough to ride out a hiccup, short
// enough that an interactive request's fallback is still interactive.
func backoff(attempt int) time.Duration {
	d := 5 * time.Millisecond << (attempt - 1)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// forwardOnce is one attempt against the peer rewrite endpoint.
func (n *Node) forwardOnce(ctx context.Context, peer string, src []byte, mode instrument.Mode, class sched.Class) ([]byte, time.Duration, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+PeerRewritePath, bytes.NewReader(src))
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: forward request: %w", err)
	}
	req.Header.Set("Content-Type", "application/javascript")
	req.Header.Set(HopHeader, "1")
	req.Header.Set(ModeHeader, mode.String())
	req.Header.Set(ClassHeader, class.String())
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, 0, &retryableError{fmt.Errorf("cluster: forward to %s: %w", peer, err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, 0, &retryableError{fmt.Errorf("cluster: forward to %s: read: %w", peer, err)}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var wait time.Duration
		if v := resp.Header.Get(QueueWaitHeader); v != "" {
			if us, perr := strconv.ParseInt(v, 10, 64); perr == nil {
				wait = time.Duration(us) * time.Microsecond
			}
		}
		return body, wait, nil
	case resp.StatusCode == http.StatusUnprocessableEntity:
		return nil, 0, fmt.Errorf("%w: %s", ErrRewriteFailed, strings.TrimSpace(string(body)))
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return nil, 0, &retryableError{fmt.Errorf("cluster: forward to %s: status %d", peer, resp.StatusCode)}
	default:
		// 4xx protocol mismatch (mode conflict, bad route): terminal —
		// the caller serves locally, and retrying cannot fix config.
		return nil, 0, fmt.Errorf("cluster: forward to %s: status %d: %s", peer, resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// QueueWaitHeader mirrors proxy.QueueWaitHeader (the package cannot
// import internal/proxy — the proxy imports cluster).
const QueueWaitHeader = "X-Ceres-Queue-Wait"

// maxPeerBody bounds a peer response (same order as the proxy's own
// script limits).
const maxPeerBody = 8 << 20

// ping is the health probe: GET /__ceres/peer/ping, any 2xx is alive.
func (n *Node) ping(peer string) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+PeerPingPath, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: ping %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// TransferPrewarm POSTs inline sources to the peer's /__ceres/prewarm
// — the cache-fill transfer path. The request is hop-marked so the
// receiver fills its own cache without re-routing. Returns a
// retryable error on transport failure or non-200.
func (n *Node) TransferPrewarm(ctx context.Context, peer string, payload []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/__ceres/prewarm", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cluster: prewarm transfer: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopHeader, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		n.reportPeerFailure(peer)
		return nil, &retryableError{fmt.Errorf("cluster: prewarm transfer to %s: %w", peer, err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, &retryableError{fmt.Errorf("cluster: prewarm transfer to %s: read: %w", peer, err)}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &retryableError{fmt.Errorf("cluster: prewarm transfer to %s: status %d", peer, resp.StatusCode)}
	}
	n.reportPeerSuccess(peer)
	return body, nil
}
