package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenMembers is the fixed fleet of the golden fixture. The URLs are
// opaque strings to the ring; realistic ones keep the fixture honest
// about what production keys look like.
var goldenMembers = []string{
	"http://node-a:8080",
	"http://node-b:8080",
	"http://node-c:8080",
}

const goldenVNodes = 16

// goldenFixture pins the key→owner map for a fixed member set. Any
// change to the hash, the vnode labeling, or the search direction
// shows up as a diff against testdata/ring_golden.json — and such a
// change is a rolling-upgrade break: a fleet of old and new binaries
// would route the same key to different owners.
type goldenFixture struct {
	Members []string          `json:"members"`
	VNodes  int               `json:"vnodes"`
	Owners  map[string]string `json:"owners"`
}

func computeGolden() goldenFixture {
	g := goldenFixture{
		Members: goldenMembers,
		VNodes:  goldenVNodes,
		Owners:  make(map[string]string),
	}
	r := NewRing(goldenMembers, goldenVNodes)
	for i := 0; i < 64; i++ {
		for _, mode := range []int{0, 1} {
			src := []byte(fmt.Sprintf("var script%d = %d;", i, i))
			g.Owners[fmt.Sprintf("script-%d@mode-%d", i, mode)] = r.OwnerForSource(src, mode)
		}
	}
	return g
}

func TestRingGolden(t *testing.T) {
	path := filepath.Join("testdata", "ring_golden.json")
	got := computeGolden()
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	var want goldenFixture
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	if want.VNodes != got.VNodes || len(want.Owners) != len(got.Owners) {
		t.Fatalf("golden shape changed: vnodes %d->%d, keys %d->%d",
			want.VNodes, got.VNodes, len(want.Owners), len(got.Owners))
	}
	mismatch := 0
	for k, w := range want.Owners {
		if g := got.Owners[k]; g != w {
			mismatch++
			if mismatch <= 5 {
				t.Errorf("key %s: owner %s, golden says %s", k, g, w)
			}
		}
	}
	if mismatch > 5 {
		t.Errorf("... and %d more owner mismatches — the ring function changed", mismatch-5)
	}
}

// TestRingOrderInsensitive: the ring is a pure function of the member
// *set* — any permutation, with or without duplicates, routes every
// key identically. This is the no-coordinator contract: each fleet
// member builds its own ring from its own -peers string.
func TestRingOrderInsensitive(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	base := NewRing(members, 0)
	variants := [][]string{
		{"http://e:1", "http://d:1", "http://c:1", "http://b:1", "http://a:1"},
		{"http://c:1", "http://a:1", "http://e:1", "http://b:1", "http://d:1"},
		{"http://a:1", "http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1", "http://c:1"},
	}
	rng := rand.New(rand.NewSource(1))
	for vi, v := range variants {
		r := NewRing(v, 0)
		for i := 0; i < 2000; i++ {
			pt := rng.Uint64()
			if got, want := r.Owner(pt), base.Owner(pt); got != want {
				t.Fatalf("variant %d: point %#x owned by %s, base ring says %s", vi, pt, got, want)
			}
		}
	}
}

// testPoints derives K deterministic key points the way production
// keys are derived: hash of source bytes.
func testPoints(k int) []uint64 {
	pts := make([]uint64, k)
	for i := range pts {
		pts[i] = PointForSource([]byte(fmt.Sprintf("key-%d", i)), 0)
	}
	return pts
}

// TestRingMinimalMovementLeave: removing one member moves exactly the
// keys that member owned — every other key keeps its owner — and the
// moved count is within slack of the fair share ⌈K/N⌉.
func TestRingMinimalMovementLeave(t *testing.T) {
	const K, N = 10000, 8
	members := make([]string, N)
	for i := range members {
		members[i] = fmt.Sprintf("http://n%d:8080", i)
	}
	leaver := members[3]
	before := NewRing(members, 0)
	after := NewRing(append(append([]string(nil), members[:3]...), members[4:]...), 0)

	moved := 0
	for _, pt := range testPoints(K) {
		was, is := before.Owner(pt), after.Owner(pt)
		if was == leaver {
			moved++
			if is == leaver {
				t.Fatalf("point %#x still owned by removed member", pt)
			}
			continue
		}
		if was != is {
			t.Fatalf("point %#x moved %s -> %s though neither is the leaver — not minimal", pt, was, is)
		}
	}
	fair := (K + N - 1) / N // ⌈K/N⌉ = 1250
	if moved == 0 {
		t.Fatal("leave moved zero keys — leaver owned nothing?")
	}
	// 64 vnodes keep per-member load within ~2x of fair share; a moved
	// count past that means vnode smoothing is broken.
	if moved > 2*fair {
		t.Errorf("leave moved %d of %d keys, want <= 2*⌈K/N⌉ = %d", moved, K, 2*fair)
	}
	t.Logf("leave moved %d keys (fair share %d)", moved, fair)
}

// TestRingMinimalMovementJoin: a joining member only *takes* keys —
// no key moves between two members that were both present before.
func TestRingMinimalMovementJoin(t *testing.T) {
	const K, N = 10000, 8
	members := make([]string, N)
	for i := range members {
		members[i] = fmt.Sprintf("http://n%d:8080", i)
	}
	joiner := "http://n8:8080"
	before := NewRing(members, 0)
	after := NewRing(append(append([]string(nil), members...), joiner), 0)

	moved := 0
	for _, pt := range testPoints(K) {
		was, is := before.Owner(pt), after.Owner(pt)
		if was == is {
			continue
		}
		moved++
		if is != joiner {
			t.Fatalf("point %#x moved %s -> %s, but only the joiner may take keys", pt, was, is)
		}
	}
	fair := (K + N) / (N + 1) // ⌈K/(N+1)⌉ = 1112
	if moved == 0 {
		t.Fatal("join moved zero keys — joiner owns nothing?")
	}
	if moved > 2*fair {
		t.Errorf("join moved %d of %d keys, want <= 2*⌈K/(N+1)⌉ = %d", moved, K, 2*fair)
	}
	t.Logf("join moved %d keys (fair share %d)", moved, fair)
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	solo := NewRing([]string{"http://only:1"}, 0)
	for _, pt := range testPoints(100) {
		if got := solo.Owner(pt); got != "http://only:1" {
			t.Fatalf("single-member ring routed %#x to %q", pt, got)
		}
	}
}

// TestKeyPointModeSeparation: the same source under different
// instrumentation modes is a different key — mode is part of cache
// identity, so it must be part of routing identity.
func TestKeyPointModeSeparation(t *testing.T) {
	src := []byte("var x = 1;")
	if PointForSource(src, 0) == PointForSource(src, 1) {
		t.Error("mode 0 and mode 1 map to the same ring point")
	}
	if PointForSource(src, 0) != PointForSource(src, 0) {
		t.Error("PointForSource is not deterministic")
	}
}
