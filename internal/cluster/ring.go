// Package cluster scales the serving proxy from one process to a fleet:
// a consistent-hash ring assigns every script key — the cache key,
// SHA-256(source) ⊕ mode — to exactly one owning node, so the per-key
// contracts the single process already guarantees (single-flight: one
// rewrite per distinct script; LRU: one residency decision per entry)
// stay per-key-exclusive across N processes. Parallelism comes from
// partitioning, not shared locks: each node is the sole actor for its
// shard of the key space (Shah's actor-relational model, PAPERS.md).
//
// The package has three layers:
//
//   - Ring (ring.go): virtual-node consistent hashing. A Ring is a pure
//     function of (member set, vnode count) — every node that agrees on
//     the member set computes the identical key→owner map with no
//     coordination, and a membership delta moves only the keys adjacent
//     to the joined/left node's virtual points (≈ K/N of them), never
//     reshuffling the rest.
//   - Node (node.go): membership and routing. Static member list at
//     start (-peers), health-probe-driven ejection and readmission
//     (the ring is rebuilt from the live set, so a dead node's keys
//     redistribute to the survivors), per-key hot tracking that serves
//     keys above a request-rate threshold locally as replicas, and the
//     forwarding counters surfaced in /__ceres/stats.
//   - Forwarding (forward.go): the HTTP peer protocol. One hop, ever:
//     a request forwarded to its owner carries HopHeader, and a node
//     receiving a hopped request always serves it locally — divergent
//     membership views degrade to an extra local rewrite, never a
//     forwarding loop. Retries with capped backoff handle transient
//     peer failures; errors are classified retryable (caller may serve
//     locally — availability beats strict ownership) or terminal.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. More vnodes
// smooth the load split (relative imbalance shrinks ~1/sqrt(vnodes))
// and shrink the variance of how many keys a join/leave moves; the
// cost is only ring-build time, which happens on membership change.
const DefaultVNodes = 64

// KeyPoint maps a cache key — the content hash and instrumentation
// mode that already address the rewrite cache — onto the ring's
// uint64 key space. It must match the cache's notion of key identity:
// same (bytes, mode) = same point on every node.
func KeyPoint(sum [sha256.Size]byte, mode int) uint64 {
	// The content hash is already uniform; fold the mode in with a
	// golden-ratio multiply exactly like the cache's shard mapping, so
	// one (source, mode) pair is one point fleet-wide.
	return binary.BigEndian.Uint64(sum[:8]) ^ (uint64(mode) * 0x9E3779B97F4A7C15)
}

// PointForSource is KeyPoint over raw source bytes.
func PointForSource(src []byte, mode int) uint64 {
	return KeyPoint(sha256.Sum256(src), mode)
}

// ringPoint is one virtual node: a position on the ring and the member
// that owns keys in the arc ending at it.
type ringPoint struct {
	point  uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// one with NewRing; rebuild (never mutate) on membership change. A
// Ring is a pure function of its inputs: two processes given the same
// member set and vnode count — in any order — compute identical
// key→owner maps, which is what lets the fleet route without a
// coordinator.
type Ring struct {
	members []string // sorted, deduplicated
	points  []ringPoint
}

// NewRing builds the ring for the given members (order-insensitive,
// duplicates ignored) with vnodes virtual points per member
// (<= 0 → DefaultVNodes). An empty member set yields a ring whose
// Owner returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, m := range sorted {
		if i == 0 || m != sorted[i-1] {
			uniq = append(uniq, m)
		}
	}
	r := &Ring{members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", m, v)))
			r.points = append(r.points, ringPoint{
				point:  binary.BigEndian.Uint64(sum[:8]),
				member: m,
			})
		}
	}
	// Sort by point, tie-broken by member name so two members whose
	// vnode hashes collide still yield one deterministic owner on every
	// process.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning the key point: the member of the
// first virtual point clockwise from (strictly after) the key,
// wrapping at the top of the key space. Empty ring → "".
func (r *Ring) Owner(point uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].point > point
	})
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// OwnerForSource is Owner over raw source bytes.
func (r *Ring) OwnerForSource(src []byte, mode int) string {
	return r.Owner(PointForSource(src, mode))
}
