// Package printer renders ASTs back to JavaScript source. It is the
// code-generation half of the proxy's source-to-source instrumentation
// (Fig. 5 step 2), and is verified by parse∘print round-trip tests.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/token"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	pr := &printer{}
	for _, s := range p.Body {
		pr.stmt(s)
	}
	return pr.sb.String()
}

// PrintStmt renders one statement.
func PrintStmt(s ast.Stmt) string {
	pr := &printer{}
	pr.stmt(s)
	return pr.sb.String()
}

// PrintExpr renders one expression.
func PrintExpr(e ast.Expr) string {
	pr := &printer{}
	pr.expr(e, 0)
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) open(format string, args ...any) {
	p.line(format, args...)
	p.indent++
}

func (p *printer) close(suffix string) {
	p.indent--
	p.line("}%s", suffix)
}

func (p *printer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.EmptyStmt:
		p.line(";")
	case *ast.VarDecl:
		parts := make([]string, len(x.Names))
		for i, n := range x.Names {
			if x.Inits[i] != nil {
				parts[i] = n + " = " + PrintExpr(x.Inits[i])
			} else {
				parts[i] = n
			}
		}
		p.line("var %s;", strings.Join(parts, ", "))
	case *ast.FuncDecl:
		p.funcBody("function "+x.Name, x.Fn)
	case *ast.ExprStmt:
		p.line("%s;", PrintExpr(x.X))
	case *ast.BlockStmt:
		p.open("{")
		for _, st := range x.Body {
			p.stmt(st)
		}
		p.close("")
	case *ast.IfStmt:
		p.open("if (%s) {", PrintExpr(x.Cond))
		p.stmtInBlock(x.Cons)
		if x.Alt != nil {
			p.indent--
			p.line("} else {")
			p.indent++
			p.stmtInBlock(x.Alt)
		}
		p.close("")
	case *ast.ForStmt:
		init := ""
		if x.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(PrintStmt(x.Init)), ";")
		}
		cond := ""
		if x.Cond != nil {
			cond = PrintExpr(x.Cond)
		}
		post := ""
		if x.Post != nil {
			post = PrintExpr(x.Post)
		}
		p.open("for (%s; %s; %s) {", init, cond, post)
		p.stmtInBlock(x.Body)
		p.close("")
	case *ast.WhileStmt:
		p.open("while (%s) {", PrintExpr(x.Cond))
		p.stmtInBlock(x.Body)
		p.close("")
	case *ast.DoWhileStmt:
		p.open("do {")
		p.stmtInBlock(x.Body)
		p.indent--
		p.line("} while (%s);", PrintExpr(x.Cond))
	case *ast.ForInStmt:
		decl := ""
		if x.Declare {
			decl = "var "
		}
		p.open("for (%s%s in %s) {", decl, x.Name, PrintExpr(x.Obj))
		p.stmtInBlock(x.Body)
		p.close("")
	case *ast.ReturnStmt:
		if x.X != nil {
			p.line("return %s;", PrintExpr(x.X))
		} else {
			p.line("return;")
		}
	case *ast.BreakStmt:
		p.line("break;")
	case *ast.ContinueStmt:
		p.line("continue;")
	case *ast.ThrowStmt:
		p.line("throw %s;", PrintExpr(x.X))
	case *ast.TryStmt:
		p.open("try {")
		p.stmtInBlock(x.Body)
		if x.Catch != nil {
			p.indent--
			p.line("} catch (%s) {", x.CatchName)
			p.indent++
			p.stmtInBlock(x.Catch)
		}
		if x.Finally != nil {
			p.indent--
			p.line("} finally {")
			p.indent++
			p.stmtInBlock(x.Finally)
		}
		p.close("")
	case *ast.SwitchStmt:
		p.open("switch (%s) {", PrintExpr(x.Disc))
		for _, c := range x.Cases {
			if c.Test != nil {
				p.line("case %s:", PrintExpr(c.Test))
			} else {
				p.line("default:")
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.close("")
	default:
		p.line("/* unknown stmt %T */", s)
	}
}

// stmtInBlock prints a statement's contents, unwrapping blocks to avoid
// double braces.
func (p *printer) stmtInBlock(s ast.Stmt) {
	if b, ok := s.(*ast.BlockStmt); ok {
		for _, st := range b.Body {
			p.stmt(st)
		}
		return
	}
	p.stmt(s)
}

func (p *printer) funcBody(head string, fn *ast.FuncLit) {
	p.open("%s(%s) {", head, strings.Join(fn.Params, ", "))
	for _, st := range fn.Body.Body {
		p.stmt(st)
	}
	p.close("")
}

// precedence tiers for parenthesization.
func exprPrec(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.SeqExpr:
		return 0
	case *ast.AssignExpr:
		return 1
	case *ast.CondExpr:
		return 2
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LOR:
			return 3
		case token.LAND:
			return 4
		case token.OR:
			return 5
		case token.XOR:
			return 6
		case token.AND:
			return 7
		case token.EQ, token.NEQ, token.STRICTEQ, token.STRICTNE:
			return 8
		case token.LT, token.GT, token.LE, token.GE, token.IN, token.INSTANCEOF:
			return 9
		case token.SHL, token.SHR, token.USHR:
			return 10
		case token.PLUS, token.MINUS:
			return 11
		default:
			return 12
		}
	case *ast.UnaryExpr, *ast.UpdateExpr:
		return 13
	case *ast.NewExpr:
		return 14
	case *ast.CallExpr, *ast.MemberExpr, *ast.IndexExpr:
		return 15
	default:
		return 16
	}
}

func (p *printer) expr(e ast.Expr, minPrec int) {
	prec := exprPrec(e)
	if prec < minPrec {
		p.sb.WriteByte('(')
		defer p.sb.WriteByte(')')
	}
	switch x := e.(type) {
	case *ast.Ident:
		p.sb.WriteString(x.Name)
	case *ast.NumberLit:
		p.sb.WriteString(formatNumber(x.Value))
	case *ast.StringLit:
		p.sb.WriteString(strconv.Quote(x.Value))
	case *ast.BoolLit:
		if x.Value {
			p.sb.WriteString("true")
		} else {
			p.sb.WriteString("false")
		}
	case *ast.NullLit:
		p.sb.WriteString("null")
	case *ast.UndefinedLit:
		p.sb.WriteString("undefined")
	case *ast.ThisExpr:
		p.sb.WriteString("this")
	case *ast.ArrayLit:
		p.sb.WriteByte('[')
		for i, el := range x.Elems {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(el, 1)
		}
		p.sb.WriteByte(']')
	case *ast.ObjectLit:
		p.sb.WriteByte('{')
		for i, k := range x.Keys {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			if isIdentLike(k) {
				p.sb.WriteString(k)
			} else {
				p.sb.WriteString(strconv.Quote(k))
			}
			p.sb.WriteString(": ")
			p.expr(x.Values[i], 1)
		}
		p.sb.WriteByte('}')
	case *ast.FuncLit:
		name := ""
		if x.Name != "" {
			name = " " + x.Name
		}
		fmt.Fprintf(&p.sb, "function%s(%s) {\n", name, strings.Join(x.Params, ", "))
		sub := &printer{indent: p.indent + 1}
		for _, st := range x.Body.Body {
			sub.stmt(st)
		}
		p.sb.WriteString(sub.sb.String())
		p.sb.WriteString(strings.Repeat("  ", p.indent))
		p.sb.WriteByte('}')
	case *ast.UnaryExpr:
		switch x.Op {
		case token.TYPEOF, token.DELETE:
			p.sb.WriteString(x.Op.String())
			p.sb.WriteByte(' ')
		default:
			p.sb.WriteString(x.Op.String())
			// avoid gluing signs into -- or ++ ("-(-x)" not "--x")
			if needsUnarySpace(x.Op, x.X) {
				p.sb.WriteByte(' ')
			}
		}
		p.expr(x.X, 13)
	case *ast.UpdateExpr:
		if x.Prefix {
			p.sb.WriteString(x.Op.String())
			p.expr(x.X, 13)
		} else {
			p.expr(x.X, 15)
			p.sb.WriteString(x.Op.String())
		}
	case *ast.BinaryExpr:
		prec := exprPrec(x)
		p.expr(x.L, prec)
		fmt.Fprintf(&p.sb, " %s ", x.Op)
		p.expr(x.R, prec+1)
	case *ast.CondExpr:
		p.expr(x.Cond, 3)
		p.sb.WriteString(" ? ")
		p.expr(x.Cons, 1)
		p.sb.WriteString(" : ")
		p.expr(x.Alt, 1)
	case *ast.AssignExpr:
		p.expr(x.L, 13)
		fmt.Fprintf(&p.sb, " %s ", x.Op)
		p.expr(x.R, 1)
	case *ast.CallExpr:
		p.expr(x.Fn, 15)
		p.args(x.Args)
	case *ast.NewExpr:
		p.sb.WriteString("new ")
		p.expr(x.Fn, 15)
		p.args(x.Args)
	case *ast.MemberExpr:
		p.expr(x.X, 15)
		p.sb.WriteByte('.')
		p.sb.WriteString(x.Name)
	case *ast.IndexExpr:
		p.expr(x.X, 15)
		p.sb.WriteByte('[')
		p.expr(x.Index, 0)
		p.sb.WriteByte(']')
	case *ast.SeqExpr:
		for i, sub := range x.Exprs {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(sub, 1)
		}
	default:
		fmt.Fprintf(&p.sb, "/* unknown expr %T */", e)
	}
}

func (p *printer) args(args []ast.Expr) {
	p.sb.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		p.expr(a, 1)
	}
	p.sb.WriteByte(')')
}

func needsUnarySpace(op token.Type, inner ast.Expr) bool {
	switch t := inner.(type) {
	case *ast.UnaryExpr:
		return t.Op == op && (op == token.MINUS || op == token.PLUS)
	case *ast.UpdateExpr:
		return t.Prefix && ((op == token.MINUS && t.Op == token.DEC) ||
			(op == token.PLUS && t.Op == token.INC))
	}
	return false
}

func formatNumber(f float64) string {
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func isIdentLike(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
