package printer

import (
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

// canonStmt normalizes away the one representation difference the printer
// introduces: single statements vs singleton blocks as if/loop bodies.
func canonStmt(s ast.Stmt) ast.Stmt {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for i := range x.Body {
			x.Body[i] = canonStmt(x.Body[i])
		}
		if len(x.Body) == 1 {
			return x.Body[0]
		}
		return x
	case *ast.IfStmt:
		x.Cons = canonStmt(x.Cons)
		if x.Alt != nil {
			x.Alt = canonStmt(x.Alt)
		}
		return x
	case *ast.ForStmt:
		x.Body = canonStmt(x.Body)
		return x
	case *ast.WhileStmt:
		x.Body = canonStmt(x.Body)
		return x
	case *ast.DoWhileStmt:
		x.Body = canonStmt(x.Body)
		return x
	case *ast.ForInStmt:
		x.Body = canonStmt(x.Body)
		return x
	}
	return s
}

func canonDump(p *ast.Program) string {
	for i := range p.Body {
		p.Body[i] = canonStmt(p.Body[i])
	}
	return ast.DumpProgram(p)
}

// roundTrip parses src, prints it, re-parses, and compares canonical AST
// dumps.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	printed := Print(p1)
	p2, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("parse printed: %v\nprinted:\n%s", err, printed)
	}
	d1, d2 := canonDump(p1), canonDump(p2)
	if d1 != d2 {
		t.Fatalf("round trip changed the AST\noriginal: %s\nreparsed: %s\nprinted:\n%s", d1, d2, printed)
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := []string{
		`var x = 1 + 2 * 3;`,
		`var y = (1 + 2) * 3;`,
		`var s = "he\"llo" + 'wo\nrld';`,
		`var a = [1, 2, [3, 4]];`,
		`var o = {a: 1, "b c": 2, nested: {x: null}};`,
		`function f(a, b) { return a + b; }`,
		`var g = function (x) { return x * x; };`,
		`if (a > 1) { b = 2; } else { b = 3; }`,
		`if (a) b = 1; else if (c) b = 2; else b = 3;`,
		`for (var i = 0; i < 10; i++) { s += i; }`,
		`for (;;) { break; }`,
		`for (var k in obj) { n++; }`,
		`for (k in obj) { n++; }`,
		`while (x < 5) { x++; }`,
		`do { x--; } while (x > 0);`,
		`switch (x) { case 1: a(); break; default: b(); }`,
		`try { f(); } catch (e) { g(e); } finally { h(); }`,
		`throw new Error("boom");`,
		`var t = a ? b : c;`,
		`x = y = z = 0;`,
		`a += 1; b -= 2; c *= 3; d /= 4; e %= 5;`,
		`f <<= 1; g >>= 2; h >>>= 3; i &= 4; j |= 5; k ^= 6;`,
		`var n = -x + +y - -z;`,
		`var m = !a && ~b || c;`,
		`var p = typeof q === "undefined";`,
		`delete obj.prop; delete arr[0];`,
		`obj.method(1, 2).chained[3].deep;`,
		`new Foo(1, 2).bar;`,
		`var u = new ns.Klass();`,
		`x++; ++x; y--; --y;`,
		`a[i], b[j] = 1;`,
		`for (var i = 0, j = 10; i < j; i++, j--) { s++; }`,
		`var big = 1e21; var tiny = 0.0001; var hex = 0xFF;`,
		`fn.call(self, 1); fn.apply(self, [1, 2]);`,
		`var r = a in b;`,
		`var q2 = a instanceof B;`,
		`var shift = 1 << 4 >> 2 >>> 1;`,
		`var bits = a & b | c ^ d;`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripNestedFunctions(t *testing.T) {
	roundTrip(t, `
function outer() {
  var fns = [];
  for (var i = 0; i < 3; i++) {
    fns.push(function inner(x) {
      while (x > 0) { x -= 1; }
      return function () { return x; };
    });
  }
  return fns;
}`)
}

func TestRoundTripUnaryChains(t *testing.T) {
	roundTrip(t, `var a = -(-x); var b = - -1; var c = !(!y); var d = ~~z;`)
	roundTrip(t, `var e = -(x++); var f = -(++x);`)
}

// TestPrintedProgramsExecuteIdentically: semantic equivalence, not just
// syntactic: the printed program must compute the same values.
func TestPrintedProgramsExecuteIdentically(t *testing.T) {
	srcs := []string{
		`var result = 0;
		 for (var i = 0; i < 20; i++) { if (i % 3 === 0) { continue; } result += i; }`,
		`function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
		 var result = fib(12);`,
		`var o = {count: 0, bump: function () { this.count++; return this.count; }};
		 o.bump(); o.bump();
		 var result = o.count;`,
		`var a = [5, 3, 8, 1];
		 a.sort(function (x, y) { return x - y; });
		 var result = a.join("-");`,
		`var result = "";
		 try { throw {name: "E", message: "m"}; } catch (e) { result = e.name + ":" + e.message; }`,
	}
	for _, src := range srcs {
		p1 := parser.MustParse(src)
		printed := Print(p1)
		p2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, printed)
		}

		in1 := interp.New()
		if err := in1.Run(p1); err != nil {
			t.Fatalf("run original: %v", err)
		}
		in2 := interp.New()
		if err := in2.Run(p2); err != nil {
			t.Fatalf("run printed: %v\n%s", err, printed)
		}
		v1, v2 := in1.Global("result"), in2.Global("result")
		if v1.ToString() != v2.ToString() {
			t.Errorf("results differ: %q vs %q for\n%s", v1.ToString(), v2.ToString(), src)
		}
	}
}

// TestRoundTripWorkloads: the printer must round-trip every real workload
// source (the proxy rewrites exactly these).
func TestRoundTripFixpoint(t *testing.T) {
	src := `
var acc = 0;
function step(n) {
  for (var i = 0; i < n; i++) {
    acc += i * (i & 1 ? -1 : 1);
  }
  return acc;
}
step(100);`
	p1 := parser.MustParse(src)
	once := Print(p1)
	p2 := parser.MustParse(once)
	twice := Print(p2)
	if once != twice {
		t.Errorf("print is not a fixpoint after one round:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}
