package ast

// Inspect traverses the AST rooted at n in depth-first order, calling f for
// each node. If f returns false the children of that node are skipped.
// Nil children are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *VarDecl:
		for _, init := range x.Inits {
			if init != nil {
				Inspect(init, f)
			}
		}
	case *FuncDecl:
		Inspect(x.Fn, f)
	case *ExprStmt:
		Inspect(x.X, f)
	case *BlockStmt:
		for _, s := range x.Body {
			Inspect(s, f)
		}
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Cons, f)
		if x.Alt != nil {
			Inspect(x.Alt, f)
		}
	case *ForStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *DoWhileStmt:
		Inspect(x.Body, f)
		Inspect(x.Cond, f)
	case *ForInStmt:
		Inspect(x.Obj, f)
		Inspect(x.Body, f)
	case *ReturnStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *ThrowStmt:
		Inspect(x.X, f)
	case *TryStmt:
		Inspect(x.Body, f)
		if x.Catch != nil {
			Inspect(x.Catch, f)
		}
		if x.Finally != nil {
			Inspect(x.Finally, f)
		}
	case *SwitchStmt:
		Inspect(x.Disc, f)
		for _, c := range x.Cases {
			if c.Test != nil {
				Inspect(c.Test, f)
			}
			for _, s := range c.Body {
				Inspect(s, f)
			}
		}
	case *ArrayLit:
		for _, e := range x.Elems {
			Inspect(e, f)
		}
	case *ObjectLit:
		for _, v := range x.Values {
			Inspect(v, f)
		}
	case *FuncLit:
		Inspect(x.Body, f)
	case *UnaryExpr:
		Inspect(x.X, f)
	case *UpdateExpr:
		Inspect(x.X, f)
	case *BinaryExpr:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *CondExpr:
		Inspect(x.Cond, f)
		Inspect(x.Cons, f)
		Inspect(x.Alt, f)
	case *AssignExpr:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *CallExpr:
		Inspect(x.Fn, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *NewExpr:
		Inspect(x.Fn, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *MemberExpr:
		Inspect(x.X, f)
	case *IndexExpr:
		Inspect(x.X, f)
		Inspect(x.Index, f)
	case *SeqExpr:
		for _, e := range x.Exprs {
			Inspect(e, f)
		}
	}
}

// InspectProgram applies Inspect to every top-level statement.
func InspectProgram(p *Program, f func(Node) bool) {
	for _, s := range p.Body {
		Inspect(s, f)
	}
}

// LoopOf returns the LoopID of n if n is a loop statement, else NoLoop.
func LoopOf(n Node) LoopID {
	switch x := n.(type) {
	case *ForStmt:
		return x.Loop
	case *WhileStmt:
		return x.Loop
	case *DoWhileStmt:
		return x.Loop
	case *ForInStmt:
		return x.Loop
	}
	return NoLoop
}

// LoopBody returns the body of a loop statement, or nil if n is not a loop.
func LoopBody(n Node) Stmt {
	switch x := n.(type) {
	case *ForStmt:
		return x.Body
	case *WhileStmt:
		return x.Body
	case *DoWhileStmt:
		return x.Body
	case *ForInStmt:
		return x.Body
	}
	return nil
}
