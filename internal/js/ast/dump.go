package ast

import (
	"fmt"
	"strings"
)

// Dump renders a compact s-expression form of the node, used by golden
// parser tests and debug output.
func Dump(n Node) string {
	var sb strings.Builder
	dump(&sb, n)
	return sb.String()
}

// DumpProgram renders every top-level statement on its own line.
func DumpProgram(p *Program) string {
	var sb strings.Builder
	for i, s := range p.Body {
		if i > 0 {
			sb.WriteByte('\n')
		}
		dump(&sb, s)
	}
	return sb.String()
}

func dump(sb *strings.Builder, n Node) {
	switch x := n.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *VarDecl:
		sb.WriteString("(var")
		for i, name := range x.Names {
			sb.WriteByte(' ')
			sb.WriteString(name)
			if x.Inits[i] != nil {
				sb.WriteByte('=')
				dump(sb, x.Inits[i])
			}
		}
		sb.WriteByte(')')
	case *FuncDecl:
		fmt.Fprintf(sb, "(funcdecl %s ", x.Name)
		dump(sb, x.Fn)
		sb.WriteByte(')')
	case *ExprStmt:
		sb.WriteString("(expr ")
		dump(sb, x.X)
		sb.WriteByte(')')
	case *BlockStmt:
		sb.WriteString("(block")
		for _, s := range x.Body {
			sb.WriteByte(' ')
			dump(sb, s)
		}
		sb.WriteByte(')')
	case *IfStmt:
		sb.WriteString("(if ")
		dump(sb, x.Cond)
		sb.WriteByte(' ')
		dump(sb, x.Cons)
		if x.Alt != nil {
			sb.WriteByte(' ')
			dump(sb, x.Alt)
		}
		sb.WriteByte(')')
	case *ForStmt:
		fmt.Fprintf(sb, "(for#%d ", x.Loop)
		dumpOrNil(sb, x.Init)
		sb.WriteByte(' ')
		dumpOrNil(sb, x.Cond)
		sb.WriteByte(' ')
		dumpOrNil(sb, x.Post)
		sb.WriteByte(' ')
		dump(sb, x.Body)
		sb.WriteByte(')')
	case *WhileStmt:
		fmt.Fprintf(sb, "(while#%d ", x.Loop)
		dump(sb, x.Cond)
		sb.WriteByte(' ')
		dump(sb, x.Body)
		sb.WriteByte(')')
	case *DoWhileStmt:
		fmt.Fprintf(sb, "(do#%d ", x.Loop)
		dump(sb, x.Body)
		sb.WriteByte(' ')
		dump(sb, x.Cond)
		sb.WriteByte(')')
	case *ForInStmt:
		fmt.Fprintf(sb, "(forin#%d %s ", x.Loop, x.Name)
		dump(sb, x.Obj)
		sb.WriteByte(' ')
		dump(sb, x.Body)
		sb.WriteByte(')')
	case *ReturnStmt:
		sb.WriteString("(return")
		if x.X != nil {
			sb.WriteByte(' ')
			dump(sb, x.X)
		}
		sb.WriteByte(')')
	case *BreakStmt:
		sb.WriteString("(break)")
	case *ContinueStmt:
		sb.WriteString("(continue)")
	case *ThrowStmt:
		sb.WriteString("(throw ")
		dump(sb, x.X)
		sb.WriteByte(')')
	case *TryStmt:
		sb.WriteString("(try ")
		dump(sb, x.Body)
		if x.Catch != nil {
			fmt.Fprintf(sb, " (catch %s ", x.CatchName)
			dump(sb, x.Catch)
			sb.WriteByte(')')
		}
		if x.Finally != nil {
			sb.WriteString(" (finally ")
			dump(sb, x.Finally)
			sb.WriteByte(')')
		}
		sb.WriteByte(')')
	case *SwitchStmt:
		sb.WriteString("(switch ")
		dump(sb, x.Disc)
		for _, c := range x.Cases {
			if c.Test == nil {
				sb.WriteString(" (default")
			} else {
				sb.WriteString(" (case ")
				dump(sb, c.Test)
			}
			for _, s := range c.Body {
				sb.WriteByte(' ')
				dump(sb, s)
			}
			sb.WriteByte(')')
		}
		sb.WriteByte(')')
	case *EmptyStmt:
		sb.WriteString("(empty)")
	case *Ident:
		sb.WriteString(x.Name)
	case *NumberLit:
		fmt.Fprintf(sb, "%g", x.Value)
	case *StringLit:
		fmt.Fprintf(sb, "%q", x.Value)
	case *BoolLit:
		fmt.Fprintf(sb, "%t", x.Value)
	case *NullLit:
		sb.WriteString("null")
	case *UndefinedLit:
		sb.WriteString("undefined")
	case *ThisExpr:
		sb.WriteString("this")
	case *ArrayLit:
		sb.WriteString("(array")
		for _, e := range x.Elems {
			sb.WriteByte(' ')
			dump(sb, e)
		}
		sb.WriteByte(')')
	case *ObjectLit:
		sb.WriteString("(object")
		for i, k := range x.Keys {
			fmt.Fprintf(sb, " %s:", k)
			dump(sb, x.Values[i])
		}
		sb.WriteByte(')')
	case *FuncLit:
		sb.WriteString("(func")
		if x.Name != "" {
			sb.WriteByte(' ')
			sb.WriteString(x.Name)
		}
		sb.WriteString(" [")
		sb.WriteString(strings.Join(x.Params, " "))
		sb.WriteString("] ")
		dump(sb, x.Body)
		sb.WriteByte(')')
	case *UnaryExpr:
		fmt.Fprintf(sb, "(%s ", x.Op)
		dump(sb, x.X)
		sb.WriteByte(')')
	case *UpdateExpr:
		if x.Prefix {
			fmt.Fprintf(sb, "(pre%s ", x.Op)
		} else {
			fmt.Fprintf(sb, "(post%s ", x.Op)
		}
		dump(sb, x.X)
		sb.WriteByte(')')
	case *BinaryExpr:
		fmt.Fprintf(sb, "(%s ", x.Op)
		dump(sb, x.L)
		sb.WriteByte(' ')
		dump(sb, x.R)
		sb.WriteByte(')')
	case *CondExpr:
		sb.WriteString("(?: ")
		dump(sb, x.Cond)
		sb.WriteByte(' ')
		dump(sb, x.Cons)
		sb.WriteByte(' ')
		dump(sb, x.Alt)
		sb.WriteByte(')')
	case *AssignExpr:
		fmt.Fprintf(sb, "(%s ", x.Op)
		dump(sb, x.L)
		sb.WriteByte(' ')
		dump(sb, x.R)
		sb.WriteByte(')')
	case *CallExpr:
		sb.WriteString("(call ")
		dump(sb, x.Fn)
		for _, a := range x.Args {
			sb.WriteByte(' ')
			dump(sb, a)
		}
		sb.WriteByte(')')
	case *NewExpr:
		sb.WriteString("(new ")
		dump(sb, x.Fn)
		for _, a := range x.Args {
			sb.WriteByte(' ')
			dump(sb, a)
		}
		sb.WriteByte(')')
	case *MemberExpr:
		sb.WriteString("(. ")
		dump(sb, x.X)
		sb.WriteByte(' ')
		sb.WriteString(x.Name)
		sb.WriteByte(')')
	case *IndexExpr:
		sb.WriteString("([] ")
		dump(sb, x.X)
		sb.WriteByte(' ')
		dump(sb, x.Index)
		sb.WriteByte(')')
	case *SeqExpr:
		sb.WriteString("(seq")
		for _, e := range x.Exprs {
			sb.WriteByte(' ')
			dump(sb, e)
		}
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "<unknown %T>", n)
	}
}

func dumpOrNil(sb *strings.Builder, n Node) {
	if n == nil {
		sb.WriteString("_")
		return
	}
	dump(sb, n)
}
