package ast

import (
	"strings"
	"testing"

	"repro/internal/js/token"
)

func TestLoopInfoLabel(t *testing.T) {
	li := LoopInfo{ID: 3, Kind: "while", Line: 24}
	if got := li.Label(); got != "while(line 24)" {
		t.Errorf("Label = %q", got)
	}
}

func TestInspectSkipsChildrenOnFalse(t *testing.T) {
	// for-loop containing a call; skip inside the call expression
	tree := &ForStmt{
		Loop: 1,
		Cond: &BinaryExpr{Op: token.LT, L: &Ident{Name: "i"}, R: &NumberLit{Value: 3}},
		Body: &BlockStmt{Body: []Stmt{
			&ExprStmt{X: &CallExpr{Fn: &Ident{Name: "f"}, Args: []Expr{&Ident{Name: "hidden"}}}},
		}},
	}
	var visited []string
	Inspect(tree, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			visited = append(visited, id.Name)
		}
		if _, ok := n.(*CallExpr); ok {
			return false // skip call arguments
		}
		return true
	})
	joined := strings.Join(visited, ",")
	if !strings.Contains(joined, "i") {
		t.Errorf("cond ident not visited: %v", visited)
	}
	if strings.Contains(joined, "hidden") {
		t.Errorf("skipped subtree visited: %v", visited)
	}
}

func TestInspectNilSafety(t *testing.T) {
	Inspect(nil, func(Node) bool { t.Fatal("callback on nil"); return true })
	// for with nil init/cond/post must not panic
	Inspect(&ForStmt{Body: &BlockStmt{}}, func(Node) bool { return true })
	Inspect(&ReturnStmt{}, func(Node) bool { return true })
	Inspect(&IfStmt{Cond: &BoolLit{Value: true}, Cons: &EmptyStmt{}}, func(Node) bool { return true })
}

func TestLoopOfAndLoopBody(t *testing.T) {
	body := &BlockStmt{}
	cases := []Node{
		&ForStmt{Loop: 1, Body: body},
		&WhileStmt{Loop: 2, Cond: &BoolLit{}, Body: body},
		&DoWhileStmt{Loop: 3, Cond: &BoolLit{}, Body: body},
		&ForInStmt{Loop: 4, Obj: &Ident{Name: "o"}, Body: body},
	}
	for i, n := range cases {
		if LoopOf(n) != LoopID(i+1) {
			t.Errorf("LoopOf case %d = %d", i, LoopOf(n))
		}
		if LoopBody(n) != Stmt(body) {
			t.Errorf("LoopBody case %d wrong", i)
		}
	}
	if LoopOf(&EmptyStmt{}) != NoLoop || LoopBody(&EmptyStmt{}) != nil {
		t.Error("non-loops must report NoLoop/nil")
	}
}

func TestDumpCoverage(t *testing.T) {
	prog := &Program{Body: []Stmt{
		&VarDecl{Names: []string{"x"}, Inits: []Expr{&CondExpr{
			Cond: &BoolLit{Value: true},
			Cons: &StringLit{Value: "a"},
			Alt:  &NullLit{},
		}}},
		&TryStmt{
			Body:      &BlockStmt{Body: []Stmt{&ThrowStmt{X: &NumberLit{Value: 1}}}},
			CatchName: "e",
			Catch:     &BlockStmt{},
			Finally:   &BlockStmt{Body: []Stmt{&EmptyStmt{}}},
		},
		&SwitchStmt{Disc: &Ident{Name: "y"}, Cases: []SwitchCase{
			{Test: &NumberLit{Value: 1}, Body: []Stmt{&BreakStmt{}}},
			{Test: nil, Body: []Stmt{&ContinueStmt{}}},
		}},
		&ExprStmt{X: &UnaryExpr{Op: token.TYPEOF, X: &ThisExpr{}}},
		&ExprStmt{X: &SeqExpr{Exprs: []Expr{&UndefinedLit{}, &ArrayLit{Elems: []Expr{&NumberLit{Value: 2}}}}}},
		&ExprStmt{X: &NewExpr{Fn: &Ident{Name: "F"}, Args: []Expr{&ObjectLit{Keys: []string{"k"}, Values: []Expr{&NumberLit{Value: 3}}}}}},
	}}
	out := DumpProgram(prog)
	for _, want := range []string{"(?:", "(try", "(catch e", "(finally", "(switch", "(case 1", "(default", "(typeof this)", "(seq", "(new F", "k:3"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpLoops(t *testing.T) {
	out := Dump(&DoWhileStmt{Loop: 7, Cond: &BoolLit{Value: false}, Body: &BlockStmt{}})
	if out != "(do#7 (block) false)" {
		t.Errorf("dump = %q", out)
	}
	out = Dump(&ForInStmt{Loop: 2, Name: "k", Obj: &Ident{Name: "o"}, Body: &EmptyStmt{}})
	if out != "(forin#2 k o (empty))" {
		t.Errorf("dump = %q", out)
	}
}
