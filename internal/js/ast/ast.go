// Package ast defines the abstract syntax tree for the JavaScript subset.
//
// Every loop node carries a stable LoopID assigned by the parser; those IDs
// are the syntactic-loop identities used throughout JS-CERES (the paper's
// warning reports are lists of per-loop triples keyed by loop identity, cf.
// §3.3 of Radoi et al.).
package ast

import (
	"strings"

	"repro/internal/js/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// LoopID uniquely identifies a syntactic loop within a Program.
type LoopID int

// NoLoop is the zero LoopID, meaning "not a loop".
const NoLoop LoopID = 0

// Program is a parsed compilation unit.
type Program struct {
	Body  []Stmt
	Loops []LoopInfo // indexed by LoopID-1
}

// LoopInfo describes one syntactic loop for reporting.
type LoopInfo struct {
	ID   LoopID
	Kind string // "for", "while", "do-while", "for-in"
	Line int
}

// Label returns the human-readable identity used in warning reports,
// e.g. "for(line 6)".
func (li LoopInfo) Label() string {
	var sb strings.Builder
	sb.WriteString(li.Kind)
	sb.WriteString("(line ")
	writeInt(&sb, li.Line)
	sb.WriteString(")")
	return sb.String()
}

func writeInt(sb *strings.Builder, n int) {
	if n < 0 {
		sb.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}

// ---- Statements ----

// VarDecl is `var a = 1, b;`.
type VarDecl struct {
	TokPos token.Pos
	Names  []string
	Inits  []Expr // same length as Names; nil entries mean no initializer
}

// FuncDecl is `function f(a, b) { ... }`.
type FuncDecl struct {
	TokPos token.Pos
	Name   string
	Fn     *FuncLit
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	TokPos token.Pos
	Body   []Stmt
}

// IfStmt is `if (cond) cons else alt`.
type IfStmt struct {
	TokPos   token.Pos
	BranchID int // stable ID for divergence profiling
	Cond     Expr
	Cons     Stmt
	Alt      Stmt // may be nil
}

// ForStmt is the C-style `for(init; cond; post) body`.
type ForStmt struct {
	TokPos token.Pos
	Loop   LoopID
	Init   Stmt // VarDecl or ExprStmt, may be nil
	Cond   Expr // may be nil
	Post   Expr // may be nil
	Body   Stmt
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	TokPos token.Pos
	Loop   LoopID
	Cond   Expr
	Body   Stmt
}

// DoWhileStmt is `do body while (cond);`.
type DoWhileStmt struct {
	TokPos token.Pos
	Loop   LoopID
	Cond   Expr
	Body   Stmt
}

// ForInStmt is `for (var k in obj) body`.
type ForInStmt struct {
	TokPos  token.Pos
	Loop    LoopID
	Declare bool // true when written `for (var k in ...)`
	Name    string
	Obj     Expr
	Body    Stmt
}

// ReturnStmt is `return x;`.
type ReturnStmt struct {
	TokPos token.Pos
	X      Expr // may be nil
}

// BreakStmt is `break;` (unlabelled only in this subset).
type BreakStmt struct{ TokPos token.Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ TokPos token.Pos }

// ThrowStmt is `throw x;`.
type ThrowStmt struct {
	TokPos token.Pos
	X      Expr
}

// TryStmt is `try {..} catch (e) {..} finally {..}`.
type TryStmt struct {
	TokPos    token.Pos
	Body      *BlockStmt
	CatchName string
	Catch     *BlockStmt // may be nil
	Finally   *BlockStmt // may be nil
}

// SwitchStmt is `switch (x) { case a: ...; default: ... }`.
type SwitchStmt struct {
	TokPos token.Pos
	Disc   Expr
	Cases  []SwitchCase
}

// SwitchCase is one `case expr:` (Test nil for default) arm.
type SwitchCase struct {
	Test Expr // nil means default
	Body []Stmt
}

// EmptyStmt is a stray `;`.
type EmptyStmt struct{ TokPos token.Pos }

func (*VarDecl) stmtNode()      {}
func (*FuncDecl) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForInStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ThrowStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

func (s *VarDecl) Pos() token.Pos      { return s.TokPos }
func (s *FuncDecl) Pos() token.Pos     { return s.TokPos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *BlockStmt) Pos() token.Pos    { return s.TokPos }
func (s *IfStmt) Pos() token.Pos       { return s.TokPos }
func (s *ForStmt) Pos() token.Pos      { return s.TokPos }
func (s *WhileStmt) Pos() token.Pos    { return s.TokPos }
func (s *DoWhileStmt) Pos() token.Pos  { return s.TokPos }
func (s *ForInStmt) Pos() token.Pos    { return s.TokPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.TokPos }
func (s *BreakStmt) Pos() token.Pos    { return s.TokPos }
func (s *ContinueStmt) Pos() token.Pos { return s.TokPos }
func (s *ThrowStmt) Pos() token.Pos    { return s.TokPos }
func (s *TryStmt) Pos() token.Pos      { return s.TokPos }
func (s *SwitchStmt) Pos() token.Pos   { return s.TokPos }
func (s *EmptyStmt) Pos() token.Pos    { return s.TokPos }

// ---- Expressions ----

// Ident is a variable reference.
type Ident struct {
	TokPos token.Pos
	Name   string
}

// NumberLit is a numeric literal with its parsed value.
type NumberLit struct {
	TokPos token.Pos
	Value  float64
}

// StringLit is a string literal.
type StringLit struct {
	TokPos token.Pos
	Value  string
}

// BoolLit is true/false.
type BoolLit struct {
	TokPos token.Pos
	Value  bool
}

// NullLit is `null`.
type NullLit struct{ TokPos token.Pos }

// UndefinedLit is `undefined`.
type UndefinedLit struct{ TokPos token.Pos }

// ThisExpr is `this`.
type ThisExpr struct{ TokPos token.Pos }

// ArrayLit is `[a, b, c]`.
type ArrayLit struct {
	TokPos token.Pos
	Elems  []Expr
}

// ObjectLit is `{k: v, "s": w}`.
type ObjectLit struct {
	TokPos token.Pos
	Keys   []string
	Values []Expr
}

// FuncLit is `function (a, b) { ... }`.
type FuncLit struct {
	TokPos token.Pos
	Name   string // optional (named function expressions / declarations)
	Params []string
	Body   *BlockStmt
	// VarNames lists every `var` and inner function declaration in the
	// function body (not nested functions); the interpreter hoists these
	// to function scope, which the paper's §3.3 example relies on.
	VarNames []string
}

// UnaryExpr is prefix `-x`, `!x`, `~x`, `+x`, `typeof x`, `delete x.f`.
type UnaryExpr struct {
	TokPos token.Pos
	Op     token.Type
	X      Expr
}

// UpdateExpr is `++x`, `x++`, `--x`, `x--`.
type UpdateExpr struct {
	TokPos token.Pos
	Op     token.Type // INC or DEC
	Prefix bool
	X      Expr // Ident, Member or Index
}

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	TokPos   token.Pos
	Op       token.Type
	BranchID int // for && and || divergence profiling (0 otherwise)
	L, R     Expr
}

// CondExpr is `c ? a : b`.
type CondExpr struct {
	TokPos   token.Pos
	BranchID int
	Cond     Expr
	Cons     Expr
	Alt      Expr
}

// AssignExpr is `lhs = rhs` or compound `lhs op= rhs`.
type AssignExpr struct {
	TokPos token.Pos
	Op     token.Type // ASSIGN or compound
	L      Expr       // Ident, Member or Index
	R      Expr
}

// CallExpr is `f(args...)` or `obj.m(args...)`.
type CallExpr struct {
	TokPos token.Pos
	Fn     Expr
	Args   []Expr
}

// NewExpr is `new F(args...)`.
type NewExpr struct {
	TokPos token.Pos
	Fn     Expr
	Args   []Expr
}

// MemberExpr is `x.name`.
type MemberExpr struct {
	TokPos token.Pos
	X      Expr
	Name   string
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	TokPos token.Pos
	X      Expr
	Index  Expr
}

// SeqExpr is the comma operator `a, b` (needed for for-loop posts).
type SeqExpr struct {
	TokPos token.Pos
	Exprs  []Expr
}

func (*Ident) exprNode()        {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*ThisExpr) exprNode()     {}
func (*ArrayLit) exprNode()     {}
func (*ObjectLit) exprNode()    {}
func (*FuncLit) exprNode()      {}
func (*UnaryExpr) exprNode()    {}
func (*UpdateExpr) exprNode()   {}
func (*BinaryExpr) exprNode()   {}
func (*CondExpr) exprNode()     {}
func (*AssignExpr) exprNode()   {}
func (*CallExpr) exprNode()     {}
func (*NewExpr) exprNode()      {}
func (*MemberExpr) exprNode()   {}
func (*IndexExpr) exprNode()    {}
func (*SeqExpr) exprNode()      {}

func (e *Ident) Pos() token.Pos        { return e.TokPos }
func (e *NumberLit) Pos() token.Pos    { return e.TokPos }
func (e *StringLit) Pos() token.Pos    { return e.TokPos }
func (e *BoolLit) Pos() token.Pos      { return e.TokPos }
func (e *NullLit) Pos() token.Pos      { return e.TokPos }
func (e *UndefinedLit) Pos() token.Pos { return e.TokPos }
func (e *ThisExpr) Pos() token.Pos     { return e.TokPos }
func (e *ArrayLit) Pos() token.Pos     { return e.TokPos }
func (e *ObjectLit) Pos() token.Pos    { return e.TokPos }
func (e *FuncLit) Pos() token.Pos      { return e.TokPos }
func (e *UnaryExpr) Pos() token.Pos    { return e.TokPos }
func (e *UpdateExpr) Pos() token.Pos   { return e.TokPos }
func (e *BinaryExpr) Pos() token.Pos   { return e.TokPos }
func (e *CondExpr) Pos() token.Pos     { return e.TokPos }
func (e *AssignExpr) Pos() token.Pos   { return e.TokPos }
func (e *CallExpr) Pos() token.Pos     { return e.TokPos }
func (e *NewExpr) Pos() token.Pos      { return e.TokPos }
func (e *MemberExpr) Pos() token.Pos   { return e.TokPos }
func (e *IndexExpr) Pos() token.Pos    { return e.TokPos }
func (e *SeqExpr) Pos() token.Pos      { return e.TokPos }
