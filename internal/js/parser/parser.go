// Package parser builds ASTs for the JavaScript subset.
//
// It is a recursive-descent parser with Pratt-style operator precedence for
// expressions. The parser assigns a stable ast.LoopID to every syntactic
// loop and a BranchID to every branching construct; JS-CERES keys its
// profiles and dependence warnings off these identities.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/js/token"
)

// Parser parses a single source file.
type Parser struct {
	lex  *lexer.Lexer
	cur  token.Token
	next token.Token
	errs []error

	loops    []ast.LoopInfo
	branchID int

	// varStack collects hoisted names per enclosing function.
	varStack [][]string
}

// Parse parses src and returns the Program. The returned error wraps all
// syntax errors encountered.
func Parse(src string) (*ast.Program, error) {
	p := &Parser{lex: lexer.New(src)}
	p.cur = p.lex.Next()
	p.next = p.lex.Next()
	p.varStack = [][]string{nil} // top-level "function" scope

	prog := &ast.Program{}
	for p.cur.Type != token.EOF {
		s := p.statement()
		if s != nil {
			prog.Body = append(prog.Body, s)
		}
		if len(p.errs) > 25 {
			break // avoid error cascades on badly broken input
		}
	}
	prog.Loops = p.loops
	for _, e := range p.lex.Errors() {
		p.errs = append(p.errs, e)
	}
	if len(p.errs) > 0 {
		msgs := make([]string, len(p.errs))
		for i, e := range p.errs {
			msgs[i] = e.Error()
		}
		return prog, errors.New(strings.Join(msgs, "\n"))
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded sources.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("parse %s: %s", pos, fmt.Sprintf(format, args...)))
}

func (p *Parser) advance() token.Token {
	t := p.cur
	p.cur = p.next
	p.next = p.lex.Next()
	return t
}

func (p *Parser) expect(t token.Type) token.Token {
	if p.cur.Type != t {
		p.errorf(p.cur.Pos, "expected %s, found %s", t, p.cur)
		// do not consume; caller-driven recovery
		return token.Token{Type: t, Pos: p.cur.Pos}
	}
	return p.advance()
}

func (p *Parser) accept(t token.Type) bool {
	if p.cur.Type == t {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) newLoop(kind string, pos token.Pos) ast.LoopID {
	id := ast.LoopID(len(p.loops) + 1)
	p.loops = append(p.loops, ast.LoopInfo{ID: id, Kind: kind, Line: pos.Line})
	return id
}

func (p *Parser) newBranch() int {
	p.branchID++
	return p.branchID
}

func (p *Parser) hoist(name string) {
	top := len(p.varStack) - 1
	for _, n := range p.varStack[top] {
		if n == name {
			return
		}
	}
	p.varStack[top] = append(p.varStack[top], name)
}

// TopLevelVars returns the hoisted var names of the top-level scope. Valid
// only after Parse; exposed for the interpreter's global setup.
func TopLevelVars(prog *ast.Program) []string {
	var names []string
	seen := map[string]bool{}
	var scan func(s ast.Stmt)
	scan = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.VarDecl:
			for _, n := range x.Names {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		case *ast.FuncDecl:
			if !seen[x.Name] {
				seen[x.Name] = true
				names = append(names, x.Name)
			}
		case *ast.BlockStmt:
			for _, s2 := range x.Body {
				scan(s2)
			}
		case *ast.IfStmt:
			scan(x.Cons)
			if x.Alt != nil {
				scan(x.Alt)
			}
		case *ast.ForStmt:
			if x.Init != nil {
				scan(x.Init)
			}
			scan(x.Body)
		case *ast.WhileStmt:
			scan(x.Body)
		case *ast.DoWhileStmt:
			scan(x.Body)
		case *ast.ForInStmt:
			if x.Declare && !seen[x.Name] {
				seen[x.Name] = true
				names = append(names, x.Name)
			}
			scan(x.Body)
		case *ast.TryStmt:
			scan(x.Body)
			if x.Catch != nil {
				scan(x.Catch)
			}
			if x.Finally != nil {
				scan(x.Finally)
			}
		case *ast.SwitchStmt:
			for _, c := range x.Cases {
				for _, s2 := range c.Body {
					scan(s2)
				}
			}
		}
	}
	for _, s := range prog.Body {
		scan(s)
	}
	return names
}

// ---- Statements ----

func (p *Parser) statement() ast.Stmt {
	switch p.cur.Type {
	case token.SEMI:
		pos := p.advance().Pos
		return &ast.EmptyStmt{TokPos: pos}
	case token.LBRACE:
		return p.block()
	case token.VAR:
		s := p.varDecl()
		p.accept(token.SEMI)
		return s
	case token.FUNCTION:
		return p.funcDecl()
	case token.IF:
		return p.ifStmt()
	case token.FOR:
		return p.forStmt()
	case token.WHILE:
		return p.whileStmt()
	case token.DO:
		return p.doWhileStmt()
	case token.RETURN:
		pos := p.advance().Pos
		var x ast.Expr
		if p.cur.Type != token.SEMI && p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
			x = p.expression()
		}
		p.accept(token.SEMI)
		return &ast.ReturnStmt{TokPos: pos, X: x}
	case token.BREAK:
		pos := p.advance().Pos
		p.accept(token.SEMI)
		return &ast.BreakStmt{TokPos: pos}
	case token.CONTINUE:
		pos := p.advance().Pos
		p.accept(token.SEMI)
		return &ast.ContinueStmt{TokPos: pos}
	case token.THROW:
		pos := p.advance().Pos
		x := p.expression()
		p.accept(token.SEMI)
		return &ast.ThrowStmt{TokPos: pos, X: x}
	case token.TRY:
		return p.tryStmt()
	case token.SWITCH:
		return p.switchStmt()
	case token.ILLEGAL:
		p.errorf(p.cur.Pos, "illegal token %q", p.cur.Literal)
		p.advance()
		return nil
	default:
		x := p.expression()
		p.accept(token.SEMI)
		if x == nil {
			return nil
		}
		return &ast.ExprStmt{X: x}
	}
}

func (p *Parser) block() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{TokPos: pos}
	for p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
		before := p.cur
		s := p.statement()
		if s != nil {
			b.Body = append(b.Body, s)
		}
		if p.cur == before && p.cur.Type != token.RBRACE {
			p.advance() // force progress on malformed input
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) varDecl() *ast.VarDecl {
	pos := p.expect(token.VAR).Pos
	d := &ast.VarDecl{TokPos: pos}
	for {
		name := p.expect(token.IDENT).Literal
		p.hoist(name)
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.assignExpr()
		}
		d.Names = append(d.Names, name)
		d.Inits = append(d.Inits, init)
		if !p.accept(token.COMMA) {
			break
		}
	}
	return d
}

func (p *Parser) funcDecl() ast.Stmt {
	pos := p.cur.Pos
	fn := p.funcLit()
	if fn.Name == "" {
		p.errorf(pos, "function declaration requires a name")
		fn.Name = "_anon"
	}
	p.hoist(fn.Name)
	return &ast.FuncDecl{TokPos: pos, Name: fn.Name, Fn: fn}
}

func (p *Parser) funcLit() *ast.FuncLit {
	pos := p.expect(token.FUNCTION).Pos
	f := &ast.FuncLit{TokPos: pos}
	if p.cur.Type == token.IDENT {
		f.Name = p.advance().Literal
	}
	p.expect(token.LPAREN)
	for p.cur.Type != token.RPAREN && p.cur.Type != token.EOF {
		f.Params = append(f.Params, p.expect(token.IDENT).Literal)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	p.varStack = append(p.varStack, nil)
	f.Body = p.block()
	f.VarNames = p.varStack[len(p.varStack)-1]
	p.varStack = p.varStack[:len(p.varStack)-1]
	return f
}

func (p *Parser) ifStmt() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.expression()
	p.expect(token.RPAREN)
	cons := p.statement()
	var alt ast.Stmt
	if p.accept(token.ELSE) {
		alt = p.statement()
	}
	return &ast.IfStmt{TokPos: pos, BranchID: p.newBranch(), Cond: cond, Cons: cons, Alt: alt}
}

func (p *Parser) forStmt() ast.Stmt {
	pos := p.expect(token.FOR).Pos
	p.expect(token.LPAREN)

	// Distinguish for-in from C-style for.
	if p.cur.Type == token.VAR && p.next.Type == token.IDENT {
		// could be `for (var k in obj)` — need 3-token lookahead; parse the
		// var clause and check for IN before the first comma/semicolon.
		varPos := p.advance().Pos
		name := p.expect(token.IDENT).Literal
		if p.accept(token.IN) {
			p.hoist(name)
			obj := p.expression()
			p.expect(token.RPAREN)
			id := p.newLoop("for-in", pos)
			body := p.statement()
			return &ast.ForInStmt{TokPos: pos, Loop: id, Declare: true, Name: name, Obj: obj, Body: body}
		}
		// C-style with var init: rewind conceptually by building the decl.
		p.hoist(name)
		d := &ast.VarDecl{TokPos: varPos}
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.assignExpr()
		}
		d.Names = append(d.Names, name)
		d.Inits = append(d.Inits, init)
		for p.accept(token.COMMA) {
			n2 := p.expect(token.IDENT).Literal
			p.hoist(n2)
			var i2 ast.Expr
			if p.accept(token.ASSIGN) {
				i2 = p.assignExpr()
			}
			d.Names = append(d.Names, n2)
			d.Inits = append(d.Inits, i2)
		}
		return p.forTail(pos, d)
	}
	if p.cur.Type == token.IDENT && p.next.Type == token.IN {
		name := p.advance().Literal
		p.advance() // IN
		obj := p.expression()
		p.expect(token.RPAREN)
		id := p.newLoop("for-in", pos)
		body := p.statement()
		return &ast.ForInStmt{TokPos: pos, Loop: id, Declare: false, Name: name, Obj: obj, Body: body}
	}

	var init ast.Stmt
	if p.cur.Type != token.SEMI {
		x := p.expression()
		init = &ast.ExprStmt{X: x}
	}
	return p.forTail(pos, init)
}

// forTail parses `; cond ; post ) body` for C-style for loops.
func (p *Parser) forTail(pos token.Pos, init ast.Stmt) ast.Stmt {
	p.expect(token.SEMI)
	var cond ast.Expr
	if p.cur.Type != token.SEMI {
		cond = p.expression()
	}
	p.expect(token.SEMI)
	var post ast.Expr
	if p.cur.Type != token.RPAREN {
		post = p.expression()
	}
	p.expect(token.RPAREN)
	id := p.newLoop("for", pos)
	body := p.statement()
	return &ast.ForStmt{TokPos: pos, Loop: id, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *Parser) whileStmt() ast.Stmt {
	pos := p.expect(token.WHILE).Pos
	p.expect(token.LPAREN)
	cond := p.expression()
	p.expect(token.RPAREN)
	id := p.newLoop("while", pos)
	body := p.statement()
	return &ast.WhileStmt{TokPos: pos, Loop: id, Cond: cond, Body: body}
}

func (p *Parser) doWhileStmt() ast.Stmt {
	pos := p.expect(token.DO).Pos
	id := p.newLoop("do-while", pos)
	body := p.statement()
	p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.expression()
	p.expect(token.RPAREN)
	p.accept(token.SEMI)
	return &ast.DoWhileStmt{TokPos: pos, Loop: id, Cond: cond, Body: body}
}

func (p *Parser) tryStmt() ast.Stmt {
	pos := p.expect(token.TRY).Pos
	body := p.block()
	t := &ast.TryStmt{TokPos: pos, Body: body}
	if p.accept(token.CATCH) {
		p.expect(token.LPAREN)
		t.CatchName = p.expect(token.IDENT).Literal
		p.expect(token.RPAREN)
		t.Catch = p.block()
	}
	if p.accept(token.FINALLY) {
		t.Finally = p.block()
	}
	if t.Catch == nil && t.Finally == nil {
		p.errorf(pos, "try requires catch or finally")
	}
	return t
}

func (p *Parser) switchStmt() ast.Stmt {
	pos := p.expect(token.SWITCH).Pos
	p.expect(token.LPAREN)
	disc := p.expression()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	s := &ast.SwitchStmt{TokPos: pos, Disc: disc}
	for p.cur.Type == token.CASE || p.cur.Type == token.DEFAULT {
		var c ast.SwitchCase
		if p.accept(token.CASE) {
			c.Test = p.expression()
		} else {
			p.expect(token.DEFAULT)
		}
		p.expect(token.COLON)
		for p.cur.Type != token.CASE && p.cur.Type != token.DEFAULT &&
			p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
			st := p.statement()
			if st != nil {
				c.Body = append(c.Body, st)
			}
		}
		s.Cases = append(s.Cases, c)
	}
	p.expect(token.RBRACE)
	return s
}

// ---- Expressions (Pratt) ----

// expression parses a full expression including the comma operator.
func (p *Parser) expression() ast.Expr {
	x := p.assignExpr()
	if p.cur.Type != token.COMMA {
		return x
	}
	seq := &ast.SeqExpr{TokPos: x.Pos(), Exprs: []ast.Expr{x}}
	for p.accept(token.COMMA) {
		seq.Exprs = append(seq.Exprs, p.assignExpr())
	}
	return seq
}

func (p *Parser) assignExpr() ast.Expr {
	x := p.condExpr()
	if p.cur.Type.IsAssign() {
		op := p.advance()
		if !isAssignable(x) {
			p.errorf(op.Pos, "invalid assignment target")
		}
		r := p.assignExpr()
		return &ast.AssignExpr{TokPos: op.Pos, Op: op.Type, L: x, R: r}
	}
	return x
}

func isAssignable(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Ident, *ast.MemberExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *Parser) condExpr() ast.Expr {
	cond := p.binaryExpr(0)
	if !p.accept(token.QUESTION) {
		return cond
	}
	cons := p.assignExpr()
	p.expect(token.COLON)
	alt := p.assignExpr()
	return &ast.CondExpr{TokPos: cond.Pos(), BranchID: p.newBranch(), Cond: cond, Cons: cons, Alt: alt}
}

// binding powers for binary operators
func precedence(t token.Type) int {
	switch t {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.OR:
		return 3
	case token.XOR:
		return 4
	case token.AND:
		return 5
	case token.EQ, token.NEQ, token.STRICTEQ, token.STRICTNE:
		return 6
	case token.LT, token.GT, token.LE, token.GE, token.IN, token.INSTANCEOF:
		return 7
	case token.SHL, token.SHR, token.USHR:
		return 8
	case token.PLUS, token.MINUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	}
	return 0
}

func (p *Parser) binaryExpr(minPrec int) ast.Expr {
	left := p.unaryExpr()
	for {
		prec := precedence(p.cur.Type)
		if prec == 0 || prec < minPrec {
			return left
		}
		op := p.advance()
		right := p.binaryExpr(prec + 1)
		be := &ast.BinaryExpr{TokPos: op.Pos, Op: op.Type, L: left, R: right}
		if op.Type == token.LAND || op.Type == token.LOR {
			be.BranchID = p.newBranch()
		}
		left = be
	}
}

func (p *Parser) unaryExpr() ast.Expr {
	switch p.cur.Type {
	case token.NOT, token.BITNOT, token.MINUS, token.PLUS, token.TYPEOF, token.DELETE:
		op := p.advance()
		x := p.unaryExpr()
		return &ast.UnaryExpr{TokPos: op.Pos, Op: op.Type, X: x}
	case token.INC, token.DEC:
		op := p.advance()
		x := p.unaryExpr()
		if !isAssignable(x) {
			p.errorf(op.Pos, "invalid %s target", op.Type)
		}
		return &ast.UpdateExpr{TokPos: op.Pos, Op: op.Type, Prefix: true, X: x}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() ast.Expr {
	x := p.callExpr()
	if p.cur.Type == token.INC || p.cur.Type == token.DEC {
		op := p.advance()
		if !isAssignable(x) {
			p.errorf(op.Pos, "invalid %s target", op.Type)
		}
		return &ast.UpdateExpr{TokPos: op.Pos, Op: op.Type, Prefix: false, X: x}
	}
	return x
}

func (p *Parser) callExpr() ast.Expr {
	var x ast.Expr
	if p.cur.Type == token.NEW {
		x = p.newExpr()
	} else {
		x = p.primaryExpr()
	}
	for {
		switch p.cur.Type {
		case token.DOT:
			pos := p.advance().Pos
			name := p.memberName()
			x = &ast.MemberExpr{TokPos: pos, X: x, Name: name}
		case token.LBRACKET:
			pos := p.advance().Pos
			idx := p.expression()
			p.expect(token.RBRACKET)
			x = &ast.IndexExpr{TokPos: pos, X: x, Index: idx}
		case token.LPAREN:
			pos := p.advance().Pos
			var args []ast.Expr
			for p.cur.Type != token.RPAREN && p.cur.Type != token.EOF {
				args = append(args, p.assignExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			x = &ast.CallExpr{TokPos: pos, Fn: x, Args: args}
		default:
			return x
		}
	}
}

// memberName accepts identifiers and keywords used as property names
// (`obj.length`, `caman.this` is not needed but `x.in` style occurs in the
// wild; we accept any keyword spelling after a dot).
func (p *Parser) memberName() string {
	t := p.cur
	if t.Type == token.IDENT || t.Literal != "" && isWordToken(t.Type) {
		p.advance()
		return t.Literal
	}
	p.errorf(t.Pos, "expected property name, found %s", t)
	return "_err"
}

func isWordToken(t token.Type) bool {
	switch t {
	case token.VAR, token.FUNCTION, token.RETURN, token.IF, token.ELSE, token.FOR,
		token.WHILE, token.DO, token.BREAK, token.CONTINUE, token.NEW, token.DELETE,
		token.TYPEOF, token.INSTANCEOF, token.IN, token.THIS, token.NULL, token.TRUE,
		token.FALSE, token.UNDEFINED, token.SWITCH, token.CASE, token.DEFAULT,
		token.THROW, token.TRY, token.CATCH, token.FINALLY:
		return true
	}
	return false
}

func (p *Parser) newExpr() ast.Expr {
	pos := p.expect(token.NEW).Pos
	// new F, new F(), new a.b.C(...)
	var callee ast.Expr
	if p.cur.Type == token.NEW {
		callee = p.newExpr()
	} else {
		callee = p.primaryExpr()
	}
	for {
		switch p.cur.Type {
		case token.DOT:
			dp := p.advance().Pos
			name := p.memberName()
			callee = &ast.MemberExpr{TokPos: dp, X: callee, Name: name}
		case token.LBRACKET:
			bp := p.advance().Pos
			idx := p.expression()
			p.expect(token.RBRACKET)
			callee = &ast.IndexExpr{TokPos: bp, X: callee, Index: idx}
		default:
			goto args
		}
	}
args:
	var args []ast.Expr
	if p.accept(token.LPAREN) {
		for p.cur.Type != token.RPAREN && p.cur.Type != token.EOF {
			args = append(args, p.assignExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	return &ast.NewExpr{TokPos: pos, Fn: callee, Args: args}
}

func (p *Parser) primaryExpr() ast.Expr {
	t := p.cur
	switch t.Type {
	case token.IDENT:
		p.advance()
		return &ast.Ident{TokPos: t.Pos, Name: t.Literal}
	case token.NUMBER:
		p.advance()
		v, err := parseNumber(t.Literal)
		if err != nil {
			p.errorf(t.Pos, "bad number %q: %v", t.Literal, err)
		}
		return &ast.NumberLit{TokPos: t.Pos, Value: v}
	case token.STRING:
		p.advance()
		return &ast.StringLit{TokPos: t.Pos, Value: t.Literal}
	case token.TRUE:
		p.advance()
		return &ast.BoolLit{TokPos: t.Pos, Value: true}
	case token.FALSE:
		p.advance()
		return &ast.BoolLit{TokPos: t.Pos, Value: false}
	case token.NULL:
		p.advance()
		return &ast.NullLit{TokPos: t.Pos}
	case token.UNDEFINED:
		p.advance()
		return &ast.UndefinedLit{TokPos: t.Pos}
	case token.THIS:
		p.advance()
		return &ast.ThisExpr{TokPos: t.Pos}
	case token.LPAREN:
		p.advance()
		x := p.expression()
		p.expect(token.RPAREN)
		return x
	case token.LBRACKET:
		p.advance()
		a := &ast.ArrayLit{TokPos: t.Pos}
		for p.cur.Type != token.RBRACKET && p.cur.Type != token.EOF {
			a.Elems = append(a.Elems, p.assignExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACKET)
		return a
	case token.LBRACE:
		p.advance()
		o := &ast.ObjectLit{TokPos: t.Pos}
		for p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
			var key string
			switch p.cur.Type {
			case token.IDENT, token.STRING, token.NUMBER:
				key = p.advance().Literal
			default:
				if isWordToken(p.cur.Type) {
					key = p.advance().Literal
				} else {
					p.errorf(p.cur.Pos, "expected object key, found %s", p.cur)
					p.advance()
					continue
				}
			}
			p.expect(token.COLON)
			o.Keys = append(o.Keys, key)
			o.Values = append(o.Values, p.assignExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACE)
		return o
	case token.FUNCTION:
		return p.funcLit()
	default:
		p.errorf(t.Pos, "unexpected token %s", t)
		p.advance()
		return &ast.UndefinedLit{TokPos: t.Pos}
	}
}

func parseNumber(lit string) (float64, error) {
	if strings.HasPrefix(lit, "0x") || strings.HasPrefix(lit, "0X") {
		n, err := strconv.ParseUint(lit[2:], 16, 64)
		return float64(n), err
	}
	return strconv.ParseFloat(lit, 64)
}
