package parser

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
)

func dump(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return ast.DumpProgram(prog)
}

func wantDump(t *testing.T, src, want string) {
	t.Helper()
	if got := dump(t, src); got != want {
		t.Errorf("parse %q\n got: %s\nwant: %s", src, got, want)
	}
}

func TestPrecedence(t *testing.T) {
	wantDump(t, "x = 1 + 2 * 3;", "(expr (= x (+ 1 (* 2 3))))")
	wantDump(t, "x = (1 + 2) * 3;", "(expr (= x (* (+ 1 2) 3)))")
	wantDump(t, "x = 1 < 2 == true;", "(expr (= x (== (< 1 2) true)))")
	wantDump(t, "x = a && b || c;", "(expr (= x (|| (&& a b) c)))")
	wantDump(t, "x = a | b ^ c & d;", "(expr (= x (| a (^ b (& c d)))))")
	wantDump(t, "x = 1 << 2 + 3;", "(expr (= x (<< 1 (+ 2 3))))")
	wantDump(t, "x = -a * b;", "(expr (= x (* (- a) b)))")
	wantDump(t, "x = !a === b;", "(expr (= x (=== (! a) b)))")
	wantDump(t, "x = a = b = c;", "(expr (= x (= a (= b c))))") // right assoc
	wantDump(t, "x = a ? b : c ? d : e;", "(expr (= x (?: a b (?: c d e))))")
}

func TestMemberCallChains(t *testing.T) {
	wantDump(t, "a.b.c;", "(expr (. (. a b) c))")
	wantDump(t, "a[0][1];", "(expr ([] ([] a 0) 1))")
	wantDump(t, "a.b(1).c[2];", "(expr ([] (. (call (. a b) 1) c) 2))")
	wantDump(t, "f()();", "(expr (call (call f)))")
	wantDump(t, "new F().m();", "(expr (call (. (new F) m)))")
	wantDump(t, "new a.b.C(1);", "(expr (new (. (. a b) C) 1))")
	wantDump(t, "new F;", "(expr (new F))")
}

func TestKeywordPropertyNames(t *testing.T) {
	wantDump(t, "a.new;", "(expr (. a new))")
	wantDump(t, "a.delete;", "(expr (. a delete))")
	wantDump(t, "x = {for: 1, if: 2};", "(expr (= x (object for:1 if:2)))")
}

func TestLoopsGetIDs(t *testing.T) {
	prog := MustParse(`
for (var i = 0; i < 3; i++) {}
while (x) {}
do {} while (y);
for (var k in o) {}
`)
	if len(prog.Loops) != 4 {
		t.Fatalf("loops = %d, want 4", len(prog.Loops))
	}
	kinds := []string{"for", "while", "do-while", "for-in"}
	for i, li := range prog.Loops {
		if li.Kind != kinds[i] {
			t.Errorf("loop %d kind = %s, want %s", i, li.Kind, kinds[i])
		}
		if li.ID != ast.LoopID(i+1) {
			t.Errorf("loop %d ID = %d", i, li.ID)
		}
		if li.Line == 0 {
			t.Errorf("loop %d has no line", i)
		}
	}
	if got := prog.Loops[0].Label(); got != "for(line 2)" {
		t.Errorf("label = %q", got)
	}
}

func TestBranchIDsAssigned(t *testing.T) {
	prog := MustParse(`if (a) {} var x = a ? 1 : 2; var y = a && b; var z = a || b;`)
	seen := map[int]bool{}
	count := 0
	ast.InspectProgram(prog, func(n ast.Node) bool {
		var id int
		switch x := n.(type) {
		case *ast.IfStmt:
			id = x.BranchID
		case *ast.CondExpr:
			id = x.BranchID
		case *ast.BinaryExpr:
			if x.BranchID == 0 {
				return true
			}
			id = x.BranchID
		default:
			return true
		}
		if id == 0 {
			t.Errorf("%T has no branch ID", n)
		}
		if seen[id] {
			t.Errorf("duplicate branch ID %d", id)
		}
		seen[id] = true
		count++
		return true
	})
	if count != 4 {
		t.Errorf("found %d branching constructs, want 4", count)
	}
}

func TestForVariants(t *testing.T) {
	wantDump(t, "for (;;) {}", "(for#1 _ _ _ (block))")
	wantDump(t, "for (i = 0; ; i++) {}", "(for#1 (expr (= i 0)) _ (post++ i) (block))")
	wantDump(t, "for (var i = 0, j = 1; i < j; i++, j--) {}",
		"(for#1 (var i=0 j=1) (< i j) (seq (post++ i) (post-- j)) (block))")
	wantDump(t, "for (k in o) {}", "(forin#1 k o (block))")
}

func TestFunctionForms(t *testing.T) {
	wantDump(t, "function f() {}", "(funcdecl f (func f [] (block)))")
	wantDump(t, "var g = function (a, b) { return a; };",
		"(var g=(func [a b] (block (return a))))")
	wantDump(t, "var h = function named() {};", "(var h=(func named [] (block)))")
	wantDump(t, "(function () {})();", "(expr (call (func [] (block))))")
}

func TestVarHoistingMetadata(t *testing.T) {
	prog := MustParse(`
function f() {
  var a = 1;
  if (x) { var b = 2; }
  for (var c = 0; c < 1; c++) { var d; }
  for (var e in o) {}
  function inner() { var notMine; }
}
`)
	fd := prog.Body[0].(*ast.FuncDecl)
	got := strings.Join(fd.Fn.VarNames, ",")
	for _, name := range []string{"a", "b", "c", "d", "e", "inner"} {
		if !strings.Contains(got, name) {
			t.Errorf("VarNames %q missing %q", got, name)
		}
	}
	if strings.Contains(got, "notMine") {
		t.Errorf("VarNames %q leaked nested function vars", got)
	}
}

func TestTopLevelVars(t *testing.T) {
	prog := MustParse(`
var a = 1;
function f() {}
if (x) { var b; }
for (var c in o) {}
`)
	got := strings.Join(TopLevelVars(prog), ",")
	for _, name := range []string{"a", "f", "b", "c"} {
		if !strings.Contains(got, name) {
			t.Errorf("TopLevelVars %q missing %q", got, name)
		}
	}
}

func TestSwitchParsing(t *testing.T) {
	wantDump(t, `switch (x) { case 1: a(); break; case 2: case 3: b(); default: c(); }`,
		"(switch x (case 1 (expr (call a)) (break)) (case 2) (case 3 (expr (call b))) (default (expr (call c))))")
}

func TestTryParsing(t *testing.T) {
	wantDump(t, "try { a(); } catch (e) { b(e); }",
		"(try (block (expr (call a))) (catch e (block (expr (call b e)))))")
	wantDump(t, "try { a(); } finally { c(); }",
		"(try (block (expr (call a))) (finally (block (expr (call c)))))")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"var = 3;",
		"function () {}",       // declaration without a name
		"for (var i = 0; i) ;", // missing clause separator... actually valid-ish: check others
		"x = ;",
		"if (a {",
		"1 = 2;",       // invalid assignment target
		"a++ = 3;",     // invalid target
		"try { a(); }", // try without catch/finally
		`var s = "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorRecoveryDoesNotHang(t *testing.T) {
	// Deeply broken input must terminate (progress guarantee).
	_, err := Parse("}}}}{{{{ ((( var var var")
	if err == nil {
		t.Error("expected errors")
	}
}

func TestObjectLiteralKeys(t *testing.T) {
	wantDump(t, `x = {a: 1, "b-c": 2, 3: 4};`, `(expr (= x (object a:1 b-c:2 3:4)))`)
}

func TestCommaInArguments(t *testing.T) {
	// assignment expressions (not sequences) as arguments
	wantDump(t, "f(a, b, c);", "(expr (call f a b c))")
	wantDump(t, "f((a, b));", "(expr (call f (seq a b)))")
}
