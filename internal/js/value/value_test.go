package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoercionsToBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Undefined(), false},
		{Null(), false},
		{Bool(true), true},
		{Bool(false), false},
		{Number(0), false},
		{Number(math.NaN()), false},
		{Number(1), true},
		{Number(-0.5), true},
		{String(""), false},
		{String("0"), true}, // non-empty strings are truthy, even "0"
		{ObjectVal(NewObject()), true},
		{ObjectVal(NewArray()), true},
	}
	for _, c := range cases {
		if got := c.v.ToBool(); got != c.want {
			t.Errorf("ToBool(%s) = %v, want %v", c.v.Inspect(), got, c.want)
		}
	}
}

func TestCoercionsToNumber(t *testing.T) {
	if !math.IsNaN(Undefined().ToNumber()) {
		t.Error("undefined -> NaN")
	}
	if Null().ToNumber() != 0 {
		t.Error("null -> 0")
	}
	if Bool(true).ToNumber() != 1 || Bool(false).ToNumber() != 0 {
		t.Error("bool coercion")
	}
	if String("  42 ").ToNumber() != 42 {
		t.Error("string trim")
	}
	if String("").ToNumber() != 0 {
		t.Error("empty string -> 0")
	}
	if String("0x10").ToNumber() != 16 {
		t.Error("hex string")
	}
	if !math.IsNaN(String("12px").ToNumber()) {
		t.Error("junk suffix -> NaN (unlike parseInt)")
	}
}

func TestToString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Number(1), "1"},
		{Number(1.5), "1.5"},
		{Number(-0.25), "-0.25"},
		{Number(1e21), "1e+21"},
		{Number(math.NaN()), "NaN"},
		{Number(math.Inf(1)), "Infinity"},
		{Number(math.Inf(-1)), "-Infinity"},
		{Bool(true), "true"},
		{Undefined(), "undefined"},
		{Null(), "null"},
		{ObjectVal(NewArray(Int(1), Int(2))), "1,2"},
		{ObjectVal(NewObject()), "[object Object]"},
	}
	for _, c := range cases {
		if got := c.v.ToString(); got != c.want {
			t.Errorf("ToString = %q, want %q", got, c.want)
		}
	}
}

func TestInt32Semantics(t *testing.T) {
	if Number(2.9).ToInt32() != 2 || Number(-2.9).ToInt32() != -2 {
		t.Error("truncation")
	}
	if Number(math.NaN()).ToInt32() != 0 || Number(math.Inf(1)).ToInt32() != 0 {
		t.Error("NaN/Inf -> 0")
	}
	if Number(4294967296+5).ToInt32() != 5 {
		t.Error("wraparound")
	}
	if Number(-1).ToUint32() != 4294967295 {
		t.Error("uint32 of -1")
	}
}

func TestStrictVsLooseEquality(t *testing.T) {
	if !LooseEquals(Number(1), String("1")) {
		t.Error(`1 == "1"`)
	}
	if StrictEquals(Number(1), String("1")) {
		t.Error(`1 === "1" must be false`)
	}
	if !LooseEquals(Null(), Undefined()) {
		t.Error("null == undefined")
	}
	if StrictEquals(Null(), Undefined()) {
		t.Error("null === undefined must be false")
	}
	if !LooseEquals(Bool(true), Number(1)) {
		t.Error("true == 1")
	}
	o := NewObject()
	if !StrictEquals(ObjectVal(o), ObjectVal(o)) {
		t.Error("object identity")
	}
	if StrictEquals(ObjectVal(NewObject()), ObjectVal(NewObject())) {
		t.Error("distinct objects")
	}
	arr := NewArray(Int(1))
	if !LooseEquals(ObjectVal(arr), String("1")) {
		t.Error(`[1] == "1" (ToPrimitive)`)
	}
}

func TestEqualityProperties(t *testing.T) {
	gen := func(tag uint8, f float64, s string) Value {
		switch tag % 6 {
		case 0:
			return Undefined()
		case 1:
			return Null()
		case 2:
			return Bool(f > 0)
		case 3:
			return Number(f)
		case 4:
			return String(s)
		default:
			return ObjectVal(NewArray(Number(f)))
		}
	}
	// strict equality is symmetric
	sym := func(ta, tb uint8, fa, fb float64, sa, sb string) bool {
		a, b := gen(ta, fa, sa), gen(tb, fb, sb)
		return StrictEquals(a, b) == StrictEquals(b, a) &&
			LooseEquals(a, b) == LooseEquals(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	// strict implies loose
	impl := func(ta, tb uint8, fa, fb float64, sa, sb string) bool {
		a, b := gen(ta, fa, sa), gen(tb, fb, sb)
		if StrictEquals(a, b) {
			return LooseEquals(a, b)
		}
		return true
	}
	if err := quick.Check(impl, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectProperties(t *testing.T) {
	o := NewObject()
	o.Set("a", Int(1))
	o.Set("b", Int(2))
	o.Set("a", Int(3)) // overwrite keeps insertion order
	if v, ok := o.Get("a"); !ok || v.Num() != 3 {
		t.Error("get a")
	}
	keys := o.OwnKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if !o.Delete("a") || o.Delete("a") {
		t.Error("delete semantics")
	}
	if _, ok := o.Get("a"); ok {
		t.Error("a still present")
	}
	if o.NumProps() != 1 {
		t.Errorf("props = %d", o.NumProps())
	}
}

func TestPrototypeChain(t *testing.T) {
	proto := NewObject()
	proto.Set("shared", Int(7))
	o := NewObject()
	o.Proto = proto
	if v, ok := o.Get("shared"); !ok || v.Num() != 7 {
		t.Error("prototype lookup")
	}
	if _, ok := o.GetOwn("shared"); ok {
		t.Error("GetOwn must not follow the chain")
	}
	o.Set("shared", Int(8)) // shadow
	if v, _ := o.Get("shared"); v.Num() != 8 {
		t.Error("shadowing")
	}
	if v, _ := proto.Get("shared"); v.Num() != 7 {
		t.Error("prototype mutated by shadowing write")
	}
}

func TestArraySemantics(t *testing.T) {
	a := NewArray(Int(10), Int(20))
	if v, _ := a.Get("length"); v.Num() != 2 {
		t.Error("length")
	}
	a.Set("5", Int(99)) // grows with undefined holes
	if v, _ := a.Get("length"); v.Num() != 6 {
		t.Error("grow via index")
	}
	if v, _ := a.Get("3"); !v.IsUndefined() {
		t.Error("hole must be undefined")
	}
	a.Set("length", Int(1)) // truncate
	if len(a.Elems) != 1 || a.Elems[0].Num() != 10 {
		t.Errorf("truncate: %v", a.Elems)
	}
	// non-index keys become named props
	a.Set("name", String("arr"))
	if v, _ := a.Get("name"); v.Str() != "arr" {
		t.Error("named prop on array")
	}
	// canonical indices only: "01" is a named property
	a.Set("01", Int(5))
	if len(a.Elems) != 1 {
		t.Error(`"01" treated as index`)
	}
}

func TestArrayIndexParsing(t *testing.T) {
	cases := map[string]bool{
		"0": true, "1": true, "42": true, "999999": true,
		"": false, "01": false, "-1": false, "1.5": false, "x": false,
		"12345678901": false, // too long
	}
	a := NewArrayN(0)
	for key, isIdx := range cases {
		a.Elems = a.Elems[:0]
		a.Set(key, Int(1))
		grew := len(a.Elems) > 0
		if grew != isIdx {
			t.Errorf("key %q treated as index=%v, want %v", key, grew, isIdx)
		}
		a.props = nil
		a.keys = nil
	}
}

func TestTypeOf(t *testing.T) {
	cases := map[string]Value{
		"undefined": Undefined(),
		"object":    Null(),
		"boolean":   Bool(true),
		"number":    Number(1),
		"string":    String("x"),
		"function":  ObjectVal(NewNative("f", nil)),
	}
	for want, v := range cases {
		if got := v.TypeOf(); got != want {
			t.Errorf("TypeOf(%s) = %q, want %q", v.Inspect(), got, want)
		}
	}
	if ObjectVal(NewObject()).TypeOf() != "object" {
		t.Error("plain object typeof")
	}
}

func TestFormatNumberProperty(t *testing.T) {
	// integers in safe range have no decimal point or exponent
	f := func(n int32) bool {
		s := FormatNumber(float64(n))
		for _, c := range s {
			if c == '.' || c == 'e' || c == 'E' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThrownError(t *testing.T) {
	thr := ThrowTypeError("bad receiver")
	if got := thr.Error(); got != "js: TypeError: bad receiver" {
		t.Errorf("Error() = %q", got)
	}
	plain := Throw(String("boom"))
	if got := plain.Error(); got != `js: uncaught boom` {
		t.Errorf("Error() = %q", got)
	}
}

func TestInspect(t *testing.T) {
	o := NewObject()
	o.Set("a", Int(1))
	o.Set("s", String("x"))
	if got := o; got == nil {
		t.Fatal("nil")
	}
	s := ObjectVal(o).Inspect()
	if s != `{a: 1, s: "x"}` {
		t.Errorf("Inspect = %q", s)
	}
	arr := ObjectVal(NewArray(Int(1), String("b"))).Inspect()
	if arr != `[1, "b"]` {
		t.Errorf("array Inspect = %q", arr)
	}
}
