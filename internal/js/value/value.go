// Package value implements the dynamic value model of the JavaScript
// subset: undefined, null, booleans, IEEE-754 numbers, strings, and
// heap objects (plain objects, arrays, functions).
//
// Values are small tagged structs (not interfaces) so that arithmetic in
// the interpreter does not allocate. Heap objects carry an opaque Aux slot
// that JS-CERES uses for creation stamps — the Go analogue of the paper's
// ES-Proxy wrapping (§3.3).
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types of the language.
type Kind uint8

// The dynamic types.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single JavaScript value.
type Value struct {
	kind Kind
	b    bool
	num  float64
	str  string
	obj  *Object
}

// Constructors.

// Undefined returns the undefined value.
func Undefined() Value { return Value{kind: KindUndefined} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric value.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns a numeric value from an int.
func Int(i int) Value { return Value{kind: KindNumber, num: float64(i)} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// ObjectVal wraps a heap object.
func ObjectVal(o *Object) Value {
	if o == nil {
		return Null()
	}
	return Value{kind: KindObject, obj: o}
}

// Accessors.

// Kind reports the dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNullish reports undefined-or-null.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// IsNumber reports whether v is a number.
func (v Value) IsNumber() bool { return v.kind == KindNumber }

// IsString reports whether v is a string.
func (v Value) IsString() bool { return v.kind == KindString }

// IsObject reports whether v is a heap object.
func (v Value) IsObject() bool { return v.kind == KindObject }

// Num returns the float64 payload (0 unless KindNumber).
func (v Value) Num() float64 { return v.num }

// Str returns the string payload ("" unless KindString).
func (v Value) Str() string { return v.str }

// BoolVal returns the bool payload (false unless KindBool).
func (v Value) BoolVal() bool { return v.b }

// Object returns the heap object (nil unless KindObject).
func (v Value) Object() *Object { return v.obj }

// IsCallable reports whether v is a function object.
func (v Value) IsCallable() bool { return v.kind == KindObject && v.obj != nil && v.obj.Fn != nil }

// ---- Coercions (ES5 semantics for the subset) ----

// ToBool implements ToBoolean.
func (v Value) ToBool() bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	default:
		return true
	}
}

// ToNumber implements ToNumber.
func (v Value) ToNumber() float64 {
	switch v.kind {
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindNumber:
		return v.num
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			if n, err := strconv.ParseUint(s[2:], 16, 64); err == nil {
				return float64(n)
			}
			return math.NaN()
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
		return math.NaN()
	default:
		// object: ToPrimitive via ToString for arrays, NaN otherwise
		if v.obj != nil && v.obj.Class == ClassArray {
			return String(v.ToString()).ToNumber()
		}
		return math.NaN()
	}
}

// ToString implements ToString.
func (v Value) ToString() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		return FormatNumber(v.num)
	case KindString:
		return v.str
	default:
		return v.obj.toDisplayString(0)
	}
}

// FormatNumber renders a float64 the way JavaScript does for the common
// cases (integers without a decimal point, NaN/Infinity spellings).
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// ToInt32 implements ToInt32 (for bitwise operators).
func (v Value) ToInt32() int32 {
	f := v.ToNumber()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(math.Trunc(f))))
}

// ToUint32 implements ToUint32 (for >>>).
func (v Value) ToUint32() uint32 {
	f := v.ToNumber()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(math.Trunc(f)))
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.IsCallable() {
			return "function"
		}
		return "object"
	}
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num // NaN !== NaN falls out naturally
	case KindString:
		return a.str == b.str
	default:
		return a.obj == b.obj
	}
}

// SameValue implements the ES SameValue comparison: like StrictEquals
// except NaN equals NaN and +0 does not equal -0 — the comparison
// analyzers need when "the same bits" is the question (pristine-global
// detection, misspeculation checks).
func SameValue(a, b Value) bool {
	if a.kind == KindNumber && b.kind == KindNumber {
		x, y := a.num, b.num
		if x == y {
			return math.Signbit(x) == math.Signbit(y)
		}
		return x != x && y != y
	}
	return StrictEquals(a, b)
}

// LooseEquals implements == for the subset.
func LooseEquals(a, b Value) bool {
	if a.kind == b.kind {
		return StrictEquals(a, b)
	}
	switch {
	case a.IsNullish() && b.IsNullish():
		return true
	case a.kind == KindNumber && b.kind == KindString:
		return a.num == b.ToNumber()
	case a.kind == KindString && b.kind == KindNumber:
		return a.ToNumber() == b.num
	case a.kind == KindBool:
		return LooseEquals(Number(a.ToNumber()), b)
	case b.kind == KindBool:
		return LooseEquals(a, Number(b.ToNumber()))
	case (a.kind == KindNumber || a.kind == KindString) && b.kind == KindObject:
		return LooseEquals(a, String(b.ToString()))
	case a.kind == KindObject && (b.kind == KindNumber || b.kind == KindString):
		return LooseEquals(String(a.ToString()), b)
	}
	return false
}

// ---- Objects ----

// Object classes.
const (
	ClassObject   = "Object"
	ClassArray    = "Array"
	ClassFunction = "Function"
	ClassError    = "Error"
	ClassHost     = "Host" // DOM nodes, canvas contexts, ...
)

// Caller abstracts the interpreter so native functions can call back into
// JavaScript (e.g. Array.prototype.map invoking its callback).
type Caller interface {
	CallFunction(fn Value, this Value, args []Value) (Value, error)
}

// NativeFn is a builtin implemented in Go.
type NativeFn func(c Caller, this Value, args []Value) (Value, error)

// Function is the callable payload of a function object.
type Function struct {
	Name   string
	Params []string
	// Decl and Env drive interpreted functions; Env is the defining scope
	// (*interp.Scope, opaque here to break the import cycle).
	Decl any
	Env  any
	// Compiled, when non-nil, is the pre-resolved compiled form of Decl
	// (*interp.cfunc, opaque here like Env). The interpreter dispatches
	// calls through it when compiled execution is enabled.
	Compiled any
	// Native, when non-nil, short-circuits interpretation.
	Native NativeFn
}

// Object is a heap object: plain object, array, function, or host object.
type Object struct {
	Class string
	Fn    *Function
	Proto *Object

	props map[string]Value
	keys  []string // insertion order, for for-in and display

	// Elems is the dense element storage for arrays.
	Elems []Value

	// Host points at a substrate-side peer (DOM node, canvas context...).
	Host any

	// Aux is reserved for JS-CERES: the creation-stamp and per-property
	// write-stamp records live here so the analyzer can find them in O(1).
	Aux any
}

// NewObject returns an empty plain object.
func NewObject() *Object {
	return &Object{Class: ClassObject}
}

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{Class: ClassArray, Elems: elems}
}

// NewArrayN returns an array of n undefined elements.
func NewArrayN(n int) *Object {
	return &Object{Class: ClassArray, Elems: make([]Value, n)}
}

// NewFunction returns an interpreted function object.
func NewFunction(name string, params []string, decl, env any) *Object {
	return &Object{Class: ClassFunction, Fn: &Function{Name: name, Params: params, Decl: decl, Env: env}}
}

// NewNative returns a builtin function object.
func NewNative(name string, fn NativeFn) *Object {
	return &Object{Class: ClassFunction, Fn: &Function{Name: name, Native: fn}}
}

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.Class == ClassArray }

// arrayIndex parses key as a canonical array index, returning (i, true)
// when it is one.
func arrayIndex(key string) (int, bool) {
	if key == "" || len(key) > 10 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if len(key) > 1 && key[0] == '0' {
		return 0, false
	}
	return n, true
}

// Get looks a property up, following the prototype chain.
func (o *Object) Get(key string) (Value, bool) {
	if o.IsArray() {
		if key == "length" {
			return Int(len(o.Elems)), true
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(o.Elems) {
				return o.Elems[i], true
			}
			return Undefined(), false
		}
	}
	if o.props != nil {
		if v, ok := o.props[key]; ok {
			return v, true
		}
	}
	if o.Proto != nil {
		return o.Proto.Get(key)
	}
	return Undefined(), false
}

// GetNumber reads a property coerced to number (NaN-safe 0 when absent).
func (o *Object) GetNumber(key string) float64 {
	v, ok := o.Get(key)
	if !ok {
		return 0
	}
	return v.ToNumber()
}

// GetString reads a property coerced to string ("" when absent).
func (o *Object) GetString(key string) string {
	v, ok := o.Get(key)
	if !ok {
		return ""
	}
	return v.ToString()
}

// GetOwn looks a property up without the prototype chain.
func (o *Object) GetOwn(key string) (Value, bool) {
	if o.IsArray() {
		if key == "length" {
			return Int(len(o.Elems)), true
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(o.Elems) {
				return o.Elems[i], true
			}
			return Undefined(), false
		}
	}
	if o.props != nil {
		v, ok := o.props[key]
		return v, ok
	}
	return Undefined(), false
}

// Set stores a property on the object itself.
func (o *Object) Set(key string, v Value) {
	if o.IsArray() {
		if key == "length" {
			n := int(v.ToNumber())
			if n < 0 {
				n = 0
			}
			for len(o.Elems) < n {
				o.Elems = append(o.Elems, Undefined())
			}
			o.Elems = o.Elems[:n]
			return
		}
		if i, ok := arrayIndex(key); ok {
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined())
			}
			o.Elems[i] = v
			return
		}
	}
	if o.props == nil {
		o.props = make(map[string]Value, 8)
	}
	if _, exists := o.props[key]; !exists {
		o.keys = append(o.keys, key)
	}
	o.props[key] = v
}

// Delete removes an own property; it reports whether it existed.
func (o *Object) Delete(key string) bool {
	if o.IsArray() {
		if i, ok := arrayIndex(key); ok && i < len(o.Elems) {
			o.Elems[i] = Undefined()
			return true
		}
	}
	if o.props == nil {
		return false
	}
	if _, ok := o.props[key]; !ok {
		return false
	}
	delete(o.props, key)
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// Has reports whether key resolves on o or its prototype chain.
func (o *Object) Has(key string) bool {
	_, ok := o.Get(key)
	if ok {
		return true
	}
	if o.IsArray() && key == "length" {
		return true
	}
	return false
}

// OwnKeys returns the enumerable own keys in for-in order: array indices
// first, then named properties in insertion order.
func (o *Object) OwnKeys() []string {
	var out []string
	if o.IsArray() {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	out = append(out, o.keys...)
	return out
}

// NumProps returns the number of own named properties.
func (o *Object) NumProps() int { return len(o.keys) }

// SortedKeys returns own named keys sorted lexicographically (stable
// display order for reports).
func (o *Object) SortedKeys() []string {
	out := append([]string(nil), o.keys...)
	sort.Strings(out)
	return out
}

func (o *Object) toDisplayString(depth int) string {
	if o == nil {
		return "null"
	}
	if o.Fn != nil {
		if o.Fn.Name != "" {
			return "function " + o.Fn.Name
		}
		return "function"
	}
	if depth > 2 {
		return "..."
	}
	if o.IsArray() {
		var sb strings.Builder
		for i, e := range o.Elems {
			if i > 0 {
				sb.WriteByte(',')
			}
			if e.IsNullish() {
				continue
			}
			if e.kind == KindObject {
				sb.WriteString(e.obj.toDisplayString(depth + 1))
			} else {
				sb.WriteString(e.ToString())
			}
		}
		return sb.String()
	}
	return "[object " + o.Class + "]"
}

// Inspect renders a debugging view of the value (object literals expanded
// one level).
func (v Value) Inspect() string {
	if v.kind != KindObject {
		if v.kind == KindString {
			return strconv.Quote(v.str)
		}
		return v.ToString()
	}
	o := v.obj
	if o.Fn != nil {
		return v.ToString()
	}
	if o.IsArray() {
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range o.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			if i > 16 {
				sb.WriteString("...")
				break
			}
			sb.WriteString(e.Inspect())
		}
		sb.WriteByte(']')
		return sb.String()
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range o.keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i > 16 {
			sb.WriteString("...")
			break
		}
		sb.WriteString(k)
		sb.WriteString(": ")
		pv := o.props[k]
		if pv.kind == KindObject && pv.obj.Fn == nil {
			sb.WriteString("{...}")
		} else {
			sb.WriteString(pv.Inspect())
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
