package value

// Thrown wraps a JavaScript exception value as a Go error. Native
// functions return it to signal a catchable JS throw; the interpreter also
// uses it to surface uncaught exceptions from Run/SafeCall.
type Thrown struct{ Val Value }

// Error implements the error interface.
func (t *Thrown) Error() string {
	if t.Val.IsObject() {
		o := t.Val.Object()
		name, _ := o.Get("name")
		msg, _ := o.Get("message")
		if !name.IsUndefined() || !msg.IsUndefined() {
			return "js: " + name.ToString() + ": " + msg.ToString()
		}
	}
	return "js: uncaught " + t.Val.ToString()
}

// Throw is a convenience constructor for a Thrown error.
func Throw(v Value) *Thrown { return &Thrown{Val: v} }

// ThrowTypeError builds a catchable TypeError-shaped exception.
func ThrowTypeError(msg string) *Thrown {
	o := &Object{Class: ClassError}
	o.Set("name", String("TypeError"))
	o.Set("message", String(msg))
	return &Thrown{Val: ObjectVal(o)}
}
