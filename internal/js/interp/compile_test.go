package interp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/token"
	"repro/internal/js/value"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestSetCompileToggle(t *testing.T) {
	in := New()
	if in.CompileEnabled() {
		t.Fatal("compile should default off")
	}
	in.SetCompile(true)
	if !in.CompileEnabled() {
		t.Fatal("SetCompile(true) did not stick")
	}
	in.SetCompile(false)
	if in.CompileEnabled() {
		t.Fatal("SetCompile(false) did not stick")
	}
}

func TestBuildLayoutOrder(t *testing.T) {
	prog := mustParse(t, `function f(a, b) { var x, y; function g() {} }`)
	fd := prog.Body[0].(*ast.FuncDecl)
	l := buildLayout(fd.Fn)
	// Declaration order must match invoke: this, params, arguments, vars,
	// then body-level function declarations.
	want := []string{"this", "a", "b", "arguments", "x", "y", "g"}
	if len(l.names) < len(want) {
		t.Fatalf("layout names = %v, want prefix %v", l.names, want)
	}
	for i, n := range want {
		if l.names[i] != n && !contains(l.names, n) {
			t.Fatalf("layout names = %v, missing %q at %d", l.names, n, i)
		}
	}
	for i, n := range l.names {
		if l.index[n] != i {
			t.Fatalf("index[%q] = %d, want %d", n, l.index[n], i)
		}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func TestResolveClasses(t *testing.T) {
	prog := mustParse(t, `
function outer(p) {
  var loc;
  function inner() {
    return p + loc + glob;
  }
  return inner;
}
try { x } catch (e) { var dynref = e; }
`)
	u := unitFor(prog)
	if u.ngsite == 0 {
		t.Fatal("expected at least one global reference site")
	}
	// Recompiling the same AST returns the cached unit.
	if u2 := unitFor(prog); u2 != u {
		t.Fatal("unitFor did not cache by AST identity")
	}

	var c compiler
	c.unit = &cunit{funcs: map[*ast.FuncLit]*cfunc{}}
	c.gsite = map[string]int{}
	outerLayout := &scopeLayout{index: map[string]int{"this": 0, "p": 1, "arguments": 2, "loc": 3}, names: []string{"this", "p", "arguments", "loc"}}
	innerLayout := &scopeLayout{index: map[string]int{"this": 0, "arguments": 1}, names: []string{"this", "arguments"}}
	c.stack = []*scopeLayout{outerLayout, innerLayout}

	if r := c.resolve("this"); r.kind != refLocal || r.slot != 0 {
		t.Fatalf("this -> %+v, want local slot 0", r)
	}
	if r := c.resolve("p"); r.kind != refOuter || r.depth != 1 || r.slot != 1 {
		t.Fatalf("p -> %+v, want outer depth 1 slot 1", r)
	}
	if r := c.resolve("glob"); r.kind != refGlobal {
		t.Fatalf("glob -> %+v, want global", r)
	}
	// The same global name dedupes onto one site.
	r1, r2 := c.resolve("glob"), c.resolve("other")
	if r1.gsite != 0 || r2.gsite != 1 {
		t.Fatalf("gsite dedup broken: %d, %d", r1.gsite, r2.gsite)
	}
	c.dyn = 1
	if r := c.resolve("p"); r.kind != refDynamic {
		t.Fatalf("inside catch, p -> %+v, want dynamic", r)
	}
}

func TestFoldExprStepParity(t *testing.T) {
	// For each constant expression, the folded step count must equal the
	// steps the tree walk charges evaluating it.
	cases := []string{
		`1 + 2;`,
		`-(3 * 4);`,
		`!("a" < "b");`,
		`1 + 2 * 3 - 4 / 5 % 6;`,
		`typeof (1 + 2);`,
		`(1, 2, "three");`,
		`~(5 ^ 3) << 2;`,
		`"a" + "b" + 1 + null;`,
	}
	for _, src := range cases {
		prog := mustParse(t, src)
		es, ok := prog.Body[0].(*ast.ExprStmt)
		if !ok {
			t.Fatalf("%s: not an expression statement", src)
		}
		v, n, folded := foldExpr(es.X)
		if !folded {
			t.Fatalf("%s: did not fold", src)
		}
		in := New()
		before := in.Steps()
		got := in.evalExpr(es.X, in.Globals)
		walked := in.Steps() - before
		if walked != n {
			t.Errorf("%s: folded steps %d, tree walk charged %d", src, n, walked)
		}
		if !value.SameValue(v, got) {
			t.Errorf("%s: folded value %v, tree walk %v", src, v, got)
		}
	}
}

func TestFoldExprRefusals(t *testing.T) {
	// Nodes with observable effects must not fold.
	cases := []string{
		`a + 1;`,          // variable read
		`1 && 2;`,         // BranchTaken
		`1 || 2;`,         // BranchTaken
		`"x" in {};`,      // object consult, can throw
		`1 instanceof f;`, // can throw
		`typeof a;`,       // VarRead on bound idents
		`f();`,            // call
	}
	for _, src := range cases {
		prog := mustParse(t, src)
		es := prog.Body[0].(*ast.ExprStmt)
		if _, _, folded := foldExpr(es.X); folded {
			t.Errorf("%s: folded, must stay dynamic", src)
		}
	}
}

func TestLoadCaches(t *testing.T) {
	src := fmt.Sprintf(`var loadCacheProbe = %d;`, 424242)
	p1, err1 := Load(src)
	p2, err2 := Load(src)
	if err1 != nil || err2 != nil {
		t.Fatalf("Load: %v, %v", err1, err2)
	}
	if p1 != p2 {
		t.Fatal("Load did not dedupe identical sources")
	}
	// Negative caching: the same broken source returns the same error.
	if _, err := Load(`var = ;`); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Load(`var = ;`); err == nil {
		t.Fatal("expected cached parse error")
	}
}

func TestLoadConcurrent(t *testing.T) {
	src := `var concurrentLoadProbe = 1 + 1;`
	const n = 16
	progs := make([]*ast.Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Load(src)
			if err != nil {
				t.Error(err)
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent Load returned distinct ASTs")
		}
	}
}

func TestCompiledUnitSharedAcrossInterps(t *testing.T) {
	prog := mustParse(t, `function sq(n) { return n * n; } var r = sq(12);`)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := New()
			in.SetCompile(true)
			if err := in.Run(prog); err != nil {
				t.Error(err)
				return
			}
			if got := in.Global("r"); got.ToNumber() != 144 {
				t.Errorf("r = %v, want 144", got)
			}
		}()
	}
	wg.Wait()
}

func TestCompiledGlobalCachePerInterp(t *testing.T) {
	// Two interpreters running the same unit must not leak bindings into
	// each other through the global-site cache.
	prog := mustParse(t, `counter = counter + 1;`)
	mk := func(start float64) *Interp {
		in := New()
		in.SetCompile(true)
		in.SetGlobal("counter", value.Number(start))
		return in
	}
	a, b := mk(0), mk(100)
	for i := 0; i < 3; i++ {
		if err := a.Run(prog); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(prog); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Global("counter").ToNumber(); got != 3 {
		t.Fatalf("interp a counter = %v, want 3", got)
	}
	if got := b.Global("counter").ToNumber(); got != 103 {
		t.Fatalf("interp b counter = %v, want 103", got)
	}
}

func TestScopeLookupThroughSlots(t *testing.T) {
	// interp.Scope.Lookup (used by autopar's closure capture) must see
	// bindings in compiled slot frames.
	prog := mustParse(t, `
var grab;
function f(p) {
  var q = p * 2;
  grab = function () { return q; };
}
f(21);
`)
	in := New()
	in.SetCompile(true)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	fn := in.Global("grab")
	if !fn.IsCallable() {
		t.Fatal("grab is not a function")
	}
	env, ok := fn.Object().Fn.Env.(*Scope)
	if !ok {
		t.Fatal("closure env is not a *Scope")
	}
	b := env.Lookup("q")
	if b == nil {
		t.Fatal("Lookup(q) = nil through compiled frame")
	}
	if b.V.ToNumber() != 42 {
		t.Fatalf("q = %v, want 42", b.V)
	}
	if env.Lookup("p") == nil {
		t.Fatal("Lookup(p) = nil, params must be visible")
	}
}

func TestCompiledBindingsFreshPerCall(t *testing.T) {
	// autopar's purity guards key on *Binding identity: every activation
	// must produce fresh bindings, exactly like the tree walk.
	prog := mustParse(t, `
var grabs = [];
function f() { var local = grabs.length; grabs.push(function () { return local; }); }
f(); f();
`)
	in := New()
	in.SetCompile(true)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	g := in.Global("grabs").Object()
	e0 := g.Elems[0].Object().Fn.Env.(*Scope)
	e1 := g.Elems[1].Object().Fn.Env.(*Scope)
	b0, b1 := e0.Lookup("local"), e1.Lookup("local")
	if b0 == nil || b1 == nil {
		t.Fatal("local not visible through closure envs")
	}
	if b0 == b1 {
		t.Fatal("two activations share one binding")
	}
	if b0.V.ToNumber() != 0 || b1.V.ToNumber() != 1 {
		t.Fatalf("locals = %v, %v, want 0, 1", b0.V, b1.V)
	}
}

func TestApplyBinaryPureCoverage(t *testing.T) {
	// in/instanceof must refuse; arithmetic must apply.
	if _, ok := applyBinaryPure(token.IN, value.String("k"), value.Number(1)); ok {
		t.Fatal("IN must not be pure")
	}
	if _, ok := applyBinaryPure(token.INSTANCEOF, value.Number(1), value.Number(2)); ok {
		t.Fatal("INSTANCEOF must not be pure")
	}
	v, ok := applyBinaryPure(token.PLUS, value.Number(2), value.Number(3))
	if !ok || v.ToNumber() != 5 {
		t.Fatalf("PLUS -> %v, %v", v, ok)
	}
}

func TestCompiledStepLimitMessage(t *testing.T) {
	prog := mustParse(t, `while (true) {}`)
	for _, compiled := range []bool{false, true} {
		in := New(WithMaxSteps(1000))
		in.SetCompile(compiled)
		err := in.Run(prog)
		if err == nil {
			t.Fatalf("compiled=%v: expected step-limit error", compiled)
		}
		want := "interp: step limit exceeded (1000)"
		if err.Error() != want {
			t.Fatalf("compiled=%v: err = %q, want %q", compiled, err.Error(), want)
		}
	}
}
