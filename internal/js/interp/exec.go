package interp

// exec.go is the runtime half of compiled execution (compile.go): frame
// setup for compiled calls, protected-region running for try/catch, and
// the per-interpreter global-site caches.

import (
	"repro/internal/js/ast"
	"repro/internal/js/value"
)

// runSeq runs a compiled statement list, stopping at the first abrupt
// completion — execBlock for flat arrays.
func runSeq(fr *frame, list []cstmt) ctrl {
	for _, cs := range list {
		c := cs(fr)
		if c.kind != ctrlNormal {
			return c
		}
	}
	return ctrlOK
}

// runProtected is tryBlock for compiled lists: it intercepts JS throws
// (but not fatals).
func runProtected(fr *frame, list []cstmt) (c ctrl, thrown *jsThrow) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*jsThrow); ok {
				thrown = t
				return
			}
			panic(r)
		}
	}()
	return runSeq(fr, list), nil
}

// gcacheFor returns this interpreter's global-site cache for a unit,
// allocating it on first use.
func (in *Interp) gcacheFor(u *cunit) []*Binding {
	if g, ok := in.gcaches[u]; ok {
		return g
	}
	if in.gcaches == nil {
		in.gcaches = make(map[*cunit][]*Binding, 2)
	}
	g := make([]*Binding, u.ngsite)
	in.gcaches[u] = g
	return g
}

// newCompiledFunction materializes a function value carrying its
// compiled body — makeFunction for closures created by compiled code.
func (in *Interp) newCompiledFunction(lit *ast.FuncLit, cf *cfunc, env *Scope) *value.Object {
	fn := value.NewFunction(lit.Name, lit.Params, lit, env)
	fn.Fn.Compiled = cf
	if in.hooks != nil {
		in.hooks.ObjectNew(fn)
	}
	return fn
}

// callCompiled executes a compiled function body. The caller (invoke)
// has already fired CallEnter and charged call-depth accounting; this
// mirrors the tree walk's activation setup exactly — same declaration
// order, same hooks, same re-declaration semantics — but bindings come
// from one backing array and land in layout slots instead of a map.
func (in *Interp) callCompiled(cf *cfunc, fn *value.Function, this value.Value, args []value.Value) value.Value {
	parent, _ := fn.Env.(*Scope)
	n := len(cf.layout.names)
	sc := &Scope{parent: parent, layout: cf.layout, slots: make([]*Binding, n)}
	// One allocation covers every binding of the activation. Bindings are
	// still distinct per call — autopar's guards key on *Binding identity.
	backing := make([]Binding, n)

	in.declareSlot(sc, backing, cf.thisSlot, this)
	for i, slot := range cf.paramSlots {
		var v value.Value
		if i < len(args) {
			v = args[i]
		} else {
			v = value.Undefined()
		}
		in.declareSlot(sc, backing, slot, v)
	}
	argObj := in.NewArray(args...)
	in.declareSlot(sc, backing, cf.argsSlot, value.ObjectVal(argObj))
	for _, slot := range cf.varSlots {
		in.declareSlot(sc, backing, slot, value.Undefined())
	}
	for i := range cf.hoisted {
		h := &cf.hoisted[i]
		f := in.newCompiledFunction(h.lit, h.cf, sc)
		in.declareSlot(sc, backing, h.slot, value.ObjectVal(f))
	}

	fr := frame{in: in, fscope: sc, scope: sc, gcache: in.gcacheFor(cf.unit)}
	c := runSeq(&fr, cf.body)
	if c.kind == ctrlReturn {
		return c.val
	}
	return value.Undefined()
}
