package interp

// compile.go lowers a parsed program into a pre-resolved form that
// exec.go runs behind the normal Interp API (SetCompile):
//
//   - variable references become slot indices (slots.go) instead of
//     per-lookup map probes; globals resolve once per (unit, Interp)
//     through a cached site table;
//   - side-effect-free constant subexpressions fold at compile time,
//     charging the exact step count the tree walk would (the virtual
//     clock is observable through performance.now/Date);
//   - property accesses precompute their member key and error text;
//   - statements flatten into closure arrays walked without the
//     per-node type switch of the tree walk.
//
// The contract (DESIGN.md "Compilation contract"): compiled execution
// is observably identical to the tree walk — values, console output,
// error messages, hook sequences (hookmux/autopar guards) and step
// counts. Catch blocks keep fully dynamic scoping: every reference
// compiled inside one (including inside functions declared there)
// falls back to the scope-chain walk, because catch scopes are created
// at runtime and can shadow anything.

import (
	"sync"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/token"
	"repro/internal/js/value"
)

// cexpr is a compiled expression; cstmt a compiled statement. Both are
// closed over immutable compile-time data only, so one compiled unit is
// safely shared by concurrent worker interpreters.
type (
	cexpr func(fr *frame) value.Value
	cstmt func(fr *frame) ctrl
)

// cunit is one compiled program: the flat top-level statement array plus
// the compiled form of every function literal in the AST.
type cunit struct {
	prog *ast.Program
	top  []cstmt
	// funcs lets makeFunction attach compiled bodies when the tree-walk
	// hoister (shared by both modes) materializes function values.
	funcs map[*ast.FuncLit]*cfunc
	// ngsite is the size of the per-interpreter global cache.
	ngsite int
}

// cfunc is one compiled function body: its slot layout plus the frame
// setup schedule mirroring invoke's declaration order exactly.
type cfunc struct {
	unit       *cunit
	lit        *ast.FuncLit
	layout     *scopeLayout
	thisSlot   int
	paramSlots []int
	argsSlot   int
	varSlots   []int
	hoisted    []hoistedFunc
	body       []cstmt
}

// hoistedFunc is a body-level function declaration whose value hoists at
// call time.
type hoistedFunc struct {
	slot int
	lit  *ast.FuncLit
	cf   *cfunc
}

// units caches the compiled unit per program AST, so kernels shared
// across worker interpreters compile exactly once per process. Keyed by
// pointer: parsed ASTs are read-only. Entries live for the process
// lifetime, matching the bounded set of distinct programs.
var units sync.Map // *ast.Program -> *cunit

func unitFor(prog *ast.Program) *cunit {
	if u, ok := units.Load(prog); ok {
		return u.(*cunit)
	}
	u := compileProgram(prog)
	if prior, loaded := units.LoadOrStore(prog, u); loaded {
		return prior.(*cunit)
	}
	return u
}

type loadEntry struct {
	prog *ast.Program
	err  error
}

// loads caches parse results by source text (negative results too), so
// identical kernel sources are parsed exactly once per process.
var loads sync.Map // string -> *loadEntry

// Load parses source through the process-wide content-addressed cache;
// together with the per-AST unit cache it makes parse-and-compile a
// once-per-process cost for repeated kernel sources (internal/parallel,
// autopar-generated kernels). The returned AST is shared and must be
// treated as read-only — callers that mutate ASTs (internal/instrument)
// must keep using parser.Parse directly.
func Load(src string) (*ast.Program, error) {
	if e, ok := loads.Load(src); ok {
		le := e.(*loadEntry)
		return le.prog, le.err
	}
	prog, err := parser.Parse(src)
	le := &loadEntry{prog: prog, err: err}
	if prior, loaded := loads.LoadOrStore(src, le); loaded {
		le = prior.(*loadEntry)
	}
	return le.prog, le.err
}

// compiler carries resolution state while lowering one unit.
type compiler struct {
	unit *cunit
	// stack holds the enclosing function layouts, innermost last; empty
	// at top level, where every free name is a global.
	stack []*scopeLayout
	// gsite dedupes global reference sites by name.
	gsite map[string]int
	// dyn counts enclosing catch blocks: inside them all references
	// (and whole functions compiled there) resolve dynamically.
	dyn int
}

func compileProgram(prog *ast.Program) *cunit {
	u := &cunit{prog: prog, funcs: make(map[*ast.FuncLit]*cfunc)}
	c := &compiler{unit: u, gsite: make(map[string]int)}
	u.top = c.compileStmts(prog.Body)
	u.ngsite = len(c.gsite)
	return u
}

// resolve classifies one name reference at the current lexical position.
func (c *compiler) resolve(name string) *ref {
	if c.dyn > 0 {
		return &ref{kind: refDynamic, name: name}
	}
	for d := len(c.stack) - 1; d >= 0; d-- {
		if i, ok := c.stack[d].index[name]; ok {
			depth := len(c.stack) - 1 - d
			if depth == 0 {
				return &ref{kind: refLocal, slot: i, name: name}
			}
			return &ref{kind: refOuter, depth: depth, slot: i, name: name}
		}
	}
	gi, ok := c.gsite[name]
	if !ok {
		gi = len(c.gsite)
		c.gsite[name] = gi
	}
	return &ref{kind: refGlobal, gsite: gi, name: name}
}

func (c *compiler) compileFunc(lit *ast.FuncLit) *cfunc {
	if cf, ok := c.unit.funcs[lit]; ok {
		return cf
	}
	layout := buildLayout(lit)
	cf := &cfunc{
		unit:     c.unit,
		lit:      lit,
		layout:   layout,
		thisSlot: layout.index["this"],
		argsSlot: layout.index["arguments"],
	}
	for _, p := range lit.Params {
		cf.paramSlots = append(cf.paramSlots, layout.index[p])
	}
	for _, n := range lit.VarNames {
		cf.varSlots = append(cf.varSlots, layout.index[n])
	}
	c.unit.funcs[lit] = cf
	c.stack = append(c.stack, layout)
	for _, s := range lit.Body.Body {
		if fd, ok := s.(*ast.FuncDecl); ok {
			cf.hoisted = append(cf.hoisted, hoistedFunc{slot: layout.index[fd.Name], lit: fd.Fn})
		}
	}
	for i := range cf.hoisted {
		cf.hoisted[i].cf = c.compileFunc(cf.hoisted[i].lit)
	}
	cf.body = c.compileStmts(lit.Body.Body)
	c.stack = c.stack[:len(c.stack)-1]
	return cf
}

// foldExpr evaluates side-effect-free constant expressions at compile
// time, returning the value and the exact step count the tree walk
// would charge. Only hook-silent node kinds fold (no branches, no
// variable or property traffic), so the event stream is unchanged.
func foldExpr(e ast.Expr) (value.Value, int64, bool) {
	switch x := e.(type) {
	case *ast.NumberLit:
		return value.Number(x.Value), 1, true
	case *ast.StringLit:
		return value.String(x.Value), 1, true
	case *ast.BoolLit:
		return value.Bool(x.Value), 1, true
	case *ast.NullLit:
		return value.Null(), 1, true
	case *ast.UndefinedLit:
		return value.Undefined(), 1, true
	case *ast.UnaryExpr:
		switch x.Op {
		case token.MINUS, token.PLUS, token.NOT, token.BITNOT:
			v, n, ok := foldExpr(x.X)
			if !ok {
				return value.Value{}, 0, false
			}
			switch x.Op {
			case token.MINUS:
				return value.Number(-v.ToNumber()), n + 1, true
			case token.PLUS:
				return value.Number(v.ToNumber()), n + 1, true
			case token.NOT:
				return value.Bool(!v.ToBool()), n + 1, true
			default:
				return value.Number(float64(^v.ToInt32())), n + 1, true
			}
		case token.TYPEOF:
			// typeof ident reads a binding (VarRead); only fold other
			// operand shapes.
			if _, isIdent := x.X.(*ast.Ident); isIdent {
				return value.Value{}, 0, false
			}
			v, n, ok := foldExpr(x.X)
			if !ok {
				return value.Value{}, 0, false
			}
			return value.String(v.TypeOf()), n + 1, true
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR, token.IN, token.INSTANCEOF:
			// && and || fire BranchTaken; in/instanceof consult objects
			// and can throw.
			return value.Value{}, 0, false
		}
		l, nl, ok := foldExpr(x.L)
		if !ok {
			return value.Value{}, 0, false
		}
		r, nr, ok := foldExpr(x.R)
		if !ok {
			return value.Value{}, 0, false
		}
		v, ok := applyBinaryPure(x.Op, l, r)
		if !ok {
			return value.Value{}, 0, false
		}
		return v, nl + nr + 1, true
	case *ast.SeqExpr:
		total := int64(1)
		var last value.Value
		for _, sub := range x.Exprs {
			v, n, ok := foldExpr(sub)
			if !ok {
				return value.Value{}, 0, false
			}
			last = v
			total += n
		}
		return last, total, true
	}
	return value.Value{}, 0, false
}

func (c *compiler) compileExprs(list []ast.Expr) []cexpr {
	out := make([]cexpr, len(list))
	for i, e := range list {
		out[i] = c.compileExpr(e)
	}
	return out
}

// compileExpr lowers one expression. Every produced closure begins with
// step(), mirroring evalExpr's entry charge.
func (c *compiler) compileExpr(e ast.Expr) cexpr {
	if v, n, ok := foldExpr(e); ok {
		return func(fr *frame) value.Value {
			fr.in.stepN(n)
			return v
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		r := c.resolve(x.Name)
		return func(fr *frame) value.Value {
			fr.in.step()
			return r.read(fr)
		}
	case *ast.ThisExpr:
		r := c.resolve("this")
		return func(fr *frame) value.Value {
			fr.in.step()
			return r.read(fr)
		}
	case *ast.ArrayLit:
		elems := c.compileExprs(x.Elems)
		return func(fr *frame) value.Value {
			fr.in.step()
			vals := make([]value.Value, len(elems))
			for i, ce := range elems {
				vals[i] = ce(fr)
			}
			return value.ObjectVal(fr.in.NewArray(vals...))
		}
	case *ast.ObjectLit:
		vals := c.compileExprs(x.Values)
		keys := x.Keys
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			o := in.NewObject()
			for i, k := range keys {
				v := vals[i](fr)
				o.Set(k, v)
				if in.hooks != nil {
					in.hooks.PropWrite(o, k, nil)
				}
			}
			return value.ObjectVal(o)
		}
	case *ast.FuncLit:
		cf := c.compileFunc(x)
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.ObjectVal(fr.in.newCompiledFunction(x, cf, fr.scope))
		}
	case *ast.UnaryExpr:
		return c.compileUnary(x)
	case *ast.UpdateExpr:
		return c.compileUpdate(x)
	case *ast.BinaryExpr:
		return c.compileBinary(x)
	case *ast.CondExpr:
		cond := c.compileExpr(x.Cond)
		cons := c.compileExpr(x.Cons)
		alt := c.compileExpr(x.Alt)
		id := x.BranchID
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			cv := cond(fr).ToBool()
			if in.hooks != nil {
				in.hooks.BranchTaken(id, cv)
			}
			if cv {
				return cons(fr)
			}
			return alt(fr)
		}
	case *ast.AssignExpr:
		return c.compileAssign(x)
	case *ast.CallExpr:
		return c.compileCall(x)
	case *ast.NewExpr:
		fnC := c.compileExpr(x.Fn)
		argsC := c.compileExprs(x.Args)
		desc := describeExpr(x.Fn)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			fn := fnC(fr)
			if !fn.IsCallable() {
				in.throwError("TypeError", "%s is not a constructor", desc)
			}
			args := make([]value.Value, len(argsC))
			for i, a := range argsC {
				args[i] = a(fr)
			}
			return in.construct(fn, args)
		}
	case *ast.MemberExpr:
		base := c.compileBase(x.X)
		name := x.Name
		return func(fr *frame) value.Value {
			fr.in.step()
			obj, via := base(fr)
			return fr.in.getMember(obj, name, via)
		}
	case *ast.IndexExpr:
		base := c.compileBase(x.X)
		key := c.compileKey(x.Index)
		return func(fr *frame) value.Value {
			fr.in.step()
			obj, via := base(fr)
			k := key.eval(fr)
			return fr.in.getMember(obj, k, via)
		}
	case *ast.SeqExpr:
		exprs := c.compileExprs(x.Exprs)
		return func(fr *frame) value.Value {
			fr.in.step()
			var last value.Value
			for _, ce := range exprs {
				last = ce(fr)
			}
			return last
		}
	default:
		// Unknown node kinds delegate to the tree walk (which charges
		// its own step and panics with the identical fatal).
		return func(fr *frame) value.Value {
			return fr.in.evalExpr(e, fr.scope)
		}
	}
}

// ckey is a compiled index key: pre-folded to its canonical property
// key when the index expression is constant, evaluated otherwise.
type ckey struct {
	pre   string
	steps int64
	ce    cexpr
}

func (c *compiler) compileKey(e ast.Expr) ckey {
	if v, n, ok := foldExpr(e); ok {
		return ckey{pre: propertyKey(v), steps: n}
	}
	return ckey{ce: c.compileExpr(e)}
}

func (k *ckey) eval(fr *frame) string {
	if k.ce == nil {
		fr.in.stepN(k.steps)
		return k.pre
	}
	return propertyKey(k.ce(fr))
}

// cbase mirrors evalBase: the base value of a property access plus the
// via binding when the base is a simple reference.
type cbase func(fr *frame) (value.Value, *Binding)

func (c *compiler) compileBase(e ast.Expr) cbase {
	switch t := e.(type) {
	case *ast.Ident:
		r := c.resolve(t.Name)
		return func(fr *frame) (value.Value, *Binding) {
			in := fr.in
			b := r.binding(fr)
			if b == nil {
				in.throwError("ReferenceError", "%s is not defined", r.name)
			}
			if in.hooks != nil {
				in.hooks.VarRead(r.name, b)
			}
			in.step()
			return b.V, b
		}
	case *ast.ThisExpr:
		r := c.resolve("this")
		return func(fr *frame) (value.Value, *Binding) {
			b := r.binding(fr)
			fr.in.step()
			if b == nil {
				return value.Undefined(), nil
			}
			return b.V, b
		}
	}
	ce := c.compileExpr(e)
	return func(fr *frame) (value.Value, *Binding) {
		return ce(fr), nil
	}
}

func (c *compiler) compileUnary(x *ast.UnaryExpr) cexpr {
	switch x.Op {
	case token.TYPEOF:
		if id, ok := x.X.(*ast.Ident); ok {
			r := c.resolve(id.Name)
			return func(fr *frame) value.Value {
				in := fr.in
				in.step()
				b := r.binding(fr)
				if b == nil {
					return value.String("undefined")
				}
				if in.hooks != nil {
					in.hooks.VarRead(r.name, b)
				}
				return value.String(b.V.TypeOf())
			}
		}
		ce := c.compileExpr(x.X)
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.String(ce(fr).TypeOf())
		}
	case token.DELETE:
		switch t := x.X.(type) {
		case *ast.MemberExpr:
			base := c.compileBase(t.X)
			name := t.Name
			return func(fr *frame) value.Value {
				in := fr.in
				in.step()
				obj, via := base(fr)
				if obj.IsObject() {
					ok := obj.Object().Delete(name)
					if in.hooks != nil {
						in.hooks.PropWrite(obj.Object(), name, via)
					}
					return value.Bool(ok)
				}
				return value.Bool(true)
			}
		case *ast.IndexExpr:
			base := c.compileBase(t.X)
			key := c.compileKey(t.Index)
			return func(fr *frame) value.Value {
				in := fr.in
				in.step()
				obj, via := base(fr)
				k := key.eval(fr)
				if obj.IsObject() {
					ok := obj.Object().Delete(k)
					if in.hooks != nil {
						in.hooks.PropWrite(obj.Object(), k, via)
					}
					return value.Bool(ok)
				}
				return value.Bool(true)
			}
		default:
			// delete on a non-member target does not evaluate it.
			return func(fr *frame) value.Value {
				fr.in.step()
				return value.Bool(true)
			}
		}
	}
	ce := c.compileExpr(x.X)
	op := x.Op
	switch op {
	case token.MINUS:
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.Number(-ce(fr).ToNumber())
		}
	case token.PLUS:
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.Number(ce(fr).ToNumber())
		}
	case token.NOT:
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.Bool(!ce(fr).ToBool())
		}
	case token.BITNOT:
		return func(fr *frame) value.Value {
			fr.in.step()
			return value.Number(float64(^ce(fr).ToInt32()))
		}
	}
	// Mirror evalUnary: the operand evaluates before the fatal.
	return func(fr *frame) value.Value {
		fr.in.step()
		return fr.in.evalUnary(x, fr.scope)
	}
}

func (c *compiler) compileUpdate(x *ast.UpdateExpr) cexpr {
	delta := 1.0
	if x.Op == token.DEC {
		delta = -1
	}
	prefix := x.Prefix
	switch t := x.X.(type) {
	case *ast.Ident:
		r := c.resolve(t.Name)
		return func(fr *frame) value.Value {
			fr.in.step()
			old := r.read(fr).ToNumber()
			nv := value.Number(old + delta)
			r.write(fr, nv)
			if prefix {
				return nv
			}
			return value.Number(old)
		}
	case *ast.MemberExpr:
		base := c.compileBase(t.X)
		name := t.Name
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			obj, via := base(fr)
			old := in.getMember(obj, name, via).ToNumber()
			nv := value.Number(old + delta)
			in.setMember(obj, name, nv, via)
			if prefix {
				return nv
			}
			return value.Number(old)
		}
	case *ast.IndexExpr:
		base := c.compileBase(t.X)
		key := c.compileKey(t.Index)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			obj, via := base(fr)
			k := key.eval(fr)
			old := in.getMember(obj, k, via).ToNumber()
			nv := value.Number(old + delta)
			in.setMember(obj, k, nv, via)
			if prefix {
				return nv
			}
			return value.Number(old)
		}
	}
	return func(fr *frame) value.Value {
		fr.in.step()
		fr.in.throwError("SyntaxError", "invalid update target")
		return value.Undefined()
	}
}

func (c *compiler) compileBinary(x *ast.BinaryExpr) cexpr {
	switch x.Op {
	case token.LAND:
		le, re := c.compileExpr(x.L), c.compileExpr(x.R)
		id := x.BranchID
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			l := le(fr)
			taken := l.ToBool()
			if in.hooks != nil {
				in.hooks.BranchTaken(id, taken)
			}
			if !taken {
				return l
			}
			return re(fr)
		}
	case token.LOR:
		le, re := c.compileExpr(x.L), c.compileExpr(x.R)
		id := x.BranchID
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			l := le(fr)
			taken := l.ToBool()
			if in.hooks != nil {
				in.hooks.BranchTaken(id, !taken)
			}
			if taken {
				return l
			}
			return re(fr)
		}
	}
	le, re := c.compileExpr(x.L), c.compileExpr(x.R)
	op := x.Op
	return func(fr *frame) value.Value {
		in := fr.in
		in.step()
		l := le(fr)
		r := re(fr)
		return in.applyBinary(op, l, r)
	}
}

func (c *compiler) compileAssign(x *ast.AssignExpr) cexpr {
	simple := x.Op == token.ASSIGN
	var cop token.Type
	if !simple {
		cop = x.Op.CompoundOp()
	}
	re := c.compileExpr(x.R)
	switch t := x.L.(type) {
	case *ast.Ident:
		r := c.resolve(t.Name)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			var v value.Value
			if simple {
				v = re(fr)
			} else {
				l := r.read(fr)
				rv := re(fr)
				v = in.applyBinary(cop, l, rv)
			}
			r.write(fr, v)
			return v
		}
	case *ast.MemberExpr:
		base := c.compileBase(t.X)
		name := t.Name
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			obj, via := base(fr)
			var v value.Value
			if simple {
				v = re(fr)
			} else {
				l := in.getMember(obj, name, via)
				rv := re(fr)
				v = in.applyBinary(cop, l, rv)
			}
			in.setMember(obj, name, v, via)
			return v
		}
	case *ast.IndexExpr:
		base := c.compileBase(t.X)
		key := c.compileKey(t.Index)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			obj, via := base(fr)
			k := key.eval(fr)
			var v value.Value
			if simple {
				v = re(fr)
			} else {
				l := in.getMember(obj, k, via)
				rv := re(fr)
				v = in.applyBinary(cop, l, rv)
			}
			in.setMember(obj, k, v, via)
			return v
		}
	}
	return func(fr *frame) value.Value {
		fr.in.step()
		fr.in.throwError("SyntaxError", "invalid assignment target")
		return value.Undefined()
	}
}

func (c *compiler) compileCall(x *ast.CallExpr) cexpr {
	argsC := c.compileExprs(x.Args)
	switch t := x.Fn.(type) {
	case *ast.MemberExpr:
		base := c.compileBase(t.X)
		name := t.Name
		desc := describeExpr(t.X)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			this, via := base(fr)
			fn := in.getMember(this, name, via)
			if !fn.IsCallable() {
				in.throwError("TypeError", "%s.%s is not a function", desc, name)
			}
			args := make([]value.Value, len(argsC))
			for i, a := range argsC {
				args[i] = a(fr)
			}
			return in.invoke(fn, this, args)
		}
	case *ast.IndexExpr:
		base := c.compileBase(t.X)
		key := c.compileKey(t.Index)
		desc := describeExpr(t.X)
		return func(fr *frame) value.Value {
			in := fr.in
			in.step()
			this, via := base(fr)
			k := key.eval(fr)
			fn := in.getMember(this, k, via)
			if !fn.IsCallable() {
				in.throwError("TypeError", "%s[%q] is not a function", desc, k)
			}
			args := make([]value.Value, len(argsC))
			for i, a := range argsC {
				args[i] = a(fr)
			}
			return in.invoke(fn, this, args)
		}
	}
	fnC := c.compileExpr(x.Fn)
	return func(fr *frame) value.Value {
		in := fr.in
		in.step()
		fn := fnC(fr)
		args := make([]value.Value, len(argsC))
		for i, a := range argsC {
			args[i] = a(fr)
		}
		return in.invoke(fn, value.Undefined(), args)
	}
}

func (c *compiler) compileStmts(list []ast.Stmt) []cstmt {
	out := make([]cstmt, len(list))
	for i, s := range list {
		out[i] = c.compileStmt(s)
	}
	return out
}

// compileStmt lowers one statement. Every produced closure begins with
// step(), mirroring execStmt's entry charge.
func (c *compiler) compileStmt(s ast.Stmt) cstmt {
	switch x := s.(type) {
	case *ast.EmptyStmt:
		return func(fr *frame) ctrl {
			fr.in.step()
			return ctrlOK
		}
	case *ast.VarDecl:
		type initPair struct {
			r  *ref
			ce cexpr
		}
		var pairs []initPair
		for i, name := range x.Names {
			if x.Inits[i] == nil {
				continue
			}
			pairs = append(pairs, initPair{r: c.resolve(name), ce: c.compileExpr(x.Inits[i])})
		}
		return func(fr *frame) ctrl {
			fr.in.step()
			for _, p := range pairs {
				v := p.ce(fr)
				p.r.write(fr, v)
			}
			return ctrlOK
		}
	case *ast.FuncDecl:
		cf := c.compileFunc(x.Fn)
		r := c.resolve(x.Name)
		lit := x.Fn
		return func(fr *frame) ctrl {
			fr.in.step()
			fn := fr.in.newCompiledFunction(lit, cf, fr.scope)
			r.write(fr, value.ObjectVal(fn))
			return ctrlOK
		}
	case *ast.ExprStmt:
		ce := c.compileExpr(x.X)
		return func(fr *frame) ctrl {
			fr.in.step()
			ce(fr)
			return ctrlOK
		}
	case *ast.BlockStmt:
		body := c.compileStmts(x.Body)
		return func(fr *frame) ctrl {
			fr.in.step()
			return runSeq(fr, body)
		}
	case *ast.IfStmt:
		cond := c.compileExpr(x.Cond)
		cons := c.compileStmt(x.Cons)
		var alt cstmt
		if x.Alt != nil {
			alt = c.compileStmt(x.Alt)
		}
		id := x.BranchID
		return func(fr *frame) ctrl {
			in := fr.in
			in.step()
			cv := cond(fr).ToBool()
			if in.hooks != nil {
				in.hooks.BranchTaken(id, cv)
			}
			if cv {
				return cons(fr)
			}
			if alt != nil {
				return alt(fr)
			}
			return ctrlOK
		}
	case *ast.ForStmt:
		return c.compileFor(x)
	case *ast.WhileStmt:
		return c.compileWhile(x)
	case *ast.DoWhileStmt:
		return c.compileDoWhile(x)
	case *ast.ForInStmt:
		return c.compileForIn(x)
	case *ast.ReturnStmt:
		var ce cexpr
		if x.X != nil {
			ce = c.compileExpr(x.X)
		}
		return func(fr *frame) ctrl {
			fr.in.step()
			v := value.Undefined()
			if ce != nil {
				v = ce(fr)
			}
			return ctrl{kind: ctrlReturn, val: v}
		}
	case *ast.BreakStmt:
		return func(fr *frame) ctrl {
			fr.in.step()
			return ctrl{kind: ctrlBreak}
		}
	case *ast.ContinueStmt:
		return func(fr *frame) ctrl {
			fr.in.step()
			return ctrl{kind: ctrlContinue}
		}
	case *ast.ThrowStmt:
		ce := c.compileExpr(x.X)
		return func(fr *frame) ctrl {
			fr.in.step()
			fr.in.throwValue(ce(fr))
			return ctrlOK // unreachable
		}
	case *ast.TryStmt:
		return c.compileTry(x)
	case *ast.SwitchStmt:
		return c.compileSwitch(x)
	default:
		// Unknown node kinds delegate to the tree walk (identical fatal).
		return func(fr *frame) ctrl {
			return fr.in.execStmt(s, fr.scope)
		}
	}
}

func (c *compiler) compileFor(x *ast.ForStmt) cstmt {
	var init cstmt
	if x.Init != nil {
		init = c.compileStmt(x.Init)
	}
	var cond, post cexpr
	if x.Cond != nil {
		cond = c.compileExpr(x.Cond)
	}
	if x.Post != nil {
		post = c.compileExpr(x.Post)
	}
	body := c.compileStmt(x.Body)
	id := x.Loop
	return func(fr *frame) ctrl {
		in := fr.in
		in.step()
		if in.hooks != nil {
			in.hooks.LoopEnter(id)
			defer in.hooks.LoopExit(id)
		}
		if init != nil {
			if in.hooks != nil {
				in.hooks.LoopHeader(id, true)
			}
			init(fr)
			if in.hooks != nil {
				in.hooks.LoopHeader(id, false)
			}
		}
		for {
			if cond != nil {
				if !cond(fr).ToBool() {
					return ctrlOK
				}
			}
			if in.hooks != nil {
				in.hooks.LoopIter(id)
			}
			cc := body(fr)
			switch cc.kind {
			case ctrlBreak:
				return ctrlOK
			case ctrlReturn:
				return cc
			}
			if post != nil {
				if in.hooks != nil {
					in.hooks.LoopHeader(id, true)
				}
				post(fr)
				if in.hooks != nil {
					in.hooks.LoopHeader(id, false)
				}
			}
		}
	}
}

func (c *compiler) compileWhile(x *ast.WhileStmt) cstmt {
	cond := c.compileExpr(x.Cond)
	body := c.compileStmt(x.Body)
	id := x.Loop
	return func(fr *frame) ctrl {
		in := fr.in
		in.step()
		if in.hooks != nil {
			in.hooks.LoopEnter(id)
			defer in.hooks.LoopExit(id)
		}
		for {
			if !cond(fr).ToBool() {
				return ctrlOK
			}
			if in.hooks != nil {
				in.hooks.LoopIter(id)
			}
			cc := body(fr)
			switch cc.kind {
			case ctrlBreak:
				return ctrlOK
			case ctrlReturn:
				return cc
			}
		}
	}
}

func (c *compiler) compileDoWhile(x *ast.DoWhileStmt) cstmt {
	cond := c.compileExpr(x.Cond)
	body := c.compileStmt(x.Body)
	id := x.Loop
	return func(fr *frame) ctrl {
		in := fr.in
		in.step()
		if in.hooks != nil {
			in.hooks.LoopEnter(id)
			defer in.hooks.LoopExit(id)
		}
		for {
			if in.hooks != nil {
				in.hooks.LoopIter(id)
			}
			cc := body(fr)
			switch cc.kind {
			case ctrlBreak:
				return ctrlOK
			case ctrlReturn:
				return cc
			}
			if !cond(fr).ToBool() {
				return ctrlOK
			}
		}
	}
}

func (c *compiler) compileForIn(x *ast.ForInStmt) cstmt {
	objC := c.compileExpr(x.Obj)
	r := c.resolve(x.Name)
	body := c.compileStmt(x.Body)
	id := x.Loop
	return func(fr *frame) ctrl {
		in := fr.in
		in.step()
		objV := objC(fr)
		if in.hooks != nil {
			in.hooks.LoopEnter(id)
			defer in.hooks.LoopExit(id)
		}
		if !objV.IsObject() {
			return ctrlOK // for-in over primitives iterates nothing here
		}
		keys := objV.Object().OwnKeys()
		for _, k := range keys {
			if in.hooks != nil {
				in.hooks.LoopIter(id)
				in.hooks.LoopHeader(id, true)
			}
			r.write(fr, value.String(k))
			if in.hooks != nil {
				in.hooks.LoopHeader(id, false)
			}
			cc := body(fr)
			switch cc.kind {
			case ctrlBreak:
				return ctrlOK
			case ctrlReturn:
				return cc
			}
		}
		return ctrlOK
	}
}

func (c *compiler) compileTry(x *ast.TryStmt) cstmt {
	body := c.compileStmts(x.Body.Body)
	var catchBody []cstmt
	if x.Catch != nil {
		// Catch scopes are created at runtime and can shadow anything:
		// compile the whole subtree (including functions declared in it)
		// with dynamic resolution.
		c.dyn++
		catchBody = c.compileStmts(x.Catch.Body)
		c.dyn--
	}
	var finBody []cstmt
	if x.Finally != nil {
		finBody = c.compileStmts(x.Finally.Body)
	}
	hasCatch := x.Catch != nil
	hasFin := x.Finally != nil
	catchName := x.CatchName
	return func(fr *frame) ctrl {
		in := fr.in
		in.step()
		cc, thrown := runProtected(fr, body)
		if thrown != nil && hasCatch {
			catchEnv := NewScope(fr.scope)
			in.declareVar(catchEnv, catchName, thrown.val)
			saved := fr.scope
			fr.scope = catchEnv
			cc, thrown = runProtected(fr, catchBody)
			fr.scope = saved
		}
		if hasFin {
			if fc := runSeq(fr, finBody); fc.kind != ctrlNormal {
				return fc // abrupt finally overrides any pending throw/completion
			}
		}
		if thrown != nil {
			panic(thrown)
		}
		return cc
	}
}

func (c *compiler) compileSwitch(x *ast.SwitchStmt) cstmt {
	disc := c.compileExpr(x.Disc)
	type carm struct {
		test cexpr
		body []cstmt
	}
	arms := make([]carm, len(x.Cases))
	for i, cs := range x.Cases {
		var t cexpr
		if cs.Test != nil {
			t = c.compileExpr(cs.Test)
		}
		arms[i] = carm{test: t, body: c.compileStmts(cs.Body)}
	}
	return func(fr *frame) ctrl {
		fr.in.step()
		d := disc(fr)
		matched := -1
		for i := range arms {
			if arms[i].test == nil {
				continue
			}
			tv := arms[i].test(fr)
			if value.StrictEquals(d, tv) {
				matched = i
				break
			}
		}
		if matched < 0 {
			for i := range arms {
				if arms[i].test == nil {
					matched = i
					break
				}
			}
		}
		if matched < 0 {
			return ctrlOK
		}
		for i := matched; i < len(arms); i++ { // fall-through semantics
			for _, cs := range arms[i].body {
				cc := cs(fr)
				switch cc.kind {
				case ctrlBreak:
					return ctrlOK
				case ctrlReturn, ctrlContinue:
					return cc
				}
			}
		}
		return ctrlOK
	}
}
