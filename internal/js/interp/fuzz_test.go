package interp

// FuzzInterpDifferential is the fuzzing half of the compiled-evaluator
// proof (conformance_test.go has the curated half): any input that
// parses must behave identically — output, errors, steps, hook stream —
// on the tree walk and the compiled path. CI runs a 30s -fuzz smoke;
// longer local runs just work:
//
//	go test -fuzz=FuzzInterpDifferential -fuzztime=5m ./internal/js/interp

import (
	"strings"
	"testing"
)

// fuzzMaxSteps keeps pathological loops cheap; step-limit fatals are
// still compared for parity.
const fuzzMaxSteps = 50_000

func FuzzInterpDifferential(f *testing.F) {
	for _, tc := range conformanceCorpus {
		f.Add(tc.src)
	}
	// Hand-picked slivers that exercise compiler decision points the
	// corpus hits only incidentally.
	f.Add(`var x = 1 + "2"; x[0];`)
	f.Add(`try { x } catch (x) { x } finally { x = 1 }`)
	f.Add(`for (var k in { a: 1 }) { delete k; }`)
	f.Add(`(function () { return arguments; })(1, 2)[1];`)
	f.Add(`x = typeof -""`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		tw := runEngineBudget(src, false, fuzzMaxSteps)
		cp := runEngineBudget(src, true, fuzzMaxSteps)
		if tw.parseErr != "" || cp.parseErr != "" {
			if tw.parseErr != cp.parseErr {
				t.Fatalf("parse divergence: tree-walk %q vs compiled %q", tw.parseErr, cp.parseErr)
			}
			return
		}
		if tw.runErr != cp.runErr {
			t.Fatalf("error divergence:\n  tree-walk: %q\n  compiled:  %q\nprogram:\n%s", tw.runErr, cp.runErr, src)
		}
		if a, b := strings.Join(tw.console, "\n"), strings.Join(cp.console, "\n"); a != b {
			t.Fatalf("output divergence:\n--- tree-walk ---\n%s\n--- compiled ---\n%s\nprogram:\n%s", a, b, src)
		}
		if !tw.stepLimited && tw.steps != cp.steps {
			t.Fatalf("step divergence: tree-walk %d vs compiled %d\nprogram:\n%s", tw.steps, cp.steps, src)
		}
		if len(tw.trace) != len(cp.trace) {
			t.Fatalf("trace divergence: %s\nprogram:\n%s", firstTraceDiff(tw.trace, cp.trace), src)
		}
		for i := range tw.trace {
			if tw.trace[i] != cp.trace[i] {
				t.Fatalf("trace divergence at event %d: tree-walk %q vs compiled %q\nprogram:\n%s", i, tw.trace[i], cp.trace[i], src)
			}
		}
	})
}
